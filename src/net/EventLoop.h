//===- net/EventLoop.h - epoll event loop with timer wheel -----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The I/O core of the serving stack: a single-threaded, level-triggered
/// epoll loop owning every socket of a process (listener + all
/// connections), so one thread multiplexes tens of thousands of idle
/// clients instead of parking one blocking reader thread per connection.
///
/// Three primitives:
///   - fd watching: add()/mod()/del() register a callback invoked with the
///     ready epoll event mask (EPOLLIN/EPOLLOUT/...). Level-triggered on
///     purpose — a handler that drains only part of a buffer is re-invoked
///     on the next poll instead of deadlocking the connection;
///   - cross-thread tasks: post() enqueues a closure from any thread and
///     wakes the loop through an eventfd. All socket state is therefore
///     owned by the loop thread; worker threads never touch an fd, they
///     post completions (this is what makes the server TSan-clean without
///     per-connection locks);
///   - timers: a hashed timer wheel (fixed tick, 256 slots) drives request
///     deadlines. Insert/cancel are O(1); the wheel only needs the
///     millisecond-level resolution deadlines are specified in.
///
/// The loop is deliberately single-threaded: allocation work is what
/// scales with cores (the worker pool), while frame I/O is cheap enough
/// that one loop thread saturates far beyond the compile capacity. A
/// shared-nothing loop needs no locking discipline around connections.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_NET_EVENTLOOP_H
#define LSRA_NET_EVENTLOOP_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lsra {
namespace net {

class EventLoop {
public:
  /// Invoked with the ready epoll event mask for the fd.
  using FdCallback = std::function<void(uint32_t Events)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop &) = delete;
  EventLoop &operator=(const EventLoop &) = delete;

  /// Create the epoll instance and the wakeup eventfd. False (with \p Err)
  /// when the kernel refuses either.
  bool init(std::string &Err);
  bool valid() const { return EpollFd >= 0; }

  /// Run until stop(). Must be called from exactly one thread; that thread
  /// becomes the loop thread for inLoopThread() and the callbacks.
  void run();

  /// Ask the loop to exit after the current iteration. Thread-safe,
  /// idempotent, wakes a blocked epoll_wait.
  void stop();

  /// Enqueue \p Fn to run on the loop thread (FIFO across post() calls
  /// from one thread). Thread-safe; wakes the loop. Tasks posted after
  /// stop() still run during the final drain iteration.
  void post(std::function<void()> Fn);

  /// Watch \p Fd for \p Events (EPOLLIN and friends; level-triggered).
  bool add(int Fd, uint32_t Events, FdCallback CB, std::string &Err);
  /// Change the watched event mask of a registered fd.
  bool mod(int Fd, uint32_t Events, std::string &Err);
  /// Stop watching \p Fd. Safe to call for an fd that was never added.
  void del(int Fd);

  /// Arm a one-shot timer firing at absolute steady-clock \p DeadlineNs
  /// (rounded up to the wheel tick). Returns a cancellation id. Loop
  /// thread only.
  uint64_t addTimerAtNs(int64_t DeadlineNs, std::function<void()> Fn);
  /// Cancel a pending timer; no-op if it already fired. Loop thread only.
  void cancelTimer(uint64_t Id);

  /// Run \p Fn once at the end of every loop iteration, after the ready
  /// fds and posted tasks have been handled (used for request batching and
  /// drain-progress checks). Set before run(), or from the loop thread.
  void setAfterPoll(std::function<void()> Fn) { AfterPoll = std::move(Fn); }

  bool inLoopThread() const {
    return std::this_thread::get_id() == LoopThreadId;
  }

  /// Monotonic steady-clock now, ns (the clock the timer wheel runs on).
  static int64_t nowNs();

  /// Loop iterations so far (observability; relaxed reads are fine).
  uint64_t iterations() const {
    return Iterations.load(std::memory_order_relaxed);
  }

  /// Timer-wheel tick, in nanoseconds (resolution of deadline firing).
  static constexpr int64_t TickNs = 2'000'000; // 2 ms

private:
  static constexpr unsigned WheelSlots = 256;

  struct Timer {
    uint64_t Id;
    int64_t DeadlineNs;
    std::function<void()> Fn;
  };

  void drainPosted();
  void advanceWheel(int64_t NowNs);
  int msUntilNextTimer(int64_t NowNs) const;

  int EpollFd = -1;
  int WakeFd = -1;
  std::atomic<bool> Stopping{false};
  std::thread::id LoopThreadId;
  std::atomic<uint64_t> Iterations{0};

  std::mutex PostMu;
  std::vector<std::function<void()>> Posted;

  std::unordered_map<int, FdCallback> FdHandlers; // loop thread only

  // Timer wheel: slot = (deadline / TickNs) % WheelSlots; entries whose
  // deadline lands in a future wheel revolution stay in the slot until
  // their turn. LastTickNs advances monotonically so a slow iteration
  // fires everything it skipped over.
  std::vector<std::vector<Timer>> Wheel{WheelSlots};
  std::unordered_map<uint64_t, unsigned> TimerSlots; ///< id -> wheel slot
  uint64_t NextTimerId = 1;
  size_t PendingTimers = 0;
  int64_t LastTickNs = 0;

  std::function<void()> AfterPoll;
};

} // namespace net
} // namespace lsra

#endif // LSRA_NET_EVENTLOOP_H
