//===- net/Connection.cpp - Non-blocking framed connection ----------------===//

#include "net/Connection.h"

#include <cerrno>
#include <cstring>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

using namespace lsra;
using namespace lsra::net;
using lsra::server::FrameDecoder;
using lsra::server::FrameType;

Connection::Connection(EventLoop &Loop, int Fd, uint64_t Id)
    : Loop(Loop), Fd(Fd), Id(Id) {}

Connection::~Connection() {
  if (Fd >= 0) {
    Loop.del(Fd);
    ::close(Fd);
    Fd = -1;
  }
}

bool Connection::start(OnFrameFn F, OnCloseFn C, std::string &Err) {
  OnFrame = std::move(F);
  OnClose = std::move(C);
  return Loop.add(
      Fd, EPOLLIN, [this](uint32_t Events) { handleEvents(Events); }, Err);
}

bool Connection::updateInterest() {
  uint32_t Events = EPOLLIN | (WantWrite ? uint32_t(EPOLLOUT) : 0u);
  // Once flushing-to-close, stop reading: the peer spoke a broken
  // protocol and anything further is noise.
  if (FlushThenClose)
    Events &= ~EPOLLIN;
  std::string Err;
  return Loop.mod(Fd, Events, Err);
}

void Connection::sendFrame(uint32_t RequestId, FrameType Type,
                           const std::string &Payload) {
  if (Fd < 0)
    return;
  std::string Wire = server::encodeFrameHeader(
      static_cast<uint32_t>(Payload.size()), RequestId, Type);
  Wire += Payload;
  BacklogBytes += Wire.size();
  WriteQueue.push_back(std::move(Wire));
  if (BacklogBytes > MaxWriteBacklog) {
    close("write backlog limit exceeded");
    return;
  }
  // Try the socket immediately: in the common case the buffer has room
  // and no EPOLLOUT round-trip is needed.
  if (!WantWrite)
    handleWritable();
}

void Connection::closeAfterFlush(const std::string &Reason) {
  if (Fd < 0)
    return;
  FlushThenClose = true;
  FlushCloseReason = Reason;
  if (WriteQueue.empty()) {
    close(Reason);
    return;
  }
  updateInterest();
}

void Connection::close(const std::string &Reason) {
  if (Fd < 0 || InClose)
    return;
  InClose = true;
  Loop.del(Fd);
  ::close(Fd);
  Fd = -1;
  WriteQueue.clear();
  BacklogBytes = 0;
  if (OnClose)
    OnClose(Reason);
}

void Connection::handleEvents(uint32_t Events) {
  if (Fd < 0)
    return;
  if (Events & EPOLLERR) {
    close("socket error");
    return;
  }
  if (Events & (EPOLLIN | EPOLLHUP)) {
    handleReadable();
    if (Fd < 0)
      return;
  }
  if (Events & EPOLLOUT)
    handleWritable();
}

void Connection::handleReadable() {
  char Buf[64 * 1024];
  while (true) {
    ssize_t R = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      close(std::string("recv: ") + std::strerror(errno));
      return;
    }
    if (R == 0) {
      close("peer closed");
      return;
    }
    Decoder.append(Buf, static_cast<size_t>(R));
    FrameDecoder::Frame F;
    FrameDecoder::Status St;
    while ((St = Decoder.next(F)) == FrameDecoder::Status::Frame) {
      OnFrame(F);
      if (Fd < 0 || FlushThenClose)
        return;
    }
    if (St == FrameDecoder::Status::Error) {
      // Version mismatch: the id was readable, so the owner's OnFrame
      // gets a chance to send a typed Error before the hangup.
      OnFrame(F);
      if (Fd >= 0 && !FlushThenClose)
        close(F.Err);
      return;
    }
    if (static_cast<size_t>(R) < sizeof(Buf))
      break; // short read: the socket is drained
  }
}

void Connection::handleWritable() {
  while (!WriteQueue.empty()) {
    // Gather up to 8 queued frames into one writev.
    struct iovec Iov[8];
    int NIov = 0;
    size_t Offset = WriteOffset;
    for (const auto &Chunk : WriteQueue) {
      if (NIov == 8)
        break;
      Iov[NIov].iov_base = const_cast<char *>(Chunk.data() + Offset);
      Iov[NIov].iov_len = Chunk.size() - Offset;
      ++NIov;
      Offset = 0;
    }
    ssize_t W = ::writev(Fd, Iov, NIov);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        break;
      close(std::string("writev: ") + std::strerror(errno));
      return;
    }
    BacklogBytes -= static_cast<size_t>(W);
    size_t Left = static_cast<size_t>(W);
    while (Left > 0) {
      size_t FrontLeft = WriteQueue.front().size() - WriteOffset;
      if (Left >= FrontLeft) {
        Left -= FrontLeft;
        WriteQueue.pop_front();
        WriteOffset = 0;
      } else {
        WriteOffset += Left;
        Left = 0;
      }
    }
  }
  bool NeedWrite = !WriteQueue.empty();
  if (NeedWrite != WantWrite) {
    WantWrite = NeedWrite;
    updateInterest();
  }
  if (WriteQueue.empty() && FlushThenClose)
    close(FlushCloseReason);
}
