//===- net/Connection.h - Non-blocking framed connection -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One non-blocking connection on an EventLoop, speaking the framed
/// protocol from server/Protocol.h. The read side feeds an incremental
/// FrameDecoder and hands complete frames to the owner's OnFrame callback;
/// the write side is a queue of encoded frames drained with writev(),
/// toggling EPOLLOUT interest only while a partial write is outstanding.
///
/// The write queue is what makes pipelining work: responses are enqueued
/// in completion order (not request order) and each carries its request
/// id, so many requests can be in flight per connection and finish out of
/// order without any coordination beyond "append to the queue".
///
/// Threading: every method must be called on the loop thread. Cross-thread
/// senders (compile workers) post a closure that looks the connection up
/// by id and calls sendFrame — the connection may be gone by then, which
/// is exactly the mid-merge-disconnect case and must be a silent no-op at
/// this layer.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_NET_CONNECTION_H
#define LSRA_NET_CONNECTION_H

#include "net/EventLoop.h"
#include "server/Protocol.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

namespace lsra {
namespace net {

class Connection {
public:
  /// Invoked once per decoded frame. The handler may call close(); no
  /// further frames are delivered after that.
  using OnFrameFn = std::function<void(server::FrameDecoder::Frame &)>;
  /// Invoked exactly once when the connection dies (peer EOF, I/O error,
  /// protocol desync, or an explicit close()). The Connection object must
  /// NOT be destroyed inside the callback — it is still on the stack;
  /// post the erase to the loop instead.
  using OnCloseFn = std::function<void(const std::string &Reason)>;

  /// Takes ownership of \p Fd (already non-blocking). \p Id is an opaque
  /// owner-assigned identity (stable across the connection's life, unlike
  /// the fd, which the kernel recycles).
  Connection(EventLoop &Loop, int Fd, uint64_t Id);
  ~Connection();

  Connection(const Connection &) = delete;
  Connection &operator=(const Connection &) = delete;

  /// Register with the loop for reads. False (Err set) if epoll refuses.
  bool start(OnFrameFn OnFrame, OnCloseFn OnClose, std::string &Err);

  /// Queue one frame for writing; writes as much as the socket accepts
  /// immediately and arms EPOLLOUT for the rest. Dropped silently if the
  /// connection is already closed.
  void sendFrame(uint32_t RequestId, server::FrameType Type,
                 const std::string &Payload);

  /// Close once the write queue drains (used for "typed error then
  /// hang up" on protocol version mismatch). Reads stop immediately.
  void closeAfterFlush(const std::string &Reason);

  /// Tear down now: deregister, close the fd, fire OnClose. Queued
  /// unwritten bytes are discarded. Idempotent.
  void close(const std::string &Reason);

  uint64_t id() const { return Id; }
  int fd() const { return Fd; }
  bool closed() const { return Fd < 0; }

  /// Bytes queued but not yet accepted by the kernel.
  size_t writeBacklogBytes() const { return BacklogBytes; }

  /// A peer that stops reading while we keep answering would otherwise
  /// buffer without bound; beyond this backlog the connection is dropped.
  static constexpr size_t MaxWriteBacklog = 256u << 20;

private:
  void handleEvents(uint32_t Events);
  void handleReadable();
  void handleWritable();
  bool updateInterest();

  EventLoop &Loop;
  int Fd;
  uint64_t Id;
  OnFrameFn OnFrame;
  OnCloseFn OnClose;

  server::FrameDecoder Decoder;

  // Write queue: fully-encoded frames (header + payload contiguous);
  // WriteOffset is the consumed prefix of the front entry.
  std::deque<std::string> WriteQueue;
  size_t WriteOffset = 0;
  size_t BacklogBytes = 0;
  bool WantWrite = false; ///< EPOLLOUT currently armed
  bool FlushThenClose = false;
  std::string FlushCloseReason;
  bool InClose = false; ///< re-entrancy guard for close()
};

} // namespace net
} // namespace lsra

#endif // LSRA_NET_CONNECTION_H
