//===- net/EventLoop.cpp - epoll event loop with timer wheel --------------===//

#include "net/EventLoop.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

namespace lsra {
namespace net {

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() {
  if (WakeFd >= 0)
    ::close(WakeFd);
  if (EpollFd >= 0)
    ::close(EpollFd);
}

int64_t EventLoop::nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool EventLoop::init(std::string &Err) {
  EpollFd = ::epoll_create1(EPOLL_CLOEXEC);
  if (EpollFd < 0) {
    Err = "epoll_create1: " + std::string(std::strerror(errno));
    return false;
  }
  WakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (WakeFd < 0) {
    Err = "eventfd: " + std::string(std::strerror(errno));
    ::close(EpollFd);
    EpollFd = -1;
    return false;
  }
  // The wakeup fd is registered like any other: its handler drains the
  // counter; the posted tasks themselves run in drainPosted().
  struct epoll_event Ev;
  std::memset(&Ev, 0, sizeof(Ev));
  Ev.events = EPOLLIN;
  Ev.data.fd = WakeFd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, WakeFd, &Ev) != 0) {
    Err = "epoll_ctl(wakefd): " + std::string(std::strerror(errno));
    ::close(WakeFd);
    ::close(EpollFd);
    WakeFd = EpollFd = -1;
    return false;
  }
  LastTickNs = nowNs();
  return true;
}

bool EventLoop::add(int Fd, uint32_t Events, FdCallback CB, std::string &Err) {
  struct epoll_event Ev;
  std::memset(&Ev, 0, sizeof(Ev));
  Ev.events = Events;
  Ev.data.fd = Fd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_ADD, Fd, &Ev) != 0) {
    Err = "epoll_ctl(add): " + std::string(std::strerror(errno));
    return false;
  }
  FdHandlers[Fd] = std::move(CB);
  return true;
}

bool EventLoop::mod(int Fd, uint32_t Events, std::string &Err) {
  struct epoll_event Ev;
  std::memset(&Ev, 0, sizeof(Ev));
  Ev.events = Events;
  Ev.data.fd = Fd;
  if (::epoll_ctl(EpollFd, EPOLL_CTL_MOD, Fd, &Ev) != 0) {
    Err = "epoll_ctl(mod): " + std::string(std::strerror(errno));
    return false;
  }
  return true;
}

void EventLoop::del(int Fd) {
  // Ignore ENOENT: closing an fd that was concurrently deregistered (or
  // never registered) is not an error worth surfacing.
  ::epoll_ctl(EpollFd, EPOLL_CTL_DEL, Fd, nullptr);
  FdHandlers.erase(Fd);
}

void EventLoop::post(std::function<void()> Fn) {
  {
    std::lock_guard<std::mutex> L(PostMu);
    Posted.push_back(std::move(Fn));
  }
  uint64_t One = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t R = ::write(WakeFd, &One, sizeof(One));
  (void)R;
}

void EventLoop::stop() {
  Stopping.store(true, std::memory_order_release);
  uint64_t One = 1;
  ssize_t R = ::write(WakeFd, &One, sizeof(One));
  (void)R;
}

void EventLoop::drainPosted() {
  std::vector<std::function<void()>> Batch;
  {
    std::lock_guard<std::mutex> L(PostMu);
    Batch.swap(Posted);
  }
  for (auto &Fn : Batch)
    Fn();
}

uint64_t EventLoop::addTimerAtNs(int64_t DeadlineNs, std::function<void()> Fn) {
  uint64_t Id = NextTimerId++;
  // Round up so a timer never fires before its deadline.
  int64_t Ticks = (DeadlineNs + TickNs - 1) / TickNs;
  unsigned Slot = static_cast<unsigned>(Ticks % WheelSlots);
  Wheel[Slot].push_back(Timer{Id, Ticks * TickNs, std::move(Fn)});
  TimerSlots[Id] = Slot;
  ++PendingTimers;
  return Id;
}

void EventLoop::cancelTimer(uint64_t Id) {
  auto SlotIt = TimerSlots.find(Id);
  if (SlotIt == TimerSlots.end())
    return; // already fired or cancelled
  auto &Slot = Wheel[SlotIt->second];
  TimerSlots.erase(SlotIt);
  for (auto It = Slot.begin(); It != Slot.end(); ++It) {
    if (It->Id == Id) {
      Slot.erase(It);
      --PendingTimers;
      return;
    }
  }
}

void EventLoop::advanceWheel(int64_t NowNs) {
  if (PendingTimers == 0) {
    LastTickNs = NowNs;
    return;
  }
  int64_t FromTick = LastTickNs / TickNs;
  int64_t ToTick = NowNs / TickNs;
  if (ToTick <= FromTick)
    return;
  // Walk at most one full revolution: beyond that every slot has already
  // been visited once and due timers were collected.
  int64_t Steps = ToTick - FromTick;
  if (Steps > static_cast<int64_t>(WheelSlots))
    Steps = WheelSlots;
  std::vector<Timer> Due;
  for (int64_t T = 1; T <= Steps; ++T) {
    unsigned Slot = static_cast<unsigned>((FromTick + T) % WheelSlots);
    auto &Entries = Wheel[Slot];
    for (auto It = Entries.begin(); It != Entries.end();) {
      if (It->DeadlineNs <= NowNs) {
        TimerSlots.erase(It->Id);
        Due.push_back(std::move(*It));
        It = Entries.erase(It);
        --PendingTimers;
      } else {
        ++It;
      }
    }
  }
  LastTickNs = NowNs;
  for (auto &T : Due)
    T.Fn();
}

int EventLoop::msUntilNextTimer(int64_t NowNs) const {
  if (PendingTimers == 0)
    return 200; // idle poll granularity; wakeups interrupt it anyway
  // With timers pending, wake at wheel-tick granularity; scanning all
  // slots for the exact minimum is not worth it at a 2 ms tick.
  int64_t NextTickNs = (NowNs / TickNs + 1) * TickNs;
  int64_t Ms = (NextTickNs - NowNs + 999'999) / 1'000'000;
  return Ms < 1 ? 1 : static_cast<int>(Ms);
}

void EventLoop::run() {
  LoopThreadId = std::this_thread::get_id();
  constexpr int MaxEvents = 256;
  struct epoll_event Events[MaxEvents];
  while (true) {
    int64_t Now = nowNs();
    int TimeoutMs = msUntilNextTimer(Now);
    bool HavePosted;
    {
      std::lock_guard<std::mutex> L(PostMu);
      HavePosted = !Posted.empty();
    }
    if (HavePosted || Stopping.load(std::memory_order_acquire))
      TimeoutMs = 0;
    int N = ::epoll_wait(EpollFd, Events, MaxEvents, TimeoutMs);
    if (N < 0 && errno != EINTR)
      break;
    Iterations.fetch_add(1, std::memory_order_relaxed);
    for (int I = 0; I < N; ++I) {
      int Fd = Events[I].data.fd;
      if (Fd == WakeFd) {
        uint64_t Buf;
        while (::read(WakeFd, &Buf, sizeof(Buf)) > 0) {
        }
        continue;
      }
      auto It = FdHandlers.find(Fd);
      // A handler earlier in this batch may have del()ed this fd.
      if (It != FdHandlers.end())
        It->second(Events[I].events);
    }
    drainPosted();
    advanceWheel(nowNs());
    if (AfterPoll)
      AfterPoll();
    if (Stopping.load(std::memory_order_acquire)) {
      // Final drain: run tasks posted between the check above and exit.
      drainPosted();
      break;
    }
  }
}

} // namespace net
} // namespace lsra
