//===- workloads/Workloads.h - Paper-benchmark analogues -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic programs standing in for the paper's SPEC92/95 benchmarks and
/// UNIX utilities (Table 1/2, Figure 3). Each workload reproduces the
/// register-pressure character the paper attributes to its namesake:
///
///   alvinn    fp neural-net forward pass, low pressure (no spills)
///   doduc     branchy fp kernels, moderate-high fp pressure
///   eqntott   tiny hot comparison procedure, nearly spill-free
///   espresso  integer bit-manipulation loops, moderate pressure
///   fpppp     huge straight-line fp blocks, extreme pressure (spill-heavy)
///   li        call-intensive recursive evaluator, move-dominated
///   tomcatv   fp stencil relaxation, low pressure
///   compress  integer hash loop, low pressure
///   m88ksim   instruction-dispatch simulator loop, light spilling
///   sort      recursive quicksort, moderate pressure with calls
///   wc        byte loop around an I/O call with many live counters —
///             the §3.1 second-chance showcase
///
/// Every program ends by emitting checksums, so two allocations of the same
/// module can be compared for semantic equality via the VM output trace.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_WORKLOADS_WORKLOADS_H
#define LSRA_WORKLOADS_WORKLOADS_H

#include "ir/Module.h"

#include <memory>
#include <string>
#include <vector>

namespace lsra {

struct WorkloadSpec {
  const char *Name;          ///< paper benchmark analogue name
  const char *Description;
  std::unique_ptr<Module> (*Build)();
};

/// All eleven Table 1 workloads, in the paper's row order.
const std::vector<WorkloadSpec> &allWorkloads();

/// Build one workload by name; asserts the name exists.
std::unique_ptr<Module> buildWorkload(const std::string &Name);

// Individual builders (also usable directly from tests).
std::unique_ptr<Module> buildAlvinn();
std::unique_ptr<Module> buildDoduc();
std::unique_ptr<Module> buildEqntott();
std::unique_ptr<Module> buildEspresso();
std::unique_ptr<Module> buildFpppp();
std::unique_ptr<Module> buildLi();
std::unique_ptr<Module> buildTomcatv();
std::unique_ptr<Module> buildCompress();
std::unique_ptr<Module> buildM88ksim();
std::unique_ptr<Module> buildSort();
std::unique_ptr<Module> buildWc();

} // namespace lsra

#endif // LSRA_WORKLOADS_WORKLOADS_H
