//===- workloads/RandomProgram.cpp ----------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/RandomProgram.h"

#include "ir/Builder.h"

#include <vector>

using namespace lsra;

namespace {

constexpr unsigned ScratchBase = 0;
constexpr unsigned ScratchWords = 256;

class Gen {
public:
  Gen(uint64_t Seed, const RandomProgramOptions &Opts)
      : Opts(Opts), S(Seed * 2654435761u + 0x9E3779B97F4A7C15ull) {}

  std::unique_ptr<Module> build();

private:
  RandomProgramOptions Opts;
  uint64_t S;

  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545F4914F6CDD1Dull;
  }
  unsigned pick(unsigned N) { return static_cast<unsigned>(next() % N); }
  int64_t smallImm() { return static_cast<int64_t>(next() % 41) - 20; }

  /// Values in scope, guaranteed to dominate the current insertion point.
  struct Scope {
    std::vector<unsigned> Ints;
    std::vector<unsigned> Fps;
  };

  Module *M = nullptr;
  std::vector<Function *> Helpers;

  unsigned pickInt(FunctionBuilder &B, Scope &Sc) {
    if (Sc.Ints.empty() || pick(8) == 0) {
      unsigned V = B.movi(smallImm());
      Sc.Ints.push_back(V);
      return V;
    }
    return Sc.Ints[pick(Sc.Ints.size())];
  }
  unsigned pickFp(FunctionBuilder &B, Scope &Sc) {
    if (Sc.Fps.empty() || pick(8) == 0) {
      unsigned V = B.movf(static_cast<double>(smallImm()) / 4.0);
      Sc.Fps.push_back(V);
      return V;
    }
    return Sc.Fps[pick(Sc.Fps.size())];
  }

  void emitStatement(FunctionBuilder &B, Scope &Sc, unsigned Depth);
  void emitBlockOfStatements(FunctionBuilder &B, Scope &Sc, unsigned Count,
                             unsigned Depth);
  void buildHelper(unsigned Idx);
};

void Gen::emitStatement(FunctionBuilder &B, Scope &Sc, unsigned Depth) {
  unsigned Kind = pick(12);
  switch (Kind) {
  case 0: { // integer binop
    static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                 Opcode::And, Opcode::Or,  Opcode::Xor,
                                 Opcode::CmpLt, Opcode::CmpEq};
    unsigned A = pickInt(B, Sc), C = pickInt(B, Sc);
    unsigned V = B.binop(Ops[pick(8)], A, C);
    Sc.Ints.push_back(V);
    break;
  }
  case 1: { // guarded division
    unsigned A = pickInt(B, Sc), C = pickInt(B, Sc);
    unsigned Guard = B.ori(C, 1); // never zero... except -1|1; use |1 then +2
    unsigned Pos = B.andi(Guard, 0xFFFF);
    unsigned NonZero = B.ori(Pos, 1);
    unsigned V = pick(2) ? B.div(A, NonZero) : B.rem(A, NonZero);
    Sc.Ints.push_back(V);
    break;
  }
  case 2: { // fp arithmetic
    if (!Opts.UseFloat)
      return;
    static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul};
    unsigned A = pickFp(B, Sc), C = pickFp(B, Sc);
    unsigned V = B.fbinop(Ops[pick(3)], A, C);
    Sc.Fps.push_back(V);
    break;
  }
  case 3: { // int <-> fp conversions
    if (!Opts.UseFloat)
      return;
    if (pick(2)) {
      Sc.Fps.push_back(B.itof(pickInt(B, Sc)));
    } else {
      unsigned F = pickFp(B, Sc);
      // Clamp to avoid UB-ish huge casts: x/(1+x*x) is within [-1,1].
      unsigned Sq = B.fmul(F, F);
      unsigned One = B.movf(1.0);
      unsigned Den = B.fadd(One, Sq);
      unsigned Clamped = B.fdiv(F, Den);
      unsigned Scaled = B.fmul(Clamped, B.movf(1000.0));
      Sc.Ints.push_back(B.ftoi(Scaled));
    }
    break;
  }
  case 4: { // memory store + load through the scratch region
    if (!Opts.UseMemory)
      return;
    unsigned A = pickInt(B, Sc);
    unsigned Slot = B.andi(A, ScratchWords - 1);
    unsigned Base = B.movi(ScratchBase);
    unsigned Addr = B.add(Base, Slot);
    B.store(pickInt(B, Sc), Addr, 0);
    Sc.Ints.push_back(B.load(Addr, 0));
    break;
  }
  case 5: { // mutate an existing value (loop-carried ranges)
    if (Sc.Ints.empty())
      return;
    unsigned V = Sc.Ints[pick(Sc.Ints.size())];
    B.emit(Instr(Opcode::Add, Operand::vreg(V), Operand::vreg(V),
                 Operand::imm(smallImm())));
    break;
  }
  case 6: { // observe
    if (pick(2) || Sc.Fps.empty() || !Opts.UseFloat)
      B.emitValue(pickInt(B, Sc));
    else
      B.femitValue(Sc.Fps[pick(Sc.Fps.size())]);
    break;
  }
  case 7: { // if/else
    if (Depth >= Opts.MaxDepth)
      return;
    unsigned Cond = pickInt(B, Sc);
    Block &Then = B.newBlock("r.then");
    Block &Else = B.newBlock("r.else");
    Block &Join = B.newBlock("r.join");
    B.cbr(Cond, Then, Else);
    B.setBlock(Then);
    {
      Scope Inner = Sc; // values defined inside do not escape
      emitBlockOfStatements(B, Inner, 1 + pick(4), Depth + 1);
      B.br(Join);
    }
    B.setBlock(Else);
    {
      Scope Inner = Sc;
      emitBlockOfStatements(B, Inner, 1 + pick(4), Depth + 1);
      B.br(Join);
    }
    B.setBlock(Join);
    break;
  }
  case 8: { // counted loop
    if (Depth >= Opts.MaxDepth)
      return;
    unsigned Counter = B.movi(0);
    int64_t Trip = 1 + pick(6);
    Block &Head = B.newBlock("r.head");
    Block &Body = B.newBlock("r.body");
    Block &Exit = B.newBlock("r.exit");
    B.br(Head);
    B.setBlock(Head);
    unsigned Cond = B.cmpi(Opcode::CmpLt, Counter, Trip);
    B.cbr(Cond, Body, Exit);
    B.setBlock(Body);
    {
      Scope Inner = Sc;
      // Expose a *copy* of the counter: statements may mutate any value in
      // scope, and mutating the counter itself would unbound the loop.
      Inner.Ints.push_back(B.mov(Counter));
      emitBlockOfStatements(B, Inner, 1 + pick(5), Depth + 1);
    }
    B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
                 Operand::imm(1)));
    B.br(Head);
    B.setBlock(Exit);
    break;
  }
  case 9: { // call a helper
    if (!Opts.UseCalls || Helpers.empty())
      return;
    Function *Callee = Helpers[pick(Helpers.size())];
    std::vector<unsigned> Args;
    for (unsigned I = 0; I < Callee->IntParamVRegs.size(); ++I)
      Args.push_back(pickInt(B, Sc));
    unsigned V = B.call(*Callee, Args);
    if (V != ~0u)
      Sc.Ints.push_back(V);
    break;
  }
  case 10: { // shift
    unsigned A = pickInt(B, Sc);
    unsigned V = pick(2) ? B.shli(A, pick(8)) : B.shri(A, pick(8));
    Sc.Ints.push_back(V);
    break;
  }
  default: { // unary
    unsigned A = pickInt(B, Sc);
    Sc.Ints.push_back(pick(2) ? B.neg(A) : B.notOp(A));
    break;
  }
  }
}

void Gen::emitBlockOfStatements(FunctionBuilder &B, Scope &Sc, unsigned Count,
                                unsigned Depth) {
  for (unsigned I = 0; I < Count; ++I)
    emitStatement(B, Sc, Depth);
}

void Gen::buildHelper(unsigned Idx) {
  unsigned NumParams = 1 + pick(3);
  FunctionBuilder B(*M, "helper" + std::to_string(Idx), NumParams, 0,
                    CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  Scope Sc;
  for (unsigned I = 0; I < NumParams; ++I)
    Sc.Ints.push_back(B.intParam(I));
  RandomProgramOptions Saved = Opts;
  Opts.UseCalls = false; // helpers are leaves: no recursion
  emitBlockOfStatements(B, Sc, 3 + pick(6), Opts.MaxDepth - 1);
  Opts = Saved;
  B.retVal(Sc.Ints[pick(Sc.Ints.size())]);
  Helpers.push_back(&B.function());
}

std::unique_ptr<Module> Gen::build() {
  auto Mod = std::make_unique<Module>();
  M = Mod.get();
  M->reserveMemory(ScratchBase + ScratchWords);
  if (Opts.UseCalls)
    for (unsigned I = 0; I < Opts.HelperFuncs; ++I)
      buildHelper(I);
  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  Scope Sc;
  emitBlockOfStatements(B, Sc, Opts.Statements, 0);
  // Final observation so the run always has output.
  B.emitValue(pickInt(B, Sc));
  B.retVal(B.movi(0));
  return Mod;
}

} // namespace

std::unique_ptr<Module> lsra::buildRandomProgram(
    uint64_t Seed, const RandomProgramOptions &Opts) {
  return Gen(Seed, Opts).build();
}
