//===- workloads/RandomProgram.cpp ----------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/RandomProgram.h"

#include "ir/Builder.h"

#include <vector>

using namespace lsra;

namespace {

constexpr unsigned ScratchBase = 0;
constexpr unsigned ScratchWords = 256;

class Gen {
public:
  Gen(uint64_t Seed, const RandomProgramOptions &Opts)
      : Opts(Opts), S(Seed * 2654435761u + 0x9E3779B97F4A7C15ull) {}

  std::unique_ptr<Module> build();

private:
  RandomProgramOptions Opts;
  uint64_t S;

  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545F4914F6CDD1Dull;
  }
  unsigned pick(unsigned N) { return static_cast<unsigned>(next() % N); }
  int64_t smallImm() { return static_cast<int64_t>(next() % 41) - 20; }

  /// Values in scope, guaranteed to dominate the current insertion point.
  struct Scope {
    std::vector<unsigned> Ints;
    std::vector<unsigned> Fps;
  };

  Module *M = nullptr;
  std::vector<Function *> Helpers;

  unsigned pickInt(FunctionBuilder &B, Scope &Sc) {
    if (Sc.Ints.empty() || pick(8) == 0) {
      unsigned V = B.movi(smallImm());
      Sc.Ints.push_back(V);
      return V;
    }
    return Sc.Ints[pick(Sc.Ints.size())];
  }
  unsigned pickFp(FunctionBuilder &B, Scope &Sc) {
    if (Sc.Fps.empty() || pick(8) == 0) {
      unsigned V = B.movf(static_cast<double>(smallImm()) / 4.0);
      Sc.Fps.push_back(V);
      return V;
    }
    return Sc.Fps[pick(Sc.Fps.size())];
  }

  void emitStatement(FunctionBuilder &B, Scope &Sc, unsigned Depth);
  void emitBlockOfStatements(FunctionBuilder &B, Scope &Sc, unsigned Count,
                             unsigned Depth);
  void buildHelper(unsigned Idx);
};

void Gen::emitStatement(FunctionBuilder &B, Scope &Sc, unsigned Depth) {
  unsigned Kind = pick(17);
  switch (Kind) {
  case 0: { // integer binop
    static const Opcode Ops[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                                 Opcode::And, Opcode::Or,  Opcode::Xor,
                                 Opcode::CmpLt, Opcode::CmpEq};
    unsigned A = pickInt(B, Sc), C = pickInt(B, Sc);
    unsigned V = B.binop(Ops[pick(8)], A, C);
    Sc.Ints.push_back(V);
    break;
  }
  case 1: { // guarded division
    unsigned A = pickInt(B, Sc), C = pickInt(B, Sc);
    unsigned Guard = B.ori(C, 1); // never zero... except -1|1; use |1 then +2
    unsigned Pos = B.andi(Guard, 0xFFFF);
    unsigned NonZero = B.ori(Pos, 1);
    unsigned V = pick(2) ? B.div(A, NonZero) : B.rem(A, NonZero);
    Sc.Ints.push_back(V);
    break;
  }
  case 2: { // fp arithmetic
    if (!Opts.UseFloat)
      return;
    static const Opcode Ops[] = {Opcode::FAdd, Opcode::FSub, Opcode::FMul};
    unsigned A = pickFp(B, Sc), C = pickFp(B, Sc);
    unsigned V = B.fbinop(Ops[pick(3)], A, C);
    Sc.Fps.push_back(V);
    break;
  }
  case 3: { // int <-> fp conversions
    if (!Opts.UseFloat)
      return;
    if (pick(2)) {
      Sc.Fps.push_back(B.itof(pickInt(B, Sc)));
    } else {
      unsigned F = pickFp(B, Sc);
      // Clamp to avoid UB-ish huge casts: x/(1+x*x) is within [-1,1].
      unsigned Sq = B.fmul(F, F);
      unsigned One = B.movf(1.0);
      unsigned Den = B.fadd(One, Sq);
      unsigned Clamped = B.fdiv(F, Den);
      unsigned Scaled = B.fmul(Clamped, B.movf(1000.0));
      Sc.Ints.push_back(B.ftoi(Scaled));
    }
    break;
  }
  case 4: { // memory store + load through the scratch region
    if (!Opts.UseMemory)
      return;
    unsigned A = pickInt(B, Sc);
    unsigned Slot = B.andi(A, ScratchWords - 1);
    unsigned Base = B.movi(ScratchBase);
    unsigned Addr = B.add(Base, Slot);
    B.store(pickInt(B, Sc), Addr, 0);
    Sc.Ints.push_back(B.load(Addr, 0));
    break;
  }
  case 5: { // mutate an existing value (loop-carried ranges)
    if (Sc.Ints.empty())
      return;
    unsigned V = Sc.Ints[pick(Sc.Ints.size())];
    B.emit(Instr(Opcode::Add, Operand::vreg(V), Operand::vreg(V),
                 Operand::imm(smallImm())));
    break;
  }
  case 6: { // observe
    if (pick(2) || Sc.Fps.empty() || !Opts.UseFloat)
      B.emitValue(pickInt(B, Sc));
    else
      B.femitValue(Sc.Fps[pick(Sc.Fps.size())]);
    break;
  }
  case 7: { // if/else
    if (Depth >= Opts.MaxDepth)
      return;
    unsigned Cond = pickInt(B, Sc);
    Block &Then = B.newBlock("r.then");
    Block &Else = B.newBlock("r.else");
    Block &Join = B.newBlock("r.join");
    B.cbr(Cond, Then, Else);
    B.setBlock(Then);
    {
      Scope Inner = Sc; // values defined inside do not escape
      emitBlockOfStatements(B, Inner, 1 + pick(4), Depth + 1);
      B.br(Join);
    }
    B.setBlock(Else);
    {
      Scope Inner = Sc;
      emitBlockOfStatements(B, Inner, 1 + pick(4), Depth + 1);
      B.br(Join);
    }
    B.setBlock(Join);
    break;
  }
  case 8: { // counted loop
    if (Depth >= Opts.MaxDepth)
      return;
    unsigned Counter = B.movi(0);
    int64_t Trip = 1 + pick(6);
    Block &Head = B.newBlock("r.head");
    Block &Body = B.newBlock("r.body");
    Block &Exit = B.newBlock("r.exit");
    B.br(Head);
    B.setBlock(Head);
    unsigned Cond = B.cmpi(Opcode::CmpLt, Counter, Trip);
    B.cbr(Cond, Body, Exit);
    B.setBlock(Body);
    {
      Scope Inner = Sc;
      // Expose a *copy* of the counter: statements may mutate any value in
      // scope, and mutating the counter itself would unbound the loop.
      Inner.Ints.push_back(B.mov(Counter));
      emitBlockOfStatements(B, Inner, 1 + pick(5), Depth + 1);
    }
    B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
                 Operand::imm(1)));
    B.br(Head);
    B.setBlock(Exit);
    break;
  }
  case 9: { // call a helper
    if (!Opts.UseCalls || Helpers.empty())
      return;
    Function *Callee = Helpers[pick(Helpers.size())];
    std::vector<unsigned> Args;
    for (unsigned I = 0; I < Callee->IntParamVRegs.size(); ++I)
      Args.push_back(pickInt(B, Sc));
    unsigned V = B.call(*Callee, Args);
    if (V != ~0u)
      Sc.Ints.push_back(V);
    break;
  }
  case 10: { // shift
    unsigned A = pickInt(B, Sc);
    unsigned V = pick(2) ? B.shli(A, pick(8)) : B.shri(A, pick(8));
    Sc.Ints.push_back(V);
    break;
  }
  case 11: { // loop with guarded break and continue: critical edges by
             // construction (break and continue leave a two-successor block
             // for a multi-predecessor target)
    if (Depth >= Opts.MaxDepth)
      return;
    unsigned Counter = B.movi(0);
    int64_t Trip = 2 + pick(5);
    Block &Head = B.newBlock("c.head");
    Block &Body = B.newBlock("c.body");
    Block &Mid = B.newBlock("c.mid");
    Block &Tail = B.newBlock("c.tail");
    Block &Exit = B.newBlock("c.exit");
    B.br(Head);
    B.setBlock(Head);
    unsigned Cond = B.cmpi(Opcode::CmpLt, Counter, Trip);
    B.cbr(Cond, Body, Exit);
    B.setBlock(Body);
    // Increment up front so break/continue paths cannot unbound the loop.
    B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
                 Operand::imm(1)));
    {
      Scope Inner = Sc;
      Inner.Ints.push_back(B.mov(Counter));
      emitBlockOfStatements(B, Inner, 1 + pick(3), Depth + 1);
      // Sequence every RNG-consuming expression into its own statement:
      // argument evaluation order is unspecified, and letting the compiler
      // choose it would make the generated program depend on the build.
      unsigned BreakV = B.andi(pickInt(B, Inner), 7);
      unsigned BreakG = B.cmpi(Opcode::CmpEq, BreakV,
                               static_cast<int64_t>(pick(8)));
      B.cbr(BreakG, Exit, Mid); // break: critical edge into Exit
      B.setBlock(Mid);
      unsigned ContV = B.andi(pickInt(B, Inner), 3);
      unsigned ContG = B.cmpi(Opcode::CmpEq, ContV,
                              static_cast<int64_t>(pick(4)));
      B.cbr(ContG, Head, Tail); // continue: critical edge into Head
      B.setBlock(Tail);
      emitBlockOfStatements(B, Inner, 1 + pick(2), Depth + 1);
    }
    B.br(Head);
    B.setBlock(Exit);
    break;
  }
  case 12: { // loop-carried accumulators live across a call in the body
    if (!Opts.UseCalls || Helpers.empty() || Depth >= Opts.MaxDepth)
      return;
    Function *Callee = Helpers[pick(Helpers.size())];
    unsigned Acc = B.movi(smallImm());
    bool HasF = Opts.UseFloat && pick(2);
    unsigned FAcc = 0, FStep = 0;
    if (HasF) {
      FAcc = B.movf(static_cast<double>(smallImm()));
      FStep = B.movf(0.25); // live across every call, only read
    }
    unsigned Counter = B.movi(0);
    int64_t Trip = 1 + pick(4);
    Block &Head = B.newBlock("l.head");
    Block &Body = B.newBlock("l.body");
    Block &Exit = B.newBlock("l.exit");
    B.br(Head);
    B.setBlock(Head);
    unsigned Cond = B.cmpi(Opcode::CmpLt, Counter, Trip);
    B.cbr(Cond, Body, Exit);
    B.setBlock(Body);
    {
      Scope Inner = Sc;
      Inner.Ints.push_back(B.mov(Counter));
      std::vector<unsigned> Args;
      for (unsigned I = 0; I < Callee->IntParamVRegs.size(); ++I)
        Args.push_back(pickInt(B, Inner));
      unsigned Ret = B.call(*Callee, Args);
      B.emit(Instr(Opcode::Add, Operand::vreg(Acc), Operand::vreg(Acc),
                   Operand::vreg(Ret)));
      if (HasF)
        B.emit(Instr(Opcode::FAdd, Operand::vreg(FAcc), Operand::vreg(FAcc),
                     Operand::vreg(FStep)));
    }
    B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
                 Operand::imm(1)));
    B.br(Head);
    B.setBlock(Exit);
    Sc.Ints.push_back(Acc);
    if (HasF)
      Sc.Fps.push_back(FAcc);
    B.emitValue(Acc);
    break;
  }
  case 13: { // pressure burst: many int and fp values live simultaneously
    unsigned N = 4 + pick(5);
    std::vector<unsigned> Is, Fs;
    for (unsigned I = 0; I < N; ++I) {
      // Sequenced picks: B.add(pickInt(..), pickInt(..)) would leave the RNG
      // consumption order up to the compiler's argument evaluation order.
      unsigned A = pickInt(B, Sc), C = pickInt(B, Sc);
      Is.push_back(B.add(A, C));
    }
    if (Opts.UseFloat)
      for (unsigned I = 0; I < N; ++I) {
        unsigned A = pickFp(B, Sc), C = pickFp(B, Sc);
        Fs.push_back(B.fadd(A, C));
      }
    unsigned SumI = Is[0];
    for (unsigned I = 1; I < Is.size(); ++I)
      SumI = B.add(SumI, Is[I]);
    Sc.Ints.push_back(SumI);
    if (!Fs.empty()) {
      unsigned SumF = Fs[0];
      for (unsigned I = 1; I < Fs.size(); ++I)
        SumF = B.fadd(SumF, Fs[I]);
      Sc.Fps.push_back(SumF);
    }
    break;
  }
  case 14: { // two-entry two-block cycle (irreducible-ish), counter-bounded
    if (Depth >= Opts.MaxDepth)
      return;
    unsigned Counter = B.movi(0);
    int64_t Trip = 3 + pick(5);
    Block &A = B.newBlock("x.a");
    Block &Bb = B.newBlock("x.b");
    Block &Exit = B.newBlock("x.exit");
    unsigned EntV = B.andi(pickInt(B, Sc), 1);
    unsigned EntG = B.cmpi(Opcode::CmpEq, EntV, 0);
    B.cbr(EntG, A, Bb); // the {A,B} cycle has two entries
    B.setBlock(A);
    B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
                 Operand::imm(1)));
    {
      Scope Inner = Sc;
      emitBlockOfStatements(B, Inner, 1 + pick(2), Depth + 1);
    }
    B.br(Bb);
    B.setBlock(Bb);
    B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
                 Operand::imm(1)));
    unsigned G = B.cmpi(Opcode::CmpLt, Counter, Trip);
    {
      Scope Inner = Sc;
      emitBlockOfStatements(B, Inner, 1 + pick(2), Depth + 1);
    }
    B.cbr(G, A, Exit); // back-edge into the non-header entry
    B.setBlock(Exit);
    break;
  }
  case 15: { // rare conditional early return: a zero-successor block
             // mid-CFG (resolution must not place code after its ret)
    unsigned X = B.andi(pickInt(B, Sc), 63);
    unsigned G = B.cmpi(Opcode::CmpEq, X, static_cast<int64_t>(pick(64)));
    Block &RetB = B.newBlock("r.ret");
    Block &Cont = B.newBlock("r.cont");
    B.cbr(G, RetB, Cont);
    B.setBlock(RetB);
    {
      // Pick from a scope copy: pickInt may *create* a value, and anything
      // defined in this returning block must not leak to later statements.
      Scope Inner = Sc;
      B.emitValue(pickInt(B, Inner));
    }
    B.retVal(B.movi(9));
    B.setBlock(Cont);
    break;
  }
  default: { // unary
    unsigned A = pickInt(B, Sc);
    Sc.Ints.push_back(pick(2) ? B.neg(A) : B.notOp(A));
    break;
  }
  }
}

void Gen::emitBlockOfStatements(FunctionBuilder &B, Scope &Sc, unsigned Count,
                                unsigned Depth) {
  for (unsigned I = 0; I < Count; ++I)
    emitStatement(B, Sc, Depth);
}

void Gen::buildHelper(unsigned Idx) {
  unsigned NumParams = 1 + pick(3);
  FunctionBuilder B(*M, "helper" + std::to_string(Idx), NumParams, 0,
                    CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  Scope Sc;
  for (unsigned I = 0; I < NumParams; ++I)
    Sc.Ints.push_back(B.intParam(I));
  RandomProgramOptions Saved = Opts;
  Opts.UseCalls = false; // helpers are leaves: no recursion
  emitBlockOfStatements(B, Sc, 3 + pick(6), Opts.MaxDepth - 1);
  Opts = Saved;
  B.retVal(Sc.Ints[pick(Sc.Ints.size())]);
  Helpers.push_back(&B.function());
}

std::unique_ptr<Module> Gen::build() {
  auto Mod = std::make_unique<Module>();
  M = Mod.get();
  M->reserveMemory(ScratchBase + ScratchWords);
  if (Opts.UseCalls)
    for (unsigned I = 0; I < Opts.HelperFuncs; ++I)
      buildHelper(I);
  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  Scope Sc;
  emitBlockOfStatements(B, Sc, Opts.Statements, 0);
  // Final observation so the run always has output.
  B.emitValue(pickInt(B, Sc));
  B.retVal(B.movi(0));
  return Mod;
}

} // namespace

std::unique_ptr<Module> lsra::buildRandomProgram(
    uint64_t Seed, const RandomProgramOptions &Opts) {
  return Gen(Seed, Opts).build();
}
