//===- workloads/RandomProgram.h - Seeded program fuzzer -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of structured random programs used by the
/// property-based tests: for any generated program and any allocator at any
/// register limit, executing the allocated code must produce the same
/// output trace as executing the virtual-register original.
///
/// Generated programs are well-formed by construction: every use is
/// dominated by a definition (values defined inside a branch arm or loop
/// body do not escape their scope), loops are counted, divisions are
/// guarded, and memory accesses stay within a scratch region.
///
/// Beyond straight-line arithmetic, ifs, and counted loops, the generator
/// deliberately produces the control-flow shapes that stress a register
/// allocator's edge cases: loops with guarded break/continue (critical
/// edges), loop-carried accumulators live across calls, simultaneous
/// int/fp pressure bursts, counter-bounded two-entry cycles (irreducible
/// control flow), and rare conditional early returns (zero-successor
/// blocks mid-CFG).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_WORKLOADS_RANDOMPROGRAM_H
#define LSRA_WORKLOADS_RANDOMPROGRAM_H

#include "ir/Module.h"

#include <cstdint>
#include <memory>

namespace lsra {

struct RandomProgramOptions {
  unsigned Statements = 60;   ///< approximate statement count in main
  unsigned MaxDepth = 3;      ///< nesting depth of ifs/loops
  unsigned HelperFuncs = 2;   ///< callable leaf functions
  bool UseFloat = true;
  bool UseMemory = true;
  bool UseCalls = true;
};

std::unique_ptr<Module> buildRandomProgram(uint64_t Seed,
                                           const RandomProgramOptions &Opts);

inline std::unique_ptr<Module> buildRandomProgram(uint64_t Seed) {
  return buildRandomProgram(Seed, RandomProgramOptions());
}

} // namespace lsra

#endif // LSRA_WORKLOADS_RANDOMPROGRAM_H
