//===- workloads/Workloads.cpp --------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workloads.h"

#include "ir/Builder.h"

#include <cassert>

using namespace lsra;

namespace {

/// Deterministic PRNG for initial-memory images (xorshift64*).
class Rng {
public:
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545F4914F6CDD1Dull;
  }
  int64_t range(int64_t N) { return static_cast<int64_t>(next() % N); }

private:
  uint64_t S;
};

/// In-place update helpers: redefine an existing vreg (loop-carried values).
void addAssign(FunctionBuilder &B, unsigned V, Operand Rhs) {
  B.emit(Instr(Opcode::Add, Operand::vreg(V), Operand::vreg(V), Rhs));
}
void faddAssign(FunctionBuilder &B, unsigned Acc, unsigned X) {
  B.emit(Instr(Opcode::FAdd, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::vreg(X)));
}
void setAssign(FunctionBuilder &B, unsigned V, Operand Rhs) {
  B.emit(Instr(Opcode::Mov, Operand::vreg(V), Rhs));
}

/// A counted loop: `for (i = 0; i < Trip; ++i) body`. beginLoop leaves the
/// builder positioned in the body; endLoop increments the counter, closes
/// the back edge, and positions the builder in the exit block.
struct CountedLoop {
  Block *Head = nullptr;
  Block *Body = nullptr;
  Block *Exit = nullptr;
  unsigned Counter = 0;
};

CountedLoop beginLoop(FunctionBuilder &B, int64_t Trip, const char *Tag) {
  CountedLoop L;
  L.Counter = B.movi(0);
  L.Head = &B.newBlock(std::string(Tag) + ".head");
  L.Body = &B.newBlock(std::string(Tag) + ".body");
  L.Exit = &B.newBlock(std::string(Tag) + ".exit");
  B.br(*L.Head);
  B.setBlock(*L.Head);
  unsigned Cond = B.cmpi(Opcode::CmpLt, L.Counter, Trip);
  B.cbr(Cond, *L.Body, *L.Exit);
  B.setBlock(*L.Body);
  return L;
}

void endLoop(FunctionBuilder &B, CountedLoop &L) {
  addAssign(B, L.Counter, Operand::imm(1));
  B.br(*L.Head);
  B.setBlock(*L.Exit);
}

} // namespace

// --- alvinn: fp neural-net forward pass (low pressure, no spills) ---------

std::unique_ptr<Module> lsra::buildAlvinn() {
  auto M = std::make_unique<Module>();
  constexpr unsigned In = 0, Wgt = 64, Hid = 640;
  Rng R(0xA111);
  for (unsigned I = 0; I < 32; ++I)
    M->initDouble(In + I, static_cast<double>(R.range(100)) / 50.0 - 1.0);
  for (unsigned I = 0; I < 32 * 8; ++I)
    M->initDouble(Wgt + I, static_cast<double>(R.range(200)) / 100.0 - 1.0);

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  Block &Entry = B.newBlock("entry");
  B.setBlock(Entry);
  unsigned InBase = B.movi(In);
  unsigned WBase = B.movi(Wgt);
  unsigned HBase = B.movi(Hid);
  unsigned One = B.movf(1.0);

  CountedLoop Epoch = beginLoop(B, 40, "epoch");
  {
    CountedLoop J = beginLoop(B, 8, "unit");
    {
      unsigned Acc = B.movf(0.0);
      unsigned WRow = B.muli(J.Counter, 32);
      unsigned WAddr = B.add(WBase, WRow);
      CountedLoop I = beginLoop(B, 32, "dot");
      {
        unsigned InAddr = B.add(InBase, I.Counter);
        unsigned X = B.fload(InAddr, 0);
        unsigned WA = B.add(WAddr, I.Counter);
        unsigned W = B.fload(WA, 0);
        unsigned P = B.fmul(X, W);
        faddAssign(B, Acc, P);
      }
      endLoop(B, I);
      // Smooth squashing: acc / (1 + acc*acc).
      unsigned Sq = B.fmul(Acc, Acc);
      unsigned Den = B.fadd(One, Sq);
      unsigned Out = B.fdiv(Acc, Den);
      unsigned HAddr = B.add(HBase, J.Counter);
      B.fstore(Out, HAddr, 0);
    }
    endLoop(B, J);
  }
  endLoop(B, Epoch);

  unsigned Sum = B.movf(0.0);
  CountedLoop K = beginLoop(B, 8, "sum");
  {
    unsigned HAddr = B.add(HBase, K.Counter);
    unsigned H = B.fload(HAddr, 0);
    faddAssign(B, Sum, H);
  }
  endLoop(B, K);
  B.femitValue(Sum);
  unsigned Zero = B.movi(0);
  B.retVal(Zero);
  return M;
}

// --- doduc: branchy fp kernels, moderate-high pressure ---------------------

std::unique_ptr<Module> lsra::buildDoduc() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Data = 0;
  Rng R(0xD0D0);
  for (unsigned I = 0; I < 64; ++I)
    M->initDouble(Data + I, 0.25 + static_cast<double>(R.range(100)) / 64.0);

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(Data);
  unsigned Acc = B.movf(0.0);
  unsigned Three = B.movf(3.0);

  CountedLoop Iter = beginLoop(B, 3000, "iter");
  {
    unsigned Idx = B.andi(Iter.Counter, 31);
    unsigned A0 = B.add(Base, Idx);
    unsigned X = B.fload(A0, 0);
    unsigned Y = B.fload(A0, 16);
    // The wide kernel runs on the rarer path (X > 3Y), giving the small
    // spill fraction the paper reports for doduc (0.46%/0.49%).
    unsigned Y3 = B.fmul(Y, Three);
    unsigned C = B.fcmp(Opcode::FCmpLt, Y3, X);
    // Layout matters to a linear scan: each block inherits the allocation
    // state of its *linear* predecessor. Laying out hot -> join -> cold
    // keeps the cold kernel's evictions off the hot path entirely (the
    // resolution code for the cold edge lands in the cold block).
    Block &Hot = B.newBlock("narrow");
    Block &Join = B.newBlock("join");
    Block &Cold = B.newBlock("wide");
    B.cbr(C, Cold, Hot);

    B.setBlock(Cold);
    {
      // Wide straight-line kernel: ~27 fp values live at the peak, just
      // above the 25 allocatable fp registers.
      std::vector<unsigned> Vals;
      for (unsigned I = 0; I < 27; ++I) {
        unsigned V = B.fload(A0, static_cast<int64_t>(I));
        Vals.push_back(V);
      }
      unsigned S = B.fmul(Vals[0], Vals[26]);
      for (unsigned I = 1; I < 13; ++I) {
        unsigned P = B.fmul(Vals[I], Vals[26 - I]);
        S = B.fadd(S, P);
      }
      faddAssign(B, Acc, S);
      B.br(Join);
    }
    B.setBlock(Hot);
    {
      unsigned D = B.fsub(X, Y);
      unsigned Q = B.fmul(D, D);
      unsigned E = B.fadd(Q, X);
      faddAssign(B, Acc, E);
      B.br(Join);
    }
    B.setBlock(Join);
  }
  endLoop(B, Iter);
  B.femitValue(Acc);
  B.retVal(B.movi(0));
  return M;
}

// --- eqntott: tiny hot comparison routine (nearly spill-free) ---------------

std::unique_ptr<Module> lsra::buildEqntott() {
  auto M = std::make_unique<Module>();
  constexpr unsigned ArrA = 0, ArrB = 2048, N = 1024;
  Rng R(0xE9E9);
  for (unsigned I = 0; I < N; ++I) {
    int64_t V = R.range(64);
    M->initWord(ArrA + I, V);
    M->initWord(ArrB + I, R.range(16) == 0 ? V + 1 : V);
  }

  // cmppt(pa, pb, n): lexicographic compare of two arrays.
  FunctionBuilder C(*M, "cmppt", 3, 0, CallRetKind::Int);
  {
    Block &Entry = C.newBlock("entry");
    C.setBlock(Entry);
    unsigned Pa = C.intParam(0), Pb = C.intParam(1), Len = C.intParam(2);
    unsigned I = C.movi(0);
    Block &Head = C.newBlock("head");
    Block &Body = C.newBlock("body");
    Block &Diff = C.newBlock("diff");
    Block &Next = C.newBlock("next");
    Block &Equal = C.newBlock("equal");
    C.br(Head);
    C.setBlock(Head);
    unsigned InRange = C.cmp(Opcode::CmpLt, I, Len);
    C.cbr(InRange, Body, Equal);
    C.setBlock(Body);
    unsigned Aa = C.add(Pa, I);
    unsigned Av = C.load(Aa, 0);
    unsigned Ba = C.add(Pb, I);
    unsigned Bv = C.load(Ba, 0);
    unsigned Ne = C.cmp(Opcode::CmpNe, Av, Bv);
    C.cbr(Ne, Diff, Next);
    C.setBlock(Diff);
    unsigned Lt = C.cmp(Opcode::CmpLt, Av, Bv);
    unsigned Two = C.muli(Lt, 2);
    unsigned Res = C.subi(Two, 1); // -1 or +1
    C.retVal(Res);
    C.setBlock(Next);
    addAssign(C, I, Operand::imm(1));
    C.br(Head);
    C.setBlock(Equal);
    C.retVal(C.movi(0));
  }
  Function &Cmppt = *M->findFunction("cmppt");

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  // One-shot setup with briefly high integer pressure (the paper reports a
  // vanishing but non-zero binpack spill fraction).
  {
    std::vector<unsigned> Vals;
    unsigned Base = B.movi(ArrA);
    for (unsigned I = 0; I < 28; ++I)
      Vals.push_back(B.load(Base, static_cast<int64_t>(I * 7 % 64)));
    unsigned S = B.add(Vals[0], Vals[27]);
    for (unsigned I = 1; I < 14; ++I) {
      unsigned P = B.xorOp(Vals[I], Vals[27 - I]);
      S = B.add(S, P);
    }
    B.emitValue(S);
  }
  unsigned Hits = B.movi(0);
  CountedLoop Outer = beginLoop(B, 400, "cmploop");
  {
    unsigned Off = B.andi(Outer.Counter, 255);
    unsigned Pa = B.movi(ArrA);
    unsigned PaO = B.add(Pa, Off);
    unsigned Pb = B.movi(ArrB);
    unsigned PbO = B.add(Pb, Off);
    unsigned Len = B.movi(N - 256);
    unsigned Res = B.call(Cmppt, {PaO, PbO, Len});
    addAssign(B, Hits, Operand::vreg(Res));
  }
  endLoop(B, Outer);
  B.emitValue(Hits);
  B.retVal(B.movi(0));
  return M;
}

// --- espresso: integer bit-manipulation loops, moderate pressure ------------

std::unique_ptr<Module> lsra::buildEspresso() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Cubes = 0, NCubes = 512;
  Rng R(0xE5E5);
  for (unsigned I = 0; I < NCubes * 2; ++I)
    M->initWord(Cubes + I, static_cast<int64_t>(R.next()));

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(Cubes);
  unsigned Count = B.movi(0);
  unsigned Mask = B.movi(0);

  CountedLoop Sweep = beginLoop(B, 40, "sweep");
  {
    CountedLoop I = beginLoop(B, NCubes - 1, "cube");
    {
      unsigned A0 = B.add(Base, B.muli(I.Counter, 2));
      unsigned Lo = B.load(A0, 0);
      unsigned Hi = B.load(A0, 1);
      unsigned Lo2 = B.load(A0, 2);
      unsigned Hi2 = B.load(A0, 3);
      // Wide combinational cone: ~26 live ints at the peak.
      std::vector<unsigned> T;
      T.push_back(B.andOp(Lo, Lo2));
      T.push_back(B.orOp(Hi, Hi2));
      T.push_back(B.xorOp(Lo, Hi2));
      T.push_back(B.xorOp(Hi, Lo2));
      for (unsigned K = 0; K < 18; ++K) {
        unsigned X = B.shli(T[T.size() - 4], 1);
        unsigned Y = B.shri(T[T.size() - 1], 2);
        T.push_back(B.xorOp(X, Y));
      }
      unsigned S = T[4];
      for (unsigned K = 5; K < T.size(); ++K)
        S = B.add(S, T[K]);
      unsigned Nz = B.cmpi(Opcode::CmpNe, S, 0);
      addAssign(B, Count, Operand::vreg(Nz));
      B.emit(Instr(Opcode::Xor, Operand::vreg(Mask), Operand::vreg(Mask),
                   Operand::vreg(S)));
    }
    endLoop(B, I);
  }
  endLoop(B, Sweep);
  B.emitValue(Count);
  B.emitValue(Mask);
  B.retVal(B.movi(0));
  return M;
}

// --- fpppp: enormous straight-line fp blocks, extreme pressure --------------

std::unique_ptr<Module> lsra::buildFpppp() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Data = 0, NVals = 96;
  Rng R(0xF9F9);
  for (unsigned I = 0; I < NVals; ++I)
    M->initDouble(Data + I, 0.5 + static_cast<double>(R.range(64)) / 64.0);

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(Data);
  unsigned Acc = B.movf(0.0);

  CountedLoop Iter = beginLoop(B, 1500, "iter");
  {
    // Load a large working set, then consume it in reverse so everything
    // stays live simultaneously (~60 fp temps at the peak, well above the
    // 25 allocatable fp registers).
    std::vector<unsigned> Vals;
    for (unsigned I = 0; I < 60; ++I)
      Vals.push_back(B.fload(Base, static_cast<int64_t>(I)));
    unsigned S = B.fmul(Vals[59], Vals[0]);
    for (unsigned I = 1; I < 30; ++I) {
      unsigned P = B.fmul(Vals[I], Vals[59 - I]);
      S = B.fadd(S, P);
    }
    // Second wave reusing the same loads in a different pattern.
    unsigned S2 = B.fadd(Vals[10], Vals[50]);
    for (unsigned I = 0; I < 20; ++I) {
      unsigned P = B.fsub(Vals[I * 2], Vals[I * 2 + 19]);
      S2 = B.fadd(S2, P);
    }
    unsigned Prod = B.fmul(S, S2);
    faddAssign(B, Acc, Prod);
  }
  endLoop(B, Iter);
  B.femitValue(Acc);
  B.retVal(B.movi(0));
  return M;
}

// --- li: call-intensive recursive expression evaluator -----------------------

std::unique_ptr<Module> lsra::buildLi() {
  auto M = std::make_unique<Module>();
  // Expression tree nodes: [op, left, right, value] quadruples. op 0 = leaf.
  constexpr unsigned Nodes = 0, NNodes = 255;
  Rng R(0x11BB);
  for (unsigned I = 0; I < NNodes; ++I) {
    unsigned A = Nodes + I * 4;
    if (I >= NNodes / 2) { // leaves
      M->initWord(A + 0, 0);
      M->initWord(A + 3, R.range(100));
    } else {
      M->initWord(A + 0, 1 + R.range(3)); // add/sub/mul
      M->initWord(A + 1, Nodes + (2 * I + 1) * 4);
      M->initWord(A + 2, Nodes + (2 * I + 2) * 4);
    }
  }

  FunctionBuilder E(*M, "eval", 1, 0, CallRetKind::Int);
  Function &Eval = *M->findFunction("eval");
  {
    E.setBlock(E.newBlock("entry"));
    unsigned Node = E.intParam(0);
    unsigned Op = E.load(Node, 0);
    Block &Leaf = E.newBlock("leaf");
    Block &Inner = E.newBlock("inner");
    unsigned IsLeaf = E.cmpi(Opcode::CmpEq, Op, 0);
    E.cbr(IsLeaf, Leaf, Inner);
    E.setBlock(Leaf);
    E.retVal(E.load(Node, 3));
    E.setBlock(Inner);
    unsigned L = E.load(Node, 1);
    unsigned Rn = E.load(Node, 2);
    unsigned Lv = E.call(Eval, {L});
    unsigned Rv = E.call(Eval, {Rn});
    Block &IsAdd = E.newBlock("is.add");
    Block &NotAdd = E.newBlock("not.add");
    Block &IsSub = E.newBlock("is.sub");
    Block &IsMul = E.newBlock("is.mul");
    unsigned AddP = E.cmpi(Opcode::CmpEq, Op, 1);
    E.cbr(AddP, IsAdd, NotAdd);
    E.setBlock(IsAdd);
    E.retVal(E.add(Lv, Rv));
    E.setBlock(NotAdd);
    unsigned SubP = E.cmpi(Opcode::CmpEq, Op, 2);
    E.cbr(SubP, IsSub, IsMul);
    E.setBlock(IsSub);
    E.retVal(E.sub(Lv, Rv));
    E.setBlock(IsMul);
    unsigned P = E.mul(Lv, Rv);
    unsigned Clip = E.andi(P, 0xFFFFFF);
    E.retVal(Clip);
  }

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Sum = B.movi(0);
  CountedLoop Reps = beginLoop(B, 1200, "reps");
  {
    unsigned Root = B.movi(Nodes);
    unsigned V = B.call(Eval, {Root});
    addAssign(B, Sum, Operand::vreg(V));
  }
  endLoop(B, Reps);
  B.emitValue(Sum);
  B.retVal(B.movi(0));
  return M;
}

// --- tomcatv: fp stencil relaxation, low pressure ----------------------------

std::unique_ptr<Module> lsra::buildTomcatv() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Grid = 0, Dim = 48;
  Rng R(0x707C);
  for (unsigned I = 0; I < Dim * Dim; ++I)
    M->initDouble(Grid + I, static_cast<double>(R.range(100)) / 25.0);

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(Grid);
  unsigned Quarter = B.movf(0.25);

  CountedLoop Sweep = beginLoop(B, 25, "sweep");
  {
    CountedLoop I = beginLoop(B, Dim - 2, "row");
    {
      unsigned Row = B.addi(I.Counter, 1);
      unsigned RowOff = B.muli(Row, Dim);
      unsigned RowBase = B.add(Base, RowOff);
      CountedLoop J = beginLoop(B, Dim - 2, "col");
      {
        unsigned Col = B.addi(J.Counter, 1);
        unsigned A = B.add(RowBase, Col);
        unsigned Up = B.fload(A, -static_cast<int64_t>(Dim));
        unsigned Dn = B.fload(A, static_cast<int64_t>(Dim));
        unsigned Lf = B.fload(A, -1);
        unsigned Rt = B.fload(A, 1);
        unsigned S1 = B.fadd(Up, Dn);
        unsigned S2 = B.fadd(Lf, Rt);
        unsigned S = B.fadd(S1, S2);
        unsigned Nv = B.fmul(S, Quarter);
        B.fstore(Nv, A, 0);
      }
      endLoop(B, J);
    }
    endLoop(B, I);
  }
  endLoop(B, Sweep);

  // Checksum a diagonal.
  unsigned Sum = B.movf(0.0);
  CountedLoop K = beginLoop(B, Dim, "chk");
  {
    unsigned Off = B.muli(K.Counter, Dim + 1);
    unsigned A = B.add(Base, Off);
    unsigned V = B.fload(A, 0);
    faddAssign(B, Sum, V);
  }
  endLoop(B, K);
  B.femitValue(Sum);
  B.retVal(B.movi(0));
  return M;
}

// --- compress: integer hash loop, low pressure -------------------------------

std::unique_ptr<Module> lsra::buildCompress() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Input = 0, NIn = 8192, Table = 9000, TSize = 1024;
  Rng R(0xC0C0);
  for (unsigned I = 0; I < NIn; ++I)
    M->initWord(Input + I, R.range(256));
  M->reserveMemory(Table + TSize);

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned InBase = B.movi(Input);
  unsigned TBase = B.movi(Table);
  unsigned H = B.movi(0);
  unsigned Emitted = B.movi(0);

  CountedLoop I = beginLoop(B, NIn, "scan");
  {
    unsigned A = B.add(InBase, I.Counter);
    unsigned Byte = B.load(A, 0);
    unsigned H33 = B.muli(H, 33);
    unsigned Mix = B.add(H33, Byte);
    setAssign(B, H, Operand::vreg(B.andi(Mix, 0xFFFF)));
    unsigned Slot = B.andi(H, TSize - 1);
    unsigned TA = B.add(TBase, Slot);
    unsigned Old = B.load(TA, 0);
    unsigned Match = B.cmp(Opcode::CmpEq, Old, Byte);
    addAssign(B, Emitted, Operand::vreg(Match));
    B.store(Byte, TA, 0);
  }
  endLoop(B, I);
  B.emitValue(H);
  B.emitValue(Emitted);
  B.retVal(B.movi(0));
  return M;
}

// --- m88ksim: instruction-dispatch simulator loop ----------------------------

std::unique_ptr<Module> lsra::buildM88ksim() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Prog = 0, NProg = 4096, RegFile = 5000;
  Rng R(0x8888);
  for (unsigned I = 0; I < NProg; ++I)
    M->initWord(Prog + I, static_cast<int64_t>(R.next() & 0xFFFF));
  for (unsigned I = 0; I < 16; ++I)
    M->initWord(RegFile + I, R.range(1000));

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned PBase = B.movi(Prog);
  unsigned RBase = B.movi(RegFile);
  unsigned Cycles = B.movi(0);

  CountedLoop Pass = beginLoop(B, 6, "pass");
  {
    CountedLoop Pc = beginLoop(B, NProg, "fetch");
    {
      unsigned IA = B.add(PBase, Pc.Counter);
      unsigned Word = B.load(IA, 0);
      unsigned Op = B.andi(Word, 3);
      unsigned Rs1 = B.andi(B.shri(Word, 2), 15);
      unsigned Rs2 = B.andi(B.shri(Word, 6), 15);
      unsigned Rd = B.andi(B.shri(Word, 10), 15);
      unsigned V1 = B.load(B.add(RBase, Rs1), 0);
      unsigned V2 = B.load(B.add(RBase, Rs2), 0);
      Block &OpAdd = B.newBlock("op.add");
      Block &NotAdd = B.newBlock("op.notadd");
      Block &OpSub = B.newBlock("op.sub");
      Block &NotSub = B.newBlock("op.notsub");
      Block &OpXor = B.newBlock("op.xor");
      Block &OpSh = B.newBlock("op.sh");
      Block &WB = B.newBlock("wb");
      unsigned Res = B.movi(0);
      B.cbr(B.cmpi(Opcode::CmpEq, Op, 0), OpAdd, NotAdd);
      B.setBlock(OpAdd);
      setAssign(B, Res, Operand::vreg(B.add(V1, V2)));
      B.br(WB);
      B.setBlock(NotAdd);
      B.cbr(B.cmpi(Opcode::CmpEq, Op, 1), OpSub, NotSub);
      B.setBlock(OpSub);
      setAssign(B, Res, Operand::vreg(B.sub(V1, V2)));
      B.br(WB);
      B.setBlock(NotSub);
      B.cbr(B.cmpi(Opcode::CmpEq, Op, 2), OpXor, OpSh);
      B.setBlock(OpXor);
      setAssign(B, Res, Operand::vreg(B.xorOp(V1, V2)));
      B.br(WB);
      B.setBlock(OpSh);
      setAssign(B, Res, Operand::vreg(B.add(B.shli(V1, 1), V2)));
      B.br(WB);
      B.setBlock(WB);
      unsigned Clipped = B.andi(Res, 0xFFFFFFFF);
      B.store(Clipped, B.add(RBase, Rd), 0);
      addAssign(B, Cycles, Operand::imm(1));
    }
    endLoop(B, Pc);
  }
  endLoop(B, Pass);

  unsigned Chk = B.movi(0);
  CountedLoop K = beginLoop(B, 16, "chk");
  {
    unsigned V = B.load(B.add(RBase, K.Counter), 0);
    B.emit(Instr(Opcode::Xor, Operand::vreg(Chk), Operand::vreg(Chk),
                 Operand::vreg(V)));
  }
  endLoop(B, K);
  B.emitValue(Cycles);
  B.emitValue(Chk);
  B.retVal(B.movi(0));
  return M;
}

// --- sort: recursive quicksort ------------------------------------------------

std::unique_ptr<Module> lsra::buildSort() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Arr = 0, N = 4096;
  Rng R(0x5047);
  for (unsigned I = 0; I < N; ++I)
    M->initWord(Arr + I, R.range(1000000));

  FunctionBuilder Q(*M, "qsort", 2, 0, CallRetKind::None);
  Function &Qsort = *M->findFunction("qsort");
  {
    Q.setBlock(Q.newBlock("entry"));
    unsigned Lo = Q.intParam(0), Hi = Q.intParam(1);
    Block &Work = Q.newBlock("work");
    Block &Done = Q.newBlock("done");
    unsigned Small = Q.cmp(Opcode::CmpGe, Lo, Hi);
    Q.cbr(Small, Done, Work);
    Q.setBlock(Done);
    Q.retVoid();
    Q.setBlock(Work);
    // Lomuto partition with the last element as pivot.
    unsigned PivA = Q.movi(Arr);
    unsigned PivAddr = Q.add(PivA, Hi);
    unsigned Pivot = Q.load(PivAddr, 0);
    unsigned Store = Q.mov(Lo);
    unsigned J = Q.mov(Lo);
    Block &Head = Q.newBlock("part.head");
    Block &Body = Q.newBlock("part.body");
    Block &Swap = Q.newBlock("part.swap");
    Block &Next = Q.newBlock("part.next");
    Block &After = Q.newBlock("part.after");
    Q.br(Head);
    Q.setBlock(Head);
    unsigned InRange = Q.cmp(Opcode::CmpLt, J, Hi);
    Q.cbr(InRange, Body, After);
    Q.setBlock(Body);
    unsigned JA = Q.add(PivA, J);
    unsigned JV = Q.load(JA, 0);
    unsigned LtP = Q.cmp(Opcode::CmpLt, JV, Pivot);
    Q.cbr(LtP, Swap, Next);
    Q.setBlock(Swap);
    unsigned SA = Q.add(PivA, Store);
    unsigned SV = Q.load(SA, 0);
    Q.store(JV, SA, 0);
    Q.store(SV, JA, 0);
    addAssign(Q, Store, Operand::imm(1));
    Q.br(Next);
    Q.setBlock(Next);
    addAssign(Q, J, Operand::imm(1));
    Q.br(Head);
    Q.setBlock(After);
    // Swap pivot into place.
    unsigned SA2 = Q.add(PivA, Store);
    unsigned SV2 = Q.load(SA2, 0);
    Q.store(Pivot, SA2, 0);
    Q.store(SV2, PivAddr, 0);
    // Recurse on both halves.
    unsigned StoreM1 = Q.subi(Store, 1);
    Q.call(Qsort, {Lo, StoreM1});
    unsigned StoreP1 = Q.addi(Store, 1);
    Q.call(Qsort, {StoreP1, Hi});
    Q.retVoid();
  }

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Lo = B.movi(0);
  unsigned Hi = B.movi(N - 1);
  B.call(Qsort, {Lo, Hi});
  // Verify sortedness and checksum.
  unsigned Base = B.movi(Arr);
  unsigned Bad = B.movi(0);
  unsigned Sum = B.movi(0);
  CountedLoop I = beginLoop(B, N - 1, "verify");
  {
    unsigned A = B.add(Base, I.Counter);
    unsigned V0 = B.load(A, 0);
    unsigned V1 = B.load(A, 1);
    unsigned Gt = B.cmp(Opcode::CmpGt, V0, V1);
    addAssign(B, Bad, Operand::vreg(Gt));
    unsigned Rot = B.muli(Sum, 3);
    setAssign(B, Sum, Operand::vreg(B.xorOp(Rot, V0)));
  }
  endLoop(B, I);
  B.emitValue(Bad);
  B.emitValue(Sum);
  B.retVal(B.movi(0));
  return M;
}

// --- wc: byte loop around a call with many live counters ---------------------

std::unique_ptr<Module> lsra::buildWc() {
  auto M = std::make_unique<Module>();
  constexpr unsigned Input = 0, NIn = 12000;
  Rng R(0x1C1C);
  for (unsigned I = 0; I < NIn; ++I) {
    int64_t Roll = R.range(100);
    int64_t Byte = Roll < 15 ? 32 : (Roll < 18 ? 10 : 33 + R.range(90));
    M->initWord(Input + I, Byte);
  }

  // The "I/O routine": returns the next byte; does a little bookkeeping so
  // it is a real call that clobbers caller-saved registers.
  FunctionBuilder G(*M, "getbyte", 1, 0, CallRetKind::Int);
  Function &Getbyte = *M->findFunction("getbyte");
  {
    G.setBlock(G.newBlock("entry"));
    unsigned Pos = G.intParam(0);
    unsigned Base = G.movi(Input);
    unsigned A = G.add(Base, Pos);
    unsigned V = G.load(A, 0);
    // A touch of real work (kept live by the store) so the callee behaves
    // like an I/O routine rather than a single load.
    unsigned T1 = G.muli(V, 7);
    unsigned T2 = G.xori(T1, 0x55);
    G.store(T2, Base, NIn); // scratch word just past the input
    G.retVal(V);
  }

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  // Mutable values, defined first so the first-encounter allocation gives
  // them the six callee-saved registers (they are written every iteration,
  // so spilling them would cost a store AND a load per trip): the loop
  // counter plus five word-count state variables.
  unsigned Counter = B.movi(0);
  unsigned Lines = B.movi(0);
  unsigned Words = B.movi(0);
  unsigned Chars = B.movi(0);
  unsigned InWord = B.movi(0);
  unsigned Caps = B.movi(0); // bytes in [ThA, ThZ]
  // Loop-invariant values live throughout the loop (and thus across the
  // call): with the callee-saved file full these can only sit in
  // caller-saved registers, whose lifetime holes end at the call (§2.5).
  // Each is used twice per iteration, which is exactly where second chance
  // wins: one reload per iteration instead of one load per use.
  unsigned ThA = B.movi(65), ThZ = B.movi(90), Th0 = B.movi(48),
           Th9 = B.movi(57), ThL = B.movi(96), ThSp = B.movi(32),
           ThNl = B.movi(10);
  // A warm-up call (stream open / priming read): its evictions give every
  // threshold its one-time spill store *outside* the loop, so the in-loop
  // evictions at the hot call find register and memory consistent and emit
  // no stores — the §3.1 "avoiding unnecessary stores" effect.
  addAssign(B, Chars, Operand::vreg(B.call(Getbyte, {Counter})));
  setAssign(B, Chars, Operand::imm(0));

  // Hand-rolled counted loop (the counter must predate the thresholds).
  CountedLoop I;
  I.Counter = Counter;
  I.Head = &B.newBlock("scan.head");
  I.Body = &B.newBlock("scan.body");
  I.Exit = &B.newBlock("scan.exit");
  B.br(*I.Head);
  B.setBlock(*I.Head);
  B.cbr(B.cmpi(Opcode::CmpLt, Counter, NIn), *I.Body, *I.Exit);
  B.setBlock(*I.Body);
  {
    unsigned C = B.call(Getbyte, {I.Counter});
    // Straight-line classification: every threshold is used twice here, so
    // a second-chance reload after the call serves both uses, while
    // whole-lifetime allocators pay one load per use.
    addAssign(B, Chars, Operand::imm(1));
    unsigned IsNl = B.cmp(Opcode::CmpEq, C, ThNl);
    addAssign(B, Lines, Operand::vreg(IsNl));
    unsigned IsSp = B.cmp(Opcode::CmpEq, C, ThSp);
    unsigned IsWs = B.orOp(IsNl, IsSp);
    unsigned GeA = B.cmp(Opcode::CmpGe, C, ThA);
    unsigned LeZ = B.cmp(Opcode::CmpLe, C, ThZ);
    unsigned IsCap = B.andOp(GeA, LeZ);
    addAssign(B, Caps, Operand::vreg(IsCap));
    unsigned Digit = B.andOp(B.cmp(Opcode::CmpGe, C, Th0),
                             B.cmp(Opcode::CmpLe, C, Th9));
    unsigned Long1 = B.cmp(Opcode::CmpGt, C, ThL);
    unsigned NotNlSp = B.andOp(B.cmp(Opcode::CmpNe, C, ThNl),
                               B.cmp(Opcode::CmpNe, C, ThSp));
    unsigned Odd = B.andOp(B.orOp(B.cmp(Opcode::CmpLt, C, ThA),
                                  B.cmp(Opcode::CmpGt, C, ThZ)),
                           B.orOp(B.cmp(Opcode::CmpLt, C, Th0),
                                  B.cmp(Opcode::CmpLe, C, ThL)));
    unsigned Zero = B.andi(B.andOp(B.orOp(Digit, Long1),
                                   B.andOp(NotNlSp, Odd)),
                           0);
    addAssign(B, Chars, Operand::vreg(Zero)); // keeps the cone alive
    Block &Ws = B.newBlock("ws");
    Block &NonWs = B.newBlock("nonws");
    Block &Join = B.newBlock("join");
    B.cbr(IsWs, Ws, NonWs);
    B.setBlock(Ws);
    addAssign(B, Words, Operand::vreg(InWord));
    setAssign(B, InWord, Operand::imm(0));
    B.br(Join);
    B.setBlock(NonWs);
    setAssign(B, InWord, Operand::imm(1));
    B.br(Join);
    B.setBlock(Join);
  }
  endLoop(B, I);
  addAssign(B, Words, Operand::vreg(InWord)); // final word
  B.emitValue(Lines);
  B.emitValue(Words);
  B.emitValue(Chars);
  B.emitValue(Caps);
  B.retVal(B.movi(0));
  return M;
}

// --- Registry -----------------------------------------------------------------

const std::vector<WorkloadSpec> &lsra::allWorkloads() {
  static const std::vector<WorkloadSpec> Specs = {
      {"alvinn", "fp neural-net forward pass (no spills)", &buildAlvinn},
      {"doduc", "branchy fp kernels (moderate fp pressure)", &buildDoduc},
      {"eqntott", "tiny hot comparison routine", &buildEqntott},
      {"espresso", "integer bit-manipulation (moderate pressure)",
       &buildEspresso},
      {"fpppp", "huge straight-line fp blocks (heavy spills)", &buildFpppp},
      {"li", "call-intensive recursive evaluator", &buildLi},
      {"tomcatv", "fp stencil relaxation", &buildTomcatv},
      {"compress", "integer hash loop", &buildCompress},
      {"m88ksim", "instruction-dispatch simulator", &buildM88ksim},
      {"sort", "recursive quicksort", &buildSort},
      {"wc", "byte loop around a call with many live counters", &buildWc},
  };
  return Specs;
}

std::unique_ptr<Module> lsra::buildWorkload(const std::string &Name) {
  for (const WorkloadSpec &S : allWorkloads())
    if (Name == S.Name)
      return S.Build();
  assert(false && "unknown workload name");
  return nullptr;
}
