//===- workloads/SyntheticModule.h - Table 3 scale generator ---*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generator of compile-time stress modules for the Table 3 experiment: the
/// paper times allocation on modules whose procedures average 245
/// (espresso's cvrin.c), 6218 (fpppp's twldrv.f), and 6697 (fpppp.f)
/// register candidates. These builders produce procedures with a requested
/// candidate count and interference density in the style of fpppp's huge
/// straight-line floating-point blocks.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_WORKLOADS_SYNTHETICMODULE_H
#define LSRA_WORKLOADS_SYNTHETICMODULE_H

#include "ir/Module.h"

#include <memory>

namespace lsra {

struct ScaledModuleOptions {
  unsigned NumProcs = 1;
  unsigned CandidatesPerProc = 1000; ///< approximate vreg count
  unsigned LiveWindow = 40;          ///< simultaneously-live values
  unsigned BlocksPerProc = 8;        ///< straight-line chunks + loop nest
  uint64_t Seed = 1;
};

/// Build a compile-time stress module. The generated code is executable
/// (it emits a checksum), so quality comparisons also work on it.
std::unique_ptr<Module> buildScaledModule(const ScaledModuleOptions &Opts);

/// Parameters for the million-instruction scaling generator: function count
/// × function size × register pressure, fully deterministic. Unlike
/// ScaledModuleOptions (one RNG threaded through all procedures in order),
/// every function here derives its own seed from (Seed, index), so a body
/// can be built in isolation and in any order — the property the streaming
/// pipeline depends on.
struct BigModuleOptions {
  unsigned NumFuncs = 64;         ///< procedures (main is added on top)
  unsigned InstrsPerFunc = 2000;  ///< mean instruction count per procedure
  unsigned LiveWindow = 24;       ///< register pressure (simultaneously live)
  unsigned BlocksPerFunc = 8;     ///< straight-line chunks per procedure
  uint64_t Seed = 1;
  /// Size skew: each function's size is drawn uniformly from
  /// [InstrsPerFunc*(1-Skew), InstrsPerFunc*(1+Skew)] with its own seed.
  /// Skewed sizes exercise the chunked scheduler's load balancing.
  double SizeSkew = 0.5;
};

/// Incremental access to the big module: the shell (declarations + memory
/// image) and per-function body construction. buildBody(M, I) is
/// deterministic in (Opts, I) alone — independent of which other bodies
/// exist and of build order.
class BigModuleGenerator {
public:
  explicit BigModuleGenerator(const BigModuleOptions &Opts) : Opts(Opts) {}

  /// Procedures plus the final main.
  unsigned numFunctions() const { return Opts.NumFuncs + 1; }

  /// All function declarations (ids, names) and the memory image; no
  /// bodies. Function ids equal their generator index.
  std::unique_ptr<Module> buildShell() const;

  /// Materialise function \p I's body into its empty shell function.
  void buildBody(Module &M, unsigned I) const;

  /// Mean instructions for sizing reports (exact count comes from the IR).
  uint64_t approxTotalInstrs() const {
    return static_cast<uint64_t>(Opts.NumFuncs) * Opts.InstrsPerFunc;
  }

private:
  BigModuleOptions Opts;
};

/// Shell + every body: the whole module resident in memory.
std::unique_ptr<Module> buildBigModule(const BigModuleOptions &Opts);

} // namespace lsra

#endif // LSRA_WORKLOADS_SYNTHETICMODULE_H
