//===- workloads/SyntheticModule.h - Table 3 scale generator ---*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generator of compile-time stress modules for the Table 3 experiment: the
/// paper times allocation on modules whose procedures average 245
/// (espresso's cvrin.c), 6218 (fpppp's twldrv.f), and 6697 (fpppp.f)
/// register candidates. These builders produce procedures with a requested
/// candidate count and interference density in the style of fpppp's huge
/// straight-line floating-point blocks.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_WORKLOADS_SYNTHETICMODULE_H
#define LSRA_WORKLOADS_SYNTHETICMODULE_H

#include "ir/Module.h"

#include <memory>

namespace lsra {

struct ScaledModuleOptions {
  unsigned NumProcs = 1;
  unsigned CandidatesPerProc = 1000; ///< approximate vreg count
  unsigned LiveWindow = 40;          ///< simultaneously-live values
  unsigned BlocksPerProc = 8;        ///< straight-line chunks + loop nest
  uint64_t Seed = 1;
};

/// Build a compile-time stress module. The generated code is executable
/// (it emits a checksum), so quality comparisons also work on it.
std::unique_ptr<Module> buildScaledModule(const ScaledModuleOptions &Opts);

} // namespace lsra

#endif // LSRA_WORKLOADS_SYNTHETICMODULE_H
