//===- workloads/SyntheticModule.cpp --------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SyntheticModule.h"

#include "ir/Builder.h"

#include <algorithm>
#include <string>
#include <vector>

using namespace lsra;

namespace {

class Mixer {
public:
  explicit Mixer(uint64_t Seed) : S(Seed ? Seed : 1) {}
  unsigned pick(unsigned N) {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return static_cast<unsigned>((S * 0x2545F4914F6CDD1Dull) % N);
  }

private:
  uint64_t S;
};

/// One procedure in the fpppp style: a loop whose body is a sequence of
/// large straight-line chunks, each keeping ~LiveWindow fp values alive.
void buildProc(Module &M, const std::string &Name,
               const ScaledModuleOptions &Opts, Mixer &Rand) {
  FunctionBuilder B(M, Name, 0, 0, CallRetKind::Float);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(0);
  unsigned Acc = B.movf(0.0);

  // Counted outer loop so the code is executable in reasonable time.
  unsigned Counter = B.movi(0);
  Block &Head = B.newBlock("loop.head");
  Block &Body = B.newBlock("loop.body");
  Block &Exit = B.newBlock("loop.exit");
  B.br(Head);
  B.setBlock(Head);
  unsigned Cond = B.cmpi(Opcode::CmpLt, Counter, 2);
  B.cbr(Cond, Body, Exit);
  B.setBlock(Body);

  unsigned Window = Opts.LiveWindow;
  unsigned PerBlock =
      std::max(1u, Opts.CandidatesPerProc / std::max(1u, Opts.BlocksPerProc));
  std::vector<unsigned> Live;
  for (unsigned I = 0; I < Window; ++I)
    Live.push_back(B.fload(Base, static_cast<int64_t>(I % 64)));

  for (unsigned Blk = 0; Blk < Opts.BlocksPerProc; ++Blk) {
    // Straight-line chunk: each new value combines two random live values,
    // displacing the older of the two so the live window stays ~constant
    // and the interference graph stays dense.
    for (unsigned I = 0; I < PerBlock; ++I) {
      unsigned A = Rand.pick(Window);
      unsigned C = Rand.pick(Window);
      Opcode Op = (I & 1) ? Opcode::FAdd : Opcode::FMul;
      unsigned V = B.fbinop(Op, Live[A], Live[C]);
      Live[A] = V;
    }
    // Block boundary within the loop body.
    Block &NextChunk = B.newBlock("chunk" + std::to_string(Blk));
    B.br(NextChunk);
    B.setBlock(NextChunk);
  }

  unsigned Sum = B.movf(0.0);
  for (unsigned I = 0; I < Window; ++I)
    B.emit(Instr(Opcode::FAdd, Operand::vreg(Sum), Operand::vreg(Sum),
                 Operand::vreg(Live[I])));
  B.emit(Instr(Opcode::FAdd, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::vreg(Sum)));
  B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
               Operand::imm(1)));
  B.br(Head);
  B.setBlock(Exit);
  B.femitValue(Acc);
  B.retVal(Acc);
}

/// Shared body shape for the big-module generator: the fpppp-style loop of
/// buildProc, parameterised by operand class. Integer-flavoured procedures
/// read words 64..127 of the image; fp-flavoured ones read doubles 0..63.
void emitBigProcBody(FunctionBuilder &B, unsigned Window, unsigned PerBlock,
                     unsigned Blocks, bool IntFlavor, Mixer &Rand) {
  unsigned Base = B.movi(0);
  unsigned Acc = IntFlavor ? B.movi(0) : B.movf(0.0);

  unsigned Counter = B.movi(0);
  Block &Head = B.newBlock("loop.head");
  Block &Body = B.newBlock("loop.body");
  Block &Exit = B.newBlock("loop.exit");
  B.br(Head);
  B.setBlock(Head);
  unsigned Cond = B.cmpi(Opcode::CmpLt, Counter, 2);
  B.cbr(Cond, Body, Exit);
  B.setBlock(Body);

  std::vector<unsigned> Live;
  for (unsigned I = 0; I < Window; ++I)
    Live.push_back(IntFlavor
                       ? B.load(Base, static_cast<int64_t>(64 + I % 64))
                       : B.fload(Base, static_cast<int64_t>(I % 64)));

  for (unsigned Blk = 0; Blk < Blocks; ++Blk) {
    for (unsigned I = 0; I < PerBlock; ++I) {
      unsigned A = Rand.pick(Window);
      unsigned C = Rand.pick(Window);
      unsigned V;
      if (IntFlavor) {
        Opcode Op = (I & 1) ? Opcode::Add : Opcode::Xor;
        V = B.binop(Op, Live[A], Live[C]);
      } else {
        Opcode Op = (I & 1) ? Opcode::FAdd : Opcode::FMul;
        V = B.fbinop(Op, Live[A], Live[C]);
      }
      Live[A] = V;
    }
    Block &NextChunk = B.newBlock("chunk" + std::to_string(Blk));
    B.br(NextChunk);
    B.setBlock(NextChunk);
  }

  unsigned Sum = IntFlavor ? B.movi(0) : B.movf(0.0);
  Opcode SumOp = IntFlavor ? Opcode::Add : Opcode::FAdd;
  for (unsigned I = 0; I < Window; ++I)
    B.emit(Instr(SumOp, Operand::vreg(Sum), Operand::vreg(Sum),
                 Operand::vreg(Live[I])));
  B.emit(Instr(SumOp, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::vreg(Sum)));
  B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
               Operand::imm(1)));
  B.br(Head);
  B.setBlock(Exit);
  if (IntFlavor) {
    B.emitValue(Acc);
  } else {
    B.femitValue(Acc);
  }
  B.retVal(Acc);
}

/// splitmix64: one well-mixed per-function seed from (Seed, Index).
uint64_t mixSeed(uint64_t Seed, uint64_t Index) {
  uint64_t Z = Seed + (Index + 1) * 0x9E3779B97F4A7C15ull;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

/// Every third procedure works the integer file; the rest are fp-heavy
/// like the fpppp blocks the paper highlights.
bool bigProcIsInt(unsigned I) { return I % 3 == 2; }

/// Per-procedure shape, derived deterministically from (Opts, I) alone.
struct BigProcShape {
  unsigned Window;
  unsigned PerBlock;
  unsigned Blocks;
  uint64_t BodySeed;
};

BigProcShape bigProcShape(const BigModuleOptions &Opts, unsigned I) {
  Mixer Shape(mixSeed(Opts.Seed, I));
  BigProcShape S;
  double Skew = std::min(0.95, std::max(0.0, Opts.SizeSkew));
  unsigned Lo = static_cast<unsigned>(Opts.InstrsPerFunc * (1.0 - Skew));
  unsigned Span = std::max(
      1u, static_cast<unsigned>(2.0 * Skew * Opts.InstrsPerFunc) + 1);
  unsigned Size = std::max(16u, Lo + Shape.pick(Span));
  S.Window = std::max(4u, Opts.LiveWindow / 2 +
                              Shape.pick(std::max(1u, Opts.LiveWindow)));
  S.Blocks = std::max(1u, Opts.BlocksPerFunc);
  unsigned Chunk = Size > 2 * S.Window + 13 ? Size - 2 * S.Window - 13 : 16;
  S.PerBlock = std::max(1u, Chunk / S.Blocks);
  S.BodySeed = mixSeed(Opts.Seed ^ 0xA5A5A5A5A5A5A5A5ull, I);
  return S;
}

} // namespace

std::unique_ptr<Module> BigModuleGenerator::buildShell() const {
  auto M = std::make_unique<Module>();
  for (unsigned I = 0; I < 64; ++I)
    M->initDouble(I, 0.001 + static_cast<double>(I) / 64.0);
  for (unsigned I = 0; I < 64; ++I)
    M->initWord(64 + I, static_cast<int64_t>(I * 2654435761u % 1021));
  for (unsigned P = 0; P < Opts.NumFuncs; ++P) {
    Function &F = M->addFunction("proc" + std::to_string(P));
    F.RetKind = bigProcIsInt(P) ? CallRetKind::Int : CallRetKind::Float;
  }
  M->addFunction("main").RetKind = CallRetKind::Int;
  return M;
}

void BigModuleGenerator::buildBody(Module &M, unsigned I) const {
  assert(I < numFunctions() && "bad function index");
  Function &F = M.function(I);
  if (I == Opts.NumFuncs) {
    // main: call every procedure, fold the results into per-class
    // checksums.
    FunctionBuilder B(M, F, 0, 0, CallRetKind::Int);
    B.setBlock(B.newBlock("entry"));
    unsigned SumF = B.movf(0.0);
    unsigned SumI = B.movi(0);
    for (unsigned P = 0; P < Opts.NumFuncs; ++P) {
      // By-id call: under the streaming pipeline proc P's body may be
      // building on another thread while main's body builds here, and
      // FunctionBuilder's constructor mutates the callee's signature
      // state. The shape is deterministic, so no callee read is needed.
      unsigned V = B.call(M.function(P).id(),
                          bigProcIsInt(P) ? CallRetKind::Int
                                          : CallRetKind::Float);
      if (bigProcIsInt(P))
        B.emit(Instr(Opcode::Add, Operand::vreg(SumI), Operand::vreg(SumI),
                     Operand::vreg(V)));
      else
        B.emit(Instr(Opcode::FAdd, Operand::vreg(SumF), Operand::vreg(SumF),
                     Operand::vreg(V)));
    }
    B.femitValue(SumF);
    B.emitValue(SumI);
    B.retVal(B.movi(0));
    return;
  }
  BigProcShape S = bigProcShape(Opts, I);
  bool IntFlavor = bigProcIsInt(I);
  FunctionBuilder B(M, F, 0, 0,
                    IntFlavor ? CallRetKind::Int : CallRetKind::Float);
  B.setBlock(B.newBlock("entry"));
  Mixer Rand(S.BodySeed);
  emitBigProcBody(B, S.Window, S.PerBlock, S.Blocks, IntFlavor, Rand);
}

std::unique_ptr<Module> lsra::buildBigModule(const BigModuleOptions &Opts) {
  BigModuleGenerator G(Opts);
  auto M = G.buildShell();
  for (unsigned I = 0; I < G.numFunctions(); ++I)
    G.buildBody(*M, I);
  return M;
}

std::unique_ptr<Module> lsra::buildScaledModule(
    const ScaledModuleOptions &Opts) {
  auto M = std::make_unique<Module>();
  Mixer Rand(Opts.Seed);
  for (unsigned I = 0; I < 64; ++I)
    M->initDouble(I, 0.001 + static_cast<double>(I) / 64.0);

  std::vector<Function *> Procs;
  for (unsigned P = 0; P < Opts.NumProcs; ++P) {
    std::string Name = "proc" + std::to_string(P);
    buildProc(*M, Name, Opts, Rand);
    Procs.push_back(M->findFunction(Name));
  }

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Sum = B.movf(0.0);
  for (Function *P : Procs) {
    unsigned V = B.call(*P, {});
    B.emit(Instr(Opcode::FAdd, Operand::vreg(Sum), Operand::vreg(Sum),
                 Operand::vreg(V)));
  }
  B.femitValue(Sum);
  B.retVal(B.movi(0));
  return M;
}
