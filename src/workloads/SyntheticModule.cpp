//===- workloads/SyntheticModule.cpp --------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SyntheticModule.h"

#include "ir/Builder.h"

#include <string>
#include <vector>

using namespace lsra;

namespace {

class Mixer {
public:
  explicit Mixer(uint64_t Seed) : S(Seed ? Seed : 1) {}
  unsigned pick(unsigned N) {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return static_cast<unsigned>((S * 0x2545F4914F6CDD1Dull) % N);
  }

private:
  uint64_t S;
};

/// One procedure in the fpppp style: a loop whose body is a sequence of
/// large straight-line chunks, each keeping ~LiveWindow fp values alive.
void buildProc(Module &M, const std::string &Name,
               const ScaledModuleOptions &Opts, Mixer &Rand) {
  FunctionBuilder B(M, Name, 0, 0, CallRetKind::Float);
  B.setBlock(B.newBlock("entry"));
  unsigned Base = B.movi(0);
  unsigned Acc = B.movf(0.0);

  // Counted outer loop so the code is executable in reasonable time.
  unsigned Counter = B.movi(0);
  Block &Head = B.newBlock("loop.head");
  Block &Body = B.newBlock("loop.body");
  Block &Exit = B.newBlock("loop.exit");
  B.br(Head);
  B.setBlock(Head);
  unsigned Cond = B.cmpi(Opcode::CmpLt, Counter, 2);
  B.cbr(Cond, Body, Exit);
  B.setBlock(Body);

  unsigned Window = Opts.LiveWindow;
  unsigned PerBlock =
      std::max(1u, Opts.CandidatesPerProc / std::max(1u, Opts.BlocksPerProc));
  std::vector<unsigned> Live;
  for (unsigned I = 0; I < Window; ++I)
    Live.push_back(B.fload(Base, static_cast<int64_t>(I % 64)));

  for (unsigned Blk = 0; Blk < Opts.BlocksPerProc; ++Blk) {
    // Straight-line chunk: each new value combines two random live values,
    // displacing the older of the two so the live window stays ~constant
    // and the interference graph stays dense.
    for (unsigned I = 0; I < PerBlock; ++I) {
      unsigned A = Rand.pick(Window);
      unsigned C = Rand.pick(Window);
      Opcode Op = (I & 1) ? Opcode::FAdd : Opcode::FMul;
      unsigned V = B.fbinop(Op, Live[A], Live[C]);
      Live[A] = V;
    }
    // Block boundary within the loop body.
    Block &NextChunk = B.newBlock("chunk" + std::to_string(Blk));
    B.br(NextChunk);
    B.setBlock(NextChunk);
  }

  unsigned Sum = B.movf(0.0);
  for (unsigned I = 0; I < Window; ++I)
    B.emit(Instr(Opcode::FAdd, Operand::vreg(Sum), Operand::vreg(Sum),
                 Operand::vreg(Live[I])));
  B.emit(Instr(Opcode::FAdd, Operand::vreg(Acc), Operand::vreg(Acc),
               Operand::vreg(Sum)));
  B.emit(Instr(Opcode::Add, Operand::vreg(Counter), Operand::vreg(Counter),
               Operand::imm(1)));
  B.br(Head);
  B.setBlock(Exit);
  B.femitValue(Acc);
  B.retVal(Acc);
}

} // namespace

std::unique_ptr<Module> lsra::buildScaledModule(
    const ScaledModuleOptions &Opts) {
  auto M = std::make_unique<Module>();
  Mixer Rand(Opts.Seed);
  for (unsigned I = 0; I < 64; ++I)
    M->initDouble(I, 0.001 + static_cast<double>(I) / 64.0);

  std::vector<Function *> Procs;
  for (unsigned P = 0; P < Opts.NumProcs; ++P) {
    std::string Name = "proc" + std::to_string(P);
    buildProc(*M, Name, Opts, Rand);
    Procs.push_back(M->findFunction(Name));
  }

  FunctionBuilder B(*M, "main", 0, 0, CallRetKind::Int);
  B.setBlock(B.newBlock("entry"));
  unsigned Sum = B.movf(0.0);
  for (Function *P : Procs) {
    unsigned V = B.call(*P, {});
    B.emit(Instr(Opcode::FAdd, Operand::vreg(Sum), Operand::vreg(Sum),
                 Operand::vreg(V)));
  }
  B.femitValue(Sum);
  B.retVal(B.movi(0));
  return M;
}
