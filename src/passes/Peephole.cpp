//===- passes/Peephole.cpp ------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "passes/Peephole.h"

using namespace lsra;

unsigned lsra::runPeephole(Function &F) {
  unsigned Removed = 0;
  for (Block &B : F.blocks()) {
    std::vector<uint32_t> Kept;
    Kept.reserve(B.size());
    for (unsigned Idx = 0; Idx < B.size(); ++Idx) {
      const Instr &I = B.instrs()[Idx];
      bool IsSelfMove =
          (I.opcode() == Opcode::Mov || I.opcode() == Opcode::FMov) &&
          I.op(0).isReg() && I.op(1).isReg() && I.op(0) == I.op(1);
      if (IsSelfMove || I.opcode() == Opcode::Nop) {
        ++Removed;
        continue;
      }
      Kept.push_back(B.instrId(Idx));
    }
    if (Kept.size() != B.size())
      B.setInstrIds(Kept);
  }
  return Removed;
}

unsigned lsra::runPeephole(Module &M) {
  unsigned Removed = 0;
  for (auto &F : M.functions())
    Removed += runPeephole(*F);
  return Removed;
}
