//===- passes/SpillCleanup.h - Store/load pair cleanup --------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The optimisation the paper sketches as follow-on work in §2.4: "run a
/// later code motion pass that tries to sink stores and hoist loads until
/// they meet. When loads and stores to the same stack location meet, we
/// can replace the two operations with a move from the store's source
/// register to the load's destination register."
///
/// This implementation is the local (per-block) form: it tracks which
/// register mirrors each frame slot and
///   - deletes a reload whose destination already holds the slot's value,
///   - rewrites a reload into a register move when the value is still
///     available in another register, and
///   - deletes a store that is provably redundant (the slot already holds
///     the same register's value).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_PASSES_SPILLCLEANUP_H
#define LSRA_PASSES_SPILLCLEANUP_H

#include "ir/Module.h"
#include "target/Target.h"

namespace lsra {

struct SpillCleanupStats {
  unsigned LoadsDeleted = 0;
  unsigned LoadsToMoves = 0;
  unsigned StoresDeleted = 0;
  unsigned total() const { return LoadsDeleted + LoadsToMoves + StoresDeleted; }
};

/// Run the cleanup on allocated code (physical registers only).
SpillCleanupStats cleanupSpillCode(Function &F, const TargetDesc &TD);

/// Run on every function of \p M.
SpillCleanupStats cleanupSpillCode(Module &M, const TargetDesc &TD);

} // namespace lsra

#endif // LSRA_PASSES_SPILLCLEANUP_H
