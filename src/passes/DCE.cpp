//===- passes/DCE.cpp -----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "passes/DCE.h"

#include "analysis/Liveness.h"
#include "support/BitVector.h"

using namespace lsra;

namespace {

/// True if \p I can be deleted when its definition is dead: it defines a
/// virtual register and has no other observable effect. (Loads are pure in
/// this IR; stores, calls, emits, and terminators are not removable.)
bool isRemovableWhenDead(const Instr &I) {
  if (I.info().NumDefs != 1 || !I.op(0).isVReg())
    return false;
  switch (I.opcode()) {
  case Opcode::CRes:
  case Opcode::FCRes:
    // The call happens regardless; an unused result move is dead.
    return true;
  default:
    return !I.isCall() && !I.isTerminator();
  }
}

} // namespace

unsigned lsra::eliminateDeadCode(Function &F, const TargetDesc &TD) {
  unsigned Removed = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Liveness LV(F, TD);
    for (unsigned B = 0; B < F.numBlocks(); ++B) {
      Block &Blk = F.block(B);
      BitVector Live = LV.liveOut(B);
      std::vector<uint32_t> Kept;
      Kept.reserve(Blk.size());
      // Backward scan; collect survivor ids in reverse.
      for (unsigned Idx = Blk.size(); Idx-- > 0;) {
        const Instr &I = Blk.instrs()[Idx];
        bool Dead = isRemovableWhenDead(I) && !Live.test(I.op(0).vregId());
        if (Dead) {
          ++Removed;
          Changed = true;
          continue;
        }
        forEachDefinedReg(I, [&](const Operand &Op) {
          if (Op.isVReg())
            Live.reset(Op.vregId());
        });
        forEachUsedReg(I, [&](const Operand &Op) {
          if (Op.isVReg())
            Live.set(Op.vregId());
        });
        Kept.push_back(Blk.instrId(Idx));
      }
      if (Kept.size() != Blk.size()) {
        std::vector<uint32_t> Fwd(Kept.rbegin(), Kept.rend());
        Blk.setInstrIds(Fwd);
      }
    }
  }
  return Removed;
}

unsigned lsra::eliminateDeadCode(Module &M, const TargetDesc &TD) {
  unsigned Removed = 0;
  for (auto &F : M.functions())
    Removed += eliminateDeadCode(*F, TD);
  return Removed;
}
