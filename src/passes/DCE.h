//===- passes/DCE.h - Dead code elimination --------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Liveness-based dead code elimination. The paper's experimental setup
/// runs DCE immediately before register allocation in both compiler
/// configurations (§3); removing dead definitions shrinks lifetimes and
/// keeps the allocator comparison fair.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_PASSES_DCE_H
#define LSRA_PASSES_DCE_H

#include "ir/Module.h"
#include "target/Target.h"

namespace lsra {

/// Remove instructions that define a virtual register nobody reads and
/// have no other effect. Returns the number of instructions removed.
unsigned eliminateDeadCode(Function &F, const TargetDesc &TD);

/// Run DCE over every function of \p M.
unsigned eliminateDeadCode(Module &M, const TargetDesc &TD);

} // namespace lsra

#endif // LSRA_PASSES_DCE_H
