//===- passes/Peephole.h - Post-allocation peephole ------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The move-removing peephole the paper runs after both allocators (§3):
/// self-moves produced by coalescing (`mov $5, $5`) and nops are deleted.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_PASSES_PEEPHOLE_H
#define LSRA_PASSES_PEEPHOLE_H

#include "ir/Module.h"

namespace lsra {

/// Remove self-moves and nops; returns the number of instructions removed.
unsigned runPeephole(Function &F);

/// Run over every function of \p M.
unsigned runPeephole(Module &M);

} // namespace lsra

#endif // LSRA_PASSES_PEEPHOLE_H
