//===- support/AllocProfile.h - Heap allocation counters -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide heap allocation profiling. AllocProfile.cpp replaces the
/// global operator new/delete family with thin counting wrappers over
/// malloc/free: every allocation bumps a relaxed atomic count and a byte
/// total. The counters are cumulative since process start; callers measure
/// a region by subtracting two snapshots.
///
/// The wrappers are installed by linking the translation unit, which
/// happens automatically for any binary that calls allocSnapshot() (the
/// function is defined in the same TU as the replaced operators). Under
/// AddressSanitizer the replacement is skipped — ASan's own new/delete
/// bookkeeping stays intact — and allocProfileAvailable() reports false
/// while snapshots read as zero.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SUPPORT_ALLOCPROFILE_H
#define LSRA_SUPPORT_ALLOCPROFILE_H

#include <cstdint>

namespace lsra {

/// Cumulative heap allocation totals since process start.
struct AllocSnapshot {
  uint64_t Count = 0; ///< number of operator new calls
  uint64_t Bytes = 0; ///< sum of requested sizes

  AllocSnapshot operator-(const AllocSnapshot &O) const {
    return {Count - O.Count, Bytes - O.Bytes};
  }
};

/// Read the current totals. Wait-free (two relaxed loads).
AllocSnapshot allocSnapshot();

/// Whether the counting operators are installed in this binary.
bool allocProfileAvailable();

} // namespace lsra

#endif // LSRA_SUPPORT_ALLOCPROFILE_H
