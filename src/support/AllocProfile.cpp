//===- support/AllocProfile.cpp -------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Counting replacements for the global allocation functions. Kept in the
// same translation unit as allocSnapshot() so that referencing the snapshot
// API pulls the replacements into the link.
//
//===----------------------------------------------------------------------===//

#include "support/AllocProfile.h"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#if defined(__SANITIZE_ADDRESS__)
#define LSRA_ALLOC_PROFILE_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LSRA_ALLOC_PROFILE_DISABLED 1
#endif
#endif

namespace {

std::atomic<uint64_t> GCount{0};
std::atomic<uint64_t> GBytes{0};

#ifndef LSRA_ALLOC_PROFILE_DISABLED
inline void *countedAlloc(std::size_t Size, std::size_t Align) {
  GCount.fetch_add(1, std::memory_order_relaxed);
  // A zero-size request still allocates a distinct object; bill it one byte
  // so alloc.bytes >= alloc.count holds (check_trace.py asserts it).
  GBytes.fetch_add(Size ? Size : 1, std::memory_order_relaxed);
  void *P = Align > alignof(std::max_align_t)
                ? std::aligned_alloc(Align, (Size + Align - 1) / Align * Align)
                : std::malloc(Size ? Size : 1);
  return P;
}
#endif

} // namespace

#ifndef LSRA_ALLOC_PROFILE_DISABLED

void *operator new(std::size_t Size) {
  void *P = countedAlloc(Size, 0);
  if (!P)
    throw std::bad_alloc();
  return P;
}

void *operator new[](std::size_t Size) { return ::operator new(Size); }

void *operator new(std::size_t Size, std::align_val_t Align) {
  void *P = countedAlloc(Size, static_cast<std::size_t>(Align));
  if (!P)
    throw std::bad_alloc();
  return P;
}

void *operator new[](std::size_t Size, std::align_val_t Align) {
  return ::operator new(Size, Align);
}

void *operator new(std::size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size, 0);
}

void *operator new[](std::size_t Size, const std::nothrow_t &) noexcept {
  return countedAlloc(Size, 0);
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }
void operator delete(void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete[](void *P, std::align_val_t) noexcept { std::free(P); }
void operator delete(void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete[](void *P, std::size_t, std::align_val_t) noexcept {
  std::free(P);
}
void operator delete(void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}
void operator delete[](void *P, const std::nothrow_t &) noexcept {
  std::free(P);
}

#endif // !LSRA_ALLOC_PROFILE_DISABLED

namespace lsra {

AllocSnapshot allocSnapshot() {
  return {GCount.load(std::memory_order_relaxed),
          GBytes.load(std::memory_order_relaxed)};
}

bool allocProfileAvailable() {
#ifdef LSRA_ALLOC_PROFILE_DISABLED
  return false;
#else
  return true;
#endif
}

} // namespace lsra
