//===- support/ThreadPool.h - Worker pool for parallel compilation -*- C++-*-//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool plus a chunked parallel-for built on it.
/// Per-function register allocation is embarrassingly parallel (every
/// allocator mutates only its own Function), so the module drivers farm
/// functions out to workers with dynamic self-scheduling: workers pull the
/// next unclaimed index from a shared atomic counter, which balances the
/// highly skewed per-function costs (a 6000-candidate procedure next to
/// ten 50-candidate ones) without any work-size estimation.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SUPPORT_THREADPOOL_H
#define LSRA_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lsra {

/// Fixed set of worker threads draining a shared task queue. Tasks may be
/// submitted from any thread; wait() blocks until the queue is drained and
/// all running tasks finished. The first exception thrown by a task is
/// captured and rethrown from wait().
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueue \p Task for execution on some worker.
  void submit(std::function<void()> Task);

  /// Block until every submitted task has completed, then rethrow the first
  /// captured task exception, if any.
  void wait();

  /// Tasks submitted but not yet picked up by a worker. Admission control
  /// (the compile server's load shedding) samples this to bound queueing;
  /// it is advisory — racing submitters can momentarily overshoot a bound
  /// checked against it.
  unsigned queueDepth() const;

  /// Tasks submitted but not yet finished (queued + running).
  unsigned outstanding() const;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Worker count for "use all hardware threads" requests (never 0).
  static unsigned defaultThreadCount();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::function<void()>> Queue;
  mutable std::mutex Mu;
  std::condition_variable HasWork;
  std::condition_variable AllDone;
  std::exception_ptr FirstError;
  unsigned Outstanding = 0; ///< queued + running tasks
  bool Stopping = false;
};

/// Run Body(0..N-1) across up to \p Threads workers with dynamic
/// self-scheduling (each worker repeatedly claims the next unclaimed
/// index). Falls back to a plain loop when \p Threads <= 1 or N <= 1.
/// Body must be safe to invoke concurrently for distinct indices.
void parallelFor(unsigned N, unsigned Threads,
                 const std::function<void(unsigned)> &Body);

/// Chunked variant of parallelFor: workers claim \p ChunkSize consecutive
/// indices per grab from the shared counter, so the claim rate (and the
/// atomic contention) drops by the chunk factor while dynamic
/// self-scheduling still balances skewed chunk costs. Within a chunk the
/// indices are visited in increasing order, and chunks are claimed in
/// increasing start order — properties the streaming module driver relies
/// on for its deterministic index-order merge. ChunkSize == 1 is exactly
/// parallelFor.
void parallelForChunked(unsigned N, unsigned Threads, unsigned ChunkSize,
                        const std::function<void(unsigned)> &Body);

} // namespace lsra

#endif // LSRA_SUPPORT_THREADPOOL_H
