//===- support/Arena.h - Bump-pointer arena -------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena and a std::allocator adaptor over it. The IR uses
/// one arena per function: all block-local id vectors bump-allocate from it,
/// and the whole function body is released in O(#chunks) instead of
/// O(#nodes). Individual deallocation is a no-op — growth by a
/// vector-with-ArenaAllocator leaks the old buffer into the arena, which is
/// the intended trade (freed wholesale with the function).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SUPPORT_ARENA_H
#define LSRA_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace lsra {

class BumpArena {
public:
  BumpArena() = default;
  BumpArena(const BumpArena &) = delete;
  BumpArena &operator=(const BumpArena &) = delete;
  ~BumpArena() { reset(); }

  void *allocate(std::size_t Size, std::size_t Align) {
    std::uintptr_t P = (Cur + Align - 1) & ~static_cast<std::uintptr_t>(Align - 1);
    if (P + Size > End) {
      grow(Size + Align);
      P = (Cur + Align - 1) & ~static_cast<std::uintptr_t>(Align - 1);
    }
    Cur = P + Size;
    return reinterpret_cast<void *>(P);
  }

  template <typename T> T *allocate(std::size_t N = 1) {
    return static_cast<T *>(allocate(N * sizeof(T), alignof(T)));
  }

  /// Free every chunk. All memory handed out becomes invalid.
  void reset() {
    for (void *C : Chunks)
      ::operator delete(C);
    Chunks.clear();
    Cur = End = 0;
    Reserved = 0;
  }

  /// Bytes reserved from the OS (an upper bound on bytes handed out).
  std::size_t bytesReserved() const { return Reserved; }

private:
  void grow(std::size_t Min) {
    std::size_t Sz = Min > ChunkBytes ? Min : ChunkBytes;
    void *C = ::operator new(Sz);
    Chunks.push_back(C);
    Cur = reinterpret_cast<std::uintptr_t>(C);
    End = Cur + Sz;
    Reserved += Sz;
  }

  static constexpr std::size_t ChunkBytes = 1u << 16;
  std::vector<void *> Chunks;
  std::uintptr_t Cur = 0;
  std::uintptr_t End = 0;
  std::size_t Reserved = 0;
};

/// std::allocator adaptor. A null arena falls back to the global heap, so
/// default-constructed containers (e.g. a moved-from vector) stay valid.
template <typename T> class ArenaAllocator {
public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept : A(nullptr) {}
  explicit ArenaAllocator(BumpArena *A) noexcept : A(A) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U> &O) noexcept : A(O.arena()) {}

  T *allocate(std::size_t N) {
    if (A)
      return static_cast<T *>(A->allocate(N * sizeof(T), alignof(T)));
    return static_cast<T *>(::operator new(N * sizeof(T)));
  }
  void deallocate(T *P, std::size_t) noexcept {
    if (!A)
      ::operator delete(P);
    // Arena memory is reclaimed wholesale by BumpArena::reset().
  }

  BumpArena *arena() const { return A; }

  template <typename U> bool operator==(const ArenaAllocator<U> &O) const {
    return A == O.arena();
  }
  template <typename U> bool operator!=(const ArenaAllocator<U> &O) const {
    return A != O.arena();
  }

private:
  BumpArena *A;
};

} // namespace lsra

#endif // LSRA_SUPPORT_ARENA_H
