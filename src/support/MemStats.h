//===- support/MemStats.h - Process memory statistics ----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resident-set-size measurement for the scaling experiments. The kernel's
/// VmHWM high-water mark is monotonic over the whole process, so comparing
/// the peak RSS of several configurations inside one benchmark binary needs
/// a sampler: PeakRssSampler polls the current RSS (/proc/self/statm) on a
/// background thread and records the maximum seen between start() and
/// stop().
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SUPPORT_MEMSTATS_H
#define LSRA_SUPPORT_MEMSTATS_H

#include <atomic>
#include <cstdint>
#include <thread>

namespace lsra {

/// Current resident set size in bytes (0 when /proc is unavailable).
uint64_t currentRssBytes();

/// Lifetime peak resident set size in bytes (VmHWM; 0 when unavailable).
uint64_t peakRssBytes();

/// Samples currentRssBytes() on a background thread and keeps the maximum.
/// One sampler measures one region; start() resets the maximum.
class PeakRssSampler {
public:
  explicit PeakRssSampler(unsigned IntervalMs = 2) : IntervalMs(IntervalMs) {}
  ~PeakRssSampler() { stop(); }

  void start();
  /// Stop sampling and return the maximum RSS observed (including one final
  /// sample taken after the worker joins).
  uint64_t stop();

  uint64_t maxObserved() const { return Max.load(std::memory_order_relaxed); }

private:
  unsigned IntervalMs;
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Max{0};
  std::thread Worker;
};

} // namespace lsra

#endif // LSRA_SUPPORT_MEMSTATS_H
