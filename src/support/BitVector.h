//===- support/BitVector.h - Dense bit vector -----------------*- C++ -*-===//
//
// Part of the lsra project: a reproduction of Traub, Holloway & Smith,
// "Quality and Speed in Linear-scan Register Allocation" (PLDI 1998).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense, word-packed bit vector with the set operations needed by the
/// liveness and consistency dataflow analyses (union, intersection,
/// subtraction, and change detection for fixed-point iteration).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SUPPORT_BITVECTOR_H
#define LSRA_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstdint>
#include <vector>

namespace lsra {

/// Dense fixed-universe bit vector.
///
/// All binary operations require equal sizes; this is asserted. The
/// |=, &=, and subtract operations return true when the receiver changed,
/// which is what iterative dataflow solvers need to detect a fixed point.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(unsigned NumBits, bool Value = false) {
    resize(NumBits, Value);
  }

  unsigned size() const { return NumBits; }
  bool empty() const { return NumBits == 0; }

  void resize(unsigned N, bool Value = false) {
    NumBits = N;
    Words.assign(numWords(N), Value ? ~uint64_t(0) : 0);
    clearUnusedBits();
  }

  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  void setAll() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearUnusedBits();
  }

  bool test(unsigned I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  void set(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }

  void reset(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }

  void setValue(unsigned I, bool V) {
    if (V)
      set(I);
    else
      reset(I);
  }

  /// Number of set bits.
  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += __builtin_popcountll(W);
    return N;
  }

  bool any() const {
    for (uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  bool none() const { return !any(); }

  /// Set union; returns true if the receiver changed.
  bool operator|=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (unsigned I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Set intersection; returns true if the receiver changed.
  bool operator&=(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (unsigned I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Set subtraction (this &= ~RHS); returns true if the receiver changed.
  bool subtract(const BitVector &RHS) {
    assert(NumBits == RHS.NumBits && "size mismatch");
    bool Changed = false;
    for (unsigned I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] &= ~RHS.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  /// Receiver |= (A - B), the transfer function of most backward bit-vector
  /// problems; returns true if the receiver changed.
  bool unionWithDifference(const BitVector &A, const BitVector &B) {
    assert(NumBits == A.NumBits && NumBits == B.NumBits && "size mismatch");
    bool Changed = false;
    for (unsigned I = 0, E = Words.size(); I != E; ++I) {
      uint64_t Old = Words[I];
      Words[I] |= A.Words[I] & ~B.Words[I];
      Changed |= Words[I] != Old;
    }
    return Changed;
  }

  bool operator==(const BitVector &RHS) const {
    return NumBits == RHS.NumBits && Words == RHS.Words;
  }
  bool operator!=(const BitVector &RHS) const { return !(*this == RHS); }

  /// Invoke \p F(index) for every set bit in ascending order. Word-level
  /// iteration (count-trailing-zeros per set bit, whole zero words skipped
  /// in one test), so it is much faster on sparse vectors than per-bit
  /// test() loops and faster than setBits(), which re-scans from the
  /// current bit on every ++.
  template <typename Fn> void forEachSetBit(Fn &&F) const {
    for (unsigned WI = 0, E = static_cast<unsigned>(Words.size()); WI != E;
         ++WI) {
      uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        W &= W - 1;
        F(WI * 64 + Bit);
      }
    }
  }

  /// First set bit at index >= From, or -1 if none.
  int findNext(unsigned From) const;

  /// First set bit, or -1 if the vector is empty of set bits.
  int findFirst() const { return findNext(0); }

  /// Iteration over set bits: for (unsigned I : BV.setBits()) ...
  class SetBitsRange;
  SetBitsRange setBits() const;

private:
  static unsigned numWords(unsigned Bits) { return (Bits + 63) / 64; }

  void clearUnusedBits() {
    if (unsigned Rem = NumBits % 64; Rem != 0 && !Words.empty())
      Words.back() &= (uint64_t(1) << Rem) - 1;
  }

  unsigned NumBits = 0;
  std::vector<uint64_t> Words;
};

class BitVector::SetBitsRange {
public:
  class iterator {
  public:
    iterator(const BitVector *BV, int Cur) : BV(BV), Cur(Cur) {}
    unsigned operator*() const { return static_cast<unsigned>(Cur); }
    iterator &operator++() {
      Cur = BV->findNext(static_cast<unsigned>(Cur) + 1);
      return *this;
    }
    bool operator!=(const iterator &RHS) const { return Cur != RHS.Cur; }

  private:
    const BitVector *BV;
    int Cur;
  };

  explicit SetBitsRange(const BitVector *BV) : BV(BV) {}
  iterator begin() const { return iterator(BV, BV->findFirst()); }
  iterator end() const { return iterator(BV, -1); }

private:
  const BitVector *BV;
};

inline BitVector::SetBitsRange BitVector::setBits() const {
  return SetBitsRange(this);
}

} // namespace lsra

#endif // LSRA_SUPPORT_BITVECTOR_H
