//===- support/BitVector.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitVector.h"

using namespace lsra;

int BitVector::findNext(unsigned From) const {
  if (From >= NumBits)
    return -1;
  unsigned WordIdx = From / 64;
  uint64_t Word = Words[WordIdx] >> (From % 64);
  if (Word)
    return static_cast<int>(From + __builtin_ctzll(Word));
  for (unsigned I = WordIdx + 1, E = Words.size(); I != E; ++I)
    if (Words[I])
      return static_cast<int>(I * 64 + __builtin_ctzll(Words[I]));
  return -1;
}
