//===- support/Timer.cpp --------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

// Timer is header-only; this file anchors the translation unit so the
// library always has at least one symbol from support/.
namespace lsra {
namespace detail {
void anchorTimerTU() {}
} // namespace detail
} // namespace lsra
