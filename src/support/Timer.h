//===- support/Timer.h - Wall-clock stopwatch -----------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock stopwatch used by the Table 3 compile-time
/// experiments, mirroring the paper's "record the time of day before and
/// after allocation" methodology.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SUPPORT_TIMER_H
#define LSRA_SUPPORT_TIMER_H

#include <chrono>

namespace lsra {

/// Accumulating stopwatch. start()/stop() pairs add to the running total so
/// a single timer can sum the allocation time over all procedures in a
/// module, as the paper's Table 3 does.
class Timer {
public:
  void start() { Begin = Clock::now(); }

  void stop() {
    TotalNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - Begin)
                   .count();
  }

  void reset() { TotalNs = 0; }

  double seconds() const { return static_cast<double>(TotalNs) * 1e-9; }
  double milliseconds() const { return static_cast<double>(TotalNs) * 1e-6; }
  long long nanoseconds() const { return TotalNs; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
  long long TotalNs = 0;
};

} // namespace lsra

#endif // LSRA_SUPPORT_TIMER_H
