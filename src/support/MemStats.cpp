//===- support/MemStats.cpp -----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/MemStats.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include <unistd.h>

using namespace lsra;

uint64_t lsra::currentRssBytes() {
  std::FILE *F = std::fopen("/proc/self/statm", "r");
  if (!F)
    return 0;
  unsigned long long Total = 0, Resident = 0;
  int N = std::fscanf(F, "%llu %llu", &Total, &Resident);
  std::fclose(F);
  if (N != 2)
    return 0;
  static const long Page = sysconf(_SC_PAGESIZE);
  return Resident * static_cast<uint64_t>(Page > 0 ? Page : 4096);
}

uint64_t lsra::peakRssBytes() {
  std::FILE *F = std::fopen("/proc/self/status", "r");
  if (!F)
    return 0;
  char Line[256];
  uint64_t KiB = 0;
  while (std::fgets(Line, sizeof(Line), F)) {
    if (std::strncmp(Line, "VmHWM:", 6) == 0) {
      unsigned long long V = 0;
      if (std::sscanf(Line + 6, "%llu", &V) == 1)
        KiB = V;
      break;
    }
  }
  std::fclose(F);
  return KiB * 1024;
}

void PeakRssSampler::start() {
  stop();
  Max.store(currentRssBytes(), std::memory_order_relaxed);
  Running.store(true, std::memory_order_release);
  Worker = std::thread([this] {
    while (Running.load(std::memory_order_acquire)) {
      uint64_t R = currentRssBytes();
      uint64_t M = Max.load(std::memory_order_relaxed);
      while (R > M &&
             !Max.compare_exchange_weak(M, R, std::memory_order_relaxed))
        ;
      std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
    }
  });
}

uint64_t PeakRssSampler::stop() {
  if (Worker.joinable()) {
    Running.store(false, std::memory_order_release);
    Worker.join();
  }
  uint64_t R = currentRssBytes();
  uint64_t M = Max.load(std::memory_order_relaxed);
  if (R > M)
    Max.store(R, std::memory_order_relaxed);
  return Max.load(std::memory_order_relaxed);
}
