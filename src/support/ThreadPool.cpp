//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>

using namespace lsra;

ThreadPool::ThreadPool(unsigned NumThreads) {
  NumThreads = std::max(NumThreads, 1u);
  Workers.reserve(NumThreads);
  for (unsigned I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Stopping = true;
  }
  HasWork.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Task));
    ++Outstanding;
  }
  HasWork.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> Lock(Mu);
  AllDone.wait(Lock, [this] { return Outstanding == 0; });
  if (FirstError) {
    std::exception_ptr E = FirstError;
    FirstError = nullptr;
    std::rethrow_exception(E);
  }
}

unsigned ThreadPool::queueDepth() const {
  std::unique_lock<std::mutex> Lock(Mu);
  return static_cast<unsigned>(Queue.size());
}

unsigned ThreadPool::outstanding() const {
  std::unique_lock<std::mutex> Lock(Mu);
  return Outstanding;
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mu);
  while (true) {
    HasWork.wait(Lock, [this] { return Stopping || !Queue.empty(); });
    if (Queue.empty()) // Stopping, and no work left to drain
      return;
    std::function<void()> Task = std::move(Queue.front());
    Queue.pop_front();
    Lock.unlock();
    try {
      Task();
    } catch (...) {
      Lock.lock();
      if (!FirstError)
        FirstError = std::current_exception();
      Lock.unlock();
    }
    Lock.lock();
    if (--Outstanding == 0)
      AllDone.notify_all();
  }
}

unsigned ThreadPool::defaultThreadCount() {
  unsigned N = std::thread::hardware_concurrency();
  return N ? N : 1;
}

void lsra::parallelFor(unsigned N, unsigned Threads,
                       const std::function<void(unsigned)> &Body) {
  Threads = std::min(Threads, N);
  if (Threads <= 1 || N <= 1) {
    for (unsigned I = 0; I < N; ++I)
      Body(I);
    return;
  }

  std::atomic<unsigned> Next{0};
  auto Drain = [&] {
    for (unsigned I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed))
      Body(I);
  };

  // The calling thread participates, so only Threads - 1 workers are
  // spawned and "Threads = 1" costs no thread creation at all.
  ThreadPool Pool(Threads - 1);
  for (unsigned W = 0; W + 1 < Threads; ++W)
    Pool.submit(Drain);
  Drain();
  Pool.wait();
}

void lsra::parallelForChunked(unsigned N, unsigned Threads, unsigned ChunkSize,
                              const std::function<void(unsigned)> &Body) {
  ChunkSize = std::max(ChunkSize, 1u);
  unsigned NumChunks = ChunkSize >= N ? (N ? 1 : 0)
                                      : (N + ChunkSize - 1) / ChunkSize;
  Threads = std::min(Threads, NumChunks);
  if (Threads <= 1 || NumChunks <= 1) {
    for (unsigned I = 0; I < N; ++I)
      Body(I);
    return;
  }

  std::atomic<unsigned> NextChunk{0};
  auto Drain = [&] {
    for (unsigned C = NextChunk.fetch_add(1, std::memory_order_relaxed);
         C < NumChunks;
         C = NextChunk.fetch_add(1, std::memory_order_relaxed)) {
      unsigned Begin = C * ChunkSize;
      unsigned End = std::min(N, Begin + ChunkSize);
      for (unsigned I = Begin; I < End; ++I)
        Body(I);
    }
  };

  ThreadPool Pool(Threads - 1);
  for (unsigned W = 0; W + 1 < Threads; ++W)
    Pool.submit(Drain);
  Drain();
  Pool.wait();
}
