//===- target/Target.h - Machine description -------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Alpha-like machine description the paper's experiments assume: two
/// register files of 32 registers, a caller-saved scratch set, the six
/// callee-saved registers $9-$14 (and $f9-$f14), and the standard calling
/// convention ($16-$21 argument registers, $0/$f0 return registers).
/// Registers $15 and $26-$31 (gp, ra, at, sp, ...) are reserved and never
/// allocated, leaving 25 allocatable registers per class.
///
/// Also home to the implicit-operand expansion for calls: argument-register
/// uses, the return-register definition, and the caller-saved clobber set
/// are not stored as explicit operands but derived from the Instr's call
/// metadata by forEachUsedReg / forEachDefinedReg / forEachClobberedReg.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_TARGET_TARGET_H
#define LSRA_TARGET_TARGET_H

#include "ir/Instr.h"

#include <cstdint>
#include <vector>

namespace lsra {

class TargetDesc {
public:
  /// The full Alpha-like machine: 25 allocatable registers per class.
  static TargetDesc alphaLike();

  /// A copy restricted to the first \p IntRegs / \p FpRegs registers of the
  /// allocation orders. Used to raise register pressure in experiments
  /// (§3's varying-register-count runs). Calling-convention semantics are
  /// unchanged: calls still clobber the full caller-saved set.
  TargetDesc withRegLimit(unsigned IntRegs, unsigned FpRegs) const;

  unsigned numAllocatable(RegClass RC) const {
    return static_cast<unsigned>(Order[idx(RC)].size());
  }
  bool isAllocatable(unsigned P) const {
    assert(P < NumPRegs && "bad physical register id");
    return (AllocatableBits >> P) & 1;
  }
  bool isCalleeSaved(unsigned P) const {
    assert(P < NumPRegs && "bad physical register id");
    return (CalleeSavedBits >> P) & 1;
  }
  bool isCallerSaved(unsigned P) const {
    assert(P < NumPRegs && "bad physical register id");
    return (CallerSavedBits >> P) & 1;
  }

  /// Allocation preference order for \p RC: caller-saved scratch registers
  /// first, the six callee-saved registers last (using one costs a
  /// save/restore pair in the prologue/epilogue).
  const std::vector<unsigned> &allocOrder(RegClass RC) const {
    return Order[idx(RC)];
  }

  /// Bit mask (over the 64-register id space) of registers a call clobbers.
  uint64_t callClobberMask() const { return CallerSavedBits; }
  /// Bit mask of the callee-saved registers.
  uint64_t calleeSavedMask() const { return CalleeSavedBits; }

  /// Stable 64-bit fingerprint over everything that can change allocation:
  /// both allocation orders and the three register-set masks. Targets with
  /// different register limits fingerprint differently, so they never share
  /// compile-cache entries.
  uint64_t fingerprint() const;

  // --- Calling convention (fixed, independent of register limits) ---------

  static constexpr unsigned NumArgRegs = 6;

  static unsigned intRetReg() { return intReg(0); }
  static unsigned fpRetReg() { return fpReg(0); }
  static unsigned retReg(RegClass RC) {
    return RC == RegClass::Int ? intRetReg() : fpRetReg();
  }
  static unsigned intArgReg(unsigned I) {
    assert(I < NumArgRegs && "argument register index out of range");
    return intReg(16 + I);
  }
  static unsigned fpArgReg(unsigned I) {
    assert(I < NumArgRegs && "argument register index out of range");
    return fpReg(16 + I);
  }

private:
  static unsigned idx(RegClass RC) { return static_cast<unsigned>(RC); }

  std::vector<unsigned> Order[2]; ///< allocation order per register class
  uint64_t AllocatableBits = 0;
  uint64_t CalleeSavedBits = 0;
  uint64_t CallerSavedBits = 0;
};

/// Invoke \p F on every register operand read by \p I, including the
/// implicit argument-register uses of a call (integer arguments first, then
/// floating-point, each in index order). Immediates, labels, slots, and
/// function references are skipped.
template <typename Fn> void forEachUsedReg(const Instr &I, Fn &&F) {
  const OpcodeInfo &Info = I.info();
  for (unsigned S = Info.NumDefs, E = Info.NumDefs + Info.NumUses; S < E; ++S) {
    const Operand &Op = I.op(S);
    if (Op.isReg())
      F(Op);
  }
  if (I.isCall()) {
    for (unsigned A = 0; A < I.CallIntArgs; ++A)
      F(Operand::preg(TargetDesc::intArgReg(A)));
    for (unsigned A = 0; A < I.CallFpArgs; ++A)
      F(Operand::preg(TargetDesc::fpArgReg(A)));
  }
}

/// Invoke \p F on every register operand written by \p I, including the
/// implicit return-register definition of a call.
template <typename Fn> void forEachDefinedReg(const Instr &I, Fn &&F) {
  const OpcodeInfo &Info = I.info();
  for (unsigned S = 0; S < Info.NumDefs; ++S) {
    const Operand &Op = I.op(S);
    if (Op.isReg())
      F(Op);
  }
  if (I.isCall()) {
    if (I.CallRet == CallRetKind::Int)
      F(Operand::preg(TargetDesc::intRetReg()));
    else if (I.CallRet == CallRetKind::Float)
      F(Operand::preg(TargetDesc::fpRetReg()));
  }
}

/// Invoke \p F on every physical register id \p I clobbers (beyond its
/// explicit and implicit defs): the full caller-saved set for calls,
/// nothing for any other instruction. Iterates in ascending register id.
template <typename Fn>
void forEachClobberedReg(const Instr &I, const TargetDesc &TD, Fn &&F) {
  if (!I.isCall())
    return;
  uint64_t Mask = TD.callClobberMask();
  while (Mask) {
    unsigned P = static_cast<unsigned>(__builtin_ctzll(Mask));
    Mask &= Mask - 1;
    F(P);
  }
}

} // namespace lsra

#endif // LSRA_TARGET_TARGET_H
