//===- target/CalleeSave.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "target/CalleeSave.h"

using namespace lsra;

unsigned lsra::insertCalleeSaves(Function &F, const TargetDesc &TD) {
  assert(F.CallsLowered && "insert callee saves after lowering");

  // Collect every callee-saved register the function writes, in ascending
  // register id (integer registers before floating-point).
  uint64_t Written = 0;
  for (const Block &Blk : F.blocks())
    for (const Instr &I : Blk.instrs())
      forEachDefinedReg(I, [&](const Operand &Op) {
        if (Op.isPReg() && TD.isCalleeSaved(Op.pregId()))
          Written |= uint64_t(1) << Op.pregId();
      });
  if (!Written)
    return 0;

  struct Save {
    unsigned Reg;
    unsigned Slot;
    bool IsFloat;
  };
  std::vector<Save> Saves;
  for (uint64_t M = Written; M;) {
    unsigned P = static_cast<unsigned>(__builtin_ctzll(M));
    M &= M - 1;
    bool IsFloat = pregClass(P) == RegClass::Float;
    Saves.push_back(
        {P, F.newSlot(IsFloat ? RegClass::Float : RegClass::Int), IsFloat});
  }

  // Prologue: store each register at the very top of the entry block.
  unsigned Pos = 0;
  for (const Save &S : Saves) {
    Instr St(S.IsFloat ? Opcode::FStSlot : Opcode::StSlot,
             Operand::preg(S.Reg), Operand::slot(S.Slot));
    St.Spill = SpillKind::CalleeSave;
    F.entry().insertAt(Pos++, St);
  }

  // Epilogues: reload each register immediately before every return.
  for (Block &Blk : F.blocks()) {
    if (Blk.empty() || Blk.instrs().back().opcode() != Opcode::Ret)
      continue;
    for (const Save &S : Saves) {
      Instr Ld(S.IsFloat ? Opcode::FLdSlot : Opcode::LdSlot,
               Operand::preg(S.Reg), Operand::slot(S.Slot));
      Ld.Spill = SpillKind::CalleeRestore;
      Blk.insertBeforeTerminator(Ld);
    }
  }

  return static_cast<unsigned>(Saves.size());
}
