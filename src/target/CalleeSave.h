//===- target/CalleeSave.h - Callee-save insertion -------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-allocation insertion of callee-save spills: every callee-saved
/// register the function writes is stored to a fresh frame slot in the
/// prologue and reloaded before each return. Tagged CalleeSave /
/// CalleeRestore so the VM's dynamic accounting can separate them from the
/// allocator's own spill code (the paper's Figure 3 counts candidates
/// only).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_TARGET_CALLEESAVE_H
#define LSRA_TARGET_CALLEESAVE_H

#include "ir/Function.h"
#include "target/Target.h"

namespace lsra {

/// Insert callee-save prologue stores and per-return restores for every
/// callee-saved register \p F defines. Returns the number of registers
/// saved.
unsigned insertCalleeSaves(Function &F, const TargetDesc &TD);

} // namespace lsra

#endif // LSRA_TARGET_CALLEESAVE_H
