//===- target/Target.cpp --------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "target/Target.h"

using namespace lsra;

namespace {

/// Caller-saved register numbers within one class, in allocation preference
/// order: plain scratch registers first ($1-$8, $22-$25), then the
/// convention registers ($0 return, $16-$21 arguments) whose fixed uses are
/// short and block-local after LowerCalls.
constexpr unsigned CallerSavedOrder[] = {1,  2,  3,  4,  5,  6,  7,
                                         8,  22, 23, 24, 25, 0,  16,
                                         17, 18, 19, 20, 21};

/// Callee-saved register numbers within one class ($9-$14), always last in
/// the allocation order.
constexpr unsigned CalleeSavedOrder[] = {9, 10, 11, 12, 13, 14};

} // namespace

TargetDesc TargetDesc::alphaLike() {
  TargetDesc TD;
  for (RegClass RC : {RegClass::Int, RegClass::Float}) {
    unsigned Base = RC == RegClass::Int ? 0 : NumIntPRegs;
    auto &Ord = TD.Order[idx(RC)];
    for (unsigned N : CallerSavedOrder) {
      Ord.push_back(Base + N);
      TD.CallerSavedBits |= uint64_t(1) << (Base + N);
    }
    for (unsigned N : CalleeSavedOrder) {
      Ord.push_back(Base + N);
      TD.CalleeSavedBits |= uint64_t(1) << (Base + N);
    }
    for (unsigned P : Ord)
      TD.AllocatableBits |= uint64_t(1) << P;
  }
  return TD;
}

TargetDesc TargetDesc::withRegLimit(unsigned IntRegs, unsigned FpRegs) const {
  TargetDesc TD = *this;
  unsigned Limits[2] = {IntRegs, FpRegs};
  TD.AllocatableBits = 0;
  for (RegClass RC : {RegClass::Int, RegClass::Float}) {
    auto &Ord = TD.Order[idx(RC)];
    unsigned Limit = Limits[idx(RC)];
    assert(Limit <= Ord.size() && "register limit exceeds machine registers");
    Ord.resize(Limit);
    for (unsigned P : Ord)
      TD.AllocatableBits |= uint64_t(1) << P;
  }
  return TD;
}

uint64_t TargetDesc::fingerprint() const {
  // FNV-1a over the allocation orders and register-set masks.
  uint64_t H = 0xcbf29ce484222325ull;
  auto Mix = [&H](uint64_t V) {
    for (unsigned I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 0x100000001b3ull;
    }
  };
  Mix(0x74640001); // schema tag: "td" v1
  for (RegClass RC : {RegClass::Int, RegClass::Float}) {
    const auto &Ord = Order[idx(RC)];
    Mix(Ord.size());
    for (unsigned P : Ord)
      Mix(P);
  }
  Mix(AllocatableBits);
  Mix(CalleeSavedBits);
  Mix(CallerSavedBits);
  return H;
}
