//===- target/LowerCalls.h - Calling-convention lowering -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expands the builder's calling-convention pseudo ops (CArg/FCArg,
/// CRes/FCRes), parameter bindings, and Ret values into explicit moves
/// through the Alpha-like argument/return registers. This produces exactly
/// the code shape the paper's §2.5 move optimisations target: a burst of
/// convention-register moves around each call and at the procedure entry.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_TARGET_LOWERCALLS_H
#define LSRA_TARGET_LOWERCALLS_H

#include "ir/Module.h"

namespace lsra {

/// Lower calling conventions in \p F. Idempotent (guarded by
/// Function::CallsLowered). Function-local: safe to run on different
/// functions from different threads.
void lowerCalls(Function &F);

/// Lower calling conventions in every function of \p M.
void lowerCalls(Module &M);

} // namespace lsra

#endif // LSRA_TARGET_LOWERCALLS_H
