//===- target/LowerCalls.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "target/LowerCalls.h"

#include "target/Target.h"

using namespace lsra;

void lsra::lowerCalls(Function &F) {
  if (F.CallsLowered)
    return;

  // Bind parameters: the entry block begins with moves out of the argument
  // registers, integer parameters first, each class in declaration order.
  std::vector<Instr> Entry;
  for (unsigned I = 0; I < F.IntParamVRegs.size(); ++I)
    Entry.push_back(Instr(Opcode::Mov, Operand::vreg(F.IntParamVRegs[I]),
                          Operand::preg(TargetDesc::intArgReg(I))));
  for (unsigned I = 0; I < F.FpParamVRegs.size(); ++I)
    Entry.push_back(Instr(Opcode::FMov, Operand::vreg(F.FpParamVRegs[I]),
                          Operand::preg(TargetDesc::fpArgReg(I))));
  if (!Entry.empty() && F.numBlocks() > 0)
    for (unsigned I = 0; I < Entry.size(); ++I)
      F.entry().insertAt(I, Entry[I]);

  for (Block &Blk : F.blocks()) {
    // 1:1 replacements mutate the instruction in place (id preserved);
    // only a Ret that expands into a move + Ret forces an id-list rebuild.
    std::vector<uint32_t> Out;
    Out.reserve(Blk.size());
    bool Changed = false;
    for (unsigned Idx = 0; Idx < Blk.size(); ++Idx) {
      Instr &I = Blk.instrs()[Idx];
      uint32_t Id = Blk.instrId(Idx);
      switch (I.opcode()) {
      case Opcode::CArg: {
        unsigned ArgIdx = static_cast<unsigned>(I.op(1).immValue());
        I = Instr(Opcode::Mov, Operand::preg(TargetDesc::intArgReg(ArgIdx)),
                  I.op(0));
        Out.push_back(Id);
        break;
      }
      case Opcode::FCArg: {
        unsigned ArgIdx = static_cast<unsigned>(I.op(1).immValue());
        I = Instr(Opcode::FMov, Operand::preg(TargetDesc::fpArgReg(ArgIdx)),
                  I.op(0));
        Out.push_back(Id);
        break;
      }
      case Opcode::CRes:
        I = Instr(Opcode::Mov, I.op(0),
                  Operand::preg(TargetDesc::intRetReg()));
        Out.push_back(Id);
        break;
      case Opcode::FCRes:
        I = Instr(Opcode::FMov, I.op(0),
                  Operand::preg(TargetDesc::fpRetReg()));
        Out.push_back(Id);
        break;
      case Opcode::Ret: {
        // Route the return value through the convention register so the
        // allocator sees a fixed-register move it can coalesce (§2.5).
        if (I.op(0).isVReg() && F.RetKind != CallRetKind::None) {
          bool IsFloat = F.RetKind == CallRetKind::Float;
          unsigned RetR = TargetDesc::retReg(IsFloat ? RegClass::Float
                                                     : RegClass::Int);
          Out.push_back(Blk.makeInstr(Instr(
              IsFloat ? Opcode::FMov : Opcode::Mov, Operand::preg(RetR),
              I.op(0))));
          I = Instr(Opcode::Ret, Operand::preg(RetR));
          Out.push_back(Id);
          Changed = true;
        } else {
          Out.push_back(Id);
        }
        break;
      }
      default:
        Out.push_back(Id);
        break;
      }
    }
    if (Changed)
      Blk.setInstrIds(Out);
  }

  F.CallsLowered = true;
}

void lsra::lowerCalls(Module &M) {
  for (auto &F : M.functions())
    lowerCalls(*F);
}
