//===- target/LowerCalls.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "target/LowerCalls.h"

#include "target/Target.h"

using namespace lsra;

void lsra::lowerCalls(Function &F) {
  if (F.CallsLowered)
    return;

  // Bind parameters: the entry block begins with moves out of the argument
  // registers, integer parameters first, each class in declaration order.
  std::vector<Instr> Entry;
  for (unsigned I = 0; I < F.IntParamVRegs.size(); ++I)
    Entry.push_back(Instr(Opcode::Mov, Operand::vreg(F.IntParamVRegs[I]),
                          Operand::preg(TargetDesc::intArgReg(I))));
  for (unsigned I = 0; I < F.FpParamVRegs.size(); ++I)
    Entry.push_back(Instr(Opcode::FMov, Operand::vreg(F.FpParamVRegs[I]),
                          Operand::preg(TargetDesc::fpArgReg(I))));
  if (!Entry.empty() && F.numBlocks() > 0) {
    auto &Instrs = F.entry().instrs();
    Instrs.insert(Instrs.begin(), Entry.begin(), Entry.end());
  }

  for (auto &BlkPtr : F.blocks()) {
    auto &Instrs = BlkPtr->instrs();
    std::vector<Instr> Out;
    Out.reserve(Instrs.size());
    for (Instr &I : Instrs) {
      switch (I.opcode()) {
      case Opcode::CArg: {
        unsigned Idx = static_cast<unsigned>(I.op(1).immValue());
        Out.push_back(Instr(Opcode::Mov,
                            Operand::preg(TargetDesc::intArgReg(Idx)),
                            I.op(0)));
        break;
      }
      case Opcode::FCArg: {
        unsigned Idx = static_cast<unsigned>(I.op(1).immValue());
        Out.push_back(Instr(Opcode::FMov,
                            Operand::preg(TargetDesc::fpArgReg(Idx)),
                            I.op(0)));
        break;
      }
      case Opcode::CRes:
        Out.push_back(Instr(Opcode::Mov, I.op(0),
                            Operand::preg(TargetDesc::intRetReg())));
        break;
      case Opcode::FCRes:
        Out.push_back(Instr(Opcode::FMov, I.op(0),
                            Operand::preg(TargetDesc::fpRetReg())));
        break;
      case Opcode::Ret: {
        // Route the return value through the convention register so the
        // allocator sees a fixed-register move it can coalesce (§2.5).
        if (I.op(0).isVReg() && F.RetKind != CallRetKind::None) {
          bool IsFloat = F.RetKind == CallRetKind::Float;
          unsigned RetR = TargetDesc::retReg(IsFloat ? RegClass::Float
                                                     : RegClass::Int);
          Out.push_back(Instr(IsFloat ? Opcode::FMov : Opcode::Mov,
                              Operand::preg(RetR), I.op(0)));
          Out.push_back(Instr(Opcode::Ret, Operand::preg(RetR)));
        } else {
          Out.push_back(I);
        }
        break;
      }
      default:
        Out.push_back(I);
        break;
      }
    }
    Instrs = std::move(Out);
  }

  F.CallsLowered = true;
}

void lsra::lowerCalls(Module &M) {
  for (auto &F : M.functions())
    lowerCalls(*F);
}
