//===- obs/Trace.h - Structured span tracing -------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A span tracer in the Chrome trace_event format: RAII ScopedSpans record
/// complete ("ph":"X") events that chrome://tracing and Perfetto load
/// directly. The paper's evaluation is all measurement (Tables 1-3); this
/// is the instrument that shows *where* inside a run the time goes —
/// per-pass, per-function, per-allocator-phase.
///
/// Concurrency: spans are appended to per-thread buffers (one per OS
/// thread per tracer generation) that are merged at flush, so tracing
/// composes with AllocOptions::Threads without serialising the workers.
/// Each buffer carries a small dense tid assigned on first use; nesting is
/// implied per-tid by timestamps, as the trace_event format specifies.
///
/// Cost: when the tracer is disabled (the default), a ScopedSpan is one
/// relaxed atomic load and no allocation — cheap enough to leave compiled
/// into every pass. Enabling is explicit (CLI flag, bench, or test).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_OBS_TRACE_H
#define LSRA_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lsra {
namespace obs {

/// One complete span, in nanoseconds since the tracer's epoch.
struct TraceEvent {
  std::string Name;
  const char *Cat; ///< static category string ("pass", "phase", ...)
  int64_t StartNs;
  int64_t DurNs;
  uint32_t Tid; ///< dense per-tracer thread id
};

/// Aggregate view of all spans sharing a name (see Tracer::summarize).
struct SpanSummary {
  std::string Name;
  const char *Cat;
  uint64_t Count;
  int64_t TotalNs;
};

class Tracer {
public:
  /// The process-wide tracer every ScopedSpan reports to.
  static Tracer &global();

  /// Start capturing. Sets the time epoch if not already enabled.
  void enable();
  void disable();
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Nanoseconds since enable()'s epoch.
  int64_t nowNs() const;

  /// Record a complete span (called by ScopedSpan's destructor).
  void complete(std::string Name, const char *Cat, int64_t StartNs,
                int64_t DurNs);

  /// Merge every thread buffer into one list, ordered by (tid, start,
  /// longest-first) so a parent span precedes its children.
  ///
  /// Requires quiescence: no thread may be recording concurrently (the
  /// module drivers join their worker pools before returning, so calling
  /// this between runs is safe).
  std::vector<TraceEvent> snapshot() const;

  /// Spans aggregated by name, longest total first. Same quiescence
  /// requirement as snapshot().
  std::vector<SpanSummary> summarize() const;

  /// Emit the Chrome trace_event JSON document (load in chrome://tracing
  /// or https://ui.perfetto.dev). Returns false if \p Path is unwritable.
  void writeChromeJson(std::ostream &OS) const;
  bool writeChromeJson(const std::string &Path) const;

  /// Drop all recorded events and retire every thread buffer. Requires the
  /// same quiescence as snapshot().
  void reset();

private:
  struct ThreadBuf {
    mutable std::mutex Mu;
    std::vector<TraceEvent> Events;
    uint32_t Tid = 0;
  };

  ThreadBuf &localBuf();

  std::atomic<bool> Enabled{false};
  std::chrono::steady_clock::time_point Epoch{};
  bool EpochSet = false;

  mutable std::mutex Mu; ///< guards Buffers
  std::vector<std::unique_ptr<ThreadBuf>> Buffers;
  std::atomic<uint64_t> Generation{0}; ///< bumped by reset()
  uint32_t NextTid = 0;
};

/// RAII span: records [construction, destruction) under \p Name when the
/// global tracer is enabled, and costs one atomic load otherwise.
class ScopedSpan {
public:
  explicit ScopedSpan(const char *Name, const char *Cat = "pass") {
    Tracer &G = Tracer::global();
    if (!G.enabled())
      return;
    T = &G;
    Name_ = Name;
    Cat_ = Cat;
    StartNs = G.nowNs();
  }

  /// Dynamic-name form, e.g. ScopedSpan("alloc:", F.name(), "function").
  /// The concatenation happens only when tracing is enabled.
  ScopedSpan(const char *Prefix, const std::string &Suffix,
             const char *Cat = "function") {
    Tracer &G = Tracer::global();
    if (!G.enabled())
      return;
    T = &G;
    Name_.reserve(std::char_traits<char>::length(Prefix) + Suffix.size());
    Name_ += Prefix;
    Name_ += Suffix;
    Cat_ = Cat;
    StartNs = G.nowNs();
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  ~ScopedSpan() {
    if (T)
      T->complete(std::move(Name_), Cat_, StartNs, T->nowNs() - StartNs);
  }

private:
  Tracer *T = nullptr;
  std::string Name_;
  const char *Cat_ = "";
  int64_t StartNs = 0;
};

} // namespace obs
} // namespace lsra

#endif // LSRA_OBS_TRACE_H
