//===- obs/Counters.h - Named counter / metrics registry -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide registry of named monotonic counters and value
/// distributions — the numeric side of the observability layer. The
/// paper's evaluation quantities (static spill counts, dynamic spill
/// percentages, allocation time) flow through here: AllocStats and
/// RunStats are re-exported as registry entries, and instrumented code
/// adds finer-grained counts (binpack.evictions, lifetime.holes,
/// vm.dyn.spill_loads, ...).
///
/// Counters are relaxed atomics, so concurrent per-function allocation
/// workers bump them without coordination; because addition commutes, the
/// totals are deterministic for any thread count. Distributions keep only
/// order-independent aggregates (count/sum/min/max) for the same reason.
///
/// Snapshots are emitted as JSONL (one self-describing JSON object per
/// line, sorted by name) so experiment output is machine-readable without
/// hand-rolled JSON at every call site.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_OBS_COUNTERS_H
#define LSRA_OBS_COUNTERS_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lsra {

struct AllocStats;
struct RunStats;

namespace obs {

class WindowedHistogram;
class Gauge;
struct MetricsSnapshot;

/// Monotonically increasing counter. add() is wait-free and commutative,
/// so totals are identical for any AllocOptions::Threads.
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Value distribution keeping order-independent aggregates only.
class Distribution {
public:
  void sample(double V);
  uint64_t count() const;
  double sum() const;
  double min() const; ///< 0 when empty
  double max() const; ///< 0 when empty
  double mean() const;

private:
  mutable std::mutex Mu;
  uint64_t Count = 0;
  double Sum = 0, Min = 0, Max = 0;
};

class CounterRegistry {
public:
  /// The process-wide registry all instrumentation reports to.
  static CounterRegistry &global();

  /// Instrumented code checks enabled() before computing anything for the
  /// registry; with it off (the default) the cost is one relaxed load.
  void enable() { Enabled.store(true, std::memory_order_release); }
  void disable() { Enabled.store(false, std::memory_order_release); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Find-or-create. The returned references stay valid until reset();
  /// instrumentation looks its counters up per use rather than caching
  /// references across runs.
  Counter &counter(const std::string &Name);
  Distribution &distribution(const std::string &Name);
  /// Rolling-window histogram (obs/Metrics.h). Lazily allocated per name;
  /// same validity rules as counter().
  WindowedHistogram &histogram(const std::string &Name);
  /// Point-in-time gauge (obs/Metrics.h).
  Gauge &gauge(const std::string &Name);

  /// Re-export every AllocStats field under "alloc.*" (timing fields under
  /// "alloc.time.*", as distributions).
  void recordAllocStats(const AllocStats &S);
  /// Export the process heap-allocation totals (support/AllocProfile) as
  /// the "alloc.count" / "alloc.bytes" counters. Call once, immediately
  /// before writing a snapshot: the totals are cumulative, so the counters
  /// would double-count if recorded twice into one registry generation.
  void recordAllocProfile();
  /// Re-export every RunStats field under "vm.dyn.*".
  void recordRunStats(const RunStats &S);

  /// One JSON object per line, sorted by name:
  ///   {"kind": "counter", "name": ..., "value": N}
  ///   {"kind": "dist", "name": ..., "count": N, "sum": X, "min": X,
  ///    "max": X, "mean": X}
  ///   {"kind": "hist", "name": ..., "count": N, "sum": N, "min": N,
  ///    "max": N, "p50": N, "p95": N, "p99": N}
  ///   {"kind": "gauge", "name": ..., "value": N}
  void writeJsonl(std::ostream &OS) const;
  bool writeJsonl(const std::string &Path) const;

  /// Deterministic plain-text snapshot ("counter NAME VALUE" / "dist NAME
  /// COUNT SUM MIN MAX" / "hist NAME COUNT SUM MIN MAX" / "gauge NAME
  /// VALUE" lines sorted by name) for tests and debugging.
  std::string snapshotText() const;

  /// Capture every counter, gauge, and histogram (lifetime + 1s/10s/60s
  /// windows) into one versioned MetricsSnapshot — the value StatsReply
  /// frames and the Prometheus rendering are produced from.
  MetricsSnapshot metricsSnapshot() const;

  /// Drop every entry. References obtained before reset() are invalid.
  void reset();

private:
  struct Entry;
  /// Find-or-create under the registry lock. \p Kind tags the entry's
  /// flavour (counter vs distribution) and must be written under the same
  /// lock: concurrent bumpers of one name race on the tag otherwise.
  Entry &entry(const std::string &Name, int Kind);

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu; ///< guards Entries (lookup/registration only)
  std::vector<std::unique_ptr<Entry>> Entries;
};

} // namespace obs
} // namespace lsra

#endif // LSRA_OBS_COUNTERS_H
