//===- obs/Log.cpp --------------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace lsra;

namespace {

unsigned initialLevel() {
  if (const char *Env = std::getenv("LSRA_LOG_LEVEL"))
    return static_cast<unsigned>(std::strtoul(Env, nullptr, 10));
  return 0;
}

std::atomic<unsigned> &levelVar() {
  static std::atomic<unsigned> Level{initialLevel()};
  return Level;
}

} // namespace

unsigned obs::logLevel() {
  return levelVar().load(std::memory_order_relaxed);
}

void obs::setLogLevel(unsigned Level) {
  levelVar().store(Level, std::memory_order_relaxed);
}

void obs::logf(unsigned Level, const char *Fmt, ...) {
  char Buf[1024];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  std::fprintf(stderr, "[lsra:%u] %s\n", Level, Buf);
}
