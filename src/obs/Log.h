//===- obs/Log.h - Leveled diagnostic logging ------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny leveled logger for diagnostic narration on stderr. Level 0
/// (default) is silent; 1 = per-module milestones, 2 = per-function, 3 =
/// per-round/phase internals. Set with --log-level=N on the CLI or the
/// LSRA_LOG_LEVEL environment variable (picked up once, at first use).
///
/// The LSRA_LOG macro evaluates its arguments only when the level is
/// active, so format expressions in hot paths cost one relaxed load.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_OBS_LOG_H
#define LSRA_OBS_LOG_H

namespace lsra {
namespace obs {

/// Current log level (reads LSRA_LOG_LEVEL on first call).
unsigned logLevel();
void setLogLevel(unsigned Level);

/// printf-style message to stderr with an "[lsra:N]" prefix; emitted as a
/// single write so concurrent workers do not interleave mid-line.
void logf(unsigned Level, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace obs
} // namespace lsra

#define LSRA_LOG(Level, ...)                                                   \
  do {                                                                         \
    if (::lsra::obs::logLevel() >= (Level))                                    \
      ::lsra::obs::logf((Level), __VA_ARGS__);                                 \
  } while (0)

#endif // LSRA_OBS_LOG_H
