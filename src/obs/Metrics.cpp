//===- obs/Metrics.cpp ----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"
#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

using namespace lsra;
using namespace lsra::obs;

int64_t obs::steadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

//===----------------------------------------------------------------------===//
// Bucketing
//===----------------------------------------------------------------------===//

static unsigned msbIndex(uint64_t V) {
  unsigned B = 0;
  while (V >>= 1)
    ++B;
  return B;
}

uint32_t HistogramLayout::bucketIndex(uint64_t V) {
  constexpr uint64_t MaxValue = (uint64_t(1) << (MaxOctave + 1)) - 1;
  if (V > MaxValue)
    V = MaxValue;
  if (V < (uint64_t(1) << FirstOctave))
    return static_cast<uint32_t>(V);
  unsigned B = msbIndex(V); // FirstOctave <= B <= MaxOctave
  uint32_t Sub = static_cast<uint32_t>((V >> (B - SubBucketBits)) &
                                       ((1u << SubBucketBits) - 1));
  return (1u << FirstOctave) + (B - FirstOctave) * (1u << SubBucketBits) + Sub;
}

uint64_t HistogramLayout::bucketLow(uint32_t Idx) {
  if (Idx < (1u << FirstOctave))
    return Idx;
  uint32_t Rel = Idx - (1u << FirstOctave);
  unsigned B = FirstOctave + Rel / (1u << SubBucketBits);
  uint64_t Sub = Rel % (1u << SubBucketBits);
  return (uint64_t(1) << B) + Sub * (uint64_t(1) << (B - SubBucketBits));
}

uint64_t HistogramLayout::bucketHigh(uint32_t Idx) {
  if (Idx < (1u << FirstOctave))
    return Idx;
  uint32_t Rel = Idx - (1u << FirstOctave);
  unsigned B = FirstOctave + Rel / (1u << SubBucketBits);
  return bucketLow(Idx) + (uint64_t(1) << (B - SubBucketBits)) - 1;
}

uint64_t HistogramLayout::bucketMid(uint32_t Idx) {
  return (bucketLow(Idx) + bucketHigh(Idx)) / 2;
}

//===----------------------------------------------------------------------===//
// HistogramSnapshot
//===----------------------------------------------------------------------===//

void HistogramSnapshot::merge(const HistogramSnapshot &Other) {
  if (Other.Count == 0)
    return;
  if (Buckets.empty())
    Buckets.assign(HistogramLayout::NumBuckets, 0);
  for (uint32_t I = 0; I < HistogramLayout::NumBuckets; ++I)
    Buckets[I] += Other.Buckets.empty() ? 0 : Other.Buckets[I];
  Min = Count == 0 ? Other.Min : std::min(Min, Other.Min);
  Max = Count == 0 ? Other.Max : std::max(Max, Other.Max);
  Count += Other.Count;
  Sum += Other.Sum;
}

uint64_t HistogramSnapshot::percentile(double P) const {
  if (Count == 0)
    return 0;
  if (P <= 0)
    return Min;
  if (P >= 100)
    return Max;
  uint64_t Rank = static_cast<uint64_t>(
      std::ceil(P / 100.0 * static_cast<double>(Count)));
  if (Rank < 1)
    Rank = 1;
  uint64_t Seen = 0;
  for (uint32_t I = 0; I < Buckets.size(); ++I) {
    Seen += Buckets[I];
    if (Seen >= Rank) {
      uint64_t V = HistogramLayout::bucketMid(I);
      return std::min(std::max(V, Min), Max);
    }
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

/// Small dense per-thread stripe index; threads spread round-robin.
static unsigned stripeIndexForThread() {
  static std::atomic<unsigned> Next{0};
  static thread_local unsigned Mine =
      Next.fetch_add(1, std::memory_order_relaxed);
  return Mine;
}

static void atomicMin(std::atomic<uint64_t> &A, uint64_t V) {
  uint64_t Cur = A.load(std::memory_order_relaxed);
  while (V < Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

static void atomicMax(std::atomic<uint64_t> &A, uint64_t V) {
  uint64_t Cur = A.load(std::memory_order_relaxed);
  while (V > Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram() : Stripes(new Stripe[NumStripes]) {
  for (unsigned S = 0; S < NumStripes; ++S)
    for (uint32_t I = 0; I < HistogramLayout::NumBuckets; ++I)
      Stripes[S].Buckets[I].store(0, std::memory_order_relaxed);
}

Histogram::Stripe &Histogram::localStripe() {
  return Stripes[stripeIndexForThread() % NumStripes];
}

void Histogram::record(uint64_t V) {
  Stripe &S = localStripe();
  S.Buckets[HistogramLayout::bucketIndex(V)].fetch_add(
      1, std::memory_order_relaxed);
  S.Sum.fetch_add(V, std::memory_order_relaxed);
  atomicMin(S.Min, V);
  atomicMax(S.Max, V);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot Out;
  Out.Buckets.assign(HistogramLayout::NumBuckets, 0);
  uint64_t Min = UINT64_MAX, Max = 0;
  for (unsigned S = 0; S < NumStripes; ++S) {
    const Stripe &St = Stripes[S];
    for (uint32_t I = 0; I < HistogramLayout::NumBuckets; ++I) {
      uint64_t N = St.Buckets[I].load(std::memory_order_relaxed);
      Out.Buckets[I] += N;
      Out.Count += N;
    }
    Out.Sum += St.Sum.load(std::memory_order_relaxed);
    Min = std::min(Min, St.Min.load(std::memory_order_relaxed));
    Max = std::max(Max, St.Max.load(std::memory_order_relaxed));
  }
  Out.Min = Out.Count ? Min : 0;
  Out.Max = Out.Count ? Max : 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// WindowedHistogram
//===----------------------------------------------------------------------===//

WindowedHistogram::WindowedHistogram() : Slices(new Slice[NumSlices]) {
  for (unsigned S = 0; S < NumSlices; ++S)
    for (uint32_t I = 0; I < HistogramLayout::NumBuckets; ++I)
      Slices[S].Buckets[I].store(0, std::memory_order_relaxed);
}

WindowedHistogram::Slice &WindowedHistogram::sliceFor(int64_t Sec) {
  Slice &S = Slices[static_cast<uint64_t>(Sec) % NumSlices];
  if (S.EpochSec.load(std::memory_order_acquire) != Sec) {
    std::lock_guard<std::mutex> L(S.RotMu);
    if (S.EpochSec.load(std::memory_order_relaxed) != Sec) {
      for (uint32_t I = 0; I < HistogramLayout::NumBuckets; ++I)
        S.Buckets[I].store(0, std::memory_order_relaxed);
      S.Sum.store(0, std::memory_order_relaxed);
      S.Min.store(UINT64_MAX, std::memory_order_relaxed);
      S.Max.store(0, std::memory_order_relaxed);
      S.EpochSec.store(Sec, std::memory_order_release);
    }
  }
  return S;
}

void WindowedHistogram::record(uint64_t V, int64_t NowNs) {
  Life.record(V);
  if (NowNs < 0)
    NowNs = steadyNowNs();
  Slice &S = sliceFor(NowNs / 1000000000);
  S.Buckets[HistogramLayout::bucketIndex(V)].fetch_add(
      1, std::memory_order_relaxed);
  S.Sum.fetch_add(V, std::memory_order_relaxed);
  atomicMin(S.Min, V);
  atomicMax(S.Max, V);
}

HistogramSnapshot WindowedHistogram::windowSnapshot(unsigned WindowSecs,
                                                    int64_t NowNs) const {
  if (NowNs < 0)
    NowNs = steadyNowNs();
  int64_t NowSec = NowNs / 1000000000;
  if (WindowSecs > NumSlices - 1)
    WindowSecs = NumSlices - 1;
  HistogramSnapshot Out;
  Out.Buckets.assign(HistogramLayout::NumBuckets, 0);
  uint64_t Min = UINT64_MAX, Max = 0;
  for (unsigned S = 0; S < NumSlices; ++S) {
    const Slice &Sl = Slices[S];
    int64_t E = Sl.EpochSec.load(std::memory_order_acquire);
    if (E < 0 || E > NowSec || E <= NowSec - static_cast<int64_t>(WindowSecs))
      continue;
    for (uint32_t I = 0; I < HistogramLayout::NumBuckets; ++I) {
      uint64_t N = Sl.Buckets[I].load(std::memory_order_relaxed);
      Out.Buckets[I] += N;
      Out.Count += N;
    }
    Out.Sum += Sl.Sum.load(std::memory_order_relaxed);
    Min = std::min(Min, Sl.Min.load(std::memory_order_relaxed));
    Max = std::max(Max, Sl.Max.load(std::memory_order_relaxed));
  }
  Out.Min = Out.Count ? Min : 0;
  Out.Max = Out.Count ? Max : 0;
  return Out;
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot rendering
//===----------------------------------------------------------------------===//

static std::string histJson(const HistogramSnapshot &H) {
  std::string Buckets = "[";
  bool First = true;
  for (uint32_t I = 0; I < H.Buckets.size(); ++I) {
    if (!H.Buckets[I])
      continue;
    if (!First)
      Buckets += ", ";
    First = false;
    Buckets += "[";
    Buckets += std::to_string(HistogramLayout::bucketLow(I));
    Buckets += ", ";
    Buckets += std::to_string(H.Buckets[I]);
    Buckets += "]";
  }
  Buckets += "]";
  JsonObject O;
  O.field("count", H.Count)
      .field("sum", H.Sum)
      .field("min", H.Min)
      .field("max", H.Max)
      .field("mean", H.mean())
      .field("p50", H.percentile(50))
      .field("p90", H.percentile(90))
      .field("p95", H.percentile(95))
      .field("p99", H.percentile(99))
      .fieldRaw("buckets", Buckets);
  return O.str();
}

std::string MetricsSnapshot::toJson() const {
  std::string Counter = "{", Gauge = "{", Hist = "{";
  bool First = true;
  for (const auto &C : Counters) {
    Counter += (First ? "" : ", ");
    First = false;
    Counter += jsonQuote(C.first) + ": " + std::to_string(C.second);
  }
  Counter += "}";
  First = true;
  for (const auto &G : Gauges) {
    Gauge += (First ? "" : ", ");
    First = false;
    Gauge += jsonQuote(G.first) + ": " + std::to_string(G.second);
  }
  Gauge += "}";
  First = true;
  for (const auto &H : Hists) {
    Hist += (First ? "" : ", ");
    First = false;
    JsonObject W;
    W.fieldRaw("life", histJson(H.Life))
        .fieldRaw("w1", histJson(H.W1))
        .fieldRaw("w10", histJson(H.W10))
        .fieldRaw("w60", histJson(H.W60));
    Hist += jsonQuote(H.Name) + ": " + W.str();
  }
  Hist += "}";

  JsonObject O;
  O.field("schema", static_cast<uint64_t>(SchemaVersion))
      .field("unix_ms", static_cast<uint64_t>(UnixMs))
      .fieldRaw("counters", Counter)
      .fieldRaw("gauges", Gauge)
      .fieldRaw("histograms", Hist);
  return O.str() + "\n";
}

/// Prometheus metric name: "lsra_" + Name with [^a-zA-Z0-9] -> '_'.
static std::string promName(const std::string &Name) {
  std::string Out = "lsra_";
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) ? C : '_');
  return Out;
}

std::string MetricsSnapshot::toPrometheus() const {
  std::ostringstream OS;
  for (const auto &C : Counters) {
    std::string N = promName(C.first);
    OS << "# TYPE " << N << " counter\n" << N << " " << C.second << "\n";
  }
  for (const auto &G : Gauges) {
    std::string N = promName(G.first);
    OS << "# TYPE " << N << " gauge\n" << N << " " << G.second << "\n";
  }
  for (const auto &H : Hists) {
    std::string N = promName(H.Name);
    OS << "# TYPE " << N << " histogram\n";
    uint64_t Cum = 0;
    for (uint32_t I = 0; I < H.Life.Buckets.size(); ++I) {
      if (!H.Life.Buckets[I])
        continue;
      Cum += H.Life.Buckets[I];
      OS << N << "_bucket{le=\"" << HistogramLayout::bucketHigh(I) << "\"} "
         << Cum << "\n";
    }
    OS << N << "_bucket{le=\"+Inf\"} " << H.Life.Count << "\n"
       << N << "_sum " << H.Life.Sum << "\n"
       << N << "_count " << H.Life.Count << "\n";
  }
  return OS.str();
}

std::string MetricsSnapshot::toText() const {
  std::ostringstream OS;
  OS << "lsra telemetry snapshot (schema " << SchemaVersion << ", unix_ms "
     << UnixMs << ")\n\n";
  if (!Gauges.empty()) {
    OS << "  gauges\n";
    for (const auto &G : Gauges) {
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf), "    %-28s %12lld\n", G.first.c_str(),
                    static_cast<long long>(G.second));
      OS << Buf;
    }
    OS << "\n";
  }
  if (!Hists.empty()) {
    OS << "  histograms                        count        p50        p95"
          "        p99        max\n";
    for (const auto &H : Hists) {
      auto Row = [&OS](const char *Label, const HistogramSnapshot &S) {
        char Buf[200];
        std::snprintf(Buf, sizeof(Buf),
                      "    %-28s %10llu %10llu %10llu %10llu %10llu\n", Label,
                      static_cast<unsigned long long>(S.Count),
                      static_cast<unsigned long long>(S.percentile(50)),
                      static_cast<unsigned long long>(S.percentile(95)),
                      static_cast<unsigned long long>(S.percentile(99)),
                      static_cast<unsigned long long>(S.Max));
        OS << Buf;
      };
      OS << "    " << H.Name << "\n";
      Row("  life", H.Life);
      Row("  1s", H.W1);
      Row("  10s", H.W10);
      Row("  60s", H.W60);
    }
    OS << "\n";
  }
  if (!Counters.empty()) {
    OS << "  counters\n";
    for (const auto &C : Counters) {
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf), "    %-28s %12llu\n", C.first.c_str(),
                    static_cast<unsigned long long>(C.second));
      OS << Buf;
    }
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// RequestTrace
//===----------------------------------------------------------------------===//

void RequestTrace::addPhase(std::string Name, int64_t StartNs, int64_t DurNs) {
  std::lock_guard<std::mutex> L(Mu);
  Phases.push_back({std::move(Name), StartNs, DurNs});
}

std::vector<RequestTrace::Phase> RequestTrace::phases() const {
  std::lock_guard<std::mutex> L(Mu);
  return Phases;
}

void RequestTrace::emitToTracer() const {
  Tracer &T = Tracer::global();
  if (!T.enabled())
    return;
  // nowNs() is "ns since the tracer epoch": the difference between the
  // steady clock now and the tracer's relative now recovers the epoch.
  int64_t EpochAbsNs = steadyNowNs() - T.nowNs();
  for (const Phase &P : phases())
    T.complete("req:" + std::to_string(RequestId) + ":" + P.Name, "request",
               P.StartNs - EpochAbsNs, P.DurNs);
}

//===----------------------------------------------------------------------===//
// RequestLog
//===----------------------------------------------------------------------===//

RequestLog &RequestLog::global() {
  static RequestLog L;
  return L;
}

RequestLog::RequestLog() = default;
RequestLog::~RequestLog() = default;

bool RequestLog::open(const std::string &Path) {
  std::lock_guard<std::mutex> L(Mu);
  OS = std::make_unique<std::ofstream>(Path);
  if (!*OS) {
    OS.reset();
    return false;
  }
  IsOpen.store(true, std::memory_order_release);
  return true;
}

void RequestLog::close() {
  std::lock_guard<std::mutex> L(Mu);
  IsOpen.store(false, std::memory_order_release);
  OS.reset();
}

void RequestLog::write(const RequestTrace &T, const char *Status, bool Cached,
                       uint64_t QueueUs, uint64_t TotalUs) {
  if (!enabled())
    return;
  std::string PhasesJson = "[";
  bool First = true;
  for (const RequestTrace::Phase &P : T.phases()) {
    if (!First)
      PhasesJson += ", ";
    First = false;
    JsonObject PO;
    PO.field("name", P.Name)
        .field("rel_us", static_cast<uint64_t>(
                             P.StartNs > T.ArrivalNs
                                 ? (P.StartNs - T.ArrivalNs) / 1000
                                 : 0))
        .field("dur_us", static_cast<uint64_t>(P.DurNs > 0 ? P.DurNs / 1000
                                                           : 0));
    PhasesJson += PO.str();
  }
  PhasesJson += "]";
  JsonObject O;
  O.field("kind", "request")
      .field("id", T.RequestId)
      .field("arrival_ns", static_cast<uint64_t>(T.ArrivalNs))
      .field("status", Status)
      .field("cached", Cached ? 1 : 0)
      .field("queue_us", QueueUs)
      .field("total_us", TotalUs)
      .fieldRaw("phases", PhasesJson);
  std::lock_guard<std::mutex> L(Mu);
  if (OS)
    *OS << O.str() << "\n" << std::flush;
}
