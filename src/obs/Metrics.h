//===- obs/Metrics.h - Histograms, gauges, request traces ------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The live-serving telemetry plane: constant-memory HDR-style histograms
/// with rolling windows, point-in-time gauges, a request-scoped span chain,
/// and the snapshot type the server's StatsReply frames render from.
///
/// Histogram bucketing is log-linear: values below 64 land in their own
/// exact bucket; above that, each power-of-two octave is split into 32
/// linear sub-buckets, so a bucket's width is at most 1/32 of its base and
/// the midpoint representative is within 2^-6 ~ 1.56% of any value it
/// absorbs (documented bound: 2.5% relative error, leaving headroom for
/// quantile-rank discretisation at small counts). Values are clamped to
/// [0, 2^40) — recording microseconds, that is ~12.7 days — which fixes
/// the bucket count at 1152 and the memory at a few KB per stripe.
///
/// Recording is lock-striped: each Histogram holds a small set of
/// independent atomic bucket arrays, a recording thread picks a stripe by
/// thread identity, and snapshot() merges the stripes. Recording is
/// wait-free (relaxed fetch_add; min/max are relaxed CAS loops) and
/// snapshots are mergeable, so per-worker histograms can be combined
/// across threads or processes without coordination during the hot path.
///
/// WindowedHistogram adds rolling 1s/10s/60s views: a ring of one-second
/// slices tagged with their epoch second, lazily recycled as time
/// advances. A snapshot of window W merges the slices whose epoch lies in
/// (now - W, now]. The clock is injectable (pass NowNs) so expiry is
/// deterministically testable.
///
/// A snapshot's Count is always derived from its bucket contents, so the
/// invariant "count == sum of buckets" holds by construction even when
/// snapshots race with recorders (check_trace.py --metrics relies on it).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_OBS_METRICS_H
#define LSRA_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace lsra {
namespace obs {

/// Absolute steady-clock (CLOCK_MONOTONIC) nanoseconds. The request-trace
/// timestamps and the loadgen --record-out timestamps share this clock, so
/// client and server views of one request are directly comparable on the
/// same machine.
int64_t steadyNowNs();

//===----------------------------------------------------------------------===//
// Bucketing
//===----------------------------------------------------------------------===//

/// Log-linear bucket layout constants. 64 exact buckets for values < 64,
/// then 32 linear sub-buckets per power-of-two octave up to 2^40.
struct HistogramLayout {
  static constexpr unsigned SubBucketBits = 5;    ///< 32 sub-buckets/octave
  static constexpr unsigned FirstOctave = 6;      ///< values < 2^6 are exact
  static constexpr unsigned MaxOctave = 39;       ///< values clamped < 2^40
  static constexpr unsigned NumBuckets =
      (1u << FirstOctave) +
      (MaxOctave - FirstOctave + 1) * (1u << SubBucketBits); ///< 1152

  static uint32_t bucketIndex(uint64_t V);
  /// Inclusive lower bound of bucket \p Idx.
  static uint64_t bucketLow(uint32_t Idx);
  /// Inclusive upper bound of bucket \p Idx.
  static uint64_t bucketHigh(uint32_t Idx);
  /// The representative value reported for samples in bucket \p Idx.
  static uint64_t bucketMid(uint32_t Idx);
};

//===----------------------------------------------------------------------===//
// HistogramSnapshot
//===----------------------------------------------------------------------===//

/// An immutable, mergeable point-in-time view of a histogram. Count is
/// derived from Buckets; Sum/Min/Max are carried alongside.
struct HistogramSnapshot {
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< 0 when empty
  uint64_t Max = 0; ///< 0 when empty
  std::vector<uint64_t> Buckets; ///< dense, HistogramLayout::NumBuckets

  /// Fold \p Other into this snapshot (bucket-wise addition). Associative
  /// and commutative, so any merge order yields identical results.
  void merge(const HistogramSnapshot &Other);

  /// The value at percentile \p P in [0, 100]: the midpoint of the bucket
  /// containing the sample of rank ceil(P/100 * Count), clamped into
  /// [Min, Max]. Returns 0 when empty.
  uint64_t percentile(double P) const;

  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }
};

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

/// Lifetime (non-windowed) histogram with lock-striped wait-free recording.
class Histogram {
public:
  static constexpr unsigned NumStripes = 4;

  Histogram();
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  /// Wait-free; safe from any number of threads concurrently.
  void record(uint64_t V);

  /// Merge all stripes into one snapshot. Safe to call concurrently with
  /// record(); a racing sample lands wholly in or wholly out.
  HistogramSnapshot snapshot() const;

private:
  struct Stripe {
    std::atomic<uint64_t> Buckets[HistogramLayout::NumBuckets];
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Min{UINT64_MAX};
    std::atomic<uint64_t> Max{0};
  };
  Stripe &localStripe();
  std::unique_ptr<Stripe[]> Stripes;
};

//===----------------------------------------------------------------------===//
// WindowedHistogram
//===----------------------------------------------------------------------===//

/// A lifetime Histogram plus a ring of one-second slices backing rolling
/// 1s/10s/60s window snapshots. Slices hold 32-bit bucket counts (a window
/// slice absorbs at most one second of samples).
class WindowedHistogram {
public:
  static constexpr unsigned NumSlices = 61; ///< covers a 60 s window

  WindowedHistogram();
  WindowedHistogram(const WindowedHistogram &) = delete;
  WindowedHistogram &operator=(const WindowedHistogram &) = delete;

  /// Record into the lifetime histogram and the current one-second slice.
  /// \p NowNs < 0 means "use the real steady clock"; tests pass explicit
  /// times to drive expiry deterministically.
  void record(uint64_t V, int64_t NowNs = -1);

  /// The lifetime view.
  HistogramSnapshot snapshot() const { return Life.snapshot(); }

  /// Merge of the slices covering the last \p WindowSecs seconds
  /// (WindowSecs is clamped to NumSlices - 1).
  HistogramSnapshot windowSnapshot(unsigned WindowSecs,
                                   int64_t NowNs = -1) const;

private:
  struct Slice {
    std::atomic<int64_t> EpochSec{-1}; ///< -1: never used
    std::mutex RotMu;                  ///< serialises recycling only
    std::atomic<uint32_t> Buckets[HistogramLayout::NumBuckets];
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Min{UINT64_MAX};
    std::atomic<uint64_t> Max{0};
  };
  Slice &sliceFor(int64_t Sec);

  Histogram Life;
  std::unique_ptr<Slice[]> Slices;
};

//===----------------------------------------------------------------------===//
// Gauge
//===----------------------------------------------------------------------===//

/// A point-in-time signed value (queue depth, in-flight requests, RSS).
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t D) { Value.fetch_add(D, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

/// Everything the registry knows at one instant, in one versioned value.
/// The server renders StatsReply payloads from this; `lsra stats` and the
/// Prometheus text format are two renderings of the same snapshot.
struct MetricsSnapshot {
  static constexpr unsigned SchemaVersion = 1;

  struct HistEntry {
    std::string Name;
    HistogramSnapshot Life;
    HistogramSnapshot W1, W10, W60; ///< rolling 1s/10s/60s views
  };

  int64_t UnixMs = 0; ///< wall-clock capture time, ms since the epoch
  std::vector<std::pair<std::string, uint64_t>> Counters; ///< name-sorted
  std::vector<std::pair<std::string, int64_t>> Gauges;    ///< name-sorted
  std::vector<HistEntry> Hists;                           ///< name-sorted

  /// The versioned JSON document ("schema", "unix_ms", "counters",
  /// "gauges", "histograms" with life/w1/w10/w60 sections carrying
  /// count/sum/min/max/p50/p90/p95/p99 and sparse [low, count] buckets).
  std::string toJson() const;

  /// Prometheus text exposition: counters as `# TYPE ... counter`, gauges
  /// as gauges, lifetime histograms as cumulative `_bucket{le="..."}`
  /// series with `_sum`/`_count`. Metric names are `lsra_` + the registry
  /// name with non-alphanumerics mapped to '_'.
  std::string toPrometheus() const;

  /// Fixed-width human-readable rendering for `lsra top`.
  std::string toText() const;
};

//===----------------------------------------------------------------------===//
// Request-scoped tracing
//===----------------------------------------------------------------------===//

/// The span chain of one server request: recv -> admit -> queue-wait ->
/// cache-probe -> parse -> alloc[per-pass] -> emit -> reply. Owned by the
/// server, threaded through the compile pipeline via ExecOptions::ReqTrace.
/// Phases may be appended from the reader thread and the worker thread at
/// different times; a request is never in both at once, but the mutex
/// keeps the container safe regardless.
struct RequestTrace {
  uint64_t RequestId = 0;
  int64_t ArrivalNs = 0; ///< steadyNowNs() when the frame arrived

  struct Phase {
    std::string Name;
    int64_t StartNs; ///< absolute steady-clock ns
    int64_t DurNs;
  };

  void addPhase(std::string Name, int64_t StartNs, int64_t DurNs);
  std::vector<Phase> phases() const;

  /// Re-emit every phase into the global Chrome tracer (category
  /// "request", names prefixed "req:"), converting absolute steady-clock
  /// times to the tracer's epoch. No-op when the tracer is disabled.
  void emitToTracer() const;

private:
  mutable std::mutex Mu;
  std::vector<Phase> Phases;
};

/// RAII phase: records [construction, destruction) into \p T when \p T is
/// non-null; a null trace costs one branch.
class RequestPhase {
public:
  RequestPhase(RequestTrace *T, const char *Name) : T(T), Name(Name) {
    if (T)
      StartNs = steadyNowNs();
  }
  RequestPhase(const RequestPhase &) = delete;
  RequestPhase &operator=(const RequestPhase &) = delete;
  ~RequestPhase() {
    if (T)
      T->addPhase(Name, StartNs, steadyNowNs() - StartNs);
  }

private:
  RequestTrace *T;
  const char *Name;
  int64_t StartNs = 0;
};

/// Process-wide JSONL sink for completed request traces (`lsra serve
/// --request-log=F`). One self-describing object per request with the
/// phase chain in relative microseconds.
class RequestLog {
public:
  static RequestLog &global();

  RequestLog();
  ~RequestLog();

  bool open(const std::string &Path);
  void close();
  bool enabled() const { return IsOpen.load(std::memory_order_relaxed); }

  /// Append one record. \p Status is the terminal outcome ("ok", "error",
  /// "deadline", ...); \p QueueUs / \p TotalUs are the server-side
  /// admission wait and arrival-to-reply time.
  void write(const RequestTrace &T, const char *Status, bool Cached,
             uint64_t QueueUs, uint64_t TotalUs);

private:
  std::atomic<bool> IsOpen{false};
  std::mutex Mu;
  std::unique_ptr<std::ofstream> OS;
};

} // namespace obs
} // namespace lsra

#endif // LSRA_OBS_METRICS_H
