//===- obs/Counters.cpp ---------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"

#include "obs/Json.h"
#include "regalloc/Allocator.h"
#include "support/AllocProfile.h"
#include "vm/VM.h"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace lsra;
using namespace lsra::obs;

void Distribution::sample(double V) {
  std::lock_guard<std::mutex> L(Mu);
  if (Count == 0) {
    Min = Max = V;
  } else {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  ++Count;
  Sum += V;
}

uint64_t Distribution::count() const {
  std::lock_guard<std::mutex> L(Mu);
  return Count;
}
double Distribution::sum() const {
  std::lock_guard<std::mutex> L(Mu);
  return Sum;
}
double Distribution::min() const {
  std::lock_guard<std::mutex> L(Mu);
  return Min;
}
double Distribution::max() const {
  std::lock_guard<std::mutex> L(Mu);
  return Max;
}
double Distribution::mean() const {
  std::lock_guard<std::mutex> L(Mu);
  return Count ? Sum / static_cast<double>(Count) : 0.0;
}

struct CounterRegistry::Entry {
  std::string Name;
  enum class Kind { Unused, Count, Dist } K = Kind::Unused;
  Counter C;
  Distribution D;
};

CounterRegistry &CounterRegistry::global() {
  static CounterRegistry R;
  return R;
}

CounterRegistry::Entry &CounterRegistry::entry(const std::string &Name,
                                               int Kind) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &E : Entries) {
    if (E->Name == Name) {
      E->K = static_cast<Entry::Kind>(Kind);
      return *E;
    }
  }
  Entries.push_back(std::make_unique<Entry>());
  Entries.back()->Name = Name;
  Entries.back()->K = static_cast<Entry::Kind>(Kind);
  return *Entries.back();
}

Counter &CounterRegistry::counter(const std::string &Name) {
  return entry(Name, static_cast<int>(Entry::Kind::Count)).C;
}

Distribution &CounterRegistry::distribution(const std::string &Name) {
  return entry(Name, static_cast<int>(Entry::Kind::Dist)).D;
}

void CounterRegistry::recordAllocStats(const AllocStats &S) {
  counter("alloc.evict_loads").add(S.EvictLoads);
  counter("alloc.evict_stores").add(S.EvictStores);
  counter("alloc.evict_moves").add(S.EvictMoves);
  counter("alloc.resolve_loads").add(S.ResolveLoads);
  counter("alloc.resolve_stores").add(S.ResolveStores);
  counter("alloc.resolve_moves").add(S.ResolveMoves);
  counter("alloc.static_spill_instrs").add(S.staticSpillInstrs());
  counter("alloc.reg_candidates").add(S.RegCandidates);
  counter("alloc.spilled_temps").add(S.SpilledTemps);
  counter("alloc.lifetime_splits").add(S.LifetimeSplits);
  counter("alloc.moves_coalesced").add(S.MovesCoalesced);
  counter("alloc.split_edges").add(S.SplitEdges);
  counter("alloc.dataflow_iterations").add(S.DataflowIterations);
  counter("alloc.coloring_iterations").add(S.ColoringIterations);
  counter("alloc.interference_edges").add(S.InterferenceEdges);
  distribution("alloc.time.cpu_s").sample(S.AllocSeconds);
  distribution("alloc.time.wall_s").sample(S.WallSeconds);
}

void CounterRegistry::recordAllocProfile() {
  AllocSnapshot S = allocSnapshot();
  counter("alloc.count").add(S.Count);
  counter("alloc.bytes").add(S.Bytes);
}

void CounterRegistry::recordRunStats(const RunStats &S) {
  counter("vm.runs").add(1);
  counter("vm.dyn.instrs").add(S.Total);
  counter("vm.dyn.cycles").add(S.Cycles);
  counter("vm.dyn.spill_loads")
      .add(S.kind(SpillKind::EvictLoad) + S.kind(SpillKind::ResolveLoad));
  counter("vm.dyn.spill_stores")
      .add(S.kind(SpillKind::EvictStore) + S.kind(SpillKind::ResolveStore));
  counter("vm.dyn.spill_moves")
      .add(S.kind(SpillKind::EvictMove) + S.kind(SpillKind::ResolveMove));
  counter("vm.dyn.spill_instrs").add(S.spillInstrs());
  counter("vm.dyn.callee_save_instrs")
      .add(S.kind(SpillKind::CalleeSave) + S.kind(SpillKind::CalleeRestore));
}

namespace {

/// Stable name-sorted view of the registry entries.
template <typename EntryT>
std::vector<const EntryT *>
sortedEntries(const std::vector<std::unique_ptr<EntryT>> &Entries) {
  std::vector<const EntryT *> Sorted;
  Sorted.reserve(Entries.size());
  for (const auto &E : Entries)
    Sorted.push_back(E.get());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const EntryT *A, const EntryT *B) { return A->Name < B->Name; });
  return Sorted;
}

} // namespace

void CounterRegistry::writeJsonl(std::ostream &OS) const {
  std::lock_guard<std::mutex> L(Mu);
  for (const Entry *E : sortedEntries(Entries)) {
    if (E->K == Entry::Kind::Count) {
      JsonObject O;
      O.field("kind", "counter").field("name", E->Name).field("value",
                                                              E->C.value());
      OS << O.str() << "\n";
    } else if (E->K == Entry::Kind::Dist) {
      JsonObject O;
      O.field("kind", "dist")
          .field("name", E->Name)
          .field("count", E->D.count())
          .field("sum", E->D.sum())
          .field("min", E->D.min())
          .field("max", E->D.max())
          .field("mean", E->D.mean());
      OS << O.str() << "\n";
    }
  }
}

bool CounterRegistry::writeJsonl(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeJsonl(OS);
  return OS.good();
}

std::string CounterRegistry::snapshotText() const {
  std::lock_guard<std::mutex> L(Mu);
  std::ostringstream OS;
  for (const Entry *E : sortedEntries(Entries)) {
    if (E->K == Entry::Kind::Count)
      OS << "counter " << E->Name << " " << E->C.value() << "\n";
    else if (E->K == Entry::Kind::Dist)
      OS << "dist " << E->Name << " " << E->D.count() << " "
         << jsonNumber(E->D.sum()) << " " << jsonNumber(E->D.min()) << " "
         << jsonNumber(E->D.max()) << "\n";
  }
  return OS.str();
}

void CounterRegistry::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Entries.clear();
}
