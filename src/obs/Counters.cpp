//===- obs/Counters.cpp ---------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Counters.h"

#include "obs/Json.h"
#include "obs/Metrics.h"
#include "regalloc/Allocator.h"
#include "support/AllocProfile.h"
#include "vm/VM.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <ostream>
#include <sstream>

using namespace lsra;
using namespace lsra::obs;

void Distribution::sample(double V) {
  std::lock_guard<std::mutex> L(Mu);
  if (Count == 0) {
    Min = Max = V;
  } else {
    Min = std::min(Min, V);
    Max = std::max(Max, V);
  }
  ++Count;
  Sum += V;
}

uint64_t Distribution::count() const {
  std::lock_guard<std::mutex> L(Mu);
  return Count;
}
double Distribution::sum() const {
  std::lock_guard<std::mutex> L(Mu);
  return Sum;
}
double Distribution::min() const {
  std::lock_guard<std::mutex> L(Mu);
  return Min;
}
double Distribution::max() const {
  std::lock_guard<std::mutex> L(Mu);
  return Max;
}
double Distribution::mean() const {
  std::lock_guard<std::mutex> L(Mu);
  return Count ? Sum / static_cast<double>(Count) : 0.0;
}

struct CounterRegistry::Entry {
  std::string Name;
  enum class Kind { Unused, Count, Dist, Hist, Gauge } K = Kind::Unused;
  Counter C;
  Distribution D;
  /// Lazily allocated (a WindowedHistogram is a few hundred KB; most
  /// entries are plain counters).
  std::unique_ptr<WindowedHistogram> H;
  obs::Gauge G;
};

CounterRegistry &CounterRegistry::global() {
  static CounterRegistry R;
  return R;
}

CounterRegistry::Entry &CounterRegistry::entry(const std::string &Name,
                                               int Kind) {
  std::lock_guard<std::mutex> L(Mu);
  for (auto &E : Entries) {
    if (E->Name == Name) {
      // First registration wins: a name keeps the kind it was created
      // with, so a later accessor of a different kind cannot flip how the
      // entry is reported mid-run.
      if (E->K == Entry::Kind::Unused)
        E->K = static_cast<Entry::Kind>(Kind);
      if (static_cast<Entry::Kind>(Kind) == Entry::Kind::Hist && !E->H)
        E->H = std::make_unique<WindowedHistogram>();
      return *E;
    }
  }
  Entries.push_back(std::make_unique<Entry>());
  Entries.back()->Name = Name;
  Entries.back()->K = static_cast<Entry::Kind>(Kind);
  if (Entries.back()->K == Entry::Kind::Hist)
    Entries.back()->H = std::make_unique<WindowedHistogram>();
  return *Entries.back();
}

Counter &CounterRegistry::counter(const std::string &Name) {
  return entry(Name, static_cast<int>(Entry::Kind::Count)).C;
}

Distribution &CounterRegistry::distribution(const std::string &Name) {
  return entry(Name, static_cast<int>(Entry::Kind::Dist)).D;
}

WindowedHistogram &CounterRegistry::histogram(const std::string &Name) {
  return *entry(Name, static_cast<int>(Entry::Kind::Hist)).H;
}

obs::Gauge &CounterRegistry::gauge(const std::string &Name) {
  return entry(Name, static_cast<int>(Entry::Kind::Gauge)).G;
}

void CounterRegistry::recordAllocStats(const AllocStats &S) {
  counter("alloc.evict_loads").add(S.EvictLoads);
  counter("alloc.evict_stores").add(S.EvictStores);
  counter("alloc.evict_moves").add(S.EvictMoves);
  counter("alloc.resolve_loads").add(S.ResolveLoads);
  counter("alloc.resolve_stores").add(S.ResolveStores);
  counter("alloc.resolve_moves").add(S.ResolveMoves);
  counter("alloc.static_spill_instrs").add(S.staticSpillInstrs());
  counter("alloc.reg_candidates").add(S.RegCandidates);
  counter("alloc.spilled_temps").add(S.SpilledTemps);
  counter("alloc.lifetime_splits").add(S.LifetimeSplits);
  counter("alloc.moves_coalesced").add(S.MovesCoalesced);
  counter("alloc.split_edges").add(S.SplitEdges);
  counter("alloc.dataflow_iterations").add(S.DataflowIterations);
  counter("alloc.coloring_iterations").add(S.ColoringIterations);
  counter("alloc.interference_edges").add(S.InterferenceEdges);
  distribution("alloc.time.cpu_s").sample(S.AllocSeconds);
  distribution("alloc.time.wall_s").sample(S.WallSeconds);
}

void CounterRegistry::recordAllocProfile() {
  AllocSnapshot S = allocSnapshot();
  counter("alloc.count").add(S.Count);
  counter("alloc.bytes").add(S.Bytes);
}

void CounterRegistry::recordRunStats(const RunStats &S) {
  counter("vm.runs").add(1);
  counter("vm.dyn.instrs").add(S.Total);
  counter("vm.dyn.cycles").add(S.Cycles);
  counter("vm.dyn.spill_loads")
      .add(S.kind(SpillKind::EvictLoad) + S.kind(SpillKind::ResolveLoad));
  counter("vm.dyn.spill_stores")
      .add(S.kind(SpillKind::EvictStore) + S.kind(SpillKind::ResolveStore));
  counter("vm.dyn.spill_moves")
      .add(S.kind(SpillKind::EvictMove) + S.kind(SpillKind::ResolveMove));
  counter("vm.dyn.spill_instrs").add(S.spillInstrs());
  counter("vm.dyn.callee_save_instrs")
      .add(S.kind(SpillKind::CalleeSave) + S.kind(SpillKind::CalleeRestore));
}

namespace {

/// Stable name-sorted view of the registry entries.
template <typename EntryT>
std::vector<const EntryT *>
sortedEntries(const std::vector<std::unique_ptr<EntryT>> &Entries) {
  std::vector<const EntryT *> Sorted;
  Sorted.reserve(Entries.size());
  for (const auto &E : Entries)
    Sorted.push_back(E.get());
  std::sort(Sorted.begin(), Sorted.end(),
            [](const EntryT *A, const EntryT *B) { return A->Name < B->Name; });
  return Sorted;
}

} // namespace

void CounterRegistry::writeJsonl(std::ostream &OS) const {
  std::lock_guard<std::mutex> L(Mu);
  for (const Entry *E : sortedEntries(Entries)) {
    if (E->K == Entry::Kind::Count) {
      JsonObject O;
      O.field("kind", "counter").field("name", E->Name).field("value",
                                                              E->C.value());
      OS << O.str() << "\n";
    } else if (E->K == Entry::Kind::Dist) {
      JsonObject O;
      O.field("kind", "dist")
          .field("name", E->Name)
          .field("count", E->D.count())
          .field("sum", E->D.sum())
          .field("min", E->D.min())
          .field("max", E->D.max())
          .field("mean", E->D.mean());
      OS << O.str() << "\n";
    } else if (E->K == Entry::Kind::Hist) {
      HistogramSnapshot S = E->H->snapshot();
      JsonObject O;
      O.field("kind", "hist")
          .field("name", E->Name)
          .field("count", S.Count)
          .field("sum", S.Sum)
          .field("min", S.Min)
          .field("max", S.Max)
          .field("p50", S.percentile(50))
          .field("p95", S.percentile(95))
          .field("p99", S.percentile(99));
      OS << O.str() << "\n";
    } else if (E->K == Entry::Kind::Gauge) {
      JsonObject O;
      O.field("kind", "gauge")
          .field("name", E->Name)
          .fieldRaw("value", std::to_string(E->G.value()));
      OS << O.str() << "\n";
    }
  }
}

bool CounterRegistry::writeJsonl(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeJsonl(OS);
  return OS.good();
}

std::string CounterRegistry::snapshotText() const {
  std::lock_guard<std::mutex> L(Mu);
  std::ostringstream OS;
  for (const Entry *E : sortedEntries(Entries)) {
    if (E->K == Entry::Kind::Count)
      OS << "counter " << E->Name << " " << E->C.value() << "\n";
    else if (E->K == Entry::Kind::Dist)
      OS << "dist " << E->Name << " " << E->D.count() << " "
         << jsonNumber(E->D.sum()) << " " << jsonNumber(E->D.min()) << " "
         << jsonNumber(E->D.max()) << "\n";
    else if (E->K == Entry::Kind::Hist) {
      HistogramSnapshot S = E->H->snapshot();
      OS << "hist " << E->Name << " " << S.Count << " " << S.Sum << " "
         << S.Min << " " << S.Max << "\n";
    } else if (E->K == Entry::Kind::Gauge)
      OS << "gauge " << E->Name << " " << E->G.value() << "\n";
  }
  return OS.str();
}

MetricsSnapshot CounterRegistry::metricsSnapshot() const {
  MetricsSnapshot Out;
  Out.UnixMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::system_clock::now().time_since_epoch())
                   .count();
  std::lock_guard<std::mutex> L(Mu);
  for (const Entry *E : sortedEntries(Entries)) {
    switch (E->K) {
    case Entry::Kind::Count:
      Out.Counters.emplace_back(E->Name, E->C.value());
      break;
    case Entry::Kind::Dist:
      // Legacy aggregate-only distributions surface as a sample-count
      // counter so the snapshot stays closed under the three metric kinds.
      Out.Counters.emplace_back(E->Name + ".count", E->D.count());
      break;
    case Entry::Kind::Gauge:
      Out.Gauges.emplace_back(E->Name, E->G.value());
      break;
    case Entry::Kind::Hist: {
      MetricsSnapshot::HistEntry H;
      H.Name = E->Name;
      // Windows are read before the lifetime view: samples recorded
      // between the two reads inflate only the lifetime counts, keeping
      // the "window count <= lifetime count" invariant intact.
      H.W1 = E->H->windowSnapshot(1);
      H.W10 = E->H->windowSnapshot(10);
      H.W60 = E->H->windowSnapshot(60);
      H.Life = E->H->snapshot();
      Out.Hists.push_back(std::move(H));
      break;
    }
    case Entry::Kind::Unused:
      break;
    }
  }
  return Out;
}

void CounterRegistry::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Entries.clear();
}
