//===- obs/Json.h - Minimal JSON emission helpers --------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small, dependency-free helpers for emitting syntactically valid JSON:
/// string quoting/escaping, locale-independent number formatting, and an
/// append-only object builder. Every observability sink (Chrome trace
/// writer, counter snapshots, decision log, the bench JSON tools) goes
/// through these instead of hand-rolling quoting and separators.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_OBS_JSON_H
#define LSRA_OBS_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

namespace lsra {
namespace obs {

/// \p S quoted and escaped as a JSON string literal (including the quotes).
inline std::string jsonQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
  return Out;
}

/// \p V formatted as a JSON number. Non-finite doubles (which JSON cannot
/// represent) become null.
inline std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "null";
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.9g", V);
  return Buf;
}

inline std::string jsonNumber(uint64_t V) { return std::to_string(V); }
inline std::string jsonNumber(int64_t V) { return std::to_string(V); }

/// Append-only builder for one JSON object; handles separators and quoting
/// so call sites never concatenate raw punctuation.
class JsonObject {
public:
  JsonObject &field(const char *Key, const std::string &V) {
    return raw(Key, jsonQuote(V));
  }
  JsonObject &field(const char *Key, const char *V) {
    return raw(Key, jsonQuote(V));
  }
  JsonObject &field(const char *Key, uint64_t V) {
    return raw(Key, jsonNumber(V));
  }
  JsonObject &field(const char *Key, unsigned V) {
    return raw(Key, jsonNumber(static_cast<uint64_t>(V)));
  }
  JsonObject &field(const char *Key, int V) {
    return raw(Key, jsonNumber(static_cast<int64_t>(V)));
  }
  JsonObject &field(const char *Key, double V) {
    return raw(Key, jsonNumber(V));
  }
  /// \p Json must already be valid JSON (a nested object/array/number).
  JsonObject &fieldRaw(const char *Key, const std::string &Json) {
    return raw(Key, Json);
  }

  /// The finished object, e.g. {"a": 1, "b": "x"}.
  std::string str() const { return Buf + "}"; }

private:
  JsonObject &raw(const char *Key, const std::string &Value) {
    Buf += First ? "" : ", ";
    First = false;
    Buf += jsonQuote(Key);
    Buf += ": ";
    Buf += Value;
    return *this;
  }

  std::string Buf = "{";
  bool First = true;
};

} // namespace obs
} // namespace lsra

#endif // LSRA_OBS_JSON_H
