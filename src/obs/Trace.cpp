//===- obs/Trace.cpp ------------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <algorithm>
#include <fstream>
#include <ostream>

using namespace lsra;
using namespace lsra::obs;

Tracer &Tracer::global() {
  static Tracer T;
  return T;
}

void Tracer::enable() {
  std::lock_guard<std::mutex> L(Mu);
  if (!EpochSet) {
    Epoch = std::chrono::steady_clock::now();
    EpochSet = true;
  }
  Enabled.store(true, std::memory_order_release);
}

void Tracer::disable() { Enabled.store(false, std::memory_order_release); }

int64_t Tracer::nowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - Epoch)
      .count();
}

Tracer::ThreadBuf &Tracer::localBuf() {
  // One buffer per (thread, tracer generation). The cache is invalidated by
  // reset() bumping Generation; the tracer owns the buffers, so a worker
  // thread exiting (pool teardown) never loses events.
  struct Cache {
    Tracer *T = nullptr;
    uint64_t Gen = 0;
    ThreadBuf *B = nullptr;
  };
  static thread_local Cache C;
  uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (C.T == this && C.Gen == Gen && C.B)
    return *C.B;
  auto Buf = std::make_unique<ThreadBuf>();
  ThreadBuf *Raw = Buf.get();
  {
    std::lock_guard<std::mutex> L(Mu);
    Buf->Tid = NextTid++;
    Buffers.push_back(std::move(Buf));
  }
  C = {this, Gen, Raw};
  return *Raw;
}

void Tracer::complete(std::string Name, const char *Cat, int64_t StartNs,
                      int64_t DurNs) {
  ThreadBuf &B = localBuf();
  std::lock_guard<std::mutex> L(B.Mu);
  B.Events.push_back({std::move(Name), Cat, StartNs, DurNs, B.Tid});
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const auto &B : Buffers) {
      std::lock_guard<std::mutex> BL(B->Mu);
      Out.insert(Out.end(), B->Events.begin(), B->Events.end());
    }
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     if (A.Tid != B.Tid)
                       return A.Tid < B.Tid;
                     if (A.StartNs != B.StartNs)
                       return A.StartNs < B.StartNs;
                     return A.DurNs > B.DurNs; // parent before child
                   });
  return Out;
}

std::vector<SpanSummary> Tracer::summarize() const {
  std::vector<TraceEvent> Events = snapshot();
  std::vector<SpanSummary> Out;
  for (const TraceEvent &E : Events) {
    auto It = std::find_if(Out.begin(), Out.end(), [&](const SpanSummary &S) {
      return S.Name == E.Name;
    });
    if (It == Out.end())
      Out.push_back({E.Name, E.Cat, 1, E.DurNs});
    else {
      ++It->Count;
      It->TotalNs += E.DurNs;
    }
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const SpanSummary &A, const SpanSummary &B) {
                     return A.TotalNs > B.TotalNs;
                   });
  return Out;
}

void Tracer::writeChromeJson(std::ostream &OS) const {
  std::vector<TraceEvent> Events = snapshot();
  OS << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      OS << ",\n";
    First = false;
    JsonObject O;
    O.field("name", E.Name)
        .field("cat", E.Cat)
        .field("ph", "X")
        .field("pid", 1)
        .field("tid", static_cast<uint64_t>(E.Tid))
        .field("ts", static_cast<double>(E.StartNs) / 1000.0)
        .field("dur", static_cast<double>(E.DurNs) / 1000.0);
    OS << "  " << O.str();
  }
  OS << "\n]}\n";
}

bool Tracer::writeChromeJson(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  writeChromeJson(OS);
  return OS.good();
}

void Tracer::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Generation.fetch_add(1, std::memory_order_acq_rel);
  Buffers.clear();
  NextTid = 0;
}
