//===- obs/DecisionLog.h - Allocation-decision event log -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An optional sink recording every consequential allocation decision —
/// evictions, second-chance lifetime splits, early-second-chance moves,
/// move coalescings, whole-lifetime spills — with the temporary, linear
/// position, register, and a reason. This is the "why did my value get
/// spilled here" view the aggregate statistics cannot give: the paper
/// argues its policies decision by decision (§2.2-§2.5), and the log makes
/// each one inspectable (`lsra run ... --explain`).
///
/// Like the tracer, records go to per-thread buffers. At flush they are
/// sorted by (function, per-thread sequence); each function is allocated
/// entirely by one thread, so the flushed log is identical for any
/// AllocOptions::Threads and replays identically for the same module.
///
/// Disabled (the default), a record call is one relaxed atomic load.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_OBS_DECISIONLOG_H
#define LSRA_OBS_DECISIONLOG_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lsra {

class Function;

namespace obs {

enum class DecisionKind : uint8_t {
  EvictStore,       ///< lowest-priority occupant evicted to memory (§2.3)
  EvictConvention,  ///< a usage convention reclaimed the register (§2.5)
  EvictMove,        ///< early second chance: moved to a free register (§2.5)
  EvictDrop,        ///< evicted during a real hole; nothing to save (§2.3)
  SecondChanceLoad, ///< reload at next use = lifetime split (§2.3)
  SecondChanceDef,  ///< redefinition of a spilled temp gets a register (§2.3)
  CoalesceMove,     ///< move coalesced onto the source register (§2.5)
  SpillWhole,       ///< whole lifetime sent to memory (coloring/scan/GEM)
  CacheHit,         ///< compile cache supplied the allocated body
};

const char *decisionKindName(DecisionKind K);

/// A second-chance lifetime split, in the paper's sense (the splits
/// AllocStats::LifetimeSplits counts).
inline bool isLifetimeSplit(DecisionKind K) {
  return K == DecisionKind::EvictMove || K == DecisionKind::SecondChanceLoad ||
         K == DecisionKind::SecondChanceDef;
}

constexpr unsigned NoValue = ~0u; ///< "not applicable" for Temp/Pos/Reg

struct Decision {
  std::string Fn;    ///< function being allocated
  DecisionKind Kind;
  unsigned Temp;     ///< virtual register id, or NoValue
  unsigned Pos;      ///< linear-order position, or NoValue
  unsigned Reg;      ///< physical register involved, or NoValue
  const char *Why;   ///< static reason text
  uint64_t Seq;      ///< per-thread sequence (flush ordering)
};

/// Display name of a physical register ("$3", "$f7", or "mem" for NoValue),
/// matching the textual IR printer.
std::string pregDisplayName(unsigned P);

class DecisionLog {
public:
  /// The process-wide log the allocators report to.
  static DecisionLog &global();

  void enable() { Enabled.store(true, std::memory_order_release); }
  void disable() { Enabled.store(false, std::memory_order_release); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Append one decision. Call only when enabled() (the allocators check
  /// first so the disabled path stays free of string copies).
  void record(const Function &F, DecisionKind K, unsigned Temp, unsigned Pos,
              unsigned Reg, const char *Why);

  /// Merged, deterministically ordered view (function name, then record
  /// order within the function). Requires quiescence, like the tracer.
  std::vector<Decision> snapshot() const;

  /// Human-readable dump (--explain).
  void writeText(std::ostream &OS) const;
  /// One {"kind": "decision", ...} JSON object per line.
  void writeJsonl(std::ostream &OS) const;

  void reset();

private:
  struct ThreadBuf {
    mutable std::mutex Mu;
    std::vector<Decision> Records;
    uint64_t NextSeq = 0;
  };

  ThreadBuf &localBuf();

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mu; ///< guards Buffers
  std::vector<std::unique_ptr<ThreadBuf>> Buffers;
  std::atomic<uint64_t> Generation{0};
};

} // namespace obs
} // namespace lsra

#endif // LSRA_OBS_DECISIONLOG_H
