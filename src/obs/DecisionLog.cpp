//===- obs/DecisionLog.cpp ------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "obs/DecisionLog.h"

#include "ir/Function.h"
#include "obs/Json.h"

#include <algorithm>
#include <ostream>

using namespace lsra;
using namespace lsra::obs;

const char *lsra::obs::decisionKindName(DecisionKind K) {
  switch (K) {
  case DecisionKind::EvictStore:
    return "evict-store";
  case DecisionKind::EvictConvention:
    return "evict-convention";
  case DecisionKind::EvictMove:
    return "evict-move";
  case DecisionKind::EvictDrop:
    return "evict-drop";
  case DecisionKind::SecondChanceLoad:
    return "second-chance-load";
  case DecisionKind::SecondChanceDef:
    return "second-chance-def";
  case DecisionKind::CoalesceMove:
    return "coalesce-move";
  case DecisionKind::SpillWhole:
    return "spill-whole";
  case DecisionKind::CacheHit:
    return "cache-hit";
  }
  return "unknown";
}

std::string lsra::obs::pregDisplayName(unsigned P) {
  if (P == NoValue)
    return "mem";
  if (P < NumIntPRegs)
    return "$" + std::to_string(P);
  return "$f" + std::to_string(P - NumIntPRegs);
}

DecisionLog &DecisionLog::global() {
  static DecisionLog L;
  return L;
}

DecisionLog::ThreadBuf &DecisionLog::localBuf() {
  struct Cache {
    DecisionLog *L = nullptr;
    uint64_t Gen = 0;
    ThreadBuf *B = nullptr;
  };
  static thread_local Cache C;
  uint64_t Gen = Generation.load(std::memory_order_acquire);
  if (C.L == this && C.Gen == Gen && C.B)
    return *C.B;
  auto Buf = std::make_unique<ThreadBuf>();
  ThreadBuf *Raw = Buf.get();
  {
    std::lock_guard<std::mutex> L(Mu);
    Buffers.push_back(std::move(Buf));
  }
  C = {this, Gen, Raw};
  return *Raw;
}

void DecisionLog::record(const Function &F, DecisionKind K, unsigned Temp,
                         unsigned Pos, unsigned Reg, const char *Why) {
  ThreadBuf &B = localBuf();
  std::lock_guard<std::mutex> L(B.Mu);
  B.Records.push_back({F.name(), K, Temp, Pos, Reg, Why, B.NextSeq++});
}

std::vector<Decision> DecisionLog::snapshot() const {
  std::vector<Decision> Out;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const auto &B : Buffers) {
      std::lock_guard<std::mutex> BL(B->Mu);
      Out.insert(Out.end(), B->Records.begin(), B->Records.end());
    }
  }
  // Each function is allocated by exactly one thread, so its records share
  // one buffer and their Seq order is the decision order; sorting by
  // (function, Seq) therefore yields the same log for any thread count.
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Decision &A, const Decision &B) {
                     if (A.Fn != B.Fn)
                       return A.Fn < B.Fn;
                     return A.Seq < B.Seq;
                   });
  return Out;
}

void DecisionLog::writeText(std::ostream &OS) const {
  std::string LastFn;
  for (const Decision &D : snapshot()) {
    if (D.Fn != LastFn) {
      OS << D.Fn << ":\n";
      LastFn = D.Fn;
    }
    OS << "  ";
    if (D.Pos == NoValue)
      OS << "@-";
    else
      OS << "@" << D.Pos;
    OS << " " << decisionKindName(D.Kind);
    if (D.Temp != NoValue)
      OS << " v" << D.Temp;
    OS << " -> " << pregDisplayName(D.Reg) << "  (" << D.Why << ")\n";
  }
}

void DecisionLog::writeJsonl(std::ostream &OS) const {
  for (const Decision &D : snapshot()) {
    JsonObject O;
    O.field("kind", "decision")
        .field("fn", D.Fn)
        .field("event", decisionKindName(D.Kind))
        .field("split", isLifetimeSplit(D.Kind) ? 1 : 0)
        .field("why", D.Why);
    if (D.Temp != NoValue)
      O.field("temp", D.Temp);
    if (D.Pos != NoValue)
      O.field("pos", D.Pos);
    if (D.Reg != NoValue)
      O.field("reg", D.Reg).field("reg_name", pregDisplayName(D.Reg));
    OS << O.str() << "\n";
  }
}

void DecisionLog::reset() {
  std::lock_guard<std::mutex> L(Mu);
  Generation.fetch_add(1, std::memory_order_acq_rel);
  Buffers.clear();
}
