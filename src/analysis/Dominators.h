//===- analysis/Dominators.h - Dominator tree ------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Immediate dominators via the Cooper–Harvey–Kennedy iterative algorithm.
/// Used by the natural-loop analysis that supplies the loop depths both
/// allocators weight their spill heuristics with.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_ANALYSIS_DOMINATORS_H
#define LSRA_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <vector>

namespace lsra {

class Dominators {
public:
  explicit Dominators(const Function &F);

  /// As above, but reusing a precomputed reverse post-order (e.g. the one
  /// cached in FunctionAnalyses) instead of recomputing it.
  Dominators(const Function &F, const std::vector<unsigned> &RPO);

  /// Immediate dominator of \p B; the entry's idom is itself. ~0u for
  /// unreachable blocks.
  unsigned idom(unsigned B) const { return IDom[B]; }

  /// True if \p A dominates \p B (reflexive).
  bool dominates(unsigned A, unsigned B) const;

  bool isReachable(unsigned B) const { return IDom[B] != ~0u; }

private:
  std::vector<unsigned> IDom;
  std::vector<unsigned> RPONumber;
};

} // namespace lsra

#endif // LSRA_ANALYSIS_DOMINATORS_H
