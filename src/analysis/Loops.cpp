//===- analysis/Loops.cpp -------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Loops.h"

#include "analysis/Dominators.h"
#include "support/BitVector.h"

using namespace lsra;

LoopInfo::LoopInfo(const Function &F) : LoopInfo(F, Dominators(F)) {}

LoopInfo::LoopInfo(const Function &F, const Dominators &Dom) {
  unsigned N = F.numBlocks();
  Depth.assign(N, 0);
  auto Preds = F.predecessors();

  // Find back edges T -> H (H dominates T); flood backward from T to H to
  // collect the natural loop body.
  for (unsigned T = 0; T < N; ++T) {
    if (!Dom.isReachable(T))
      continue;
    for (unsigned H : F.block(T).successors()) {
      if (!Dom.dominates(H, T))
        continue;
      Loop L;
      L.Header = H;
      BitVector InLoop(N);
      InLoop.set(H);
      std::vector<unsigned> Work;
      if (!InLoop.test(T)) {
        InLoop.set(T);
        Work.push_back(T);
      }
      while (!Work.empty()) {
        unsigned B = Work.back();
        Work.pop_back();
        for (unsigned P : Preds[B])
          if (!InLoop.test(P)) {
            InLoop.set(P);
            Work.push_back(P);
          }
      }
      InLoop.forEachSetBit([&](unsigned B) { L.Blocks.push_back(B); });
      Loops.push_back(std::move(L));
    }
  }

  // Depth = number of loops containing the block. Two back edges sharing a
  // header describe one loop, so count each (header, block) pair once.
  for (unsigned B = 0; B < N; ++B) {
    BitVector SeenHeaders(N);
    for (const Loop &L : Loops) {
      bool Contains = false;
      for (unsigned LB : L.Blocks)
        if (LB == B) {
          Contains = true;
          break;
        }
      if (Contains && !SeenHeaders.test(L.Header)) {
        SeenHeaders.set(L.Header);
        ++Depth[B];
      }
    }
  }
}
