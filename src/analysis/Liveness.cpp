//===- analysis/Liveness.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/Order.h"

#include <deque>

using namespace lsra;

Liveness::Liveness(const Function &F, const TargetDesc &TD,
                   const std::vector<unsigned> *RPO)
    : NumVRegs(F.numVRegs()) {
  (void)TD;
  unsigned NumBlocks = F.numBlocks();
  LiveIn.assign(NumBlocks, BitVector(NumVRegs));
  LiveOut.assign(NumBlocks, BitVector(NumVRegs));
  UseSets.assign(NumBlocks, BitVector(NumVRegs));
  DefSets.assign(NumBlocks, BitVector(NumVRegs));
  CrossBlock.resize(NumVRegs);

  // Local GEN (upward-exposed uses) and KILL (defs) sets.
  for (unsigned B = 0; B < NumBlocks; ++B) {
    BitVector &Use = UseSets[B];
    BitVector &Def = DefSets[B];
    for (const Instr &I : F.block(B).instrs()) {
      forEachUsedReg(I, [&](const Operand &Op) {
        if (Op.isVReg() && !Def.test(Op.vregId()))
          Use.set(Op.vregId());
      });
      forEachDefinedReg(I, [&](const Operand &Op) {
        if (Op.isVReg())
          Def.set(Op.vregId());
      });
    }
  }

  // Solve LiveOut(b) = U LiveIn(s); LiveIn(b) = Use(b) | (LiveOut - Def)
  // with a worklist seeded in post-order (the reverse of the entry's
  // reverse post-order). For a backward problem this visits every block
  // after all its successors on acyclic paths, so only blocks reached by a
  // back edge are ever re-queued — unlike whole-CFG sweeps, which recompute
  // every block until an entire pass changes nothing.
  std::vector<std::vector<unsigned>> Succs(NumBlocks);
  for (unsigned B = 0; B < NumBlocks; ++B)
    Succs[B] = F.block(B).successors();
  std::vector<std::vector<unsigned>> Preds = F.predecessors();

  std::vector<unsigned> Order;
  if (!RPO) {
    Order = reversePostOrder(F);
    RPO = &Order;
  }
  assert(RPO->size() == NumBlocks && "stale reverse post-order");

  std::deque<unsigned> Worklist;
  std::vector<uint8_t> InWorklist(NumBlocks, 0);
  for (unsigned I = NumBlocks; I-- > 0;) {
    Worklist.push_back((*RPO)[I]);
    InWorklist[(*RPO)[I]] = 1;
  }

  while (!Worklist.empty()) {
    unsigned B = Worklist.front();
    Worklist.pop_front();
    InWorklist[B] = 0;
    ++Iterations;

    BitVector &Out = LiveOut[B];
    for (unsigned S : Succs[B])
      Out |= LiveIn[S];
    BitVector &In = LiveIn[B];
    bool InChanged = In.unionWithDifference(Out, DefSets[B]);
    InChanged |= (In |= UseSets[B]);
    if (!InChanged)
      continue;
    for (unsigned P : Preds[B])
      if (!InWorklist[P]) {
        InWorklist[P] = 1;
        Worklist.push_back(P);
      }
  }

  for (unsigned B = 0; B < NumBlocks; ++B) {
    CrossBlock |= LiveIn[B];
    CrossBlock |= LiveOut[B];
  }
}
