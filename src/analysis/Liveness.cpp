//===- analysis/Liveness.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/Order.h"

using namespace lsra;

Liveness::Liveness(const Function &F, const TargetDesc &TD)
    : NumVRegs(F.numVRegs()) {
  (void)TD;
  unsigned NumBlocks = F.numBlocks();
  LiveIn.assign(NumBlocks, BitVector(NumVRegs));
  LiveOut.assign(NumBlocks, BitVector(NumVRegs));
  UseSets.assign(NumBlocks, BitVector(NumVRegs));
  DefSets.assign(NumBlocks, BitVector(NumVRegs));
  CrossBlock.resize(NumVRegs);

  // Local GEN (upward-exposed uses) and KILL (defs) sets.
  for (unsigned B = 0; B < NumBlocks; ++B) {
    BitVector &Use = UseSets[B];
    BitVector &Def = DefSets[B];
    for (const Instr &I : F.block(B).instrs()) {
      forEachUsedReg(I, [&](const Operand &Op) {
        if (Op.isVReg() && !Def.test(Op.vregId()))
          Use.set(Op.vregId());
      });
      forEachDefinedReg(I, [&](const Operand &Op) {
        if (Op.isVReg())
          Def.set(Op.vregId());
      });
    }
  }

  // Iterate LiveOut(b) = U LiveIn(s); LiveIn(b) = Use(b) | (LiveOut - Def).
  // Processing blocks in reverse id order approximates post-order for the
  // layouts our builder produces; the loop iterates to a fixed point either
  // way.
  std::vector<std::vector<unsigned>> Succs(NumBlocks);
  for (unsigned B = 0; B < NumBlocks; ++B)
    Succs[B] = F.block(B).successors();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    for (unsigned B = NumBlocks; B-- > 0;) {
      BitVector &Out = LiveOut[B];
      for (unsigned S : Succs[B])
        Changed |= (Out |= LiveIn[S]);
      BitVector &In = LiveIn[B];
      Changed |= In.unionWithDifference(Out, DefSets[B]);
      Changed |= (In |= UseSets[B]);
    }
  }

  for (unsigned B = 0; B < NumBlocks; ++B) {
    CrossBlock |= LiveIn[B];
    CrossBlock |= LiveOut[B];
  }
}
