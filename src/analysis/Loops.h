//===- analysis/Loops.h - Natural loops and loop depth ---------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural-loop detection (back edges to dominators) and per-block loop
/// depth. "Loop depth is used in the same way to weight occurrence counts
/// in both allocators" (§3 of the paper): binpacking weights its eviction
/// distances with it, and graph coloring weights its spill costs with it.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_ANALYSIS_LOOPS_H
#define LSRA_ANALYSIS_LOOPS_H

#include "ir/Function.h"

#include <vector>

namespace lsra {

struct Loop {
  unsigned Header;
  std::vector<unsigned> Blocks; ///< includes the header
};

class Dominators;

class LoopInfo {
public:
  explicit LoopInfo(const Function &F);

  /// As above, but reusing a precomputed dominator tree (e.g. the one
  /// cached in FunctionAnalyses) instead of building a private one.
  LoopInfo(const Function &F, const Dominators &Dom);

  /// Nesting depth of \p B: 0 outside any loop.
  unsigned depth(unsigned B) const { return Depth[B]; }

  const std::vector<Loop> &loops() const { return Loops; }

  /// 10^min(depth, 6): the standard occurrence-count weight.
  double blockWeight(unsigned B) const {
    static const double Pow10[7] = {1, 10, 100, 1000, 1e4, 1e5, 1e6};
    unsigned D = Depth[B];
    return Pow10[D > 6 ? 6 : D];
  }

private:
  std::vector<unsigned> Depth;
  std::vector<Loop> Loops;
};

} // namespace lsra

#endif // LSRA_ANALYSIS_LOOPS_H
