//===- analysis/Liveness.h - Bit-vector liveness ---------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative backward bit-vector liveness over virtual registers. Both the
/// paper's allocators consume liveness "attached to the CFG prior to
/// register allocation" by a shared library; this is that library.
///
/// Physical registers are deliberately excluded from the cross-block sets:
/// after LowerCalls, every physical-register live range in this IR is local
/// to one block (argument setup immediately precedes the call; result moves
/// immediately follow it; entry moves copy argument registers away at the
/// top of the entry block).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_ANALYSIS_LIVENESS_H
#define LSRA_ANALYSIS_LIVENESS_H

#include "ir/Function.h"
#include "support/BitVector.h"
#include "target/Target.h"

#include <vector>

namespace lsra {

class Liveness {
public:
  /// Compute liveness for \p F (calls must already be lowered). The
  /// fixpoint is a worklist seeded in post-order (the reverse of \p RPO),
  /// which converges in one visit per block on acyclic CFGs and one extra
  /// visit per enclosing back edge otherwise. When \p RPO is null the
  /// order is computed internally; pass the cached order from
  /// FunctionAnalyses to share it.
  Liveness(const Function &F, const TargetDesc &TD,
           const std::vector<unsigned> *RPO = nullptr);

  const BitVector &liveIn(unsigned B) const { return LiveIn[B]; }
  const BitVector &liveOut(unsigned B) const { return LiveOut[B]; }
  const BitVector &useSet(unsigned B) const { return UseSets[B]; }
  const BitVector &defSet(unsigned B) const { return DefSets[B]; }

  /// True if \p V appears in any block's live-in or live-out set, i.e. its
  /// lifetime crosses a basic-block boundary. The paper excludes purely
  /// local temporaries from the dataflow universes of both allocators.
  bool isCrossBlock(unsigned V) const { return CrossBlock.test(V); }
  const BitVector &crossBlockSet() const { return CrossBlock; }

  unsigned numVRegs() const { return NumVRegs; }

  /// Number of block relaxations the worklist performed (>= numBlocks();
  /// equal to it for acyclic CFGs).
  unsigned numIterations() const { return Iterations; }

private:
  unsigned NumVRegs;
  unsigned Iterations = 0;
  std::vector<BitVector> LiveIn, LiveOut, UseSets, DefSets;
  BitVector CrossBlock;
};

} // namespace lsra

#endif // LSRA_ANALYSIS_LIVENESS_H
