//===- analysis/AnalysisCache.cpp -----------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalysisCache.h"

using namespace lsra;

const std::vector<unsigned> &FunctionAnalyses::rpo() {
  if (!RPO)
    RPO = std::make_unique<std::vector<unsigned>>(reversePostOrder(F));
  return *RPO;
}

const Numbering &FunctionAnalyses::numbering() {
  if (!Num)
    Num = std::make_unique<Numbering>(F);
  return *Num;
}

const Liveness &FunctionAnalyses::liveness() {
  if (!LV)
    LV = std::make_unique<Liveness>(F, TD, &rpo());
  return *LV;
}

const Dominators &FunctionAnalyses::dominators() {
  if (!Dom)
    Dom = std::make_unique<Dominators>(F, rpo());
  return *Dom;
}

const LoopInfo &FunctionAnalyses::loops() {
  if (!LI)
    LI = std::make_unique<LoopInfo>(F, dominators());
  return *LI;
}

const LifetimeAnalysis &FunctionAnalyses::lifetimes() {
  if (!LT)
    LT = std::make_unique<LifetimeAnalysis>(F, numbering(), liveness(),
                                            loops(), TD);
  return *LT;
}

void FunctionAnalyses::invalidate() {
  // Destroy in reverse dependency order.
  LT.reset();
  LI.reset();
  Dom.reset();
  LV.reset();
  Num.reset();
  RPO.reset();
}
