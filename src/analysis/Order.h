//===- analysis/Order.h - Linear order and positions ----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static linear order of a procedure (Figure 1 of the paper) and the
/// position numbering the lifetime machinery uses.
///
/// The linear order is the block layout order (block-id order). Every
/// instruction gets a global linear index; index K owns two positions:
///   - 2K   : the "use" point (operands are read here), and
///   - 2K+1 : the "def" point (results are written here).
/// Live segments are half-open [Start, End) over these positions, so a
/// value defined at K and last used at M occupies [2K+1, 2M+1), and a def
/// can reuse a register whose occupant dies at the same instruction.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_ANALYSIS_ORDER_H
#define LSRA_ANALYSIS_ORDER_H

#include "ir/Function.h"

#include <vector>

namespace lsra {

class Numbering {
public:
  explicit Numbering(const Function &F);

  unsigned numInstrs() const { return NumInstrs; }

  /// Global linear index of instruction \p I of block \p B.
  unsigned instrIndex(unsigned B, unsigned I) const {
    return BlockFirstIdx[B] + I;
  }

  static unsigned usePos(unsigned Idx) { return 2 * Idx; }
  static unsigned defPos(unsigned Idx) { return 2 * Idx + 1; }

  /// Position of the top of block \p B (live-in segments start here).
  unsigned blockStartPos(unsigned B) const {
    return 2 * BlockFirstIdx[B];
  }
  /// Position just past block \p B (live-out segments end here).
  unsigned blockEndPos(unsigned B) const {
    return 2 * (BlockFirstIdx[B] + BlockSize[B]);
  }

  unsigned blockFirstIndex(unsigned B) const { return BlockFirstIdx[B]; }
  unsigned blockSize(unsigned B) const { return BlockSize[B]; }

  /// The block containing linear instruction index \p Idx.
  unsigned blockOfIndex(unsigned Idx) const;

private:
  std::vector<unsigned> BlockFirstIdx;
  std::vector<unsigned> BlockSize;
  unsigned NumInstrs = 0;
};

/// Block ids in reverse post order from the entry (unreachable blocks are
/// appended at the end so analyses still cover them).
std::vector<unsigned> reversePostOrder(const Function &F);

/// Split the CFG edge \p Pred -> \p Succ by inserting a fresh block that
/// branches to \p Succ; returns the new block. Used to place resolution
/// code on critical edges (§2.4 footnote 1).
Block &splitEdge(Function &F, unsigned Pred, unsigned Succ);

} // namespace lsra

#endif // LSRA_ANALYSIS_ORDER_H
