//===- analysis/Dominators.cpp --------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include "analysis/Order.h"

using namespace lsra;

Dominators::Dominators(const Function &F)
    : Dominators(F, reversePostOrder(F)) {}

Dominators::Dominators(const Function &F, const std::vector<unsigned> &RPO) {
  unsigned N = F.numBlocks();
  assert(RPO.size() == N && "stale reverse post-order");
  IDom.assign(N, ~0u);
  RPONumber.assign(N, ~0u);

  for (unsigned I = 0; I < RPO.size(); ++I)
    RPONumber[RPO[I]] = I;

  auto Preds = F.predecessors();
  IDom[0] = 0;

  auto Intersect = [&](unsigned A, unsigned B) {
    while (A != B) {
      while (RPONumber[A] > RPONumber[B])
        A = IDom[A];
      while (RPONumber[B] > RPONumber[A])
        B = IDom[B];
    }
    return A;
  };

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : RPO) {
      if (B == 0)
        continue;
      unsigned NewIDom = ~0u;
      for (unsigned P : Preds[B]) {
        if (IDom[P] == ~0u)
          continue; // unreachable or not yet processed
        NewIDom = NewIDom == ~0u ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != ~0u && IDom[B] != NewIDom) {
        IDom[B] = NewIDom;
        Changed = true;
      }
    }
  }
}

bool Dominators::dominates(unsigned A, unsigned B) const {
  if (!isReachable(B))
    return false;
  while (true) {
    if (A == B)
      return true;
    if (B == 0)
      return false;
    B = IDom[B];
  }
}
