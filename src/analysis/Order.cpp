//===- analysis/Order.cpp -------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Order.h"

#include <algorithm>

using namespace lsra;

Numbering::Numbering(const Function &F) {
  BlockFirstIdx.resize(F.numBlocks());
  BlockSize.resize(F.numBlocks());
  unsigned Idx = 0;
  for (unsigned B = 0; B < F.numBlocks(); ++B) {
    BlockFirstIdx[B] = Idx;
    BlockSize[B] = F.block(B).size();
    Idx += BlockSize[B];
  }
  NumInstrs = Idx;
}

unsigned Numbering::blockOfIndex(unsigned Idx) const {
  assert(Idx < NumInstrs && "linear index out of range");
  auto It = std::upper_bound(BlockFirstIdx.begin(), BlockFirstIdx.end(), Idx);
  return static_cast<unsigned>(It - BlockFirstIdx.begin()) - 1;
}

std::vector<unsigned> lsra::reversePostOrder(const Function &F) {
  std::vector<unsigned> PostOrder;
  std::vector<uint8_t> State(F.numBlocks(), 0); // 0=new, 1=open, 2=done
  // Iterative DFS with an explicit stack of (block, next-successor-index).
  std::vector<std::pair<unsigned, unsigned>> Stack;
  Stack.push_back({0, 0});
  State[0] = 1;
  std::vector<std::vector<unsigned>> Succs(F.numBlocks());
  for (unsigned B = 0; B < F.numBlocks(); ++B)
    Succs[B] = F.block(B).successors();
  while (!Stack.empty()) {
    auto &[B, NextIdx] = Stack.back();
    if (NextIdx < Succs[B].size()) {
      unsigned S = Succs[B][NextIdx++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[B] = 2;
    PostOrder.push_back(B);
    Stack.pop_back();
  }
  std::vector<unsigned> RPO(PostOrder.rbegin(), PostOrder.rend());
  for (unsigned B = 0; B < F.numBlocks(); ++B)
    if (State[B] != 2)
      RPO.push_back(B); // unreachable; keep analyses total
  return RPO;
}

Block &lsra::splitEdge(Function &F, unsigned Pred, unsigned Succ) {
  Block &NewB = F.addBlock(F.block(Pred).name() + "." + F.block(Succ).name());
  NewB.append(Instr(Opcode::Br, Operand::label(Succ)));
  F.block(Pred).replaceSuccessor(Succ, NewB.id());
  return NewB;
}
