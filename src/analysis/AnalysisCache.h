//===- analysis/AnalysisCache.h - Per-function analysis cache --*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazily computed, shareable per-function analyses. The paper attaches
/// liveness "to the CFG prior to register allocation" by a shared library;
/// this cache is that library's memoisation layer: each analysis is built
/// at most once per function and handed out as a const reference, instead
/// of every allocator privately rebuilding the same order/liveness/loop
/// structures.
///
/// Derived analyses share their prerequisites through the cache: Liveness
/// seeds its worklist with the cached reverse post-order, Dominators reuse
/// the same order, and Loops build on the cached Dominators.
///
/// The cache holds const references into the Function; any pass that
/// mutates the IR must call invalidate() before the next analysis request.
/// One FunctionAnalyses instance serves exactly one function and is not
/// thread-safe; parallel module compilation gives each worker its own
/// instance for the function it owns.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_ANALYSIS_ANALYSISCACHE_H
#define LSRA_ANALYSIS_ANALYSISCACHE_H

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Order.h"
#include "regalloc/Lifetime.h"

#include <memory>
#include <vector>

namespace lsra {

class FunctionAnalyses {
public:
  FunctionAnalyses(const Function &F, const TargetDesc &TD) : F(F), TD(TD) {}

  const Function &function() const { return F; }

  /// Block ids in reverse post-order from the entry.
  const std::vector<unsigned> &rpo();

  /// The static linear order's position numbering.
  const Numbering &numbering();

  /// Backward bit-vector liveness (worklist seeded from rpo()).
  const Liveness &liveness();

  const Dominators &dominators();

  /// Natural loops and depths, built on dominators().
  const LoopInfo &loops();

  /// Lifetimes with holes over the linear order, built from numbering(),
  /// liveness(), and loops().
  const LifetimeAnalysis &lifetimes();

  /// Drop every cached analysis. Must be called after any IR mutation of
  /// the function before further analyses are requested.
  void invalidate();

private:
  const Function &F;
  const TargetDesc &TD;

  std::unique_ptr<std::vector<unsigned>> RPO;
  std::unique_ptr<Numbering> Num;
  std::unique_ptr<Liveness> LV;
  std::unique_ptr<Dominators> Dom;
  std::unique_ptr<LoopInfo> LI;
  std::unique_ptr<LifetimeAnalysis> LT;
};

} // namespace lsra

#endif // LSRA_ANALYSIS_ANALYSISCACHE_H
