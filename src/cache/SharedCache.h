//===- cache/SharedCache.h - Shared-memory L2 compile cache ----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cross-process tier of the compile cache: a file-backed shared-memory
/// segment holding module-level compile results, shared by every server
/// process that opens the same path. The in-process CompileCache stays L1;
/// this is L2 — a second process's first compile of a module the first
/// process already compiled is one directory probe plus one memcpy instead
/// of a full parse/allocate/print.
///
/// Segment layout (one mmap, geometry fixed at creation):
///
///   [SegHeader]   magic/version/geometry, the arena cursor, the global
///                 invalidation epoch, and per-process invalidation rings
///   [directory]   BucketCount buckets x SlotsPerBucket seqlock slots,
///                 each naming a 128-bit CacheKey and an arena region
///   [value arena] log-structured: entries are bump-allocated and never
///                 freed in place; the cursor wraps when the arena fills
///                 and stale directory slots are detected at read time
///
/// Concurrency protocol (lock-free readers, per-process writer):
///   - readers validate a slot with a seqlock (odd = write in progress;
///     re-read after copying out) and then validate the arena region
///     itself (entry magic, key echo, commit word, payload checksum), so
///     a torn write, a crashed writer, or a wrap overwrite is a clean
///     miss, never a torn value;
///   - writers claim arena space with a CAS bump (wrapping to offset 0
///     when full) and claim a directory slot by CAS-ing its sequence
///     number odd; the entry is fully written and its commit word
///     published with release ordering before the slot is;
///   - nothing in the segment is ever locked, so a SIGKILLed process can
///     never wedge the cache — at worst it leaks one mid-write slot,
///     which the stale-slot reclaimer eventually recycles.
///
/// Invalidation is log-based (the RACoherence shape): each process owns
/// one ring in the header and appends (epoch, key-class) records to it;
/// a background agent thread in every attached process consumes all other
/// rings into a local epoch watermark and forwards each record to an
/// invalidation sink (the owning CompileCache drops matching L1 entries).
/// L2 slots of the class are cleared directly in the shared directory by
/// the rotating process, so the read path never takes a lock and a
/// rotation propagates fleet-wide within one agent poll interval. A
/// consumer that lags a full ring falls back to a conservative wildcard
/// drop (class 0 = every class).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_CACHE_SHAREDCACHE_H
#define LSRA_CACHE_SHAREDCACHE_H

#include "cache/CompileCache.h"

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace lsra {
namespace cache {

struct SharedCacheConfig {
  /// Backing file (e.g. /dev/shm/lsra-l2.seg). Created and sized on first
  /// open; later opens attach to the existing geometry.
  std::string Path;
  /// Total segment budget (header + directory + value arena). Ignored when
  /// attaching to an existing segment — the creator's geometry wins.
  size_t MaxBytes = 256u << 20;
  /// Agent cadence: invalidation rings are consumed and the l2 gauges
  /// refreshed at least this often, so a rotation in one process reaches
  /// every attached process within ~one poll interval.
  unsigned AgentPollMs = 20;
  /// Tests drive poll() by hand; servers want the background agent.
  bool StartAgent = true;
};

/// One L2 value: the allocated module text plus the cold run's statistics
/// and the entry's invalidation class (target fingerprint by convention).
struct L2Entry {
  std::string Payload;
  AllocStats Stats{};
  uint64_t ClassTag = 0;
};

/// Point-in-time view. Hits/Misses/Fills/Invalidations are this process's
/// lifetime totals; Bytes/Entries describe the shared segment itself.
struct L2Stats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Fills = 0;            ///< entries this process published
  uint64_t PublishRejected = 0;  ///< oversize (entry > arena/2)
  uint64_t Invalidations = 0;    ///< class records applied by this process
  uint64_t RingLagWipes = 0;     ///< conservative wildcard fallbacks
  uint64_t Wraps = 0;            ///< arena cursor wrap-arounds
  size_t Bytes = 0;              ///< arena occupancy (monotone until wrap)
  size_t CapacityBytes = 0;      ///< arena size
  size_t Entries = 0;            ///< live directory slots (validated scan)
  uint64_t Epoch = 0;            ///< global invalidation epoch
  uint64_t EpochSeen = 0;        ///< this process's consumed watermark
};

class SharedCache {
public:
  /// Open (creating and initialising if needed) the segment at C.Path.
  /// Returns nullptr with \p Err set when the file cannot be created,
  /// mapped, or carries an incompatible layout.
  static std::unique_ptr<SharedCache> open(const SharedCacheConfig &C,
                                           std::string &Err);
  ~SharedCache();

  SharedCache(const SharedCache &) = delete;
  SharedCache &operator=(const SharedCache &) = delete;

  /// Seqlock-validated lock-free probe. True and \p Out filled on a clean
  /// hit; a torn, stale, or absent entry is false (and a slot that fails
  /// arena validation is opportunistically cleared).
  bool lookup(const CacheKey &K, L2Entry &Out);

  /// Write \p E under \p K now (arena append + slot publish). False when
  /// the entry is too large for the arena (> arena/2: one value may not
  /// thrash the whole log).
  bool publish(const CacheKey &K, const L2Entry &E);

  /// Queue \p E for the agent thread to publish — the compile path's
  /// fire-and-forget insert. With no agent running this degrades to a
  /// synchronous publish.
  void publishAsync(const CacheKey &K, L2Entry E);

  /// Block until every queued publishAsync has landed in the segment.
  void drainPublishes();

  /// Rotate \p ClassTag out fleet-wide: clear matching L2 slots in the
  /// shared directory, append an (epoch, class) record to this process's
  /// ring for every other attached process, and apply the drop to the
  /// local sink immediately. ClassTag 0 is the wildcard (drop everything).
  void invalidateClass(uint64_t ClassTag);

  /// One agent turn, callable from tests: drain queued publishes, consume
  /// every other process's invalidation ring (forwarding records to the
  /// sink and advancing the watermark), refresh the l2 gauges.
  void poll();

  /// Invalidation sink: called with each consumed class record (and with
  /// 0 on a wildcard/lag wipe). The owning CompileCache registers its L1
  /// drop here. Called from the agent thread (or poll()'s caller).
  void setInvalidationSink(std::function<void(uint64_t)> Sink);

  L2Stats stats() const;
  size_t maxBytes() const { return SegBytes; }
  const std::string &path() const { return FilePath; }
  uint64_t epochWatermark() const;

  /// Test hook: append a deliberately torn entry — the first
  /// \p PayloadBytesWritten payload bytes are written, the commit word is
  /// not — and publish a slot pointing at it, as if the writer died
  /// mid-publish with the slot already visible. Readers must miss.
  void debugPublishTorn(const CacheKey &K, const L2Entry &E,
                        size_t PayloadBytesWritten);

private:
  SharedCache() = default;

  struct SegHeader;
  struct SegRing;
  struct SegSlot;

  bool mapSegment(const SharedCacheConfig &C, std::string &Err);
  void startAgent(unsigned PollMs);
  void agentMain(unsigned PollMs);
  void consumeRings();
  void applyInvalidation(uint64_t ClassTag, bool CountRecord);
  void clearMatchingSlots(uint64_t ClassTag);
  void updateGauges();
  bool readEntryAt(uint64_t Off, uint64_t Len, const CacheKey &K,
                   L2Entry &Out);
  uint64_t claimArena(size_t Need);
  bool writeEntry(const CacheKey &K, const L2Entry &E, uint64_t &OffOut,
                  uint64_t &LenOut, size_t TornPayloadBytes, bool Torn);
  void publishSlot(const CacheKey &K, uint64_t Off, uint64_t Len,
                   uint64_t ClassTag);

  SegSlot *slotArray() const;
  unsigned char *arena() const;
  SegHeader *Hdr = nullptr;
  void *Map = nullptr;
  size_t SegBytes = 0;
  int Fd = -1;
  std::string FilePath;
  int RingIndex = -1;     ///< this process's ring (-1: none free)
  uint64_t RingToken = 0; ///< our claim on Rings[RingIndex]

  // Per-process side (never in the segment).
  mutable std::mutex SinkMu;
  std::function<void(uint64_t)> Sink;
  std::mutex RingMu;                  ///< serialises our ring's appends
  std::mutex PollMu;                  ///< serialises poll()/agent turns
  std::vector<uint64_t> RingConsumed; ///< per-ring consumed head
  std::vector<uint64_t> RingOwnerSeen; ///< detects ring owner turnover

  std::mutex PubMu;
  std::condition_variable PubCv;
  std::deque<std::pair<CacheKey, L2Entry>> PubQueue;
  bool PubIdle = true;

  std::thread Agent;
  std::mutex AgentMu;
  std::condition_variable AgentCv;
  bool AgentStop = false;
  bool AgentRunning = false;

  std::atomic<uint64_t> NHits{0}, NMisses{0}, NFills{0}, NPublishRejected{0},
      NInvalidations{0}, NRingLagWipes{0};
  std::atomic<uint64_t> EpochSeen{0};
};

} // namespace cache
} // namespace lsra

#endif // LSRA_CACHE_SHAREDCACHE_H
