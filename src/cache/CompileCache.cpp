//===- cache/CompileCache.cpp ---------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"

#include "ir/Function.h"
#include "obs/Counters.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstring>

using namespace lsra;
using namespace lsra::cache;

namespace {

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t FnvPrime = 0x100000001b3ull;

uint64_t fnv1a(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t fnv1aWord(uint64_t H, uint64_t V) {
  return fnv1a(H, &V, sizeof(V));
}

// FNV-1a folded over 64-bit words (memcpy for alignment), byte-wise tail.
// A warm module-level hit costs little more than hashing the request
// text, so the per-byte multiply chain of plain FNV-1a would dominate the
// hit latency on module-sized inputs. Values differ from byte-wise FNV,
// which is fine: keys never leave the in-memory cache.
uint64_t fnv1aBulk(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (; Len >= 8; P += 8, Len -= 8) {
    uint64_t W;
    std::memcpy(&W, P, 8);
    H ^= W;
    H *= FnvPrime;
  }
  return fnv1a(H, P, Len);
}

CacheKey makeKey(uint64_t LevelTag, const std::string &Text,
                 uint64_t OptionsFp, AllocatorKind K, uint64_t TargetFp) {
  uint64_t Meta[4] = {LevelTag, OptionsFp, static_cast<uint64_t>(K),
                      TargetFp};
  // Two FNV streams differing in their initial offset; the second also
  // reverses the meta/text mixing order so the halves do not collapse to
  // one hash of the same byte sequence.
  uint64_t Hi = fnv1a(FnvOffset, Meta, sizeof(Meta));
  Hi = fnv1aBulk(Hi, Text.data(), Text.size());
  uint64_t Lo = fnv1aBulk(FnvOffset ^ 0x5bd1e9955bd1e995ull, Text.data(),
                          Text.size());
  Lo = fnv1a(Lo, Meta, sizeof(Meta));
  Lo = fnv1aWord(Lo, Text.size());
  return {Hi, Lo};
}

} // namespace

uint64_t AllocOptions::fingerprint() const {
  uint64_t H = FnvOffset;
  H = fnv1aWord(H, 0x616f0001); // schema tag: "ao" v1
  H = fnv1aWord(H, EarlySecondChance);
  H = fnv1aWord(H, MoveCoalesce);
  H = fnv1aWord(H, static_cast<uint64_t>(Consistency));
  H = fnv1aWord(H, RunPeephole);
  H = fnv1aWord(H, CalleeSaves);
  H = fnv1aWord(H, SpillCleanup);
  return H;
}

CacheKey lsra::cache::makeModuleKey(const std::string &IRText,
                                    uint64_t OptionsFp, AllocatorKind K,
                                    uint64_t TargetFp) {
  return makeKey(0x6d6f6401, IRText, OptionsFp, K, TargetFp); // "mod" v1
}

CacheKey lsra::cache::makeFunctionKey(const std::string &CanonicalText,
                                      uint64_t OptionsFp, AllocatorKind K,
                                      uint64_t TargetFp) {
  return makeKey(0x666e0001, CanonicalText, OptionsFp, K, TargetFp); // "fn" v1
}

size_t lsra::cache::estimateFunctionBytes(const Function &F) {
  size_t Bytes = sizeof(Function) + F.name().size();
  for (const Block &B : F.blocks()) {
    Bytes += sizeof(Block) + B.name().size();
    Bytes += B.instrs().size() * sizeof(Instr);
  }
  return Bytes;
}

struct CompileCache::Shard {
  std::mutex Mu;
  /// MRU at the front. The map points into the list.
  std::list<std::pair<CacheKey, std::shared_ptr<const CachedCompile>>> Lru;
  std::unordered_map<CacheKey, decltype(Lru)::iterator, CacheKeyHash> Map;
  size_t Bytes = 0;
};

CompileCache::CompileCache(CacheConfig C) : Config(C) {
  Config.Shards = std::max(1u, Config.Shards);
  ShardBudget = std::max<size_t>(1, Config.MaxBytes / Config.Shards);
  Shards.reserve(Config.Shards);
  for (unsigned I = 0; I < Config.Shards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

CompileCache::~CompileCache() = default;

CompileCache::Shard &CompileCache::shardFor(const CacheKey &K) {
  return *Shards[CacheKeyHash()(K) % Shards.size()];
}

void CompileCache::sampleBytes() const {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (!CR.enabled())
    return;
  size_t Total = 0, Entries = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    Total += S->Bytes;
    Entries += S->Map.size();
  }
  CR.gauge("cache.bytes").set(static_cast<int64_t>(Total));
  CR.gauge("cache.entries").set(static_cast<int64_t>(Entries));
}

std::shared_ptr<const CachedCompile>
CompileCache::lookup(const CacheKey &K) {
  Shard &S = shardFor(K);
  std::shared_ptr<const CachedCompile> E;
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(K);
    if (It != S.Map.end()) {
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      E = It->second->second;
    }
  }
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (E) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    if (CR.enabled())
      CR.counter("cache.hits").add(1);
  } else {
    Misses.fetch_add(1, std::memory_order_relaxed);
    if (CR.enabled())
      CR.counter("cache.misses").add(1);
  }
  return E;
}

void CompileCache::insert(const CacheKey &K,
                          std::shared_ptr<const CachedCompile> E) {
  if (!E)
    return;
  if (E->Bytes > ShardBudget)
    return; // would evict the whole shard for one entry
  Shard &S = shardFor(K);
  unsigned Evicted = 0;
  // Entries removed under the lock but destroyed outside it.
  std::vector<std::shared_ptr<const CachedCompile>> Dead;
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(K);
    if (It != S.Map.end()) {
      S.Bytes -= It->second->second->Bytes;
      Dead.push_back(std::move(It->second->second));
      S.Lru.erase(It->second);
      S.Map.erase(It);
    }
    S.Bytes += E->Bytes;
    S.Lru.emplace_front(K, std::move(E));
    S.Map[K] = S.Lru.begin();
    while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
      auto &Victim = S.Lru.back();
      S.Bytes -= Victim.second->Bytes;
      Dead.push_back(std::move(Victim.second));
      S.Map.erase(Victim.first);
      S.Lru.pop_back();
      ++Evicted;
    }
  }
  Insertions.fetch_add(1, std::memory_order_relaxed);
  if (Evicted)
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled()) {
    CR.counter("cache.insertions").add(1);
    if (Evicted)
      CR.counter("cache.evictions").add(Evicted);
  }
  sampleBytes();
}

CacheStats CompileCache::stats() const {
  CacheStats St;
  St.Hits = Hits.load(std::memory_order_relaxed);
  St.Misses = Misses.load(std::memory_order_relaxed);
  St.Insertions = Insertions.load(std::memory_order_relaxed);
  St.Evictions = Evictions.load(std::memory_order_relaxed);
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    St.Bytes += S->Bytes;
    St.Entries += S->Map.size();
  }
  return St;
}

void CompileCache::clear() {
  for (const auto &S : Shards) {
    std::vector<std::shared_ptr<const CachedCompile>> Dead;
    std::lock_guard<std::mutex> L(S->Mu);
    for (auto &P : S->Lru)
      Dead.push_back(std::move(P.second));
    S->Lru.clear();
    S->Map.clear();
    S->Bytes = 0;
  }
}
