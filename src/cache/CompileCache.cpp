//===- cache/CompileCache.cpp ---------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"

#include "cache/SharedCache.h"
#include "ir/Function.h"
#include "obs/Counters.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cstring>

using namespace lsra;
using namespace lsra::cache;

namespace {

constexpr uint64_t FnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t FnvPrime = 0x100000001b3ull;

uint64_t fnv1a(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= FnvPrime;
  }
  return H;
}

uint64_t fnv1aWord(uint64_t H, uint64_t V) {
  return fnv1a(H, &V, sizeof(V));
}

// FNV-1a folded over 64-bit words (memcpy for alignment), byte-wise tail.
// A warm module-level hit costs little more than hashing the request
// text, so the per-byte multiply chain of plain FNV-1a would dominate the
// hit latency on module-sized inputs. Values differ from byte-wise FNV,
// which is fine: keys never leave the in-memory cache.
uint64_t fnv1aBulk(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (; Len >= 8; P += 8, Len -= 8) {
    uint64_t W;
    std::memcpy(&W, P, 8);
    H ^= W;
    H *= FnvPrime;
  }
  return fnv1a(H, P, Len);
}

CacheKey makeKey(uint64_t LevelTag, const std::string &Text,
                 uint64_t OptionsFp, AllocatorKind K, uint64_t TargetFp) {
  uint64_t Meta[4] = {LevelTag, OptionsFp, static_cast<uint64_t>(K),
                      TargetFp};
  // Two FNV streams differing in their initial offset; the second also
  // reverses the meta/text mixing order so the halves do not collapse to
  // one hash of the same byte sequence.
  uint64_t Hi = fnv1a(FnvOffset, Meta, sizeof(Meta));
  Hi = fnv1aBulk(Hi, Text.data(), Text.size());
  uint64_t Lo = fnv1aBulk(FnvOffset ^ 0x5bd1e9955bd1e995ull, Text.data(),
                          Text.size());
  Lo = fnv1a(Lo, Meta, sizeof(Meta));
  Lo = fnv1aWord(Lo, Text.size());
  return {Hi, Lo};
}

} // namespace

uint64_t AllocOptions::fingerprint() const {
  uint64_t H = FnvOffset;
  H = fnv1aWord(H, 0x616f0001); // schema tag: "ao" v1
  H = fnv1aWord(H, EarlySecondChance);
  H = fnv1aWord(H, MoveCoalesce);
  H = fnv1aWord(H, static_cast<uint64_t>(Consistency));
  H = fnv1aWord(H, RunPeephole);
  H = fnv1aWord(H, CalleeSaves);
  H = fnv1aWord(H, SpillCleanup);
  return H;
}

CacheKey lsra::cache::makeModuleKey(const std::string &IRText,
                                    uint64_t OptionsFp, AllocatorKind K,
                                    uint64_t TargetFp) {
  return makeKey(0x6d6f6401, IRText, OptionsFp, K, TargetFp); // "mod" v1
}

CacheKey lsra::cache::makeFunctionKey(const std::string &CanonicalText,
                                      uint64_t OptionsFp, AllocatorKind K,
                                      uint64_t TargetFp) {
  return makeKey(0x666e0001, CanonicalText, OptionsFp, K, TargetFp); // "fn" v1
}

size_t lsra::cache::estimateFunctionBytes(const Function &F) {
  size_t Bytes = sizeof(Function) + F.name().size();
  for (const Block &B : F.blocks()) {
    Bytes += sizeof(Block) + B.name().size();
    Bytes += B.instrs().size() * sizeof(Instr);
  }
  return Bytes;
}

struct CompileCache::Shard {
  std::mutex Mu;
  /// MRU at the front. The map points into the list.
  std::list<std::pair<CacheKey, std::shared_ptr<const CachedCompile>>> Lru;
  std::unordered_map<CacheKey, decltype(Lru)::iterator, CacheKeyHash> Map;
  size_t Bytes = 0;
};

CompileCache::CompileCache(CacheConfig C) : Config(C) {
  Config.Shards = std::max(1u, Config.Shards);
  ShardBudget = std::max<size_t>(1, Config.MaxBytes / Config.Shards);
  Shards.reserve(Config.Shards);
  for (unsigned I = 0; I < Config.Shards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

CompileCache::~CompileCache() {
  // The L2 agent thread may still be polling; make sure it can no longer
  // call into this (dying) cache's L1 drop.
  if (L2)
    L2->setInvalidationSink(nullptr);
}

CompileCache::Shard &CompileCache::shardFor(const CacheKey &K) {
  return *Shards[CacheKeyHash()(K) % Shards.size()];
}

void CompileCache::publishGauges() const {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (!CR.enabled())
    return;
  // TotBytes/TotEntries are mutated inside the shard critical sections, so
  // after any mutation completes the atomics already reflect it. The mutex
  // serialises the read-and-set pair: without it two publishers could each
  // read a fresh total yet set the gauges in the opposite order, leaving a
  // stale value visible at quiescence (the bug the concurrent
  // GaugesMatchStatsUnderStorm test pins).
  std::lock_guard<std::mutex> L(GaugeMu);
  CR.gauge("cache.bytes")
      .set(TotBytes.load(std::memory_order_acquire));
  CR.gauge("cache.entries")
      .set(TotEntries.load(std::memory_order_acquire));
}

std::shared_ptr<const CachedCompile>
CompileCache::lookup(const CacheKey &K) {
  Shard &S = shardFor(K);
  std::shared_ptr<const CachedCompile> E;
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(K);
    if (It != S.Map.end()) {
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      E = It->second->second;
    }
  }
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (E) {
    Hits.fetch_add(1, std::memory_order_relaxed);
    if (CR.enabled())
      CR.counter("cache.hits").add(1);
  } else {
    Misses.fetch_add(1, std::memory_order_relaxed);
    if (CR.enabled())
      CR.counter("cache.misses").add(1);
  }
  return E;
}

void CompileCache::insert(const CacheKey &K,
                          std::shared_ptr<const CachedCompile> E) {
  insertL1(K, std::move(E), /*PublishL2=*/true);
}

void CompileCache::insertL1(const CacheKey &K,
                            std::shared_ptr<const CachedCompile> E,
                            bool PublishL2) {
  if (!E)
    return;
  // L2 publication is independent of L1 admission: an entry too large for
  // a shard can still warm other processes (the arena budget is its own).
  if (PublishL2 && L2 && !E->AllocatedText.empty() && !E->Fn) {
    L2Entry P;
    P.Payload = E->AllocatedText;
    P.Stats = E->Stats;
    P.ClassTag = E->ClassTag;
    L2->publishAsync(K, std::move(P));
  }
  if (E->Bytes > ShardBudget)
    return; // would evict the whole shard for one entry
  Shard &S = shardFor(K);
  unsigned Evicted = 0;
  // Entries removed under the lock but destroyed outside it.
  std::vector<std::shared_ptr<const CachedCompile>> Dead;
  {
    std::lock_guard<std::mutex> L(S.Mu);
    auto It = S.Map.find(K);
    if (It != S.Map.end()) {
      // Same-key replacement: credit the old entry back in full before
      // charging the new one, so Bytes stays the sum of live entries.
      S.Bytes -= It->second->second->Bytes;
      TotBytes.fetch_sub(
          static_cast<int64_t>(It->second->second->Bytes),
          std::memory_order_acq_rel);
      TotEntries.fetch_sub(1, std::memory_order_acq_rel);
      Dead.push_back(std::move(It->second->second));
      S.Lru.erase(It->second);
      S.Map.erase(It);
    }
    S.Bytes += E->Bytes;
    TotBytes.fetch_add(static_cast<int64_t>(E->Bytes),
                       std::memory_order_acq_rel);
    TotEntries.fetch_add(1, std::memory_order_acq_rel);
    S.Lru.emplace_front(K, std::move(E));
    S.Map[K] = S.Lru.begin();
    while (S.Bytes > ShardBudget && S.Lru.size() > 1) {
      auto &Victim = S.Lru.back();
      S.Bytes -= Victim.second->Bytes;
      TotBytes.fetch_sub(static_cast<int64_t>(Victim.second->Bytes),
                         std::memory_order_acq_rel);
      TotEntries.fetch_sub(1, std::memory_order_acq_rel);
      Dead.push_back(std::move(Victim.second));
      S.Map.erase(Victim.first);
      S.Lru.pop_back();
      ++Evicted;
    }
  }
  Insertions.fetch_add(1, std::memory_order_relaxed);
  if (Evicted)
    Evictions.fetch_add(Evicted, std::memory_order_relaxed);
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled()) {
    CR.counter("cache.insertions").add(1);
    if (Evicted)
      CR.counter("cache.evictions").add(Evicted);
  }
  publishGauges();
}

std::shared_ptr<const CachedCompile>
CompileCache::lookupL2Fill(const CacheKey &K) {
  if (!L2)
    return nullptr;
  L2Entry Found;
  if (!L2->lookup(K, Found))
    return nullptr;
  auto E = std::make_shared<CachedCompile>();
  E->AllocatedText = std::move(Found.Payload);
  E->Stats = Found.Stats;
  E->ClassTag = Found.ClassTag;
  E->Bytes = E->AllocatedText.size() + sizeof(CachedCompile);
  // Promote into L1 without echoing back to L2 — the entry came from
  // there, and a re-publish would churn the arena log for nothing.
  insertL1(K, E, /*PublishL2=*/false);
  return E;
}

void CompileCache::attachL2(SharedCache *NewL2) {
  if (L2 && L2 != NewL2)
    L2->setInvalidationSink(nullptr);
  L2 = NewL2;
  if (L2)
    L2->setInvalidationSink(
        [this](uint64_t ClassTag) { dropClassLocal(ClassTag); });
}

void CompileCache::invalidateClass(uint64_t ClassTag) {
  if (L2) {
    // The shared directory is cleared and the record broadcast; our own
    // L1 drop arrives through the sink attachL2 registered.
    L2->invalidateClass(ClassTag);
    return;
  }
  dropClassLocal(ClassTag);
}

void CompileCache::dropClassLocal(uint64_t ClassTag) {
  for (const auto &S : Shards) {
    std::vector<std::shared_ptr<const CachedCompile>> Dead;
    std::lock_guard<std::mutex> L(S->Mu);
    for (auto It = S->Lru.begin(); It != S->Lru.end();) {
      if (ClassTag != 0 && It->second->ClassTag != ClassTag) {
        ++It;
        continue;
      }
      S->Bytes -= It->second->Bytes;
      TotBytes.fetch_sub(static_cast<int64_t>(It->second->Bytes),
                         std::memory_order_acq_rel);
      TotEntries.fetch_sub(1, std::memory_order_acq_rel);
      Dead.push_back(std::move(It->second));
      S->Map.erase(It->first);
      It = S->Lru.erase(It);
    }
  }
  publishGauges();
}

CacheStats CompileCache::stats() const {
  CacheStats St;
  St.Hits = Hits.load(std::memory_order_relaxed);
  St.Misses = Misses.load(std::memory_order_relaxed);
  St.Insertions = Insertions.load(std::memory_order_relaxed);
  St.Evictions = Evictions.load(std::memory_order_relaxed);
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> L(S->Mu);
    St.Bytes += S->Bytes;
    St.Entries += S->Map.size();
  }
  return St;
}

void CompileCache::clear() {
  for (const auto &S : Shards) {
    std::vector<std::shared_ptr<const CachedCompile>> Dead;
    std::lock_guard<std::mutex> L(S->Mu);
    for (auto &P : S->Lru)
      Dead.push_back(std::move(P.second));
    TotBytes.fetch_sub(static_cast<int64_t>(S->Bytes),
                       std::memory_order_acq_rel);
    TotEntries.fetch_sub(static_cast<int64_t>(S->Map.size()),
                         std::memory_order_acq_rel);
    S->Lru.clear();
    S->Map.clear();
    S->Bytes = 0;
  }
  // clear() previously left the occupancy gauges at their pre-clear
  // values; refresh them like every other mutation.
  publishGauges();
}
