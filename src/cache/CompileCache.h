//===- cache/CompileCache.h - Content-addressed compile cache --*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A thread-safe, sharded, memory-bounded LRU cache of register-allocation
/// results, keyed by content: (canonical function/module text hash, options
/// fingerprint, allocator kind, target fingerprint). Register allocation is
/// deterministic for a fixed key — the §2 scan visits temporaries in a
/// fixed order, and nothing in ExecOptions may influence the output — so a
/// hit is byte-identical to a fresh compile, and serving streams dominated
/// by repeated modules/functions pay O(hash) instead of O(allocate).
///
/// Two key levels share one cache:
///  - module level (makeModuleKey): the raw request text of a whole module,
///    hit before even parsing (the server fast path);
///  - function level (makeFunctionKey): the canonical printed form of one
///    lowered function, so repeated functions hit across distinct modules.
///
/// Entries are immutable once inserted (shared_ptr<const CachedCompile>);
/// readers clone out of them without holding any shard lock.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_CACHE_COMPILECACHE_H
#define LSRA_CACHE_COMPILECACHE_H

#include "regalloc/Allocator.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lsra {
namespace cache {

class SharedCache;

/// 128-bit content-addressed key. The two halves are independent FNV-1a
/// streams over the same input, so accidental collisions need both 64-bit
/// hashes to collide at once.
struct CacheKey {
  uint64_t Hi = 0;
  uint64_t Lo = 0;

  bool operator==(const CacheKey &R) const {
    return Hi == R.Hi && Lo == R.Lo;
  }
};

struct CacheKeyHash {
  size_t operator()(const CacheKey &K) const {
    return static_cast<size_t>(K.Hi ^ (K.Lo * 0x9e3779b97f4a7c15ull));
  }
};

/// One cached compilation result. Module-level entries carry the allocated
/// module text; function-level entries carry an allocated function body
/// plus the name of every function it references (func-ref operands are
/// module-relative ids, so a cross-module hit must remap them by name).
struct CachedCompile {
  std::string AllocatedText;            ///< module level; empty otherwise
  std::unique_ptr<const Function> Fn;   ///< function level; null otherwise
  /// (func-ref id in Fn, callee name) pairs for cross-module remapping.
  std::vector<std::pair<unsigned, std::string>> Callees;
  AllocStats Stats;                     ///< the original (cold) run's stats
  size_t Bytes = 0;                     ///< charged against the budget
  /// Invalidation class (target fingerprint by convention): an
  /// invalidateClass(Tag) drops every entry carrying Tag, in every tier,
  /// in every attached process. 0 = unclassified (only a wildcard drops it).
  uint64_t ClassTag = 0;
};

struct CacheConfig {
  size_t MaxBytes = 64u << 20; ///< total budget across all shards
  unsigned Shards = 8;         ///< lock shards (power of two recommended)
};

/// Point-in-time counters. Hits/Misses/Insertions/Evictions are lifetime
/// totals; Bytes/Entries are current occupancy.
struct CacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Insertions = 0;
  uint64_t Evictions = 0;
  size_t Bytes = 0;
  size_t Entries = 0;
};

class CompileCache {
public:
  explicit CompileCache(CacheConfig C = {});
  ~CompileCache();

  CompileCache(const CompileCache &) = delete;
  CompileCache &operator=(const CompileCache &) = delete;

  /// Find \p K, refreshing its LRU position. Counts a hit or a miss, and
  /// mirrors the count into the global obs registry ("cache.hits" /
  /// "cache.misses") when that is enabled.
  std::shared_ptr<const CachedCompile> lookup(const CacheKey &K);

  /// Insert \p E under \p K, evicting least-recently-used entries of the
  /// same shard until the shard budget holds. An entry larger than the
  /// whole shard budget is not admitted (it would only thrash). Inserting
  /// over an existing key replaces it. Module-level entries (AllocatedText
  /// set, no Fn) are additionally queued for async publication to the
  /// attached L2, so other processes warm up from this compile.
  void insert(const CacheKey &K, std::shared_ptr<const CachedCompile> E);

  /// L2 half of the tiered lookup: probe the attached shared cache and, on
  /// a hit, promote the entry into L1 (without re-publishing it) and
  /// return it. Null when no L2 is attached or the key is absent there.
  /// Callers probe L1 first (lookup) and fall back to this — split so the
  /// request trace can attribute the "l2-probe" phase separately.
  std::shared_ptr<const CachedCompile> lookupL2Fill(const CacheKey &K);

  /// Attach (or detach, with nullptr) the process's shared L2. Non-owning:
  /// the caller keeps \p L2 alive until this cache is destroyed or
  /// detached. Registers this cache's L1 drop as the L2 invalidation sink,
  /// so rotations from other processes evict matching L1 entries here.
  void attachL2(SharedCache *L2);
  SharedCache *l2() const { return L2; }

  /// Drop every entry of \p ClassTag (0 = all) from L1 and, when an L2 is
  /// attached, from the shared segment plus every other process's L1 via
  /// the invalidation log.
  void invalidateClass(uint64_t ClassTag);

  CacheStats stats() const;
  void clear();

  size_t maxBytes() const { return Config.MaxBytes; }

private:
  struct Shard;

  Shard &shardFor(const CacheKey &K);
  void insertL1(const CacheKey &K, std::shared_ptr<const CachedCompile> E,
                bool PublishL2);
  void dropClassLocal(uint64_t ClassTag);
  void publishGauges() const;

  CacheConfig Config;
  size_t ShardBudget;
  std::vector<std::unique_ptr<Shard>> Shards;
  SharedCache *L2 = nullptr;
  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
  std::atomic<uint64_t> Insertions{0};
  std::atomic<uint64_t> Evictions{0};
  /// Exact occupancy mirrors, maintained inside the shard critical
  /// sections, so the obs gauges can be published from a consistent
  /// source instead of a racy cross-shard sweep (see publishGauges).
  std::atomic<int64_t> TotBytes{0};
  std::atomic<int64_t> TotEntries{0};
  mutable std::mutex GaugeMu;
};

/// Conservative size estimate of an allocated function for cache
/// accounting (blocks, instructions, operands, name table).
size_t estimateFunctionBytes(const Function &F);

/// Key for a whole-module compile of the raw request text \p IRText.
CacheKey makeModuleKey(const std::string &IRText, uint64_t OptionsFp,
                       AllocatorKind K, uint64_t TargetFp);

/// Key for one lowered function's canonical printed form \p CanonicalText.
/// Uses a distinct level tag so a module text can never alias a function
/// text.
CacheKey makeFunctionKey(const std::string &CanonicalText, uint64_t OptionsFp,
                         AllocatorKind K, uint64_t TargetFp);

} // namespace cache
} // namespace lsra

#endif // LSRA_CACHE_COMPILECACHE_H
