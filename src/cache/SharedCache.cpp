//===- cache/SharedCache.cpp - Shared-memory L2 compile cache ------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Implementation notes (the header holds the protocol overview):
//
//  - Every word that lives in the segment is either a std::atomic<uint64_t>
//    struct member (header, rings, directory slots) or is accessed through
//    std::atomic_ref<uint64_t> (arena entry words). Plain loads/stores into
//    MAP_SHARED memory would be a data race the moment two threads of one
//    process touch the same mapping, and TSan rightly flags it.
//
//  - Arena entries are self-validating so the directory never needs to be
//    trusted: [magic, key, sizes, checksum, stats, payload, commit]. The
//    commit word is stored with release ordering after everything else and
//    loaded with acquire first, so an entry that passes commit+checksum was
//    fully written by some writer and not yet overwritten by a wrap.
//
//  - The segment is initialised under an flock so a second process that
//    races open() either waits for a fully-built header or attaches to one;
//    the header magic is stored last (release) as a belt-and-braces marker
//    for readers that attach without the lock (e.g. a debugger).
//
//===----------------------------------------------------------------------===//

#include "cache/SharedCache.h"

#include "obs/Counters.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <type_traits>

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace lsra {
namespace cache {

namespace {

constexpr uint64_t SegMagic = 0x4c53524132ull;   // "LSRA2"
constexpr uint64_t SegVersion = 1;
constexpr uint64_t EntryMagic = 0x4c32454e545259ull; // "L2ENTRY"
constexpr uint64_t EntryCommit = 0x434f4d4d495421ull; // "COMMIT!"

constexpr unsigned SlotsPerBucketN = 4;
constexpr unsigned NumRings = 32;
constexpr unsigned RingCap = 128; // records per ring; power of two

// A writer that dies holding a slot's seqlock odd leaves it unusable; any
// later writer that finds the slot odd and untouched for this many ticks
// forces it back to even and recycles it.
constexpr uint64_t StaleSlotTicks = 1u << 16;

inline uint64_t fnv1aBytes(const void *Data, size_t N,
                           uint64_t H = 0xcbf29ce484222325ull) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I < N; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

inline size_t align8(size_t N) { return (N + 7) & ~size_t(7); }

inline size_t alignPage(size_t N) { return (N + 4095) & ~size_t(4095); }

// Word-granular copies in and out of the arena. atomic_ref keeps TSan (and
// the compiler) honest about the sharing; relaxed is enough because the
// commit word carries the release/acquire edge.
void copyWordsToShared(unsigned char *Dst, const void *Src, size_t Bytes) {
  size_t Words = align8(Bytes) / 8;
  uint64_t Tmp[64];
  const unsigned char *S = static_cast<const unsigned char *>(Src);
  size_t Done = 0;
  while (Done < Words) {
    size_t Chunk = std::min<size_t>(Words - Done, 64);
    std::memset(Tmp, 0, Chunk * 8);
    size_t Take = std::min(Bytes - Done * 8, Chunk * 8);
    std::memcpy(Tmp, S + Done * 8, Take);
    for (size_t I = 0; I < Chunk; ++I) {
      std::atomic_ref<uint64_t> W(
          *reinterpret_cast<uint64_t *>(Dst + (Done + I) * 8));
      W.store(Tmp[I], std::memory_order_relaxed);
    }
    Done += Chunk;
  }
}

void copyWordsFromShared(void *Dst, const unsigned char *Src, size_t Bytes) {
  size_t Words = align8(Bytes) / 8;
  uint64_t Tmp[64];
  unsigned char *D = static_cast<unsigned char *>(Dst);
  size_t Done = 0;
  while (Done < Words) {
    size_t Chunk = std::min<size_t>(Words - Done, 64);
    for (size_t I = 0; I < Chunk; ++I) {
      // atomic_ref<const T> is C++26; cast away const for the load only.
      std::atomic_ref<uint64_t> W(*const_cast<uint64_t *>(
          reinterpret_cast<const uint64_t *>(Src + (Done + I) * 8)));
      Tmp[I] = W.load(std::memory_order_relaxed);
    }
    size_t Take = std::min(Bytes - Done * 8, Chunk * 8);
    std::memcpy(D + Done * 8, Tmp, Take);
    Done += Chunk;
  }
}

std::atomic<uint64_t> InstanceCounter{1};

void bumpObs(const char *Name, uint64_t N = 1) {
  auto &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.counter(Name).add(N);
}

} // namespace

//===----------------------------------------------------------------------===//
// On-segment structures
//===----------------------------------------------------------------------===//

/// One per-process invalidation ring. Owner packs (instance<<32 | pid); 0
/// means free. Only the owner appends; everyone else reads Head with
/// acquire and consumes records behind it. A record at index I is valid
/// until Head passes I + RingCap (the writer reuses the cell), which
/// consumers re-check after every read.
struct SharedCache::SegRing {
  std::atomic<uint64_t> Owner;
  std::atomic<uint64_t> Head;
  std::atomic<uint64_t> RecEpoch[RingCap];
  std::atomic<uint64_t> RecClass[RingCap];
};

struct SharedCache::SegHeader {
  std::atomic<uint64_t> Magic;
  std::atomic<uint64_t> Version;
  std::atomic<uint64_t> SegBytes;
  std::atomic<uint64_t> BucketCount;
  std::atomic<uint64_t> SlotsPerBucket;
  std::atomic<uint64_t> DirOffset;
  std::atomic<uint64_t> ArenaOffset;
  std::atomic<uint64_t> ArenaBytes;
  std::atomic<uint64_t> Cursor;    ///< next free arena offset (log head)
  std::atomic<uint64_t> Wraps;     ///< times the cursor wrapped to 0
  std::atomic<uint64_t> HighWater; ///< max cursor before first wrap
  std::atomic<uint64_t> Epoch;     ///< global invalidation epoch
  std::atomic<uint64_t> Tick;      ///< LRU/staleness clock
  SegRing Rings[NumRings];
};

/// One directory slot: a seqlock (odd = mid-write) naming an arena region.
/// 64 bytes so a bucket's four slots share two cache lines.
struct SharedCache::SegSlot {
  std::atomic<uint64_t> Seq;
  std::atomic<uint64_t> KeyHi;
  std::atomic<uint64_t> KeyLo;
  std::atomic<uint64_t> Offset;
  std::atomic<uint64_t> Bytes;   ///< whole-entry bytes; 0 = empty slot
  std::atomic<uint64_t> ClassTag;
  std::atomic<uint64_t> LastUse;
  std::atomic<uint64_t> Pad;
};

static_assert(std::is_trivially_copyable_v<AllocStats>,
              "AllocStats is memcpy'd into the shared arena");

// Arena entry word layout (offsets in 8-byte words):
//   0 magic  1 keyHi  2 keyLo  3 payloadBytes  4 classTag  5 checksum
//   6 statsBytes  [stats blob][payload]  last: commit
namespace {
constexpr size_t EntryHeaderWords = 7;

size_t entryBytesFor(size_t PayloadBytes) {
  return EntryHeaderWords * 8 + align8(sizeof(AllocStats)) +
         align8(PayloadBytes) + 8;
}
} // namespace

//===----------------------------------------------------------------------===//
// Open / map / teardown
//===----------------------------------------------------------------------===//

SharedCache::SegSlot *SharedCache::slotArray() const {
  return reinterpret_cast<SegSlot *>(
      static_cast<unsigned char *>(Map) +
      Hdr->DirOffset.load(std::memory_order_relaxed));
}

unsigned char *SharedCache::arena() const {
  return static_cast<unsigned char *>(Map) +
         Hdr->ArenaOffset.load(std::memory_order_relaxed);
}

std::unique_ptr<SharedCache> SharedCache::open(const SharedCacheConfig &C,
                                               std::string &Err) {
  if (C.Path.empty()) {
    Err = "shared cache: empty path";
    return nullptr;
  }
  std::unique_ptr<SharedCache> SC(new SharedCache());
  if (!SC->mapSegment(C, Err))
    return nullptr;
  if (C.StartAgent)
    SC->startAgent(C.AgentPollMs ? C.AgentPollMs : 20);
  return SC;
}

bool SharedCache::mapSegment(const SharedCacheConfig &C, std::string &Err) {
  static_assert(sizeof(SegSlot) == 64, "slot must stay 64B");
  Fd = ::open(C.Path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0) {
    Err = "shared cache: open(" + C.Path + "): " + std::strerror(errno);
    return false;
  }
  FilePath = C.Path;
  // Initialisation lock: the creator sizes and builds the segment before
  // anyone else maps it; attachers block here until it is complete.
  if (::flock(Fd, LOCK_EX) != 0) {
    Err = "shared cache: flock: " + std::string(std::strerror(errno));
    return false;
  }
  struct stat St {};
  if (::fstat(Fd, &St) != 0) {
    Err = "shared cache: fstat: " + std::string(std::strerror(errno));
    ::flock(Fd, LOCK_UN);
    return false;
  }

  bool Creating = St.st_size == 0;
  size_t Want = std::max<size_t>(C.MaxBytes, 1u << 20);
  size_t MapBytes = Creating ? Want : static_cast<size_t>(St.st_size);
  if (Creating && ::ftruncate(Fd, static_cast<off_t>(MapBytes)) != 0) {
    Err = "shared cache: ftruncate: " + std::string(std::strerror(errno));
    ::flock(Fd, LOCK_UN);
    return false;
  }
  Map = ::mmap(nullptr, MapBytes, PROT_READ | PROT_WRITE, MAP_SHARED, Fd, 0);
  if (Map == MAP_FAILED) {
    Map = nullptr;
    Err = "shared cache: mmap: " + std::string(std::strerror(errno));
    ::flock(Fd, LOCK_UN);
    return false;
  }
  SegBytes = MapBytes;
  Hdr = static_cast<SegHeader *>(Map);

  if (Creating) {
    // ftruncate gave zero pages, so every atomic already reads 0; fill in
    // the geometry and publish the magic last.
    size_t HeaderBytes = alignPage(sizeof(SegHeader));
    size_t Buckets = MapBytes / (64u << 10);
    size_t B = 64;
    while (B < Buckets && B < (1u << 16))
      B <<= 1;
    size_t DirBytes = B * SlotsPerBucketN * sizeof(SegSlot);
    size_t ArenaOff = alignPage(HeaderBytes + DirBytes);
    if (ArenaOff + (64u << 10) > MapBytes) {
      Err = "shared cache: segment too small for directory + arena";
      ::flock(Fd, LOCK_UN);
      return false;
    }
    Hdr->Version.store(SegVersion, std::memory_order_relaxed);
    Hdr->SegBytes.store(MapBytes, std::memory_order_relaxed);
    Hdr->BucketCount.store(B, std::memory_order_relaxed);
    Hdr->SlotsPerBucket.store(SlotsPerBucketN, std::memory_order_relaxed);
    Hdr->DirOffset.store(HeaderBytes, std::memory_order_relaxed);
    Hdr->ArenaOffset.store(ArenaOff, std::memory_order_relaxed);
    Hdr->ArenaBytes.store(MapBytes - ArenaOff, std::memory_order_relaxed);
    Hdr->Magic.store(SegMagic, std::memory_order_release);
  } else {
    if (Hdr->Magic.load(std::memory_order_acquire) != SegMagic ||
        Hdr->Version.load(std::memory_order_relaxed) != SegVersion ||
        Hdr->SegBytes.load(std::memory_order_relaxed) != MapBytes ||
        Hdr->SlotsPerBucket.load(std::memory_order_relaxed) !=
            SlotsPerBucketN) {
      Err = "shared cache: " + C.Path + " has an incompatible layout";
      ::flock(Fd, LOCK_UN);
      return false;
    }
  }

  // Claim an invalidation ring: (instance<<32 | pid) so liveness checks can
  // recover rings from SIGKILLed processes while two instances inside one
  // live process keep distinct claims.
  uint64_t Pid = static_cast<uint64_t>(::getpid()) & 0xffffffffull;
  RingToken =
      (InstanceCounter.fetch_add(1, std::memory_order_relaxed) << 32) | Pid;
  for (unsigned R = 0; R < NumRings && RingIndex < 0; ++R) {
    uint64_t Cur = Hdr->Rings[R].Owner.load(std::memory_order_acquire);
    if (Cur != 0) {
      pid_t OwnerPid = static_cast<pid_t>(Cur & 0xffffffffull);
      bool Dead = ::kill(OwnerPid, 0) != 0 && errno == ESRCH;
      if (!Dead)
        continue;
    }
    if (Hdr->Rings[R].Owner.compare_exchange_strong(
            Cur, RingToken, std::memory_order_acq_rel))
      RingIndex = static_cast<int>(R);
  }
  // RingIndex can stay -1 when 32 processes are already attached; this
  // process then invalidates L2 directly but cannot broadcast L1 drops.

  // Start consuming every ring at its current head — records older than
  // our attach describe entries our (empty) L1 never held.
  RingConsumed.assign(NumRings, 0);
  RingOwnerSeen.assign(NumRings, 0);
  for (unsigned R = 0; R < NumRings; ++R) {
    RingConsumed[R] = Hdr->Rings[R].Head.load(std::memory_order_acquire);
    RingOwnerSeen[R] = Hdr->Rings[R].Owner.load(std::memory_order_acquire);
  }
  EpochSeen.store(Hdr->Epoch.load(std::memory_order_acquire),
                  std::memory_order_relaxed);

  ::flock(Fd, LOCK_UN);

  auto &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.gauge("cache.l2.capacity_bytes")
        .set(static_cast<int64_t>(
            Hdr->ArenaBytes.load(std::memory_order_relaxed)));
  return true;
}

SharedCache::~SharedCache() {
  if (Agent.joinable()) {
    {
      std::lock_guard<std::mutex> L(AgentMu);
      AgentStop = true;
    }
    AgentCv.notify_all();
    Agent.join();
  }
  // Land anything still queued so drain-then-destroy and plain destroy
  // behave the same.
  {
    std::lock_guard<std::mutex> L(PubMu);
    while (!PubQueue.empty()) {
      auto KV = std::move(PubQueue.front());
      PubQueue.pop_front();
      publish(KV.first, KV.second);
    }
  }
  if (Hdr && RingIndex >= 0) {
    uint64_t Tok = RingToken;
    Hdr->Rings[RingIndex].Owner.compare_exchange_strong(
        Tok, 0, std::memory_order_acq_rel);
  }
  if (Map)
    ::munmap(Map, SegBytes);
  if (Fd >= 0)
    ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Lookup
//===----------------------------------------------------------------------===//

bool SharedCache::lookup(const CacheKey &K, L2Entry &Out) {
  const uint64_t Buckets = Hdr->BucketCount.load(std::memory_order_relaxed);
  const uint64_t ArenaCap = Hdr->ArenaBytes.load(std::memory_order_relaxed);
  const uint64_t Bucket = CacheKeyHash()(K) & (Buckets - 1);
  SegSlot *Slots = slotArray() + Bucket * SlotsPerBucketN;

  for (unsigned I = 0; I < SlotsPerBucketN; ++I) {
    SegSlot &S = Slots[I];
    for (int Attempt = 0; Attempt < 3; ++Attempt) {
      uint64_t S1 = S.Seq.load(std::memory_order_acquire);
      if (S1 & 1)
        break; // writer mid-publish: treat as absent
      uint64_t Hi = S.KeyHi.load(std::memory_order_acquire);
      uint64_t Lo = S.KeyLo.load(std::memory_order_acquire);
      uint64_t Off = S.Offset.load(std::memory_order_acquire);
      uint64_t Len = S.Bytes.load(std::memory_order_acquire);
      uint64_t S2 = S.Seq.load(std::memory_order_acquire);
      if (S1 != S2)
        continue; // republished underneath us: re-read
      if (Len == 0 || Hi != K.Hi || Lo != K.Lo)
        break;
      if (Off + Len > ArenaCap || Len < entryBytesFor(0))
        break; // directory corruption: fall through to self-heal
      if (readEntryAt(Off, Len, K, Out)) {
        // Re-check the slot: a wrap plus a republish could have recycled
        // both the slot and the region while we copied. A checksum match
        // with a changed slot is still almost certainly our value, but
        // the cheap re-read keeps the proof simple.
        if (S.Seq.load(std::memory_order_acquire) == S1) {
          S.LastUse.store(Hdr->Tick.fetch_add(1, std::memory_order_relaxed),
                          std::memory_order_relaxed);
          NHits.fetch_add(1, std::memory_order_relaxed);
          bumpObs("cache.l2.hits");
          return true;
        }
        continue;
      }
      // The slot named a region that no longer validates (torn write,
      // crashed writer, wrap overwrite): self-heal by emptying it so later
      // probes do not repeat the arena walk.
      uint64_t Expect = S1;
      if (S.Seq.compare_exchange_strong(Expect, S1 + 1,
                                        std::memory_order_acq_rel)) {
        S.KeyHi.store(0, std::memory_order_relaxed);
        S.KeyLo.store(0, std::memory_order_relaxed);
        S.Bytes.store(0, std::memory_order_relaxed);
        S.Offset.store(0, std::memory_order_relaxed);
        S.ClassTag.store(0, std::memory_order_relaxed);
        S.Seq.store(S1 + 2, std::memory_order_release);
      }
      break;
    }
  }
  NMisses.fetch_add(1, std::memory_order_relaxed);
  bumpObs("cache.l2.misses");
  return false;
}

bool SharedCache::readEntryAt(uint64_t Off, uint64_t Len, const CacheKey &K,
                              L2Entry &Out) {
  unsigned char *E = arena() + Off;
  // Commit word first, with acquire: it was released after the body, so a
  // valid commit means the body words below are the writer's.
  std::atomic_ref<uint64_t> Commit(
      *reinterpret_cast<uint64_t *>(E + Len - 8));
  if (Commit.load(std::memory_order_acquire) != EntryCommit)
    return false;

  uint64_t Head[EntryHeaderWords];
  copyWordsFromShared(Head, E, sizeof(Head));
  if (Head[0] != EntryMagic || Head[1] != K.Hi || Head[2] != K.Lo)
    return false;
  uint64_t PayloadBytes = Head[3];
  uint64_t StatsBytes = Head[6];
  if (StatsBytes != sizeof(AllocStats) ||
      entryBytesFor(PayloadBytes) != Len)
    return false;

  AllocStats Stats{};
  copyWordsFromShared(&Stats, E + EntryHeaderWords * 8, sizeof(AllocStats));
  std::string Payload;
  Payload.resize(PayloadBytes);
  copyWordsFromShared(Payload.data(),
                      E + EntryHeaderWords * 8 + align8(sizeof(AllocStats)),
                      PayloadBytes);
  if (fnv1aBytes(Payload.data(), Payload.size()) != Head[5])
    return false; // torn or wrapped-over mid-copy

  Out.Payload = std::move(Payload);
  Out.Stats = Stats;
  Out.ClassTag = Head[4];
  return true;
}

//===----------------------------------------------------------------------===//
// Publish
//===----------------------------------------------------------------------===//

uint64_t SharedCache::claimArena(size_t Need) {
  const uint64_t Cap = Hdr->ArenaBytes.load(std::memory_order_relaxed);
  for (;;) {
    uint64_t Cur = Hdr->Cursor.load(std::memory_order_relaxed);
    uint64_t Off, Next;
    bool Wrap = Cur + Need > Cap;
    if (Wrap) {
      Off = 0;
      Next = Need;
    } else {
      Off = Cur;
      Next = Cur + Need;
    }
    if (Hdr->Cursor.compare_exchange_weak(Cur, Next,
                                          std::memory_order_acq_rel)) {
      if (Wrap) {
        Hdr->Wraps.fetch_add(1, std::memory_order_relaxed);
        // The high-water mark freezes at the fullest pre-wrap cursor so
        // occupancy reporting stays meaningful after wrapping.
        uint64_t HW = Hdr->HighWater.load(std::memory_order_relaxed);
        while (HW < Cur &&
               !Hdr->HighWater.compare_exchange_weak(
                   HW, Cur, std::memory_order_relaxed)) {
        }
      }
      return Off;
    }
  }
}

bool SharedCache::writeEntry(const CacheKey &K, const L2Entry &E,
                             uint64_t &OffOut, uint64_t &LenOut,
                             size_t TornPayloadBytes, bool Torn) {
  size_t Need = entryBytesFor(E.Payload.size());
  uint64_t Cap = Hdr->ArenaBytes.load(std::memory_order_relaxed);
  if (Need > Cap / 2) {
    NPublishRejected.fetch_add(1, std::memory_order_relaxed);
    bumpObs("cache.l2.publish_rejected");
    return false;
  }
  uint64_t Off = claimArena(Need);
  unsigned char *Dst = arena() + Off;

  uint64_t Head[EntryHeaderWords] = {
      EntryMagic,
      K.Hi,
      K.Lo,
      static_cast<uint64_t>(E.Payload.size()),
      E.ClassTag,
      fnv1aBytes(E.Payload.data(), E.Payload.size()),
      sizeof(AllocStats)};
  copyWordsToShared(Dst, Head, sizeof(Head));
  copyWordsToShared(Dst + EntryHeaderWords * 8, &E.Stats,
                    sizeof(AllocStats));
  size_t PayloadOff = EntryHeaderWords * 8 + align8(sizeof(AllocStats));
  size_t PayloadBytes = Torn ? std::min(TornPayloadBytes, E.Payload.size())
                             : E.Payload.size();
  copyWordsToShared(Dst + PayloadOff, E.Payload.data(), PayloadBytes);

  std::atomic_ref<uint64_t> Commit(
      *reinterpret_cast<uint64_t *>(Dst + Need - 8));
  if (Torn)
    Commit.store(0, std::memory_order_release); // crash before commit
  else
    Commit.store(EntryCommit, std::memory_order_release);

  OffOut = Off;
  LenOut = Need;
  return true;
}

void SharedCache::publishSlot(const CacheKey &K, uint64_t Off, uint64_t Len,
                              uint64_t ClassTag) {
  const uint64_t Buckets = Hdr->BucketCount.load(std::memory_order_relaxed);
  const uint64_t Bucket = CacheKeyHash()(K) & (Buckets - 1);
  SegSlot *Slots = slotArray() + Bucket * SlotsPerBucketN;
  const uint64_t Now = Hdr->Tick.fetch_add(1, std::memory_order_relaxed);

  for (int Round = 0; Round < 4; ++Round) {
    // Victim preference: same key (replace) > empty > oldest LastUse.
    int Victim = -1;
    uint64_t OldestUse = ~0ull;
    for (unsigned I = 0; I < SlotsPerBucketN; ++I) {
      uint64_t Seq = Slots[I].Seq.load(std::memory_order_acquire);
      if (Seq & 1) {
        // A writer died here if the slot has been odd for a long time;
        // force it even so the bucket is not permanently one slot short.
        uint64_t Use = Slots[I].LastUse.load(std::memory_order_relaxed);
        if (Now > Use && Now - Use > StaleSlotTicks) {
          uint64_t Expect = Seq;
          if (Slots[I].Seq.compare_exchange_strong(
                  Expect, Seq + 1, std::memory_order_acq_rel)) {
            Slots[I].Bytes.store(0, std::memory_order_relaxed);
            Slots[I].KeyHi.store(0, std::memory_order_relaxed);
            Slots[I].KeyLo.store(0, std::memory_order_relaxed);
          }
        }
        continue;
      }
      uint64_t Hi = Slots[I].KeyHi.load(std::memory_order_relaxed);
      uint64_t Lo = Slots[I].KeyLo.load(std::memory_order_relaxed);
      uint64_t Bytes = Slots[I].Bytes.load(std::memory_order_relaxed);
      if (Bytes != 0 && Hi == K.Hi && Lo == K.Lo) {
        Victim = static_cast<int>(I);
        break;
      }
      if (Bytes == 0 && Victim < 0) {
        Victim = static_cast<int>(I);
        OldestUse = 0;
        continue;
      }
      uint64_t Use = Slots[I].LastUse.load(std::memory_order_relaxed);
      if (Use < OldestUse) {
        OldestUse = Use;
        Victim = static_cast<int>(I);
      }
    }
    if (Victim < 0)
      return; // whole bucket mid-write: drop the publish, entry stays dark

    SegSlot &S = Slots[Victim];
    uint64_t Seq = S.Seq.load(std::memory_order_acquire);
    if (Seq & 1)
      continue;
    uint64_t Expect = Seq;
    if (!S.Seq.compare_exchange_strong(Expect, Seq + 1,
                                       std::memory_order_acq_rel))
      continue; // lost the claim race: rescan
    S.KeyHi.store(K.Hi, std::memory_order_relaxed);
    S.KeyLo.store(K.Lo, std::memory_order_relaxed);
    S.Offset.store(Off, std::memory_order_relaxed);
    S.Bytes.store(Len, std::memory_order_relaxed);
    S.ClassTag.store(ClassTag, std::memory_order_relaxed);
    S.LastUse.store(Now, std::memory_order_relaxed);
    S.Seq.store(Seq + 2, std::memory_order_release);
    return;
  }
}

bool SharedCache::publish(const CacheKey &K, const L2Entry &E) {
  uint64_t Off = 0, Len = 0;
  if (!writeEntry(K, E, Off, Len, 0, /*Torn=*/false))
    return false;
  publishSlot(K, Off, Len, E.ClassTag);
  NFills.fetch_add(1, std::memory_order_relaxed);
  bumpObs("cache.l2.fills");
  return true;
}

void SharedCache::debugPublishTorn(const CacheKey &K, const L2Entry &E,
                                   size_t PayloadBytesWritten) {
  uint64_t Off = 0, Len = 0;
  if (!writeEntry(K, E, Off, Len, PayloadBytesWritten, /*Torn=*/true))
    return;
  publishSlot(K, Off, Len, E.ClassTag);
}

void SharedCache::publishAsync(const CacheKey &K, L2Entry E) {
  {
    std::lock_guard<std::mutex> L(PubMu);
    if (AgentRunning) {
      PubQueue.emplace_back(K, std::move(E));
      AgentCv.notify_all();
      return;
    }
  }
  publish(K, E); // no agent: degrade to synchronous
}

void SharedCache::drainPublishes() {
  // The agent picks work off PubQueue and marks PubIdle once the queue is
  // empty and the in-flight batch has landed.
  AgentCv.notify_all();
  std::unique_lock<std::mutex> L(PubMu);
  PubCv.wait(L, [&] { return PubQueue.empty() && PubIdle; });
}

//===----------------------------------------------------------------------===//
// Invalidation
//===----------------------------------------------------------------------===//

void SharedCache::clearMatchingSlots(uint64_t ClassTag) {
  const uint64_t Buckets = Hdr->BucketCount.load(std::memory_order_relaxed);
  SegSlot *Slots = slotArray();
  for (uint64_t I = 0; I < Buckets * SlotsPerBucketN; ++I) {
    SegSlot &S = Slots[I];
    uint64_t Seq = S.Seq.load(std::memory_order_acquire);
    if (Seq & 1)
      continue;
    if (S.Bytes.load(std::memory_order_relaxed) == 0)
      continue;
    if (ClassTag != 0 &&
        S.ClassTag.load(std::memory_order_relaxed) != ClassTag)
      continue;
    uint64_t Expect = Seq;
    if (!S.Seq.compare_exchange_strong(Expect, Seq + 1,
                                       std::memory_order_acq_rel))
      continue; // concurrent publish wins; its entry post-dates the epoch
    S.KeyHi.store(0, std::memory_order_relaxed);
    S.KeyLo.store(0, std::memory_order_relaxed);
    S.Bytes.store(0, std::memory_order_relaxed);
    S.Offset.store(0, std::memory_order_relaxed);
    S.ClassTag.store(0, std::memory_order_relaxed);
    S.Seq.store(Seq + 2, std::memory_order_release);
  }
}

void SharedCache::invalidateClass(uint64_t ClassTag) {
  uint64_t Epoch = Hdr->Epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
  // L2 slots are cleared in the shared directory directly — every process
  // sees that immediately; the ring record only propagates the L1 drop.
  clearMatchingSlots(ClassTag);
  if (RingIndex >= 0) {
    std::lock_guard<std::mutex> L(RingMu);
    SegRing &R = Hdr->Rings[RingIndex];
    uint64_t H = R.Head.load(std::memory_order_relaxed);
    R.RecEpoch[H % RingCap].store(Epoch, std::memory_order_relaxed);
    R.RecClass[H % RingCap].store(ClassTag, std::memory_order_relaxed);
    R.Head.store(H + 1, std::memory_order_release);
  }
  // Apply locally right away instead of waiting a poll: our own ring is
  // skipped by consumeRings.
  applyInvalidation(ClassTag, /*CountRecord=*/true);
  uint64_t Seen = EpochSeen.load(std::memory_order_relaxed);
  while (Seen < Epoch &&
         !EpochSeen.compare_exchange_weak(Seen, Epoch,
                                          std::memory_order_relaxed)) {
  }
}

void SharedCache::applyInvalidation(uint64_t ClassTag, bool CountRecord) {
  std::function<void(uint64_t)> S;
  {
    std::lock_guard<std::mutex> L(SinkMu);
    S = Sink;
  }
  if (S)
    S(ClassTag);
  if (CountRecord) {
    NInvalidations.fetch_add(1, std::memory_order_relaxed);
    bumpObs("cache.l2.invalidations");
  }
}

void SharedCache::consumeRings() {
  for (unsigned R = 0; R < NumRings; ++R) {
    if (static_cast<int>(R) == RingIndex)
      continue;
    SegRing &Ring = Hdr->Rings[R];
    uint64_t Owner = Ring.Owner.load(std::memory_order_acquire);
    if (Owner != RingOwnerSeen[R]) {
      // Ring changed hands (owner died, slot reclaimed): restart from the
      // new owner's current head.
      RingOwnerSeen[R] = Owner;
      RingConsumed[R] = Ring.Head.load(std::memory_order_acquire);
      continue;
    }
    if (Owner == 0)
      continue;
    uint64_t Head = Ring.Head.load(std::memory_order_acquire);
    uint64_t Cons = RingConsumed[R];
    if (Head == Cons)
      continue;
    if (Head - Cons > RingCap) {
      // We lagged a full ring: records were overwritten before we read
      // them, so the only safe move is a wildcard L1 drop.
      NRingLagWipes.fetch_add(1, std::memory_order_relaxed);
      bumpObs("cache.l2.ring_lag_wipes");
      applyInvalidation(0, /*CountRecord=*/true);
      RingConsumed[R] = Head;
      continue;
    }
    bool Wiped = false;
    for (uint64_t I = Cons; I != Head; ++I) {
      uint64_t Epoch = Ring.RecEpoch[I % RingCap].load(
          std::memory_order_relaxed);
      uint64_t Tag =
          Ring.RecClass[I % RingCap].load(std::memory_order_relaxed);
      // The writer recycles cell I once Head passes I + RingCap; if that
      // happened mid-read the record is torn — wildcard instead.
      if (Ring.Head.load(std::memory_order_acquire) - I > RingCap) {
        NRingLagWipes.fetch_add(1, std::memory_order_relaxed);
        bumpObs("cache.l2.ring_lag_wipes");
        applyInvalidation(0, /*CountRecord=*/true);
        Wiped = true;
        break;
      }
      applyInvalidation(Tag, /*CountRecord=*/true);
      uint64_t Seen = EpochSeen.load(std::memory_order_relaxed);
      while (Seen < Epoch &&
             !EpochSeen.compare_exchange_weak(Seen, Epoch,
                                              std::memory_order_relaxed)) {
      }
    }
    RingConsumed[R] =
        Wiped ? Ring.Head.load(std::memory_order_acquire) : Head;
  }
}

void SharedCache::setInvalidationSink(std::function<void(uint64_t)> S) {
  std::lock_guard<std::mutex> L(SinkMu);
  Sink = std::move(S);
}

//===----------------------------------------------------------------------===//
// Agent / poll / stats
//===----------------------------------------------------------------------===//

void SharedCache::poll() {
  std::lock_guard<std::mutex> PL(PollMu);
  // Drain queued publishes (manual-poll mode: tests with StartAgent=false).
  for (;;) {
    std::pair<CacheKey, L2Entry> KV;
    {
      std::lock_guard<std::mutex> L(PubMu);
      if (PubQueue.empty())
        break;
      KV = std::move(PubQueue.front());
      PubQueue.pop_front();
    }
    publish(KV.first, KV.second);
  }
  consumeRings();
  updateGauges();
}

void SharedCache::startAgent(unsigned PollMs) {
  {
    std::lock_guard<std::mutex> L(PubMu);
    AgentRunning = true;
  }
  Agent = std::thread([this, PollMs] { agentMain(PollMs); });
}

void SharedCache::agentMain(unsigned PollMs) {
  for (;;) {
    // Publish queue first: compile results should reach other processes
    // within one turn, not one poll interval.
    for (;;) {
      std::pair<CacheKey, L2Entry> KV;
      {
        std::lock_guard<std::mutex> L(PubMu);
        if (PubQueue.empty()) {
          if (!PubIdle) {
            PubIdle = true;
            PubCv.notify_all();
          }
          break;
        }
        PubIdle = false;
        KV = std::move(PubQueue.front());
        PubQueue.pop_front();
      }
      publish(KV.first, KV.second);
    }
    {
      std::lock_guard<std::mutex> PL(PollMu);
      consumeRings();
      updateGauges();
    }
    std::unique_lock<std::mutex> L(AgentMu);
    if (AgentStop)
      break;
    AgentCv.wait_for(L, std::chrono::milliseconds(PollMs), [&] {
      if (AgentStop)
        return true;
      std::lock_guard<std::mutex> PL(PubMu);
      return !PubQueue.empty();
    });
    if (AgentStop)
      break;
  }
  std::lock_guard<std::mutex> L(PubMu);
  AgentRunning = false;
  PubIdle = true;
  PubCv.notify_all();
}

void SharedCache::updateGauges() {
  auto &CR = obs::CounterRegistry::global();
  if (!CR.enabled())
    return;
  L2Stats S = stats();
  CR.gauge("cache.l2.bytes").set(static_cast<int64_t>(S.Bytes));
  CR.gauge("cache.l2.entries").set(static_cast<int64_t>(S.Entries));
  CR.gauge("cache.l2.capacity_bytes")
      .set(static_cast<int64_t>(S.CapacityBytes));
}

L2Stats SharedCache::stats() const {
  L2Stats S;
  S.Hits = NHits.load(std::memory_order_relaxed);
  S.Misses = NMisses.load(std::memory_order_relaxed);
  S.Fills = NFills.load(std::memory_order_relaxed);
  S.PublishRejected = NPublishRejected.load(std::memory_order_relaxed);
  S.Invalidations = NInvalidations.load(std::memory_order_relaxed);
  S.RingLagWipes = NRingLagWipes.load(std::memory_order_relaxed);
  S.Wraps = Hdr->Wraps.load(std::memory_order_relaxed);
  S.CapacityBytes = Hdr->ArenaBytes.load(std::memory_order_relaxed);
  // After a wrap the log is conceptually full; before it, the cursor is
  // exactly the occupied prefix.
  S.Bytes = S.Wraps ? S.CapacityBytes
                    : std::min<size_t>(
                          Hdr->Cursor.load(std::memory_order_relaxed),
                          S.CapacityBytes);
  S.Epoch = Hdr->Epoch.load(std::memory_order_relaxed);
  S.EpochSeen = EpochSeen.load(std::memory_order_relaxed);

  const uint64_t Buckets = Hdr->BucketCount.load(std::memory_order_relaxed);
  SegSlot *Slots = slotArray();
  size_t Live = 0;
  for (uint64_t I = 0; I < Buckets * SlotsPerBucketN; ++I) {
    uint64_t Seq = Slots[I].Seq.load(std::memory_order_acquire);
    if ((Seq & 1) == 0 &&
        Slots[I].Bytes.load(std::memory_order_relaxed) != 0)
      ++Live;
  }
  S.Entries = Live;
  return S;
}

uint64_t SharedCache::epochWatermark() const {
  return EpochSeen.load(std::memory_order_relaxed);
}

} // namespace cache
} // namespace lsra
