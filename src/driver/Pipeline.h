//===- driver/Pipeline.h - Whole-module compilation driver ----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard compilation pipeline used by every experiment, mirroring
/// §3 of the paper: dead-code elimination, calling-convention lowering,
/// register allocation (one of the four allocators), the move-removing
/// peephole, and callee-save insertion. Everything except the central
/// register-assignment algorithm is identical across allocators — the
/// paper's "identical in every respect except the central register
/// assignment algorithms" setup.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_DRIVER_PIPELINE_H
#define LSRA_DRIVER_PIPELINE_H

#include "regalloc/Allocator.h"
#include "vm/VM.h"

#include <functional>

namespace lsra {

/// Run the full pipeline over \p M. On return every function is fully
/// allocated (no virtual registers). Returns the summed allocator
/// statistics. With EO.Cache set, each lowered function is looked up by
/// its canonical printed text before being allocated.
AllocStats compileModule(Module &M, const TargetDesc &TD, AllocatorKind K,
                         const AllocOptions &AO = {},
                         const ExecOptions &EO = {});

/// Tuning for compileModuleStreaming.
struct StreamOptions {
  /// Functions per worker grab (chunked dynamic self-scheduling).
  unsigned ChunkSize = 8;
  /// In-flight window, in chunks per worker: a worker may not start
  /// function I until I < emitted + Threads * ChunkSize * WindowChunks.
  /// Must be >= 1; larger windows tolerate more cost skew between
  /// functions before workers stall, at the price of more retained bodies.
  unsigned WindowChunks = 4;
};

/// Function-at-a-time pipeline over a module whose bodies are produced on
/// demand. For each function index in [0, M.numFunctions()):
///   1. \p BuildBody materialises the body of M.function(I) (no-op callback
///      if the bodies already exist);
///   2. the standard per-function pipeline runs (lowerCalls, DCE,
///      allocation with \p K);
///   3. \p Emit observes the allocated function — calls arrive in strict
///      index order regardless of EO.Threads;
///   4. the body is released (Function::releaseBody), returning its arena.
///
/// Peak memory is therefore bounded by the module shell plus the in-flight
/// window of function bodies (at most EO.Threads * SO.ChunkSize *
/// SO.WindowChunks), not by the whole module. Statistics are merged in
/// function-index order, so they are bit-identical for any thread count.
AllocStats compileModuleStreaming(
    Module &M, const TargetDesc &TD, AllocatorKind K,
    const std::function<void(Module &, unsigned)> &BuildBody,
    const std::function<void(unsigned, const Function &)> &Emit,
    const AllocOptions &AO = {}, const ExecOptions &EO = {},
    const StreamOptions &SO = {});

/// Result of one text-in/text-out compilation (see compileTextModule).
struct TextCompileResult {
  bool Ok = false;
  std::string Error;    ///< parse/verify diagnostic when !Ok
  unsigned ErrLine = 0; ///< parse-error position (0 = n/a)
  unsigned ErrCol = 0;
  std::string ErrToken;
  std::string AllocatedText; ///< printed module after allocation
  AllocStats Stats;
  bool CacheHit = false; ///< served whole from the module-level cache
  bool CacheL2 = false;  ///< the hit was filled from the shared L2 tier
  bool Ran = false; ///< RunAfter was requested and compilation succeeded
  RunResult Run;    ///< dynamic statistics when Ran
  /// Which tier answered, when EO.Tier is active: 0 = the EBB tier-0
  /// backend, 1 = the requested (full) allocator. -1 = tiering off.
  int Tier = -1;
};

/// The compile service in one call: parse \p IRText, verify, run the full
/// pipeline, verify the allocation, and print the result; optionally
/// execute on the VM for dynamic counts. This is what the compile server
/// runs per request, and `lsra run` on a file is equivalent to it — so
/// serving and offline compilation cannot drift apart.
///
/// With EO.Cache set, the raw \p IRText is first looked up as a whole
/// module (a hit skips even parsing and returns the stored allocated text
/// and statistics, with CacheHit set); on a miss the per-function cache of
/// compileModule still applies, and the successful result is inserted at
/// module level.
///
/// With EO.Tier active (and \p K not itself the EBB backend), a request
/// that misses the cache is answered by the EBB tier-0 backend instead of
/// \p K: the fast answer is cached under the *EBB* module key (cache
/// entries are always keyed by the allocator that produced them — tier
/// policy never enters a cache key), Tier is set to 0, and the caller is
/// expected to requalify by re-invoking with Tier == Off, which compiles
/// with \p K and refreshes \p K's key byte-identically to a direct
/// compile. A hit under \p K's own key is full-quality and reports
/// Tier == 1; tiering never changes what any cache key contains.
TextCompileResult compileTextModule(const std::string &IRText,
                                    const TargetDesc &TD, AllocatorKind K,
                                    const AllocOptions &AO = {},
                                    const ExecOptions &EO = {},
                                    bool RunAfter = false);

/// Post-allocation structural check; returns an empty string when valid.
std::string checkAllocated(const Module &M);

/// Reference semantics of \p M: lower calls + DCE (same pre-passes as
/// compileModule), then run on the VM with virtual registers intact.
RunResult runReference(Module &M, const TargetDesc &TD);

/// Execute an allocated module with the machine-contract checks enabled
/// (caller-saved poisoning, callee-saved verification).
RunResult runAllocated(const Module &M, const TargetDesc &TD);

} // namespace lsra

#endif // LSRA_DRIVER_PIPELINE_H
