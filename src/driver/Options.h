//===- driver/Options.h - Shared compile-flag parsing ----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One parser for the compile-shaping flags every front end accepts. The
/// CLI (`lsra run|serve|loadgen`), the bench tools, and the server's wire
/// protocol used to each parse allocator names and option flags their own
/// way; they all funnel through CompileFlags now, so a flag means the same
/// thing everywhere and new options are added in exactly one place.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_DRIVER_OPTIONS_H
#define LSRA_DRIVER_OPTIONS_H

#include "cache/CompileCache.h"
#include "regalloc/Allocator.h"
#include "target/Target.h"

#include <memory>
#include <string>

namespace lsra {

/// Everything a compile request can be shaped by, in parsed form. The
/// semantic knobs land in Alloc (and therefore key the compile cache); the
/// execution knobs land in Exec; cache sizing is kept separately because
/// the cache object itself outlives any single request.
struct CompileFlags {
  AllocatorKind Kind = AllocatorKind::SecondChanceBinpack;
  unsigned Regs = 0; ///< per-class register limit (0 = full machine)
  AllocOptions Alloc;
  ExecOptions Exec; ///< Exec.Cache stays null; callers wire their cache in
  size_t CacheMb = 64; ///< --cache-mb=N budget for makeCompileCache
  bool NoCache = false; ///< --no-cache
  std::string L2Path;  ///< --l2-path=FILE shared L2 segment (empty = off)
  size_t L2Mb = 256;   ///< --l2-mb=N segment budget for makeSharedCache
  bool NoL2 = false;   ///< --no-l2 (ignore --l2-path)
};

/// Consume one command-line argument if it is a shared compile flag:
///   --allocator=K --regs=N --threads=N --cleanup --verify-alloc
///   --consistency=iterative|conservative --no-second-chance --no-coalesce
///   --cache-mb=N --no-cache
/// Returns true when \p Arg was recognised; a recognised flag with a bad
/// value sets \p Err (empty otherwise). Unrecognised flags return false so
/// callers can layer their own options on top.
bool parseCompileFlag(const std::string &Arg, CompileFlags &F,
                      std::string &Err);

/// The usage text for the flags parseCompileFlag understands.
const char *compileFlagsHelp();

/// The Alpha-like target, restricted to F.Regs registers per class when
/// that is non-zero.
TargetDesc targetForFlags(const CompileFlags &F);

/// Build the compile cache the flags describe: null when --no-cache (or a
/// zero budget), otherwise an LRU cache of CacheMb megabytes.
std::unique_ptr<cache::CompileCache> makeCompileCache(const CompileFlags &F);

/// Open the shared L2 segment the flags describe: null (without error)
/// when no --l2-path was given or --no-l2/--no-cache is set; null with
/// \p Err set when the path exists but cannot be mapped. Callers attach
/// the result to their CompileCache (attachL2) and must keep it alive
/// until the cache is destroyed.
std::unique_ptr<cache::SharedCache> makeSharedCache(const CompileFlags &F,
                                                    std::string &Err);

} // namespace lsra

#endif // LSRA_DRIVER_OPTIONS_H
