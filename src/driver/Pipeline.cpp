//===- driver/Pipeline.cpp ------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "ir/IRVerifier.h"
#include "passes/DCE.h"
#include "target/LowerCalls.h"

using namespace lsra;

AllocStats lsra::compileModule(Module &M, const TargetDesc &TD,
                               AllocatorKind K, const AllocOptions &Opts) {
  lowerCalls(M);
  eliminateDeadCode(M, TD);
  return allocateModule(M, TD, K, Opts);
}

std::string lsra::checkAllocated(const Module &M) {
  VerifyOptions VO;
  VO.RequireAllocated = true;
  VO.RequireLoweredCalls = true;
  return verifyModule(M, VO);
}

RunResult lsra::runReference(Module &M, const TargetDesc &TD) {
  lowerCalls(M);
  eliminateDeadCode(M, TD);
  VM Machine(M, TD);
  return Machine.run();
}

RunResult lsra::runAllocated(const Module &M, const TargetDesc &TD) {
  VM::Options VO;
  VO.PoisonCallerSaved = true;
  VO.CheckCalleeSaved = true;
  VM Machine(M, TD, VO);
  return Machine.run();
}
