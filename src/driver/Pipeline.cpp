//===- driver/Pipeline.cpp ------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include "cache/CompileCache.h"
#include "check/Clone.h"
#include "check/Verifier.h"
#include "ir/IRVerifier.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "passes/DCE.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "target/LowerCalls.h"

#include <condition_variable>
#include <mutex>
#include <sstream>

using namespace lsra;

AllocStats lsra::compileModule(Module &M, const TargetDesc &TD,
                               AllocatorKind K, const AllocOptions &AO,
                               const ExecOptions &EO) {
  unsigned N = M.numFunctions();
  unsigned Threads = resolveThreadCount(EO.Threads, N);
  LSRA_LOG(1, "compileModule: %u functions, allocator=%s, threads=%u", N,
           allocatorName(K), Threads);
  // WallSeconds is measured exactly once, here, over the whole pipeline
  // (lowering + DCE + allocation) in both the sequential and the parallel
  // path; the alloc-only wall allocateModule records is overwritten, never
  // added (AllocStats::operator+= deliberately skips WallSeconds).
  Timer Wall;
  Wall.start();
  AllocStats Total;
  if (Threads <= 1) {
    {
      obs::ScopedSpan S("lowerCalls", "pass");
      obs::RequestPhase RP(EO.ReqTrace, "alloc:lower");
      lowerCalls(M);
    }
    {
      obs::ScopedSpan S("dce", "pass");
      obs::RequestPhase RP(EO.ReqTrace, "alloc:dce");
      eliminateDeadCode(M, TD);
    }
    obs::RequestPhase RP(EO.ReqTrace, "alloc:regalloc");
    Total = allocateModule(M, TD, K, AO, EO);
  } else {
    // Parallel path: lowering and DCE are per-function, so run them on the
    // workers, then let allocateModule (which handles cache hits safely
    // across threads) do the allocation fan-out itself.
    parallelFor(N, Threads, [&](unsigned I) {
      Function &F = M.function(I);
      obs::ScopedSpan FnSpan("compile:", F.name(), "function");
      {
        obs::ScopedSpan S("lowerCalls", "pass");
        lowerCalls(F);
      }
      {
        obs::ScopedSpan S("dce", "pass");
        eliminateDeadCode(F, TD);
      }
    });
    Total = allocateModule(M, TD, K, AO, EO);
  }
  Wall.stop();
  Total.WallSeconds = Wall.seconds();
  return Total;
}

AllocStats lsra::compileModuleStreaming(
    Module &M, const TargetDesc &TD, AllocatorKind K,
    const std::function<void(Module &, unsigned)> &BuildBody,
    const std::function<void(unsigned, const Function &)> &Emit,
    const AllocOptions &AO, const ExecOptions &EO, const StreamOptions &SO) {
  unsigned N = M.numFunctions();
  unsigned Threads = resolveThreadCount(EO.Threads, N);
  LSRA_LOG(1, "compileModuleStreaming: %u functions, allocator=%s, threads=%u",
           N, allocatorName(K), Threads);
  Timer Wall;
  Wall.start();

  // Merged in index order at the end, so statistics are bit-identical for
  // any thread count (same guarantee allocateModule gives).
  std::vector<AllocStats> PerFn(N);

  auto CompileOne = [&](unsigned I) {
    Function &F = M.function(I);
    if (BuildBody)
      BuildBody(M, I);
    lowerCalls(F);
    eliminateDeadCode(F, TD);
    PerFn[I] = allocateFunctionInModule(M, I, TD, K, AO, EO);
  };
  auto EmitAndRelease = [&](unsigned I) {
    Function &F = M.function(I);
    if (Emit)
      Emit(I, F);
    F.releaseBody();
  };

  if (Threads <= 1) {
    for (unsigned I = 0; I < N; ++I) {
      CompileOne(I);
      EmitAndRelease(I);
    }
  } else {
    unsigned ChunkSize = std::max(SO.ChunkSize, 1u);
    // The window must cover at least one chunk so the worker holding the
    // emit frontier's chunk can always finish it (chunks are claimed in
    // increasing order, so that chunk is claimed before any later one).
    unsigned Window =
        std::max(Threads * ChunkSize * std::max(SO.WindowChunks, 1u),
                 ChunkSize);
    std::mutex Mu;
    std::condition_variable Cv;
    unsigned NextEmit = 0; // next function index to emit, under Mu
    std::vector<uint8_t> Compiled(N, 0);

    parallelForChunked(N, Threads, ChunkSize, [&](unsigned I) {
      {
        // Throttle: keep the set of retained (compiled or in-progress,
        // not yet emitted) bodies within the window.
        std::unique_lock<std::mutex> Lock(Mu);
        Cv.wait(Lock, [&] { return I < NextEmit + Window; });
      }
      CompileOne(I);
      {
        std::unique_lock<std::mutex> Lock(Mu);
        Compiled[I] = 1;
        if (I != NextEmit)
          return;
        // Drain the contiguous run of compiled functions at the frontier.
        // Emission is serialised under the lock; it is cheap relative to
        // compilation and must be ordered anyway.
        while (NextEmit < N && Compiled[NextEmit]) {
          EmitAndRelease(NextEmit);
          ++NextEmit;
        }
        Cv.notify_all();
      }
    });
  }

  AllocStats Total;
  for (const AllocStats &S : PerFn)
    Total += S;
  Wall.stop();
  Total.WallSeconds = Wall.seconds();
  return Total;
}

TextCompileResult lsra::compileTextModule(const std::string &IRText,
                                          const TargetDesc &TD,
                                          AllocatorKind K,
                                          const AllocOptions &AO,
                                          const ExecOptions &EO,
                                          bool RunAfter) {
  TextCompileResult R;
  obs::ScopedSpan Span("compileText", "request");
  // Tiering only applies when the requested allocator is not already the
  // tier-0 backend; it swaps which allocator answers a *cold* request and
  // nothing else (warm hits below are untouched).
  bool Tiered = EO.Tier != TierPolicy::Off && K != AllocatorKind::EbbScan;
  // Module-level cache: the raw request text is the content address, so a
  // hit costs one hash + one lookup and skips parsing entirely.
  cache::CacheKey ModKey;
  if (EO.Cache) {
    std::shared_ptr<const cache::CachedCompile> Hit;
    {
      obs::RequestPhase RP(EO.ReqTrace, "cache-probe");
      ModKey = cache::makeModuleKey(IRText, AO.fingerprint(), K,
                                    TD.fingerprint());
      Hit = EO.Cache->lookup(ModKey);
    }
    if (!Hit && EO.Cache->l2()) {
      // L1 missed; the shared segment may still have the module from
      // another process (or an earlier life of this one). A hit here
      // promotes into L1, so the next probe stops one phase earlier.
      obs::RequestPhase RP(EO.ReqTrace, "l2-probe");
      Hit = EO.Cache->lookupL2Fill(ModKey);
      R.CacheL2 = Hit != nullptr;
    }
    if (!Hit && Tiered) {
      // Cold under the requested allocator: a previous tier-0 answer may
      // still be warm under the EBB backend's own key.
      cache::CacheKey T0Key = cache::makeModuleKey(
          IRText, AO.fingerprint(), AllocatorKind::EbbScan, TD.fingerprint());
      Hit = EO.Cache->lookup(T0Key);
      if (!Hit && EO.Cache->l2()) {
        Hit = EO.Cache->lookupL2Fill(T0Key);
        R.CacheL2 = Hit != nullptr;
      }
      if (Hit)
        R.Tier = 0;
    } else if (Hit && Tiered) {
      R.Tier = 1; // full-quality entry already present
    }
    if (Hit) {
      R.AllocatedText = Hit->AllocatedText;
      R.Stats = Hit->Stats;
      R.CacheHit = true;
      R.Ok = true;
      if (RunAfter) {
        // Dynamic counts need the module back; the allocated text
        // round-trips (including the initial memory image).
        ParseResult P = parseModule(R.AllocatedText);
        if (P.ok()) {
          R.Run = runAllocated(*P.M, TD);
          R.Ran = true;
        }
      }
      return R;
    }
  }
  if (Tiered) {
    // Answer the cold request from the one-pass EBB backend; the cache
    // entry is keyed by the backend that produced it.
    K = AllocatorKind::EbbScan;
    R.Tier = 0;
    if (EO.Cache)
      ModKey = cache::makeModuleKey(IRText, AO.fingerprint(), K,
                                    TD.fingerprint());
  }
  ParseResult P;
  {
    obs::RequestPhase RP(EO.ReqTrace, "parse");
    P = parseModule(IRText);
  }
  if (!P.ok()) {
    R.Error = P.Error;
    R.ErrLine = P.ErrLine;
    R.ErrCol = P.ErrCol;
    R.ErrToken = P.ErrToken;
    return R;
  }
  std::string Diag = verifyModule(*P.M);
  if (!Diag.empty()) {
    R.Error = "verify: " + Diag;
    return R;
  }
  // For translation validation we need the exact module the allocator
  // consumed. Lowering and DCE are idempotent, so running them here first
  // (compileModule will see already-lowered functions) lets us snapshot it.
  std::unique_ptr<Module> Snapshot;
  if (EO.VerifyAlloc) {
    lowerCalls(*P.M);
    eliminateDeadCode(*P.M, TD);
    Snapshot = cloneModule(*P.M);
  }
  {
    obs::RequestPhase RP(EO.ReqTrace, Tiered ? "tier0-alloc" : "alloc");
    R.Stats = compileModule(*P.M, TD, K, AO, EO);
  }
  Diag = checkAllocated(*P.M);
  if (!Diag.empty()) {
    R.Error = "post-allocation verify: " + Diag;
    return R;
  }
  if (Snapshot) {
    obs::ScopedSpan VSpan("verifyAllocation", "pass");
    check::VerifyAllocResult VR = check::verifyAllocation(*Snapshot, *P.M, TD);
    if (!VR.ok()) {
      R.Error = "allocation verify: " + VR.str();
      return R;
    }
  }
  std::ostringstream OS;
  {
    obs::RequestPhase RP(EO.ReqTrace, "emit");
    printModule(OS, *P.M);
  }
  R.AllocatedText = OS.str();
  R.Ok = true;
  if (EO.Cache) {
    auto Entry = std::make_shared<cache::CachedCompile>();
    Entry->AllocatedText = R.AllocatedText;
    Entry->Stats = R.Stats;
    Entry->Bytes = IRText.size() + R.AllocatedText.size() +
                   sizeof(cache::CachedCompile);
    Entry->ClassTag = TD.fingerprint();
    EO.Cache->insert(ModKey, std::move(Entry));
  }
  if (RunAfter) {
    R.Run = runAllocated(*P.M, TD);
    R.Ran = true;
  }
  return R;
}

std::string lsra::checkAllocated(const Module &M) {
  VerifyOptions VO;
  VO.RequireAllocated = true;
  VO.RequireLoweredCalls = true;
  return verifyModule(M, VO);
}

RunResult lsra::runReference(Module &M, const TargetDesc &TD) {
  lowerCalls(M);
  eliminateDeadCode(M, TD);
  VM Machine(M, TD);
  return Machine.run();
}

RunResult lsra::runAllocated(const Module &M, const TargetDesc &TD) {
  VM::Options VO;
  VO.PoisonCallerSaved = true;
  VO.CheckCalleeSaved = true;
  VM Machine(M, TD, VO);
  return Machine.run();
}
