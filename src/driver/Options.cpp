//===- driver/Options.cpp -------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "driver/Options.h"

#include "cache/SharedCache.h"

#include <cstdlib>

using namespace lsra;

bool lsra::parseCompileFlag(const std::string &Arg, CompileFlags &F,
                            std::string &Err) {
  Err.clear();
  auto Value = [&Arg](size_t PrefixLen) { return Arg.substr(PrefixLen); };
  if (Arg.rfind("--allocator=", 0) == 0) {
    if (!parseAllocatorName(Value(12), F.Kind))
      Err = "unknown allocator '" + Value(12) + "'";
    return true;
  }
  if (Arg.rfind("--regs=", 0) == 0) {
    F.Regs = static_cast<unsigned>(std::strtoul(Arg.c_str() + 7, nullptr, 10));
    return true;
  }
  if (Arg.rfind("--threads=", 0) == 0) {
    F.Exec.Threads =
        static_cast<unsigned>(std::strtoul(Arg.c_str() + 10, nullptr, 10));
    return true;
  }
  if (Arg == "--cleanup") {
    F.Alloc.SpillCleanup = true;
    return true;
  }
  if (Arg == "--verify-alloc") {
    F.Exec.VerifyAlloc = true;
    return true;
  }
  if (Arg.rfind("--tier=", 0) == 0) {
    std::string V = Value(7);
    if (!parseTierPolicy(V, F.Exec.Tier))
      Err = "unknown tier policy '" + V + "'";
    return true;
  }
  if (Arg.rfind("--consistency=", 0) == 0) {
    std::string V = Value(14);
    if (V == "iterative")
      F.Alloc.Consistency = AllocOptions::ConsistencyMode::Iterative;
    else if (V == "conservative")
      F.Alloc.Consistency = AllocOptions::ConsistencyMode::Conservative;
    else
      Err = "unknown consistency mode '" + V + "'";
    return true;
  }
  if (Arg == "--no-second-chance") {
    F.Alloc.EarlySecondChance = false;
    return true;
  }
  if (Arg == "--no-coalesce") {
    F.Alloc.MoveCoalesce = false;
    return true;
  }
  if (Arg.rfind("--cache-mb=", 0) == 0) {
    F.CacheMb = std::strtoul(Arg.c_str() + 11, nullptr, 10);
    return true;
  }
  if (Arg == "--no-cache") {
    F.NoCache = true;
    return true;
  }
  if (Arg.rfind("--l2-path=", 0) == 0) {
    F.L2Path = Value(10);
    return true;
  }
  if (Arg.rfind("--l2-mb=", 0) == 0) {
    F.L2Mb = std::strtoul(Arg.c_str() + 8, nullptr, 10);
    return true;
  }
  if (Arg == "--no-l2") {
    F.NoL2 = true;
    return true;
  }
  return false;
}

const char *lsra::compileFlagsHelp() {
  return "  --allocator=binpack|coloring|twopass|poletto|ebb\n"
         "  --regs=N       restrict the allocatable file to N per class\n"
         "  --threads=N    allocate functions on N workers (0 = auto)\n"
         "  --tier=off|tier0|promote  tiered serving: answer cold requests\n"
         "                 with the EBB tier-0 backend (promote = requalify\n"
         "                 with the full allocator in the background)\n"
         "  --cleanup      enable the spill-cleanup pass\n"
         "  --verify-alloc prove the allocation correct\n"
         "  --consistency=iterative|conservative  §2.4 vs §2.6 dataflow\n"
         "  --no-second-chance --no-coalesce      §2.5 ablations\n"
         "  --cache-mb=N   compile-cache budget in MiB (default 64)\n"
         "  --no-cache     disable the compile cache\n"
         "  --l2-path=FILE shared-memory L2 cache segment (cross-process)\n"
         "  --l2-mb=N      L2 segment budget in MiB (default 256)\n"
         "  --no-l2        disable the shared L2 even when --l2-path is set\n";
}

TargetDesc lsra::targetForFlags(const CompileFlags &F) {
  TargetDesc TD = TargetDesc::alphaLike();
  if (F.Regs)
    TD = TD.withRegLimit(F.Regs, F.Regs);
  return TD;
}

std::unique_ptr<cache::CompileCache>
lsra::makeCompileCache(const CompileFlags &F) {
  if (F.NoCache || F.CacheMb == 0)
    return nullptr;
  cache::CacheConfig C;
  C.MaxBytes = F.CacheMb << 20;
  return std::make_unique<cache::CompileCache>(C);
}

std::unique_ptr<cache::SharedCache>
lsra::makeSharedCache(const CompileFlags &F, std::string &Err) {
  Err.clear();
  // The L2 tier only ever fills the L1; without an L1 there is nothing to
  // promote into, so --no-cache implies no L2 either.
  if (F.L2Path.empty() || F.NoL2 || F.NoCache || F.L2Mb == 0)
    return nullptr;
  cache::SharedCacheConfig C;
  C.Path = F.L2Path;
  C.MaxBytes = F.L2Mb << 20;
  return cache::SharedCache::open(C, Err);
}
