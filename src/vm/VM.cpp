//===- vm/VM.cpp ----------------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include "obs/Counters.h"
#include "obs/Trace.h"

#include <cstring>

using namespace lsra;

namespace {

uint64_t bitsOfDouble(double D) {
  uint64_t B;
  std::memcpy(&B, &D, sizeof(B));
  return B;
}

double doubleOfBits(uint64_t B) {
  double D;
  std::memcpy(&D, &B, sizeof(D));
  return D;
}

constexpr uint64_t PoisonPattern = 0xDEADBEEFDEADBEEFull;

/// Cycle estimate per opcode: a crude but deterministic latency model in
/// the spirit of an in-order Alpha (memory 3, mul 8, div 30, fdiv 20,
/// call overhead 4, everything else 1).
unsigned cycleCost(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
    return 8;
  case Opcode::Div:
  case Opcode::Rem:
    return 30;
  case Opcode::FMul:
    return 4;
  case Opcode::FDiv:
    return 20;
  case Opcode::Ld:
  case Opcode::St:
  case Opcode::FLd:
  case Opcode::FSt:
  case Opcode::LdSlot:
  case Opcode::StSlot:
  case Opcode::FLdSlot:
  case Opcode::FStSlot:
    return 3;
  case Opcode::Call:
    return 4;
  default:
    return 1;
  }
}

struct Frame {
  const Function *F = nullptr;
  unsigned Block = 0;
  unsigned InstrIdx = 0;
  std::vector<uint64_t> VRegs;
  std::vector<uint64_t> Slots;
  // Support for executing pre-LowerCalls code.
  std::vector<uint64_t> PendingIntArgs;
  std::vector<uint64_t> PendingFpArgs;
  // Callee-saved contract checking.
  std::array<uint64_t, NumPRegs> EntryRegs{};
};

class Interp {
public:
  Interp(const Module &M, const TargetDesc &TD, VM::Options Opts)
      : M(M), TD(TD), Opts(Opts) {}

  RunResult run(const std::string &EntryName);

private:
  const Module &M;
  const TargetDesc &TD;
  VM::Options Opts;

  std::vector<uint64_t> Mem;
  std::array<uint64_t, NumPRegs> PRegs{};
  std::vector<Frame> Stack;
  RunResult Result;
  uint64_t PendingRet = 0;

  bool fail(const std::string &Msg) {
    Result.Ok = false;
    Result.Error = Msg;
    return false;
  }

  uint64_t read(const Frame &Fr, const Operand &Op) const {
    switch (Op.kind()) {
    case Operand::Kind::VReg:
      return Fr.VRegs[Op.vregId()];
    case Operand::Kind::PReg:
      return PRegs[Op.pregId()];
    case Operand::Kind::Imm:
      return static_cast<uint64_t>(Op.immValue());
    case Operand::Kind::FImm:
      return bitsOfDouble(Op.fimmValue());
    default:
      assert(false && "operand is not a value");
      return 0;
    }
  }

  void write(Frame &Fr, const Operand &Op, uint64_t V) {
    if (Op.isVReg())
      Fr.VRegs[Op.vregId()] = V;
    else
      PRegs[Op.pregId()] = V;
  }

  void pushFrame(const Function &F) {
    Frame Fr;
    Fr.F = &F;
    Fr.VRegs.assign(F.numVRegs(), PoisonPattern);
    Fr.Slots.assign(F.numSlots(), PoisonPattern);
    Fr.EntryRegs = PRegs;
    Stack.push_back(std::move(Fr));
  }

  void poisonCallerSaved(uint64_t PreserveMask) {
    if (!Opts.PoisonCallerSaved)
      return;
    uint64_t Mask = TD.callClobberMask() & ~PreserveMask;
    while (Mask) {
      unsigned P = static_cast<unsigned>(__builtin_ctzll(Mask));
      Mask &= Mask - 1;
      PRegs[P] = PoisonPattern;
    }
  }

  /// Execute one instruction; returns false on termination or error.
  bool step();
};

bool Interp::step() {
  Frame &Fr = Stack.back();
  const Function &F = *Fr.F;
  const Block &B = F.block(Fr.Block);
  if (Fr.InstrIdx >= B.size())
    return fail("fell off the end of bb" + std::to_string(Fr.Block) + " in " +
                F.name());
  const Instr &I = B.instrs()[Fr.InstrIdx];

  ++Result.Stats.Total;
  Result.Stats.Cycles += cycleCost(I.opcode());
  ++Result.Stats.ByKind[static_cast<unsigned>(I.Spill)];
  if (Result.Stats.Total > Opts.MaxInstrs)
    return fail("instruction budget exceeded");

  ++Fr.InstrIdx;

  auto IntBin = [&](auto Fn) {
    int64_t A = static_cast<int64_t>(read(Fr, I.op(1)));
    int64_t Bv = static_cast<int64_t>(read(Fr, I.op(2)));
    write(Fr, I.op(0), static_cast<uint64_t>(Fn(A, Bv)));
    return true;
  };
  auto FpBin = [&](auto Fn) {
    double A = doubleOfBits(read(Fr, I.op(1)));
    double Bv = doubleOfBits(read(Fr, I.op(2)));
    write(Fr, I.op(0), bitsOfDouble(Fn(A, Bv)));
    return true;
  };
  auto FpCmp = [&](auto Fn) {
    double A = doubleOfBits(read(Fr, I.op(1)));
    double Bv = doubleOfBits(read(Fr, I.op(2)));
    write(Fr, I.op(0), Fn(A, Bv) ? 1 : 0);
    return true;
  };

  switch (I.opcode()) {
  case Opcode::Add:
    return IntBin([](int64_t A, int64_t B2) { return A + B2; });
  case Opcode::Sub:
    return IntBin([](int64_t A, int64_t B2) { return A - B2; });
  case Opcode::Mul:
    return IntBin([](int64_t A, int64_t B2) { return A * B2; });
  case Opcode::Div: {
    int64_t D = static_cast<int64_t>(read(Fr, I.op(2)));
    if (D == 0)
      return fail("division by zero in " + F.name());
    return IntBin([](int64_t A, int64_t B2) {
      if (A == INT64_MIN && B2 == -1)
        return INT64_MIN; // avoid UB on overflow
      return A / B2;
    });
  }
  case Opcode::Rem: {
    int64_t D = static_cast<int64_t>(read(Fr, I.op(2)));
    if (D == 0)
      return fail("remainder by zero in " + F.name());
    return IntBin([](int64_t A, int64_t B2) {
      if (A == INT64_MIN && B2 == -1)
        return int64_t(0);
      return A % B2;
    });
  }
  case Opcode::And:
    return IntBin([](int64_t A, int64_t B2) { return A & B2; });
  case Opcode::Or:
    return IntBin([](int64_t A, int64_t B2) { return A | B2; });
  case Opcode::Xor:
    return IntBin([](int64_t A, int64_t B2) { return A ^ B2; });
  case Opcode::Shl:
    return IntBin([](int64_t A, int64_t B2) {
      return static_cast<int64_t>(static_cast<uint64_t>(A) << (B2 & 63));
    });
  case Opcode::Shr:
    return IntBin([](int64_t A, int64_t B2) {
      return static_cast<int64_t>(static_cast<uint64_t>(A) >> (B2 & 63));
    });
  case Opcode::CmpEq:
    return IntBin([](int64_t A, int64_t B2) { return int64_t(A == B2); });
  case Opcode::CmpNe:
    return IntBin([](int64_t A, int64_t B2) { return int64_t(A != B2); });
  case Opcode::CmpLt:
    return IntBin([](int64_t A, int64_t B2) { return int64_t(A < B2); });
  case Opcode::CmpLe:
    return IntBin([](int64_t A, int64_t B2) { return int64_t(A <= B2); });
  case Opcode::CmpGt:
    return IntBin([](int64_t A, int64_t B2) { return int64_t(A > B2); });
  case Opcode::CmpGe:
    return IntBin([](int64_t A, int64_t B2) { return int64_t(A >= B2); });
  case Opcode::Neg:
    write(Fr, I.op(0),
          static_cast<uint64_t>(-static_cast<int64_t>(read(Fr, I.op(1)))));
    return true;
  case Opcode::Not:
    write(Fr, I.op(0), ~read(Fr, I.op(1)));
    return true;
  case Opcode::FAdd:
    return FpBin([](double A, double B2) { return A + B2; });
  case Opcode::FSub:
    return FpBin([](double A, double B2) { return A - B2; });
  case Opcode::FMul:
    return FpBin([](double A, double B2) { return A * B2; });
  case Opcode::FDiv:
    return FpBin([](double A, double B2) { return A / B2; });
  case Opcode::FNeg:
    write(Fr, I.op(0), bitsOfDouble(-doubleOfBits(read(Fr, I.op(1)))));
    return true;
  case Opcode::FCmpEq:
    return FpCmp([](double A, double B2) { return A == B2; });
  case Opcode::FCmpLt:
    return FpCmp([](double A, double B2) { return A < B2; });
  case Opcode::FCmpLe:
    return FpCmp([](double A, double B2) { return A <= B2; });
  case Opcode::ItoF:
    write(Fr, I.op(0),
          bitsOfDouble(
              static_cast<double>(static_cast<int64_t>(read(Fr, I.op(1))))));
    return true;
  case Opcode::FtoI: {
    // Defined for every input: NaN and out-of-range convert to 0 /
    // saturated values instead of invoking UB.
    double D = doubleOfBits(read(Fr, I.op(1)));
    int64_t Res;
    if (D != D)
      Res = 0;
    else if (D >= 9.2e18)
      Res = INT64_MAX;
    else if (D <= -9.2e18)
      Res = INT64_MIN;
    else
      Res = static_cast<int64_t>(D);
    write(Fr, I.op(0), static_cast<uint64_t>(Res));
    return true;
  }
  case Opcode::Mov:
  case Opcode::FMov:
  case Opcode::MovI:
  case Opcode::MovF:
    write(Fr, I.op(0), read(Fr, I.op(1)));
    return true;
  case Opcode::Ld:
  case Opcode::FLd: {
    uint64_t Addr = read(Fr, I.op(1)) + static_cast<uint64_t>(I.op(2).immValue());
    if (Addr >= Mem.size())
      return fail("load out of bounds in " + F.name());
    write(Fr, I.op(0), Mem[Addr]);
    return true;
  }
  case Opcode::St:
  case Opcode::FSt: {
    uint64_t Addr = read(Fr, I.op(1)) + static_cast<uint64_t>(I.op(2).immValue());
    if (Addr >= Mem.size())
      return fail("store out of bounds in " + F.name());
    Mem[Addr] = read(Fr, I.op(0));
    return true;
  }
  case Opcode::LdSlot:
  case Opcode::FLdSlot:
    write(Fr, I.op(0), Fr.Slots[I.op(1).slotId()]);
    return true;
  case Opcode::StSlot:
  case Opcode::FStSlot:
    Fr.Slots[I.op(1).slotId()] = read(Fr, I.op(0));
    return true;
  case Opcode::Br:
    Fr.Block = I.op(0).labelBlock();
    Fr.InstrIdx = 0;
    return true;
  case Opcode::CBr: {
    bool Taken = read(Fr, I.op(0)) != 0;
    Fr.Block = (Taken ? I.op(1) : I.op(2)).labelBlock();
    Fr.InstrIdx = 0;
    return true;
  }
  case Opcode::Ret: {
    uint64_t RetVal = 0;
    if (!I.op(0).isNone())
      RetVal = read(Fr, I.op(0));
    else if (F.RetKind != CallRetKind::None)
      RetVal = PRegs[TargetDesc::retReg(
          F.RetKind == CallRetKind::Float ? RegClass::Float : RegClass::Int)];
    if (Opts.CheckCalleeSaved) {
      uint64_t Mask = TD.calleeSavedMask();
      while (Mask) {
        unsigned P = static_cast<unsigned>(__builtin_ctzll(Mask));
        Mask &= Mask - 1;
        if (PRegs[P] != Fr.EntryRegs[P])
          return fail("callee-saved register not preserved by " + F.name());
      }
    }
    CallRetKind RK = F.RetKind;
    Stack.pop_back();
    if (Stack.empty()) {
      Result.Ok = true;
      Result.ReturnValue = static_cast<int64_t>(RetVal);
      return false;
    }
    // Deliver the return value through the convention register so lowered
    // callers read it there, and through PendingRet for unlowered callers.
    if (RK == CallRetKind::Int)
      PRegs[TargetDesc::intRetReg()] = RetVal;
    else if (RK == CallRetKind::Float)
      PRegs[TargetDesc::fpRetReg()] = RetVal;
    PendingRet = RetVal;
    uint64_t Preserve = 0;
    if (RK == CallRetKind::Int)
      Preserve |= uint64_t(1) << TargetDesc::intRetReg();
    else if (RK == CallRetKind::Float)
      Preserve |= uint64_t(1) << TargetDesc::fpRetReg();
    poisonCallerSaved(Preserve);
    return true;
  }
  case Opcode::Call: {
    if (Stack.size() >= Opts.MaxCallDepth)
      return fail("call depth exceeded in " + F.name());
    const Function &Callee = M.function(I.op(0).funcId());
    // Gather argument values. An unlowered caller passed them through the
    // pending buffers; a lowered caller placed them in argument registers.
    std::vector<uint64_t> IArgs, FArgs;
    if (!Fr.PendingIntArgs.empty() || !Fr.PendingFpArgs.empty()) {
      IArgs = Fr.PendingIntArgs;
      FArgs = Fr.PendingFpArgs;
      Fr.PendingIntArgs.clear();
      Fr.PendingFpArgs.clear();
    } else {
      for (unsigned A = 0; A < I.CallIntArgs; ++A)
        IArgs.push_back(PRegs[TargetDesc::intArgReg(A)]);
      for (unsigned A = 0; A < I.CallFpArgs; ++A)
        FArgs.push_back(PRegs[TargetDesc::fpArgReg(A)]);
    }
    // Place them where the callee expects them.
    uint64_t Preserve = 0;
    for (unsigned A = 0; A < IArgs.size() && A < 6; ++A) {
      PRegs[TargetDesc::intArgReg(A)] = IArgs[A];
      Preserve |= uint64_t(1) << TargetDesc::intArgReg(A);
    }
    for (unsigned A = 0; A < FArgs.size() && A < 6; ++A) {
      PRegs[TargetDesc::fpArgReg(A)] = FArgs[A];
      Preserve |= uint64_t(1) << TargetDesc::fpArgReg(A);
    }
    poisonCallerSaved(Preserve);
    pushFrame(Callee);
    Frame &NewFr = Stack.back();
    if (!Callee.CallsLowered) {
      for (unsigned A = 0; A < Callee.IntParamVRegs.size(); ++A)
        NewFr.VRegs[Callee.IntParamVRegs[A]] = A < IArgs.size() ? IArgs[A] : 0;
      for (unsigned A = 0; A < Callee.FpParamVRegs.size(); ++A)
        NewFr.VRegs[Callee.FpParamVRegs[A]] = A < FArgs.size() ? FArgs[A] : 0;
    }
    return true;
  }
  case Opcode::CArg:
    Fr.PendingIntArgs.push_back(read(Fr, I.op(0)));
    return true;
  case Opcode::FCArg:
    Fr.PendingFpArgs.push_back(read(Fr, I.op(0)));
    return true;
  case Opcode::CRes:
  case Opcode::FCRes:
    write(Fr, I.op(0), PendingRet);
    return true;
  case Opcode::Emit:
  case Opcode::FEmit:
    Result.Output.push_back(read(Fr, I.op(0)));
    return true;
  case Opcode::Nop:
    return true;
  }
  return fail("unhandled opcode");
}

RunResult Interp::run(const std::string &EntryName) {
  const Function *Entry = nullptr;
  for (const auto &F : M.functions())
    if (F->name() == EntryName)
      Entry = F.get();
  if (!Entry) {
    fail("no function named " + EntryName);
    return Result;
  }
  Mem = M.InitialMemory;
  if (Mem.size() < Opts.MinMemWords)
    Mem.resize(Opts.MinMemWords, 0);
  if (Opts.PoisonCallerSaved)
    PRegs.fill(PoisonPattern);
  pushFrame(*Entry);
  while (step()) {
  }
  return Result;
}

} // namespace

RunResult VM::run(const std::string &EntryName) {
  obs::ScopedSpan Span("vm.run:", EntryName, "vm");
  RunResult R = Interp(M, TD, Opts).run(EntryName);
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.recordRunStats(R.Stats);
  return R;
}

RunResult lsra::runOrDie(const Module &M, const TargetDesc &TD,
                         VM::Options Opts, const std::string &EntryName) {
  VM Machine(M, TD, Opts);
  RunResult R = Machine.run(EntryName);
  assert(R.Ok && "program execution failed");
  return R;
}
