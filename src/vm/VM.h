//===- vm/VM.h - IR interpreter and dynamic counters -----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An interpreter for the IR. It plays the role of the paper's Alpha
/// hardware plus the HALT instrumentation tool: it executes programs before
/// or after register allocation, counts dynamic instructions by spill
/// category (Table 1/2, Figure 3), estimates cycles (the "run time"
/// column), and records an observable output trace used to check that an
/// allocation preserved program semantics.
///
/// Failure-injection switches model the machine contract:
///   - PoisonCallerSaved overwrites caller-saved registers around calls, so
///     code that wrongly keeps a value in a caller-saved register across a
///     call produces a detectably different trace;
///   - CheckCalleeSaved verifies the callee-saved registers are restored on
///     every return.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_VM_VM_H
#define LSRA_VM_VM_H

#include "ir/Module.h"
#include "target/Target.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace lsra {

/// Dynamic execution statistics for one run.
struct RunStats {
  uint64_t Total = 0;  ///< dynamic instructions executed
  uint64_t Cycles = 0; ///< estimated cycles (deterministic model)
  std::array<uint64_t, 9> ByKind{}; ///< indexed by SpillKind

  uint64_t kind(SpillKind K) const {
    return ByKind[static_cast<unsigned>(K)];
  }
  /// Dynamic instructions attributable to allocator spill code (the six
  /// evict/resolve categories; callee-save traffic excluded, matching the
  /// paper's "allocation candidates only" accounting).
  uint64_t spillInstrs() const {
    uint64_t N = 0;
    for (unsigned K = 1; K <= 6; ++K)
      N += ByKind[K];
    return N;
  }
  double spillPercent() const {
    return Total ? 100.0 * static_cast<double>(spillInstrs()) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

struct RunResult {
  bool Ok = false;
  std::string Error;
  int64_t ReturnValue = 0;
  std::vector<uint64_t> Output; ///< Emit/FEmit trace (doubles as bit images)
  RunStats Stats;
};

class VM {
public:
  struct Options {
    uint64_t MaxInstrs = 2'000'000'000;
    unsigned MaxCallDepth = 4096;
    unsigned MinMemWords = 1u << 16;
    bool PoisonCallerSaved = false;
    bool CheckCalleeSaved = false;
  };

  VM(const Module &M, const TargetDesc &TD) : M(M), TD(TD) {}
  VM(const Module &M, const TargetDesc &TD, Options Opts)
      : M(M), TD(TD), Opts(Opts) {}

  /// Execute the function named \p EntryName (default "main") against a
  /// fresh copy of the module's initial memory.
  RunResult run(const std::string &EntryName = "main");

private:
  const Module &M;
  const TargetDesc &TD;
  Options Opts;
};

/// Convenience: run \p M and require success (asserts otherwise). Used by
/// tests and benches.
RunResult runOrDie(const Module &M, const TargetDesc &TD,
                   VM::Options Opts = VM::Options(),
                   const std::string &EntryName = "main");

} // namespace lsra

#endif // LSRA_VM_VM_H
