//===- check/Verifier.cpp -------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Two phases per function.
//
// Phase 1 (matching): the allocated code must be the original instruction
// stream in original order, with virtual registers rewritten to physical
// registers, spill code (SpillKind-tagged) interleaved, and two deletions
// permitted: Nops, and register moves the peephole removed because source
// and destination received the same register. Blocks appended beyond the
// original block count must be resolution blocks created by edge splitting
// (tagged code plus one unconditional branch), and every branch target must
// reach the original successor through the split chain.
//
// Phase 2 (dataflow): a forward must-analysis over the allocated CFG maps
// every location (physical register or frame slot) to the set of original
// values it currently holds. The matching from phase 1 tells the analysis
// which original value every matched operand demands.
//
//===----------------------------------------------------------------------===//

#include "check/Verifier.h"

#include "analysis/Order.h"
#include "ir/Module.h"
#include "obs/DecisionLog.h"
#include "support/BitVector.h"

#include <algorithm>
#include <array>
#include <deque>
#include <sstream>

using namespace lsra;
using namespace lsra::check;

const char *lsra::check::allocErrorKindName(AllocErrorKind K) {
  switch (K) {
  case AllocErrorKind::Structural:
    return "structural";
  case AllocErrorKind::UnresolvedEdge:
    return "unresolved-edge";
  case AllocErrorKind::ClobberedAcrossCall:
    return "clobbered-across-call";
  case AllocErrorKind::StaleAfterEvict:
    return "stale-after-evict";
  case AllocErrorKind::WrongSlot:
    return "wrong-slot";
  case AllocErrorKind::LostValue:
    return "lost-value";
  }
  return "?";
}

std::string AllocError::str() const {
  std::ostringstream OS;
  OS << allocErrorKindName(Kind) << " at " << Func;
  if (Block != NoInfo) {
    OS << ":b" << Block;
    if (InstrIdx != NoInfo)
      OS << "[" << InstrIdx << "]";
  }
  OS << ": " << Detail;
  bool Paren = false;
  auto Sep = [&] {
    OS << (Paren ? ", " : " (");
    Paren = true;
  };
  if (VReg != NoInfo) {
    Sep();
    OS << "temp=v" << VReg;
  }
  if (PReg != NoInfo) {
    Sep();
    OS << "reg=" << obs::pregDisplayName(PReg);
  }
  if (Pos != NoInfo) {
    Sep();
    OS << "pos=" << Pos;
  }
  if (Paren)
    OS << ")";
  return OS.str();
}

std::string VerifyAllocResult::str() const {
  std::ostringstream OS;
  for (unsigned I = 0; I < Errors.size(); ++I) {
    if (I)
      OS << "\n";
    OS << Errors[I].str();
  }
  return OS.str();
}

namespace {

constexpr unsigned MaxErrorsPerFunction = 32;

/// What last wrote a physical register; used only to classify failures.
struct Prov {
  enum Kind : uint8_t {
    Top,         ///< unvisited (meet identity)
    Entry,       ///< untouched since function entry
    Def,         ///< a matched instruction's definition
    SpillMove,   ///< an allocator-inserted register move
    LoadSlot,    ///< an allocator-inserted reload from Slot
    CallClobber, ///< the caller-saved clobber of a call
    Unknown,     ///< paths disagree
  };
  Kind K = Top;
  unsigned Slot = NoInfo;

  bool meet(const Prov &O) {
    if (O.K == Top)
      return false;
    if (K == Top) {
      *this = O;
      return true;
    }
    if (K == O.K && Slot == O.Slot)
      return false;
    if (K == Prov::Unknown)
      return false;
    K = Prov::Unknown;
    Slot = NoInfo;
    return true;
  }
};

/// Abstract machine state: per location, the set of values it holds.
/// Locations: [0, NumPRegs) physical registers, NumPRegs + S frame slots.
/// Values: [0, NumV) original virtual registers, NumV + P the "convention
/// value" sentinel of physical register P.
struct State {
  std::vector<BitVector> Loc;
  std::array<Prov, NumPRegs> RegProv;

  void init(unsigned NumLocs, unsigned NumVals, bool Top) {
    Loc.assign(NumLocs, BitVector(NumVals, Top));
    for (auto &P : RegProv)
      P = Prov();
  }

  bool meet(const State &O) {
    bool Changed = false;
    for (unsigned I = 0; I < Loc.size(); ++I)
      Changed |= (Loc[I] &= O.Loc[I]);
    for (unsigned P = 0; P < NumPRegs; ++P)
      Changed |= RegProv[P].meet(O.RegProv[P]);
    return Changed;
  }

  bool operator==(const State &O) const {
    for (unsigned I = 0; I < Loc.size(); ++I) {
      if (!(Loc[I] == O.Loc[I]))
        return false;
    }
    for (unsigned P = 0; P < NumPRegs; ++P)
      if (RegProv[P].K != O.RegProv[P].K || RegProv[P].Slot != O.RegProv[P].Slot)
        return false;
    return true;
  }
};

/// One step of the interleaved allocated/original walk of a block.
///
/// Register moves are deliberately NOT paired between the two programs:
/// the allocator may coalesce any original move away, implement it purely
/// as spill traffic, or leave it as a physical move, and a structural
/// matcher cannot tell which allocated move implements which original one
/// (two moves with the same source are indistinguishable). Instead every
/// allocated untagged move is a machine copy event (its exact semantics),
/// every original move is a relabel event ("dst's value is now src's
/// value"), and only non-move instructions anchor the two streams 1:1.
/// Between anchors, machine events run first, then relabels — so the state
/// is checked exactly where it matters, at the next real instruction.
struct Event {
  enum Kind : uint8_t {
    SpillCode, ///< allocator-tagged spill/resolve instruction at AllocIdx
    AllocCopy, ///< untagged allocated register move at AllocIdx
    Matched,   ///< AllocIdx is the allocation of original OrigIdx
    OrigMove,  ///< original reg move at OrigIdx (relabel; no pairing)
  };
  Kind K;
  unsigned AllocIdx = NoInfo;
  unsigned OrigIdx = NoInfo;
};

class FunctionVerifier {
public:
  FunctionVerifier(const Function &Orig, const Function &Alloc,
                   const TargetDesc &TD, VerifyAllocResult &R)
      : Orig(Orig), Alloc(Alloc), TD(TD), R(R), ON(Orig) {}

  void run();

private:
  const Function &Orig;
  const Function &Alloc;
  const TargetDesc &TD;
  VerifyAllocResult &R;
  Numbering ON; ///< original linear positions (decision-log cross-reference)

  unsigned NumV = 0, NumVals = 0, NumLocs = 0;
  std::vector<unsigned> SplitTarget; ///< resolveTarget per allocated block
  std::vector<std::vector<Event>> Events;
  bool StructuralFailure = false;
  unsigned ErrorCount = 0;

  // --- error helpers -----------------------------------------------------

  AllocError &addError(AllocErrorKind K, unsigned B, unsigned I,
                       std::string Detail) {
    R.Errors.push_back(AllocError());
    AllocError &E = R.Errors.back();
    E.Kind = K;
    E.Func = Alloc.name();
    E.Block = B;
    E.InstrIdx = I;
    E.Detail = std::move(Detail);
    ++ErrorCount;
    return E;
  }

  bool tooManyErrors() const { return ErrorCount >= MaxErrorsPerFunction; }

  // --- phase 1: structure ------------------------------------------------

  bool computeSplitTargets();
  void checkSplitBlock(unsigned B);
  void checkSplitReachability();
  bool matchBlock(unsigned B);
  bool operandMatches(const Operand &O, const Operand &A) const;
  bool instrMatches(const Instr &OI, const Instr &AI) const;

  // --- phase 2: dataflow -------------------------------------------------

  unsigned valueOf(const Operand &O) const {
    return O.isVReg() ? O.vregId() : NumV + O.pregId();
  }

  void entryState(State &S) const {
    S.init(NumLocs, NumVals, false);
    for (unsigned P = 0; P < NumPRegs; ++P) {
      S.Loc[P].set(NumV + P);
      S.RegProv[P].K = Prov::Entry;
    }
  }

  void killValue(State &S, unsigned Val) const {
    for (auto &L : S.Loc)
      L.reset(Val);
  }

  void transferBlock(unsigned B, State &S, bool Report);
  void transferSpill(const Instr &AI, State &S);
  void transferOrigMove(const Instr &OI, State &S, bool Report, unsigned B,
                        unsigned OrigIdx);
  void transferMatched(const Instr &OI, const Instr &AI, State &S, bool Report,
                       unsigned B, unsigned AllocIdx, unsigned OrigIdx);
  void checkUse(const State &S, unsigned Val, unsigned P, bool Report,
                unsigned B, unsigned AllocIdx, unsigned Pos);
  void solve();
};

bool FunctionVerifier::computeSplitTargets() {
  unsigned NB = Alloc.numBlocks();
  unsigned OrigNB = Orig.numBlocks();
  SplitTarget.assign(NB, NoInfo);
  bool Ok = true;
  for (unsigned B = 0; B < NB; ++B) {
    unsigned Cur = B;
    unsigned Steps = 0;
    while (Cur >= OrigNB) {
      const Block &Blk = Alloc.block(Cur);
      if (!Blk.hasTerminator() || Blk.terminator().opcode() != Opcode::Br ||
          ++Steps > NB) {
        addError(AllocErrorKind::UnresolvedEdge, B, NoInfo,
                 "resolution block chain from b" + std::to_string(B) +
                     " does not reach an original block");
        Cur = NoInfo;
        Ok = false;
        break;
      }
      Cur = Blk.terminator().op(0).labelBlock();
    }
    SplitTarget[B] = Cur;
  }
  return Ok;
}

void FunctionVerifier::checkSplitBlock(unsigned B) {
  const Block &Blk = Alloc.block(B);
  for (unsigned I = 0; I < Blk.size(); ++I) {
    const Instr &AI = Blk.instrs()[I];
    bool Last = I + 1 == Blk.size();
    if (Last) {
      if (AI.opcode() != Opcode::Br || AI.Spill != SpillKind::None)
        addError(AllocErrorKind::UnresolvedEdge, B, I,
                 "resolution block must end in a plain unconditional branch");
      continue;
    }
    if (AI.Spill != SpillKind::ResolveLoad &&
        AI.Spill != SpillKind::ResolveStore &&
        AI.Spill != SpillKind::ResolveMove)
      addError(AllocErrorKind::UnresolvedEdge, B, I,
               "non-resolution code in a split-edge block");
  }
}

void FunctionVerifier::checkSplitReachability() {
  unsigned NB = Alloc.numBlocks();
  std::vector<bool> Seen(NB, false);
  std::deque<unsigned> Work{0};
  Seen[0] = true;
  while (!Work.empty()) {
    unsigned B = Work.front();
    Work.pop_front();
    const Block &Blk = Alloc.block(B);
    if (!Blk.hasTerminator())
      continue;
    for (unsigned S : Blk.successors())
      if (S < NB && !Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  for (unsigned B = Orig.numBlocks(); B < NB; ++B)
    if (!Seen[B])
      addError(AllocErrorKind::UnresolvedEdge, B, NoInfo,
               "resolution block is unreachable (edge split lost its edge)");
}

bool FunctionVerifier::operandMatches(const Operand &O,
                                      const Operand &A) const {
  switch (O.kind()) {
  case Operand::Kind::VReg:
    return A.isPReg() && pregClass(A.pregId()) == Orig.vregClass(O.vregId()) &&
           TD.isAllocatable(A.pregId());
  case Operand::Kind::Label:
    return A.isLabel() && A.labelBlock() < SplitTarget.size() &&
           SplitTarget[A.labelBlock()] == O.labelBlock();
  default:
    return O == A;
  }
}

bool FunctionVerifier::instrMatches(const Instr &OI, const Instr &AI) const {
  if (OI.opcode() != AI.opcode() || AI.Spill != SpillKind::None)
    return false;
  if (OI.CallIntArgs != AI.CallIntArgs || OI.CallFpArgs != AI.CallFpArgs ||
      OI.CallRet != AI.CallRet)
    return false;
  for (unsigned I = 0; I < 3; ++I)
    if (!operandMatches(OI.op(I), AI.op(I)))
      return false;
  return true;
}

bool FunctionVerifier::matchBlock(unsigned B) {
  const Block &OB = Orig.block(B);
  const Block &AB = Alloc.block(B);
  std::vector<Event> &Ev = Events[B];

  // Consume allocated instructions up to (not including) the next anchor
  // candidate: tagged spill code and untagged register moves become machine
  // events, Nops disappear.
  unsigned AIdx = 0;
  auto consumeAllocGap = [&]() -> bool {
    for (; AIdx < AB.size(); ++AIdx) {
      const Instr &AI = AB.instrs()[AIdx];
      if (AI.Spill != SpillKind::None) {
        // Shape-check the spill code here so the dataflow can rely on it.
        bool Good = false;
        switch (AI.opcode()) {
        case Opcode::LdSlot:
        case Opcode::FLdSlot:
        case Opcode::StSlot:
        case Opcode::FStSlot:
          Good = AI.op(0).isPReg() && AI.op(1).isSlot() &&
                 AI.op(1).slotId() < Alloc.numSlots();
          break;
        case Opcode::Mov:
        case Opcode::FMov:
          Good = AI.op(0).isPReg() && AI.op(1).isPReg();
          break;
        default:
          break;
        }
        if (!Good) {
          addError(AllocErrorKind::Structural, B, AIdx,
                   "malformed spill instruction");
          return false;
        }
        Ev.push_back({Event::SpillCode, AIdx, NoInfo});
        continue;
      }
      if (AI.opcode() == Opcode::Nop)
        continue;
      if (AI.isRegMove()) {
        if (!AI.op(0).isPReg() || !AI.op(1).isPReg()) {
          addError(AllocErrorKind::Structural, B, AIdx,
                   "allocated register move still uses a virtual register");
          return false;
        }
        Ev.push_back({Event::AllocCopy, AIdx, NoInfo});
        continue;
      }
      return true; // anchor candidate
    }
    return true;
  };

  for (unsigned OrigIdx = 0; OrigIdx < OB.size(); ++OrigIdx) {
    const Instr &OI = OB.instrs()[OrigIdx];
    if (OI.opcode() == Opcode::Nop)
      continue;
    if (OI.isRegMove()) {
      // Relabel events queue in original order; consumeAllocGap emits the
      // machine events of the same gap before the anchor flushes them.
      Ev.push_back({Event::OrigMove, NoInfo, OrigIdx});
      continue;
    }
    // Anchor: the next non-move allocated instruction must be this one's
    // allocation. Within the gap before it, machine events (spill code,
    // physical moves) are emitted first and the queued relabels after —
    // the abstract state is then checked exactly at the anchor, which is
    // the point where the machine contract has to hold.
    std::vector<Event> Relabels;
    while (!Ev.empty() && Ev.back().K == Event::OrigMove) {
      Relabels.push_back(Ev.back());
      Ev.pop_back();
    }
    if (!consumeAllocGap())
      return false;
    for (auto It = Relabels.rbegin(); It != Relabels.rend(); ++It)
      Ev.push_back(*It);
    if (AIdx >= AB.size()) {
      addError(AllocErrorKind::Structural, B, AB.size() ? AB.size() - 1 : 0,
               std::string("original instruction '") +
                   opcodeName(OI.opcode()) + "' (index " +
                   std::to_string(OrigIdx) + ") is missing from the "
                   "allocated block");
      return false;
    }
    const Instr &AI = AB.instrs()[AIdx];
    if (!instrMatches(OI, AI)) {
      AllocErrorKind K = OI.isTerminator() && AI.isTerminator()
                             ? AllocErrorKind::UnresolvedEdge
                             : AllocErrorKind::Structural;
      addError(K, B, AIdx,
               std::string("allocated instruction does not correspond to "
                           "original '") +
                   opcodeName(OI.opcode()) + "' (original index " +
                   std::to_string(OrigIdx) + ")");
      return false;
    }
    Ev.push_back({Event::Matched, AIdx, OrigIdx});
    ++AIdx;
  }
  // Trailing relabels stay queued; drain any remaining allocated tail.
  {
    std::vector<Event> Relabels;
    while (!Ev.empty() && Ev.back().K == Event::OrigMove) {
      Relabels.push_back(Ev.back());
      Ev.pop_back();
    }
    if (!consumeAllocGap())
      return false;
    for (auto It = Relabels.rbegin(); It != Relabels.rend(); ++It)
      Ev.push_back(*It);
  }
  if (AIdx < AB.size()) {
    addError(AllocErrorKind::Structural, B, AIdx,
             "allocated instruction beyond the end of the original block");
    return false;
  }
  return true;
}

void FunctionVerifier::checkUse(const State &S, unsigned Val, unsigned P,
                                bool Report, unsigned B, unsigned AllocIdx,
                                unsigned Pos) {
  if (!Report || tooManyErrors())
    return;
  if (S.Loc[P].test(Val))
    return;
  // Classify: what does P hold instead, and where does the value live?
  const Prov &PV = S.RegProv[P];
  bool Elsewhere = false;
  unsigned HomeSlot = NoInfo;
  for (unsigned L = 0; L < NumLocs; ++L)
    if (S.Loc[L].test(Val)) {
      Elsewhere = true;
      if (L >= NumPRegs && HomeSlot == NoInfo)
        HomeSlot = L - NumPRegs;
    }
  AllocErrorKind K;
  std::string Why;
  if (PV.K == Prov::CallClobber) {
    K = AllocErrorKind::ClobberedAcrossCall;
    Why = "value read from a register a call clobbered";
  } else if (PV.K == Prov::LoadSlot && Elsewhere && HomeSlot != NoInfo &&
             HomeSlot != PV.Slot) {
    K = AllocErrorKind::WrongSlot;
    Why = "register was reloaded from slot " + std::to_string(PV.Slot) +
          " but the value lives in slot " + std::to_string(HomeSlot);
  } else if (Elsewhere) {
    K = AllocErrorKind::StaleAfterEvict;
    Why = "register no longer holds the value (it lives ";
    Why += HomeSlot != NoInfo ? "in slot " + std::to_string(HomeSlot)
                              : "in another register";
    Why += ")";
  } else {
    K = AllocErrorKind::LostValue;
    Why = "value is in no register or slot on some path";
  }
  AllocError &E = addError(K, B, AllocIdx, "use of " +
                                               (Val < NumV
                                                    ? "v" + std::to_string(Val)
                                                    : "the convention value "
                                                      "of " +
                                                          obs::pregDisplayName(
                                                              Val - NumV)) +
                                               ": " + Why);
  if (Val < NumV)
    E.VReg = Val;
  E.PReg = P;
  E.Pos = Pos;
}

void FunctionVerifier::transferSpill(const Instr &AI, State &S) {
  switch (AI.opcode()) {
  case Opcode::LdSlot:
  case Opcode::FLdSlot: {
    unsigned D = AI.op(0).pregId();
    unsigned Slot = AI.op(1).slotId();
    S.Loc[D] = S.Loc[NumPRegs + Slot];
    S.RegProv[D] = {Prov::LoadSlot, Slot};
    return;
  }
  case Opcode::StSlot:
  case Opcode::FStSlot:
    S.Loc[NumPRegs + AI.op(1).slotId()] = S.Loc[AI.op(0).pregId()];
    return;
  case Opcode::Mov:
  case Opcode::FMov: {
    unsigned D = AI.op(0).pregId();
    S.Loc[D] = S.Loc[AI.op(1).pregId()];
    S.RegProv[D] = {Prov::SpillMove, NoInfo};
    return;
  }
  default:
    return; // flagged structurally already
  }
}

void FunctionVerifier::transferOrigMove(const Instr &OI, State &S,
                                        bool Report, unsigned B,
                                        unsigned OrigIdx) {
  // Original `dst = src` relabel: after the copy, dst's value is src's
  // value, so every location that holds src's value holds dst's too. The
  // machine-side implementation (a physical move, spill traffic, or nothing
  // at all when coalesced) has already been applied as machine events. If
  // the destination is a fixed register, the register really must hold the
  // source value by the end of the gap this move sits in.
  unsigned SrcVal = valueOf(OI.op(1));
  const Operand &Dst = OI.op(0);
  unsigned Pos = Numbering::usePos(ON.instrIndex(B, OrigIdx));
  if (Dst.isPReg()) {
    checkUse(S, SrcVal, Dst.pregId(), Report, B, NoInfo, Pos);
    unsigned DVal = NumV + Dst.pregId();
    killValue(S, DVal);
    S.Loc[Dst.pregId()].set(DVal);
    return;
  }
  unsigned DVal = Dst.vregId();
  killValue(S, DVal);
  for (unsigned L = 0; L < NumLocs; ++L)
    if (S.Loc[L].test(SrcVal))
      S.Loc[L].set(DVal);
}

void FunctionVerifier::transferMatched(const Instr &OI, const Instr &AI,
                                       State &S, bool Report, unsigned B,
                                       unsigned AllocIdx, unsigned OrigIdx) {
  unsigned Idx = ON.instrIndex(B, OrigIdx);
  // 1. Uses read the pre-state.
  unsigned D = OI.numDefSlots();
  for (unsigned U = 0; U < OI.numUseSlots(); ++U) {
    const Operand &O = OI.op(D + U);
    if (!O.isReg())
      continue;
    checkUse(S, valueOf(O), AI.op(D + U).pregId(), Report, B, AllocIdx,
             Numbering::usePos(Idx));
  }
  if (OI.isCall()) {
    for (unsigned A = 0; A < OI.CallIntArgs; ++A) {
      unsigned P = TargetDesc::intArgReg(A);
      checkUse(S, NumV + P, P, Report, B, AllocIdx, Numbering::usePos(Idx));
    }
    for (unsigned A = 0; A < OI.CallFpArgs; ++A) {
      unsigned P = TargetDesc::fpArgReg(A);
      checkUse(S, NumV + P, P, Report, B, AllocIdx, Numbering::usePos(Idx));
    }
    // 2. The caller-saved set dies.
    forEachClobberedReg(AI, TD, [&](unsigned P) {
      S.Loc[P].clear();
      S.RegProv[P] = {Prov::CallClobber, NoInfo};
    });
    if (OI.CallRet != CallRetKind::None) {
      unsigned P = TargetDesc::retReg(
          OI.CallRet == CallRetKind::Int ? RegClass::Int : RegClass::Float);
      killValue(S, NumV + P);
      S.Loc[P].clear();
      S.Loc[P].set(NumV + P);
      S.RegProv[P] = {Prov::Def, NoInfo};
    }
    return;
  }
  // Untagged slot stores are program stores to a local frame slot.
  if (OI.opcode() == Opcode::StSlot || OI.opcode() == Opcode::FStSlot) {
    S.Loc[NumPRegs + AI.op(1).slotId()] = S.Loc[AI.op(0).pregId()];
    return;
  }
  // 3. The definition: the defined value dies everywhere, then lives in the
  // destination register. Slot loads additionally keep the slot's set (the
  // loaded bits equal the slot's bits).
  if (D == 1) {
    unsigned DVal = valueOf(OI.op(0));
    unsigned DP = AI.op(0).pregId();
    killValue(S, DVal);
    if (OI.opcode() == Opcode::LdSlot || OI.opcode() == Opcode::FLdSlot) {
      S.Loc[DP] = S.Loc[NumPRegs + AI.op(1).slotId()];
    } else {
      S.Loc[DP].clear();
    }
    S.Loc[DP].set(DVal);
    S.RegProv[DP] = {Prov::Def, NoInfo};
  }
}

void FunctionVerifier::transferBlock(unsigned B, State &S, bool Report) {
  if (B >= Orig.numBlocks()) {
    for (const Instr &AI : Alloc.block(B).instrs())
      if (AI.Spill != SpillKind::None)
        transferSpill(AI, S);
    return;
  }
  const Block &AB = Alloc.block(B);
  const Block &OB = Orig.block(B);
  for (const Event &E : Events[B]) {
    switch (E.K) {
    case Event::SpillCode:
    case Event::AllocCopy: // untagged physical move: same machine semantics
      transferSpill(AB.instrs()[E.AllocIdx], S);
      break;
    case Event::OrigMove:
      transferOrigMove(OB.instrs()[E.OrigIdx], S, Report, B, E.OrigIdx);
      break;
    case Event::Matched:
      transferMatched(OB.instrs()[E.OrigIdx], AB.instrs()[E.AllocIdx], S,
                      Report, B, E.AllocIdx, E.OrigIdx);
      break;
    }
  }
}

void FunctionVerifier::solve() {
  unsigned NB = Alloc.numBlocks();
  std::vector<State> In(NB), Out(NB);
  for (unsigned B = 0; B < NB; ++B) {
    In[B].init(NumLocs, NumVals, true);
    Out[B].init(NumLocs, NumVals, true);
  }
  entryState(In[0]);

  auto Preds = Alloc.predecessors();
  std::vector<unsigned> RPO = reversePostOrder(Alloc);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (unsigned B : RPO) {
      // The entry block's in-state starts at the machine contract and still
      // meets its predecessors: a branch back to the entry block must agree
      // with the entry state on every location it relies on.
      for (unsigned P : Preds[B])
        In[B].meet(Out[P]);
      State S = In[B];
      transferBlock(B, S, /*Report=*/false);
      if (!(S == Out[B])) {
        Out[B] = std::move(S);
        Changed = true;
      }
    }
  }

  for (unsigned B = 0; B < NB && !tooManyErrors(); ++B) {
    State S = In[B];
    transferBlock(B, S, /*Report=*/true);
  }
}

void FunctionVerifier::run() {
  NumV = Orig.numVRegs();
  NumVals = NumV + NumPRegs;
  NumLocs = NumPRegs + Alloc.numSlots();

  if (Alloc.numBlocks() < Orig.numBlocks()) {
    addError(AllocErrorKind::Structural, NoInfo, NoInfo,
             "allocated function has fewer blocks than the original");
    return;
  }
  if (!computeSplitTargets())
    return;
  for (unsigned B = Orig.numBlocks(); B < Alloc.numBlocks(); ++B)
    checkSplitBlock(B);
  checkSplitReachability();

  Events.assign(Orig.numBlocks(), {});
  bool MatchOk = true;
  for (unsigned B = 0; B < Orig.numBlocks(); ++B)
    MatchOk &= matchBlock(B);
  if (!MatchOk || !R.Errors.empty())
    return; // the dataflow needs a sound matching
  solve();
}

} // namespace

VerifyAllocResult lsra::check::verifyAllocation(const Function &Orig,
                                                const Function &Alloc,
                                                const TargetDesc &TD) {
  VerifyAllocResult R;
  FunctionVerifier(Orig, Alloc, TD, R).run();
  return R;
}

VerifyAllocResult lsra::check::verifyAllocation(const Module &Orig,
                                                const Module &Alloc,
                                                const TargetDesc &TD) {
  VerifyAllocResult R;
  if (Orig.numFunctions() != Alloc.numFunctions()) {
    AllocError E;
    E.Kind = AllocErrorKind::Structural;
    E.Func = "<module>";
    E.Detail = "function count changed during allocation";
    R.Errors.push_back(E);
    return R;
  }
  for (unsigned I = 0; I < Orig.numFunctions(); ++I) {
    VerifyAllocResult FR =
        verifyAllocation(Orig.function(I), Alloc.function(I), TD);
    R.Errors.insert(R.Errors.end(), FR.Errors.begin(), FR.Errors.end());
  }
  return R;
}
