//===- check/Verifier.h - Allocation verifier ------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translation-validation style checker for register allocation. Given the
/// exact pre-allocation IR a register allocator consumed (post lowering and
/// DCE) and the allocated function it produced, the verifier proves that
/// every use in the allocated code reads the value the original IR demanded.
///
/// The proof is an abstract-interpretation dataflow over the allocated code:
/// each location (the 64 physical registers plus every frame slot) is mapped
/// to the set of original virtual values whose *current* value it holds.
/// Allocator-inserted spill code (tagged with a SpillKind) transfers value
/// sets between locations; matched program instructions check their uses
/// against the state and then kill/define values; calls clobber the
/// caller-saved set; joins intersect (a value must be present along every
/// path). Fixed convention registers ($16-$21 arguments, $0/$f0 returns) are
/// tracked with per-register sentinel values so spill code wrongly inserted
/// between an argument move and its call is caught too.
///
/// Failures are classified for triage:
///   - ClobberedAcrossCall: the register was last written by a call clobber.
///   - WrongSlot:           the register was last filled from frame slot S,
///                          but the demanded value lives in a different slot.
///   - StaleAfterEvict:     the value exists elsewhere (its home slot or
///                          another register) but this register holds
///                          something stale.
///   - LostValue:           the value is in no location on some path.
///   - UnresolvedEdge:      CFG structure: a branch target does not
///                          correspond to the original edge, or a
///                          resolution (split-edge) block is malformed.
///   - Structural:          the allocated code is not the original
///                          instruction stream with operands rewritten and
///                          spill code interleaved.
///
/// Every error pinpoints the allocated instruction (function, block,
/// instruction index) and carries the original virtual register, physical
/// register, and linear position, so it cross-references the decision log
/// (`--explain`) records directly.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_CHECK_VERIFIER_H
#define LSRA_CHECK_VERIFIER_H

#include "target/Target.h"

#include <string>
#include <vector>

namespace lsra {

class Function;
class Module;

namespace check {

enum class AllocErrorKind : uint8_t {
  Structural,
  UnresolvedEdge,
  ClobberedAcrossCall,
  StaleAfterEvict,
  WrongSlot,
  LostValue,
};

const char *allocErrorKindName(AllocErrorKind K);

constexpr unsigned NoInfo = ~0u;

/// One verification failure, pinpointed in the allocated code.
struct AllocError {
  AllocErrorKind Kind = AllocErrorKind::Structural;
  std::string Func;
  unsigned Block = NoInfo;    ///< allocated block id
  unsigned InstrIdx = NoInfo; ///< instruction index within the block
  unsigned VReg = NoInfo;     ///< original virtual register, if applicable
  unsigned PReg = NoInfo;     ///< physical register read, if applicable
  unsigned Pos = NoInfo;      ///< original linear position (decision log)
  std::string Detail;

  /// "stale-after-evict at main:b2[4]: use of v17 in $3 (pos 42): ..."
  std::string str() const;
};

struct VerifyAllocResult {
  std::vector<AllocError> Errors;
  bool ok() const { return Errors.empty(); }
  /// All errors, one per line; empty when the allocation verified.
  std::string str() const;
};

/// Verify that \p Alloc is a faithful allocation of \p Orig. \p Orig must be
/// the allocator's exact input (calls lowered, DCE already run); \p Alloc is
/// the final pipeline output (allocation + peephole + callee saves).
VerifyAllocResult verifyAllocation(const Function &Orig, const Function &Alloc,
                                   const TargetDesc &TD);

/// Module-wise verification (functions are matched by id; a mismatched
/// function count is itself an error).
VerifyAllocResult verifyAllocation(const Module &Orig, const Module &Alloc,
                                   const TargetDesc &TD);

} // namespace check
} // namespace lsra

#endif // LSRA_CHECK_VERIFIER_H
