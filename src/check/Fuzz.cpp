//===- check/Fuzz.cpp -----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "check/Fuzz.h"

#include "cache/CompileCache.h"
#include "check/Clone.h"
#include "check/Reduce.h"
#include "check/Verifier.h"
#include "driver/Pipeline.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/IRVerifier.h"
#include "passes/DCE.h"
#include "regalloc/Registry.h"
#include "target/LowerCalls.h"
#include "vm/VM.h"

#include <fstream>
#include <ostream>
#include <sstream>

using namespace lsra;
using namespace lsra::check;

namespace {

TargetDesc targetFor(unsigned RegLimit) {
  TargetDesc TD = TargetDesc::alphaLike();
  return RegLimit ? TD.withRegLimit(RegLimit, RegLimit) : TD;
}

OracleResult fail(const char *Kind, std::string Detail) {
  OracleResult R;
  R.St = OracleResult::Fail;
  R.Kind = Kind;
  R.Detail = std::move(Detail);
  return R;
}

/// Cache-differential oracle: compile \p Text twice against the shared
/// \p Cache — cold (populating it, with the allocation verifier on) and
/// warm — and demand that the warm compile is a hit whose allocated text
/// and statistics are byte-identical to the cold result. Any divergence
/// means the cache key is too coarse (two distinct compiles collided) or
/// the hit path corrupted the stored module. Empty string = pass.
std::string runCacheDifferential(const std::string &Text, AllocatorKind K,
                                 unsigned RegLimit,
                                 cache::CompileCache &Cache) {
  TargetDesc TD = targetFor(RegLimit);
  ExecOptions EO;
  EO.VerifyAlloc = true;
  EO.Cache = &Cache;
  TextCompileResult Cold = compileTextModule(Text, TD, K, {}, EO);
  if (!Cold.Ok)
    return "cold compile failed: " + Cold.Error;
  TextCompileResult Warm = compileTextModule(Text, TD, K, {}, EO);
  if (!Warm.Ok)
    return "warm compile failed: " + Warm.Error;
  if (!Warm.CacheHit)
    return "second compile of identical text missed the cache";
  if (Warm.AllocatedText != Cold.AllocatedText)
    return "cached allocated text differs from the cold compile";
  if (Warm.Stats.SpilledTemps != Cold.Stats.SpilledTemps ||
      Warm.Stats.RegCandidates != Cold.Stats.RegCandidates ||
      Warm.Stats.MovesCoalesced != Cold.Stats.MovesCoalesced ||
      Warm.Stats.LifetimeSplits != Cold.Stats.LifetimeSplits)
    return "cached statistics differ from the cold compile";
  return "";
}

} // namespace

OracleResult lsra::check::runOracle(const std::string &IRText, AllocatorKind K,
                                    unsigned RegLimit, bool SpillCleanup) {
  OracleResult R;
  ParseResult P = parseModule(IRText);
  if (!P.ok()) {
    R.St = OracleResult::Malformed;
    R.Detail = "parse: " + P.Error;
    return R;
  }
  std::string Diag = verifyModule(*P.M);
  if (!Diag.empty()) {
    R.St = OracleResult::Malformed;
    R.Detail = "verify: " + Diag;
    return R;
  }

  TargetDesc TD = targetFor(RegLimit);
  // Lower and DCE in place, leaving P.M as the exact module every allocator
  // consumes — the verifier's Orig snapshot. The instruction budget is far
  // above any generated program but low enough that reduction candidates
  // which break a loop counter reject quickly.
  lowerCalls(*P.M);
  eliminateDeadCode(*P.M, TD);
  VM::Options RefOpts;
  RefOpts.MaxInstrs = 50'000'000;
  RunResult Ref = VM(*P.M, TD, RefOpts).run();

  std::unique_ptr<Module> AM = cloneModule(*P.M);
  AllocOptions AO;
  AO.SpillCleanup = SpillCleanup;
  allocateModule(*AM, TD, K, AO);

  Diag = checkAllocated(*AM);
  if (!Diag.empty())
    return fail("structural", Diag);

  VerifyAllocResult VR = verifyAllocation(*P.M, *AM, TD);
  if (!VR.ok())
    return fail("verifier", VR.str());

  VM::Options GotOpts = RefOpts;
  GotOpts.PoisonCallerSaved = true;
  GotOpts.CheckCalleeSaved = true;
  RunResult Got = VM(*AM, TD, GotOpts).run();
  if (Ref.Ok != Got.Ok)
    return fail("vm-error", std::string("reference ") +
                                (Ref.Ok ? "succeeded" : "failed") +
                                " but allocated run " +
                                (Got.Ok ? "succeeded" : "failed: " + Got.Error));
  if (!Ref.Ok)
    return R; // both runs failed the same way the program demands; no oracle
  if (Ref.ReturnValue != Got.ReturnValue)
    return fail("mismatch", "return value " + std::to_string(Got.ReturnValue) +
                                " != reference " +
                                std::to_string(Ref.ReturnValue));
  if (Ref.Output != Got.Output) {
    unsigned I = 0;
    while (I < Ref.Output.size() && I < Got.Output.size() &&
           Ref.Output[I] == Got.Output[I])
      ++I;
    std::ostringstream OS;
    OS << "output trace diverges at element " << I << " (reference has "
       << Ref.Output.size() << " elements, allocated " << Got.Output.size()
       << ")";
    return fail("mismatch", OS.str());
  }
  return R;
}

FuzzReport lsra::check::runDifferentialFuzz(const FuzzOptions &Opts,
                                            std::ostream *Progress) {
  FuzzReport Report;
  std::vector<bool> Cleanups{false};
  if (Opts.WithSpillCleanup)
    Cleanups.push_back(true);
  std::vector<AllocatorKind> Allocators = Opts.Allocators;
  if (Allocators.empty())
    Allocators = AllocatorRegistry::global().kinds();

  // One cache for the whole run, so cross-program (and cross-allocator)
  // collisions are part of what the differential tests.
  std::unique_ptr<cache::CompileCache> DiffCache;
  if (Opts.WithCache)
    DiffCache = std::make_unique<cache::CompileCache>();

  for (unsigned I = 0; I < Opts.Count; ++I) {
    uint64_t Seed = Opts.SeedStart + I;
    std::unique_ptr<Module> M = buildRandomProgram(Seed, Opts.Program);
    std::ostringstream OS;
    printModule(OS, *M);
    std::string Text = OS.str();
    ++Report.Programs;

    for (unsigned Regs : Opts.RegLimits) {
      for (AllocatorKind K : Allocators) {
        for (bool Cleanup : Cleanups) {
          ++Report.Runs;
          OracleResult O = runOracle(Text, K, Regs, Cleanup);
          if (!O.fail())
            continue;

          FuzzFinding F;
          F.Seed = Seed;
          F.Regs = Regs;
          F.K = K;
          F.SpillCleanup = Cleanup;
          F.Kind = O.Kind;
          F.Detail = O.Detail;
          F.Program = Text;
          F.Reduced = Text;
          if (Progress)
            *Progress << "fuzz: FINDING seed=" << Seed << " allocator="
                      << allocatorName(K) << " regs=" << Regs
                      << (Cleanup ? " cleanup" : "") << " " << O.Kind << ": "
                      << O.Detail << "\n";
          if (Opts.Reduce) {
            ReduceResult RR = reduceProgram(Text, K, Regs, Cleanup);
            F.Reduced = RR.Text;
            if (Progress)
              *Progress << "fuzz: reduced seed=" << Seed << " from "
                        << RR.OriginalInstrs << " to " << RR.FinalInstrs
                        << " instructions\n";
          }
          if (!Opts.CorpusDir.empty()) {
            std::string Name = Opts.CorpusDir + "/seed" + std::to_string(Seed) +
                               "_" + allocatorName(K) + "_r" +
                               std::to_string(Regs) +
                               (Cleanup ? "_cleanup" : "") + ".ir";
            std::ofstream Out(Name);
            if (Out) {
              // Replayable header: corpus_test re-runs the oracle with the
              // exact configuration that failed.
              Out << "; oracle: allocator=" << allocatorName(K)
                  << " regs=" << Regs << " cleanup=" << (Cleanup ? 1 : 0)
                  << " seed=" << Seed << " kind=" << O.Kind << "\n";
              Out << F.Reduced;
              F.CorpusFile = Name;
            }
          }
          Report.Findings.push_back(std::move(F));
          if (Report.Findings.size() >= Opts.MaxFindings)
            return Report;
        }
      }
    }
    // Cache-differential pass: one configuration per allocator (the first
    // register limit), since the point is the cache key, not the allocator.
    if (DiffCache) {
      unsigned Regs = Opts.RegLimits.empty() ? 0 : Opts.RegLimits.front();
      for (AllocatorKind K : Allocators) {
        ++Report.Runs;
        std::string Detail = runCacheDifferential(Text, K, Regs, *DiffCache);
        if (Detail.empty())
          continue;
        FuzzFinding F;
        F.Seed = Seed;
        F.Regs = Regs;
        F.K = K;
        F.Kind = "cache-differential";
        F.Detail = Detail;
        F.Program = Text;
        F.Reduced = Text;
        if (Progress)
          *Progress << "fuzz: FINDING seed=" << Seed << " allocator="
                    << allocatorName(K) << " regs=" << Regs
                    << " cache-differential: " << Detail << "\n";
        Report.Findings.push_back(std::move(F));
        if (Report.Findings.size() >= Opts.MaxFindings)
          return Report;
      }
    }

    if (Progress && (I + 1) % 25 == 0)
      *Progress << "fuzz: " << (I + 1) << "/" << Opts.Count << " programs, "
                << Report.Runs << " runs, " << Report.Findings.size()
                << " findings\n";
  }
  return Report;
}
