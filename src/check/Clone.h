//===- check/Clone.h - Deep copy of modules and functions -----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep copies of IR. The allocation verifier compares an allocated function
/// against the exact IR the allocator consumed, so the pipeline snapshots a
/// clone after lowering + DCE and before register assignment. Blocks and
/// instructions are value types; cloning is a structural copy that preserves
/// every id space (blocks, vregs, slots, functions).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_CHECK_CLONE_H
#define LSRA_CHECK_CLONE_H

#include "ir/Module.h"

#include <memory>

namespace lsra {

/// Copy \p F into \p Dst (which must be freshly created: no blocks, vregs,
/// or slots yet). Block, vreg, and slot ids are preserved.
void cloneFunctionInto(const Function &F, Function &Dst);

/// Deep copy of \p M, preserving function ids and the initial memory image.
std::unique_ptr<Module> cloneModule(const Module &M);

} // namespace lsra

#endif // LSRA_CHECK_CLONE_H
