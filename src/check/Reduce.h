//===- check/Reduce.h - Test-case minimization -----------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// ddmin-style reduction for differential-fuzzing findings (`lsra reduce`):
/// repeatedly delete chunks of non-terminator instructions and simplify
/// conditional branches, keeping a candidate only when it still parses,
/// verifies, and still fails the differential oracle for the same
/// (allocator, register limit) configuration. The result is the minimized
/// reproducer checked into tests/corpus/.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_CHECK_REDUCE_H
#define LSRA_CHECK_REDUCE_H

#include "regalloc/Allocator.h"

#include <string>

namespace lsra {
namespace check {

struct ReduceResult {
  std::string Text;            ///< minimized program (== input if irreducible)
  unsigned OriginalInstrs = 0;
  unsigned FinalInstrs = 0;
  unsigned Rounds = 0;
};

/// Minimize \p IRText while `runOracle(text, K, RegLimit, SpillCleanup)`
/// keeps failing. Safe on non-failing input (returns it unchanged).
ReduceResult reduceProgram(const std::string &IRText, AllocatorKind K,
                           unsigned RegLimit, bool SpillCleanup = false);

} // namespace check
} // namespace lsra

#endif // LSRA_CHECK_REDUCE_H
