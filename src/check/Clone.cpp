//===- check/Clone.cpp ----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "check/Clone.h"

using namespace lsra;

void lsra::cloneFunctionInto(const Function &F, Function &Dst) {
  assert(Dst.numBlocks() == 0 && Dst.numVRegs() == 0 && Dst.numSlots() == 0 &&
         "destination function must be empty");
  for (unsigned V = 0; V < F.numVRegs(); ++V)
    Dst.newVReg(F.vregClass(V));
  for (unsigned S = 0; S < F.numSlots(); ++S)
    Dst.newSlot(F.slotClass(S));
  for (const Block &B : F.blocks()) {
    Block &NB = Dst.addBlock(B.name());
    for (const Instr &I : B.instrs())
      NB.append(I);
  }
  Dst.IntParamVRegs = F.IntParamVRegs;
  Dst.FpParamVRegs = F.FpParamVRegs;
  Dst.RetKind = F.RetKind;
  Dst.CallsLowered = F.CallsLowered;
}

std::unique_ptr<Module> lsra::cloneModule(const Module &M) {
  auto Copy = std::make_unique<Module>();
  for (const auto &F : M.functions())
    cloneFunctionInto(*F, Copy->addFunction(F->name()));
  Copy->InitialMemory = M.InitialMemory;
  return Copy;
}
