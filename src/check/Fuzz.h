//===- check/Fuzz.h - Differential allocator fuzzing -----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzing harness behind `lsra fuzz`: seeded random
/// programs (workloads/RandomProgram) are compiled with every allocator at
/// several register limits; each compile must pass the structural IR
/// verifier and the allocation verifier, and executing the allocated code
/// (with caller-saved poisoning and callee-saved checking) must reproduce
/// the virtual-register reference run's output trace and return value.
/// Any failure is a finding; findings are minimized by check/Reduce and can
/// be written to a corpus directory for regression replay.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_CHECK_FUZZ_H
#define LSRA_CHECK_FUZZ_H

#include "regalloc/Allocator.h"
#include "workloads/RandomProgram.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace lsra {
namespace check {

/// One differential-oracle verdict for (program, allocator, register limit).
struct OracleResult {
  enum Status : uint8_t {
    Pass,      ///< allocation verified and behaviour matched
    Malformed, ///< the input program itself does not parse/verify
    Fail,      ///< wrong allocation: Kind/Detail describe the failure
  };
  Status St = Pass;
  std::string Kind;   ///< "structural" | "verifier" | "vm-error" | "mismatch"
  std::string Detail;

  bool pass() const { return St == Pass; }
  bool fail() const { return St == Fail; }
};

/// Run the full differential oracle on one textual module: compile with
/// allocator \p K at register limit \p RegLimit (0 = full machine), check the
/// structural verifier + allocation verifier, then compare the allocated
/// run against the reference run.
OracleResult runOracle(const std::string &IRText, AllocatorKind K,
                       unsigned RegLimit, bool SpillCleanup = false);

struct FuzzOptions {
  uint64_t SeedStart = 1;
  unsigned Count = 100;
  /// Register limits to stress (0 = the full 25-per-class machine). Small
  /// limits force eviction, second chance, and resolution onto every path.
  std::vector<unsigned> RegLimits = {0, 8, 4};
  /// Allocators to grid over. Empty (the default) means every backend in
  /// the AllocatorRegistry — a newly registered backend joins the
  /// differential grid without touching the fuzzer.
  std::vector<AllocatorKind> Allocators = {};
  /// Also run every configuration with the spill-cleanup pass enabled.
  bool WithSpillCleanup = true;
  RandomProgramOptions Program;
  bool Reduce = true;          ///< minimize findings with check/Reduce
  std::string CorpusDir;      ///< when set, write failing programs here
  unsigned MaxFindings = 8;   ///< stop fuzzing after this many findings
  /// Cache-differential mode: additionally compile each (program,
  /// allocator) pair through compileTextModule twice against one shared
  /// compile cache — cold, then warm — and require the warm (cached)
  /// result to be byte-identical to the cold one and to pass the
  /// allocation verifier. Catches any cache key that is too coarse.
  bool WithCache = true;
};

struct FuzzFinding {
  uint64_t Seed = 0;
  unsigned Regs = 0; ///< register limit (0 = full machine)
  AllocatorKind K = AllocatorKind::SecondChanceBinpack;
  bool SpillCleanup = false;
  std::string Kind;
  std::string Detail;
  std::string Program;    ///< the generated program text
  std::string Reduced;    ///< minimized reproducer (== Program if not reduced)
  std::string CorpusFile; ///< file written under CorpusDir, if any
};

struct FuzzReport {
  unsigned Programs = 0;
  unsigned Runs = 0;
  std::vector<FuzzFinding> Findings;
  bool clean() const { return Findings.empty(); }
};

/// Run the differential fuzz loop. \p Progress (may be null) receives
/// one-line progress and finding reports.
FuzzReport runDifferentialFuzz(const FuzzOptions &Opts,
                               std::ostream *Progress = nullptr);

} // namespace check
} // namespace lsra

#endif // LSRA_CHECK_FUZZ_H
