//===- check/Reduce.cpp ---------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "check/Reduce.h"

#include "check/Clone.h"
#include "check/Fuzz.h"
#include "ir/IRVerifier.h"
#include "ir/Parser.h"
#include "ir/Printer.h"

#include <algorithm>
#include <sstream>

using namespace lsra;
using namespace lsra::check;

namespace {

/// One deletable instruction, addressed in the current module.
struct Site {
  unsigned F, B, I;
};

constexpr unsigned MaxOracleCalls = 2000;
constexpr unsigned MaxRounds = 12;

std::string printText(const Module &M) {
  std::ostringstream OS;
  printModule(OS, M);
  return OS.str();
}

std::vector<Site> removableSites(const Module &M) {
  std::vector<Site> Sites;
  for (unsigned F = 0; F < M.numFunctions(); ++F) {
    const Function &Fn = M.function(F);
    for (unsigned B = 0; B < Fn.numBlocks(); ++B) {
      const Block &Blk = Fn.block(B);
      for (unsigned I = 0; I < Blk.size(); ++I)
        if (!Blk.instrs()[I].isTerminator())
          Sites.push_back({F, B, I});
    }
  }
  return Sites;
}

std::unique_ptr<Module> withRemoved(const Module &M,
                                    const std::vector<Site> &Sites,
                                    size_t Lo, size_t Hi) {
  auto C = cloneModule(M);
  // Erase highest index first within each block so indices stay valid.
  std::vector<Site> Del(Sites.begin() + Lo, Sites.begin() + Hi);
  std::sort(Del.begin(), Del.end(), [](const Site &A, const Site &B) {
    return std::tie(A.F, A.B, B.I) < std::tie(B.F, B.B, A.I);
  });
  for (const Site &S : Del)
    C->function(S.F).block(S.B).eraseInstr(S.I);
  return C;
}

unsigned countInstrs(const Module &M) {
  unsigned N = 0;
  for (const auto &F : M.functions())
    N += F->numInstrs();
  return N;
}

class Reducer {
public:
  Reducer(AllocatorKind K, unsigned Regs, bool Cleanup)
      : K(K), Regs(Regs), Cleanup(Cleanup) {}

  /// Does \p M still parse, verify, and fail the oracle?
  bool interesting(const Module &M) {
    if (Calls >= MaxOracleCalls)
      return false;
    if (!verifyModule(M).empty())
      return false;
    ++Calls;
    return runOracle(printText(M), K, Regs, Cleanup).fail();
  }

  bool budgetLeft() const { return Calls < MaxOracleCalls; }

private:
  AllocatorKind K;
  unsigned Regs;
  bool Cleanup;
  unsigned Calls = 0;
};

} // namespace

ReduceResult lsra::check::reduceProgram(const std::string &IRText,
                                        AllocatorKind K, unsigned RegLimit,
                                        bool SpillCleanup) {
  ReduceResult R;
  R.Text = IRText;
  ParseResult P = parseModule(IRText);
  if (!P.ok())
    return R;
  Reducer Red(K, RegLimit, SpillCleanup);
  R.OriginalInstrs = R.FinalInstrs = countInstrs(*P.M);
  if (!Red.interesting(*P.M))
    return R; // not a failing input; nothing to minimize

  std::unique_ptr<Module> Cur = std::move(P.M);
  bool Changed = true;
  while (Changed && R.Rounds < MaxRounds && Red.budgetLeft()) {
    Changed = false;
    ++R.Rounds;

    // ddmin over the deletable instructions: try chunks from half the list
    // down to single instructions, restarting the window scan after a hit.
    std::vector<Site> Sites = removableSites(*Cur);
    for (size_t Chunk = std::max<size_t>(1, Sites.size() / 2); Chunk >= 1;
         Chunk /= 2) {
      bool Hit = true;
      while (Hit && Red.budgetLeft()) {
        Hit = false;
        for (size_t Lo = 0; Lo + Chunk <= Sites.size(); Lo += Chunk) {
          auto Cand = withRemoved(*Cur, Sites, Lo, Lo + Chunk);
          if (Red.interesting(*Cand)) {
            Cur = std::move(Cand);
            Sites = removableSites(*Cur);
            Changed = Hit = true;
            break;
          }
        }
      }
      if (Chunk == 1)
        break;
    }

    // Simplify conditional branches to unconditional ones (either arm).
    // Re-fetch the function/block from Cur on every iteration: accepting a
    // candidate replaces Cur, which destroys the module any cached
    // Function&/Block& pointed into.
    for (unsigned F = 0; F < Cur->numFunctions() && Red.budgetLeft(); ++F) {
      for (unsigned B = 0; B < Cur->function(F).numBlocks(); ++B) {
        const Block &Blk = Cur->function(F).block(B);
        if (!Blk.hasTerminator() ||
            Blk.terminator().opcode() != Opcode::CBr)
          continue;
        for (unsigned Arm = 1; Arm <= 2; ++Arm) {
          auto Cand = cloneModule(*Cur);
          Block &CB = Cand->function(F).block(B);
          Instr Br(Opcode::Br, CB.terminator().op(Arm));
          CB.instrs().back() = Br;
          if (Red.interesting(*Cand)) {
            Cur = std::move(Cand);
            Changed = true;
            break; // Blk dangles now; the next B iteration re-fetches
          }
        }
      }
    }
  }

  R.Text = printText(*Cur);
  R.FinalInstrs = countInstrs(*Cur);
  return R;
}
