//===- regalloc/Allocator.h - Allocator façade -----------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry points: pick an allocator, run it on a function or
/// module, and get back the statistics the paper's evaluation reports
/// (static spill counts by category, spilled temporaries, compile time,
/// coloring iterations, interference-graph edges).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_ALLOCATOR_H
#define LSRA_REGALLOC_ALLOCATOR_H

#include "ir/Module.h"
#include "target/Target.h"

#include <cstdint>
#include <string>

namespace lsra {

namespace cache {
class CompileCache;
} // namespace cache

namespace obs {
struct RequestTrace;
} // namespace obs

/// Backend ids are stable and append-only: the integer value participates
/// in compile-cache keys (cache::makeModuleKey / makeFunctionKey), so
/// enumerators are never reordered or removed. The authoritative list of
/// backends — names, aliases, capabilities, entry points — lives in
/// regalloc/Registry.h; consumers should enumerate the registry rather
/// than switch over this enum.
enum class AllocatorKind {
  SecondChanceBinpack, ///< the paper's contribution (§2)
  GraphColoring,       ///< George/Appel iterated register coalescing
  TwoPassBinpack,      ///< GEM-style binpacking without second chance
  PolettoScan,         ///< Poletto et al. interval linear scan (§4)
  EbbScan,             ///< one-pass EBB second chance (serving tier 0)
};

const char *allocatorName(AllocatorKind K);

/// Inverse of allocatorName, also accepting the short CLI aliases
/// ("binpack", "coloring", "twopass", "poletto", "ebb"). The one parser
/// shared by the CLI, the bench tools, and the server's wire-protocol
/// decoding; backed by the AllocatorRegistry.
bool parseAllocatorName(const std::string &Name, AllocatorKind &Out);

/// Tiered-compilation policy for the serving path (compileTextModule and
/// the compile server). Execution-shaping: the tier only decides *which*
/// allocator answers a cold request first, never what any given
/// (text, allocator, options) key compiles to — so it lives in ExecOptions
/// and stays out of cache keys (invariant-tested in tests/tier_test.cpp).
enum class TierPolicy : uint8_t {
  Off,          ///< always compile with the requested allocator
  Tier0Only,    ///< cold requests answered by the EBB tier-0 backend only
  Tier0Promote, ///< tier-0 answer now, background full-allocator requalify
};

/// CLI/wire spelling of a tier policy: "off", "tier0", "promote".
const char *tierPolicyName(TierPolicy T);
bool parseTierPolicy(const std::string &Name, TierPolicy &Out);

/// The semantic allocation knobs: everything here changes the allocated
/// code, so the set doubles as the compile cache's options key (see
/// fingerprint()). Execution-shaping settings that cannot change the
/// output — thread counts, verification, caching itself — live in
/// ExecOptions and are deliberately excluded.
///
/// Every public entry point (allocateFunction / allocateModule /
/// compileModule / compileTextModule) takes an explicit
/// (AllocOptions, ExecOptions) pair with the same one default: `{}`,
/// meaning the paper's configuration (second chance + coalescing +
/// iterative consistency + peephole + callee saves, no spill cleanup),
/// run sequentially with no cache and no verification.
struct AllocOptions {
  /// §2.5 "early second chance": on a convention eviction, move to a free
  /// register instead of emitting a store now and a load later.
  bool EarlySecondChance = true;
  /// §2.5 move-coalescing check during the scan.
  bool MoveCoalesce = true;
  /// §2.4 iterative consistency dataflow vs the §2.6 conservative
  /// linear-time initialisation.
  enum class ConsistencyMode { Iterative, Conservative } Consistency =
      ConsistencyMode::Iterative;
  /// Run the post-allocation peephole that deletes self-moves (the paper
  /// always runs it; switchable for ablation).
  bool RunPeephole = true;
  /// Insert callee-save prologues/epilogues after allocation.
  bool CalleeSaves = true;
  /// The §2.4 follow-on optimisation the paper describes but does not
  /// implement: meet store/load pairs to the same stack location and
  /// replace them with register moves (passes/SpillCleanup). Off by
  /// default to match the paper's configuration.
  bool SpillCleanup = false;

  bool operator==(const AllocOptions &R) const {
    return EarlySecondChance == R.EarlySecondChance &&
           MoveCoalesce == R.MoveCoalesce && Consistency == R.Consistency &&
           RunPeephole == R.RunPeephole && CalleeSaves == R.CalleeSaves &&
           SpillCleanup == R.SpillCleanup;
  }
  bool operator!=(const AllocOptions &R) const { return !(*this == R); }

  /// Stable 64-bit fingerprint over every semantic knob, salted with a
  /// schema version so adding a knob invalidates old cache entries rather
  /// than aliasing them. Equal options ⇔ equal fingerprints.
  uint64_t fingerprint() const;
};

/// How a compilation runs, not what it produces. Nothing in here may
/// influence the allocated code — that invariant is what makes it safe to
/// exclude ExecOptions from the compile-cache key (and it is enforced by
/// tests/cache_test.cpp and the fuzzer's cache-differential mode).
struct ExecOptions {
  /// Worker threads for allocateModule/compileModule. Functions are
  /// allocated independently and the per-function statistics are merged in
  /// function-index order, so results are identical for any thread count.
  /// 1 = sequential (default); 0 = one worker per hardware thread.
  unsigned Threads = 1;
  /// Run the check/Verifier translation validator over the result
  /// (compileTextModule only: it needs the pre-allocation module to compare
  /// against). A failed proof is reported as a compile error.
  bool VerifyAlloc = false;
  /// Content-addressed compile cache consulted by the module-level entry
  /// points (borrowed, not owned; nullptr = no caching). compileTextModule
  /// keys whole modules on the raw request text; allocateModule /
  /// compileModule additionally key each function on its canonical printed
  /// form, so repeated functions hit across modules.
  cache::CompileCache *Cache = nullptr;
  /// Request-scoped span chain (borrowed, not owned; nullptr = no
  /// tracing). The server threads its sampled obs::RequestTrace through
  /// here so the pipeline phases (cache-probe, parse, alloc, emit) land on
  /// the owning request's timeline. Pure observation — may not influence
  /// the allocated code, same invariant as the rest of ExecOptions.
  obs::RequestTrace *ReqTrace = nullptr;
  /// Tiered serving policy (compileTextModule only). Not part of any cache
  /// key: an entry is always keyed by the allocator that produced it, so a
  /// tier-0 answer is cached under the EBB backend's key and a promotion
  /// refreshes the requested allocator's key with byte-identical output to
  /// a direct compile.
  TierPolicy Tier = TierPolicy::Off;
};

struct AllocStats {
  // Static spill-code counts by category.
  unsigned EvictLoads = 0;
  unsigned EvictStores = 0;
  unsigned EvictMoves = 0;
  unsigned ResolveLoads = 0;
  unsigned ResolveStores = 0;
  unsigned ResolveMoves = 0;

  unsigned RegCandidates = 0;  ///< temporaries considered for allocation
  unsigned SpilledTemps = 0;   ///< temporaries that ever lived in memory
  unsigned LifetimeSplits = 0; ///< second-chance splits performed
  unsigned MovesCoalesced = 0;
  unsigned SplitEdges = 0;
  unsigned DataflowIterations = 0; ///< consistency dataflow (binpack)
  unsigned ColoringIterations = 0; ///< build/color rounds (coloring)
  unsigned InterferenceEdges = 0;  ///< edges in the final graph (coloring)
  /// Core allocation time summed over functions. With Threads > 1 this is
  /// aggregate CPU seconds (the paper's Table 3 metric, unchanged by
  /// parallelism); WallSeconds is the elapsed module time.
  double AllocSeconds = 0;
  /// Wall-clock seconds for the whole module-level run (set by
  /// allocateModule/compileModule only; 0 for single-function calls).
  double WallSeconds = 0;

  unsigned staticSpillInstrs() const {
    return EvictLoads + EvictStores + EvictMoves + ResolveLoads +
           ResolveStores + ResolveMoves;
  }

  AllocStats &operator+=(const AllocStats &R);
};

/// Allocate registers for \p F with allocator \p K. The function must have
/// its calls lowered. On return the function contains no virtual
/// registers. Callee-save code is inserted when AO.CalleeSaves is set.
AllocStats allocateFunction(Function &F, const TargetDesc &TD,
                            AllocatorKind K, const AllocOptions &AO = {});

/// Allocate the function at index \p Idx of \p M, consulting EO.Cache (if
/// any) keyed on the function's canonical printed text. On a hit the cached
/// allocated body replaces the function and the cached statistics are
/// returned; on a miss the function is allocated and the result inserted.
/// With EO.Cache == nullptr this is exactly allocateFunction.
AllocStats allocateFunctionInModule(Module &M, unsigned Idx,
                                    const TargetDesc &TD, AllocatorKind K,
                                    const AllocOptions &AO = {},
                                    const ExecOptions &EO = {});

/// Allocate every function in \p M; returns the statistics merged in
/// function-index order. With EO.Threads != 1 functions are farmed out
/// to a worker pool; results are bit-identical to the sequential run.
AllocStats allocateModule(Module &M, const TargetDesc &TD, AllocatorKind K,
                          const AllocOptions &AO = {},
                          const ExecOptions &EO = {});

/// Effective worker count for \p Requested threads over \p NumItems
/// independent work items (0 = hardware concurrency; capped by NumItems).
unsigned resolveThreadCount(unsigned Requested, unsigned NumItems);

} // namespace lsra

#endif // LSRA_REGALLOC_ALLOCATOR_H
