//===- regalloc/Lifetime.h - Lifetimes and lifetime holes -----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifetimes with lifetime holes (§2.1 of the paper), computed with a
/// single reverse pass over the linearly ordered code. A lifetime is a
/// sorted list of half-open [Start, End) segments over the Numbering
/// position space; the gaps between segments are the holes. Physical
/// registers get "fixed" lifetimes built from their explicit occurrences
/// plus call clobbers — the complement of a fixed lifetime is the
/// register's own set of holes, which is how the paper models register
/// usage conventions (§2.5).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_LIFETIME_H
#define LSRA_REGALLOC_LIFETIME_H

#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Order.h"
#include "ir/Function.h"
#include "support/Arena.h"
#include "target/Target.h"

#include <array>
#include <limits>
#include <vector>

namespace lsra {

constexpr unsigned InfPos = std::numeric_limits<unsigned>::max();

struct Segment {
  unsigned Start;
  unsigned End; // exclusive
  /// True when the segment begins at a block boundary because the value is
  /// live-in there. The gap *before* such a segment is not a true lifetime
  /// hole in the paper's sense ("an interval during which no useful value
  /// is maintained"): the value flows around the gap along a CFG edge, so
  /// a register holding it through the gap cannot be reused for free.
  bool LiveInStart = false;
  bool contains(unsigned Pos) const { return Pos >= Start && Pos < End; }
};

/// One static reference to a temporary (an operand occurrence).
struct Reference {
  unsigned Pos;  ///< usePos for uses, defPos for defs
  bool IsDef;
  uint8_t Depth; ///< loop depth of the containing block
};

class Lifetime {
public:
  /// Segment/Reference storage is arena-aware: LifetimeAnalysis places the
  /// per-vreg vectors of a whole function in one bump arena (two orders of
  /// magnitude fewer mallocs on large functions), while default-constructed
  /// lifetimes (tests, standalone use) fall back to the global heap.
  using SegVec = std::vector<Segment, ArenaAllocator<Segment>>;
  using RefVec = std::vector<Reference, ArenaAllocator<Reference>>;

  Lifetime() = default;
  explicit Lifetime(BumpArena *A)
      : Segs(ArenaAllocator<Segment>(A)), Refs(ArenaAllocator<Reference>(A)) {}

  SegVec Segs; ///< sorted, disjoint, non-adjacent
  RefVec Refs; ///< sorted by position

  bool empty() const { return Segs.empty(); }
  unsigned startPos() const { return Segs.empty() ? InfPos : Segs.front().Start; }
  unsigned endPos() const { return Segs.empty() ? 0 : Segs.back().End; }

  /// Is the temporary live (holding a useful value) at \p Pos?
  bool liveAt(unsigned Pos) const;

  /// If \p Pos falls in a hole (or before the first / after the last
  /// segment), the position where the hole ends: the start of the next
  /// segment, or InfPos after the lifetime. If \p Pos is live, returns Pos.
  unsigned holeEndAfter(unsigned Pos) const;

  /// Is the gap at \p Pos a true hole (dead value)? False when the next
  /// segment is a live-in continuation, i.e. the value survives the gap
  /// along a CFG edge. Precondition: not live at \p Pos.
  bool holeIsRealAt(unsigned Pos) const;

  /// A copy of this lifetime with every artifact gap (gap before a live-in
  /// segment) filled in; whole-lifetime allocators must pack against this.
  Lifetime withArtifactGapsFilled() const;

  /// First reference at position >= \p Pos, or nullptr.
  const Reference *nextRefAfter(unsigned Pos) const;

  /// Number of overlapping positions with \p Other (0 = disjoint).
  bool overlaps(const Lifetime &Other) const;

  /// True if every segment of this lifetime that starts at or after \p From
  /// fits strictly inside holes of \p Other (used by hole-packing checks).
  bool fitsInHolesOf(const Lifetime &Other, unsigned From) const;

  // Construction helpers (used by the builder below and by tests).
  void addSegmentFront(unsigned Start, unsigned End, bool LiveIn = false);
  void finalize(); ///< reverse + merge after reverse-order construction
};

/// Lifetimes for every virtual register and fixed lifetimes for every
/// physical register of one function.
class LifetimeAnalysis {
public:
  LifetimeAnalysis(const Function &F, const Numbering &Num,
                   const Liveness &LV, const LoopInfo &LI,
                   const TargetDesc &TD);

  const Lifetime &vreg(unsigned V) const { return VRegLTs[V]; }
  const Lifetime &pregFixed(unsigned P) const { return PRegLTs[P]; }

  /// Position of the next fixed (convention) occurrence of \p P at or after
  /// \p Pos; InfPos if none. This is where the register's current hole
  /// ends.
  unsigned nextFixedUse(unsigned P, unsigned Pos) const {
    const Lifetime &LT = PRegLTs[P];
    if (LT.liveAt(Pos))
      return Pos;
    // Not live at Pos: find the next segment start.
    for (const Segment &S : LT.Segs)
      if (S.Start >= Pos)
        return S.Start;
    return InfPos;
  }

  unsigned numVRegs() const { return static_cast<unsigned>(VRegLTs.size()); }

private:
  /// Owns every Segs/Refs vector below; must be declared first so it is
  /// destroyed last.
  BumpArena Arena;
  std::vector<Lifetime> VRegLTs;
  std::array<Lifetime, NumPRegs> PRegLTs;
};

} // namespace lsra

#endif // LSRA_REGALLOC_LIFETIME_H
