//===- regalloc/Consistency.cpp -------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Consistency.h"

using namespace lsra;

ConsistencyInfo::ConsistencyInfo(unsigned NumBlocks,
                                 std::vector<unsigned> VRegToDenseIn,
                                 std::vector<unsigned> DenseToVRegIn)
    : VRegToDense(std::move(VRegToDenseIn)),
      DenseToVReg(std::move(DenseToVRegIn)) {
  unsigned U = universeSize();
  AreConsistentBottom.assign(NumBlocks, BitVector(U));
  UsedConsistency.assign(NumBlocks, BitVector(U));
  WroteTR.assign(NumBlocks, BitVector(U));
  UsedAtExit.assign(NumBlocks, BitVector(U));
  UsedCIn.assign(NumBlocks, BitVector(U));
}

unsigned ConsistencyInfo::solve(const Function &F) {
  unsigned NumBlocks = F.numBlocks();
  std::vector<std::vector<unsigned>> Succs(NumBlocks);
  for (unsigned B = 0; B < NumBlocks; ++B)
    Succs[B] = F.block(B).successors();

  // Initialise USED_C_in(b) = USED_CONSISTENCY(b).
  for (unsigned B = 0; B < NumBlocks; ++B)
    UsedCIn[B] = UsedConsistency[B];

  BitVector Out(universeSize());
  unsigned Iterations = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    for (unsigned B = NumBlocks; B-- > 0;) {
      Out = UsedAtExit[B];
      for (unsigned S : Succs[B])
        Out |= UsedCIn[S];
      Changed |= UsedCIn[B].unionWithDifference(Out, WroteTR[B]);
    }
  }
  return Iterations;
}
