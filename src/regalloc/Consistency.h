//===- regalloc/Consistency.h - Spill-store consistency dataflow -*- C++-*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The correctness dataflow of §2.4: when the allocator inhibits a spill
/// store because a temporary's register and memory home were consistent, the
/// assumption must hold along *all* CFG paths, not just the linear one. The
/// allocator records, per block:
///   - ARE_CONSISTENT at the block bottom (the working vector's snapshot),
///   - USED_CONSISTENCY (GEN): consistency used before any local write, and
///   - WROTE_TR (KILL): the register allocated to t was written in b.
/// Solving
///   USED_C_out(b) = U_{s in succ(b)} USED_C_in(s)
///   USED_C_in(b)  = USED_CONSISTENCY(b) | (USED_C_out(b) - WROTE_TR(b))
/// yields the temps whose consistency is relied upon at entry to each block;
/// resolution inserts a store on edge p->s when USED_C_in(s) is set but
/// ARE_CONSISTENT(p) is clear.
///
/// Bit vectors are sized by the temporaries live across block boundaries
/// only, per the paper's optimisation (§3).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_CONSISTENCY_H
#define LSRA_REGALLOC_CONSISTENCY_H

#include "ir/Function.h"
#include "support/BitVector.h"

#include <vector>

namespace lsra {

class ConsistencyInfo {
public:
  /// Build with the dense universe of cross-block temporaries.
  ConsistencyInfo(unsigned NumBlocks, std::vector<unsigned> VRegToDense,
                  std::vector<unsigned> DenseToVReg);

  unsigned denseIndex(unsigned V) const { return VRegToDense[V]; }
  bool inUniverse(unsigned V) const { return VRegToDense[V] != ~0u; }
  unsigned universeSize() const {
    return static_cast<unsigned>(DenseToVReg.size());
  }

  // Filled by the allocator during the linear scan:
  std::vector<BitVector> AreConsistentBottom;
  std::vector<BitVector> UsedConsistency; // GEN
  std::vector<BitVector> WroteTR;         // KILL
  /// Additional GEN at the *exit* of each block: the resolver itself relies
  /// on ARE_CONSISTENT(p) when it suppresses a reg->mem store on an
  /// outgoing edge of p (§2.4 "but only if inconsistent"). Registering that
  /// reliance here before solving makes the suppression sound along all
  /// paths, a detail the paper leaves implicit.
  std::vector<BitVector> UsedAtExit;

  /// Solve the backward fixpoint; populates UsedCIn. Returns the number of
  /// iterations (the paper reports 2-3 in practice).
  unsigned solve(const Function &F);

  std::vector<BitVector> UsedCIn;

  /// Should resolution insert a consistency store for vreg \p V on edge
  /// \p Pred -> \p Succ? (Callable only after solve().)
  bool needsEdgeStore(unsigned Pred, unsigned Succ, unsigned V) const {
    unsigned D = VRegToDense[V];
    if (D == ~0u)
      return false;
    return UsedCIn[Succ].test(D) && !AreConsistentBottom[Pred].test(D);
  }

private:
  std::vector<unsigned> VRegToDense;
  std::vector<unsigned> DenseToVReg;
};

} // namespace lsra

#endif // LSRA_REGALLOC_CONSISTENCY_H
