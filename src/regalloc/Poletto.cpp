//===- regalloc/Poletto.cpp -----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Poletto.h"

#include "analysis/AnalysisCache.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Order.h"
#include "obs/DecisionLog.h"
#include "regalloc/Lifetime.h"
#include "regalloc/SpillSlots.h"

#include <algorithm>

using namespace lsra;

namespace {

constexpr unsigned NoReg = ~0u;

struct Interval {
  unsigned VReg;
  unsigned Start, End;
  bool CrossesFixed; // overlaps a call site or explicit fixed register use
  unsigned Reg = NoReg;
};

class PolettoAllocator {
public:
  PolettoAllocator(Function &F, const TargetDesc &TD, FunctionAnalyses &FA)
      : F(F), TD(TD), Num(FA.numbering()), LT(FA.lifetimes()), Slots(F) {}

  AllocStats run();

private:
  Function &F;
  const TargetDesc &TD;
  const Numbering &Num;
  const LifetimeAnalysis &LT;
  SpillSlots Slots;
  AllocStats Stats;

  std::vector<unsigned> AssignedReg; // vreg -> preg or NoReg
  std::array<unsigned, 2> Scratch0{}, Scratch1{};

  void scanClass(RegClass RC, const std::vector<unsigned> &FixedPoints);
  void rewrite();
};

AllocStats PolettoAllocator::run() {
  assert(F.CallsLowered && "lower calls before register allocation");
  Stats.RegCandidates = F.numVRegs();
  AssignedReg.assign(F.numVRegs(), NoReg);

  // Positions where caller-saved registers are unusable (call clobbers or
  // explicit convention uses of any caller-saved register).
  std::vector<unsigned> FixedPoints;
  for (unsigned P = 0; P < NumPRegs; ++P) {
    if (!TD.isCallerSaved(P))
      continue;
    for (const Segment &S : LT.pregFixed(P).Segs)
      FixedPoints.push_back(S.Start);
  }
  std::sort(FixedPoints.begin(), FixedPoints.end());
  FixedPoints.erase(std::unique(FixedPoints.begin(), FixedPoints.end()),
                    FixedPoints.end());

  scanClass(RegClass::Int, FixedPoints);
  scanClass(RegClass::Float, FixedPoints);
  rewrite();
  return Stats;
}

void PolettoAllocator::scanClass(RegClass RC,
                                 const std::vector<unsigned> &FixedPoints) {
  // Reserve the last two registers of the preference order as spill
  // scratch, as tcc-style dynamic code generators do.
  const auto &Order = TD.allocOrder(RC);
  assert(Order.size() >= 3 && "Poletto scan needs at least 3 registers");
  unsigned C = RC == RegClass::Float ? 1 : 0;
  Scratch0[C] = Order[Order.size() - 2];
  Scratch1[C] = Order[Order.size() - 1];
  std::vector<unsigned> Avail(Order.begin(), Order.end() - 2);

  // Flat intervals: [startPos, endPos) of the full lifetime, holes ignored.
  std::vector<Interval> Intervals;
  for (unsigned V = 0; V < F.numVRegs(); ++V) {
    if (F.vregClass(V) != RC || LT.vreg(V).empty())
      continue;
    Interval I;
    I.VReg = V;
    I.Start = LT.vreg(V).startPos();
    I.End = LT.vreg(V).endPos();
    auto It = std::lower_bound(FixedPoints.begin(), FixedPoints.end(), I.Start);
    I.CrossesFixed = It != FixedPoints.end() && *It < I.End;
    Intervals.push_back(I);
  }
  std::sort(Intervals.begin(), Intervals.end(),
            [](const Interval &A, const Interval &B) {
              return A.Start < B.Start;
            });

  // Free register pools: callee-saved (safe across fixed points) and
  // caller-saved (for intervals that cross nothing).
  std::vector<unsigned> FreeCalleeSaved, FreeCallerSaved;
  for (unsigned R : Avail)
    (TD.isCalleeSaved(R) ? FreeCalleeSaved : FreeCallerSaved).push_back(R);

  std::vector<Interval *> Active; // sorted by increasing End
  auto Expire = [&](unsigned Pos) {
    while (!Active.empty() && Active.front()->End <= Pos) {
      Interval *Done = Active.front();
      Active.erase(Active.begin());
      (TD.isCalleeSaved(Done->Reg) ? FreeCalleeSaved : FreeCallerSaved)
          .push_back(Done->Reg);
    }
  };
  auto AddActive = [&](Interval *I) {
    auto It = std::lower_bound(Active.begin(), Active.end(), I,
                               [](const Interval *A, const Interval *B) {
                                 return A->End < B->End;
                               });
    Active.insert(It, I);
  };

  for (Interval &I : Intervals) {
    Expire(I.Start);
    unsigned R = NoReg;
    if (!I.CrossesFixed && !FreeCallerSaved.empty()) {
      R = FreeCallerSaved.back();
      FreeCallerSaved.pop_back();
    } else if (!FreeCalleeSaved.empty()) {
      R = FreeCalleeSaved.back();
      FreeCalleeSaved.pop_back();
    }
    if (R != NoReg) {
      I.Reg = R;
      AssignedReg[I.VReg] = R;
      AddActive(&I);
      continue;
    }
    // No register: spill the active interval with the furthest end (the
    // "longest active lifetime"), unless this interval ends later itself.
    // Only consider victims whose register this interval may legally use.
    Interval *Victim = nullptr;
    for (auto It = Active.rbegin(); It != Active.rend(); ++It) {
      if (I.CrossesFixed && !TD.isCalleeSaved((*It)->Reg))
        continue;
      Victim = *It;
      break;
    }
    obs::DecisionLog &DL = obs::DecisionLog::global();
    if (Victim && Victim->End > I.End) {
      AssignedReg[Victim->VReg] = NoReg;
      ++Stats.SpilledTemps;
      I.Reg = Victim->Reg;
      AssignedReg[I.VReg] = I.Reg;
      Active.erase(std::find(Active.begin(), Active.end(), Victim));
      AddActive(&I);
      if (DL.enabled())
        DL.record(F, obs::DecisionKind::SpillWhole, Victim->VReg, I.Start,
                  obs::NoValue, "furthest-end active interval loses register");
    } else {
      ++Stats.SpilledTemps; // I itself lives in memory
      if (DL.enabled())
        DL.record(F, obs::DecisionKind::SpillWhole, I.VReg, I.Start,
                  obs::NoValue, "no free register and no later-ending victim");
    }
  }
}

void PolettoAllocator::rewrite() {
  for (Block &B : F.blocks()) {
    std::vector<uint32_t> Out;
    Out.reserve(B.size());
    bool Inserted = false;
    for (unsigned Idx = 0; Idx < B.size(); ++Idx) {
      Instr I = B.instrs()[Idx];
      const OpcodeInfo &Info = I.info();
      unsigned NextScratch[2] = {0, 0};
      unsigned LoadedV = ~0u, LoadedR = NoReg;
      for (unsigned S = Info.NumDefs;
           S < unsigned(Info.NumDefs) + Info.NumUses; ++S) {
        Operand &Op = I.op(S);
        if (!Op.isVReg())
          continue;
        unsigned V = Op.vregId();
        unsigned R = AssignedReg[V];
        if (R == NoReg) {
          if (V == LoadedV) {
            R = LoadedR;
          } else {
            unsigned C = F.vregClass(V) == RegClass::Float ? 1 : 0;
            R = NextScratch[C]++ == 0 ? Scratch0[C] : Scratch1[C];
            Out.push_back(
                B.makeInstr(Slots.makeLoad(V, R, SpillKind::EvictLoad)));
            ++Stats.EvictLoads;
            Inserted = true;
            LoadedV = V;
            LoadedR = R;
          }
        }
        Op = Operand::preg(R);
      }
      uint32_t StoreId = ~0u;
      if (Info.NumDefs == 1 && I.op(0).isVReg()) {
        unsigned V = I.op(0).vregId();
        unsigned R = AssignedReg[V];
        if (R == NoReg) {
          unsigned C = F.vregClass(V) == RegClass::Float ? 1 : 0;
          R = Scratch0[C];
          StoreId = B.makeInstr(Slots.makeStore(V, R, SpillKind::EvictStore));
          ++Stats.EvictStores;
          Inserted = true;
        }
        I.op(0) = Operand::preg(R);
      }
      B.instrs()[Idx] = I; // rewritten in place: id preserved
      Out.push_back(B.instrId(Idx));
      if (StoreId != ~0u)
        Out.push_back(StoreId);
    }
    if (Inserted)
      B.setInstrIds(Out);
  }
}

} // namespace

AllocStats lsra::runPolettoScan(Function &F, const TargetDesc &TD,
                                const AllocOptions &Opts) {
  FunctionAnalyses FA(F, TD);
  return runPolettoScan(F, TD, Opts, FA);
}

AllocStats lsra::runPolettoScan(Function &F, const TargetDesc &TD,
                                const AllocOptions &Opts,
                                FunctionAnalyses &FA) {
  (void)Opts;
  assert(&FA.function() == &F && "analyses are for a different function");
  return PolettoAllocator(F, TD, FA).run();
}
