//===- regalloc/TwoPass.h - Two-pass binpacking (no 2nd chance) -*- C++-*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The traditional binpacking allocator the paper ablates against in §3.1:
/// a first pass walks the sorted lifetime list and commits each *whole*
/// lifetime to either a register or memory (still exploiting lifetime
/// holes); a second pass rewrites operands, with each reference to a
/// spilled temporary getting a point lifetime that is always assigned a
/// register. There is no lifetime splitting, no second chance, and no
/// resolution phase.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_TWOPASS_H
#define LSRA_REGALLOC_TWOPASS_H

#include "regalloc/Allocator.h"

namespace lsra {

class FunctionAnalyses;

AllocStats runTwoPassBinpack(Function &F, const TargetDesc &TD,
                             const AllocOptions &Opts);

/// As above, consuming the shared analyses in \p FA instead of rebuilding
/// them. \p FA is stale once this returns.
AllocStats runTwoPassBinpack(Function &F, const TargetDesc &TD,
                             const AllocOptions &Opts, FunctionAnalyses &FA);

} // namespace lsra

#endif // LSRA_REGALLOC_TWOPASS_H
