//===- regalloc/Resolver.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Resolver.h"

#include "analysis/Order.h"
#include "regalloc/ParallelCopy.h"

using namespace lsra;

namespace {

struct Edge {
  unsigned Pred;
  unsigned Succ;
};

} // namespace

ResolveCounts lsra::resolveEdges(Function &F, const ResolverInput &In,
                                 SpillSlots &Slots) {
  ResolveCounts Counts;
  const Liveness &LV = *In.LV;
  const auto &DenseToVReg = *In.DenseToVReg;
  const auto &LocTop = *In.LocTop;
  const auto &LocBottom = *In.LocBottom;

  // Collect the original edges and predecessor counts before any splitting
  // mutates the CFG.
  unsigned OrigBlocks = F.numBlocks();
  std::vector<Edge> Edges;
  std::vector<unsigned> PredCount(OrigBlocks, 0);
  std::vector<unsigned> SuccCount(OrigBlocks, 0);
  for (unsigned B = 0; B < OrigBlocks; ++B) {
    auto Succs = F.block(B).successors();
    SuccCount[B] = static_cast<unsigned>(Succs.size());
    for (unsigned S : Succs) {
      Edges.push_back({B, S});
      ++PredCount[S];
    }
  }

  for (const Edge &E : Edges) {
    ParallelCopy PC;
    const BitVector &LiveInS = LV.liveIn(E.Succ);
    for (unsigned D = 0; D < DenseToVReg.size(); ++D) {
      unsigned V = DenseToVReg[D];
      if (V >= LiveInS.size() || !LiveInS.test(V))
        continue;
      LocCode Bot = LocBottom[E.Pred][D];
      LocCode Top = LocTop[E.Succ][D];
      bool BotReg = isRegLoc(Bot);
      bool TopReg = isRegLoc(Top);
      bool ConsistentAtBot =
          (*In.ConsistentBottom)[E.Pred].size() > D &&
          (*In.ConsistentBottom)[E.Pred].test(D);
      if (BotReg && TopReg) {
        if (regOfLoc(Bot) != regOfLoc(Top))
          PC.addMove(V, regOfLoc(Bot), regOfLoc(Top));
        // The successor may rely on consistency that does not hold at the
        // predecessor even though the temp stays in a register.
        if (In.CI && In.CI->needsEdgeStore(E.Pred, E.Succ, V))
          PC.addStore(V, regOfLoc(Bot));
      } else if (BotReg && !TopReg) {
        // Register at the bottom, memory at the top: store, "but only if
        // the temporary's allocated register and memory home are
        // inconsistent" (§2.4). The consistency dataflow covers the case
        // where the suppression is unsound along this path.
        bool NeedStore = !ConsistentAtBot;
        if (!NeedStore && In.CI && In.CI->needsEdgeStore(E.Pred, E.Succ, V))
          NeedStore = true;
        if (NeedStore)
          PC.addStore(V, regOfLoc(Bot));
      } else if (!BotReg && TopReg) {
        // Memory (or not-yet-materialised) at the bottom, register at the
        // top: load from the memory home.
        PC.addLoad(V, regOfLoc(Top));
      }
      // mem -> mem needs nothing.
    }
    if (PC.empty())
      continue;

    std::vector<Instr> Seq;
    PC.emit(Seq, Slots, F);
    for (const Instr &I : Seq) {
      switch (I.Spill) {
      case SpillKind::ResolveLoad:
        ++Counts.Loads;
        break;
      case SpillKind::ResolveStore:
        ++Counts.Stores;
        break;
      case SpillKind::ResolveMove:
        ++Counts.Moves;
        break;
      default:
        break;
      }
    }

    // Placement (§2.4 footnote 1). Placing at the bottom of the predecessor
    // is only safe when its terminator reads no registers (an unconditional
    // branch); a CBr's condition register could otherwise be clobbered by
    // the inserted code. The entry block is never a valid top-of-successor
    // target even with a single explicit predecessor: it has an implicit
    // second predecessor (function entry), and back-edge resolution code
    // placed there would also run before the first iteration.
    if (PredCount[E.Succ] == 1 && E.Succ != 0) {
      Block &S = F.block(E.Succ);
      for (unsigned I = 0; I < Seq.size(); ++I)
        S.insertAt(I, Seq[I]);
    } else if (SuccCount[E.Pred] == 1 &&
               F.block(E.Pred).terminator().opcode() == Opcode::Br) {
      Block &P = F.block(E.Pred);
      for (const Instr &I : Seq)
        P.insertBeforeTerminator(I);
    } else {
      Block &NewB = splitEdge(F, E.Pred, E.Succ);
      for (unsigned I = 0; I < Seq.size(); ++I)
        NewB.insertAt(I, Seq[I]);
      ++Counts.SplitEdges;
    }
  }
  return Counts;
}
