//===- regalloc/Allocator.cpp ---------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "analysis/AnalysisCache.h"
#include "passes/Peephole.h"
#include "passes/SpillCleanup.h"
#include "regalloc/Binpack.h"
#include "regalloc/Coloring.h"
#include "regalloc/Poletto.h"
#include "regalloc/TwoPass.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "target/CalleeSave.h"

#include <algorithm>

using namespace lsra;

const char *lsra::allocatorName(AllocatorKind K) {
  switch (K) {
  case AllocatorKind::SecondChanceBinpack:
    return "second-chance-binpack";
  case AllocatorKind::GraphColoring:
    return "graph-coloring";
  case AllocatorKind::TwoPassBinpack:
    return "two-pass-binpack";
  case AllocatorKind::PolettoScan:
    return "poletto-scan";
  }
  return "unknown";
}

AllocStats &AllocStats::operator+=(const AllocStats &R) {
  EvictLoads += R.EvictLoads;
  EvictStores += R.EvictStores;
  EvictMoves += R.EvictMoves;
  ResolveLoads += R.ResolveLoads;
  ResolveStores += R.ResolveStores;
  ResolveMoves += R.ResolveMoves;
  RegCandidates += R.RegCandidates;
  SpilledTemps += R.SpilledTemps;
  LifetimeSplits += R.LifetimeSplits;
  MovesCoalesced += R.MovesCoalesced;
  SplitEdges += R.SplitEdges;
  DataflowIterations += R.DataflowIterations;
  ColoringIterations += R.ColoringIterations;
  InterferenceEdges += R.InterferenceEdges;
  AllocSeconds += R.AllocSeconds;
  WallSeconds += R.WallSeconds;
  return *this;
}

AllocStats lsra::allocateFunction(Function &F, const TargetDesc &TD,
                                  AllocatorKind K, const AllocOptions &Opts) {
  assert(F.CallsLowered && "lower calls before register allocation");
  // Warm the analysis cache with everything the chosen allocator consumes,
  // then time only the core allocation — the paper likewise reports times
  // "after setup activities common to both allocators".
  FunctionAnalyses FA(F, TD);
  switch (K) {
  case AllocatorKind::GraphColoring:
    FA.liveness();
    FA.loops();
    break;
  default: // the three scan allocators all consume lifetimes
    FA.lifetimes();
    break;
  }
  Timer T;
  T.start();
  AllocStats Stats;
  switch (K) {
  case AllocatorKind::SecondChanceBinpack:
    Stats = runSecondChanceBinpack(F, TD, Opts, FA);
    break;
  case AllocatorKind::GraphColoring:
    Stats = runGraphColoring(F, TD, Opts, FA);
    break;
  case AllocatorKind::TwoPassBinpack:
    Stats = runTwoPassBinpack(F, TD, Opts, FA);
    break;
  case AllocatorKind::PolettoScan:
    Stats = runPolettoScan(F, TD, Opts, FA);
    break;
  }
  T.stop();
  Stats.AllocSeconds = T.seconds();
  // The allocator rewrote the instruction stream (and resolution may have
  // added blocks); everything cached above is stale.
  FA.invalidate();
  if (Opts.SpillCleanup)
    cleanupSpillCode(F, TD);
  if (Opts.RunPeephole)
    runPeephole(F);
  if (Opts.CalleeSaves)
    insertCalleeSaves(F, TD);
  return Stats;
}

unsigned lsra::resolveThreadCount(unsigned Requested, unsigned NumItems) {
  unsigned T = Requested == 0 ? ThreadPool::defaultThreadCount() : Requested;
  return std::max(1u, std::min(T, std::max(NumItems, 1u)));
}

AllocStats lsra::allocateModule(Module &M, const TargetDesc &TD,
                                AllocatorKind K, const AllocOptions &Opts) {
  Timer Wall;
  Wall.start();
  AllocStats Total;
  unsigned N = M.numFunctions();
  unsigned Threads = resolveThreadCount(Opts.Threads, N);
  if (Threads <= 1) {
    for (auto &F : M.functions())
      Total += allocateFunction(*F, TD, K, Opts);
  } else {
    // Functions are independent (each allocator mutates only its own
    // Function); merge the per-function statistics in index order so the
    // totals match the sequential run exactly.
    std::vector<AllocStats> Per(N);
    parallelFor(N, Threads, [&](unsigned I) {
      Per[I] = allocateFunction(M.function(I), TD, K, Opts);
    });
    for (const AllocStats &S : Per)
      Total += S;
  }
  Wall.stop();
  Total.WallSeconds = Wall.seconds();
  return Total;
}
