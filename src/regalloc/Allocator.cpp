//===- regalloc/Allocator.cpp ---------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "analysis/AnalysisCache.h"
#include "cache/CompileCache.h"
#include "check/Clone.h"
#include "ir/Printer.h"
#include "obs/Counters.h"
#include "obs/DecisionLog.h"
#include "obs/Log.h"
#include "obs/Trace.h"
#include "passes/Peephole.h"
#include "passes/SpillCleanup.h"
#include "regalloc/Registry.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "target/CalleeSave.h"

#include <algorithm>
#include <unordered_map>

using namespace lsra;

const char *lsra::allocatorName(AllocatorKind K) {
  return AllocatorRegistry::global().info(K).Name;
}

bool lsra::parseAllocatorName(const std::string &Name, AllocatorKind &Out) {
  const AllocatorInfo *I = AllocatorRegistry::global().findByName(Name);
  if (!I)
    return false;
  Out = I->Kind;
  return true;
}

const char *lsra::tierPolicyName(TierPolicy T) {
  switch (T) {
  case TierPolicy::Off:
    return "off";
  case TierPolicy::Tier0Only:
    return "tier0";
  case TierPolicy::Tier0Promote:
    return "promote";
  }
  return "off";
}

bool lsra::parseTierPolicy(const std::string &Name, TierPolicy &Out) {
  if (Name == "off")
    Out = TierPolicy::Off;
  else if (Name == "tier0")
    Out = TierPolicy::Tier0Only;
  else if (Name == "promote")
    Out = TierPolicy::Tier0Promote;
  else
    return false;
  return true;
}

AllocStats &AllocStats::operator+=(const AllocStats &R) {
  EvictLoads += R.EvictLoads;
  EvictStores += R.EvictStores;
  EvictMoves += R.EvictMoves;
  ResolveLoads += R.ResolveLoads;
  ResolveStores += R.ResolveStores;
  ResolveMoves += R.ResolveMoves;
  RegCandidates += R.RegCandidates;
  SpilledTemps += R.SpilledTemps;
  LifetimeSplits += R.LifetimeSplits;
  MovesCoalesced += R.MovesCoalesced;
  SplitEdges += R.SplitEdges;
  DataflowIterations += R.DataflowIterations;
  ColoringIterations += R.ColoringIterations;
  InterferenceEdges += R.InterferenceEdges;
  AllocSeconds += R.AllocSeconds;
  // WallSeconds is intentionally NOT accumulated: it is elapsed module
  // time, set exactly once by the module-level driver. Summing it when a
  // driver merges per-function stats — or when compileModule folds in the
  // stats of the allocateModule call it wraps — would double-count the
  // same elapsed interval.
  return *this;
}

namespace {

/// Total number of lifetime holes (gaps between segments) over every
/// temporary — the quantity §2.2's hole-packing feeds on.
unsigned countLifetimeHoles(const LifetimeAnalysis &LT) {
  unsigned Holes = 0;
  for (unsigned V = 0; V < LT.numVRegs(); ++V) {
    size_t Segs = LT.vreg(V).Segs.size();
    if (Segs > 1)
      Holes += static_cast<unsigned>(Segs - 1);
  }
  return Holes;
}

} // namespace

AllocStats lsra::allocateFunction(Function &F, const TargetDesc &TD,
                                  AllocatorKind K, const AllocOptions &Opts) {
  assert(F.CallsLowered && "lower calls before register allocation");
  obs::ScopedSpan FnSpan("alloc:", F.name(), "function");
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  // Warm the analysis cache with everything the chosen allocator consumes,
  // then time only the core allocation — the paper likewise reports times
  // "after setup activities common to both allocators".
  FunctionAnalyses FA(F, TD);
  const AllocatorInfo &Info = AllocatorRegistry::global().info(K);
  if (Info.needs(CapNeedsLiveness)) {
    obs::ScopedSpan S("liveness", "phase");
    FA.liveness();
  }
  if (Info.needs(CapNeedsLifetimes)) {
    obs::ScopedSpan S("lifetimes", "phase");
    FA.lifetimes();
    if (CR.enabled())
      CR.counter("lifetime.holes").add(countLifetimeHoles(FA.lifetimes()));
  }
  if (Info.needs(CapNeedsLoops)) {
    obs::ScopedSpan S("loops", "phase");
    FA.loops();
  }
  Timer T;
  T.start();
  AllocStats Stats;
  {
    obs::ScopedSpan Scan("scan", "phase");
    Stats = Info.Run(F, TD, Opts, FA);
  }
  T.stop();
  Stats.AllocSeconds = T.seconds();
  // The allocator rewrote the instruction stream (and resolution may have
  // added blocks); everything cached above is stale.
  FA.invalidate();
  if (Opts.SpillCleanup) {
    obs::ScopedSpan S("spill-cleanup", "pass");
    cleanupSpillCode(F, TD);
  }
  if (Opts.RunPeephole) {
    obs::ScopedSpan S("peephole", "pass");
    runPeephole(F);
  }
  if (Opts.CalleeSaves) {
    obs::ScopedSpan S("callee-saves", "pass");
    insertCalleeSaves(F, TD);
  }
  if (CR.enabled()) {
    CR.counter("alloc.functions").add(1);
    CR.distribution("alloc.time.function_s").sample(Stats.AllocSeconds);
  }
  LSRA_LOG(2, "alloc %s [%s]: candidates=%u spilled=%u static-spill=%u "
              "splits=%u",
           F.name().c_str(), allocatorName(K), Stats.RegCandidates,
           Stats.SpilledTemps, Stats.staticSpillInstrs(),
           Stats.LifetimeSplits);
  return Stats;
}

unsigned lsra::resolveThreadCount(unsigned Requested, unsigned NumItems) {
  unsigned T = Requested == 0 ? ThreadPool::defaultThreadCount() : Requested;
  return std::max(1u, std::min(T, std::max(NumItems, 1u)));
}

namespace {

/// Build a cache entry from the allocated function \p F of \p M: a clone of
/// the body plus the callee-name table needed to remap module-relative
/// func-ref operands when the entry hits in a different module.
std::shared_ptr<const cache::CachedCompile>
snapshotAllocatedFunction(const Module &M, const Function &F,
                          const AllocStats &Stats, uint64_t ClassTag) {
  auto Entry = std::make_shared<cache::CachedCompile>();
  auto Clone = std::make_unique<Function>(F.id(), F.name());
  cloneFunctionInto(F, *Clone);
  for (const Block &B : Clone->blocks())
    for (const Instr &I : B.instrs())
      for (unsigned O = 0; O < 3; ++O)
        if (I.op(O).isFunc()) {
          unsigned Id = I.op(O).funcId();
          Entry->Callees.emplace_back(Id, M.function(Id).name());
        }
  Entry->Fn = std::move(Clone);
  Entry->Stats = Stats;
  Entry->Bytes = cache::estimateFunctionBytes(*Entry->Fn) +
                 sizeof(cache::CachedCompile);
  Entry->ClassTag = ClassTag;
  return Entry;
}

/// Materialise the cached body \p E as a fresh function carrying id \p Idx,
/// remapping the entry's module-relative func-ref operands into \p M by
/// callee name. Returns nullptr when a callee cannot be resolved — the
/// caller then falls back to a fresh allocation.
std::unique_ptr<Function> materialiseCachedFunction(Module &M, unsigned Idx,
                                                    const cache::CachedCompile &E) {
  std::unordered_map<unsigned, unsigned> Remap;
  for (const auto &C : E.Callees) {
    Function *Callee = M.findFunction(C.second);
    if (!Callee)
      return nullptr;
    Remap.emplace(C.first, Callee->id());
  }
  auto Fresh = std::make_unique<Function>(Idx, E.Fn->name());
  cloneFunctionInto(*E.Fn, *Fresh);
  for (Block &B : Fresh->blocks())
    for (Instr &I : B.instrs())
      for (unsigned O = 0; O < 3; ++O)
        if (I.op(O).isFunc())
          I.op(O) = Operand::func(Remap.at(I.op(O).funcId()));
  return Fresh;
}

/// The shared hit/miss path. With \p Deferred null a hit replaces the
/// module's function immediately; with it non-null the replacement body is
/// parked there instead, so parallel workers never mutate the module's
/// function table while siblings read it (allocateModule swaps the bodies
/// in after the join).
AllocStats allocateFunctionCached(Module &M, unsigned Idx,
                                  const TargetDesc &TD, AllocatorKind K,
                                  const AllocOptions &AO,
                                  const ExecOptions &EO,
                                  std::unique_ptr<Function> *Deferred) {
  Function &F = M.function(Idx);
  if (!EO.Cache)
    return allocateFunction(F, TD, K, AO);
  std::string Canonical = toString(F, &M);
  cache::CacheKey Key = cache::makeFunctionKey(Canonical, AO.fingerprint(),
                                               K, TD.fingerprint());
  if (auto Hit = EO.Cache->lookup(Key)) {
    if (std::unique_ptr<Function> Body =
            materialiseCachedFunction(M, Idx, *Hit)) {
      obs::DecisionLog &DL = obs::DecisionLog::global();
      if (DL.enabled())
        DL.record(*Body, obs::DecisionKind::CacheHit, obs::NoValue,
                  obs::NoValue, obs::NoValue,
                  "allocated body served from the compile cache");
      if (Deferred)
        *Deferred = std::move(Body);
      else
        M.replaceFunction(Idx, std::move(Body));
      return Hit->Stats;
    }
  }
  AllocStats Stats = allocateFunction(F, TD, K, AO);
  EO.Cache->insert(Key,
                   snapshotAllocatedFunction(M, F, Stats, TD.fingerprint()));
  return Stats;
}

} // namespace

AllocStats lsra::allocateFunctionInModule(Module &M, unsigned Idx,
                                          const TargetDesc &TD,
                                          AllocatorKind K,
                                          const AllocOptions &AO,
                                          const ExecOptions &EO) {
  return allocateFunctionCached(M, Idx, TD, K, AO, EO, nullptr);
}

AllocStats lsra::allocateModule(Module &M, const TargetDesc &TD,
                                AllocatorKind K, const AllocOptions &AO,
                                const ExecOptions &EO) {
  Timer Wall;
  Wall.start();
  AllocStats Total;
  unsigned N = M.numFunctions();
  unsigned Threads = resolveThreadCount(EO.Threads, N);
  if (Threads <= 1) {
    for (unsigned I = 0; I < N; ++I)
      Total += allocateFunctionInModule(M, I, TD, K, AO, EO);
  } else {
    // Functions are independent (each allocator mutates only its own
    // Function); merge the per-function statistics in index order so the
    // totals match the sequential run exactly. Cache hits are parked and
    // swapped in after the join: replaceFunction would race with sibling
    // workers resolving callee names through the function table.
    std::vector<AllocStats> Per(N);
    std::vector<std::unique_ptr<Function>> Hit(N);
    parallelFor(N, Threads, [&](unsigned I) {
      Per[I] = allocateFunctionCached(M, I, TD, K, AO, EO, &Hit[I]);
    });
    for (unsigned I = 0; I < N; ++I)
      if (Hit[I])
        M.replaceFunction(I, std::move(Hit[I]));
    for (const AllocStats &S : Per)
      Total += S;
  }
  Wall.stop();
  Total.WallSeconds = Wall.seconds();
  return Total;
}
