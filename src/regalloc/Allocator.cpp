//===- regalloc/Allocator.cpp ---------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "analysis/AnalysisCache.h"
#include "obs/Counters.h"
#include "obs/Log.h"
#include "obs/Trace.h"
#include "passes/Peephole.h"
#include "passes/SpillCleanup.h"
#include "regalloc/Binpack.h"
#include "regalloc/Coloring.h"
#include "regalloc/Poletto.h"
#include "regalloc/TwoPass.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "target/CalleeSave.h"

#include <algorithm>

using namespace lsra;

const char *lsra::allocatorName(AllocatorKind K) {
  switch (K) {
  case AllocatorKind::SecondChanceBinpack:
    return "second-chance-binpack";
  case AllocatorKind::GraphColoring:
    return "graph-coloring";
  case AllocatorKind::TwoPassBinpack:
    return "two-pass-binpack";
  case AllocatorKind::PolettoScan:
    return "poletto-scan";
  }
  return "unknown";
}

AllocStats &AllocStats::operator+=(const AllocStats &R) {
  EvictLoads += R.EvictLoads;
  EvictStores += R.EvictStores;
  EvictMoves += R.EvictMoves;
  ResolveLoads += R.ResolveLoads;
  ResolveStores += R.ResolveStores;
  ResolveMoves += R.ResolveMoves;
  RegCandidates += R.RegCandidates;
  SpilledTemps += R.SpilledTemps;
  LifetimeSplits += R.LifetimeSplits;
  MovesCoalesced += R.MovesCoalesced;
  SplitEdges += R.SplitEdges;
  DataflowIterations += R.DataflowIterations;
  ColoringIterations += R.ColoringIterations;
  InterferenceEdges += R.InterferenceEdges;
  AllocSeconds += R.AllocSeconds;
  // WallSeconds is intentionally NOT accumulated: it is elapsed module
  // time, set exactly once by the module-level driver. Summing it when a
  // driver merges per-function stats — or when compileModule folds in the
  // stats of the allocateModule call it wraps — would double-count the
  // same elapsed interval.
  return *this;
}

namespace {

/// Total number of lifetime holes (gaps between segments) over every
/// temporary — the quantity §2.2's hole-packing feeds on.
unsigned countLifetimeHoles(const LifetimeAnalysis &LT) {
  unsigned Holes = 0;
  for (unsigned V = 0; V < LT.numVRegs(); ++V) {
    size_t Segs = LT.vreg(V).Segs.size();
    if (Segs > 1)
      Holes += static_cast<unsigned>(Segs - 1);
  }
  return Holes;
}

} // namespace

AllocStats lsra::allocateFunction(Function &F, const TargetDesc &TD,
                                  AllocatorKind K, const AllocOptions &Opts) {
  assert(F.CallsLowered && "lower calls before register allocation");
  obs::ScopedSpan FnSpan("alloc:", F.name(), "function");
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  // Warm the analysis cache with everything the chosen allocator consumes,
  // then time only the core allocation — the paper likewise reports times
  // "after setup activities common to both allocators".
  FunctionAnalyses FA(F, TD);
  switch (K) {
  case AllocatorKind::GraphColoring: {
    {
      obs::ScopedSpan S("liveness", "phase");
      FA.liveness();
    }
    obs::ScopedSpan S("loops", "phase");
    FA.loops();
    break;
  }
  default: { // the three scan allocators all consume lifetimes
    {
      obs::ScopedSpan S("liveness", "phase");
      FA.liveness();
    }
    obs::ScopedSpan S("lifetimes", "phase");
    FA.lifetimes();
    if (CR.enabled())
      CR.counter("lifetime.holes").add(countLifetimeHoles(FA.lifetimes()));
    break;
  }
  }
  Timer T;
  T.start();
  AllocStats Stats;
  {
    obs::ScopedSpan Scan("scan", "phase");
    switch (K) {
    case AllocatorKind::SecondChanceBinpack:
      Stats = runSecondChanceBinpack(F, TD, Opts, FA);
      break;
    case AllocatorKind::GraphColoring:
      Stats = runGraphColoring(F, TD, Opts, FA);
      break;
    case AllocatorKind::TwoPassBinpack:
      Stats = runTwoPassBinpack(F, TD, Opts, FA);
      break;
    case AllocatorKind::PolettoScan:
      Stats = runPolettoScan(F, TD, Opts, FA);
      break;
    }
  }
  T.stop();
  Stats.AllocSeconds = T.seconds();
  // The allocator rewrote the instruction stream (and resolution may have
  // added blocks); everything cached above is stale.
  FA.invalidate();
  if (Opts.SpillCleanup) {
    obs::ScopedSpan S("spill-cleanup", "pass");
    cleanupSpillCode(F, TD);
  }
  if (Opts.RunPeephole) {
    obs::ScopedSpan S("peephole", "pass");
    runPeephole(F);
  }
  if (Opts.CalleeSaves) {
    obs::ScopedSpan S("callee-saves", "pass");
    insertCalleeSaves(F, TD);
  }
  if (CR.enabled()) {
    CR.counter("alloc.functions").add(1);
    CR.distribution("alloc.time.function_s").sample(Stats.AllocSeconds);
  }
  LSRA_LOG(2, "alloc %s [%s]: candidates=%u spilled=%u static-spill=%u "
              "splits=%u",
           F.name().c_str(), allocatorName(K), Stats.RegCandidates,
           Stats.SpilledTemps, Stats.staticSpillInstrs(),
           Stats.LifetimeSplits);
  return Stats;
}

unsigned lsra::resolveThreadCount(unsigned Requested, unsigned NumItems) {
  unsigned T = Requested == 0 ? ThreadPool::defaultThreadCount() : Requested;
  return std::max(1u, std::min(T, std::max(NumItems, 1u)));
}

AllocStats lsra::allocateModule(Module &M, const TargetDesc &TD,
                                AllocatorKind K, const AllocOptions &Opts) {
  Timer Wall;
  Wall.start();
  AllocStats Total;
  unsigned N = M.numFunctions();
  unsigned Threads = resolveThreadCount(Opts.Threads, N);
  if (Threads <= 1) {
    for (auto &F : M.functions())
      Total += allocateFunction(*F, TD, K, Opts);
  } else {
    // Functions are independent (each allocator mutates only its own
    // Function); merge the per-function statistics in index order so the
    // totals match the sequential run exactly.
    std::vector<AllocStats> Per(N);
    parallelFor(N, Threads, [&](unsigned I) {
      Per[I] = allocateFunction(M.function(I), TD, K, Opts);
    });
    for (const AllocStats &S : Per)
      Total += S;
  }
  Wall.stop();
  Total.WallSeconds = Wall.seconds();
  return Total;
}
