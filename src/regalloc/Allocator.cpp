//===- regalloc/Allocator.cpp ---------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Allocator.h"

#include "passes/Peephole.h"
#include "passes/SpillCleanup.h"
#include "regalloc/Binpack.h"
#include "regalloc/Coloring.h"
#include "regalloc/Poletto.h"
#include "regalloc/TwoPass.h"
#include "support/Timer.h"
#include "target/CalleeSave.h"

using namespace lsra;

const char *lsra::allocatorName(AllocatorKind K) {
  switch (K) {
  case AllocatorKind::SecondChanceBinpack:
    return "second-chance-binpack";
  case AllocatorKind::GraphColoring:
    return "graph-coloring";
  case AllocatorKind::TwoPassBinpack:
    return "two-pass-binpack";
  case AllocatorKind::PolettoScan:
    return "poletto-scan";
  }
  return "unknown";
}

AllocStats &AllocStats::operator+=(const AllocStats &R) {
  EvictLoads += R.EvictLoads;
  EvictStores += R.EvictStores;
  EvictMoves += R.EvictMoves;
  ResolveLoads += R.ResolveLoads;
  ResolveStores += R.ResolveStores;
  ResolveMoves += R.ResolveMoves;
  RegCandidates += R.RegCandidates;
  SpilledTemps += R.SpilledTemps;
  LifetimeSplits += R.LifetimeSplits;
  MovesCoalesced += R.MovesCoalesced;
  SplitEdges += R.SplitEdges;
  DataflowIterations += R.DataflowIterations;
  ColoringIterations += R.ColoringIterations;
  InterferenceEdges += R.InterferenceEdges;
  AllocSeconds += R.AllocSeconds;
  return *this;
}

AllocStats lsra::allocateFunction(Function &F, const TargetDesc &TD,
                                  AllocatorKind K, const AllocOptions &Opts) {
  assert(F.CallsLowered && "lower calls before register allocation");
  // Time only the core allocation, after shared setup (CFG, liveness, loop
  // analysis happen inside but are common work both allocators repeat; the
  // paper likewise times "after setup activities common to both
  // allocators" — our Table 3 bench subtracts a measured setup baseline).
  Timer T;
  T.start();
  AllocStats Stats;
  switch (K) {
  case AllocatorKind::SecondChanceBinpack:
    Stats = runSecondChanceBinpack(F, TD, Opts);
    break;
  case AllocatorKind::GraphColoring:
    Stats = runGraphColoring(F, TD, Opts);
    break;
  case AllocatorKind::TwoPassBinpack:
    Stats = runTwoPassBinpack(F, TD, Opts);
    break;
  case AllocatorKind::PolettoScan:
    Stats = runPolettoScan(F, TD, Opts);
    break;
  }
  T.stop();
  Stats.AllocSeconds = T.seconds();
  if (Opts.SpillCleanup)
    cleanupSpillCode(F, TD);
  if (Opts.RunPeephole)
    runPeephole(F);
  if (Opts.CalleeSaves)
    insertCalleeSaves(F, TD);
  return Stats;
}

AllocStats lsra::allocateModule(Module &M, const TargetDesc &TD,
                                AllocatorKind K, const AllocOptions &Opts) {
  AllocStats Total;
  for (auto &F : M.functions())
    Total += allocateFunction(*F, TD, K, Opts);
  return Total;
}
