//===- regalloc/ParallelCopy.h - Edge data-movement sequencing -*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sequencing of the loads, stores, and moves that resolve one CFG edge
/// (§2.4): "we are careful to model the data movement across the edge in a
/// manner that produces the correct resolution instructions in the
/// semantically-correct order, even in the case where two (or more)
/// temporaries swap their allocated registers."
///
/// All operations on an edge are conceptually parallel. We emit:
///   1. stores (they only read registers, so they must see pre-edge values);
///   2. register-to-register moves, topologically ordered, with cycles
///      broken through a scratch frame slot;
///   3. loads from memory homes (their destination registers are never
///      sources of pending moves once the moves have been emitted).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_PARALLELCOPY_H
#define LSRA_REGALLOC_PARALLELCOPY_H

#include "regalloc/SpillSlots.h"

#include <vector>

namespace lsra {

class ParallelCopy {
public:
  /// Move temporary \p Temp from \p SrcReg to \p DstReg.
  void addMove(unsigned Temp, unsigned SrcReg, unsigned DstReg) {
    if (SrcReg != DstReg)
      Moves.push_back({Temp, SrcReg, DstReg});
  }
  /// Load temporary \p Temp from its memory home into \p DstReg.
  void addLoad(unsigned Temp, unsigned DstReg) {
    Loads.push_back({Temp, DstReg});
  }
  /// Store temporary \p Temp from \p SrcReg to its memory home.
  void addStore(unsigned Temp, unsigned SrcReg) {
    Stores.push_back({Temp, SrcReg});
  }

  bool empty() const {
    return Moves.empty() && Loads.empty() && Stores.empty();
  }

  /// Append the sequenced instructions to \p Out. Inserted instructions are
  /// tagged with the Resolve* spill kinds. Returns the number of
  /// instructions emitted.
  unsigned emit(std::vector<Instr> &Out, SpillSlots &Slots, Function &F);

private:
  struct MoveOp {
    unsigned Temp, Src, Dst;
  };
  struct MemOp {
    unsigned Temp, Reg;
  };
  std::vector<MoveOp> Moves;
  std::vector<MemOp> Loads;
  std::vector<MemOp> Stores;
};

} // namespace lsra

#endif // LSRA_REGALLOC_PARALLELCOPY_H
