//===- regalloc/Binpack.h - Second-chance binpacking -----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's register allocator (§2): a single forward linear scan that
/// simultaneously allocates registers and rewrites the instruction stream,
/// giving spilled temporaries a second (or third, ...) chance at a register
/// at each lifetime split, followed by the CFG-edge resolution phase and
/// its consistency dataflow.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_BINPACK_H
#define LSRA_REGALLOC_BINPACK_H

#include "regalloc/Allocator.h"

namespace lsra {

class FunctionAnalyses;

/// Run second-chance binpacking on \p F (calls must be lowered). Leaves the
/// function fully allocated (no virtual registers). Does not run the
/// peephole or insert callee saves; allocateFunction() wraps those.
AllocStats runSecondChanceBinpack(Function &F, const TargetDesc &TD,
                                  const AllocOptions &Opts);

/// As above, consuming the shared analyses in \p FA (numbering, liveness,
/// loops, lifetimes) instead of rebuilding them. \p FA must describe the
/// current IR of \p F; it is stale once this returns.
AllocStats runSecondChanceBinpack(Function &F, const TargetDesc &TD,
                                  const AllocOptions &Opts,
                                  FunctionAnalyses &FA);

} // namespace lsra

#endif // LSRA_REGALLOC_BINPACK_H
