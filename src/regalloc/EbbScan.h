//===- regalloc/EbbScan.h - One-pass EBB second-chance scan ----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fifth backend: a one-pass second-chance allocator over extended
/// basic blocks, the latency-optimal point the paper's compile-time story
/// (Table 3) gestures at and the shape both band0 JIT codebases ship. No
/// global liveness, no lifetime intervals, no consistency dataflow — the
/// scan walks the CFG in reverse post-order, grows each EBB as the tree of
/// join-free successors, and carries the binpacking state (register
/// occupancy, dirty bits, spill homes) down the tree recursively. Spills
/// happen at the point of loss, exactly as in §2's scan; at every edge
/// leaving an EBB the dirty register-resident temporaries are stored, so
/// memory is the canonical location on all cross-EBB edges and no
/// resolution pass is needed (the exit store IS the degenerate edge
/// repair).
///
/// The trade: more conservative than the full binpacker (values are
/// reloaded at every EBB head), but allocation is strictly one pass and
/// one rewrite — this is the tier-0 backend the compile server answers
/// cold requests from (driver/Pipeline.h TierPolicy).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_EBBSCAN_H
#define LSRA_REGALLOC_EBBSCAN_H

#include "regalloc/Allocator.h"

namespace lsra {

class FunctionAnalyses;

/// Run the EBB one-pass scan on \p F (calls must be lowered). Leaves the
/// function fully allocated (no virtual registers). Does not run the
/// peephole or insert callee saves; allocateFunction() wraps those.
AllocStats runEbbScan(Function &F, const TargetDesc &TD,
                      const AllocOptions &Opts);

/// As above with the shared analysis cache. The EBB scan consumes no
/// global analyses — \p FA is accepted only so the backend fits the
/// registry's uniform entry-point shape; it is stale once this returns.
AllocStats runEbbScan(Function &F, const TargetDesc &TD,
                      const AllocOptions &Opts, FunctionAnalyses &FA);

} // namespace lsra

#endif // LSRA_REGALLOC_EBBSCAN_H
