//===- regalloc/SpillSlots.h - Memory homes for temporaries ---*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazily assigns each spilled temporary its "memory home" frame slot
/// (§2.3), plus one scratch slot per register class used to break cycles in
/// resolution parallel copies (§2.4).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_SPILLSLOTS_H
#define LSRA_REGALLOC_SPILLSLOTS_H

#include "ir/Function.h"

#include <vector>

namespace lsra {

class SpillSlots {
public:
  explicit SpillSlots(Function &F)
      : F(F), Home(F.numVRegs(), ~0u) {}

  /// The memory home of temporary \p V, created on first request.
  unsigned homeOf(unsigned V) {
    if (Home[V] == ~0u)
      Home[V] = F.newSlot(F.vregClass(V));
    return Home[V];
  }

  bool hasHome(unsigned V) const { return Home[V] != ~0u; }

  /// A scratch slot of class \p RC (for parallel-copy cycle breaking).
  unsigned scratch(RegClass RC) {
    unsigned &S = RC == RegClass::Int ? IntScratch : FpScratch;
    if (S == ~0u)
      S = F.newSlot(RC);
    return S;
  }

  /// Build the spill load/store instruction for \p V's home.
  Instr makeLoad(unsigned V, unsigned PReg, SpillKind Kind) {
    Instr I(F.vregClass(V) == RegClass::Float ? Opcode::FLdSlot
                                              : Opcode::LdSlot,
            Operand::preg(PReg), Operand::slot(homeOf(V)));
    I.Spill = Kind;
    return I;
  }
  Instr makeStore(unsigned V, unsigned PReg, SpillKind Kind) {
    Instr I(F.vregClass(V) == RegClass::Float ? Opcode::FStSlot
                                              : Opcode::StSlot,
            Operand::preg(PReg), Operand::slot(homeOf(V)));
    I.Spill = Kind;
    return I;
  }

private:
  Function &F;
  std::vector<unsigned> Home;
  unsigned IntScratch = ~0u;
  unsigned FpScratch = ~0u;
};

} // namespace lsra

#endif // LSRA_REGALLOC_SPILLSLOTS_H
