//===- regalloc/TwoPass.cpp -----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/TwoPass.h"

#include "analysis/AnalysisCache.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Order.h"
#include "obs/DecisionLog.h"
#include "regalloc/Lifetime.h"
#include "regalloc/SpillSlots.h"

#include <algorithm>

using namespace lsra;

namespace {

constexpr unsigned NoReg = ~0u;

/// Per-register booking of busy position ranges (committed whole lifetimes,
/// point lifetimes of spill references, and the register's own fixed
/// convention segments). Kept sorted by start.
class RegBook {
public:
  void book(unsigned Start, unsigned End) {
    Segment S{Start, End};
    auto It = std::lower_bound(
        Busy.begin(), Busy.end(), S,
        [](const Segment &A, const Segment &B) { return A.Start < B.Start; });
    Busy.insert(It, S);
  }

  void bookLifetime(const Lifetime &LT) {
    for (const Segment &S : LT.Segs)
      book(S.Start, S.End);
  }

  bool overlaps(unsigned Start, unsigned End) const {
    for (const Segment &S : Busy) {
      if (S.Start >= End)
        break;
      if (S.End > Start)
        return true;
    }
    return false;
  }

  bool overlapsLifetime(const Lifetime &LT) const {
    for (const Segment &S : LT.Segs)
      if (overlaps(S.Start, S.End))
        return true;
    return false;
  }

  void unbook(const Lifetime &LT) {
    for (const Segment &S : LT.Segs) {
      auto It = std::find_if(Busy.begin(), Busy.end(), [&](const Segment &B) {
        return B.Start == S.Start && B.End == S.End;
      });
      if (It != Busy.end())
        Busy.erase(It);
    }
  }

private:
  std::vector<Segment> Busy;
};

class TwoPassAllocator {
public:
  TwoPassAllocator(Function &F, const TargetDesc &TD, FunctionAnalyses &FA)
      : F(F), TD(TD), Num(FA.numbering()), LT(FA.lifetimes()), Slots(F) {}

  AllocStats run();

private:
  Function &F;
  const TargetDesc &TD;
  const Numbering &Num;
  const LifetimeAnalysis &LT;
  SpillSlots Slots;
  AllocStats Stats;

  /// CFG-correct lifetimes: linear-order artifact gaps are filled, since a
  /// whole-lifetime allocator has no resolution phase to patch a clobbered
  /// value flowing around a gap.
  std::vector<Lifetime> Filled;
  std::vector<unsigned> Assigned; // vreg -> register or NoReg (memory)
  std::vector<RegBook> Books;     // indexed by physical register
  std::vector<std::vector<unsigned>> OwnersOf; // reg -> committed vregs
  /// Per spilled vreg: (reference position, register for that point).
  std::vector<std::vector<std::pair<unsigned, unsigned>>> PointRegs;

  bool tryAssignWhole(unsigned V);
  void unassign(unsigned V, std::vector<unsigned> &Requeue);
  unsigned assignPoint(RegClass RC, unsigned Start, unsigned End,
                       std::vector<unsigned> &Requeue);
  void rewrite();
};

AllocStats TwoPassAllocator::run() {
  assert(F.CallsLowered && "lower calls before register allocation");
  unsigned NumV = F.numVRegs();
  Stats.RegCandidates = NumV;
  Assigned.assign(NumV, NoReg);
  Filled.resize(NumV);
  for (unsigned V = 0; V < NumV; ++V)
    Filled[V] = LT.vreg(V).withArtifactGapsFilled();
  Books.resize(NumPRegs);
  OwnersOf.resize(NumPRegs);
  for (unsigned P = 0; P < NumPRegs; ++P)
    Books[P].bookLifetime(LT.pregFixed(P));

  // Pass 1: walk lifetimes in start order, committing whole lifetimes.
  std::vector<unsigned> ByStart;
  for (unsigned V = 0; V < NumV; ++V)
    if (!LT.vreg(V).empty())
      ByStart.push_back(V);
  std::sort(ByStart.begin(), ByStart.end(), [&](unsigned A, unsigned B) {
    return LT.vreg(A).startPos() < LT.vreg(B).startPos();
  });
  std::vector<unsigned> Spilled;
  for (unsigned V : ByStart)
    if (!tryAssignWhole(V))
      Spilled.push_back(V);

  // Pass 1b: point lifetimes for every reference of a spilled temporary
  // ("these point lifetimes are always assigned a register", §2.2). When a
  // point cannot be placed, committed whole lifetimes are demoted to memory
  // and their references re-queued.
  std::vector<unsigned> Queue = Spilled;
  PointRegs.assign(NumV, {});
  obs::DecisionLog &DL = obs::DecisionLog::global();
  while (!Queue.empty()) {
    unsigned V = Queue.back();
    Queue.pop_back();
    ++Stats.SpilledTemps;
    if (DL.enabled())
      DL.record(F, obs::DecisionKind::SpillWhole, V,
                LT.vreg(V).startPos(), obs::NoValue,
                "whole lifetime fits no register; point lifetimes only");
    const Lifetime &L = LT.vreg(V);
    for (const Reference &R : L.Refs) {
      // A def point extends one past the def position; a use point covers
      // the read. A use and def of the same temp at one instruction share
      // the instruction's [usePos, defPos+1) range via separate points.
      unsigned Start = R.Pos;
      unsigned End = R.Pos + 1;
      std::vector<unsigned> Requeue;
      unsigned Reg = assignPoint(F.vregClass(V), Start, End, Requeue);
      PointRegs[V].push_back({R.Pos, Reg});
      for (unsigned RV : Requeue)
        Queue.push_back(RV);
    }
  }

  rewrite();
  return Stats;
}

bool TwoPassAllocator::tryAssignWhole(unsigned V) {
  const Lifetime &L = Filled[V];
  for (unsigned R : TD.allocOrder(F.vregClass(V))) {
    if (Books[R].overlapsLifetime(L))
      continue;
    Books[R].bookLifetime(L);
    OwnersOf[R].push_back(V);
    Assigned[V] = R;
    return true;
  }
  return false;
}

void TwoPassAllocator::unassign(unsigned V, std::vector<unsigned> &Requeue) {
  unsigned R = Assigned[V];
  assert(R != NoReg && "unassigning an unassigned temp");
  Books[R].unbook(Filled[V]);
  auto &Owners = OwnersOf[R];
  Owners.erase(std::find(Owners.begin(), Owners.end(), V));
  Assigned[V] = NoReg;
  Requeue.push_back(V);
}

unsigned TwoPassAllocator::assignPoint(RegClass RC, unsigned Start,
                                       unsigned End,
                                       std::vector<unsigned> &Requeue) {
  for (unsigned R : TD.allocOrder(RC))
    if (!Books[R].overlaps(Start, End)) {
      Books[R].book(Start, End);
      return R;
    }
  // Steal: demote the committed whole lifetimes overlapping this point in
  // the first register where that suffices.
  for (unsigned R : TD.allocOrder(RC)) {
    std::vector<unsigned> Victims;
    for (unsigned V : OwnersOf[R])
      if (Filled[V].liveAt(Start) || Filled[V].liveAt(End - 1))
        Victims.push_back(V);
    if (Victims.empty())
      continue; // blocked by fixed segments or other points
    for (unsigned V : Victims)
      unassign(V, Requeue);
    if (Books[R].overlaps(Start, End))
      continue; // still blocked (fixed/point); victims already requeued
    Books[R].book(Start, End);
    return R;
  }
  assert(false && "two-pass binpacking: no register for a point lifetime");
  return 0;
}

void TwoPassAllocator::rewrite() {
  // Point registers recorded per (vreg, position); consume in order.
  std::vector<unsigned> Cursor(F.numVRegs(), 0);
  auto PointRegAt = [&](unsigned V, unsigned Pos) {
    auto &Points = PointRegs[V];
    unsigned &C = Cursor[V];
    while (C < Points.size() && Points[C].first < Pos)
      ++C;
    assert(C < Points.size() && Points[C].first == Pos &&
           "missing point register");
    return Points[C].second;
  };

  for (unsigned B = 0; B < F.numBlocks(); ++B) {
    Block &Blk = F.block(B);
    std::vector<uint32_t> Out;
    Out.reserve(Blk.size());
    bool Inserted = false;
    for (unsigned Idx = 0; Idx < Blk.size(); ++Idx) {
      Instr I = Blk.instrs()[Idx];
      unsigned G = Num.instrIndex(B, Idx);
      unsigned UsePos = Numbering::usePos(G);
      unsigned DefPos = Numbering::defPos(G);
      const OpcodeInfo &Info = I.info();
      unsigned LoadedV = ~0u;
      for (unsigned S = Info.NumDefs;
           S < unsigned(Info.NumDefs) + Info.NumUses; ++S) {
        Operand &Op = I.op(S);
        if (!Op.isVReg())
          continue;
        unsigned V = Op.vregId();
        unsigned R = Assigned[V];
        if (R == NoReg) {
          R = PointRegAt(V, UsePos);
          if (V != LoadedV) {
            Out.push_back(
                Blk.makeInstr(Slots.makeLoad(V, R, SpillKind::EvictLoad)));
            ++Stats.EvictLoads;
            Inserted = true;
            LoadedV = V;
          }
        }
        Op = Operand::preg(R);
      }
      uint32_t StoreId = ~0u;
      if (Info.NumDefs == 1 && I.op(0).isVReg()) {
        unsigned V = I.op(0).vregId();
        unsigned R = Assigned[V];
        if (R == NoReg) {
          R = PointRegAt(V, DefPos);
          StoreId = Blk.makeInstr(Slots.makeStore(V, R, SpillKind::EvictStore));
          ++Stats.EvictStores;
          Inserted = true;
        }
        I.op(0) = Operand::preg(R);
      }
      Blk.instrs()[Idx] = I; // rewritten in place: id preserved
      Out.push_back(Blk.instrId(Idx));
      if (StoreId != ~0u)
        Out.push_back(StoreId);
    }
    if (Inserted)
      Blk.setInstrIds(Out);
  }
}

} // namespace

// Out-of-line member storage for PointRegs (declared via the class above).
// (Defined here to keep the class body compact.)

AllocStats lsra::runTwoPassBinpack(Function &F, const TargetDesc &TD,
                                   const AllocOptions &Opts) {
  FunctionAnalyses FA(F, TD);
  return runTwoPassBinpack(F, TD, Opts, FA);
}

AllocStats lsra::runTwoPassBinpack(Function &F, const TargetDesc &TD,
                                   const AllocOptions &Opts,
                                   FunctionAnalyses &FA) {
  (void)Opts;
  assert(&FA.function() == &F && "analyses are for a different function");
  return TwoPassAllocator(F, TD, FA).run();
}
