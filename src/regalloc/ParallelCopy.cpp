//===- regalloc/ParallelCopy.cpp ------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/ParallelCopy.h"

#include <algorithm>

using namespace lsra;

unsigned ParallelCopy::emit(std::vector<Instr> &Out, SpillSlots &Slots,
                            Function &F) {
  (void)F;
  unsigned Emitted = 0;
  auto MoveOpcode = [](RegClass RC) {
    return RC == RegClass::Float ? Opcode::FMov : Opcode::Mov;
  };

  // 1. Stores read pre-edge register values; nothing has been clobbered yet.
  for (const MemOp &S : Stores) {
    Out.push_back(Slots.makeStore(S.Temp, S.Reg, SpillKind::ResolveStore));
    ++Emitted;
  }

  // 2. Register moves. Each register is the destination of at most one move
  // and the source of at most one move (one temp per location), so the move
  // graph is a partial permutation: chains plus disjoint cycles.
  std::vector<MoveOp> Pending = Moves;
  // ScratchLoad[i] marks a move whose source has been saved to the scratch
  // slot of that class (cycle breaking): emit a load instead.
  while (!Pending.empty()) {
    bool Progress = false;
    for (unsigned I = 0; I < Pending.size();) {
      unsigned Dst = Pending[I].Dst;
      bool DstIsSource =
          std::any_of(Pending.begin(), Pending.end(), [&](const MoveOp &M) {
            return M.Src == Dst;
          });
      if (DstIsSource) {
        ++I;
        continue;
      }
      RegClass RC = pregClass(Dst);
      Out.push_back(Instr(MoveOpcode(RC), Operand::preg(Dst),
                          Operand::preg(Pending[I].Src)));
      Out.back().Spill = SpillKind::ResolveMove;
      ++Emitted;
      Pending.erase(Pending.begin() + I);
      Progress = true;
    }
    if (Pending.empty())
      break;
    if (!Progress) {
      // Every remaining destination is also a source: pure cycles. Break
      // one cycle by spilling one member through the scratch slot.
      // Follow the cycle starting at Pending[0].
      std::vector<MoveOp> Cycle;
      unsigned Cur = 0;
      while (true) {
        Cycle.push_back(Pending[Cur]);
        unsigned NextSrc = Pending[Cur].Dst;
        unsigned Next = ~0u;
        for (unsigned I = 0; I < Pending.size(); ++I)
          if (Pending[I].Src == NextSrc) {
            Next = I;
            break;
          }
        assert(Next != ~0u && "broken cycle structure");
        if (Pending[Next].Src == Cycle.front().Src)
          break; // back to the start
        Cur = Next;
      }
      // Cycle = r0->r1, r1->r2, ..., r_{k-1}->r0 in order. Save the last
      // source (r_{k-1}) to scratch, emit the other moves back to front,
      // then reload r0's value from scratch.
      const MoveOp &Last = Cycle.back(); // r_{k-1} -> r0? No: see below.
      // Cycle[i] moves Cycle[i].Src -> Cycle[i].Dst and
      // Cycle[i].Dst == Cycle[i+1].Src (cyclically).
      RegClass RC = pregClass(Last.Src);
      unsigned Scratch = Slots.scratch(RC);
      // Save the value that the final emitted move would clobber: the
      // source of the *first* move in the cycle order we emit. We emit
      // moves in reverse cycle order: Cycle[k-1], Cycle[k-2], ..., so the
      // first clobbered source is Cycle[k-1].Dst == Cycle[0].Src... save
      // Cycle.back().Dst's value? Work it through concretely:
      //   cycle a->b, b->c, c->a. Reverse order: (c->a), (b->c), (a->b).
      //   Emitting c->a clobbers a, which is the source of the last move.
      //   So save a = Cycle.front().Src first, and emit the last move as a
      //   load from scratch.
      unsigned SavedReg = Cycle.front().Src;
      RegClass SavedRC = pregClass(SavedReg);
      unsigned SavedScratch = Slots.scratch(SavedRC);
      (void)Scratch;
      {
        Instr StI(SavedRC == RegClass::Float ? Opcode::FStSlot
                                             : Opcode::StSlot,
                  Operand::preg(SavedReg), Operand::slot(SavedScratch));
        StI.Spill = SpillKind::ResolveStore;
        Out.push_back(StI);
        ++Emitted;
      }
      for (unsigned I = Cycle.size(); I-- > 1;) {
        RegClass MRC = pregClass(Cycle[I].Dst);
        Out.push_back(Instr(MoveOpcode(MRC), Operand::preg(Cycle[I].Dst),
                            Operand::preg(Cycle[I].Src)));
        Out.back().Spill = SpillKind::ResolveMove;
        ++Emitted;
      }
      {
        Instr LdI(SavedRC == RegClass::Float ? Opcode::FLdSlot
                                             : Opcode::LdSlot,
                  Operand::preg(Cycle.front().Dst),
                  Operand::slot(SavedScratch));
        LdI.Spill = SpillKind::ResolveLoad;
        Out.push_back(LdI);
        ++Emitted;
      }
      // Remove the cycle's moves from Pending.
      for (const MoveOp &C : Cycle) {
        auto It = std::find_if(Pending.begin(), Pending.end(),
                               [&](const MoveOp &M) {
                                 return M.Src == C.Src && M.Dst == C.Dst;
                               });
        assert(It != Pending.end());
        Pending.erase(It);
      }
    }
  }

  // 3. Loads: their destinations cannot be pending-move sources any more,
  // and home slots are never written by this edge's stores for the same
  // temp (a temp is either stored or loaded on one edge, not both).
  for (const MemOp &L : Loads) {
    Out.push_back(Slots.makeLoad(L.Temp, L.Reg, SpillKind::ResolveLoad));
    ++Emitted;
  }
  return Emitted;
}
