//===- regalloc/Registry.h - Allocator backend registry --------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator backend registry. Every backend describes itself once — a
/// stable kind id, the canonical name, its CLI aliases, capability flags,
/// and a run entry point — and every consumer (the allocateFunction
/// dispatch, CLI flag parsing, the fuzz grid, the compare/bench tools)
/// enumerates the registry instead of repeating a hard-coded switch.
/// Adding a backend is now one registration line plus its own TU; nothing
/// else in the tree names the new kind.
///
/// Kind ids are stable by construction: AllocatorKind enumerators are
/// appended, never reordered, because their integer value participates in
/// compile-cache keys (cache::makeModuleKey / makeFunctionKey). The
/// registry asserts registration order matches enumerator order so the
/// table can be indexed by kind directly.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_REGISTRY_H
#define LSRA_REGALLOC_REGISTRY_H

#include "regalloc/Allocator.h"

#include <vector>

namespace lsra {

class FunctionAnalyses;

/// Capability flags: what a backend consumes (so allocateFunction warms
/// exactly the analyses it needs) and where it may be used.
enum AllocatorCaps : unsigned {
  /// Backend consumes global liveness (FunctionAnalyses::liveness).
  CapNeedsLiveness = 1u << 0,
  /// Backend consumes lifetime intervals/holes (…::lifetimes). Implies the
  /// "lifetime.holes" counter is meaningful for it.
  CapNeedsLifetimes = 1u << 1,
  /// Backend consumes the loop forest (…::loops).
  CapNeedsLoops = 1u << 2,
  /// Backend is fast and self-contained enough to serve as tier 0 in the
  /// tiered compile server (see driver/Pipeline.h TierPolicy): one pass,
  /// no global dataflow, output still verifier-clean.
  CapTierEligible = 1u << 3,
};

/// One registered backend. Run never includes the post-passes (peephole,
/// callee saves, spill cleanup); allocateFunction owns those uniformly.
struct AllocatorInfo {
  AllocatorKind Kind;       ///< stable id (== index in the registry)
  const char *Name;         ///< canonical name (allocatorName)
  std::vector<const char *> Aliases; ///< extra accepted CLI spellings
  unsigned Caps = 0;        ///< AllocatorCaps bits
  AllocStats (*Run)(Function &F, const TargetDesc &TD,
                    const AllocOptions &Opts, FunctionAnalyses &FA) = nullptr;

  bool needs(AllocatorCaps C) const { return (Caps & C) != 0; }
};

/// Registry of every built-in backend, in AllocatorKind order. The process
/// singleton is populated eagerly on first use (deterministic order, no
/// static-initialisation or archive-linking surprises).
class AllocatorRegistry {
public:
  static const AllocatorRegistry &global();

  const AllocatorInfo &info(AllocatorKind K) const;
  /// Lookup by canonical name or alias; nullptr when unknown.
  const AllocatorInfo *findByName(const std::string &Name) const;

  const std::vector<AllocatorInfo> &all() const { return Table; }
  /// Every registered kind, in stable id order — the enumeration the fuzz
  /// grid, `lsra compare`, and the bench tools iterate.
  std::vector<AllocatorKind> kinds() const;
  /// Kinds carrying every capability bit of \p CapMask.
  std::vector<AllocatorKind> kindsWithCaps(unsigned CapMask) const;

  /// Registration hook for the built-in table (Registry.cpp). Asserts that
  /// ids arrive densely in enumerator order.
  void add(AllocatorInfo Info);

private:
  AllocatorRegistry() = default;
  std::vector<AllocatorInfo> Table;
};

} // namespace lsra

#endif // LSRA_REGALLOC_REGISTRY_H
