//===- regalloc/Poletto.h - Interval linear scan ---------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The original "linear scan" of Poletto, Engler & Kaashoek's `C/tcc
/// system, as described in §4 of the paper: each temporary is a single
/// [start, end] interval (no holes, no partial lifetimes); the scan keeps a
/// list of active intervals and, when the K registers are exhausted, spills
/// the interval with the furthest end point. Spilled references go through
/// reserved scratch registers, as a dynamic code generator would do.
///
/// Calling-convention adaptation: intervals that overlap a call site are
/// only given callee-saved registers; caller-saved registers are available
/// to intervals between calls.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_POLETTO_H
#define LSRA_REGALLOC_POLETTO_H

#include "regalloc/Allocator.h"

namespace lsra {

class FunctionAnalyses;

AllocStats runPolettoScan(Function &F, const TargetDesc &TD,
                          const AllocOptions &Opts);

/// As above, consuming the shared analyses in \p FA instead of rebuilding
/// them. \p FA is stale once this returns.
AllocStats runPolettoScan(Function &F, const TargetDesc &TD,
                          const AllocOptions &Opts, FunctionAnalyses &FA);

} // namespace lsra

#endif // LSRA_REGALLOC_POLETTO_H
