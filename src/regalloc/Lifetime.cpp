//===- regalloc/Lifetime.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Lifetime.h"

#include <algorithm>

using namespace lsra;

bool Lifetime::liveAt(unsigned Pos) const {
  auto It = std::upper_bound(
      Segs.begin(), Segs.end(), Pos,
      [](unsigned P, const Segment &S) { return P < S.Start; });
  if (It == Segs.begin())
    return false;
  return std::prev(It)->contains(Pos);
}

unsigned Lifetime::holeEndAfter(unsigned Pos) const {
  auto It = std::upper_bound(
      Segs.begin(), Segs.end(), Pos,
      [](unsigned P, const Segment &S) { return P < S.Start; });
  if (It != Segs.begin() && std::prev(It)->contains(Pos))
    return Pos; // live, not in a hole
  if (It == Segs.end())
    return InfPos;
  return It->Start;
}

bool Lifetime::holeIsRealAt(unsigned Pos) const {
  auto It = std::upper_bound(
      Segs.begin(), Segs.end(), Pos,
      [](unsigned P, const Segment &S) { return P < S.Start; });
  assert((It == Segs.begin() || !std::prev(It)->contains(Pos)) &&
         "position is live, not in a hole");
  if (It == Segs.end())
    return true; // dead for good
  return !It->LiveInStart;
}

Lifetime Lifetime::withArtifactGapsFilled() const {
  // The copy lives in the same arena as the source (heap when standalone),
  // so whole-lifetime allocators building a filled table stay malloc-free.
  Lifetime Out(Segs.get_allocator().arena());
  Out.Refs = Refs;
  for (const Segment &S : Segs) {
    if (!Out.Segs.empty() && S.LiveInStart) {
      // The value survives the gap: extend the previous segment.
      Out.Segs.back().End = S.End;
      continue;
    }
    Out.Segs.push_back(S);
  }
  return Out;
}

const Reference *Lifetime::nextRefAfter(unsigned Pos) const {
  auto It = std::lower_bound(
      Refs.begin(), Refs.end(), Pos,
      [](const Reference &R, unsigned P) { return R.Pos < P; });
  return It == Refs.end() ? nullptr : &*It;
}

bool Lifetime::overlaps(const Lifetime &Other) const {
  auto A = Segs.begin(), AE = Segs.end();
  auto B = Other.Segs.begin(), BE = Other.Segs.end();
  while (A != AE && B != BE) {
    if (A->End <= B->Start)
      ++A;
    else if (B->End <= A->Start)
      ++B;
    else
      return true;
  }
  return false;
}

bool Lifetime::fitsInHolesOf(const Lifetime &Other, unsigned From) const {
  for (const Segment &S : Segs) {
    if (S.End <= From)
      continue;
    unsigned Start = std::max(S.Start, From);
    // Every position of [Start, S.End) must be a hole of Other.
    for (const Segment &O : Other.Segs) {
      if (O.End <= Start)
        continue;
      if (O.Start >= S.End)
        break;
      return false; // overlap with a live segment of Other
    }
  }
  return true;
}

void Lifetime::addSegmentFront(unsigned Start, unsigned End, bool LiveIn) {
  assert(Start < End && "empty segment");
  // Reverse-order construction: new segments arrive at ever-earlier
  // positions; keep them in the (reversed) vector and coalesce with the
  // most recently added (i.e. earliest so far) segment when they touch.
  if (!Segs.empty()) {
    Segment &Last = Segs.back(); // earliest segment added so far
    assert(End <= Last.End && "segments must be added in reverse order");
    if (End >= Last.Start) { // overlap or adjacency: merge
      if (Start < Last.Start) {
        Last.Start = Start;
        Last.LiveInStart = LiveIn; // the new piece is the merged front
      }
      return;
    }
  }
  Segs.push_back({Start, End, LiveIn});
}

void Lifetime::finalize() {
  std::reverse(Segs.begin(), Segs.end());
  std::reverse(Refs.begin(), Refs.end());
}

LifetimeAnalysis::LifetimeAnalysis(const Function &F, const Numbering &Num,
                                   const Liveness &LV, const LoopInfo &LI,
                                   const TargetDesc &TD) {
  unsigned NumV = F.numVRegs();
  VRegLTs.reserve(NumV);
  for (unsigned V = 0; V < NumV; ++V)
    VRegLTs.emplace_back(&Arena);
  for (Lifetime &LT : PRegLTs)
    LT = Lifetime(&Arena);

  // Per-register state during the reverse scan: the end position of the
  // segment currently being built (0 when the register is not live).
  std::vector<unsigned> VEnd(NumV, 0);
  std::array<unsigned, NumPRegs> PEnd{};

  // Single reverse pass over the static linear order (§2.1).
  for (unsigned B = F.numBlocks(); B-- > 0;) {
    const Block &Blk = F.block(B);
    unsigned BlockStart = Num.blockStartPos(B);
    unsigned BlockEnd = Num.blockEndPos(B);
    uint8_t Depth = static_cast<uint8_t>(std::min(LI.depth(B), 255u));

    // Temporaries live out of the block are live through its bottom.
    LV.liveOut(B).forEachSetBit([&](unsigned V) { VEnd[V] = BlockEnd; });
    // Physical registers never cross block boundaries in this IR.

    for (unsigned Idx = Blk.size(); Idx-- > 0;) {
      const Instr &I = Blk.instrs()[Idx];
      unsigned GIdx = Num.instrIndex(B, Idx);
      unsigned UsePos = Numbering::usePos(GIdx);
      unsigned DefPos = Numbering::defPos(GIdx);

      // Process defs first (we are scanning backward, so defs close the
      // segments opened by later uses).
      forEachDefinedReg(I, [&](const Operand &Op) {
        if (Op.isVReg()) {
          unsigned V = Op.vregId();
          unsigned End = VEnd[V] ? VEnd[V] : DefPos + 1; // dead def: point
          VRegLTs[V].addSegmentFront(DefPos, End);
          VRegLTs[V].Refs.push_back({DefPos, /*IsDef=*/true, Depth});
          VEnd[V] = 0;
        } else {
          unsigned P = Op.pregId();
          unsigned End = PEnd[P] ? PEnd[P] : DefPos + 1;
          PRegLTs[P].addSegmentFront(DefPos, End);
          PEnd[P] = 0;
        }
      });
      // Call clobbers are point defs of every caller-saved register; they
      // make the register's lifetime hole end at the call (§2.5).
      forEachClobberedReg(I, TD, [&](unsigned P) {
        if (PEnd[P]) {
          // Also closes any (illegal) live-through value; the allocators
          // never create one, but fixed code could.
          PRegLTs[P].addSegmentFront(DefPos, PEnd[P]);
          PEnd[P] = 0;
        } else {
          PRegLTs[P].addSegmentFront(DefPos, DefPos + 1);
        }
      });

      forEachUsedReg(I, [&](const Operand &Op) {
        if (Op.isVReg()) {
          unsigned V = Op.vregId();
          if (!VEnd[V])
            VEnd[V] = UsePos + 1;
          VRegLTs[V].Refs.push_back({UsePos, /*IsDef=*/false, Depth});
        } else {
          unsigned P = Op.pregId();
          if (!PEnd[P])
            PEnd[P] = UsePos + 1;
        }
      });
    }

    // Registers still live at the block top extend to the block start
    // (live-in temporaries, or argument registers in the entry block). The
    // LiveIn flag marks that the preceding linear gap, if any, is not a
    // true hole: the value arrives over a CFG edge.
    for (unsigned V = 0; V < NumV; ++V)
      if (VEnd[V]) {
        VRegLTs[V].addSegmentFront(BlockStart, VEnd[V], /*LiveIn=*/true);
        VEnd[V] = 0;
      }
    for (unsigned P = 0; P < NumPRegs; ++P)
      if (PEnd[P]) {
        PRegLTs[P].addSegmentFront(BlockStart, PEnd[P]);
        PEnd[P] = 0;
      }
  }

  for (Lifetime &LT : VRegLTs)
    LT.finalize();
  for (Lifetime &LT : PRegLTs)
    LT.finalize();
}
