//===- regalloc/Coloring.cpp - Iterated register coalescing ---------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// A standard implementation of George & Appel's algorithm, following the
// published worklist pseudocode. One ColoringProblem instance colors one
// register class; rounds of build/simplify/coalesce/freeze/spill/select
// repeat until no actual spills remain, with spill code inserted between
// rounds (loads before uses, stores after defs, one fresh block-local
// temporary per reference).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Coloring.h"

#include "analysis/AnalysisCache.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "obs/Counters.h"
#include "obs/DecisionLog.h"
#include "obs/Log.h"
#include "obs/Trace.h"
#include "regalloc/SpillSlots.h"
#include "support/BitVector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

using namespace lsra;

namespace {

constexpr unsigned NoNode = ~0u;

/// Lower-triangular bit matrix recording the adjacency relation, per the
/// paper's implementation note (§3).
class AdjMatrix {
public:
  explicit AdjMatrix(unsigned N) : N(N), Bits(N * (N + 1) / 2) {}

  bool test(unsigned A, unsigned B) const { return Bits.test(index(A, B)); }
  void set(unsigned A, unsigned B) { Bits.set(index(A, B)); }

private:
  unsigned index(unsigned A, unsigned B) const {
    if (A < B)
      std::swap(A, B);
    assert(A < N && "node out of range");
    return A * (A + 1) / 2 + B;
  }
  unsigned N;
  BitVector Bits;
};

enum class NodeState : uint8_t {
  Precolored,
  Initial,
  SimplifyWL,
  FreezeWL,
  SpillWL,
  Spilled,
  Coalesced,
  Colored,
  OnStack,
};

enum class MoveState : uint8_t {
  Worklist,
  Active,
  Coalesced,
  Constrained,
  Frozen,
};

struct MoveRec {
  unsigned Src, Dst; ///< node ids
  MoveState State = MoveState::Worklist;
};

/// One coloring problem: all temporaries of one register class.
class ColoringProblem {
public:
  ColoringProblem(Function &F, const TargetDesc &TD, RegClass RC,
                  const Liveness &LV, const LoopInfo &LI, SpillSlots &Slots,
                  AllocStats &Stats)
      : F(F), TD(TD), RC(RC), LV(LV), LI(LI), Slots(Slots), Stats(Stats),
        K(TD.numAllocatable(RC)) {}

  /// Repeat build/color/spill rounds to completion, then rewrite operands.
  void run();

private:
  Function &F;
  const TargetDesc &TD;
  RegClass RC;
  const Liveness &LV;
  const LoopInfo &LI;
  SpillSlots &Slots;
  AllocStats &Stats;
  unsigned K;

  // Node numbering: [0, K) = the allocatable registers of this class (in
  // allocation-preference order); [K, NumNodes) = temporaries, via
  // VRegToNode.
  std::vector<unsigned> VRegToNode;
  std::vector<unsigned> NodeToVReg;
  unsigned NumNodes = 0;

  std::unique_ptr<AdjMatrix> Adj;
  std::vector<std::vector<unsigned>> AdjList;
  std::vector<unsigned> Degree;
  std::vector<NodeState> State;
  std::vector<unsigned> Alias;
  std::vector<unsigned> Color; ///< register id, ~0u = none
  std::vector<double> SpillCost;
  std::vector<MoveRec> Moves;
  std::vector<std::vector<unsigned>> MoveList;
  std::vector<unsigned> SelectStack;
  std::vector<unsigned> SimplifyWL, FreezeWL, SpillWL, WorklistMoves,
      ActiveMoves;
  std::vector<unsigned> SpilledNodes;
  /// VRegs created by spill-code insertion: unspillable (infinite cost).
  BitVector SpillTemp;
  /// VRegs spilled in earlier rounds. They no longer occur in the code,
  /// but the once-computed global liveness still lists them; build() must
  /// ignore them or they would interfere with whole blocks forever.
  BitVector EverSpilledV;

  bool isTempOfClass(const Operand &Op) const {
    return Op.isVReg() && F.vregClass(Op.vregId()) == RC;
  }
  unsigned nodeOfOperand(const Operand &Op) const {
    if (Op.isVReg())
      return VRegToNode[Op.vregId()];
    unsigned P = Op.pregId();
    const auto &Order = TD.allocOrder(RC);
    for (unsigned I = 0; I < Order.size(); ++I)
      if (Order[I] == P)
        return I;
    return NoNode; // non-allocatable or other-class physical register
  }

  void initRound();
  void build();
  void addEdge(unsigned U, unsigned V);
  void makeWorklist();
  void collectAdjacent(unsigned N, std::vector<unsigned> &Out) const;
  void collectNodeMoves(unsigned N, std::vector<unsigned> &Out) const;
  bool moveRelated(unsigned N) const;
  void simplify();
  void decrementDegree(unsigned N);
  void enableMoves(unsigned N);
  void coalesce();
  void addWorkList(unsigned N);
  bool okGeorge(unsigned T, unsigned R) const;
  bool conservative(const std::vector<unsigned> &Nodes) const;
  unsigned getAlias(unsigned N) const;
  void combine(unsigned U, unsigned V);
  void freeze();
  void freezeMoves(unsigned N);
  void selectSpill();
  void assignColors();
  void rewriteSpills();
  void rewriteOperands();
};

void ColoringProblem::initRound() {
  unsigned NumV = F.numVRegs();
  VRegToNode.assign(NumV, NoNode);
  NodeToVReg.clear();
  NumNodes = K;
  for (unsigned V = 0; V < NumV; ++V)
    if (F.vregClass(V) == RC) {
      VRegToNode[V] = NumNodes++;
      NodeToVReg.push_back(V);
    }

  Adj = std::make_unique<AdjMatrix>(NumNodes);
  AdjList.assign(NumNodes, {});
  Degree.assign(NumNodes, 0);
  State.assign(NumNodes, NodeState::Initial);
  Alias.assign(NumNodes, NoNode);
  Color.assign(NumNodes, ~0u);
  SpillCost.assign(NumNodes, 0.0);
  Moves.clear();
  MoveList.assign(NumNodes, {});
  SelectStack.clear();
  SimplifyWL.clear();
  FreezeWL.clear();
  SpillWL.clear();
  WorklistMoves.clear();
  ActiveMoves.clear();
  SpilledNodes.clear();
  auto GrowPreserving = [NumV](BitVector &BV) {
    if (BV.size() >= NumV)
      return;
    BitVector Grown(NumV);
    for (unsigned V = 0; V < BV.size(); ++V)
      if (BV.test(V))
        Grown.set(V);
    BV = Grown;
  };
  GrowPreserving(SpillTemp);
  GrowPreserving(EverSpilledV);

  for (unsigned P = 0; P < K; ++P) {
    State[P] = NodeState::Precolored;
    Color[P] = TD.allocOrder(RC)[P];
    Degree[P] = std::numeric_limits<unsigned>::max() / 2;
  }
}

void ColoringProblem::addEdge(unsigned U, unsigned V) {
  if (U == V || U == NoNode || V == NoNode)
    return;
  if (Adj->test(U, V))
    return;
  Adj->set(U, V);
  ++Stats.InterferenceEdges;
  if (State[U] != NodeState::Precolored) {
    AdjList[U].push_back(V);
    ++Degree[U];
  }
  if (State[V] != NodeState::Precolored) {
    AdjList[V].push_back(U);
    ++Degree[V];
  }
}

void ColoringProblem::build() {
  // Per-block backward scan with a live node set. Global liveness was
  // computed once before allocation; spill temporaries introduced by later
  // rounds are block-local and appear/disappear within the scan.
  BitVector Live(NumNodes);
  for (unsigned B = 0; B < F.numBlocks(); ++B) {
    Live.clear();
    const BitVector &Out = LV.liveOut(B);
    for (unsigned V = 0; V < LV.numVRegs(); ++V)
      if (Out.test(V) && VRegToNode[V] != NoNode && !EverSpilledV.test(V))
        Live.set(VRegToNode[V]);

    auto Instrs = F.block(B).instrs();
    double W = LI.blockWeight(B);
    for (unsigned Idx = Instrs.size(); Idx-- > 0;) {
      const Instr &I = Instrs[Idx];

      // Move instructions get special treatment: the source does not
      // interfere with the destination, and the move becomes a coalescing
      // candidate.
      bool IsClassMove = false;
      if (I.isRegMove() && I.slotClass(0) == RC) {
        unsigned SrcN = nodeOfOperand(I.op(1));
        unsigned DstN = nodeOfOperand(I.op(0));
        if (SrcN != NoNode && DstN != NoNode && SrcN != DstN) {
          IsClassMove = true;
          Live.reset(SrcN);
          unsigned MIdx = static_cast<unsigned>(Moves.size());
          Moves.push_back({SrcN, DstN, MoveState::Worklist});
          MoveList[SrcN].push_back(MIdx);
          MoveList[DstN].push_back(MIdx);
          WorklistMoves.push_back(MIdx);
        }
      }
      (void)IsClassMove;

      // Defs (including the call's return register and clobbers) interfere
      // with everything live across the def.
      auto HandleDef = [&](unsigned N) {
        if (N == NoNode)
          return;
        Live.forEachSetBit([&](unsigned L) { addEdge(L, N); });
        Live.reset(N);
        if (N >= K)
          SpillCost[N] += W;
      };
      forEachDefinedReg(I, [&](const Operand &Op) {
        if (Op.isVReg() ? isTempOfClass(Op) : pregClass(Op.pregId()) == RC)
          HandleDef(nodeOfOperand(Op));
      });
      forEachClobberedReg(I, TD, [&](unsigned P) {
        if (pregClass(P) == RC)
          HandleDef(nodeOfOperand(Operand::preg(P)));
      });

      forEachUsedReg(I, [&](const Operand &Op) {
        bool Ours =
            Op.isVReg() ? isTempOfClass(Op) : pregClass(Op.pregId()) == RC;
        if (!Ours)
          return;
        unsigned N = nodeOfOperand(Op);
        if (N == NoNode)
          return;
        Live.set(N);
        if (N >= K)
          SpillCost[N] += W;
      });
    }
  }

  // Unspillable spill temporaries get effectively infinite cost.
  for (unsigned N = K; N < NumNodes; ++N)
    if (SpillTemp.test(NodeToVReg[N - K] /*dense is offset*/))
      SpillCost[N] = std::numeric_limits<double>::infinity();
}

void ColoringProblem::makeWorklist() {
  for (unsigned N = K; N < NumNodes; ++N) {
    if (Degree[N] >= K) {
      State[N] = NodeState::SpillWL;
      SpillWL.push_back(N);
    } else if (moveRelated(N)) {
      State[N] = NodeState::FreezeWL;
      FreezeWL.push_back(N);
    } else {
      State[N] = NodeState::SimplifyWL;
      SimplifyWL.push_back(N);
    }
  }
}

void ColoringProblem::collectAdjacent(unsigned N,
                                      std::vector<unsigned> &Out) const {
  Out.clear();
  for (unsigned A : AdjList[N])
    if (State[A] != NodeState::OnStack && State[A] != NodeState::Coalesced)
      Out.push_back(A);
}

void ColoringProblem::collectNodeMoves(unsigned N,
                                       std::vector<unsigned> &Out) const {
  Out.clear();
  for (unsigned M : MoveList[N]) {
    MoveState S = Moves[M].State;
    if (S == MoveState::Worklist || S == MoveState::Active)
      Out.push_back(M);
  }
}

bool ColoringProblem::moveRelated(unsigned N) const {
  for (unsigned M : MoveList[N]) {
    MoveState S = Moves[M].State;
    if (S == MoveState::Worklist || S == MoveState::Active)
      return true;
  }
  return false;
}

void ColoringProblem::simplify() {
  unsigned N = SimplifyWL.back();
  SimplifyWL.pop_back();
  if (State[N] != NodeState::SimplifyWL)
    return; // stale worklist entry
  State[N] = NodeState::OnStack;
  SelectStack.push_back(N);
  std::vector<unsigned> Adjacent;
  collectAdjacent(N, Adjacent);
  for (unsigned A : Adjacent)
    decrementDegree(A);
}

void ColoringProblem::decrementDegree(unsigned N) {
  if (State[N] == NodeState::Precolored)
    return;
  unsigned D = Degree[N]--;
  if (D != K)
    return;
  // Degree dropped from K to K-1: N may become simplifiable; its moves and
  // its neighbours' moves may become enabled.
  enableMoves(N);
  std::vector<unsigned> Adjacent;
  collectAdjacent(N, Adjacent);
  for (unsigned A : Adjacent)
    enableMoves(A);
  if (State[N] != NodeState::SpillWL)
    return;
  auto It = std::find(SpillWL.begin(), SpillWL.end(), N);
  if (It != SpillWL.end())
    SpillWL.erase(It);
  if (moveRelated(N)) {
    State[N] = NodeState::FreezeWL;
    FreezeWL.push_back(N);
  } else {
    State[N] = NodeState::SimplifyWL;
    SimplifyWL.push_back(N);
  }
}

void ColoringProblem::enableMoves(unsigned N) {
  std::vector<unsigned> NM;
  collectNodeMoves(N, NM);
  for (unsigned M : NM)
    if (Moves[M].State == MoveState::Active) {
      Moves[M].State = MoveState::Worklist;
      WorklistMoves.push_back(M);
    }
}

unsigned ColoringProblem::getAlias(unsigned N) const {
  while (State[N] == NodeState::Coalesced)
    N = Alias[N];
  return N;
}

void ColoringProblem::addWorkList(unsigned N) {
  if (State[N] != NodeState::FreezeWL || moveRelated(N) || Degree[N] >= K)
    return;
  auto It = std::find(FreezeWL.begin(), FreezeWL.end(), N);
  if (It != FreezeWL.end())
    FreezeWL.erase(It);
  State[N] = NodeState::SimplifyWL;
  SimplifyWL.push_back(N);
}

bool ColoringProblem::okGeorge(unsigned T, unsigned R) const {
  return Degree[T] < K || State[T] == NodeState::Precolored ||
         Adj->test(T, R);
}

bool ColoringProblem::conservative(const std::vector<unsigned> &Nodes) const {
  unsigned Significant = 0;
  for (unsigned N : Nodes)
    if (Degree[N] >= K)
      ++Significant;
  return Significant < K;
}

void ColoringProblem::coalesce() {
  unsigned M = WorklistMoves.back();
  WorklistMoves.pop_back();
  unsigned X = getAlias(Moves[M].Src);
  unsigned Y = getAlias(Moves[M].Dst);
  unsigned U = X, V = Y;
  if (State[Y] == NodeState::Precolored)
    std::swap(U, V);
  if (U == V) {
    Moves[M].State = MoveState::Coalesced;
    addWorkList(U);
    return;
  }
  if (State[V] == NodeState::Precolored || Adj->test(U, V)) {
    Moves[M].State = MoveState::Constrained;
    addWorkList(U);
    addWorkList(V);
    return;
  }
  std::vector<unsigned> AdjU, AdjV;
  collectAdjacent(U, AdjU);
  collectAdjacent(V, AdjV);
  bool CanCoalesce;
  if (State[U] == NodeState::Precolored) {
    // George test: every neighbour of V is OK with U.
    CanCoalesce = true;
    for (unsigned T : AdjV)
      if (!okGeorge(T, U)) {
        CanCoalesce = false;
        break;
      }
  } else {
    // Briggs test on the combined node.
    std::vector<unsigned> Combined = AdjU;
    for (unsigned T : AdjV)
      if (std::find(AdjU.begin(), AdjU.end(), T) == AdjU.end())
        Combined.push_back(T);
    CanCoalesce = conservative(Combined);
  }
  if (CanCoalesce) {
    Moves[M].State = MoveState::Coalesced;
    combine(U, V);
    addWorkList(U);
    ++Stats.MovesCoalesced;
    obs::DecisionLog &DL = obs::DecisionLog::global();
    if (DL.enabled() && V >= K)
      DL.record(F, obs::DecisionKind::CoalesceMove, NodeToVReg[V - K],
                obs::NoValue, U < K ? Color[U] : obs::NoValue,
                State[U] == NodeState::Precolored
                    ? "George test: safe to merge with precolored node"
                    : "Briggs test: combined node stays colorable");
  } else {
    Moves[M].State = MoveState::Active;
    ActiveMoves.push_back(M);
  }
}

void ColoringProblem::combine(unsigned U, unsigned V) {
  auto EraseFrom = [&](std::vector<unsigned> &WL) {
    auto It = std::find(WL.begin(), WL.end(), V);
    if (It != WL.end())
      WL.erase(It);
  };
  EraseFrom(FreezeWL);
  EraseFrom(SpillWL);
  State[V] = NodeState::Coalesced;
  Alias[V] = U;
  for (unsigned M : MoveList[V])
    MoveList[U].push_back(M);
  SpillCost[U] += SpillCost[V];
  enableMoves(V);
  std::vector<unsigned> AdjV;
  collectAdjacent(V, AdjV);
  for (unsigned T : AdjV) {
    addEdge(T, U);
    decrementDegree(T);
  }
  if (Degree[U] >= K && State[U] == NodeState::FreezeWL) {
    auto It = std::find(FreezeWL.begin(), FreezeWL.end(), U);
    if (It != FreezeWL.end())
      FreezeWL.erase(It);
    State[U] = NodeState::SpillWL;
    SpillWL.push_back(U);
  }
}

void ColoringProblem::freeze() {
  unsigned N = FreezeWL.back();
  FreezeWL.pop_back();
  if (State[N] != NodeState::FreezeWL)
    return; // stale worklist entry
  State[N] = NodeState::SimplifyWL;
  SimplifyWL.push_back(N);
  freezeMoves(N);
}

void ColoringProblem::freezeMoves(unsigned N) {
  std::vector<unsigned> NM;
  collectNodeMoves(N, NM);
  for (unsigned M : NM) {
    unsigned X = getAlias(Moves[M].Src);
    unsigned Y = getAlias(Moves[M].Dst);
    unsigned Other = getAlias(N) == Y ? X : Y;
    Moves[M].State = MoveState::Frozen;
    if (State[Other] == NodeState::FreezeWL && !moveRelated(Other) &&
        Degree[Other] < K) {
      auto It = std::find(FreezeWL.begin(), FreezeWL.end(), Other);
      if (It != FreezeWL.end())
        FreezeWL.erase(It);
      State[Other] = NodeState::SimplifyWL;
      SimplifyWL.push_back(Other);
    }
  }
}

void ColoringProblem::selectSpill() {
  // Chaitin metric: weighted occurrence count / current degree.
  double Best = std::numeric_limits<double>::infinity();
  unsigned BestIdx = 0;
  for (unsigned I = 0; I < SpillWL.size(); ++I) {
    unsigned N = SpillWL[I];
    double Metric = SpillCost[N] / std::max(1u, Degree[N]);
    if (Metric < Best) {
      Best = Metric;
      BestIdx = I;
    }
  }
  unsigned N = SpillWL[BestIdx];
  SpillWL.erase(SpillWL.begin() + BestIdx);
  State[N] = NodeState::SimplifyWL;
  SimplifyWL.push_back(N);
  freezeMoves(N);
}

void ColoringProblem::assignColors() {
  while (!SelectStack.empty()) {
    unsigned N = SelectStack.back();
    SelectStack.pop_back();
    BitVector Used(NumPRegs);
    for (unsigned A : AdjList[N]) {
      unsigned AA = getAlias(A);
      if (State[AA] == NodeState::Colored ||
          State[AA] == NodeState::Precolored)
        Used.set(Color[AA]);
    }
    unsigned Chosen = ~0u;
    for (unsigned R : TD.allocOrder(RC))
      if (!Used.test(R)) {
        Chosen = R;
        break;
      }
    if (Chosen == ~0u) {
      State[N] = NodeState::Spilled;
      SpilledNodes.push_back(N);
    } else {
      State[N] = NodeState::Colored;
      Color[N] = Chosen;
    }
  }
  for (unsigned N = K; N < NumNodes; ++N)
    if (State[N] == NodeState::Coalesced) {
      unsigned A = getAlias(N);
      if (State[A] == NodeState::Spilled) {
        State[N] = NodeState::Spilled;
        SpilledNodes.push_back(N);
      } else {
        Color[N] = Color[A];
      }
    }
}

void ColoringProblem::rewriteSpills() {
  // Give each spilled temporary a memory home; loads before uses, stores
  // after defs, a fresh block-local temp per reference.
  BitVector IsSpilled(F.numVRegs());
  obs::DecisionLog &DL = obs::DecisionLog::global();
  for (unsigned N : SpilledNodes) {
    unsigned V = NodeToVReg[N - K];
    IsSpilled.set(V);
    EverSpilledV.set(V);
    ++Stats.SpilledTemps;
    if (DL.enabled())
      DL.record(F, obs::DecisionKind::SpillWhole, V, obs::NoValue,
                obs::NoValue, "no color available; whole lifetime to memory");
  }
  for (Block &B : F.blocks()) {
    std::vector<uint32_t> Out;
    Out.reserve(B.size());
    bool Inserted = false;
    for (unsigned Idx = 0; Idx < B.size(); ++Idx) {
      Instr I = B.instrs()[Idx];
      const OpcodeInfo &Info = I.info();
      // One fresh temp per instruction per spilled vreg (shared between a
      // use and a def of the same vreg in the same instruction).
      unsigned CachedV = ~0u, CachedT = ~0u;
      auto FreshTemp = [&](unsigned V) {
        if (CachedV == V)
          return CachedT;
        unsigned T = F.newVReg(RC);
        CachedV = V;
        CachedT = T;
        return T;
      };
      bool DefSpilled = false;
      unsigned DefTemp = ~0u, DefV = ~0u;
      for (unsigned S = Info.NumDefs;
           S < unsigned(Info.NumDefs) + Info.NumUses; ++S) {
        Operand &Op = I.op(S);
        if (!Op.isVReg() || !IsSpilled.test(Op.vregId()) ||
            F.vregClass(Op.vregId()) != RC)
          continue;
        unsigned T = FreshTemp(Op.vregId());
        Instr Ld = Slots.makeLoad(Op.vregId(), 0, SpillKind::EvictLoad);
        Ld.op(0) = Operand::vreg(T);
        Out.push_back(B.makeInstr(Ld));
        Inserted = true;
        ++Stats.EvictLoads;
        Op = Operand::vreg(T);
      }
      if (Info.NumDefs == 1 && I.op(0).isVReg() &&
          IsSpilled.test(I.op(0).vregId()) &&
          F.vregClass(I.op(0).vregId()) == RC) {
        DefV = I.op(0).vregId();
        DefTemp = FreshTemp(DefV);
        I.op(0) = Operand::vreg(DefTemp);
        DefSpilled = true;
      }
      B.instrs()[Idx] = I; // rewritten in place: id preserved
      Out.push_back(B.instrId(Idx));
      if (DefSpilled) {
        Instr St = Slots.makeStore(DefV, 0, SpillKind::EvictStore);
        St.op(0) = Operand::vreg(DefTemp);
        Out.push_back(B.makeInstr(St));
        Inserted = true;
        ++Stats.EvictStores;
      }
    }
    if (Inserted)
      B.setInstrIds(Out);
  }
  // Mark all newly created temps as unspillable.
  BitVector NewST(F.numVRegs());
  for (unsigned V = 0; V < SpillTemp.size(); ++V)
    if (SpillTemp.test(V))
      NewST.set(V);
  for (unsigned V = IsSpilled.size(); V < F.numVRegs(); ++V)
    NewST.set(V);
  SpillTemp = NewST;
}

void ColoringProblem::rewriteOperands() {
  for (Block &B : F.blocks())
    for (Instr &I : B.instrs())
      for (unsigned S = 0; S < 3; ++S) {
        Operand &Op = I.op(S);
        if (!Op.isVReg() || F.vregClass(Op.vregId()) != RC)
          continue;
        unsigned N = VRegToNode[Op.vregId()];
        unsigned A = getAlias(N);
        assert(Color[A] != ~0u && "uncolored node survives");
        Op = Operand::preg(Color[A]);
      }
}

void ColoringProblem::run() {
  SpillTemp.resize(F.numVRegs());
  EverSpilledV.resize(F.numVRegs());
  while (true) {
    ++Stats.ColoringIterations;
    obs::ScopedSpan Round("coloring.round", "phase");
    LSRA_LOG(3, "coloring round=%u vregs=%u", Stats.ColoringIterations,
             F.numVRegs());
    initRound();
    build();
    makeWorklist();
    while (!SimplifyWL.empty() || !WorklistMoves.empty() ||
           !FreezeWL.empty() || !SpillWL.empty()) {
      if (!SimplifyWL.empty())
        simplify();
      else if (!WorklistMoves.empty())
        coalesce();
      else if (!FreezeWL.empty())
        freeze();
      else
        selectSpill();
    }
    assignColors();
    if (SpilledNodes.empty())
      break;
    rewriteSpills();
  }
  rewriteOperands();
}

} // namespace

AllocStats lsra::runGraphColoring(Function &F, const TargetDesc &TD,
                                  const AllocOptions &Opts) {
  FunctionAnalyses FA(F, TD);
  return runGraphColoring(F, TD, Opts, FA);
}

AllocStats lsra::runGraphColoring(Function &F, const TargetDesc &TD,
                                  const AllocOptions &Opts,
                                  FunctionAnalyses &FA) {
  (void)Opts;
  assert(F.CallsLowered && "lower calls before register allocation");
  assert(&FA.function() == &F && "analyses are for a different function");
  AllocStats Stats;
  Stats.RegCandidates = F.numVRegs();
  const Liveness &LV = FA.liveness();
  const LoopInfo &LI = FA.loops();
  SpillSlots Slots(F);
  // The two register files are two separate coloring problems (§3).
  {
    ColoringProblem Ints(F, TD, RegClass::Int, LV, LI, Slots, Stats);
    Ints.run();
  }
  {
    ColoringProblem Fps(F, TD, RegClass::Float, LV, LI, Slots, Stats);
    Fps.run();
  }
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled()) {
    CR.counter("coloring.rounds").add(Stats.ColoringIterations);
    CR.counter("coloring.interference_edges").add(Stats.InterferenceEdges);
  }
  return Stats;
}
