//===- regalloc/Resolver.h - CFG edge resolution ---------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resolution phase of §2.4: the linear allocate/rewrite scan models
/// control flow incompletely, so after the scan we traverse every CFG edge
/// and reconcile the allocation assumptions recorded at the bottom of the
/// predecessor with those at the top of the successor, inserting loads,
/// stores, and moves (with correct parallel-copy ordering). Resolution code
/// is placed at the top of a single-predecessor successor, at the bottom of
/// a single-successor predecessor, or on a freshly split critical edge
/// (footnote 1 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_RESOLVER_H
#define LSRA_REGALLOC_RESOLVER_H

#include "analysis/Liveness.h"
#include "regalloc/Consistency.h"
#include "regalloc/SpillSlots.h"

#include <vector>

namespace lsra {

/// Encoded location of a temporary at a block boundary:
/// 0 = nowhere (no value yet on the linear path; treated as memory),
/// 1 = memory home, 2+P = physical register P.
using LocCode = uint8_t;
constexpr LocCode LocNowhere = 0;
constexpr LocCode LocMem = 1;
inline LocCode locReg(unsigned P) { return static_cast<LocCode>(2 + P); }
inline bool isRegLoc(LocCode C) { return C >= 2; }
inline unsigned regOfLoc(LocCode C) {
  assert(isRegLoc(C) && "not a register location");
  return C - 2;
}

/// Static counts of inserted resolution code.
struct ResolveCounts {
  unsigned Loads = 0;
  unsigned Stores = 0;
  unsigned Moves = 0;
  unsigned SplitEdges = 0;
};

/// Everything the resolver needs from the allocate/rewrite scan.
struct ResolverInput {
  const Liveness *LV = nullptr;
  /// Cross-block dense universe (shared with ConsistencyInfo).
  const std::vector<unsigned> *VRegToDense = nullptr;
  const std::vector<unsigned> *DenseToVReg = nullptr;
  /// Location maps, indexed [block][dense temp], valid for live-in /
  /// live-out temps respectively.
  const std::vector<std::vector<LocCode>> *LocTop = nullptr;
  const std::vector<std::vector<LocCode>> *LocBottom = nullptr;
  /// Solved consistency dataflow; null when the allocator ran in
  /// conservative mode (then reg->mem stores are inserted whenever the
  /// bottom state is inconsistent, and no extra consistency stores are
  /// needed).
  const ConsistencyInfo *CI = nullptr;
  /// Per-(block, dense) consistency at block bottom, used to suppress
  /// reg->mem stores ("but only if inconsistent"). Always present.
  const std::vector<BitVector> *ConsistentBottom = nullptr;
};

/// Run resolution over every CFG edge of \p F.
ResolveCounts resolveEdges(Function &F, const ResolverInput &In,
                           SpillSlots &Slots);

} // namespace lsra

#endif // LSRA_REGALLOC_RESOLVER_H
