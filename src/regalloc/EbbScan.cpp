//===- regalloc/EbbScan.cpp - One-pass EBB second-chance scan -------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The tier-0 backend: §2's second-chance scan restricted to extended basic
// blocks so it runs in exactly one pass with no global dataflow.
//
//  * EBBs are grown over a reverse-post-order walk: every unclaimed block
//    starts a tree, and a successor joins its predecessor's tree iff it has
//    that single predecessor. Joins (and loop headers, which always have a
//    back edge) therefore always start fresh trees.
//  * The scan state — register occupancy, per-register dirty bits, LRU
//    stamps, and the convention reservations — flows down each tree by
//    value: siblings restart from a snapshot taken at the branch point, so
//    every in-tree path sees a consistent single-pass history.
//  * Spilling is second-chance at the point of loss: an evicted temporary
//    is stored only if its register is dirty (memory home stale), and it
//    optimistically regains a register at its next use via a reload.
//  * At every edge that leaves the tree, dirty register-resident values
//    are stored before the terminator. Memory is thereby the canonical
//    location on all cross-EBB edges, which makes the store the degenerate
//    form of Resolver edge repair — no resolution pass, no consistency
//    dataflow, no liveness. Values that happen to be dead get stored too;
//    that is the price of skipping liveness, and it is what the full
//    binpacker later removes when a tier-0 answer is requalified.
//
// Convention registers are handled without fixed lifetimes: a register
// named by a fixed def (CArg moves, call returns, the pre-Ret move) is
// reserved from that def until a call's clobber sweep consumes it, and the
// entry block starts with the incoming argument registers reserved. Since
// lowered code reads each convention value exactly once, a register move
// from a reserved register may coalesce its destination onto it (§2.5's
// move elimination in its one-pass form).
//
//===----------------------------------------------------------------------===//

#include "regalloc/EbbScan.h"

#include "analysis/AnalysisCache.h"
#include "analysis/Order.h"
#include "obs/Counters.h"
#include "obs/Trace.h"
#include "regalloc/Resolver.h"
#include "regalloc/SpillSlots.h"
#include "support/BitVector.h"

#include <array>
#include <cassert>
#include <vector>

using namespace lsra;

namespace {

constexpr unsigned NoTemp = ~0u;
constexpr unsigned NoReg = ~0u;

/// The per-path scan state. Copied at EBB branch points (about half a
/// kilobyte), so keep it POD and flat.
struct ScanState {
  std::array<unsigned, NumPRegs> Occ;   // register -> tenant vreg
  std::array<uint32_t, NumPRegs> Stamp; // LRU touch stamps
  uint64_t Dirty = 0;                   // tenant's memory home is stale
  uint64_t Reserved = 0;                // convention value live in register

  void reset() {
    Occ.fill(NoTemp);
    Stamp.fill(0);
    Dirty = 0;
    Reserved = 0;
  }
};

class EbbScanner {
public:
  EbbScanner(Function &F, const TargetDesc &TD, const AllocOptions &Opts)
      : F(F), TD(TD), Opts(Opts), Slots(F) {}

  AllocStats run();

private:
  Function &F;
  const TargetDesc &TD;
  const AllocOptions &Opts;
  SpillSlots Slots;
  AllocStats Stats;

  ScanState S;
  std::vector<LocCode> Loc; // vreg -> current location, kept in sync with S
  BitVector EverSpilled;
  uint32_t Clock = 0;
  unsigned Ebbs = 0;
  unsigned ExitStores = 0;

  std::vector<Instr> Prefix; // code to insert before the current instruction
  uint64_t Pinned = 0;       // regs this instruction already touches
  uint64_t FixedDefs = 0;    // regs this instruction writes by convention

  static uint64_t bit(unsigned P) { return 1ull << P; }

  void bindReg(unsigned P, unsigned V, bool MakeDirty) {
    S.Occ[P] = V;
    S.Stamp[P] = ++Clock;
    Loc[V] = locReg(P);
    if (MakeDirty)
      S.Dirty |= bit(P);
    else
      S.Dirty &= ~bit(P);
  }

  /// Drop P's tenant, storing its value first when the memory home is
  /// stale. Clean tenants just unbind: a clean binding always came from a
  /// load or a store, so the home already holds the current value.
  void evict(unsigned P, SpillKind StoreKind) {
    unsigned V = S.Occ[P];
    if (V == NoTemp)
      return;
    if (S.Dirty & bit(P)) {
      Prefix.push_back(Slots.makeStore(V, P, StoreKind));
      if (StoreKind == SpillKind::ResolveStore)
        ++Stats.ResolveStores;
      else
        ++Stats.EvictStores;
      EverSpilled.set(V);
      S.Dirty &= ~bit(P);
    }
    S.Occ[P] = NoTemp;
    if (Loc[V] == locReg(P))
      Loc[V] = LocMem;
  }

  /// Pick a register of class RC: the first free one in allocation order,
  /// else the least-recently-touched evictable tenant (the one-pass stand-in
  /// for §2.3's farthest-next-use priority).
  unsigned allocateReg(RegClass RC) {
    unsigned BestEvict = NoReg;
    uint32_t BestStamp = 0;
    for (unsigned R : TD.allocOrder(RC)) {
      if ((S.Reserved | Pinned | FixedDefs) & bit(R))
        continue;
      if (S.Occ[R] == NoTemp)
        return R;
      if (BestEvict == NoReg || S.Stamp[R] < BestStamp) {
        BestEvict = R;
        BestStamp = S.Stamp[R];
      }
    }
    assert(BestEvict != NoReg &&
           "ebb-scan: no allocatable register for class (limit too small)");
    evict(BestEvict, SpillKind::EvictStore);
    return BestEvict;
  }

  /// Restore a branch-point snapshot, fixing the vreg location map by a
  /// clear-then-set diff so rebound values land in the snapshot's register.
  void restoreState(const ScanState &Want) {
    for (unsigned P = 0; P < NumPRegs; ++P) {
      unsigned Cur = S.Occ[P];
      if (Cur != Want.Occ[P] && Cur != NoTemp && Loc[Cur] == locReg(P))
        Loc[Cur] = LocMem;
    }
    for (unsigned P = 0; P < NumPRegs; ++P)
      if (Want.Occ[P] != NoTemp)
        Loc[Want.Occ[P]] = locReg(P);
    S = Want;
  }

  void processInstr(Instr &I);
  void processUses(Instr &I);
  void processDef(Instr &I);
  void spillAllDirty();
  void scanBlock(unsigned B, bool ExitSpill);
};

void EbbScanner::processUses(Instr &I) {
  const OpcodeInfo &Info = I.info();
  unsigned Begin = Info.NumDefs, End = Info.NumDefs + Info.NumUses;
  // Pre-pin every register already holding one of this instruction's use
  // values so an earlier reload cannot evict a later operand.
  for (unsigned Sl = Begin; Sl < End; ++Sl) {
    const Operand &Op = I.op(Sl);
    if (Op.isVReg() && isRegLoc(Loc[Op.vregId()]))
      Pinned |= bit(regOfLoc(Loc[Op.vregId()]));
  }
  for (unsigned Sl = Begin; Sl < End; ++Sl) {
    Operand &Op = I.op(Sl);
    if (!Op.isVReg())
      continue;
    unsigned V = Op.vregId();
    unsigned R;
    if (isRegLoc(Loc[V])) {
      R = regOfLoc(Loc[V]);
      assert(S.Occ[R] == V && "location map out of sync");
      S.Stamp[R] = ++Clock;
    } else {
      // Second chance: the value lost its register somewhere upstream (or
      // lives in memory across an EBB edge); give it a new one here.
      R = allocateReg(F.vregClass(V));
      Prefix.push_back(Slots.makeLoad(V, R, SpillKind::EvictLoad));
      ++Stats.EvictLoads;
      ++Stats.LifetimeSplits;
      EverSpilled.set(V);
      bindReg(R, V, /*MakeDirty=*/false);
    }
    Pinned |= bit(R);
    Op = Operand::preg(R);
  }
}

void EbbScanner::processDef(Instr &I) {
  const OpcodeInfo &Info = I.info();
  if (Info.NumDefs == 0)
    return;
  Operand &Op = I.op(0);
  if (!Op.isVReg())
    return;
  unsigned V = Op.vregId();
  if (isRegLoc(Loc[V])) {
    unsigned R = regOfLoc(Loc[V]);
    assert(S.Occ[R] == V && "location map out of sync");
    S.Stamp[R] = ++Clock;
    S.Dirty |= bit(R);
    Op = Operand::preg(R);
    return;
  }
  // §2.5 move coalescing, one-pass form: a register move reading a
  // convention register may bind its destination onto the source — lowered
  // code reads each convention value exactly once, so the reservation ends
  // at this move.
  if (Opts.MoveCoalesce && I.isRegMove() && I.op(1).isPReg()) {
    unsigned RS = I.op(1).pregId();
    if (TD.isAllocatable(RS) && pregClass(RS) == F.vregClass(V) &&
        S.Occ[RS] == NoTemp && !(FixedDefs & bit(RS))) {
      S.Reserved &= ~bit(RS);
      bindReg(RS, V, /*MakeDirty=*/true);
      Op = Operand::preg(RS);
      ++Stats.MovesCoalesced;
      return;
    }
  }
  unsigned R = allocateReg(F.vregClass(V));
  bindReg(R, V, /*MakeDirty=*/true);
  Op = Operand::preg(R);
}

void EbbScanner::processInstr(Instr &I) {
  const OpcodeInfo &Info = I.info();
  Pinned = 0;
  FixedDefs = 0;
  uint64_t FixedUses = 0;
  for (unsigned Sl = Info.NumDefs; Sl < unsigned(Info.NumDefs) + Info.NumUses;
       ++Sl)
    if (I.op(Sl).isPReg())
      FixedUses |= bit(I.op(Sl).pregId());
  for (unsigned Sl = 0; Sl < Info.NumDefs; ++Sl)
    if (I.op(Sl).isPReg())
      FixedDefs |= bit(I.op(Sl).pregId());
  if (I.isCall()) {
    for (unsigned A = 0; A < I.CallIntArgs; ++A)
      FixedUses |= bit(TargetDesc::intArgReg(A));
    for (unsigned A = 0; A < I.CallFpArgs; ++A)
      FixedUses |= bit(TargetDesc::fpArgReg(A));
  }
  if (I.CallRet == CallRetKind::Int)
    FixedDefs |= bit(TargetDesc::intRetReg());
  else if (I.CallRet == CallRetKind::Float)
    FixedDefs |= bit(TargetDesc::fpRetReg());
  Pinned = FixedUses;

  processUses(I);

  if (I.isCall()) {
    // Caller-saved tenants lose their register across the call; convention
    // values (the just-read argument registers) die with it.
    uint64_t Clobber = TD.callClobberMask();
    for (unsigned P = 0; P < NumPRegs; ++P)
      if (Clobber & bit(P))
        evict(P, SpillKind::EvictStore);
    S.Reserved &= ~Clobber;
  }
  for (unsigned P = 0; P < NumPRegs; ++P) {
    if (!(FixedDefs & bit(P)))
      continue;
    evict(P, SpillKind::EvictStore);
    S.Reserved |= bit(P);
    S.Stamp[P] = ++Clock;
  }

  processDef(I);
}

/// Store every dirty register-resident value (bindings survive; memory
/// becomes canonical). Runs before the terminator of any block with an edge
/// out of the current EBB.
void EbbScanner::spillAllDirty() {
  for (unsigned P = 0; P < NumPRegs; ++P) {
    if (!(S.Dirty & bit(P)))
      continue;
    unsigned V = S.Occ[P];
    assert(V != NoTemp && "dirty bit without a tenant");
    Prefix.push_back(Slots.makeStore(V, P, SpillKind::ResolveStore));
    ++Stats.ResolveStores;
    ++ExitStores;
    EverSpilled.set(V);
    S.Dirty &= ~bit(P);
  }
}

void EbbScanner::scanBlock(unsigned B, bool ExitSpill) {
  Block &Blk = F.block(B);
  std::vector<uint32_t> Out;
  Out.reserve(Blk.size() + 4);
  bool Inserted = false;
  for (unsigned Idx = 0; Idx < Blk.size(); ++Idx) {
    Instr I = Blk.instrs()[Idx];
    Prefix.clear();
    processInstr(I);
    if (ExitSpill && Idx + 1 == Blk.size())
      spillAllDirty();
    for (const Instr &P : Prefix) {
      Out.push_back(Blk.makeInstr(P));
      Inserted = true;
    }
    Blk.instrs()[Idx] = I; // rewritten in place: id preserved
    Out.push_back(Blk.instrId(Idx));
  }
  if (Inserted)
    Blk.setInstrIds(Out);
}

AllocStats EbbScanner::run() {
  unsigned NumV = F.numVRegs();
  Stats.RegCandidates = NumV;
  Loc.assign(NumV, LocNowhere);
  EverSpilled.resize(NumV);
  S.reset();

  std::vector<std::vector<unsigned>> Preds = F.predecessors();
  std::vector<unsigned> RPO = reversePostOrder(F);
  std::vector<uint8_t> Visited(F.numBlocks(), 0);

  struct Frame {
    unsigned B;
    ScanState St;
  };
  std::vector<Frame> Stack;

  obs::ScopedSpan Span("ebb.scan", "phase");
  for (unsigned Head : RPO) {
    if (Visited[Head])
      continue;
    ++Ebbs;
    ScanState Init;
    Init.reset();
    if (Head == 0) {
      // The entry holds the incoming arguments in the convention registers
      // until the parameter-binding moves consume them.
      for (unsigned A = 0;
           A < F.IntParamVRegs.size() && A < TargetDesc::NumArgRegs; ++A)
        Init.Reserved |= bit(TargetDesc::intArgReg(A));
      for (unsigned A = 0;
           A < F.FpParamVRegs.size() && A < TargetDesc::NumArgRegs; ++A)
        Init.Reserved |= bit(TargetDesc::fpArgReg(A));
    }
    Visited[Head] = 1;
    Stack.push_back({Head, Init});
    while (!Stack.empty()) {
      Frame Fr = std::move(Stack.back());
      Stack.pop_back();
      restoreState(Fr.St);
      // Claim join-free successors up front: whether any edge leaves the
      // EBB decides the exit spill before the terminator is rebuilt.
      std::vector<unsigned> Kids;
      bool Exit = false;
      for (unsigned Su : F.block(Fr.B).successors()) {
        if (!Visited[Su] && Preds[Su].size() == 1)
          Kids.push_back(Su);
        else
          Exit = true;
      }
      scanBlock(Fr.B, Exit);
      // Push in reverse so the first successor's subtree scans first.
      for (auto It = Kids.rbegin(); It != Kids.rend(); ++It) {
        Visited[*It] = 1;
        Stack.push_back({*It, S});
      }
    }
  }

  Stats.SpilledTemps = EverSpilled.count();

  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled()) {
    CR.counter("ebb.trees").add(Ebbs);
    CR.counter("ebb.exit_stores").add(ExitStores);
    CR.counter("ebb.reloads").add(Stats.EvictLoads);
    CR.counter("ebb.coalesced_moves").add(Stats.MovesCoalesced);
  }
  return Stats;
}

} // namespace

AllocStats lsra::runEbbScan(Function &F, const TargetDesc &TD,
                            const AllocOptions &Opts) {
  assert(F.CallsLowered && "lower calls before allocation");
  return EbbScanner(F, TD, Opts).run();
}

AllocStats lsra::runEbbScan(Function &F, const TargetDesc &TD,
                            const AllocOptions &Opts, FunctionAnalyses &FA) {
  assert(&FA.function() == &F && "analysis cache bound to another function");
  (void)FA; // no global analyses consumed (CapTierEligible backends)
  return runEbbScan(F, TD, Opts);
}
