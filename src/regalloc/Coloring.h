//===- regalloc/Coloring.h - George/Appel iterated coalescing -*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison allocator of §3: George & Appel's iterated register
/// coalescing [TOPLAS 18(3), 1996], a Chaitin/Briggs-style graph coloring
/// allocator that interleaves conservative coalescing with simplification.
/// Faithful to the paper's implementation notes:
///   - the adjacency relation is a lower-triangular bit matrix;
///   - liveness is computed once, before allocation (spill temporaries are
///     block-local and cannot change global liveness);
///   - the two Alpha register files are colored as two separate problems.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_REGALLOC_COLORING_H
#define LSRA_REGALLOC_COLORING_H

#include "regalloc/Allocator.h"

namespace lsra {

class FunctionAnalyses;

/// Run iterated-register-coalescing graph coloring on \p F (calls must be
/// lowered). Leaves the function fully allocated.
AllocStats runGraphColoring(Function &F, const TargetDesc &TD,
                            const AllocOptions &Opts);

/// As above, consuming the shared liveness/loop analyses in \p FA instead
/// of rebuilding them. \p FA is stale once this returns.
AllocStats runGraphColoring(Function &F, const TargetDesc &TD,
                            const AllocOptions &Opts, FunctionAnalyses &FA);

} // namespace lsra

#endif // LSRA_REGALLOC_COLORING_H
