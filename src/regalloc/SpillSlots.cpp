//===- regalloc/SpillSlots.cpp --------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/SpillSlots.h"

// SpillSlots is header-only; this file anchors the translation unit.
namespace lsra {
namespace detail {
void anchorSpillSlotsTU() {}
} // namespace detail
} // namespace lsra
