//===- regalloc/Registry.cpp ----------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Registry.h"

#include "regalloc/Binpack.h"
#include "regalloc/Coloring.h"
#include "regalloc/EbbScan.h"
#include "regalloc/Poletto.h"
#include "regalloc/TwoPass.h"

#include <cassert>

using namespace lsra;

void AllocatorRegistry::add(AllocatorInfo Info) {
  assert(static_cast<size_t>(Info.Kind) == Table.size() &&
         "register backends densely, in AllocatorKind order");
  assert(Info.Name && Info.Run && "backend needs a name and an entry point");
  Table.push_back(std::move(Info));
}

const AllocatorRegistry &AllocatorRegistry::global() {
  static AllocatorRegistry R = [] {
    AllocatorRegistry Reg;
    // Order must match the AllocatorKind enumerators: the integer id is
    // part of every compile-cache key, so it is append-only.
    Reg.add({AllocatorKind::SecondChanceBinpack,
             "second-chance-binpack",
             {"binpack", "second-chance"},
             CapNeedsLiveness | CapNeedsLifetimes,
             &runSecondChanceBinpack});
    Reg.add({AllocatorKind::GraphColoring,
             "graph-coloring",
             {"coloring"},
             CapNeedsLiveness | CapNeedsLoops,
             &runGraphColoring});
    Reg.add({AllocatorKind::TwoPassBinpack,
             "two-pass-binpack",
             {"twopass", "two-pass"},
             CapNeedsLiveness | CapNeedsLifetimes,
             &runTwoPassBinpack});
    Reg.add({AllocatorKind::PolettoScan,
             "poletto-scan",
             {"poletto"},
             CapNeedsLiveness | CapNeedsLifetimes,
             &runPolettoScan});
    Reg.add({AllocatorKind::EbbScan,
             "ebb-scan",
             {"ebb", "ebbscan"},
             CapTierEligible, // one pass, no global analyses
             &runEbbScan});
    return Reg;
  }();
  return R;
}

const AllocatorInfo &AllocatorRegistry::info(AllocatorKind K) const {
  size_t I = static_cast<size_t>(K);
  assert(I < Table.size() && "unregistered allocator kind");
  return Table[I];
}

const AllocatorInfo *
AllocatorRegistry::findByName(const std::string &Name) const {
  for (const AllocatorInfo &I : Table) {
    if (Name == I.Name)
      return &I;
    for (const char *A : I.Aliases)
      if (Name == A)
        return &I;
  }
  return nullptr;
}

std::vector<AllocatorKind> AllocatorRegistry::kinds() const {
  std::vector<AllocatorKind> Out;
  Out.reserve(Table.size());
  for (const AllocatorInfo &I : Table)
    Out.push_back(I.Kind);
  return Out;
}

std::vector<AllocatorKind>
AllocatorRegistry::kindsWithCaps(unsigned CapMask) const {
  std::vector<AllocatorKind> Out;
  for (const AllocatorInfo &I : Table)
    if ((I.Caps & CapMask) == CapMask)
      Out.push_back(I.Kind);
  return Out;
}
