//===- regalloc/Binpack.cpp - Second-chance binpacking --------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Implementation of §2 of the paper. One forward scan over the static
// linear order simultaneously allocates registers and rewrites operands:
//
//  * a temporary gets a register on first encounter, preferring the free
//    register with the smallest lifetime hole that still contains the
//    temporary's whole remaining lifetime, falling back to the largest
//    insufficient hole (§2.2, §2.5);
//  * when no register is free, the occupant with the lowest priority
//    (largest loop-depth-weighted distance to its next reference) is
//    evicted (§2.3);
//  * an eviction splits the victim's lifetime: earlier rewrites stand, and
//    the victim optimistically gets a new register at its next reference —
//    the "second chance". Reloaded values stay registered until evicted;
//    redefined spilled values postpone their store until eviction (§2.3);
//  * spill stores are suppressed when the register and the memory home are
//    known consistent, tracked by the ARE_CONSISTENT working vector with
//    the USED_CONSISTENCY/WROTE_TR sets recorded for the §2.4 dataflow;
//  * registers needed by usage conventions (calls, argument registers)
//    carry fixed lifetimes; when a register's hole expires its tenant is
//    evicted, with the "early second chance" move optimisation (§2.5);
//  * a move whose destination fits in the hole that opens in the source's
//    register right after the move is coalesced onto that register (§2.5);
//  * finally, resolution reconciles the linear assumptions with the CFG
//    (Resolver.cpp) after solving the consistency dataflow (§2.4/§2.6).
//
//===----------------------------------------------------------------------===//

#include "regalloc/Binpack.h"

#include "analysis/AnalysisCache.h"
#include "analysis/Liveness.h"
#include "analysis/Loops.h"
#include "analysis/Order.h"
#include "obs/Counters.h"
#include "obs/DecisionLog.h"
#include "obs/Trace.h"
#include "regalloc/Consistency.h"
#include "regalloc/Lifetime.h"
#include "regalloc/ParallelCopy.h"
#include "regalloc/Resolver.h"
#include "regalloc/SpillSlots.h"

#include <algorithm>
#include <memory>

using namespace lsra;

namespace {

constexpr unsigned NoTemp = ~0u;
constexpr unsigned NoReg = ~0u;

double depthWeight(unsigned Depth) {
  static const double Pow10[7] = {1, 10, 100, 1000, 1e4, 1e5, 1e6};
  return Pow10[Depth > 6 ? 6 : Depth];
}

class BinpackScanner {
public:
  BinpackScanner(Function &F, const TargetDesc &TD, const AllocOptions &Opts,
                 FunctionAnalyses &FA)
      : F(F), TD(TD), Opts(Opts), Num(FA.numbering()), LV(FA.liveness()),
        LI(FA.loops()), LT(FA.lifetimes()), Slots(F) {}

  AllocStats run();

private:
  Function &F;
  const TargetDesc &TD;
  AllocOptions Opts;
  const Numbering &Num;
  const Liveness &LV;
  const LoopInfo &LI;
  const LifetimeAnalysis &LT;
  SpillSlots Slots;
  AllocStats Stats;
  obs::DecisionLog &DL = obs::DecisionLog::global();
  unsigned Evictions = 0; ///< evictVictim + evictForConvention decisions

  // Dense universe of cross-block temporaries (shared by the location maps
  // and the consistency bit vectors, per the paper's §3 optimisation).
  std::vector<unsigned> VRegToDense;
  std::vector<unsigned> DenseToVReg;

  // Scan state.
  std::array<unsigned, NumPRegs> Occ{};    // register -> occupant temp
  std::vector<LocCode> Loc;                // temp -> current location
  // Last register each temp occupied: used only as a tie-break so a
  // reloaded temp returns to its previous register when the choice is
  // otherwise equal. This keeps block-boundary states stable across loop
  // iterations (no spurious resolution moves on back edges) and makes the
  // paper's claim that second chance subsumes GEM's "history preferencing"
  // (§4) hold in this implementation.
  std::vector<unsigned> LastReg;
  std::vector<uint8_t> Consistent;         // working ARE_CONSISTENT (all temps)
  std::vector<unsigned> DeterminedStamp;   // CurBlock+1 when At set locally
  BitVector EverSpilled;

  // Monotone cursors that keep every lifetime query O(1) amortised, which
  // is what makes the scan linear.
  std::vector<unsigned> SegCur, RefCur;
  std::array<unsigned, NumPRegs> FixCur{};

  std::vector<std::vector<LocCode>> LocTop, LocBottom;
  std::unique_ptr<ConsistencyInfo> CI;
  std::vector<std::vector<unsigned>> Preds;

  unsigned CurBlock = 0;
  std::vector<Instr> Prefix; // code to insert before the current instruction

  // --- Lifetime queries (cursor-based) -----------------------------------

  bool tempLiveAt(unsigned V, unsigned Pos) {
    const auto &Segs = LT.vreg(V).Segs;
    unsigned &I = SegCur[V];
    while (I < Segs.size() && Segs[I].End <= Pos)
      ++I;
    return I < Segs.size() && Segs[I].Start <= Pos;
  }

  /// Where V's current hole ends (start of its next segment), InfPos when V
  /// is dead for good. Precondition: V not live at Pos.
  unsigned tempHoleEnd(unsigned V, unsigned Pos) {
    const auto &Segs = LT.vreg(V).Segs;
    unsigned &I = SegCur[V];
    while (I < Segs.size() && Segs[I].End <= Pos)
      ++I;
    if (I >= Segs.size())
      return InfPos;
    return Segs[I].Start <= Pos ? Pos : Segs[I].Start;
  }

  /// Is V's current gap a true hole (value dead) rather than a linear-order
  /// artifact (value flowing around the gap on a CFG edge)? Precondition:
  /// V not live at Pos.
  bool holeIsReal(unsigned V, unsigned Pos) {
    const auto &Segs = LT.vreg(V).Segs;
    unsigned &I = SegCur[V];
    while (I < Segs.size() && Segs[I].End <= Pos)
      ++I;
    if (I >= Segs.size())
      return true; // dead for good
    return !Segs[I].LiveInStart;
  }

  const Reference *nextRef(unsigned V, unsigned Pos) {
    const auto &Refs = LT.vreg(V).Refs;
    unsigned &I = RefCur[V];
    while (I < Refs.size() && Refs[I].Pos < Pos)
      ++I;
    return I < Refs.size() ? &Refs[I] : nullptr;
  }

  /// Where register P's current convention hole ends (the next fixed
  /// occurrence); Pos itself when P is fixed-live right now.
  unsigned fixedHoleEnd(unsigned P, unsigned Pos) {
    const auto &Segs = LT.pregFixed(P).Segs;
    unsigned &I = FixCur[P];
    while (I < Segs.size() && Segs[I].End <= Pos)
      ++I;
    if (I >= Segs.size())
      return InfPos;
    return Segs[I].Start <= Pos ? Pos : Segs[I].Start;
  }

  // --- Consistency bookkeeping --------------------------------------------

  void markDetermined(unsigned V) {
    DeterminedStamp[V] = CurBlock + 1;
    if (VRegToDense[V] != ~0u)
      CI->WroteTR[CurBlock].set(VRegToDense[V]);
  }

  void setConsistent(unsigned V, bool C) {
    Consistent[V] = C;
    markDetermined(V);
  }

  /// A spill store was inhibited because ARE_CONSISTENT said so; if the
  /// assumption is not local to this block, record the GEN bit (§2.4).
  void recordConsistencyUse(unsigned V) {
    if (DeterminedStamp[V] == CurBlock + 1)
      return;
    if (VRegToDense[V] != ~0u)
      CI->UsedConsistency[CurBlock].set(VRegToDense[V]);
  }

  // --- Core mechanics ------------------------------------------------------

  Instr makeMove(unsigned DstReg, unsigned SrcReg, SpillKind Kind) {
    Instr I(pregClass(DstReg) == RegClass::Float ? Opcode::FMov : Opcode::Mov,
            Operand::preg(DstReg), Operand::preg(SrcReg));
    I.Spill = Kind;
    return I;
  }

  /// Find a *free* register of class RC whose hole ends at or after
  /// \p NeedEnd and survives past \p DefPos. Returns NoReg if none.
  unsigned findFreeRegWithHole(RegClass RC, unsigned NeedEnd, unsigned Pos,
                               unsigned DefPos, unsigned Exclude) {
    unsigned Best = NoReg, BestEnd = InfPos;
    for (unsigned R : TD.allocOrder(RC)) {
      if (R == Exclude || Occ[R] != NoTemp)
        continue;
      unsigned FH = fixedHoleEnd(R, Pos);
      if (FH <= DefPos || FH < NeedEnd)
        continue;
      if (Best == NoReg || FH < BestEnd) {
        Best = R;
        BestEnd = FH;
      }
    }
    return Best;
  }

  /// Evict T from R because a usage convention needs the register (§2.5).
  void evictForConvention(unsigned T, unsigned R, unsigned UsePos,
                          unsigned DefPos) {
    ++Evictions;
    Occ[R] = NoTemp;
    if (!tempLiveAt(T, DefPos) && holeIsReal(T, DefPos)) {
      // Evicted during one of its true lifetime holes (next reference is a
      // definition) or at its very last use: no value needs saving. A
      // linear-order artifact gap falls through to the store logic — the
      // value still flows to a successor.
      Loc[T] = LocNowhere;
      if (DL.enabled())
        DL.record(F, obs::DecisionKind::EvictDrop, T, UsePos, R,
                  "convention claims register; value dead in hole");
      return;
    }
    bool StoreNeeded = !Consistent[T];
    if (StoreNeeded && Opts.EarlySecondChance) {
      // Early second chance: a move now beats a store now + load later,
      // provided an empty register with a big-enough hole exists.
      unsigned RS = findFreeRegWithHole(F.vregClass(T), LT.vreg(T).endPos(),
                                        UsePos, DefPos, R);
      if (RS != NoReg) {
        Prefix.push_back(makeMove(RS, R, SpillKind::EvictMove));
        ++Stats.EvictMoves;
        ++Stats.LifetimeSplits;
        Occ[RS] = T;
        Loc[T] = locReg(RS);
        LastReg[T] = RS;
        if (DL.enabled())
          DL.record(F, obs::DecisionKind::EvictMove, T, UsePos, RS,
                    "early second chance: move beats store+load");
        return;
      }
    }
    if (StoreNeeded) {
      Prefix.push_back(Slots.makeStore(T, R, SpillKind::EvictStore));
      ++Stats.EvictStores;
      setConsistent(T, true);
      if (DL.enabled())
        DL.record(F, obs::DecisionKind::EvictConvention, T, UsePos, R,
                  "convention claims register; store to memory home");
    } else {
      recordConsistencyUse(T);
      if (DL.enabled())
        DL.record(F, obs::DecisionKind::EvictConvention, T, UsePos, R,
                  "convention claims register; store suppressed (consistent)");
    }
    Loc[T] = LocMem;
    EverSpilled.set(T);
  }

  /// Evict the priority-chosen victim T from R to make room (§2.3).
  void evictVictim(unsigned T, unsigned R, unsigned Pos) {
    ++Evictions;
    Occ[R] = NoTemp;
    if (!Consistent[T]) {
      Prefix.push_back(Slots.makeStore(T, R, SpillKind::EvictStore));
      ++Stats.EvictStores;
      setConsistent(T, true);
      if (DL.enabled())
        DL.record(F, obs::DecisionKind::EvictStore, T, Pos, R,
                  "lowest priority occupant; store to memory home");
    } else {
      recordConsistencyUse(T);
      if (DL.enabled())
        DL.record(F, obs::DecisionKind::EvictStore, T, Pos, R,
                  "lowest priority occupant; store suppressed (consistent)");
    }
    Loc[T] = LocMem;
    EverSpilled.set(T);
  }

  /// Pick a register for V at \p Pos. \p DefPos is the def point of the
  /// current instruction: registers that a convention claims at or before
  /// it, or whose hole-resident returns by it, are unavailable. When
  /// \p ForUse is set, occupants referenced by the current instruction are
  /// not eviction candidates (their register is being read right now).
  unsigned allocateReg(RegClass RC, unsigned V, unsigned Pos, unsigned DefPos,
                       bool ForUse) {
    unsigned VEnd = LT.vreg(V).endPos();
    unsigned Last = LastReg[V];
    unsigned BestSuff = NoReg, BestSuffEnd = InfPos;
    unsigned BestInsuff = NoReg, BestInsuffEnd = 0;
    for (unsigned R : TD.allocOrder(RC)) {
      unsigned FH = fixedHoleEnd(R, Pos);
      if (FH <= DefPos)
        continue; // claimed by a convention at this instruction
      unsigned HoleEnd = FH;
      unsigned T = Occ[R];
      if (T != NoTemp) {
        if (tempLiveAt(T, Pos) || !holeIsReal(T, Pos))
          continue; // occupied (or value survives the gap): eviction only
        HoleEnd = std::min(HoleEnd, tempHoleEnd(T, Pos));
        if (HoleEnd <= DefPos)
          continue; // the hole-resident is redefined at this instruction
      }
      if (HoleEnd >= VEnd) {
        // Sufficient hole: prefer the smallest (§2.2); on ties, the temp's
        // previous register.
        if (BestSuff == NoReg || HoleEnd < BestSuffEnd ||
            (HoleEnd == BestSuffEnd && R == Last)) {
          BestSuff = R;
          BestSuffEnd = HoleEnd;
        }
      } else if (BestInsuff == NoReg || HoleEnd > BestInsuffEnd ||
                 (HoleEnd == BestInsuffEnd && R == Last)) {
        // Insufficient hole: prefer the largest (§2.5); ties as above.
        BestInsuff = R;
        BestInsuffEnd = HoleEnd;
      }
    }
    unsigned Chosen = BestSuff != NoReg ? BestSuff : BestInsuff;
    if (Chosen != NoReg) {
      if (Occ[Chosen] != NoTemp) {
        // Displacing a hole-resident costs nothing: its next reference is a
        // definition (§2.3 "no store is needed ... during a lifetime hole").
        Loc[Occ[Chosen]] = LocNowhere;
        Occ[Chosen] = NoTemp;
      }
      return Chosen;
    }

    // All registers are occupied by live temporaries: evict the one with
    // the lowest priority, i.e. the largest loop-depth-weighted distance to
    // its next reference (§2.3).
    double BestScore = -1;
    unsigned BestR = NoReg;
    for (unsigned R : TD.allocOrder(RC)) {
      unsigned FH = fixedHoleEnd(R, Pos);
      if (FH <= DefPos)
        continue;
      unsigned T = Occ[R];
      if (T == NoTemp)
        continue;
      const Reference *NR = nextRef(T, Pos);
      if (ForUse && NR && NR->Pos <= DefPos)
        continue; // being read by the current instruction
      double Dist = NR ? static_cast<double>(NR->Pos - Pos)
                       : static_cast<double>(InfPos) / 2;
      double Score = Dist / depthWeight(NR ? NR->Depth : 0);
      if (Score > BestScore) {
        BestScore = Score;
        BestR = R;
      }
    }
    assert(BestR != NoReg &&
           "register allocation impossible: too few allocatable registers");
    evictVictim(Occ[BestR], BestR, Pos);
    return BestR;
  }

  // --- Per-instruction processing ------------------------------------------

  void processUses(Instr &I, unsigned UsePos, unsigned DefPos) {
    const OpcodeInfo &Info = I.info();
    for (unsigned S = Info.NumDefs; S < unsigned(Info.NumDefs) + Info.NumUses;
         ++S) {
      Operand &Op = I.op(S);
      if (!Op.isVReg())
        continue;
      unsigned V = Op.vregId();
      unsigned R;
      if (isRegLoc(Loc[V])) {
        R = regOfLoc(Loc[V]);
        assert(Occ[R] == V && "binding invariant violated");
      } else {
        // Reference to a spilled (or not-yet-materialised) temporary: find
        // it a register, reload, and optimistically keep it there — the
        // second chance (§2.3).
        R = allocateReg(F.vregClass(V), V, UsePos, DefPos, /*ForUse=*/true);
        Prefix.push_back(Slots.makeLoad(V, R, SpillKind::EvictLoad));
        ++Stats.EvictLoads;
        ++Stats.LifetimeSplits;
        EverSpilled.set(V);
        Occ[R] = V;
        Loc[V] = locReg(R);
        LastReg[V] = R;
        setConsistent(V, true); // a spill load makes reg and memory agree
        if (DL.enabled())
          DL.record(F, obs::DecisionKind::SecondChanceLoad, V, UsePos, R,
                    "reload at next use; optimistically stays registered");
      }
      Op = Operand::preg(R);
    }
  }

  /// Evict tenants of registers whose convention hole expires at this
  /// instruction (call clobbers, argument/return register uses).
  void fixedSweep(unsigned UsePos, unsigned DefPos) {
    for (unsigned R = 0; R < NumPRegs; ++R) {
      unsigned T = Occ[R];
      if (T == NoTemp)
        continue;
      if (!tempLiveAt(T, UsePos) && tempHoleEnd(T, UsePos) == InfPos) {
        // Tenant's lifetime is over; reclaim lazily.
        Occ[R] = NoTemp;
        Loc[T] = LocNowhere;
        continue;
      }
      if (fixedHoleEnd(R, UsePos) <= DefPos)
        evictForConvention(T, R, UsePos, DefPos);
    }
  }

  bool canCoalesce(unsigned V, unsigned RS, unsigned DefPos) {
    if (RS >= NumPRegs || !TD.isAllocatable(RS))
      return false;
    if (pregClass(RS) != F.vregClass(V))
      return false;
    unsigned VEnd = LT.vreg(V).endPos();
    // The register must have a hole starting right after the move's source
    // use that contains the destination's entire lifetime (§2.5).
    if (fixedHoleEnd(RS, DefPos) < VEnd)
      return false;
    unsigned T = Occ[RS];
    if (T != NoTemp) {
      if (tempLiveAt(T, DefPos) || !holeIsReal(T, DefPos))
        return false;
      if (tempHoleEnd(T, DefPos) < VEnd)
        return false;
    }
    return true;
  }

  void processDefs(Instr &I, unsigned DefPos) {
    if (I.info().NumDefs == 0)
      return;
    Operand &Op = I.op(0);
    if (!Op.isVReg())
      return; // fixed def; the sweep vacated the register already
    unsigned V = Op.vregId();

    // Move-coalescing check (§2.5): after the source has been rewritten,
    // try to give the destination the same register so the peephole can
    // delete the move. This is also what removes the parameter-register
    // moves at procedure entry.
    if (Opts.MoveCoalesce &&
        (I.opcode() == Opcode::Mov || I.opcode() == Opcode::FMov) &&
        I.op(1).isPReg() && !isRegLoc(Loc[V])) {
      unsigned RS = I.op(1).pregId();
      if (canCoalesce(V, RS, DefPos)) {
        if (Occ[RS] != NoTemp)
          Loc[Occ[RS]] = LocNowhere;
        Occ[RS] = V;
        Loc[V] = locReg(RS);
        LastReg[V] = RS;
        Op = Operand::preg(RS);
        ++Stats.MovesCoalesced;
        if (DL.enabled())
          DL.record(F, obs::DecisionKind::CoalesceMove, V, DefPos, RS,
                    "destination fits in hole opening after move source");
        markWrite(V);
        return;
      }
    }

    unsigned R;
    if (isRegLoc(Loc[V])) {
      R = regOfLoc(Loc[V]);
      assert(Occ[R] == V && "binding invariant violated");
    } else {
      R = allocateReg(F.vregClass(V), V, DefPos, DefPos, /*ForUse=*/false);
      if (Loc[V] == LocMem) {
        ++Stats.LifetimeSplits; // second chance on a write (§2.3)
        if (DL.enabled())
          DL.record(F, obs::DecisionKind::SecondChanceDef, V, DefPos, R,
                    "spilled value redefined; store postponed until eviction");
      }
      Occ[R] = V;
      Loc[V] = locReg(R);
      LastReg[V] = R;
    }
    Op = Operand::preg(R);
    markWrite(V);
  }

  void markWrite(unsigned V) {
    Consistent[V] = false;
    markDetermined(V);
  }

  // --- Block boundaries -----------------------------------------------------

  void blockTop(unsigned B) {
    CurBlock = B;
    if (Opts.Consistency == AllocOptions::ConsistencyMode::Conservative) {
      // §2.6: initialise the working ARE_CONSISTENT with the intersection
      // of the saved bottoms of all predecessors; an unprocessed
      // predecessor (back edge) clears everything.
      std::fill(Consistent.begin(), Consistent.end(), 0);
      bool AllProcessed = true;
      for (unsigned P : Preds[B])
        if (P >= B)
          AllProcessed = false;
      if (AllProcessed && !Preds[B].empty()) {
        BitVector Inter = CI->AreConsistentBottom[Preds[B][0]];
        for (unsigned PI = 1; PI < Preds[B].size(); ++PI)
          Inter &= CI->AreConsistentBottom[Preds[B][PI]];
        Inter.forEachSetBit([&](unsigned D) { Consistent[DenseToVReg[D]] = 1; });
      }
    }
    LV.liveIn(B).forEachSetBit([&](unsigned V) {
      unsigned D = VRegToDense[V];
      assert(D != ~0u && "live-in temp must be cross-block");
      LocTop[B][D] = isRegLoc(Loc[V]) ? Loc[V] : LocMem;
    });
  }

  void blockBottom(unsigned B) {
    LV.liveOut(B).forEachSetBit([&](unsigned V) {
      unsigned D = VRegToDense[V];
      LocBottom[B][D] = isRegLoc(Loc[V]) ? Loc[V] : LocMem;
    });
    for (unsigned D = 0; D < DenseToVReg.size(); ++D)
      if (Consistent[DenseToVReg[D]])
        CI->AreConsistentBottom[B].set(D);
  }
};

AllocStats BinpackScanner::run() {
  assert(F.CallsLowered && "lower calls before register allocation");
  unsigned NumV = F.numVRegs();
  unsigned NumBlocks = F.numBlocks();
  Stats.RegCandidates = NumV;

  // Dense cross-block universe.
  VRegToDense.assign(NumV, ~0u);
  LV.crossBlockSet().forEachSetBit([&](unsigned V) {
    VRegToDense[V] = static_cast<unsigned>(DenseToVReg.size());
    DenseToVReg.push_back(V);
  });

  Occ.fill(NoTemp);
  Loc.assign(NumV, LocNowhere);
  LastReg.assign(NumV, NoReg);
  Consistent.assign(NumV, 0);
  DeterminedStamp.assign(NumV, 0);
  EverSpilled.resize(NumV);
  SegCur.assign(NumV, 0);
  RefCur.assign(NumV, 0);
  FixCur.fill(0);
  LocTop.assign(NumBlocks,
                std::vector<LocCode>(DenseToVReg.size(), LocMem));
  LocBottom.assign(NumBlocks,
                   std::vector<LocCode>(DenseToVReg.size(), LocMem));
  CI = std::make_unique<ConsistencyInfo>(NumBlocks, VRegToDense, DenseToVReg);
  Preds = F.predecessors();

  // The single allocate/rewrite pass (§2.3).
  {
    obs::ScopedSpan Span("binpack.scan", "phase");
    for (unsigned B = 0; B < NumBlocks; ++B) {
      blockTop(B);
      Block &Blk = F.block(B);
      std::vector<uint32_t> Out;
      Out.reserve(Blk.size() + 4);
      bool Inserted = false;
      for (unsigned Idx = 0; Idx < Blk.size(); ++Idx) {
        Instr I = Blk.instrs()[Idx];
        unsigned G = Num.instrIndex(B, Idx);
        unsigned UsePos = Numbering::usePos(G);
        unsigned DefPos = Numbering::defPos(G);
        Prefix.clear();
        processUses(I, UsePos, DefPos);
        fixedSweep(UsePos, DefPos);
        processDefs(I, DefPos);
        for (const Instr &P : Prefix) {
          Out.push_back(Blk.makeInstr(P));
          Inserted = true;
        }
        Blk.instrs()[Idx] = I; // rewritten in place: id preserved
        Out.push_back(Blk.instrId(Idx));
      }
      if (Inserted)
        Blk.setInstrIds(Out);
      blockBottom(B);
    }
  }

  // Register the resolver's own reliance on exit consistency: edges that
  // will suppress a reg->mem store because ARE_CONSISTENT(p) is set.
  for (unsigned B = 0; B < NumBlocks; ++B) {
    for (unsigned S : F.block(B).successors()) {
      // Only temps consistent at B's bottom can have a store suppressed.
      CI->AreConsistentBottom[B].forEachSetBit([&](unsigned D) {
        unsigned V = DenseToVReg[D];
        if (!LV.liveIn(S).test(V))
          return;
        if (isRegLoc(LocBottom[B][D]) && !isRegLoc(LocTop[S][D]))
          CI->UsedAtExit[B].set(D);
      });
    }
  }

  // §2.4 dataflow (skipped in conservative mode, which is sound without it).
  bool Iterative =
      Opts.Consistency == AllocOptions::ConsistencyMode::Iterative;
  if (Iterative) {
    obs::ScopedSpan Span("binpack.dataflow", "phase");
    Stats.DataflowIterations = CI->solve(F);
  }

  // Resolution (§2.4).
  {
    obs::ScopedSpan Span("binpack.resolution", "phase");
    ResolverInput In;
    In.LV = &LV;
    In.VRegToDense = &VRegToDense;
    In.DenseToVReg = &DenseToVReg;
    In.LocTop = &LocTop;
    In.LocBottom = &LocBottom;
    In.CI = Iterative ? CI.get() : nullptr;
    In.ConsistentBottom = &CI->AreConsistentBottom;
    ResolveCounts RC = resolveEdges(F, In, Slots);
    Stats.ResolveLoads = RC.Loads;
    Stats.ResolveStores = RC.Stores;
    Stats.ResolveMoves = RC.Moves;
    Stats.SplitEdges = RC.SplitEdges;
  }
  Stats.SpilledTemps = EverSpilled.count();

  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled()) {
    CR.counter("binpack.evictions").add(Evictions);
    CR.counter("binpack.second_chance_splits").add(Stats.LifetimeSplits);
    CR.counter("binpack.coalesced_moves").add(Stats.MovesCoalesced);
    CR.counter("binpack.dataflow_iterations").add(Stats.DataflowIterations);
  }
  return Stats;
}

} // namespace

AllocStats lsra::runSecondChanceBinpack(Function &F, const TargetDesc &TD,
                                        const AllocOptions &Opts) {
  FunctionAnalyses FA(F, TD);
  return runSecondChanceBinpack(F, TD, Opts, FA);
}

AllocStats lsra::runSecondChanceBinpack(Function &F, const TargetDesc &TD,
                                        const AllocOptions &Opts,
                                        FunctionAnalyses &FA) {
  assert(&FA.function() == &F && "analyses are for a different function");
  return BinpackScanner(F, TD, Opts, FA).run();
}
