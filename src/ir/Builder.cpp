//===- ir/Builder.cpp -----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

using namespace lsra;

FunctionBuilder::FunctionBuilder(Module &M, std::string Name,
                                 unsigned IntParams, unsigned FpParams,
                                 CallRetKind Ret)
    : FunctionBuilder(M, M.addFunction(std::move(Name)), IntParams, FpParams,
                      Ret) {}

FunctionBuilder::FunctionBuilder(Module &M, Function &F, unsigned IntParams,
                                 unsigned FpParams, CallRetKind Ret)
    : M(M), F(F) {
  assert(IntParams <= 6 && FpParams <= 6 &&
         "at most 6 register parameters per class");
  assert(F.numBlocks() == 0 && F.numVRegs() == 0 &&
         "builder needs an empty function");
  F.RetKind = Ret;
  F.IntParamVRegs.clear();
  F.FpParamVRegs.clear();
  for (unsigned I = 0; I < IntParams; ++I)
    F.IntParamVRegs.push_back(F.newVReg(RegClass::Int));
  for (unsigned I = 0; I < FpParams; ++I)
    F.FpParamVRegs.push_back(F.newVReg(RegClass::Float));
}

unsigned FunctionBuilder::binop(Opcode Op, Operand A, Operand B) {
  unsigned D = newInt();
  emit(Instr(Op, Operand::vreg(D), A, B));
  return D;
}

unsigned FunctionBuilder::movi(int64_t V) {
  unsigned D = newInt();
  emit(Instr(Opcode::MovI, Operand::vreg(D), Operand::imm(V)));
  return D;
}

unsigned FunctionBuilder::mov(unsigned Src) {
  unsigned D = newInt();
  emit(Instr(Opcode::Mov, Operand::vreg(D), Operand::vreg(Src)));
  return D;
}

unsigned FunctionBuilder::neg(unsigned A) {
  unsigned D = newInt();
  emit(Instr(Opcode::Neg, Operand::vreg(D), Operand::vreg(A)));
  return D;
}

unsigned FunctionBuilder::notOp(unsigned A) {
  unsigned D = newInt();
  emit(Instr(Opcode::Not, Operand::vreg(D), Operand::vreg(A)));
  return D;
}

unsigned FunctionBuilder::fbinop(Opcode Op, unsigned A, unsigned B) {
  unsigned D = newFp();
  emit(Instr(Op, Operand::vreg(D), Operand::vreg(A), Operand::vreg(B)));
  return D;
}

unsigned FunctionBuilder::fcmp(Opcode Op, unsigned A, unsigned B) {
  assert((Op == Opcode::FCmpEq || Op == Opcode::FCmpLt ||
          Op == Opcode::FCmpLe) &&
         "not a floating compare");
  unsigned D = newInt();
  emit(Instr(Op, Operand::vreg(D), Operand::vreg(A), Operand::vreg(B)));
  return D;
}

unsigned FunctionBuilder::movf(double V) {
  unsigned D = newFp();
  emit(Instr(Opcode::MovF, Operand::vreg(D), Operand::fimm(V)));
  return D;
}

unsigned FunctionBuilder::fmov(unsigned Src) {
  unsigned D = newFp();
  emit(Instr(Opcode::FMov, Operand::vreg(D), Operand::vreg(Src)));
  return D;
}

unsigned FunctionBuilder::fneg(unsigned A) {
  unsigned D = newFp();
  emit(Instr(Opcode::FNeg, Operand::vreg(D), Operand::vreg(A)));
  return D;
}

unsigned FunctionBuilder::itof(unsigned A) {
  unsigned D = newFp();
  emit(Instr(Opcode::ItoF, Operand::vreg(D), Operand::vreg(A)));
  return D;
}

unsigned FunctionBuilder::ftoi(unsigned A) {
  unsigned D = newInt();
  emit(Instr(Opcode::FtoI, Operand::vreg(D), Operand::vreg(A)));
  return D;
}

unsigned FunctionBuilder::load(unsigned AddrReg, int64_t Off) {
  unsigned D = newInt();
  emit(Instr(Opcode::Ld, Operand::vreg(D), Operand::vreg(AddrReg),
             Operand::imm(Off)));
  return D;
}

void FunctionBuilder::store(unsigned Val, unsigned AddrReg, int64_t Off) {
  emit(Instr(Opcode::St, Operand::vreg(Val), Operand::vreg(AddrReg),
             Operand::imm(Off)));
}

unsigned FunctionBuilder::fload(unsigned AddrReg, int64_t Off) {
  unsigned D = newFp();
  emit(Instr(Opcode::FLd, Operand::vreg(D), Operand::vreg(AddrReg),
             Operand::imm(Off)));
  return D;
}

void FunctionBuilder::fstore(unsigned Val, unsigned AddrReg, int64_t Off) {
  emit(Instr(Opcode::FSt, Operand::vreg(Val), Operand::vreg(AddrReg),
             Operand::imm(Off)));
}

void FunctionBuilder::br(Block &Target) {
  emit(Instr(Opcode::Br, Operand::label(Target.id())));
}

void FunctionBuilder::cbr(unsigned Cond, Block &TrueB, Block &FalseB) {
  emit(Instr(Opcode::CBr, Operand::vreg(Cond), Operand::label(TrueB.id()),
             Operand::label(FalseB.id())));
}

void FunctionBuilder::retVoid() {
  assert(F.RetKind == CallRetKind::None && "function returns a value");
  emit(Instr(Opcode::Ret));
}

void FunctionBuilder::retVal(unsigned V) {
  assert(F.RetKind != CallRetKind::None && "function returns void");
  assert(F.vregClass(V) == (F.RetKind == CallRetKind::Int ? RegClass::Int
                                                          : RegClass::Float) &&
         "return value class mismatch");
  emit(Instr(Opcode::Ret, Operand::vreg(V)));
}

unsigned FunctionBuilder::call(const Function &Callee,
                               const std::vector<unsigned> &IntArgs,
                               const std::vector<unsigned> &FpArgs) {
  assert(IntArgs.size() == Callee.IntParamVRegs.size() &&
         FpArgs.size() == Callee.FpParamVRegs.size() &&
         "argument count mismatch");
  for (unsigned I = 0; I < IntArgs.size(); ++I)
    emit(Instr(Opcode::CArg, Operand::vreg(IntArgs[I]),
               Operand::imm(static_cast<int64_t>(I))));
  for (unsigned I = 0; I < FpArgs.size(); ++I)
    emit(Instr(Opcode::FCArg, Operand::vreg(FpArgs[I]),
               Operand::imm(static_cast<int64_t>(I))));
  Instr CallI(Opcode::Call, Operand::func(Callee.id()));
  CallI.CallIntArgs = static_cast<uint8_t>(IntArgs.size());
  CallI.CallFpArgs = static_cast<uint8_t>(FpArgs.size());
  CallI.CallRet = Callee.RetKind;
  emit(CallI);
  if (Callee.RetKind == CallRetKind::Int) {
    unsigned D = newInt();
    emit(Instr(Opcode::CRes, Operand::vreg(D)));
    return D;
  }
  if (Callee.RetKind == CallRetKind::Float) {
    unsigned D = newFp();
    emit(Instr(Opcode::FCRes, Operand::vreg(D)));
    return D;
  }
  return ~0u;
}

unsigned FunctionBuilder::call(unsigned CalleeId, CallRetKind Ret) {
  Instr CallI(Opcode::Call, Operand::func(CalleeId));
  CallI.CallIntArgs = 0;
  CallI.CallFpArgs = 0;
  CallI.CallRet = Ret;
  emit(CallI);
  if (Ret == CallRetKind::Int) {
    unsigned D = newInt();
    emit(Instr(Opcode::CRes, Operand::vreg(D)));
    return D;
  }
  if (Ret == CallRetKind::Float) {
    unsigned D = newFp();
    emit(Instr(Opcode::FCRes, Operand::vreg(D)));
    return D;
  }
  return ~0u;
}

void FunctionBuilder::emitValue(unsigned V) {
  emit(Instr(Opcode::Emit, Operand::vreg(V)));
}

void FunctionBuilder::femitValue(unsigned V) {
  emit(Instr(Opcode::FEmit, Operand::vreg(V)));
}
