//===- ir/Instr.h - Machine instruction -----------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A machine instruction: opcode, up to three operand slots, call metadata,
/// and a spill-category tag used by the VM to attribute dynamic instruction
/// counts to the paper's Figure 3 categories.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_INSTR_H
#define LSRA_IR_INSTR_H

#include "ir/Operand.h"

#include <array>
#include <cassert>

namespace lsra {

/// Category tag for instructions inserted by a register allocator. "Evict"
/// spill code is inserted during the linear allocate/rewrite scan (or, for
/// graph coloring, during its spill phase); "Resolve" spill code is inserted
/// by second-chance binpacking's resolution phase (§2.4). Callee-save
/// save/restore code is tagged separately because the paper's spill
/// accounting covers allocation candidates only.
enum class SpillKind : uint8_t {
  None,
  EvictLoad,
  EvictStore,
  EvictMove,
  ResolveLoad,
  ResolveStore,
  ResolveMove,
  CalleeSave,
  CalleeRestore,
};

const char *spillKindName(SpillKind K);
inline bool isSpillCode(SpillKind K) {
  return K != SpillKind::None && K != SpillKind::CalleeSave &&
         K != SpillKind::CalleeRestore;
}

/// Which register class (if any) a call returns a value in.
enum class CallRetKind : uint8_t { None, Int, Float };

class Instr {
public:
  Instr() : Op(Opcode::Nop) {}
  explicit Instr(Opcode Op) : Op(Op) {}
  Instr(Opcode Op, Operand A) : Op(Op) { Ops[0] = A; }
  Instr(Opcode Op, Operand A, Operand B) : Op(Op) {
    Ops[0] = A;
    Ops[1] = B;
  }
  Instr(Opcode Op, Operand A, Operand B, Operand C) : Op(Op) {
    Ops[0] = A;
    Ops[1] = B;
    Ops[2] = C;
  }

  Opcode opcode() const { return Op; }
  const OpcodeInfo &info() const { return opcodeInfo(Op); }

  Operand &op(unsigned I) {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }
  const Operand &op(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }

  unsigned numDefSlots() const { return info().NumDefs; }
  unsigned numUseSlots() const { return info().NumUses; }

  /// The register definition slot (asserting there is one).
  Operand &defOp() {
    assert(numDefSlots() == 1 && "instruction has no def");
    return Ops[0];
  }
  const Operand &defOp() const {
    assert(numDefSlots() == 1 && "instruction has no def");
    return Ops[0];
  }

  /// Use slot \p I (0-based among the register-use slots).
  Operand &useOp(unsigned I) {
    assert(I < numUseSlots() && "use index out of range");
    return Ops[numDefSlots() + I];
  }
  const Operand &useOp(unsigned I) const {
    assert(I < numUseSlots() && "use index out of range");
    return Ops[numDefSlots() + I];
  }

  /// Register class of operand slot \p I according to the opcode layout.
  RegClass slotClass(unsigned I) const {
    return (info().FloatMask >> I) & 1 ? RegClass::Float : RegClass::Int;
  }

  bool isTerminator() const { return info().IsTerminator; }
  bool isCall() const { return Op == Opcode::Call; }

  /// Is this a register-to-register copy (Mov or FMov) whose source slot is
  /// a register operand?
  bool isRegMove() const {
    return (Op == Opcode::Mov || Op == Opcode::FMov) && Ops[1].isReg();
  }

  // Call metadata: number of integer/fp argument registers used, and the
  // return-value register class. Implicit operand expansion (argument
  // register uses, return register def, caller-saved clobbers) is done by
  // the target layer.
  uint8_t CallIntArgs = 0;
  uint8_t CallFpArgs = 0;
  CallRetKind CallRet = CallRetKind::None;

  /// Allocator-inserted spill category (None for ordinary code).
  SpillKind Spill = SpillKind::None;

private:
  Opcode Op;
  std::array<Operand, 3> Ops;
};

} // namespace lsra

#endif // LSRA_IR_INSTR_H
