//===- ir/Printer.h - Textual IR dump -------------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human-readable dumps of operands, instructions, functions, and modules,
/// used by the examples and by test failure diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_PRINTER_H
#define LSRA_IR_PRINTER_H

#include "ir/Module.h"

#include <iosfwd>
#include <string>

namespace lsra {

/// Print \p Op; \p M (optional) resolves function-reference names.
void printOperand(std::ostream &OS, const Operand &Op, const Module *M = nullptr);

/// Print one instruction (no trailing newline). Spill-category tags are
/// shown as trailing comments so allocator output is self-describing.
void printInstr(std::ostream &OS, const Instr &I, const Function &F,
                const Module *M = nullptr);

/// Print a whole function.
void printFunction(std::ostream &OS, const Function &F,
                   const Module *M = nullptr);

/// Print a whole module.
void printModule(std::ostream &OS, const Module &M);

/// Convenience: function dump as a string (tests use this).
std::string toString(const Function &F, const Module *M = nullptr);

/// Convenience: single-instruction dump as a string.
std::string toString(const Instr &I, const Function &F,
                     const Module *M = nullptr);

/// Emit the function's CFG in Graphviz dot format (one node per block with
/// its instructions; edges follow the terminators).
void printDotCFG(std::ostream &OS, const Function &F,
                 const Module *M = nullptr);

} // namespace lsra

#endif // LSRA_IR_PRINTER_H
