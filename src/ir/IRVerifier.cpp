//===- ir/IRVerifier.cpp --------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRVerifier.h"

#include "ir/Printer.h"

#include <sstream>

using namespace lsra;

namespace {

class Verifier {
public:
  Verifier(const Function &F, const Module &M, VerifyOptions Opts)
      : F(F), M(M), Opts(Opts) {}

  std::string run() {
    if (F.numBlocks() == 0) {
      error() << "function has no blocks";
      return OS.str();
    }
    for (const Block &B : F.blocks())
      checkBlock(B);
    return OS.str();
  }

private:
  std::ostream &error() {
    if (!FirstError)
      OS << "\n";
    FirstError = false;
    OS << F.name() << ": ";
    return OS;
  }

  void checkBlock(const Block &B) {
    if (B.empty()) {
      error() << "bb" << B.id() << " is empty";
      return;
    }
    for (unsigned Idx = 0; Idx < B.size(); ++Idx) {
      const Instr &I = B.instrs()[Idx];
      bool IsLast = Idx + 1 == B.size();
      if (I.isTerminator() != IsLast) {
        error() << "bb" << B.id() << "[" << Idx << "]: "
                << (IsLast ? "block does not end in a terminator"
                           : "terminator in the middle of a block");
      }
      checkInstr(B, Idx, I);
    }
  }

  void checkRegOperand(const Block &B, unsigned Idx, const Instr &I,
                       unsigned Slot, bool IsDef) {
    const Operand &Op = I.op(Slot);
    // Ret's value class depends on the function signature, not the opcode
    // table.
    RegClass RC = I.opcode() == Opcode::Ret
                      ? (F.RetKind == CallRetKind::Float ? RegClass::Float
                                                         : RegClass::Int)
                      : I.slotClass(Slot);
    if (Op.isVReg()) {
      if (Opts.RequireAllocated) {
        error() << "bb" << B.id() << "[" << Idx
                << "]: virtual register survives allocation in '"
                << toString(I, F, &M) << "'";
        return;
      }
      if (Op.vregId() >= F.numVRegs()) {
        error() << "bb" << B.id() << "[" << Idx << "]: vreg out of range";
        return;
      }
      if (F.vregClass(Op.vregId()) != RC)
        error() << "bb" << B.id() << "[" << Idx
                << "]: register class mismatch in '" << toString(I, F, &M)
                << "'";
      return;
    }
    if (Op.isPReg()) {
      if (pregClass(Op.pregId()) != RC)
        error() << "bb" << B.id() << "[" << Idx
                << "]: physical register class mismatch in '"
                << toString(I, F, &M) << "'";
      return;
    }
    if (IsDef) {
      error() << "bb" << B.id() << "[" << Idx << "]: def slot " << Slot
              << " is not a register in '" << toString(I, F, &M) << "'";
      return;
    }
    // A use slot may hold an immediate for integer ALU second operands, and
    // Ret's use slot may be empty (void return).
    bool ImmOk = Op.isImm() && RC == RegClass::Int;
    bool NoneOk = Op.isNone() && I.opcode() == Opcode::Ret;
    if (!ImmOk && !NoneOk)
      error() << "bb" << B.id() << "[" << Idx << "]: bad use operand in '"
              << toString(I, F, &M) << "'";
  }

  void checkInstr(const Block &B, unsigned Idx, const Instr &I) {
    const OpcodeInfo &Info = I.info();
    for (unsigned S = 0; S < Info.NumDefs; ++S)
      checkRegOperand(B, Idx, I, S, /*IsDef=*/true);
    for (unsigned S = Info.NumDefs; S < unsigned(Info.NumDefs) + Info.NumUses;
         ++S)
      checkRegOperand(B, Idx, I, S, /*IsDef=*/false);

    switch (I.opcode()) {
    case Opcode::Br:
      checkLabel(B, Idx, I.op(0));
      break;
    case Opcode::CBr:
      checkLabel(B, Idx, I.op(1));
      checkLabel(B, Idx, I.op(2));
      break;
    case Opcode::Call:
      if (!I.op(0).isFunc() || I.op(0).funcId() >= M.numFunctions())
        error() << "bb" << B.id() << "[" << Idx << "]: bad call target";
      break;
    case Opcode::Ld:
    case Opcode::St:
    case Opcode::FLd:
    case Opcode::FSt:
      if (!I.op(2).isImm())
        error() << "bb" << B.id() << "[" << Idx
                << "]: memory op needs an immediate offset";
      break;
    case Opcode::LdSlot:
    case Opcode::FLdSlot:
      checkSlot(B, Idx, I.op(1), I.slotClass(0));
      break;
    case Opcode::StSlot:
    case Opcode::FStSlot:
      checkSlot(B, Idx, I.op(1), I.slotClass(0));
      break;
    case Opcode::MovI:
      if (!I.op(1).isImm())
        error() << "bb" << B.id() << "[" << Idx << "]: movi needs an imm";
      break;
    case Opcode::MovF:
      if (!I.op(1).isFImm())
        error() << "bb" << B.id() << "[" << Idx << "]: movf needs a fimm";
      break;
    case Opcode::CArg:
    case Opcode::FCArg:
    case Opcode::CRes:
    case Opcode::FCRes:
      if (Opts.RequireLoweredCalls || F.CallsLowered)
        error() << "bb" << B.id() << "[" << Idx
                << "]: call pseudo op survives lowering";
      break;
    default:
      break;
    }
  }

  void checkLabel(const Block &B, unsigned Idx, const Operand &Op) {
    if (!Op.isLabel() || Op.labelBlock() >= F.numBlocks())
      error() << "bb" << B.id() << "[" << Idx << "]: bad label operand";
  }

  void checkSlot(const Block &B, unsigned Idx, const Operand &Op,
                 RegClass RC) {
    if (!Op.isSlot() || Op.slotId() >= F.numSlots()) {
      error() << "bb" << B.id() << "[" << Idx << "]: bad slot operand";
      return;
    }
    if (F.slotClass(Op.slotId()) != RC)
      error() << "bb" << B.id() << "[" << Idx << "]: slot class mismatch";
  }

  const Function &F;
  const Module &M;
  VerifyOptions Opts;
  std::ostringstream OS;
  bool FirstError = true;
};

} // namespace

std::string lsra::verifyFunction(const Function &F, const Module &M,
                                 VerifyOptions Opts) {
  return Verifier(F, M, Opts).run();
}

std::string lsra::verifyModule(const Module &M, VerifyOptions Opts) {
  std::string All;
  for (const auto &F : M.functions()) {
    std::string S = verifyFunction(*F, M, Opts);
    if (S.empty())
      continue;
    if (!All.empty())
      All += "\n";
    All += S;
  }
  return All;
}
