//===- ir/Block.cpp -------------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Block.h"

using namespace lsra;

std::vector<unsigned> Block::successors() const {
  std::vector<unsigned> Succs;
  if (Ids.empty())
    return Succs;
  const Instr &T = Pool->get(Ids.back());
  switch (T.opcode()) {
  case Opcode::Br:
    Succs.push_back(T.op(0).labelBlock());
    break;
  case Opcode::CBr:
    Succs.push_back(T.op(1).labelBlock());
    if (T.op(2).labelBlock() != T.op(1).labelBlock())
      Succs.push_back(T.op(2).labelBlock());
    break;
  case Opcode::Ret:
    break;
  default:
    assert(false && "block does not end in a terminator");
  }
  return Succs;
}

void Block::replaceSuccessor(unsigned OldId, unsigned NewId) {
  assert(hasTerminator() && "block has no terminator");
  Instr &T = Pool->get(Ids.back());
  for (unsigned I = 0; I < 3; ++I)
    if (T.op(I).isLabel() && T.op(I).labelBlock() == OldId)
      T.op(I) = Operand::label(NewId);
}
