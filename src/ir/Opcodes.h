//===- ir/Opcodes.h - Instruction opcodes ---------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcode enumeration and static per-opcode metadata for the load/store IR.
/// The IR models an Alpha-like machine: a register is always required for
/// computation; memory is reached only through loads and stores (the paper's
/// §2.2 assumption), and spill code uses dedicated frame-slot opcodes so the
/// VM can attribute dynamic instruction counts to spill categories.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_OPCODES_H
#define LSRA_IR_OPCODES_H

#include <cstdint>

namespace lsra {

enum class RegClass : uint8_t { Int = 0, Float = 1 };

enum class Opcode : uint8_t {
  // Integer three-address ALU: def, use, use (second use may be immediate).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Integer unary: def, use.
  Neg,
  Not,
  // Floating-point ALU: fp def, fp use, fp use.
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Floating-point unary: fp def, fp use.
  FNeg,
  // Floating-point compares: int def, fp use, fp use.
  FCmpEq,
  FCmpLt,
  FCmpLe,
  // Conversions.
  ItoF, // fp def, int use
  FtoI, // int def, fp use
  // Register moves and constants.
  Mov,  // int def, int use
  FMov, // fp def, fp use
  MovI, // int def, imm
  MovF, // fp def, fimm
  // Global memory (word addressed): address register + immediate offset.
  Ld,  // int def, int addr use, imm off
  St,  // int value use, int addr use, imm off
  FLd, // fp def, int addr use, imm off
  FSt, // fp value use, int addr use, imm off
  // Frame slots (used for spill code, callee-save, and locals).
  LdSlot,  // int def, slot
  StSlot,  // int value use, slot
  FLdSlot, // fp def, slot
  FStSlot, // fp value use, slot
  // Control flow (terminators).
  Br,  // label
  CBr, // int cond use, label, label
  Ret, // optional value use (pre-lowering: vreg; post-lowering: preg)
  // Call: func operand; argument/return registers are implicit operands
  // described by the Instr's CallIntArgs/CallFpArgs/CallRet fields.
  Call,
  // High-level calling-convention pseudo ops. The builder emits these; the
  // LowerCalls pass rewrites them into moves through the Alpha-like
  // argument/return registers. They never reach a register allocator.
  CArg,  // int use, imm arg index
  FCArg, // fp use, imm arg index
  CRes,  // int def (value returned by the preceding call)
  FCRes, // fp def
  // Observable output, used to check semantic equivalence of allocations.
  Emit,  // int use
  FEmit, // fp use
  Nop,
};

constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Nop) + 1;

/// Static description of one opcode's operand layout. Register defs occupy
/// slots [0, NumDefs); register uses occupy [NumDefs, NumDefs + NumUses);
/// remaining slots hold immediates, labels, slots, or function references.
/// A use slot may also hold an immediate (e.g. `add d, a, 4`), and Ret's
/// use slot may be empty.
struct OpcodeInfo {
  const char *Name;
  uint8_t NumDefs;   ///< 0 or 1 register definitions.
  uint8_t NumUses;   ///< Register use slots (some may hold immediates).
  uint8_t FloatMask; ///< Bit i set => register slot i is float-class.
  bool IsTerminator;
};

/// Metadata lookup for \p Op.
const OpcodeInfo &opcodeInfo(Opcode Op);

inline const char *opcodeName(Opcode Op) { return opcodeInfo(Op).Name; }

inline bool isTerminator(Opcode Op) { return opcodeInfo(Op).IsTerminator; }

/// True for the commutative integer ALU opcodes (used by strength-reduction
/// style canonicalisation in the builder and by the random program
/// generator).
bool isCommutative(Opcode Op);

} // namespace lsra

#endif // LSRA_IR_OPCODES_H
