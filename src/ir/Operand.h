//===- ir/Operand.h - Instruction operands --------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact tagged operand: virtual register, physical register, integer or
/// floating immediate, frame slot, block label, or function reference.
/// Register allocation is, at bottom, the act of rewriting VReg operands
/// into PReg operands in place.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_OPERAND_H
#define LSRA_IR_OPERAND_H

#include "ir/Opcodes.h"

#include <cassert>
#include <cstdint>

namespace lsra {

/// Physical registers live in a single id space: [0, 32) are the integer
/// registers $0..$31 and [32, 64) are the floating-point registers
/// $f0..$f31, mirroring the two Alpha register files.
constexpr unsigned NumIntPRegs = 32;
constexpr unsigned NumFpPRegs = 32;
constexpr unsigned NumPRegs = NumIntPRegs + NumFpPRegs;

inline RegClass pregClass(unsigned PReg) {
  assert(PReg < NumPRegs && "bad physical register id");
  return PReg < NumIntPRegs ? RegClass::Int : RegClass::Float;
}

/// Integer register $N.
inline unsigned intReg(unsigned N) {
  assert(N < NumIntPRegs && "bad integer register number");
  return N;
}

/// Floating-point register $fN.
inline unsigned fpReg(unsigned N) {
  assert(N < NumFpPRegs && "bad fp register number");
  return NumIntPRegs + N;
}

class Operand {
public:
  enum class Kind : uint8_t { None, VReg, PReg, Imm, FImm, Slot, Label, Func };

  Operand() : K(Kind::None), I(0) {}

  static Operand none() { return Operand(); }
  static Operand vreg(unsigned Id) { return Operand(Kind::VReg, Id); }
  static Operand preg(unsigned Id) {
    assert(Id < NumPRegs && "bad physical register id");
    return Operand(Kind::PReg, Id);
  }
  static Operand imm(int64_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.I = V;
    return O;
  }
  static Operand fimm(double V) {
    Operand O;
    O.K = Kind::FImm;
    O.F = V;
    return O;
  }
  static Operand slot(unsigned Id) { return Operand(Kind::Slot, Id); }
  static Operand label(unsigned BlockId) { return Operand(Kind::Label, BlockId); }
  static Operand func(unsigned FuncId) { return Operand(Kind::Func, FuncId); }

  Kind kind() const { return K; }
  bool isNone() const { return K == Kind::None; }
  bool isVReg() const { return K == Kind::VReg; }
  bool isPReg() const { return K == Kind::PReg; }
  bool isReg() const { return isVReg() || isPReg(); }
  bool isImm() const { return K == Kind::Imm; }
  bool isFImm() const { return K == Kind::FImm; }
  bool isSlot() const { return K == Kind::Slot; }
  bool isLabel() const { return K == Kind::Label; }
  bool isFunc() const { return K == Kind::Func; }

  unsigned vregId() const {
    assert(isVReg() && "not a virtual register");
    return static_cast<unsigned>(I);
  }
  unsigned pregId() const {
    assert(isPReg() && "not a physical register");
    return static_cast<unsigned>(I);
  }
  int64_t immValue() const {
    assert(isImm() && "not an immediate");
    return I;
  }
  double fimmValue() const {
    assert(isFImm() && "not a float immediate");
    return F;
  }
  unsigned slotId() const {
    assert(isSlot() && "not a slot");
    return static_cast<unsigned>(I);
  }
  unsigned labelBlock() const {
    assert(isLabel() && "not a label");
    return static_cast<unsigned>(I);
  }
  unsigned funcId() const {
    assert(isFunc() && "not a function reference");
    return static_cast<unsigned>(I);
  }

  bool operator==(const Operand &RHS) const {
    if (K != RHS.K)
      return false;
    if (K == Kind::FImm)
      return F == RHS.F;
    return I == RHS.I;
  }
  bool operator!=(const Operand &RHS) const { return !(*this == RHS); }

private:
  Operand(Kind K, unsigned Id) : K(K), I(Id) {}

  Kind K;
  union {
    int64_t I;
    double F;
  };
};

} // namespace lsra

#endif // LSRA_IR_OPERAND_H
