//===- ir/Parser.h - Textual IR parser -------------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the textual form emitted by ir/Printer.h. Printing a module
/// and parsing the result reproduces the module exactly (instructions,
/// register classes, parameter bindings, call metadata, spill tags, and
/// the initial memory image), which the round-trip tests verify. This is
/// what lets IR test fixtures live as text and lets the `lsra` command
/// line tool load programs from files.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_PARSER_H
#define LSRA_IR_PARSER_H

#include "ir/Module.h"

#include <memory>
#include <string>

namespace lsra {

struct ParseResult {
  std::unique_ptr<Module> M; ///< null on failure
  /// Human-readable diagnostic on failure: "line N, col C: message
  /// (near 'TOKEN')"; column and token are omitted when unknown.
  std::string Error;
  unsigned ErrLine = 0;  ///< 1-based line of the error (0 = no position)
  unsigned ErrCol = 0;   ///< 1-based column of the offending token (0 = n/a)
  std::string ErrToken;  ///< the offending token, when identifiable
  bool ok() const { return M != nullptr; }
};

/// Parse the textual form of a module.
ParseResult parseModule(const std::string &Text);

} // namespace lsra

#endif // LSRA_IR_PARSER_H
