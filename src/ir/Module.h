//===- ir/Module.h - Compilation unit -------------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A module: a set of functions (call targets are function ids) plus the
/// initial image of the flat word-addressed global memory the VM executes
/// against.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_MODULE_H
#define LSRA_IR_MODULE_H

#include "ir/Function.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lsra {

class Module {
public:
  Function &addFunction(std::string Name) {
    unsigned Id = static_cast<unsigned>(Funcs.size());
    Funcs.push_back(std::make_unique<Function>(Id, std::move(Name)));
    return *Funcs.back();
  }

  unsigned numFunctions() const { return static_cast<unsigned>(Funcs.size()); }

  Function &function(unsigned Id) {
    assert(Id < Funcs.size() && "bad function id");
    return *Funcs[Id];
  }
  const Function &function(unsigned Id) const {
    assert(Id < Funcs.size() && "bad function id");
    return *Funcs[Id];
  }

  /// Find a function by name; returns nullptr if absent.
  Function *findFunction(const std::string &Name) {
    for (auto &F : Funcs)
      if (F->name() == Name)
        return F.get();
    return nullptr;
  }

  /// Swap in a replacement body for the function at \p Id (the compile
  /// cache materialises hits this way). \p F must carry the same id.
  void replaceFunction(unsigned Id, std::unique_ptr<Function> F) {
    assert(Id < Funcs.size() && "bad function id");
    assert(F && F->id() == Id && "replacement must keep the function id");
    Funcs[Id] = std::move(F);
  }

  std::vector<std::unique_ptr<Function>> &functions() { return Funcs; }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Funcs;
  }

  /// Initial global memory image (word addressed). The VM copies this at
  /// the start of each run, so one module can be executed repeatedly.
  std::vector<uint64_t> InitialMemory;

  /// Grow the initial memory image to at least \p Words words.
  void reserveMemory(unsigned Words) {
    if (InitialMemory.size() < Words)
      InitialMemory.resize(Words, 0);
  }

  /// Store an integer word into the initial memory image.
  void initWord(unsigned Addr, int64_t Value) {
    reserveMemory(Addr + 1);
    InitialMemory[Addr] = static_cast<uint64_t>(Value);
  }

  /// Store a double into the initial memory image (bit cast).
  void initDouble(unsigned Addr, double Value) {
    reserveMemory(Addr + 1);
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(Value));
    __builtin_memcpy(&Bits, &Value, sizeof(Bits));
    InitialMemory[Addr] = Bits;
  }

private:
  std::vector<std::unique_ptr<Function>> Funcs;
};

} // namespace lsra

#endif // LSRA_IR_MODULE_H
