//===- ir/Module.cpp ------------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Module.h"

// Module is header-only; this file anchors the translation unit.
namespace lsra {
namespace detail {
void anchorModuleTU() {}
} // namespace detail
} // namespace lsra
