//===- ir/InstrPool.h - Chunked instruction storage -----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function instruction storage: fixed-size chunks of densely packed
/// Instr records addressed by stable 32-bit ids. Growing the pool never
/// moves an existing instruction, so `Instr &` references and ids stay
/// valid across appends; id -> reference is two array indexes. Operands are
/// the three fixed slots embedded in each Instr, so the chunks double as
/// the flat operand pool — there is no per-operand heap node anywhere.
///
/// Ids are only retired wholesale: erasing an instruction from a block
/// leaves its pool slot in place (dead) until the function body is
/// released. That keeps every outstanding id meaningful for the lifetime
/// of the body, which the rebuild-style passes rely on.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_INSTRPOOL_H
#define LSRA_IR_INSTRPOOL_H

#include "ir/Instr.h"

#include <memory>
#include <vector>

namespace lsra {

class InstrPool {
public:
  static constexpr unsigned ChunkShift = 9; // 512 instructions per chunk
  static constexpr uint32_t ChunkSize = 1u << ChunkShift;
  static constexpr uint32_t ChunkMask = ChunkSize - 1;

  uint32_t add(const Instr &I) {
    uint32_t Id = Count++;
    if ((Id >> ChunkShift) == Chunks.size())
      Chunks.push_back(std::make_unique<Instr[]>(ChunkSize));
    Chunks[Id >> ChunkShift][Id & ChunkMask] = I;
    return Id;
  }

  Instr &get(uint32_t Id) {
    assert(Id < Count && "bad instruction id");
    return Chunks[Id >> ChunkShift][Id & ChunkMask];
  }
  const Instr &get(uint32_t Id) const {
    assert(Id < Count && "bad instruction id");
    return Chunks[Id >> ChunkShift][Id & ChunkMask];
  }

  /// Ids handed out so far (including slots no block references anymore).
  uint32_t size() const { return Count; }

  void clear() {
    Chunks.clear();
    Count = 0;
  }

private:
  std::vector<std::unique_ptr<Instr[]>> Chunks;
  uint32_t Count = 0;
};

} // namespace lsra

#endif // LSRA_IR_INSTRPOOL_H
