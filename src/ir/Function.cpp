//===- ir/Function.cpp ----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace lsra;

std::vector<std::vector<unsigned>> Function::predecessors() const {
  std::vector<std::vector<unsigned>> Preds(Blocks.size());
  for (const auto &B : Blocks)
    for (unsigned S : B->successors())
      Preds[S].push_back(B->id());
  return Preds;
}

unsigned Function::numInstrs() const {
  unsigned N = 0;
  for (const auto &B : Blocks)
    N += B->size();
  return N;
}
