//===- ir/Function.cpp ----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

using namespace lsra;

std::vector<std::vector<unsigned>> Function::predecessors() const {
  std::vector<std::vector<unsigned>> Preds(Blocks.size());
  for (const Block &B : Blocks)
    for (unsigned S : B.successors())
      Preds[S].push_back(B.id());
  return Preds;
}

unsigned Function::numInstrs() const {
  unsigned N = 0;
  for (const Block &B : Blocks)
    N += B.size();
  return N;
}

void Function::releaseBody() {
  // Block id vectors point into the arena; drop the blocks before the
  // arena backing them.
  Blocks.clear();
  Pool.clear();
  Arena.reset();
  VRegClasses.clear();
  VRegClasses.shrink_to_fit();
  SlotClasses.clear();
  SlotClasses.shrink_to_fit();
  CallsLowered = false;
}
