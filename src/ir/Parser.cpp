//===- ir/Parser.cpp ------------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <vector>

using namespace lsra;

namespace {

/// One parsed call-target fixup: the instruction refers to a function by
/// name; ids are resolved once every function header is known.
struct CallFixup {
  Function *F;
  unsigned Block;
  unsigned InstrIdx;
  std::string Callee;
};

/// Parse \p S fully as an unsigned decimal number; false if any trailing
/// characters remain (so "%1x" or "$f" are rejected, not truncated).
bool parseFullUInt(const char *S, unsigned &Out) {
  if (*S < '0' || *S > '9')
    return false;
  char *End = nullptr;
  Out = static_cast<unsigned>(std::strtoul(S, &End, 10));
  return End != S && *End == '\0';
}

class Parser {
public:
  explicit Parser(const std::string &Text) : In(Text) {}

  ParseResult run();

private:
  std::istringstream In;
  std::unique_ptr<Module> M = std::make_unique<Module>();
  unsigned LineNo = 0;
  std::string Line;
  std::string Error;
  unsigned ErrLine = 0;
  unsigned ErrCol = 0;
  std::string ErrToken;
  std::vector<CallFixup> Fixups;
  std::map<std::string, Opcode, std::less<>> OpcodeByName;
  std::map<std::string, SpillKind, std::less<>> SpillByName;

  bool fail(const std::string &Msg) {
    if (Error.empty()) {
      ErrLine = LineNo;
      Error = "line " + std::to_string(LineNo) + ": " + Msg;
    }
    return false;
  }

  /// Failure anchored at \p Tok: records the 1-based column where the token
  /// occurs on the current line (servers turn this into structured error
  /// responses; "line N, col C: msg (near 'TOK')").
  bool failTok(const std::string &Msg, const std::string &Tok) {
    if (!Error.empty())
      return false;
    ErrLine = LineNo;
    ErrToken = Tok;
    size_t P = Tok.empty() ? std::string::npos : Line.find(Tok);
    if (P != std::string::npos)
      ErrCol = static_cast<unsigned>(P) + 1;
    Error = "line " + std::to_string(LineNo);
    if (ErrCol)
      Error += ", col " + std::to_string(ErrCol);
    Error += ": " + Msg;
    if (!Tok.empty())
      Error += " (near '" + Tok + "')";
    return false;
  }

  bool nextLine() {
    while (std::getline(In, Line)) {
      ++LineNo;
      // Trim trailing whitespace; skip blank lines and comment lines (";"
      // first — corpus files carry "; oracle: ..." replay headers).
      while (!Line.empty() && (Line.back() == ' ' || Line.back() == '\r'))
        Line.pop_back();
      size_t First = Line.find_first_not_of(' ');
      if (First != std::string::npos && Line[First] != ';')
        return true;
    }
    return false;
  }

  void buildTables() {
    for (unsigned I = 0; I < NumOpcodes; ++I) {
      Opcode Op = static_cast<Opcode>(I);
      OpcodeByName[opcodeName(Op)] = Op;
    }
    const SpillKind Kinds[] = {
        SpillKind::EvictLoad,     SpillKind::EvictStore,
        SpillKind::EvictMove,     SpillKind::ResolveLoad,
        SpillKind::ResolveStore,  SpillKind::ResolveMove,
        SpillKind::CalleeSave,    SpillKind::CalleeRestore,
    };
    for (SpillKind K : Kinds)
      SpillByName[spillKindName(K)] = K;
  }

  /// Extract "key=value" from a header body like
  /// "iparams=2 fparams=0 ret=int vregs=9 slots=0 lowered".
  static bool headerField(const std::string &Body, const char *Key,
                          std::string &Out) {
    std::string Needle = std::string(Key) + "=";
    size_t P = Body.find(Needle);
    if (P == std::string::npos)
      return false;
    size_t S = P + Needle.size();
    size_t E = Body.find_first_of(" )", S);
    Out = Body.substr(S, E == std::string::npos ? E : E - S);
    return true;
  }

  bool parseFunctionHeader(const std::string &L, bool Prescan);
  bool parseFunctionBody(Function &F);
  bool parseInstr(Function &F, Block &B, const std::string &Body);
  bool parseOperand(const std::string &Tok, Opcode Op, unsigned Slot,
                    Operand &Out, std::string *CalleeName);

  bool parseTopLevel(bool Prescan);
};

bool Parser::parseFunctionHeader(const std::string &L, bool Prescan) {
  // "func NAME (iparams=I fparams=P ret=K vregs=V slots=S [lowered])"
  size_t NameStart = 5;
  size_t NameEnd = L.find(' ', NameStart);
  if (NameEnd == std::string::npos)
    return fail("malformed func header");
  std::string Name = L.substr(NameStart, NameEnd - NameStart);
  if (Prescan) {
    M->addFunction(Name);
    return true;
  }
  Function *F = M->findFunction(Name);
  if (!F)
    return fail("internal: function not prescanned");
  std::string Ret, VRegs, Slots;
  if (!headerField(L, "ret", Ret) || !headerField(L, "vregs", VRegs) ||
      !headerField(L, "slots", Slots))
    return failTok("func header missing ret=/vregs=/slots=", "func");
  F->RetKind = Ret == "int"   ? CallRetKind::Int
               : Ret == "fp"  ? CallRetKind::Float
                              : CallRetKind::None;
  F->CallsLowered = L.find(" lowered") != std::string::npos;

  unsigned NumV = static_cast<unsigned>(std::strtoul(VRegs.c_str(), nullptr, 10));
  unsigned NumS = static_cast<unsigned>(std::strtoul(Slots.c_str(), nullptr, 10));

  // Optional declaration lines follow, before the first block header.
  std::vector<bool> FpVReg(NumV, false), FpSlot(NumS, false);
  std::vector<unsigned> Params;
  std::streampos Mark = In.tellg();
  unsigned MarkLine = LineNo;
  while (nextLine()) {
    std::string Trimmed = Line.substr(Line.find_first_not_of(' '));
    if (Trimmed.rfind("fpvregs:", 0) == 0 || Trimmed.rfind("fpslots:", 0) == 0 ||
        Trimmed.rfind("params:", 0) == 0) {
      std::istringstream SS(Trimmed.substr(Trimmed.find(':') + 1));
      std::string Tok;
      while (SS >> Tok) {
        unsigned Id = 0;
        if (Trimmed[0] == 'p') { // params
          if (Tok[0] != '%' || !parseFullUInt(Tok.c_str() + 1, Id))
            return failTok("bad params entry", Tok);
          Params.push_back(Id);
        } else if (Trimmed.rfind("fpvregs", 0) == 0) {
          if (Tok[0] != '%' || !parseFullUInt(Tok.c_str() + 1, Id))
            return failTok("bad fpvregs entry", Tok);
          if (Id >= NumV)
            return failTok("fpvregs id out of range", Tok);
          FpVReg[Id] = true;
        } else {
          if (Tok[0] != 's' || !parseFullUInt(Tok.c_str() + 1, Id))
            return failTok("bad fpslots entry", Tok);
          if (Id >= NumS)
            return failTok("fpslots id out of range", Tok);
          FpSlot[Id] = true;
        }
      }
      Mark = In.tellg();
      MarkLine = LineNo;
      continue;
    }
    // Not a declaration: rewind so the body parser sees this line.
    In.seekg(Mark);
    LineNo = MarkLine;
    break;
  }

  for (unsigned V = 0; V < NumV; ++V)
    F->newVReg(FpVReg[V] ? RegClass::Float : RegClass::Int);
  for (unsigned S = 0; S < NumS; ++S)
    F->newSlot(FpSlot[S] ? RegClass::Float : RegClass::Int);
  for (unsigned V : Params) {
    if (V >= NumV)
      return fail("param vreg out of range");
    (F->vregClass(V) == RegClass::Float ? F->FpParamVRegs : F->IntParamVRegs)
        .push_back(V);
  }
  return parseFunctionBody(*F);
}

bool Parser::parseFunctionBody(Function &F) {
  Block *Cur = nullptr;
  while (true) {
    std::streampos Mark = In.tellg();
    unsigned MarkLine = LineNo;
    if (!nextLine())
      return true; // end of input ends the function
    size_t First = Line.find_first_not_of(' ');
    std::string Trimmed = Line.substr(First);
    if (Trimmed.rfind("func ", 0) == 0 || Trimmed.rfind("mem", 0) == 0) {
      In.seekg(Mark);
      LineNo = MarkLine;
      return true; // next top-level entity
    }
    if (Trimmed.rfind("bb", 0) == 0 && Trimmed.find(" (") != std::string::npos &&
        Trimmed.back() == ':') {
      size_t NameStart = Trimmed.find(" (") + 2;
      size_t NameEnd = Trimmed.rfind("):");
      std::string BlockName =
          Trimmed.substr(NameStart, NameEnd - NameStart);
      unsigned Id =
          static_cast<unsigned>(std::strtoul(Trimmed.c_str() + 2, nullptr, 10));
      Block &B = F.addBlock(BlockName);
      if (B.id() != Id)
        return fail("block ids must be dense and in order");
      Cur = &B;
      continue;
    }
    if (!Cur)
      return fail("instruction outside any block");
    if (!parseInstr(F, *Cur, Trimmed))
      return false;
  }
}

bool Parser::parseInstr(Function &F, Block &B, const std::string &BodyIn) {
  std::string Body = BodyIn;

  // Spill tag comment: "...  ; evict-store".
  SpillKind Spill = SpillKind::None;
  size_t Semi = Body.find("  ; ");
  if (Semi == std::string::npos)
    Semi = Body.find(" ; ");
  if (Semi != std::string::npos) {
    std::string Tag = Body.substr(Body.find("; ", Semi) + 2);
    auto It = SpillByName.find(Tag);
    if (It == SpillByName.end())
      return failTok("unknown spill tag", Tag);
    Spill = It->second;
    Body = Body.substr(0, Semi);
  }

  // Call metadata: "...  (iargs=N fargs=M)".
  uint8_t IArgs = 0, FArgs = 0;
  size_t Paren = Body.find("  (iargs=");
  if (Paren != std::string::npos) {
    std::string Meta = Body.substr(Paren);
    std::string V;
    if (headerField(Meta, "iargs", V))
      IArgs = static_cast<uint8_t>(std::strtoul(V.c_str(), nullptr, 10));
    if (headerField(Meta, "fargs", V))
      FArgs = static_cast<uint8_t>(std::strtoul(V.c_str(), nullptr, 10));
    Body = Body.substr(0, Paren);
  }
  while (!Body.empty() && Body.back() == ' ')
    Body.pop_back();

  // "opcode op1, op2, op3".
  size_t Sp = Body.find(' ');
  std::string OpName = Body.substr(0, Sp);
  auto OpIt = OpcodeByName.find(OpName);
  if (OpIt == OpcodeByName.end())
    return failTok("unknown opcode", OpName);
  Opcode Op = OpIt->second;

  Instr I(Op);
  I.Spill = Spill;
  I.CallIntArgs = IArgs;
  I.CallFpArgs = FArgs;

  std::string CalleeName;
  if (Sp != std::string::npos) {
    std::string Rest = Body.substr(Sp + 1);
    unsigned Slot = 0;
    size_t Pos = 0;
    while (Pos <= Rest.size() && Slot < 3) {
      size_t Comma = Rest.find(", ", Pos);
      std::string Tok = Rest.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      if (!Tok.empty()) {
        Operand O;
        if (!parseOperand(Tok, Op, Slot, O, &CalleeName))
          return false;
        I.op(Slot) = O;
      }
      ++Slot;
      if (Comma == std::string::npos)
        break;
      Pos = Comma + 2;
    }
  }

  B.append(I);
  if (Op == Opcode::Call)
    Fixups.push_back({&F, B.id(), B.size() - 1, CalleeName});
  return true;
}

bool Parser::parseOperand(const std::string &Tok, Opcode Op, unsigned Slot,
                          Operand &Out, std::string *CalleeName) {
  unsigned N = 0;
  if (Tok == "_") {
    Out = Operand::none();
    return true;
  }
  if (Tok[0] == '%') {
    if (!parseFullUInt(Tok.c_str() + 1, N))
      return failTok("bad vreg operand", Tok);
    Out = Operand::vreg(N);
    return true;
  }
  if (Tok[0] == '$') {
    if (Tok.size() > 1 && Tok[1] == 'f') {
      if (!parseFullUInt(Tok.c_str() + 2, N))
        return failTok("bad preg operand", Tok);
      Out = Operand::preg(fpReg(N));
    } else {
      if (!parseFullUInt(Tok.c_str() + 1, N))
        return failTok("bad preg operand", Tok);
      Out = Operand::preg(intReg(N));
    }
    return true;
  }
  if (Tok[0] == '[') {
    std::string Inner = Tok.substr(1, Tok.size() >= 2 && Tok.back() == ']'
                                          ? Tok.size() - 2
                                          : std::string::npos);
    if (Tok.back() != ']' || Inner.size() < 2 || Inner[0] != 's' ||
        !parseFullUInt(Inner.c_str() + 1, N))
      return failTok("bad slot operand", Tok);
    Out = Operand::slot(N);
    return true;
  }
  if (Tok.rfind("bb", 0) == 0 && Tok.size() > 2 && Tok[2] >= '0' &&
      Tok[2] <= '9') {
    if (!parseFullUInt(Tok.c_str() + 2, N))
      return failTok("bad label operand", Tok);
    Out = Operand::label(N);
    return true;
  }
  if (Tok[0] == '@') {
    if (Tok.size() < 2)
      return failTok("empty call target", Tok);
    *CalleeName = Tok.substr(1);
    Out = Operand::func(0); // fixed up once all functions are known
    return true;
  }
  // Numeric: a float immediate only in MovF's value slot.
  char *End = nullptr;
  if (Op == Opcode::MovF && Slot == 1) {
    double D = std::strtod(Tok.c_str(), &End);
    if (End == Tok.c_str() || *End != '\0')
      return failTok("bad float immediate", Tok);
    Out = Operand::fimm(D);
    return true;
  }
  long long V = std::strtoll(Tok.c_str(), &End, 10);
  if (End == Tok.c_str() || *End != '\0')
    return failTok("bad operand", Tok);
  Out = Operand::imm(V);
  return true;
}

bool Parser::parseTopLevel(bool Prescan) {
  while (nextLine()) {
    size_t First = Line.find_first_not_of(' ');
    std::string Trimmed = Line.substr(First);
    if (Trimmed.rfind("mem ", 0) == 0) {
      if (Prescan)
        continue;
      unsigned Addr = 0;
      uint64_t Val = 0;
      if (std::sscanf(Trimmed.c_str(), "mem %u 0x%llx", &Addr,
                      reinterpret_cast<unsigned long long *>(&Val)) != 2)
        return fail("bad mem line");
      M->reserveMemory(Addr + 1);
      M->InitialMemory[Addr] = Val;
      continue;
    }
    if (Trimmed.rfind("memsize ", 0) == 0) {
      if (!Prescan)
        M->reserveMemory(static_cast<unsigned>(
            std::strtoul(Trimmed.c_str() + 8, nullptr, 10)));
      continue;
    }
    if (Trimmed.rfind("func ", 0) == 0) {
      if (Prescan) {
        if (!parseFunctionHeader(Trimmed, /*Prescan=*/true))
          return false;
        continue;
      }
      if (!parseFunctionHeader(Trimmed, /*Prescan=*/false))
        return false;
      continue;
    }
    if (Prescan)
      continue; // bodies are skipped during the prescan
    return failTok("unexpected top-level line",
                   Trimmed.substr(0, Trimmed.find(' ')));
  }
  return true;
}

ParseResult Parser::run() {
  buildTables();
  auto MakeError = [this]() {
    ParseResult R;
    R.Error = Error;
    R.ErrLine = ErrLine;
    R.ErrCol = ErrCol;
    R.ErrToken = ErrToken;
    return R;
  };
  // Pass 1: collect function names so call targets can be resolved.
  if (!parseTopLevel(/*Prescan=*/true))
    return MakeError();
  // Pass 2: full parse.
  In.clear();
  In.seekg(0);
  LineNo = 0;
  if (!parseTopLevel(/*Prescan=*/false))
    return MakeError();
  if (M->numFunctions() == 0) {
    Error = "empty module: no functions";
    return MakeError();
  }

  // Resolve call targets and their return-kind metadata.
  for (const CallFixup &Fx : Fixups) {
    Function *Callee = M->findFunction(Fx.Callee);
    if (!Callee) {
      Error = "unknown call target '@" + Fx.Callee + "'";
      ErrToken = "@" + Fx.Callee;
      return MakeError();
    }
    Instr &I = Fx.F->block(Fx.Block).instrs()[Fx.InstrIdx];
    I.op(0) = Operand::func(Callee->id());
    I.CallRet = Callee->RetKind;
  }
  return {std::move(M), "", 0, 0, ""};
}

} // namespace

ParseResult lsra::parseModule(const std::string &Text) {
  return Parser(Text).run();
}
