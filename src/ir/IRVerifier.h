//===- ir/IRVerifier.h - Structural IR checks -----------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for functions: terminator placement,
/// operand kinds and register classes per opcode, label/slot/vreg ranges,
/// and (optionally) the post-allocation invariant that no virtual registers
/// remain. Returns a diagnostic string; empty means the function is valid.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_IRVERIFIER_H
#define LSRA_IR_IRVERIFIER_H

#include "ir/Module.h"

#include <string>

namespace lsra {

struct VerifyOptions {
  /// Require every register operand to be a physical register (the state
  /// after register allocation).
  bool RequireAllocated = false;
  /// Forbid the CArg/FCArg/CRes/FCRes pseudo ops (the state after the
  /// LowerCalls pass).
  bool RequireLoweredCalls = false;
};

/// Verify \p F; returns an empty string when valid, otherwise a
/// newline-separated list of diagnostics.
std::string verifyFunction(const Function &F, const Module &M,
                           VerifyOptions Opts = {});

/// Verify every function in \p M.
std::string verifyModule(const Module &M, VerifyOptions Opts = {});

} // namespace lsra

#endif // LSRA_IR_IRVERIFIER_H
