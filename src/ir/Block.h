//===- ir/Block.h - Basic block -------------------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a label, an ordered list of 32-bit instruction ids into
/// the owning function's InstrPool, and CFG edges derived from the
/// terminator's labels. Blocks do not own instruction storage — they own
/// only the id sequence, which bump-allocates from the function's arena.
///
/// instrs() returns a lightweight range proxy (by value). Indexing,
/// iteration, front()/back() all yield `Instr &` straight into the pool, so
/// positional access stays O(1) and in-place mutation works as it did when
/// blocks held a std::vector<Instr>. Structural edits (insert, erase,
/// wholesale rebuild) go through the Block methods below; rebuild-style
/// passes keep the ids of surviving instructions stable by re-using them in
/// setInstrIds().
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_BLOCK_H
#define LSRA_IR_BLOCK_H

#include "ir/InstrPool.h"
#include "support/Arena.h"

#include <string>
#include <type_traits>
#include <vector>

namespace lsra {

/// Random-access view over (pool, id sequence). Dereferencing yields
/// references into the pool; the view itself is freely copyable and cheap.
template <bool IsConst> class InstrRangeImpl {
  using PoolT = std::conditional_t<IsConst, const InstrPool, InstrPool>;
  using InstrT = std::conditional_t<IsConst, const Instr, Instr>;

public:
  class iterator {
  public:
    using iterator_category = std::random_access_iterator_tag;
    using value_type = Instr;
    using difference_type = std::ptrdiff_t;
    using pointer = InstrT *;
    using reference = InstrT &;

    iterator() = default;
    iterator(PoolT *P, const uint32_t *It) : P(P), It(It) {}

    InstrT &operator*() const { return P->get(*It); }
    InstrT *operator->() const { return &P->get(*It); }
    InstrT &operator[](difference_type N) const { return P->get(It[N]); }

    iterator &operator++() { ++It; return *this; }
    iterator operator++(int) { iterator T = *this; ++It; return T; }
    iterator &operator--() { --It; return *this; }
    iterator operator--(int) { iterator T = *this; --It; return T; }
    iterator &operator+=(difference_type N) { It += N; return *this; }
    iterator &operator-=(difference_type N) { It -= N; return *this; }
    iterator operator+(difference_type N) const { return {P, It + N}; }
    iterator operator-(difference_type N) const { return {P, It - N}; }
    difference_type operator-(const iterator &O) const { return It - O.It; }

    bool operator==(const iterator &O) const { return It == O.It; }
    bool operator!=(const iterator &O) const { return It != O.It; }
    bool operator<(const iterator &O) const { return It < O.It; }
    bool operator>(const iterator &O) const { return It > O.It; }
    bool operator<=(const iterator &O) const { return It <= O.It; }
    bool operator>=(const iterator &O) const { return It >= O.It; }

  private:
    PoolT *P = nullptr;
    const uint32_t *It = nullptr;
  };

  InstrRangeImpl(PoolT *P, const uint32_t *Ids, std::size_t N)
      : P(P), Ids(Ids), N(N) {}

  iterator begin() const { return {P, Ids}; }
  iterator end() const { return {P, Ids + N}; }

  InstrT &operator[](std::size_t I) const {
    assert(I < N && "instruction index out of range");
    return P->get(Ids[I]);
  }
  InstrT &front() const { return (*this)[0]; }
  InstrT &back() const { return (*this)[N - 1]; }

  std::size_t size() const { return N; }
  bool empty() const { return N == 0; }

private:
  PoolT *P;
  const uint32_t *Ids;
  std::size_t N;
};

using InstrRange = InstrRangeImpl<false>;
using ConstInstrRange = InstrRangeImpl<true>;

/// Instruction-id sequence, bump-allocated from the function arena.
using IdVec = std::vector<uint32_t, ArenaAllocator<uint32_t>>;

class Block {
public:
  Block(InstrPool &Pool, BumpArena &Arena, unsigned Id, std::string Name)
      : Pool(&Pool), Id(Id), Name(std::move(Name)),
        Ids(ArenaAllocator<uint32_t>(&Arena)) {}

  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  InstrRange instrs() { return {Pool, Ids.data(), Ids.size()}; }
  ConstInstrRange instrs() const { return {Pool, Ids.data(), Ids.size()}; }

  bool empty() const { return Ids.empty(); }
  unsigned size() const { return static_cast<unsigned>(Ids.size()); }

  Instr &append(Instr I) {
    uint32_t NewId = Pool->add(I);
    Ids.push_back(NewId);
    return Pool->get(NewId);
  }

  /// Pool id of the instruction at position \p Idx. Stable for the life of
  /// the function body, including across eraseInstr/setInstrIds of others.
  uint32_t instrId(unsigned Idx) const {
    assert(Idx < Ids.size() && "instruction index out of range");
    return Ids[Idx];
  }

  /// Add an instruction to the pool without placing it in any block; the
  /// caller threads the returned id into a setInstrIds() rebuild.
  uint32_t makeInstr(const Instr &I) { return Pool->add(I); }

  /// The terminator, asserting the block is non-empty and well-formed.
  Instr &terminator() {
    assert(hasTerminator() && "block has no terminator");
    return Pool->get(Ids.back());
  }
  const Instr &terminator() const {
    return const_cast<Block *>(this)->terminator();
  }

  bool hasTerminator() const {
    return !Ids.empty() && Pool->get(Ids.back()).isTerminator();
  }

  /// Successor block ids, in terminator operand order (empty for Ret).
  std::vector<unsigned> successors() const;

  /// Replace every label operand referring to \p OldId with \p NewId.
  void replaceSuccessor(unsigned OldId, unsigned NewId);

  /// Insert \p I at position \p Idx.
  void insertAt(unsigned Idx, const Instr &I) {
    assert(Idx <= Ids.size() && "insert position out of range");
    Ids.insert(Ids.begin() + Idx, Pool->add(I));
  }

  /// Insert \p I immediately before the terminator.
  void insertBeforeTerminator(const Instr &I) {
    assert(hasTerminator() && "block has no terminator");
    insertAt(size() - 1, I);
  }

  /// Insert \p I at the top of the block.
  void insertAtTop(const Instr &I) { insertAt(0, I); }

  /// Remove the instruction at position \p Idx from the block. Its pool
  /// slot stays live (ids are never recycled) until the body is released.
  void eraseInstr(unsigned Idx) {
    assert(Idx < Ids.size() && "erase position out of range");
    Ids.erase(Ids.begin() + Idx);
  }

  /// Replace the block's instruction sequence with \p NewIds. Rebuild
  /// passes pass the surviving original ids through unchanged (id
  /// stability) and mint ids for inserted code via makeInstr().
  void setInstrIds(const std::vector<uint32_t> &NewIds) {
    Ids.assign(NewIds.begin(), NewIds.end());
  }

  /// Replace the block's contents with fresh copies of \p Is. All ids are
  /// new; use setInstrIds() where surviving ids must be preserved.
  void setInstrs(const std::vector<Instr> &Is) {
    Ids.clear();
    for (const Instr &I : Is)
      Ids.push_back(Pool->add(I));
  }

private:
  InstrPool *Pool;
  unsigned Id;
  std::string Name;
  IdVec Ids;
};

} // namespace lsra

#endif // LSRA_IR_BLOCK_H
