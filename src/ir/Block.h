//===- ir/Block.h - Basic block -------------------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A basic block: a label, a straight-line instruction vector ending in a
/// terminator, and CFG edges derived from the terminator's labels.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_BLOCK_H
#define LSRA_IR_BLOCK_H

#include "ir/Instr.h"

#include <string>
#include <vector>

namespace lsra {

class Block {
public:
  Block(unsigned Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  std::vector<Instr> &instrs() { return Instrs; }
  const std::vector<Instr> &instrs() const { return Instrs; }

  bool empty() const { return Instrs.empty(); }
  unsigned size() const { return static_cast<unsigned>(Instrs.size()); }

  Instr &append(Instr I) {
    Instrs.push_back(I);
    return Instrs.back();
  }

  /// The terminator, asserting the block is non-empty and well-formed.
  Instr &terminator() {
    assert(!Instrs.empty() && Instrs.back().isTerminator() &&
           "block has no terminator");
    return Instrs.back();
  }
  const Instr &terminator() const {
    return const_cast<Block *>(this)->terminator();
  }

  bool hasTerminator() const {
    return !Instrs.empty() && Instrs.back().isTerminator();
  }

  /// Successor block ids, in terminator operand order (empty for Ret).
  std::vector<unsigned> successors() const;

  /// Replace every label operand referring to \p OldId with \p NewId.
  void replaceSuccessor(unsigned OldId, unsigned NewId);

  /// Insert \p I immediately before the terminator.
  void insertBeforeTerminator(Instr I) {
    assert(hasTerminator() && "block has no terminator");
    Instrs.insert(Instrs.end() - 1, I);
  }

  /// Insert \p I at the top of the block.
  void insertAtTop(Instr I) { Instrs.insert(Instrs.begin(), I); }

private:
  unsigned Id;
  std::string Name;
  std::vector<Instr> Instrs;
};

} // namespace lsra

#endif // LSRA_IR_BLOCK_H
