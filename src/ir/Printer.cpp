//===- ir/Printer.cpp -----------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>

using namespace lsra;

namespace {

/// Print a double losslessly (17 significant digits round-trip).
void printDouble(std::ostream &OS, double D) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  OS << Buf;
}

const char *retKindName(CallRetKind K) {
  switch (K) {
  case CallRetKind::None:
    return "void";
  case CallRetKind::Int:
    return "int";
  case CallRetKind::Float:
    return "fp";
  }
  return "void";
}

} // namespace

void lsra::printOperand(std::ostream &OS, const Operand &Op, const Module *M) {
  switch (Op.kind()) {
  case Operand::Kind::None:
    OS << "_";
    break;
  case Operand::Kind::VReg:
    OS << "%" << Op.vregId();
    break;
  case Operand::Kind::PReg:
    if (pregClass(Op.pregId()) == RegClass::Int)
      OS << "$" << Op.pregId();
    else
      OS << "$f" << (Op.pregId() - NumIntPRegs);
    break;
  case Operand::Kind::Imm:
    OS << Op.immValue();
    break;
  case Operand::Kind::FImm:
    printDouble(OS, Op.fimmValue());
    break;
  case Operand::Kind::Slot:
    OS << "[s" << Op.slotId() << "]";
    break;
  case Operand::Kind::Label:
    OS << "bb" << Op.labelBlock();
    break;
  case Operand::Kind::Func:
    if (M)
      OS << "@" << M->function(Op.funcId()).name();
    else
      OS << "@f" << Op.funcId();
    break;
  }
}

void lsra::printInstr(std::ostream &OS, const Instr &I, const Function &F,
                      const Module *M) {
  (void)F;
  OS << opcodeName(I.opcode());
  bool First = true;
  for (unsigned OpIdx = 0; OpIdx < 3; ++OpIdx) {
    const Operand &Op = I.op(OpIdx);
    if (Op.isNone())
      continue;
    OS << (First ? " " : ", ");
    First = false;
    printOperand(OS, Op, M);
  }
  if (I.isCall())
    OS << "  (iargs=" << unsigned(I.CallIntArgs)
       << " fargs=" << unsigned(I.CallFpArgs) << ")";
  if (I.Spill != SpillKind::None)
    OS << "  ; " << spillKindName(I.Spill);
}

void lsra::printFunction(std::ostream &OS, const Function &F,
                         const Module *M) {
  OS << "func " << F.name() << " (iparams=" << F.IntParamVRegs.size()
     << " fparams=" << F.FpParamVRegs.size() << " ret="
     << retKindName(F.RetKind) << " vregs=" << F.numVRegs()
     << " slots=" << F.numSlots() << (F.CallsLowered ? " lowered" : "")
     << ")\n";
  // Declarations the textual form needs for a lossless round trip: vreg
  // and slot register classes (fp ids only; everything else is int), and
  // parameter vreg bindings.
  bool AnyFp = false;
  for (unsigned V = 0; V < F.numVRegs(); ++V)
    AnyFp |= F.vregClass(V) == RegClass::Float;
  if (AnyFp) {
    OS << "  fpvregs:";
    for (unsigned V = 0; V < F.numVRegs(); ++V)
      if (F.vregClass(V) == RegClass::Float)
        OS << " %" << V;
    OS << "\n";
  }
  bool AnyFpSlot = false;
  for (unsigned S = 0; S < F.numSlots(); ++S)
    AnyFpSlot |= F.slotClass(S) == RegClass::Float;
  if (AnyFpSlot) {
    OS << "  fpslots:";
    for (unsigned S = 0; S < F.numSlots(); ++S)
      if (F.slotClass(S) == RegClass::Float)
        OS << " s" << S;
    OS << "\n";
  }
  if (!F.IntParamVRegs.empty() || !F.FpParamVRegs.empty()) {
    OS << "  params:";
    for (unsigned V : F.IntParamVRegs)
      OS << " %" << V;
    for (unsigned V : F.FpParamVRegs)
      OS << " %" << V;
    OS << "\n";
  }
  for (const Block &B : F.blocks()) {
    OS << "bb" << B.id() << " (" << B.name() << "):\n";
    for (const Instr &I : B.instrs()) {
      OS << "  ";
      printInstr(OS, I, F, M);
      OS << "\n";
    }
  }
}

void lsra::printModule(std::ostream &OS, const Module &M) {
  // Sparse initial-memory image.
  for (unsigned A = 0; A < M.InitialMemory.size(); ++A)
    if (M.InitialMemory[A] != 0) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "mem %u 0x%" PRIx64 "\n", A,
                    M.InitialMemory[A]);
      OS << Buf;
    }
  if (!M.InitialMemory.empty())
    OS << "memsize " << M.InitialMemory.size() << "\n\n";
  for (const auto &F : M.functions()) {
    printFunction(OS, *F, &M);
    OS << "\n";
  }
}

std::string lsra::toString(const Function &F, const Module *M) {
  std::ostringstream OS;
  printFunction(OS, F, M);
  return OS.str();
}

std::string lsra::toString(const Instr &I, const Function &F,
                           const Module *M) {
  std::ostringstream OS;
  printInstr(OS, I, F, M);
  return OS.str();
}

void lsra::printDotCFG(std::ostream &OS, const Function &F, const Module *M) {
  OS << "digraph \"" << F.name() << "\" {\n";
  OS << "  node [shape=box fontname=\"monospace\"];\n";
  for (const Block &B : F.blocks()) {
    OS << "  bb" << B.id() << " [label=\"bb" << B.id() << " (" << B.name()
       << ")\\l";
    for (const Instr &I : B.instrs()) {
      std::ostringstream Tmp;
      printInstr(Tmp, I, F, M);
      std::string S = Tmp.str();
      // Escape characters dot treats specially inside labels.
      std::string Esc;
      for (char C : S) {
        if (C == '"' || C == '\\')
          Esc += '\\';
        Esc += C;
      }
      OS << "  " << Esc << "\\l";
    }
    OS << "\"];\n";
    for (unsigned S : B.successors())
      OS << "  bb" << B.id() << " -> bb" << S << ";\n";
  }
  OS << "}\n";
}
