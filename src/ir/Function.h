//===- ir/Function.h - Function (procedure) -------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A procedure: an entry block plus basic blocks in layout order, a dense
/// space of virtual registers (the paper's "temporaries": both program
/// variables and compiler-generated values), and a dense space of frame
/// slots used for locals, spill homes, and callee-save storage.
///
/// Storage model: the function owns one bump arena (block id vectors), one
/// InstrPool (all instruction records, stable 32-bit ids), and the blocks
/// themselves in a deque (stable `Block &` across addBlock). The entire
/// body is released in O(#chunks) by releaseBody(), which is what keeps the
/// streaming module pipeline's resident set bounded by the working set.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_FUNCTION_H
#define LSRA_IR_FUNCTION_H

#include "ir/Block.h"

#include <deque>
#include <string>
#include <vector>

namespace lsra {

class Function {
public:
  Function(unsigned Id, std::string Name) : Id(Id), Name(std::move(Name)) {}
  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  unsigned id() const { return Id; }
  const std::string &name() const { return Name; }

  // --- Virtual registers -------------------------------------------------

  unsigned newVReg(RegClass RC) {
    VRegClasses.push_back(RC);
    return static_cast<unsigned>(VRegClasses.size() - 1);
  }
  unsigned numVRegs() const { return static_cast<unsigned>(VRegClasses.size()); }
  RegClass vregClass(unsigned V) const {
    assert(V < VRegClasses.size() && "bad vreg id");
    return VRegClasses[V];
  }

  // --- Frame slots --------------------------------------------------------

  unsigned newSlot(RegClass RC) {
    SlotClasses.push_back(RC);
    return static_cast<unsigned>(SlotClasses.size() - 1);
  }
  unsigned numSlots() const { return static_cast<unsigned>(SlotClasses.size()); }
  RegClass slotClass(unsigned S) const {
    assert(S < SlotClasses.size() && "bad slot id");
    return SlotClasses[S];
  }

  // --- Blocks -------------------------------------------------------------

  Block &addBlock(std::string BlockName) {
    unsigned BId = static_cast<unsigned>(Blocks.size());
    Blocks.emplace_back(Pool, Arena, BId, std::move(BlockName));
    return Blocks.back();
  }
  unsigned numBlocks() const { return static_cast<unsigned>(Blocks.size()); }
  Block &block(unsigned BId) {
    assert(BId < Blocks.size() && "bad block id");
    return Blocks[BId];
  }
  const Block &block(unsigned BId) const {
    assert(BId < Blocks.size() && "bad block id");
    return Blocks[BId];
  }
  Block &entry() {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front();
  }
  const Block &entry() const {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front();
  }

  /// Iterate blocks in id (layout) order. Block ids are stable; this is
  /// also the static linear order the binpacking scan uses.
  std::deque<Block> &blocks() { return Blocks; }
  const std::deque<Block> &blocks() const { return Blocks; }

  /// Predecessor lists, indexed by block id, computed on demand.
  std::vector<std::vector<unsigned>> predecessors() const;

  /// Total instruction count across all blocks.
  unsigned numInstrs() const;

  // --- Storage ------------------------------------------------------------

  InstrPool &instrPool() { return Pool; }
  const InstrPool &instrPool() const { return Pool; }
  BumpArena &arena() { return Arena; }

  /// Drop the body wholesale: blocks, instruction pool, arena, vreg and
  /// slot spaces. The signature survives — name, id, RetKind and the
  /// parameter vreg lists (callers consult only their sizes) — so the
  /// function can still be called, and a FunctionBuilder can rebuild it.
  /// The streaming pipeline calls this after emitting each function.
  void releaseBody();

  // --- Signature ----------------------------------------------------------

  // Parameter vregs, in declaration order per class. LowerCalls emits the
  // entry moves from the argument registers into these vregs (the code
  // shape the paper's move optimisation targets).
  std::vector<unsigned> IntParamVRegs;
  std::vector<unsigned> FpParamVRegs;
  CallRetKind RetKind = CallRetKind::None;

  /// Set once LowerCalls has expanded calling conventions; allocators
  /// require it.
  bool CallsLowered = false;

private:
  unsigned Id;
  std::string Name;
  std::vector<RegClass> VRegClasses;
  std::vector<RegClass> SlotClasses;
  BumpArena Arena;
  InstrPool Pool;
  std::deque<Block> Blocks;
};

} // namespace lsra

#endif // LSRA_IR_FUNCTION_H
