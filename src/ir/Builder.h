//===- ir/Builder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FunctionBuilder is the public API the examples and workloads use to
/// construct IR: it creates virtual registers, emits instructions into a
/// current block, and provides high-level call/return helpers that the
/// LowerCalls pass later expands into the Alpha-like calling convention.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_IR_BUILDER_H
#define LSRA_IR_BUILDER_H

#include "ir/Module.h"

namespace lsra {

/// Builder for one function. Typical use:
/// \code
///   FunctionBuilder B(M, "main", /*IntParams=*/0, /*FpParams=*/0,
///                     CallRetKind::Int);
///   Block &Entry = B.newBlock("entry");
///   B.setBlock(Entry);
///   unsigned X = B.movi(42);
///   B.retVal(X);
/// \endcode
class FunctionBuilder {
public:
  /// Create a new function in \p M. Parameter vregs are created eagerly and
  /// can be retrieved with intParam()/fpParam(). At most 6 parameters per
  /// register class (the Alpha passes $16-$21 / $f16-$f21 in registers; the
  /// IR does not model stack arguments).
  FunctionBuilder(Module &M, std::string Name, unsigned IntParams,
                  unsigned FpParams, CallRetKind Ret);

  /// Build into an existing (empty) function — used by the streaming
  /// pipeline, which declares every function up front and materialises
  /// bodies one at a time. Sets the signature exactly as the creating
  /// constructor would.
  FunctionBuilder(Module &M, Function &F, unsigned IntParams,
                  unsigned FpParams, CallRetKind Ret);

  Module &module() { return M; }
  Function &function() { return F; }

  unsigned intParam(unsigned I) const { return F.IntParamVRegs.at(I); }
  unsigned fpParam(unsigned I) const { return F.FpParamVRegs.at(I); }

  // --- Blocks -------------------------------------------------------------

  Block &newBlock(std::string Name) { return F.addBlock(std::move(Name)); }
  void setBlock(Block &B) { Cur = &B; }
  Block &currentBlock() {
    assert(Cur && "no current block");
    return *Cur;
  }

  // --- Virtual registers --------------------------------------------------

  unsigned newInt() { return F.newVReg(RegClass::Int); }
  unsigned newFp() { return F.newVReg(RegClass::Float); }

  // --- Raw emission -------------------------------------------------------

  Instr &emit(Instr I) {
    assert(Cur && "no current block");
    return Cur->append(I);
  }

  // --- Integer ops (return the defined vreg) -------------------------------

  unsigned binop(Opcode Op, Operand A, Operand B);
  unsigned binop(Opcode Op, unsigned A, unsigned B) {
    return binop(Op, Operand::vreg(A), Operand::vreg(B));
  }

  unsigned add(unsigned A, unsigned B) { return binop(Opcode::Add, A, B); }
  unsigned addi(unsigned A, int64_t B) {
    return binop(Opcode::Add, Operand::vreg(A), Operand::imm(B));
  }
  unsigned sub(unsigned A, unsigned B) { return binop(Opcode::Sub, A, B); }
  unsigned subi(unsigned A, int64_t B) {
    return binop(Opcode::Sub, Operand::vreg(A), Operand::imm(B));
  }
  unsigned mul(unsigned A, unsigned B) { return binop(Opcode::Mul, A, B); }
  unsigned muli(unsigned A, int64_t B) {
    return binop(Opcode::Mul, Operand::vreg(A), Operand::imm(B));
  }
  unsigned div(unsigned A, unsigned B) { return binop(Opcode::Div, A, B); }
  unsigned rem(unsigned A, unsigned B) { return binop(Opcode::Rem, A, B); }
  unsigned andOp(unsigned A, unsigned B) { return binop(Opcode::And, A, B); }
  unsigned andi(unsigned A, int64_t B) {
    return binop(Opcode::And, Operand::vreg(A), Operand::imm(B));
  }
  unsigned orOp(unsigned A, unsigned B) { return binop(Opcode::Or, A, B); }
  unsigned ori(unsigned A, int64_t B) {
    return binop(Opcode::Or, Operand::vreg(A), Operand::imm(B));
  }
  unsigned xorOp(unsigned A, unsigned B) { return binop(Opcode::Xor, A, B); }
  unsigned xori(unsigned A, int64_t B) {
    return binop(Opcode::Xor, Operand::vreg(A), Operand::imm(B));
  }
  unsigned shli(unsigned A, int64_t B) {
    return binop(Opcode::Shl, Operand::vreg(A), Operand::imm(B));
  }
  unsigned shri(unsigned A, int64_t B) {
    return binop(Opcode::Shr, Operand::vreg(A), Operand::imm(B));
  }

  unsigned cmp(Opcode Op, unsigned A, unsigned B) { return binop(Op, A, B); }
  unsigned cmpi(Opcode Op, unsigned A, int64_t B) {
    return binop(Op, Operand::vreg(A), Operand::imm(B));
  }

  unsigned movi(int64_t V);
  unsigned mov(unsigned Src);
  unsigned neg(unsigned A);
  unsigned notOp(unsigned A);

  // --- Floating-point ops --------------------------------------------------

  unsigned fbinop(Opcode Op, unsigned A, unsigned B);
  unsigned fadd(unsigned A, unsigned B) { return fbinop(Opcode::FAdd, A, B); }
  unsigned fsub(unsigned A, unsigned B) { return fbinop(Opcode::FSub, A, B); }
  unsigned fmul(unsigned A, unsigned B) { return fbinop(Opcode::FMul, A, B); }
  unsigned fdiv(unsigned A, unsigned B) { return fbinop(Opcode::FDiv, A, B); }
  unsigned fcmp(Opcode Op, unsigned A, unsigned B);
  unsigned movf(double V);
  unsigned fmov(unsigned Src);
  unsigned fneg(unsigned A);
  unsigned itof(unsigned A);
  unsigned ftoi(unsigned A);

  // --- Memory ---------------------------------------------------------------

  unsigned load(unsigned AddrReg, int64_t Off);
  void store(unsigned Val, unsigned AddrReg, int64_t Off);
  unsigned fload(unsigned AddrReg, int64_t Off);
  void fstore(unsigned Val, unsigned AddrReg, int64_t Off);

  // --- Control flow ----------------------------------------------------------

  void br(Block &Target);
  /// Conditional branch: to \p TrueB when \p Cond is non-zero.
  void cbr(unsigned Cond, Block &TrueB, Block &FalseB);
  void retVoid();
  void retVal(unsigned V);

  // --- Calls (high-level; expanded by LowerCalls) ----------------------------

  /// Call \p Callee with the given int/fp argument vregs. Returns the result
  /// vreg if the callee returns a value, otherwise ~0u.
  unsigned call(const Function &Callee, const std::vector<unsigned> &IntArgs,
                const std::vector<unsigned> &FpArgs = {});

  /// No-argument call by function id with an explicit return kind. Unlike
  /// the overload above this never touches the callee Function, so a body
  /// builder may call functions whose own bodies are being built
  /// concurrently (the streaming pipeline builds bodies in parallel;
  /// FunctionBuilder's constructor mutates the callee's signature state).
  unsigned call(unsigned CalleeId, CallRetKind Ret);

  // --- Observation -----------------------------------------------------------

  void emitValue(unsigned V);
  void femitValue(unsigned V);

private:
  Module &M;
  Function &F;
  Block *Cur = nullptr;
};

} // namespace lsra

#endif // LSRA_IR_BUILDER_H
