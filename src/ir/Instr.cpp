//===- ir/Instr.cpp - Opcode metadata table -------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Instr.h"

using namespace lsra;

namespace {

// Name, NumDefs, NumUses, FloatMask, IsTerminator.
// Register defs occupy slots [0, NumDefs); uses [NumDefs, NumDefs+NumUses).
constexpr OpcodeInfo Infos[NumOpcodes] = {
    /* Add    */ {"add", 1, 2, 0b000, false},
    /* Sub    */ {"sub", 1, 2, 0b000, false},
    /* Mul    */ {"mul", 1, 2, 0b000, false},
    /* Div    */ {"div", 1, 2, 0b000, false},
    /* Rem    */ {"rem", 1, 2, 0b000, false},
    /* And    */ {"and", 1, 2, 0b000, false},
    /* Or     */ {"or", 1, 2, 0b000, false},
    /* Xor    */ {"xor", 1, 2, 0b000, false},
    /* Shl    */ {"shl", 1, 2, 0b000, false},
    /* Shr    */ {"shr", 1, 2, 0b000, false},
    /* CmpEq  */ {"cmpeq", 1, 2, 0b000, false},
    /* CmpNe  */ {"cmpne", 1, 2, 0b000, false},
    /* CmpLt  */ {"cmplt", 1, 2, 0b000, false},
    /* CmpLe  */ {"cmple", 1, 2, 0b000, false},
    /* CmpGt  */ {"cmpgt", 1, 2, 0b000, false},
    /* CmpGe  */ {"cmpge", 1, 2, 0b000, false},
    /* Neg    */ {"neg", 1, 1, 0b000, false},
    /* Not    */ {"not", 1, 1, 0b000, false},
    /* FAdd   */ {"fadd", 1, 2, 0b111, false},
    /* FSub   */ {"fsub", 1, 2, 0b111, false},
    /* FMul   */ {"fmul", 1, 2, 0b111, false},
    /* FDiv   */ {"fdiv", 1, 2, 0b111, false},
    /* FNeg   */ {"fneg", 1, 1, 0b011, false},
    /* FCmpEq */ {"fcmpeq", 1, 2, 0b110, false},
    /* FCmpLt */ {"fcmplt", 1, 2, 0b110, false},
    /* FCmpLe */ {"fcmple", 1, 2, 0b110, false},
    /* ItoF   */ {"itof", 1, 1, 0b001, false},
    /* FtoI   */ {"ftoi", 1, 1, 0b010, false},
    /* Mov    */ {"mov", 1, 1, 0b000, false},
    /* FMov   */ {"fmov", 1, 1, 0b011, false},
    /* MovI   */ {"movi", 1, 0, 0b000, false},
    /* MovF   */ {"movf", 1, 0, 0b001, false},
    /* Ld     */ {"ld", 1, 1, 0b000, false},
    /* St     */ {"st", 0, 2, 0b000, false},
    /* FLd    */ {"fld", 1, 1, 0b001, false},
    /* FSt    */ {"fst", 0, 2, 0b001, false},
    /* LdSlot */ {"ldslot", 1, 0, 0b000, false},
    /* StSlot */ {"stslot", 0, 1, 0b000, false},
    /* FLdSlot*/ {"fldslot", 1, 0, 0b001, false},
    /* FStSlot*/ {"fstslot", 0, 1, 0b001, false},
    /* Br     */ {"br", 0, 0, 0b000, true},
    /* CBr    */ {"cbr", 0, 1, 0b000, true},
    /* Ret    */ {"ret", 0, 1, 0b000, true},
    /* Call   */ {"call", 0, 0, 0b000, false},
    /* CArg   */ {"carg", 0, 1, 0b000, false},
    /* FCArg  */ {"fcarg", 0, 1, 0b001, false},
    /* CRes   */ {"cres", 1, 0, 0b000, false},
    /* FCRes  */ {"fcres", 1, 0, 0b001, false},
    /* Emit   */ {"emit", 0, 1, 0b000, false},
    /* FEmit  */ {"femit", 0, 1, 0b001, false},
    /* Nop    */ {"nop", 0, 0, 0b000, false},
};

} // namespace

const OpcodeInfo &lsra::opcodeInfo(Opcode Op) {
  return Infos[static_cast<unsigned>(Op)];
}

bool lsra::isCommutative(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Mul:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::FAdd:
  case Opcode::FMul:
  case Opcode::FCmpEq:
    return true;
  default:
    return false;
  }
}

const char *lsra::spillKindName(SpillKind K) {
  switch (K) {
  case SpillKind::None:
    return "none";
  case SpillKind::EvictLoad:
    return "evict-load";
  case SpillKind::EvictStore:
    return "evict-store";
  case SpillKind::EvictMove:
    return "evict-move";
  case SpillKind::ResolveLoad:
    return "resolve-load";
  case SpillKind::ResolveStore:
    return "resolve-store";
  case SpillKind::ResolveMove:
    return "resolve-move";
  case SpillKind::CalleeSave:
    return "callee-save";
  case SpillKind::CalleeRestore:
    return "callee-restore";
  }
  return "unknown";
}
