//===- server/LoadGen.h - Compile-service load generator -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the src/workloads corpus against a compile server and reports
/// throughput and latency percentiles. Two load models:
///
///   - closed loop (Qps == 0): every connection keeps its pipeline full —
///     measures capacity;
///   - open loop (Qps > 0): requests are launched on a global schedule of
///     one every 1/Qps seconds regardless of completions, and latency is
///     measured from the *scheduled* send time, so queueing delay under
///     overload is charged to the server, not hidden by client
///     self-throttling (the coordinated-omission correction).
///
/// And two engines:
///
///   - thread fleet (Connections == 0): Concurrency threads, one blocking
///     connection each, one request outstanding per connection — the
///     classic synchronous client;
///   - pipelined (Connections > 0): one epoll event loop drives that many
///     connections with up to Pipeline requests in flight on each, so a
///     single loadgen process can hold tens of thousands of connections
///     against the server's event loop. Responses arrive out of order and
///     are matched by globally-unique request id; any frame that cannot be
///     matched or decoded counts as a protocol error. --verify
///     additionally compiles the corpus offline and byte-compares every
///     CompileOk payload against the offline result.
///
/// Per-request latencies are kept raw and percentiles computed by sorting,
/// not from a histogram, so p99 on small runs is exact.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_LOADGEN_H
#define LSRA_SERVER_LOADGEN_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lsra {
namespace server {

struct LoadGenOptions {
  // Where to connect (unix path wins when non-empty).
  std::string UnixPath;
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;

  /// Workload names (see `lsra list`); requests round-robin across them.
  std::vector<std::string> Workloads;

  /// Repeated-mix mode: when non-zero, the corpus is replaced by
  /// UniquePrograms distinct seeded random programs and requests cycle
  /// through them, so a server cache should converge on a hit rate of
  /// (Requests - UniquePrograms) / Requests. 0 = replay Workloads.
  unsigned UniquePrograms = 0;
  uint64_t MixSeed = 1; ///< base seed for the repeated-mix programs

  unsigned Concurrency = 4; ///< thread-fleet engine: connections = threads
  unsigned Requests = 64;   ///< total requests to send
  double Qps = 0;           ///< open-loop arrival rate (0 = closed loop)

  /// Pipelined engine: when non-zero, drive this many connections from one
  /// event loop instead of the Concurrency thread fleet.
  unsigned Connections = 0;
  /// Maximum requests in flight per connection (pipelined engine only).
  unsigned Pipeline = 8;
  /// Compile the corpus offline first and byte-compare every CompileOk
  /// response's IR text against the offline result (pipelined engine only).
  bool Verify = false;

  // Per-request knobs, forwarded verbatim.
  std::string Allocator = "binpack";
  unsigned Regs = 0;
  bool Run = false;
  uint32_t DeadlineMs = 0;
  bool NoCache = false; ///< ask the server to bypass its compile cache
  /// Per-request tier-policy override ("off", "tier0", "promote"); empty
  /// leaves the server's configured default in force.
  std::string Tier;

  /// When non-empty, write one JSONL record per answered request (id,
  /// connection, send/recv steady-clock timestamps, status, and the
  /// server-reported queue_us) so the client's view joins against the
  /// server's --request-log by request id. Each connection uses a disjoint
  /// id range (conn * 1e6 + seq) to keep ids unique across connections.
  std::string RecordOut;
};

struct LoadGenReport {
  uint64_t Sent = 0;
  uint64_t Ok = 0;
  uint64_t Rejected = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t Errors = 0;          ///< typed Error responses
  uint64_t TransportErrors = 0; ///< send/recv failures
  double WallSeconds = 0;
  double Throughput = 0; ///< completed responses per wall second
  // Latency over all answered requests, milliseconds.
  double MeanMs = 0, P50Ms = 0, P95Ms = 0, P99Ms = 0, MaxMs = 0;
  uint64_t BytesSent = 0, BytesReceived = 0;
  uint64_t CachedResponses = 0; ///< CompileOk frames carrying cached=1
  uint64_t MergedResponses = 0; ///< responses carrying merged=1
  uint64_t Tier0Responses = 0;  ///< CompileOk frames answered by tier 0
  uint64_t ProtocolErrors = 0;  ///< undecodable frames / unmatched ids
  uint64_t VerifyMismatches = 0; ///< CompileOk bytes != offline compile
};

/// Run the load test. False (with \p Err) only for setup failures
/// (unknown workload, no connection); per-request failures are counted in
/// the report instead.
bool runLoadGen(const LoadGenOptions &Opts, LoadGenReport &Out,
                std::string &Err);

/// One-line JSON encoding of (options, report) for BENCH_serve.json-style
/// output.
std::string loadGenReportJson(const LoadGenOptions &Opts,
                              const LoadGenReport &R);

/// Exact percentile by sorting a copy of \p SamplesMs (0 when empty).
double latencyPercentile(std::vector<double> SamplesMs, double P);

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_LOADGEN_H
