//===- server/LoadGen.cpp -------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/LoadGen.h"

#include "ir/Printer.h"
#include "obs/Json.h"
#include "server/Client.h"
#include "support/Timer.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

using namespace lsra;
using namespace lsra::server;

double lsra::server::latencyPercentile(std::vector<double> SamplesMs,
                                       double P) {
  if (SamplesMs.empty())
    return 0;
  std::sort(SamplesMs.begin(), SamplesMs.end());
  double Rank = P / 100.0 * static_cast<double>(SamplesMs.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, SamplesMs.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return SamplesMs[Lo] + Frac * (SamplesMs[Hi] - SamplesMs[Lo]);
}

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One answered request, as the client saw it (--record-out).
struct RequestRecord {
  uint32_t Id;
  unsigned Conn;
  int64_t SendNs, RecvNs; ///< absolute steady-clock (joinable server-side)
  const char *Status;
  bool Cached;
  uint64_t QueueUs; ///< server-reported admission wait
  double LatencyMs;
};

struct WorkerResult {
  std::vector<double> LatenciesMs;
  std::vector<RequestRecord> Records;
  uint64_t Ok = 0, Rejected = 0, Deadline = 0, Errors = 0, Transport = 0;
  uint64_t Sent = 0, BytesSent = 0, BytesReceived = 0, Cached = 0;
};

/// Request-id base for connection \p T: disjoint million-wide ranges.
uint32_t requestIdBase(unsigned T) { return T * 1000000u + 1; }

} // namespace

bool lsra::server::runLoadGen(const LoadGenOptions &Opts, LoadGenReport &Out,
                              std::string &Err) {
  std::vector<std::string> Corpus;
  if (Opts.UniquePrograms) {
    // Repeated-mix mode: K seeded random programs, cycled below, so the
    // expected server cache hit rate is (Requests - K) / Requests.
    for (unsigned I = 0; I < Opts.UniquePrograms; ++I) {
      std::ostringstream OS;
      printModule(OS, *buildRandomProgram(Opts.MixSeed + I));
      Corpus.push_back(OS.str());
    }
  } else {
    if (Opts.Workloads.empty()) {
      Err = "no workloads given";
      return false;
    }
    // Render each workload to wire text once, up front.
    for (const std::string &Name : Opts.Workloads) {
      bool Found = false;
      for (const WorkloadSpec &W : allWorkloads())
        if (Name == W.Name) {
          std::ostringstream OS;
          printModule(OS, *W.Build());
          Corpus.push_back(OS.str());
          Found = true;
          break;
        }
      if (!Found) {
        Err = "no such workload: '" + Name + "'";
        return false;
      }
    }
  }

  unsigned Threads = std::max(1u, Opts.Concurrency);
  unsigned Total = std::max(1u, Opts.Requests);

  // Open the per-request record sink up front so an unwritable path is a
  // setup failure, not a surprise after the whole run.
  std::ofstream RecordOS;
  if (!Opts.RecordOut.empty()) {
    RecordOS.open(Opts.RecordOut);
    if (!RecordOS) {
      Err = "cannot open record file '" + Opts.RecordOut + "'";
      return false;
    }
  }

  // Probe the server once before spawning the fleet.
  {
    Client Probe = Opts.UnixPath.empty()
                       ? Client::connectTcp(Opts.Host, Opts.Port, Err)
                       : Client::connectUnix(Opts.UnixPath, Err);
    if (!Probe.valid() || !Probe.ping(Err, 5000))
      return false;
  }

  std::atomic<unsigned> NextReq{0};
  std::vector<WorkerResult> Results(Threads);
  std::vector<std::thread> Fleet;
  int64_t StartNs = nowNs();
  double IntervalNs = Opts.Qps > 0 ? 1e9 / Opts.Qps : 0;

  for (unsigned T = 0; T < Threads; ++T)
    Fleet.emplace_back([&, T] {
      WorkerResult &R = Results[T];
      std::string CErr;
      Client C = Opts.UnixPath.empty()
                     ? Client::connectTcp(Opts.Host, Opts.Port, CErr)
                     : Client::connectUnix(Opts.UnixPath, CErr);
      if (!C.valid()) {
        R.Transport++;
        return;
      }
      while (true) {
        unsigned K = NextReq.fetch_add(1, std::memory_order_relaxed);
        if (K >= Total)
          break;
        // Open loop: wait for this request's scheduled slot, then charge
        // latency from the slot, not from the actual send.
        int64_t ScheduledNs = StartNs;
        if (IntervalNs > 0) {
          ScheduledNs =
              StartNs + static_cast<int64_t>(IntervalNs * double(K));
          int64_t Wait = ScheduledNs - nowNs();
          if (Wait > 0)
            std::this_thread::sleep_for(std::chrono::nanoseconds(Wait));
        } else {
          ScheduledNs = nowNs();
        }

        CompileRequest Req;
        Req.Allocator = Opts.Allocator;
        Req.Regs = Opts.Regs;
        Req.Run = Opts.Run;
        Req.DeadlineMs = Opts.DeadlineMs;
        Req.NoCache = Opts.NoCache;
        Req.IRText = Corpus[K % Corpus.size()];
        CompileResponse Resp;
        // Re-seed the id before every request (not just once at connect)
        // so the Conn-disjoint numbering survives reconnects.
        uint32_t MyId = requestIdBase(T) + static_cast<uint32_t>(R.Sent);
        C.setNextId(MyId);
        R.Sent++;
        int64_t SendNs = nowNs();
        if (!C.compile(Req, Resp, CErr)) {
          R.Transport++;
          // Transport loss kills this connection; reconnect for the rest.
          C = Opts.UnixPath.empty()
                  ? Client::connectTcp(Opts.Host, Opts.Port, CErr)
                  : Client::connectUnix(Opts.UnixPath, CErr);
          if (!C.valid())
            break;
          continue;
        }
        int64_t RecvNs = nowNs();
        double LatMs = static_cast<double>(RecvNs - ScheduledNs) / 1e6;
        R.LatenciesMs.push_back(LatMs);
        if (RecordOS.is_open())
          R.Records.push_back({MyId, T, SendNs, RecvNs,
                               frameTypeName(Resp.Status), Resp.Cached,
                               Resp.QueueUs, LatMs});
        switch (Resp.Status) {
        case FrameType::CompileOk:
          R.Ok++;
          if (Resp.Cached)
            R.Cached++;
          break;
        case FrameType::Rejected:
          R.Rejected++;
          break;
        case FrameType::DeadlineExceeded:
          R.Deadline++;
          break;
        default:
          R.Errors++;
          break;
        }
      }
      R.BytesSent = C.bytesSent();
      R.BytesReceived = C.bytesReceived();
    });

  for (std::thread &T : Fleet)
    T.join();
  double Wall = static_cast<double>(nowNs() - StartNs) / 1e9;

  Out = LoadGenReport();
  std::vector<double> All;
  for (const WorkerResult &R : Results) {
    Out.Sent += R.Sent;
    Out.Ok += R.Ok;
    Out.Rejected += R.Rejected;
    Out.DeadlineExceeded += R.Deadline;
    Out.Errors += R.Errors;
    Out.TransportErrors += R.Transport;
    Out.BytesSent += R.BytesSent;
    Out.BytesReceived += R.BytesReceived;
    Out.CachedResponses += R.Cached;
    All.insert(All.end(), R.LatenciesMs.begin(), R.LatenciesMs.end());
  }
  if (RecordOS.is_open()) {
    for (const WorkerResult &R : Results)
      for (const RequestRecord &Rec : R.Records) {
        obs::JsonObject O;
        O.field("kind", "client-request")
            .field("id", static_cast<uint64_t>(Rec.Id))
            .field("conn", Rec.Conn)
            .field("send_ns", static_cast<uint64_t>(Rec.SendNs))
            .field("recv_ns", static_cast<uint64_t>(Rec.RecvNs))
            .field("status", Rec.Status)
            .field("cached", Rec.Cached ? 1 : 0)
            .field("queue_us", Rec.QueueUs)
            .field("latency_ms", Rec.LatencyMs);
        RecordOS << O.str() << "\n";
      }
    RecordOS.close();
  }
  Out.WallSeconds = Wall;
  uint64_t Answered = All.size();
  Out.Throughput = Wall > 0 ? static_cast<double>(Answered) / Wall : 0;
  if (!All.empty()) {
    double Sum = 0, Max = 0;
    for (double L : All) {
      Sum += L;
      Max = std::max(Max, L);
    }
    Out.MeanMs = Sum / static_cast<double>(All.size());
    Out.MaxMs = Max;
    Out.P50Ms = latencyPercentile(All, 50);
    Out.P95Ms = latencyPercentile(All, 95);
    Out.P99Ms = latencyPercentile(All, 99);
  }
  return true;
}

std::string lsra::server::loadGenReportJson(const LoadGenOptions &Opts,
                                            const LoadGenReport &R) {
  std::string Workloads;
  for (const std::string &W : Opts.Workloads) {
    if (!Workloads.empty())
      Workloads += ",";
    Workloads += W;
  }
  obs::JsonObject O;
  O.field("kind", "loadgen");
  O.field("workloads", Workloads);
  O.field("allocator", Opts.Allocator);
  O.field("concurrency", Opts.Concurrency);
  O.field("requests", Opts.Requests);
  O.field("unique_programs", Opts.UniquePrograms);
  O.field("no_cache", Opts.NoCache ? 1 : 0);
  O.field("cached_responses", R.CachedResponses);
  O.field("qps", Opts.Qps);
  O.field("deadline_ms", Opts.DeadlineMs);
  O.field("sent", R.Sent);
  O.field("ok", R.Ok);
  O.field("rejected", R.Rejected);
  O.field("deadline_exceeded", R.DeadlineExceeded);
  O.field("errors", R.Errors);
  O.field("transport_errors", R.TransportErrors);
  O.field("wall_s", R.WallSeconds);
  O.field("throughput_rps", R.Throughput);
  O.field("latency_mean_ms", R.MeanMs);
  O.field("latency_p50_ms", R.P50Ms);
  O.field("latency_p95_ms", R.P95Ms);
  O.field("latency_p99_ms", R.P99Ms);
  O.field("latency_max_ms", R.MaxMs);
  O.field("bytes_sent", R.BytesSent);
  O.field("bytes_received", R.BytesReceived);
  return O.str();
}
