//===- server/LoadGen.cpp -------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/LoadGen.h"

#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "net/Connection.h"
#include "net/EventLoop.h"
#include "obs/Json.h"
#include "regalloc/Allocator.h"
#include "server/Client.h"
#include "server/Socket.h"
#include "support/Timer.h"
#include "target/Target.h"
#include "workloads/RandomProgram.h"
#include "workloads/Workloads.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

using namespace lsra;
using namespace lsra::server;

double lsra::server::latencyPercentile(std::vector<double> SamplesMs,
                                       double P) {
  if (SamplesMs.empty())
    return 0;
  std::sort(SamplesMs.begin(), SamplesMs.end());
  double Rank = P / 100.0 * static_cast<double>(SamplesMs.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, SamplesMs.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return SamplesMs[Lo] + Frac * (SamplesMs[Hi] - SamplesMs[Lo]);
}

namespace {

int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One answered request, as the client saw it (--record-out).
struct RequestRecord {
  uint32_t Id;
  unsigned Conn;
  int64_t SendNs, RecvNs; ///< absolute steady-clock (joinable server-side)
  const char *Status;
  bool Cached;
  bool Merged;
  int Tier;
  uint64_t QueueUs; ///< server-reported admission wait
  double LatencyMs;
};

struct WorkerResult {
  std::vector<double> LatenciesMs;
  std::vector<RequestRecord> Records;
  uint64_t Ok = 0, Rejected = 0, Deadline = 0, Errors = 0, Transport = 0;
  uint64_t Sent = 0, BytesSent = 0, BytesReceived = 0, Cached = 0;
  uint64_t Merged = 0, Protocol = 0, VerifyBad = 0, Tier0 = 0;
};

/// Request-id base for thread-fleet connection \p T: disjoint million-wide
/// ranges. (The pipelined engine numbers requests globally instead.)
uint32_t requestIdBase(unsigned T) { return T * 1000000u + 1; }

/// Render the request corpus: either the named workloads or K seeded
/// random programs (repeated-mix mode).
bool buildCorpus(const LoadGenOptions &Opts, std::vector<std::string> &Corpus,
                 std::string &Err) {
  if (Opts.UniquePrograms) {
    // Repeated-mix mode: K seeded random programs, cycled by the senders,
    // so the expected server cache hit rate is (Requests - K) / Requests.
    for (unsigned I = 0; I < Opts.UniquePrograms; ++I) {
      std::ostringstream OS;
      printModule(OS, *buildRandomProgram(Opts.MixSeed + I));
      Corpus.push_back(OS.str());
    }
    return true;
  }
  if (Opts.Workloads.empty()) {
    Err = "no workloads given";
    return false;
  }
  // Render each workload to wire text once, up front.
  for (const std::string &Name : Opts.Workloads) {
    bool Found = false;
    for (const WorkloadSpec &W : allWorkloads())
      if (Name == W.Name) {
        std::ostringstream OS;
        printModule(OS, *W.Build());
        Corpus.push_back(OS.str());
        Found = true;
        break;
      }
    if (!Found) {
      Err = "no such workload: '" + Name + "'";
      return false;
    }
  }
  return true;
}

void tallyResponse(const CompileResponse &Resp, WorkerResult &R) {
  switch (Resp.Status) {
  case FrameType::CompileOk:
    R.Ok++;
    if (Resp.Cached)
      R.Cached++;
    if (Resp.Tier == 0)
      R.Tier0++;
    break;
  case FrameType::Rejected:
    R.Rejected++;
    break;
  case FrameType::DeadlineExceeded:
    R.Deadline++;
    break;
  default:
    R.Errors++;
    break;
  }
  if (Resp.Merged)
    R.Merged++;
}

/// Merge per-worker tallies, write --record-out, compute percentiles.
void finalizeReport(const std::vector<WorkerResult> &Results,
                    std::ofstream &RecordOS, double WallSeconds,
                    LoadGenReport &Out) {
  Out = LoadGenReport();
  std::vector<double> All;
  for (const WorkerResult &R : Results) {
    Out.Sent += R.Sent;
    Out.Ok += R.Ok;
    Out.Rejected += R.Rejected;
    Out.DeadlineExceeded += R.Deadline;
    Out.Errors += R.Errors;
    Out.TransportErrors += R.Transport;
    Out.BytesSent += R.BytesSent;
    Out.BytesReceived += R.BytesReceived;
    Out.CachedResponses += R.Cached;
    Out.MergedResponses += R.Merged;
    Out.ProtocolErrors += R.Protocol;
    Out.VerifyMismatches += R.VerifyBad;
    Out.Tier0Responses += R.Tier0;
    All.insert(All.end(), R.LatenciesMs.begin(), R.LatenciesMs.end());
  }
  if (RecordOS.is_open()) {
    for (const WorkerResult &R : Results)
      for (const RequestRecord &Rec : R.Records) {
        obs::JsonObject O;
        O.field("kind", "client-request")
            .field("id", static_cast<uint64_t>(Rec.Id))
            .field("conn", Rec.Conn)
            .field("send_ns", static_cast<uint64_t>(Rec.SendNs))
            .field("recv_ns", static_cast<uint64_t>(Rec.RecvNs))
            .field("status", Rec.Status)
            .field("cached", Rec.Cached ? 1 : 0)
            .field("merged", Rec.Merged ? 1 : 0)
            .field("tier", Rec.Tier)
            .field("queue_us", Rec.QueueUs)
            .field("latency_ms", Rec.LatencyMs);
        RecordOS << O.str() << "\n";
      }
    RecordOS.close();
  }
  Out.WallSeconds = WallSeconds;
  uint64_t Answered = All.size();
  Out.Throughput =
      WallSeconds > 0 ? static_cast<double>(Answered) / WallSeconds : 0;
  if (!All.empty()) {
    double Sum = 0, Max = 0;
    for (double L : All) {
      Sum += L;
      Max = std::max(Max, L);
    }
    Out.MeanMs = Sum / static_cast<double>(All.size());
    Out.MaxMs = Max;
    Out.P50Ms = latencyPercentile(All, 50);
    Out.P95Ms = latencyPercentile(All, 95);
    Out.P99Ms = latencyPercentile(All, 99);
  }
}

//===----------------------------------------------------------------------===//
// Pipelined engine
//===----------------------------------------------------------------------===//

/// Event-driven load engine: Connections non-blocking sockets on one epoll
/// loop, up to Window requests pipelined on each, matched to responses by
/// globally-unique id. Single-threaded — the loop thread is the caller.
class PipelinedEngine {
public:
  PipelinedEngine(const LoadGenOptions &Opts,
                  const std::vector<std::string> &Corpus,
                  const std::vector<std::string> *Expected,
                  const std::vector<std::string> *ExpectedT0, bool WantRecords)
      : Opts(Opts), Corpus(Corpus), Expected(Expected),
        ExpectedT0(ExpectedT0),
        WantRecords(WantRecords), Total(std::max(1u, Opts.Requests)),
        Window(std::max(1u, Opts.Pipeline)),
        IntervalNs(Opts.Qps > 0 ? 1e9 / Opts.Qps : 0) {}

  bool run(std::string &Err, WorkerResult &Out, double &WallSeconds);

private:
  struct Outstanding {
    unsigned ConnIdx;
    unsigned CorpusIdx;
    int64_t ScheduledNs;
    int64_t SendNs;
  };
  struct EngineConn {
    std::unique_ptr<net::Connection> Conn;
    unsigned InFlight = 0;
    bool Dead = false;
  };

  void pump();
  void onFrame(unsigned ConnIdx, FrameDecoder::Frame &F);
  void onClose(unsigned ConnIdx);
  void armWatchdog();

  const LoadGenOptions &Opts;
  const std::vector<std::string> &Corpus;
  const std::vector<std::string> *Expected; ///< offline bytes (--verify)
  /// Offline tier-0 (EBB) bytes: tiered responses report which backend
  /// answered, and the ground truth differs per tier.
  const std::vector<std::string> *ExpectedT0;
  bool WantRecords;
  const unsigned Total, Window;
  const double IntervalNs;

  net::EventLoop Loop;
  std::vector<EngineConn> Conns;
  std::unordered_map<uint32_t, Outstanding> InFlight;
  WorkerResult R;
  unsigned NextK = 0;     ///< next request index to send
  unsigned Cursor = 0;    ///< round-robin connection cursor
  unsigned Alive = 0;     ///< connections not yet dead
  uint64_t Answered = 0;
  uint64_t WatchdogMark = ~0ull; ///< Answered at the last watchdog tick
  bool PaceArmed = false;
  int64_t StartNs = 0;

  /// No progress for this long = the run is wedged; abort instead of
  /// hanging the harness.
  static constexpr int64_t WatchdogNs = 30'000'000'000;
};

bool PipelinedEngine::run(std::string &Err, WorkerResult &Out,
                          double &WallSeconds) {
  raiseFdLimit(); // the client side needs one fd per connection too
  if (!Loop.init(Err))
    return false;
  unsigned NConn = Opts.Connections;
  Conns.resize(NConn);
  for (unsigned I = 0; I < NConn; ++I) {
    Socket S;
    std::string CErr;
    // A connect burst can outrun the server's accept loop (listen backlog
    // overflow reports ECONNREFUSED/EAGAIN on unix sockets); retry with a
    // small delay rather than failing the whole run.
    for (unsigned Attempt = 0;; ++Attempt) {
      S = Opts.UnixPath.empty()
              ? Socket::connectTcp(Opts.Host, Opts.Port, CErr)
              : Socket::connectUnix(Opts.UnixPath, CErr);
      if (S.valid())
        break;
      if (Attempt >= 1000) {
        Err = "connect (connection " + std::to_string(I) + "): " + CErr;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (!S.setNonBlocking(true, CErr)) {
      Err = CErr;
      return false;
    }
    auto C = std::make_unique<net::Connection>(Loop, S.release(), I);
    if (!C->start(
            [this, I](FrameDecoder::Frame &F) { onFrame(I, F); },
            [this, I](const std::string &) { onClose(I); }, CErr)) {
      Err = CErr;
      return false;
    }
    Conns[I].Conn = std::move(C);
    ++Alive;
  }

  StartNs = nowNs();
  pump();
  armWatchdog();
  Loop.run();
  WallSeconds = static_cast<double>(nowNs() - StartNs) / 1e9;
  // Anything still unanswered at exit (watchdog abort) was lost in flight.
  R.Transport += InFlight.size();
  InFlight.clear();
  Out = std::move(R);
  return true;
}

void PipelinedEngine::armWatchdog() {
  Loop.addTimerAtNs(net::EventLoop::nowNs() + WatchdogNs, [this] {
    if (Answered == WatchdogMark) {
      Loop.stop(); // wedged: no response for a whole watchdog period
      return;
    }
    WatchdogMark = Answered;
    armWatchdog();
  });
}

void PipelinedEngine::pump() {
  while (NextK < Total && Alive > 0) {
    int64_t Now = nowNs();
    int64_t Sched = Now;
    if (IntervalNs > 0) {
      // Open loop: the next request launches at its global schedule slot,
      // via a loop timer when the slot is still in the future.
      Sched = StartNs + static_cast<int64_t>(IntervalNs * double(NextK));
      if (Sched > Now) {
        if (!PaceArmed) {
          PaceArmed = true;
          Loop.addTimerAtNs(Sched, [this] {
            PaceArmed = false;
            pump();
          });
        }
        return;
      }
    }
    // Round-robin to a connection with pipeline room; when every pipeline
    // is full, sending resumes from the next completion.
    unsigned Tried = 0;
    while (Tried < Conns.size() &&
           (Conns[Cursor].Dead || Conns[Cursor].InFlight >= Window)) {
      Cursor = (Cursor + 1) % Conns.size();
      ++Tried;
    }
    if (Tried == Conns.size())
      return;
    EngineConn &EC = Conns[Cursor];
    unsigned K = NextK++;
    uint32_t Id = K + 1; // globally unique across all connections
    CompileRequest Req;
    Req.Allocator = Opts.Allocator;
    Req.Tier = Opts.Tier;
    Req.Regs = Opts.Regs;
    Req.Run = Opts.Run;
    Req.DeadlineMs = Opts.DeadlineMs;
    Req.NoCache = Opts.NoCache;
    Req.IRText = Corpus[K % Corpus.size()];
    std::string Payload = encodeCompileRequest(Req);
    InFlight.emplace(Id, Outstanding{Cursor, unsigned(K % Corpus.size()),
                                     Sched, Now});
    EC.InFlight++;
    R.Sent++;
    R.BytesSent += FrameHeaderBytes + Payload.size();
    EC.Conn->sendFrame(Id, FrameType::CompileRequest, Payload);
    // sendFrame may have closed the connection (backlog overflow); the
    // close callback already re-accounted its in-flight requests.
  }
  if (NextK >= Total && InFlight.empty())
    Loop.stop();
}

void PipelinedEngine::onFrame(unsigned ConnIdx, FrameDecoder::Frame &F) {
  if (!F.Err.empty()) {
    // Stream desync / version mismatch: protocol error; the connection
    // closes itself and onClose() re-accounts whatever was in flight.
    R.Protocol++;
    return;
  }
  R.BytesReceived += FrameHeaderBytes + F.Payload.size();
  auto It = InFlight.find(F.RequestId);
  if (It == InFlight.end()) {
    R.Protocol++; // response id we never sent (or answered twice)
    return;
  }
  Outstanding O = It->second;
  InFlight.erase(It);
  if (Conns[O.ConnIdx].InFlight)
    Conns[O.ConnIdx].InFlight--;
  if (O.ConnIdx != ConnIdx)
    R.Protocol++; // response surfaced on the wrong connection
  Answered++;

  CompileResponse Resp;
  std::string DErr;
  if (!decodeCompileResponse(F.Type, F.Payload, Resp, DErr)) {
    R.Protocol++;
    R.Errors++;
  } else {
    tallyResponse(Resp, R);
    if (Expected && Resp.Status == FrameType::CompileOk) {
      // A tier-0 answer is EBB output; anything else (tier 1 or untiered)
      // must match the request's full allocator.
      const std::vector<std::string> *Want =
          Resp.Tier == 0 && ExpectedT0 ? ExpectedT0 : Expected;
      if (Resp.IRText != (*Want)[O.CorpusIdx])
        R.VerifyBad++;
    }
  }
  int64_t RecvNs = nowNs();
  double LatMs = static_cast<double>(RecvNs - O.ScheduledNs) / 1e6;
  R.LatenciesMs.push_back(LatMs);
  if (WantRecords)
    R.Records.push_back({F.RequestId, O.ConnIdx, O.SendNs, RecvNs,
                         frameTypeName(Resp.Status), Resp.Cached, Resp.Merged,
                         Resp.Tier, Resp.QueueUs, LatMs});
  pump();
}

void PipelinedEngine::onClose(unsigned ConnIdx) {
  EngineConn &EC = Conns[ConnIdx];
  if (EC.Dead)
    return;
  EC.Dead = true;
  EC.InFlight = 0;
  --Alive;
  // Whatever this connection still had in flight is lost.
  std::vector<uint32_t> Lost;
  for (const auto &KV : InFlight)
    if (KV.second.ConnIdx == ConnIdx)
      Lost.push_back(KV.first);
  for (uint32_t Id : Lost)
    InFlight.erase(Id);
  R.Transport += Lost.size();
  if (Alive == 0) {
    Loop.stop();
    return;
  }
  pump();
  if (NextK >= Total && InFlight.empty())
    Loop.stop();
}

} // namespace

bool lsra::server::runLoadGen(const LoadGenOptions &Opts, LoadGenReport &Out,
                              std::string &Err) {
  std::vector<std::string> Corpus;
  if (!buildCorpus(Opts, Corpus, Err))
    return false;

  // Open the per-request record sink up front so an unwritable path is a
  // setup failure, not a surprise after the whole run.
  std::ofstream RecordOS;
  if (!Opts.RecordOut.empty()) {
    RecordOS.open(Opts.RecordOut);
    if (!RecordOS) {
      Err = "cannot open record file '" + Opts.RecordOut + "'";
      return false;
    }
  }

  // Probe the server once before spawning the fleet.
  {
    Client Probe = Opts.UnixPath.empty()
                       ? Client::connectTcp(Opts.Host, Opts.Port, Err)
                       : Client::connectUnix(Opts.UnixPath, Err);
    if (!Probe.valid() || !Probe.ping(Err, 5000))
      return false;
  }

  if (Opts.Connections > 0) {
    // --verify: the ground truth is the same pipeline the server runs,
    // compiled in-process with the same request knobs. Two corpora: the
    // full allocator's output (untiered and promoted answers) and the EBB
    // tier-0 output, picked per response by its `tier` field.
    std::vector<std::string> Expected, ExpectedT0;
    if (Opts.Verify) {
      AllocatorKind Kind;
      if (!parseAllocatorName(Opts.Allocator, Kind)) {
        Err = "unknown allocator '" + Opts.Allocator + "'";
        return false;
      }
      TargetDesc TD = TargetDesc::alphaLike();
      if (Opts.Regs)
        TD = TD.withRegLimit(Opts.Regs, Opts.Regs);
      AllocOptions AO;
      ExecOptions EO;
      ExecOptions T0 = EO;
      T0.Tier = TierPolicy::Tier0Only;
      for (const std::string &Text : Corpus) {
        TextCompileResult TC =
            compileTextModule(Text, TD, Kind, AO, EO, Opts.Run);
        if (!TC.Ok) {
          Err = "verify: offline compile failed: " + TC.Error;
          return false;
        }
        Expected.push_back(TC.AllocatedText);
        TextCompileResult TC0 =
            compileTextModule(Text, TD, Kind, AO, T0, Opts.Run);
        if (!TC0.Ok) {
          Err = "verify: offline tier-0 compile failed: " + TC0.Error;
          return false;
        }
        ExpectedT0.push_back(TC0.AllocatedText);
      }
    }
    PipelinedEngine Engine(Opts, Corpus, Opts.Verify ? &Expected : nullptr,
                           Opts.Verify ? &ExpectedT0 : nullptr,
                           RecordOS.is_open());
    std::vector<WorkerResult> Results(1);
    double Wall = 0;
    if (!Engine.run(Err, Results[0], Wall))
      return false;
    finalizeReport(Results, RecordOS, Wall, Out);
    return true;
  }

  unsigned Threads = std::max(1u, Opts.Concurrency);
  unsigned Total = std::max(1u, Opts.Requests);

  std::atomic<unsigned> NextReq{0};
  std::vector<WorkerResult> Results(Threads);
  std::vector<std::thread> Fleet;
  int64_t StartNs = nowNs();
  double IntervalNs = Opts.Qps > 0 ? 1e9 / Opts.Qps : 0;

  for (unsigned T = 0; T < Threads; ++T)
    Fleet.emplace_back([&, T] {
      WorkerResult &R = Results[T];
      std::string CErr;
      Client C = Opts.UnixPath.empty()
                     ? Client::connectTcp(Opts.Host, Opts.Port, CErr)
                     : Client::connectUnix(Opts.UnixPath, CErr);
      if (!C.valid()) {
        R.Transport++;
        return;
      }
      while (true) {
        unsigned K = NextReq.fetch_add(1, std::memory_order_relaxed);
        if (K >= Total)
          break;
        // Open loop: wait for this request's scheduled slot, then charge
        // latency from the slot, not from the actual send.
        int64_t ScheduledNs = StartNs;
        if (IntervalNs > 0) {
          ScheduledNs =
              StartNs + static_cast<int64_t>(IntervalNs * double(K));
          int64_t Wait = ScheduledNs - nowNs();
          if (Wait > 0)
            std::this_thread::sleep_for(std::chrono::nanoseconds(Wait));
        } else {
          ScheduledNs = nowNs();
        }

        CompileRequest Req;
        Req.Allocator = Opts.Allocator;
        Req.Tier = Opts.Tier;
        Req.Regs = Opts.Regs;
        Req.Run = Opts.Run;
        Req.DeadlineMs = Opts.DeadlineMs;
        Req.NoCache = Opts.NoCache;
        Req.IRText = Corpus[K % Corpus.size()];
        CompileResponse Resp;
        // Re-seed the id before every request (not just once at connect)
        // so the Conn-disjoint numbering survives reconnects.
        uint32_t MyId = requestIdBase(T) + static_cast<uint32_t>(R.Sent);
        C.setNextId(MyId);
        R.Sent++;
        int64_t SendNs = nowNs();
        if (!C.compile(Req, Resp, CErr)) {
          R.Transport++;
          // Transport loss kills this connection; reconnect for the rest.
          C = Opts.UnixPath.empty()
                  ? Client::connectTcp(Opts.Host, Opts.Port, CErr)
                  : Client::connectUnix(Opts.UnixPath, CErr);
          if (!C.valid())
            break;
          continue;
        }
        int64_t RecvNs = nowNs();
        double LatMs = static_cast<double>(RecvNs - ScheduledNs) / 1e6;
        R.LatenciesMs.push_back(LatMs);
        if (RecordOS.is_open())
          R.Records.push_back({MyId, T, SendNs, RecvNs,
                               frameTypeName(Resp.Status), Resp.Cached,
                               Resp.Merged, Resp.Tier, Resp.QueueUs, LatMs});
        tallyResponse(Resp, R);
      }
      R.BytesSent = C.bytesSent();
      R.BytesReceived = C.bytesReceived();
    });

  for (std::thread &T : Fleet)
    T.join();
  double Wall = static_cast<double>(nowNs() - StartNs) / 1e9;
  finalizeReport(Results, RecordOS, Wall, Out);
  return true;
}

std::string lsra::server::loadGenReportJson(const LoadGenOptions &Opts,
                                            const LoadGenReport &R) {
  std::string Workloads;
  for (const std::string &W : Opts.Workloads) {
    if (!Workloads.empty())
      Workloads += ",";
    Workloads += W;
  }
  obs::JsonObject O;
  O.field("kind", "loadgen");
  O.field("workloads", Workloads);
  O.field("allocator", Opts.Allocator);
  O.field("tier", Opts.Tier.empty() ? "off" : Opts.Tier);
  O.field("concurrency", Opts.Concurrency);
  O.field("connections", Opts.Connections);
  O.field("pipeline", Opts.Connections ? Opts.Pipeline : 0);
  O.field("requests", Opts.Requests);
  O.field("unique_programs", Opts.UniquePrograms);
  O.field("no_cache", Opts.NoCache ? 1 : 0);
  O.field("cached_responses", R.CachedResponses);
  O.field("merged_responses", R.MergedResponses);
  O.field("tier0_responses", R.Tier0Responses);
  O.field("qps", Opts.Qps);
  O.field("deadline_ms", Opts.DeadlineMs);
  O.field("sent", R.Sent);
  O.field("ok", R.Ok);
  O.field("rejected", R.Rejected);
  O.field("deadline_exceeded", R.DeadlineExceeded);
  O.field("errors", R.Errors);
  O.field("transport_errors", R.TransportErrors);
  O.field("protocol_errors", R.ProtocolErrors);
  O.field("verify_mismatches", R.VerifyMismatches);
  O.field("wall_s", R.WallSeconds);
  O.field("throughput_rps", R.Throughput);
  O.field("latency_mean_ms", R.MeanMs);
  O.field("latency_p50_ms", R.P50Ms);
  O.field("latency_p95_ms", R.P95Ms);
  O.field("latency_p99_ms", R.P99Ms);
  O.field("latency_max_ms", R.MaxMs);
  O.field("bytes_sent", R.BytesSent);
  O.field("bytes_received", R.BytesReceived);
  return O.str();
}
