//===- server/Protocol.cpp ------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

using namespace lsra;
using namespace lsra::server;

const char *lsra::server::frameTypeName(FrameType T) {
  switch (T) {
  case FrameType::CompileRequest:
    return "compile-request";
  case FrameType::CompileOk:
    return "compile-ok";
  case FrameType::Error:
    return "error";
  case FrameType::Rejected:
    return "rejected";
  case FrameType::DeadlineExceeded:
    return "deadline-exceeded";
  case FrameType::ShuttingDown:
    return "shutting-down";
  case FrameType::Ping:
    return "ping";
  case FrameType::Pong:
    return "pong";
  case FrameType::StatsRequest:
    return "stats-request";
  case FrameType::StatsReply:
    return "stats-reply";
  }
  return "unknown";
}

namespace {

void putU32(std::string &Out, uint32_t V) {
  Out.push_back(static_cast<char>(V & 0xff));
  Out.push_back(static_cast<char>((V >> 8) & 0xff));
  Out.push_back(static_cast<char>((V >> 16) & 0xff));
  Out.push_back(static_cast<char>((V >> 24) & 0xff));
}

uint32_t getU32(const unsigned char *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

/// Split "key=value\n...\n\nBODY" into header key/value pairs and the
/// body. The blank line is mandatory (an empty body is fine).
bool splitPayload(const std::string &Payload,
                  std::vector<std::pair<std::string, std::string>> &Fields,
                  std::string &Body, std::string &Err) {
  // An empty header section is legal ("\nBODY"): typed error responses may
  // carry no key=value lines at all.
  if (!Payload.empty() && Payload[0] == '\n') {
    Body = Payload.substr(1);
    return true;
  }
  size_t Sep = Payload.find("\n\n");
  if (Sep == std::string::npos) {
    Err = "payload missing blank-line header terminator";
    return false;
  }
  Body = Payload.substr(Sep + 2);
  std::istringstream Head(Payload.substr(0, Sep));
  std::string Line;
  while (std::getline(Head, Line)) {
    if (Line.empty())
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos) {
      Err = "malformed header line '" + Line + "'";
      return false;
    }
    Fields.emplace_back(Line.substr(0, Eq), Line.substr(Eq + 1));
  }
  return true;
}

uint64_t toU64(const std::string &V) {
  return std::strtoull(V.c_str(), nullptr, 10);
}

} // namespace

std::string lsra::server::encodeFrameHeader(uint32_t PayloadLen,
                                            uint32_t RequestId,
                                            FrameType Type) {
  std::string H;
  H.reserve(FrameHeaderBytes);
  putU32(H, FrameMagic);
  H.push_back(static_cast<char>(ProtocolVersion));
  putU32(H, PayloadLen);
  putU32(H, RequestId);
  H.push_back(static_cast<char>(Type));
  return H;
}

bool lsra::server::decodeFrameHeader(
    const unsigned char Header[FrameHeaderBytes], uint32_t &PayloadLen,
    uint32_t &RequestId, FrameType &Type, std::string &Err) {
  if (getU32(Header) != FrameMagic) {
    Err = "bad frame magic";
    return false;
  }
  // Parse the remaining fields before the version check: a mismatched
  // frame's request id is what lets the server send a typed Error reply.
  uint8_t Version = Header[4];
  PayloadLen = getU32(Header + 5);
  RequestId = getU32(Header + 9);
  uint8_t T = Header[13];
  if (Version != ProtocolVersion) {
    Err = std::string(VersionMismatchPrefix) + ": got " +
          std::to_string(Version) + ", want " +
          std::to_string(ProtocolVersion);
    return false;
  }
  if (T < static_cast<uint8_t>(FrameType::CompileRequest) ||
      T > static_cast<uint8_t>(FrameType::StatsReply)) {
    Err = "unknown frame type " + std::to_string(T);
    return false;
  }
  if (PayloadLen > MaxFramePayload) {
    Err = "frame payload too large (" + std::to_string(PayloadLen) + " bytes)";
    return false;
  }
  Type = static_cast<FrameType>(T);
  return true;
}

std::string lsra::server::encodeStatsRequest(const StatsRequest &R) {
  return "format=" + R.Format + "\n\n";
}

bool lsra::server::decodeStatsRequest(const std::string &Payload,
                                      StatsRequest &Out, std::string &Err) {
  std::vector<std::pair<std::string, std::string>> Fields;
  std::string Body;
  if (!splitPayload(Payload, Fields, Body, Err))
    return false;
  for (const auto &[K, V] : Fields) {
    if (K == "format")
      Out.Format = V;
    else {
      Err = "unknown stats-request field '" + K + "'";
      return false;
    }
  }
  if (Out.Format != "json" && Out.Format != "prom" && Out.Format != "text") {
    Err = "unknown stats format '" + Out.Format + "'";
    return false;
  }
  return true;
}

std::string lsra::server::encodeCompileRequest(const CompileRequest &R) {
  std::ostringstream OS;
  OS << "allocator=" << R.Allocator << "\n";
  if (R.Regs)
    OS << "regs=" << R.Regs << "\n";
  if (R.Cleanup)
    OS << "cleanup=1\n";
  if (R.Run)
    OS << "run=1\n";
  if (R.DeadlineMs)
    OS << "deadline_ms=" << R.DeadlineMs << "\n";
  if (R.HoldMs)
    OS << "hold_ms=" << R.HoldMs << "\n";
  if (R.NoCache)
    OS << "no_cache=1\n";
  if (!R.Tier.empty())
    OS << "tier=" << R.Tier << "\n";
  OS << "\n" << R.IRText;
  return OS.str();
}

bool lsra::server::decodeCompileRequest(const std::string &Payload,
                                        CompileRequest &Out,
                                        std::string &Err) {
  std::vector<std::pair<std::string, std::string>> Fields;
  if (!splitPayload(Payload, Fields, Out.IRText, Err))
    return false;
  for (const auto &[K, V] : Fields) {
    if (K == "allocator")
      Out.Allocator = V;
    else if (K == "regs")
      Out.Regs = static_cast<unsigned>(toU64(V));
    else if (K == "cleanup")
      Out.Cleanup = V == "1";
    else if (K == "run")
      Out.Run = V == "1";
    else if (K == "deadline_ms")
      Out.DeadlineMs = static_cast<uint32_t>(toU64(V));
    else if (K == "hold_ms")
      Out.HoldMs = static_cast<uint32_t>(toU64(V));
    else if (K == "no_cache")
      Out.NoCache = V == "1";
    else if (K == "tier")
      Out.Tier = V;
    else {
      Err = "unknown request field '" + K + "'";
      return false;
    }
  }
  return true;
}

std::string lsra::server::encodeCompileResponse(const CompileResponse &R) {
  std::ostringstream OS;
  if (R.Status == FrameType::CompileOk) {
    OS << "allocator=" << R.Allocator << "\n"
       << "candidates=" << R.Candidates << "\n"
       << "spilled=" << R.Spilled << "\n"
       << "static_spills=" << R.StaticSpills << "\n"
       << "coalesced=" << R.Coalesced << "\n"
       << "splits=" << R.Splits << "\n";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.6f", R.AllocSeconds);
    OS << "alloc_s=" << Buf << "\n";
    if (R.Cached)
      OS << "cached=1\n";
    if (R.Merged)
      OS << "merged=1\n";
    OS << "queue_us=" << R.QueueUs << "\n";
    if (R.Tier >= 0)
      OS << "tier=" << R.Tier << "\n";
    if (R.HasRun)
      OS << "dyn_instrs=" << R.DynInstrs << "\n"
         << "cycles=" << R.Cycles << "\n"
         << "dyn_spills=" << R.DynSpills << "\n"
         << "ret=" << R.ReturnValue << "\n";
    OS << "\n" << R.IRText;
    return OS.str();
  }
  if (R.ErrLine)
    OS << "err_line=" << R.ErrLine << "\n";
  if (R.ErrCol)
    OS << "err_col=" << R.ErrCol << "\n";
  if (!R.ErrToken.empty())
    OS << "err_token=" << R.ErrToken << "\n";
  if (R.QueueUs)
    OS << "queue_us=" << R.QueueUs << "\n";
  OS << "\n" << R.Message;
  return OS.str();
}

void FrameDecoder::append(const char *Data, size_t N) {
  // Compact lazily: only when the consumed prefix dominates the buffer,
  // so steady-state appends are O(bytes) amortized.
  if (Pos > 4096 && Pos > Buf.size() / 2) {
    Buf.erase(0, Pos);
    Pos = 0;
  }
  Buf.append(Data, N);
}

FrameDecoder::Status FrameDecoder::next(Frame &Out) {
  if (Broken) {
    Out.Err = "frame stream broken";
    return Status::Error;
  }
  if (Buf.size() - Pos < FrameHeaderBytes)
    return Status::NeedMore;
  const unsigned char *H =
      reinterpret_cast<const unsigned char *>(Buf.data() + Pos);
  uint32_t PayloadLen = 0;
  Out = Frame();
  std::string Err;
  if (!decodeFrameHeader(H, PayloadLen, Out.RequestId, Out.Type, Err)) {
    Broken = true;
    Out.Err = std::move(Err);
    Out.VersionMismatch =
        Out.Err.compare(0, std::strlen(VersionMismatchPrefix),
                        VersionMismatchPrefix) == 0;
    return Status::Error;
  }
  if (Buf.size() - Pos < FrameHeaderBytes + PayloadLen)
    return Status::NeedMore;
  Out.Payload.assign(Buf, Pos + FrameHeaderBytes, PayloadLen);
  Pos += FrameHeaderBytes + PayloadLen;
  if (Pos == Buf.size()) {
    Buf.clear();
    Pos = 0;
  }
  return Status::Frame;
}

bool lsra::server::decodeCompileResponse(FrameType T,
                                         const std::string &Payload,
                                         CompileResponse &Out,
                                         std::string &Err) {
  Out = CompileResponse();
  Out.Status = T;
  std::vector<std::pair<std::string, std::string>> Fields;
  std::string Body;
  if (!splitPayload(Payload, Fields, Body, Err))
    return false;
  if (T != FrameType::CompileOk) {
    Out.Message = Body;
    for (const auto &[K, V] : Fields) {
      if (K == "err_line")
        Out.ErrLine = static_cast<unsigned>(toU64(V));
      else if (K == "err_col")
        Out.ErrCol = static_cast<unsigned>(toU64(V));
      else if (K == "err_token")
        Out.ErrToken = V;
      else if (K == "queue_us")
        Out.QueueUs = toU64(V);
    }
    return true;
  }
  Out.IRText = std::move(Body);
  for (const auto &[K, V] : Fields) {
    if (K == "allocator")
      Out.Allocator = V;
    else if (K == "candidates")
      Out.Candidates = static_cast<unsigned>(toU64(V));
    else if (K == "spilled")
      Out.Spilled = static_cast<unsigned>(toU64(V));
    else if (K == "static_spills")
      Out.StaticSpills = static_cast<unsigned>(toU64(V));
    else if (K == "coalesced")
      Out.Coalesced = static_cast<unsigned>(toU64(V));
    else if (K == "splits")
      Out.Splits = static_cast<unsigned>(toU64(V));
    else if (K == "alloc_s")
      Out.AllocSeconds = std::strtod(V.c_str(), nullptr);
    else if (K == "cached")
      Out.Cached = V == "1";
    else if (K == "merged")
      Out.Merged = V == "1";
    else if (K == "queue_us")
      Out.QueueUs = toU64(V);
    else if (K == "tier")
      Out.Tier = static_cast<int>(toU64(V));
    else if (K == "dyn_instrs") {
      Out.HasRun = true;
      Out.DynInstrs = toU64(V);
    } else if (K == "cycles")
      Out.Cycles = toU64(V);
    else if (K == "dyn_spills")
      Out.DynSpills = toU64(V);
    else if (K == "ret")
      Out.ReturnValue = std::strtoll(V.c_str(), nullptr, 10);
    else {
      Err = "unknown response field '" + K + "'";
      return false;
    }
  }
  return true;
}
