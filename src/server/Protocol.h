//===- server/Protocol.h - Framed compile-service wire protocol -*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire protocol of the compile server: length-prefixed frames whose
/// payload reuses the textual IR (ir/Printer emits it, ir/Parser reads it
/// back) so the wire format is exactly the format every test fixture and
/// CLI already speaks.
///
/// Frame layout (all integers little-endian):
///
///   +0  u32  magic       'LSRA' (0x4153524c) — cheap desync/garbage check
///   +4  u8   version     ProtocolVersion — reject mismatches explicitly
///   +5  u32  payload len  bytes following the 14-byte header
///   +9  u32  request id   echoed verbatim in the response
///   +13 u8   type         FrameType
///   +14 ...  payload
///
/// The version byte exists so header/payload fields (like the cache
/// controls) can change shape without silently corrupting old peers: a
/// server answers a version-mismatched frame with a typed Error frame
/// (the id is still readable) and closes; bad magic just closes.
///
/// Compile request/response payloads are "key=value" header lines, a blank
/// line, then a body: the module IR text for CompileRequest/CompileOk, the
/// error message for the typed error responses. Every request gets exactly
/// one response frame carrying its request id; error conditions map to
/// distinct frame types (Rejected = load shed, DeadlineExceeded, Error =
/// malformed/unparsable payload) so clients never scrape error strings.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_PROTOCOL_H
#define LSRA_SERVER_PROTOCOL_H

#include <cstdint>
#include <string>

namespace lsra {
namespace server {

/// 'LSRA' in little-endian byte order.
constexpr uint32_t FrameMagic = 0x4153524cu;

/// Wire-protocol version. Bump when the header or the defined payload
/// fields change incompatibly. v2 added the StatsRequest/StatsReply
/// introspection frames and the `queue_us` response field (decoders
/// reject unknown fields, so both are incompatible additions). v3 added
/// the `merged` response field and pipelining semantics: a client may
/// keep many requests in flight on one connection, and the server may
/// answer them out of order (responses match requests by id, never by
/// position). v4 added tiered serving: the optional `tier` request field
/// (a per-request TierPolicy override) and the `tier` response field
/// reporting which tier answered (0 = EBB tier-0, 1 = full allocator).
constexpr uint8_t ProtocolVersion = 4;

/// Frame header size on the wire (magic + version + len + id + type).
constexpr uint32_t FrameHeaderBytes = 14;

/// Error-string prefix decodeFrameHeader uses for a version mismatch; the
/// server matches it to reply with a typed Error frame instead of just
/// dropping the connection.
constexpr const char *VersionMismatchPrefix = "protocol version mismatch";

/// Upper bound on a single frame payload; larger frames indicate a broken
/// or hostile peer and close the connection.
constexpr uint32_t MaxFramePayload = 64u << 20;

enum class FrameType : uint8_t {
  CompileRequest = 1,   ///< client → server: compile this module
  CompileOk = 2,        ///< allocated IR + statistics
  Error = 3,            ///< malformed payload / parse / verify failure
  Rejected = 4,         ///< admission queue full (load shed; retry later)
  DeadlineExceeded = 5, ///< request expired before a worker got to it
  ShuttingDown = 6,     ///< server is draining; no new work accepted
  Ping = 7,             ///< client → server liveness probe
  Pong = 8,             ///< server → client probe reply
  StatsRequest = 9,     ///< client → server: telemetry snapshot, please
  StatsReply = 10,      ///< rendered MetricsSnapshot (json/prom/text)
};

const char *frameTypeName(FrameType T);

/// Everything a client can ask of the compile service. Defaults mirror
/// `lsra run`: second-chance binpacking on the full register file.
struct CompileRequest {
  std::string Allocator = "binpack"; ///< parseAllocator() name
  unsigned Regs = 0;       ///< per-class register limit (0 = full file)
  bool Cleanup = false;    ///< run the spill-cleanup pass
  bool Run = false;        ///< execute on the VM, report dynamic counts
  uint32_t DeadlineMs = 0; ///< relative deadline (0 = none)
  uint32_t HoldMs = 0;     ///< worker sleeps this long first (load tests)
  bool NoCache = false;    ///< bypass the server's compile cache
  /// Per-request tier-policy override: "off", "tier0", "promote", or ""
  /// (empty = use the server's configured default). v4.
  std::string Tier;
  std::string IRText;      ///< the module, in textual IR form
};

struct CompileResponse {
  FrameType Status = FrameType::CompileOk;
  std::string Message; ///< diagnostic for non-OK responses

  // Parse-error position (Status == Error, when the payload failed to
  // parse as IR; 0/empty when not applicable).
  unsigned ErrLine = 0;
  unsigned ErrCol = 0;
  std::string ErrToken;

  // Allocation statistics (Status == CompileOk).
  std::string Allocator;
  unsigned Candidates = 0;
  unsigned Spilled = 0;
  unsigned StaticSpills = 0;
  unsigned Coalesced = 0;
  unsigned Splits = 0;
  double AllocSeconds = 0;
  bool Cached = false;   ///< served from the server's compile cache
  bool Merged = false;   ///< piggybacked on an identical in-flight compile
  uint64_t QueueUs = 0;  ///< server-side admission-queue wait (µs)
  /// Which tier answered when tiered serving was active: 0 = the EBB
  /// tier-0 backend, 1 = the requested full allocator. -1 = tiering off
  /// (the field is omitted on the wire). v4.
  int Tier = -1;

  // Dynamic execution statistics (CompileOk with CompileRequest::Run).
  bool HasRun = false;
  uint64_t DynInstrs = 0;
  uint64_t Cycles = 0;
  uint64_t DynSpills = 0;
  int64_t ReturnValue = 0;

  std::string IRText; ///< allocated module (Status == CompileOk)

  bool ok() const { return Status == FrameType::CompileOk; }
};

/// A telemetry-snapshot request. The server renders the snapshot itself
/// (clients stay free of JSON machinery); the StatsReply payload is the
/// rendered document, verbatim.
struct StatsRequest {
  std::string Format = "json"; ///< "json", "prom", or "text"
};

std::string encodeStatsRequest(const StatsRequest &R);
bool decodeStatsRequest(const std::string &Payload, StatsRequest &Out,
                        std::string &Err);

/// Serialize \p R as a CompileRequest frame payload.
std::string encodeCompileRequest(const CompileRequest &R);

/// Parse a CompileRequest payload. Returns false (with \p Err set) on a
/// malformed header; the embedded IR text is not parsed here.
bool decodeCompileRequest(const std::string &Payload, CompileRequest &Out,
                          std::string &Err);

/// Serialize \p R as the payload for a frame of type R.Status.
std::string encodeCompileResponse(const CompileResponse &R);

/// Parse a response payload of frame type \p T.
bool decodeCompileResponse(FrameType T, const std::string &Payload,
                           CompileResponse &Out, std::string &Err);

/// Encode the 14-byte frame header for \p PayloadLen bytes (at the current
/// ProtocolVersion).
std::string encodeFrameHeader(uint32_t PayloadLen, uint32_t RequestId,
                              FrameType Type);

/// Decode a 14-byte header. False on bad magic, version mismatch, unknown
/// type, or a payload length above MaxFramePayload. On a version mismatch
/// \p Err starts with VersionMismatchPrefix and \p RequestId is still
/// filled in, so the caller can send a typed Error reply.
bool decodeFrameHeader(const unsigned char Header[FrameHeaderBytes],
                       uint32_t &PayloadLen, uint32_t &RequestId,
                       FrameType &Type, std::string &Err);

/// Incremental frame decoder for non-blocking connections: feed it
/// whatever bytes recv() produced, pull complete frames out. Unlike the
/// blocking recvFrame() path it never waits — a frame split across any
/// number of reads (even one byte at a time) reassembles correctly.
///
/// Typical use from a read handler:
///
///   Dec.append(Buf, N);
///   FrameDecoder::Frame F;
///   while (Dec.next(F) == FrameDecoder::Status::Frame)
///     handle(F);
///   if (Dec.next(...) returned Error) → reply/close per F.Err
///
/// An Error result is sticky: the stream is desynchronized and the
/// connection must be closed (after an optional typed Error reply when
/// F.VersionMismatch made the request id readable).
class FrameDecoder {
public:
  enum class Status : uint8_t {
    NeedMore, ///< no complete frame buffered yet
    Frame,    ///< one frame decoded into the out-param
    Error,    ///< stream is broken; close the connection
  };

  struct Frame {
    uint32_t RequestId = 0;
    FrameType Type = FrameType::Error;
    std::string Payload;
    std::string Err;              ///< Status::Error only
    bool VersionMismatch = false; ///< Error, but the id was readable
  };

  /// Buffer \p N raw bytes from the wire.
  void append(const char *Data, size_t N);

  /// Decode the next complete frame into \p Out.
  Status next(Frame &Out);

  /// Bytes buffered but not yet consumed (observability / tests).
  size_t buffered() const { return Buf.size() - Pos; }

private:
  std::string Buf;
  size_t Pos = 0; ///< consumed prefix, compacted away periodically
  bool Broken = false;
};

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_PROTOCOL_H
