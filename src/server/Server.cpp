//===- server/Server.cpp --------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "driver/Pipeline.h"
#include "obs/Counters.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/MemStats.h"

#include <chrono>

using namespace lsra;
using namespace lsra::server;

namespace {

/// Poll interval for shutdown checks in accept/reader loops.
constexpr int TickMs = 50;

void bumpCounter(const char *Name, uint64_t N = 1) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.counter(Name).add(N);
}

void histRecord(const char *Name, uint64_t V) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.histogram(Name).record(V);
}

void gaugeAdd(const char *Name, int64_t D) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.gauge(Name).add(D);
}

} // namespace

Server::Server(const ServerOptions &O)
    : Opts(O), Queue(O.QueueCapacity ? O.QueueCapacity : 1) {}

Server::~Server() { shutdown(); }

int64_t Server::nowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool Server::start(std::string &Err) {
  if (Running.load(std::memory_order_acquire)) {
    Err = "server already running";
    return false;
  }
  Stopping.store(false, std::memory_order_release);
  // The telemetry plane is always on while serving: a StatsRequest must be
  // answerable at any moment, so the registry is enabled up front rather
  // than only when a --stats-json sink was requested.
  obs::CounterRegistry::global().enable();
  L = Opts.UnixPath.empty() ? Listener::listenTcp(Opts.TcpPort, Err)
                            : Listener::listenUnix(Opts.UnixPath, Err);
  if (!L.valid())
    return false;
  if (!Opts.RequestLogPath.empty()) {
    if (!obs::RequestLog::global().open(Opts.RequestLogPath)) {
      Err = "cannot open request log '" + Opts.RequestLogPath + "'";
      L.close();
      return false;
    }
    OpenedRequestLog = true;
  }

  if (Opts.CacheBytes) {
    cache::CacheConfig CC;
    CC.MaxBytes = Opts.CacheBytes;
    Cache = std::make_unique<cache::CompileCache>(CC);
  }

  unsigned NumWorkers =
      Opts.Workers ? Opts.Workers : ThreadPool::defaultThreadCount();
  Workers = std::make_unique<ThreadPool>(NumWorkers);
  // Long-running drain tasks: each worker blocks on the admission queue
  // and exits when the queue is closed and empty (graceful drain).
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers->submit([this] {
      std::function<void()> Task;
      while (Queue.pop(Task))
        Task();
    });

  Running.store(true, std::memory_order_release);
  AcceptThread = std::thread([this] { acceptLoop(); });
  LSRA_LOG(1, "server: listening on %s (workers=%u, queue=%u)",
           Opts.UnixPath.empty()
               ? ("tcp 127.0.0.1:" + std::to_string(L.port())).c_str()
               : Opts.UnixPath.c_str(),
           NumWorkers, Queue.capacity());
  return true;
}

void Server::acceptLoop() {
  while (!Stopping.load(std::memory_order_acquire)) {
    Socket S = L.accept(TickMs);
    if (!S.valid())
      continue;
    bumpCounter("server.connections");
    auto C = std::make_shared<Conn>();
    C->Sock = std::move(S);
    std::unique_lock<std::mutex> Lock(ReadersMu);
    Conns.emplace_back(C);
    Readers.emplace_back([this, C] { readerLoop(C); });
  }
}

void Server::readerLoop(ConnPtr C) {
  std::string Err;
  while (true) {
    bool Draining = Stopping.load(std::memory_order_acquire);
    uint32_t Id = 0;
    FrameType Type;
    std::string Payload;
    Socket::RecvStatus St =
        C->Sock.recvFrame(Id, Type, Payload, TickMs, Err);
    if (St == Socket::RecvStatus::Timeout) {
      if (Draining)
        return; // drained: no new requests from this connection
      continue;
    }
    if (St == Socket::RecvStatus::Closed)
      return;
    if (St == Socket::RecvStatus::Error) {
      // A version-mismatched frame still yields its request id, so the
      // client gets a typed Error telling it why before the close; any
      // other header damage (bad magic, torn frame) is just dropped.
      if (Err.rfind(VersionMismatchPrefix, 0) == 0) {
        CompileResponse R;
        R.Status = FrameType::Error;
        R.Message = Err;
        bumpCounter("server.version_mismatch");
        respond(C, Id, R.Status, encodeCompileResponse(R));
      }
      LSRA_LOG(2, "server: dropping connection: %s", Err.c_str());
      return;
    }
    bumpCounter("server.bytes_in", FrameHeaderBytes + Payload.size());
    if (Type == FrameType::Ping) {
      respond(C, Id, FrameType::Pong, "");
      continue;
    }
    if (Type == FrameType::StatsRequest) {
      StatsRequest SR;
      std::string SErr;
      if (!decodeStatsRequest(Payload, SR, SErr)) {
        CompileResponse R;
        R.Status = FrameType::Error;
        R.Message = "bad stats request: " + SErr;
        respond(C, Id, R.Status, encodeCompileResponse(R));
        continue;
      }
      bumpCounter("server.stats_requests");
      respond(C, Id, FrameType::StatsReply, renderStats(SR.Format));
      continue;
    }
    if (Type != FrameType::CompileRequest) {
      CompileResponse R;
      R.Status = FrameType::Error;
      R.Message = std::string("unexpected frame type '") +
                  frameTypeName(Type) + "'";
      respond(C, Id, R.Status, encodeCompileResponse(R));
      continue;
    }
    bumpCounter("server.requests");
    if (Draining || Stopping.load(std::memory_order_acquire)) {
      CompileResponse R;
      R.Status = FrameType::ShuttingDown;
      R.Message = "server is draining";
      bumpCounter("server.shutdown_rejected");
      respond(C, Id, R.Status, encodeCompileResponse(R));
      continue;
    }

    // Admission control: deadline starts at arrival; the queue bound is
    // the load shed.
    int64_t ArrivalNs = nowNs();
    uint32_t DeadlineMs = Opts.DefaultDeadlineMs;
    // Peek the deadline without a full decode; the worker re-decodes.
    {
      CompileRequest Peek;
      std::string PeekErr;
      if (decodeCompileRequest(Payload, Peek, PeekErr) && Peek.DeadlineMs)
        DeadlineMs = Peek.DeadlineMs;
    }
    int64_t DeadlineNs =
        DeadlineMs ? ArrivalNs + int64_t(DeadlineMs) * 1'000'000 : 0;

    // Request-scoped tracing, sampled every Nth admitted request. The
    // "recv" phase is the frame's arrival instant; "admit" covers the
    // deadline peek + queue push on the reader thread.
    std::shared_ptr<obs::RequestTrace> RT;
    if (Opts.SampleEvery &&
        ReqSeq.fetch_add(1, std::memory_order_relaxed) % Opts.SampleEvery ==
            0) {
      RT = std::make_shared<obs::RequestTrace>();
      RT->RequestId = Id;
      RT->ArrivalNs = ArrivalNs;
      RT->addPhase("recv", ArrivalNs, 0);
    }
    bool Admitted = Queue.tryPush([this, C, Id, P = std::move(Payload),
                                   ArrivalNs, DeadlineNs, RT]() mutable {
      handleCompile(C, Id, std::move(P), ArrivalNs, DeadlineNs,
                    std::move(RT));
    });
    if (RT)
      RT->addPhase("admit", ArrivalNs, nowNs() - ArrivalNs);
    if (!Admitted) {
      CompileResponse R;
      R.Status = FrameType::Rejected;
      R.Message = "admission queue full (capacity " +
                  std::to_string(Queue.capacity()) + ")";
      bumpCounter("server.rejected");
      respond(C, Id, R.Status, encodeCompileResponse(R));
      continue;
    }
    bumpCounter("server.accepted");
  }
}

namespace {

/// Scope guard completing a request's telemetry: runs after the response
/// is on the wire (end of handleCompile), records the arrival-to-reply
/// latency histogram, maintains the in-flight gauge, and flushes the
/// sampled trace to the Chrome tracer + request log.
struct RequestFinisher {
  std::shared_ptr<obs::RequestTrace> RT;
  int64_t ArrivalNs;
  uint64_t QueueUs = 0;
  const char *Status = "ok";
  bool Cached = false;

  RequestFinisher(std::shared_ptr<obs::RequestTrace> RT, int64_t ArrivalNs)
      : RT(std::move(RT)), ArrivalNs(ArrivalNs) {
    gaugeAdd("server.inflight", 1);
  }
  ~RequestFinisher() {
    int64_t TotalNs = obs::steadyNowNs() - ArrivalNs;
    histRecord("server.latency_us", TotalNs > 0 ? TotalNs / 1000 : 0);
    gaugeAdd("server.inflight", -1);
    if (!RT)
      return;
    RT->emitToTracer();
    obs::RequestLog::global().write(
        *RT, Status, Cached, QueueUs,
        TotalNs > 0 ? static_cast<uint64_t>(TotalNs / 1000) : 0);
  }
};

} // namespace

void Server::handleCompile(const ConnPtr &C, uint32_t Id,
                           std::string Payload, int64_t ArrivalNs,
                           int64_t DeadlineNs,
                           std::shared_ptr<obs::RequestTrace> RT) {
  obs::ScopedSpan Span("serve:request", "request");
  int64_t StartNs = nowNs();
  int64_t QueueWaitNs = StartNs > ArrivalNs ? StartNs - ArrivalNs : 0;
  uint64_t QueueUs = static_cast<uint64_t>(QueueWaitNs / 1000);
  histRecord("server.queue_wait_us", QueueUs);
  if (RT)
    RT->addPhase("queue-wait", ArrivalNs, QueueWaitNs);
  RequestFinisher Fin(RT, ArrivalNs);
  Fin.QueueUs = QueueUs;

  CompileResponse R;
  R.QueueUs = QueueUs;
  if (DeadlineNs && StartNs > DeadlineNs) {
    R.Status = FrameType::DeadlineExceeded;
    R.Message = "deadline exceeded before dispatch";
    bumpCounter("server.deadline_exceeded");
    Fin.Status = "deadline";
    respond(C, Id, R.Status, encodeCompileResponse(R));
    return;
  }

  CompileRequest Req;
  std::string Err;
  if (!decodeCompileRequest(Payload, Req, Err)) {
    R.Status = FrameType::Error;
    R.Message = "bad request: " + Err;
    bumpCounter("server.parse_errors");
    Fin.Status = "error";
    respond(C, Id, R.Status, encodeCompileResponse(R));
    return;
  }
  if (Req.HoldMs) // load-test knob: simulate a slow compilation
    std::this_thread::sleep_for(std::chrono::milliseconds(Req.HoldMs));

  AllocatorKind Kind;
  if (!parseAllocatorName(Req.Allocator, Kind)) {
    R.Status = FrameType::Error;
    R.Message = "unknown allocator '" + Req.Allocator + "'";
    bumpCounter("server.parse_errors");
    Fin.Status = "error";
    respond(C, Id, R.Status, encodeCompileResponse(R));
    return;
  }

  TargetDesc TD = TargetDesc::alphaLike();
  if (Req.Regs)
    TD = TD.withRegLimit(Req.Regs, Req.Regs);
  AllocOptions AO;
  AO.SpillCleanup = Req.Cleanup;
  ExecOptions EO;
  EO.Threads = Opts.ThreadsPerRequest;
  EO.VerifyAlloc = Opts.VerifyAlloc;
  EO.Cache = Req.NoCache ? nullptr : Cache.get();
  EO.ReqTrace = RT.get();

  TextCompileResult TC;
  int64_t CompileStartNs = nowNs();
  try {
    TC = compileTextModule(Req.IRText, TD, Kind, AO, EO, Req.Run);
  } catch (const std::exception &E) {
    TC.Ok = false;
    TC.Error = std::string("internal error: ") + E.what();
  } catch (...) {
    TC.Ok = false;
    TC.Error = "internal error";
  }
  int64_t CompileNs = nowNs() - CompileStartNs;
  histRecord("server.compile_us", CompileNs > 0 ? CompileNs / 1000 : 0);

  if (!TC.Ok) {
    R.Status = FrameType::Error;
    R.Message = TC.Error;
    R.ErrLine = TC.ErrLine;
    R.ErrCol = TC.ErrCol;
    R.ErrToken = TC.ErrToken;
    // Verifier rejections are a distinct failure class from client-side
    // parse/verify mistakes: they mean the *allocator* produced code the
    // validator could not prove correct.
    bumpCounter(TC.Error.rfind("allocation verify:", 0) == 0
                    ? "server.verify_rejects"
                    : "server.parse_errors");
    Fin.Status = "error";
    respond(C, Id, R.Status, encodeCompileResponse(R));
    return;
  }

  R.Status = FrameType::CompileOk;
  R.Allocator = Req.Allocator;
  R.Candidates = TC.Stats.RegCandidates;
  R.Spilled = TC.Stats.SpilledTemps;
  R.StaticSpills = TC.Stats.staticSpillInstrs();
  R.Coalesced = TC.Stats.MovesCoalesced;
  R.Splits = TC.Stats.LifetimeSplits;
  R.AllocSeconds = TC.Stats.AllocSeconds;
  R.Cached = TC.CacheHit;
  if (TC.CacheHit)
    bumpCounter("server.cache_hits");
  if (TC.Ran && TC.Run.Ok) {
    R.HasRun = true;
    R.DynInstrs = TC.Run.Stats.Total;
    R.Cycles = TC.Run.Stats.Cycles;
    R.DynSpills = TC.Run.Stats.spillInstrs();
    R.ReturnValue = TC.Run.ReturnValue;
  }
  R.IRText = TC.AllocatedText;
  bumpCounter("server.completed");
  Fin.Cached = TC.CacheHit;
  if (RT) {
    int64_t ReplyStartNs = nowNs();
    respond(C, Id, R.Status, encodeCompileResponse(R));
    RT->addPhase("reply", ReplyStartNs, nowNs() - ReplyStartNs);
    return;
  }
  respond(C, Id, R.Status, encodeCompileResponse(R));
}

std::string Server::renderStats(const std::string &Format) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  // Pull-updated gauges: refreshed at scrape time, not on a timer.
  CR.gauge("proc.rss_bytes").set(static_cast<int64_t>(currentRssBytes()));
  if (Cache) {
    cache::CacheStats CS = Cache->stats();
    CR.gauge("cache.bytes").set(static_cast<int64_t>(CS.Bytes));
    CR.gauge("cache.entries").set(static_cast<int64_t>(CS.Entries));
  }
  obs::MetricsSnapshot S = CR.metricsSnapshot();
  if (Format == "prom")
    return S.toPrometheus();
  if (Format == "text")
    return S.toText();
  return S.toJson();
}

void Server::respond(const ConnPtr &C, uint32_t Id, FrameType Type,
                     const std::string &Payload) {
  std::string Err;
  std::unique_lock<std::mutex> Lock(C->WriteMu);
  // Counted before the write so the total is never behind what a client
  // has already observed on the wire.
  Served.fetch_add(1, std::memory_order_relaxed);
  if (!C->Sock.sendFrame(Id, Type, Payload, Err)) {
    // Client went away; nothing to do but count it.
    bumpCounter("server.send_errors");
    LSRA_LOG(2, "server: response send failed: %s", Err.c_str());
    return;
  }
  bumpCounter("server.bytes_out", FrameHeaderBytes + Payload.size());
}

void Server::shutdown() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  // 1. Refuse new connections and new requests.
  Stopping.store(true, std::memory_order_release);
  if (AcceptThread.joinable())
    AcceptThread.join();
  L.close();
  // 2. Drain: answer everything already admitted, then retire workers.
  Queue.close();
  if (Workers) {
    Workers->wait();
    Workers.reset();
  }
  // 3. Every admitted request has now been answered, so cut the
  // connections: shutdown(2) wakes readers blocked in recv and makes any
  // client that keeps sending fail fast instead of waiting for a timeout.
  std::vector<std::thread> Rs;
  {
    std::unique_lock<std::mutex> Lock(ReadersMu);
    for (const std::weak_ptr<Conn> &W : Conns)
      if (ConnPtr C = W.lock())
        C->Sock.shutdownBoth();
    Conns.clear();
    Rs.swap(Readers);
  }
  for (std::thread &T : Rs)
    T.join();
  if (OpenedRequestLog) {
    obs::RequestLog::global().close();
    OpenedRequestLog = false;
  }
  LSRA_LOG(1, "server: drained, %llu responses served",
           static_cast<unsigned long long>(Served.load()));
}
