//===- server/Server.cpp --------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include "cache/SharedCache.h"
#include "driver/Pipeline.h"
#include "obs/Counters.h"
#include "obs/Log.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/MemStats.h"

#include <chrono>
#include <future>
#include <sys/epoll.h>

using namespace lsra;
using namespace lsra::server;

namespace {

void bumpCounter(const char *Name, uint64_t N = 1) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.counter(Name).add(N);
}

void histRecord(const char *Name, uint64_t V) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.histogram(Name).record(V);
}

void gaugeAdd(const char *Name, int64_t D) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (CR.enabled())
    CR.gauge(Name).add(D);
}

uint64_t clampedUs(int64_t Ns) {
  return Ns > 0 ? static_cast<uint64_t>(Ns / 1000) : 0;
}

} // namespace

Server::Server(const ServerOptions &O)
    : Opts(O), Queue(O.QueueCapacity ? O.QueueCapacity : 1) {}

Server::~Server() { shutdown(); }

int64_t Server::nowNs() const { return net::EventLoop::nowNs(); }

bool Server::start(std::string &Err) {
  if (Running.load(std::memory_order_acquire)) {
    Err = "server already running";
    return false;
  }
  Stopping.store(false, std::memory_order_release);
  // The telemetry plane is always on while serving: a StatsRequest must be
  // answerable at any moment, so the registry is enabled up front rather
  // than only when a --stats-json sink was requested.
  obs::CounterRegistry::global().enable();
  raiseFdLimit();
  L = Opts.UnixPath.empty() ? Listener::listenTcp(Opts.TcpPort, Err)
                            : Listener::listenUnix(Opts.UnixPath, Err);
  if (!L.valid())
    return false;
  if (!L.setNonBlocking(Err)) {
    L.close();
    return false;
  }
  if (!Opts.RequestLogPath.empty()) {
    if (!obs::RequestLog::global().open(Opts.RequestLogPath)) {
      Err = "cannot open request log '" + Opts.RequestLogPath + "'";
      L.close();
      return false;
    }
    OpenedRequestLog = true;
  }

  if (Opts.CacheBytes) {
    cache::CacheConfig CC;
    CC.MaxBytes = Opts.CacheBytes;
    Cache = std::make_unique<cache::CompileCache>(CC);
    if (!Opts.L2Path.empty()) {
      cache::SharedCacheConfig SC;
      SC.Path = Opts.L2Path;
      SC.MaxBytes = Opts.L2Bytes;
      L2 = cache::SharedCache::open(SC, Err);
      if (!L2) {
        // A misconfigured L2 should be loud, not a silent cold cache.
        Cache.reset();
        L.close();
        if (OpenedRequestLog) {
          obs::RequestLog::global().close();
          OpenedRequestLog = false;
        }
        return false;
      }
      Cache->attachL2(L2.get());
    }
  }

  bool LoopReady =
      Loop.init(Err) &&
      // The listener is just another fd on the loop; its handler accepts
      // until the backlog is empty (level-triggered, so a burst left over
      // re-fires).
      Loop.add(L.fd(), EPOLLIN, [this](uint32_t) { onAcceptable(); }, Err);
  if (!LoopReady) {
    L.close();
    if (OpenedRequestLog) {
      obs::RequestLog::global().close();
      OpenedRequestLog = false;
    }
    return false;
  }
  Loop.setAfterPoll([this] { afterPoll(); });

  unsigned NumWorkers =
      Opts.Workers ? Opts.Workers : ThreadPool::defaultThreadCount();
  Workers = std::make_unique<ThreadPool>(NumWorkers);
  Promoters = std::make_unique<ThreadPool>(1);
  // Long-running drain tasks: each worker blocks on the admission queue
  // and exits when the queue is closed and empty (graceful drain).
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers->submit([this] {
      std::function<void()> Task;
      while (Queue.pop(Task))
        Task();
    });

  Running.store(true, std::memory_order_release);
  LoopThread = std::thread([this] { Loop.run(); });
  LSRA_LOG(1, "server: listening on %s (workers=%u, queue=%u, event loop)",
           Opts.UnixPath.empty()
               ? ("tcp 127.0.0.1:" + std::to_string(L.port())).c_str()
               : Opts.UnixPath.c_str(),
           NumWorkers, Queue.capacity());
  return true;
}

//===----------------------------------------------------------------------===//
// Loop-thread side: accept, decode, admit
//===----------------------------------------------------------------------===//

void Server::onAcceptable() {
  while (true) {
    Socket S = L.acceptNow();
    if (!S.valid())
      return;
    bumpCounter("server.connections");
    uint64_t Id = NextConnId++;
    auto C = std::make_unique<net::Connection>(Loop, S.release(), Id);
    std::string Err;
    bool Started = C->start(
        [this, Id](FrameDecoder::Frame &F) { onFrame(Id, F); },
        [this, Id](const std::string &) { onConnClosed(Id); }, Err);
    if (!Started) {
      LSRA_LOG(2, "server: cannot watch connection: %s", Err.c_str());
      continue; // Connection destructor closes the fd
    }
    gaugeAdd("server.open_connections", 1);
    Conns.emplace(Id, std::move(C));
  }
}

void Server::onConnClosed(uint64_t ConnId) {
  gaugeAdd("server.open_connections", -1);
  // The Connection is still on the stack inside its own close(); defer the
  // erase to the next posted-task drain.
  Loop.post([this, ConnId] { Conns.erase(ConnId); });
}

void Server::onFrame(uint64_t ConnId, FrameDecoder::Frame &F) {
  if (!F.Err.empty()) {
    // Decoder error: the stream is desynchronized. A version mismatch
    // still yields the request id, so the client learns why before the
    // close; any other header damage just drops the connection (the
    // Connection closes itself after this callback).
    if (F.VersionMismatch) {
      bumpCounter("server.version_mismatch");
      CompileResponse R;
      R.Status = FrameType::Error;
      R.Message = F.Err;
      sendToConn(ConnId, F.RequestId, R.Status, encodeCompileResponse(R));
      auto It = Conns.find(ConnId);
      if (It != Conns.end())
        It->second->closeAfterFlush(F.Err);
    }
    LSRA_LOG(2, "server: dropping connection: %s", F.Err.c_str());
    return;
  }
  bumpCounter("server.bytes_in", FrameHeaderBytes + F.Payload.size());
  switch (F.Type) {
  case FrameType::Ping:
    sendToConn(ConnId, F.RequestId, FrameType::Pong, "");
    return;
  case FrameType::StatsRequest: {
    StatsRequest SR;
    std::string SErr;
    if (!decodeStatsRequest(F.Payload, SR, SErr)) {
      CompileResponse R;
      R.Status = FrameType::Error;
      R.Message = "bad stats request: " + SErr;
      sendToConn(ConnId, F.RequestId, R.Status, encodeCompileResponse(R));
      return;
    }
    bumpCounter("server.stats_requests");
    sendToConn(ConnId, F.RequestId, FrameType::StatsReply,
               renderStats(SR.Format));
    return;
  }
  case FrameType::CompileRequest:
    admitCompile(ConnId, F.RequestId, F.Payload);
    return;
  default: {
    CompileResponse R;
    R.Status = FrameType::Error;
    R.Message =
        std::string("unexpected frame type '") + frameTypeName(F.Type) + "'";
    sendToConn(ConnId, F.RequestId, R.Status, encodeCompileResponse(R));
    return;
  }
  }
}

void Server::admitCompile(uint64_t ConnId, uint32_t Id,
                          const std::string &Payload) {
  bumpCounter("server.requests");
  if (Stopping.load(std::memory_order_acquire)) {
    CompileResponse R;
    R.Status = FrameType::ShuttingDown;
    R.Message = "server is draining";
    bumpCounter("server.shutdown_rejected");
    sendToConn(ConnId, Id, R.Status, encodeCompileResponse(R));
    return;
  }

  int64_t ArrivalNs = nowNs();
  std::shared_ptr<obs::RequestTrace> RT;
  if (Opts.SampleEvery && ReqSeq++ % Opts.SampleEvery == 0) {
    RT = std::make_shared<obs::RequestTrace>();
    RT->RequestId = Id;
    RT->ArrivalNs = ArrivalNs;
    RT->addPhase("recv", ArrivalNs, 0);
  }

  // Decode once, at admission: the merge key needs the request fields, and
  // a payload that cannot even be decoded should not cost a queue slot.
  CompileRequest Req;
  std::string Err;
  if (!decodeCompileRequest(Payload, Req, Err)) {
    CompileResponse R;
    R.Status = FrameType::Error;
    R.Message = "bad request: " + Err;
    bumpCounter("server.parse_errors");
    sendToConn(ConnId, Id, R.Status, encodeCompileResponse(R));
    return;
  }
  AllocatorKind Kind;
  if (!parseAllocatorName(Req.Allocator, Kind)) {
    CompileResponse R;
    R.Status = FrameType::Error;
    R.Message = "unknown allocator '" + Req.Allocator + "'";
    bumpCounter("server.parse_errors");
    sendToConn(ConnId, Id, R.Status, encodeCompileResponse(R));
    return;
  }
  // Effective tier policy: the request's v4 override wins over the
  // server-wide default; an unknown spelling is a typed admission error.
  TierPolicy Tier = Opts.Tier;
  if (!Req.Tier.empty() && !parseTierPolicy(Req.Tier, Tier)) {
    CompileResponse R;
    R.Status = FrameType::Error;
    R.Message = "unknown tier policy '" + Req.Tier + "'";
    bumpCounter("server.parse_errors");
    sendToConn(ConnId, Id, R.Status, encodeCompileResponse(R));
    return;
  }

  uint32_t DeadlineMs = Req.DeadlineMs ? Req.DeadlineMs : Opts.DefaultDeadlineMs;
  auto P = std::make_shared<Pending>();
  P->ConnId = ConnId;
  P->FrameId = Id;
  P->ArrivalNs = ArrivalNs;
  P->DeadlineNs = DeadlineMs ? ArrivalNs + int64_t(DeadlineMs) * 1'000'000 : 0;
  P->RT = RT;

  TargetDesc TD = TargetDesc::alphaLike();
  if (Req.Regs)
    TD = TD.withRegLimit(Req.Regs, Req.Regs);
  AllocOptions AO;
  AO.SpillCleanup = Req.Cleanup;

  // The merge key is the compile cache's content x options x target hash,
  // with every request field that changes the response folded in. The
  // deadline is deliberately excluded (it changes when a request is
  // abandoned, not what it computes); HoldMs is deliberately included (two
  // requests with different holds are different work, which the load tests
  // rely on).
  uint64_t OptionsFp = AO.fingerprint();
  OptionsFp = OptionsFp * 1000003u + Req.HoldMs;
  OptionsFp = OptionsFp * 31u + (Req.Run ? 2u : 0u) + (Req.NoCache ? 1u : 0u);
  OptionsFp = OptionsFp * 1000003u + std::hash<std::string>{}(Req.Allocator);
  // The effective tier changes which backend answers, so it splits merge
  // groups — but only here. Cache keys never see the tier: entries are
  // keyed by the allocator that actually produced them.
  OptionsFp = OptionsFp * 1000003u + static_cast<uint64_t>(Tier);
  cache::CacheKey Key =
      cache::makeModuleKey(Req.IRText, OptionsFp, Kind, TD.fingerprint());

  {
    std::lock_guard<std::mutex> Lock(MergeMu);
    auto It = InflightTable.find(Key);
    if (It != InflightTable.end()) {
      // Identical compile already in flight (queued or running): piggyback
      // instead of queueing a duplicate. The waiter costs no queue slot —
      // it adds no compile work.
      P->Merged = true;
      It->second->Waiters.push_back(P);
      bumpCounter("server.accepted");
      bumpCounter("server.merged");
      gaugeAdd("server.inflight", 1);
      if (RT)
        RT->addPhase("admit", ArrivalNs, nowNs() - ArrivalNs);
      armDeadline(P);
      return;
    }
  }

  // Not mergeable: this request needs a queue slot now or at the next
  // batch flush. Count the unflushed batch against capacity so a burst
  // within one poll iteration cannot overshoot the admission bound.
  if (Queue.depth() + Batch.size() >= Queue.capacity()) {
    CompileResponse R;
    R.Status = FrameType::Rejected;
    R.Message = "admission queue full (capacity " +
                std::to_string(Queue.capacity()) + ")";
    bumpCounter("server.rejected");
    sendToConn(ConnId, Id, R.Status, encodeCompileResponse(R));
    return;
  }

  auto E = std::make_shared<Inflight>();
  E->Key = Key;
  E->Req = std::move(Req);
  E->Kind = Kind;
  E->TD = TD;
  E->Tier = Tier;
  E->Leader = P;
  E->LeaderRT = RT;
  E->Waiters.push_back(P);
  {
    std::lock_guard<std::mutex> Lock(MergeMu);
    InflightTable.emplace(Key, E);
  }
  Batch.push_back(std::move(E));
  bumpCounter("server.accepted");
  gaugeAdd("server.inflight", 1);
  if (RT)
    RT->addPhase("admit", ArrivalNs, nowNs() - ArrivalNs);
  armDeadline(P);
  // Large modules never batch — they hold a worker long enough that
  // grouping them only adds head-of-line blocking for whatever shares the
  // dispatch. A full batch flushes immediately too.
  if (Payload.size() >= SmallRequestBytes || Batch.size() >= BatchMax)
    flushBatch();
}

void Server::armDeadline(const PendingPtr &P) {
  if (!P->DeadlineNs)
    return;
  P->TimerId = Loop.addTimerAtNs(P->DeadlineNs, [this, P] { onDeadline(P); });
}

void Server::onDeadline(const PendingPtr &P) {
  if (P->Answered.exchange(true, std::memory_order_acq_rel))
    return; // the worker's fan-out won; this timer is stale
  int64_t Now = nowNs();
  uint64_t WaitedUs = clampedUs(Now - P->ArrivalNs);
  bumpCounter("server.deadline_exceeded");
  histRecord("server.queue_wait_us", WaitedUs);
  CompileResponse R;
  R.Status = FrameType::DeadlineExceeded;
  R.Message = "deadline exceeded before dispatch";
  R.QueueUs = WaitedUs;
  R.Merged = P->Merged;
  if (P->RT) {
    P->RT->addPhase("queue-wait", P->ArrivalNs, Now - P->ArrivalNs);
    P->RT->addPhase("reply", Now, 0);
  }
  finishRequest(P, "deadline", /*Cached=*/false, WaitedUs, Now);
  sendToConn(P->ConnId, P->FrameId, R.Status, encodeCompileResponse(R));
  // The request stays in its Inflight entry; the worker sees Answered and
  // skips it (and skips the whole compile when every waiter expired).
}

void Server::flushBatch() {
  if (Batch.empty())
    return;
  auto B = std::make_shared<std::vector<InflightPtr>>(std::move(Batch));
  Batch.clear();
  unsigned Weight = static_cast<unsigned>(B->size());
  bumpCounter("server.batches");
  histRecord("server.batch.requests", Weight);
  bool Pushed = Queue.tryPush(
      [this, B] {
        for (const InflightPtr &E : *B)
          compileEntry(E);
      },
      Weight);
  if (Pushed)
    return;
  // Only reachable when the queue was closed between admission and flush.
  // Provably not during a normal drain (shutdown's synchronized flush task
  // runs before Queue.close(), and admission bounded depth + batch size
  // below capacity), but a defensive path beats stranded clients: answer
  // every carried request as a drain refusal.
  LSRA_LOG(2, "server: batch push refused, answering %u requests as "
              "shutting down", Weight);
  for (const InflightPtr &E : *B) {
    std::vector<PendingPtr> Waiters;
    {
      std::lock_guard<std::mutex> Lock(MergeMu);
      Waiters = std::move(E->Waiters);
      InflightTable.erase(E->Key);
    }
    CompileResponse R;
    R.Status = FrameType::ShuttingDown;
    R.Message = "server is draining";
    for (const PendingPtr &W : Waiters) {
      if (W->Answered.exchange(true, std::memory_order_acq_rel))
        continue;
      bumpCounter("server.shutdown_rejected");
      gaugeAdd("server.inflight", -1);
      R.Merged = W->Merged;
      if (W->TimerId)
        Loop.cancelTimer(W->TimerId); // flushBatch runs on the loop thread
      sendToConn(W->ConnId, W->FrameId, R.Status, encodeCompileResponse(R));
    }
  }
}

void Server::afterPoll() {
  flushBatch();
  if (!DrainFinal)
    return;
  if (Conns.empty()) {
    Loop.stop();
    return;
  }
  if (nowNs() > DrainDeadlineNs) {
    // A peer that stopped reading cannot hold shutdown hostage: cut the
    // stragglers and let their queued bytes go.
    for (auto &KV : Conns)
      KV.second->close("drain flush timeout");
    Loop.stop();
  }
}

void Server::sendToConn(uint64_t ConnId, uint32_t Id, FrameType Type,
                        const std::string &Payload) {
  // Counted before the write so the total is never behind what a client
  // has already observed on the wire.
  Served.fetch_add(1, std::memory_order_relaxed);
  auto It = Conns.find(ConnId);
  if (It == Conns.end() || It->second->closed()) {
    // Client went away (the mid-merge-disconnect case); nothing to do but
    // count it.
    bumpCounter("server.send_errors");
    return;
  }
  It->second->sendFrame(Id, Type, Payload);
  bumpCounter("server.bytes_out", FrameHeaderBytes + Payload.size());
}

//===----------------------------------------------------------------------===//
// Worker side: compile once, fan out to every waiter
//===----------------------------------------------------------------------===//

void Server::compileEntry(const InflightPtr &E) {
  int64_t TaskStartNs = nowNs();
  if (!E->Promotion) {
    // Every waiter already answered (deadlines fired while queued): the
    // compile would be pure waste, skip it and retire the entry. Promotion
    // entries start with zero waiters by design — their work product is
    // the refreshed cache entry, not a response — so the early-out never
    // applies to them.
    std::lock_guard<std::mutex> Lock(MergeMu);
    bool AnyAlive = false;
    for (const PendingPtr &W : E->Waiters)
      if (!W->Answered.load(std::memory_order_acquire)) {
        AnyAlive = true;
        break;
      }
    if (!AnyAlive) {
      InflightTable.erase(E->Key);
      return;
    }
  }

  obs::ScopedSpan Span(E->Promotion ? "serve:promote" : "serve:request",
                       "request");
  if (E->LeaderRT && E->Leader)
    E->LeaderRT->addPhase("queue-wait", E->Leader->ArrivalNs,
                          TaskStartNs - E->Leader->ArrivalNs);
  if (E->Req.HoldMs) // load-test knob: simulate a slow compilation
    std::this_thread::sleep_for(std::chrono::milliseconds(E->Req.HoldMs));

  ExecOptions EO;
  EO.Threads = Opts.ThreadsPerRequest;
  EO.VerifyAlloc = Opts.VerifyAlloc;
  EO.Cache = E->Req.NoCache ? nullptr : Cache.get();
  EO.ReqTrace = E->LeaderRT.get();
  // A requalification compiles with tiering off: the request's full
  // allocator, inserted under the full-allocator cache key — exactly what
  // a direct (untiered) compile would have produced, byte for byte.
  EO.Tier = E->Promotion ? TierPolicy::Off : E->Tier;
  AllocOptions AO;
  AO.SpillCleanup = E->Req.Cleanup;

  TextCompileResult TC;
  int64_t CompileStartNs = nowNs();
  try {
    TC = compileTextModule(E->Req.IRText, E->TD, E->Kind, AO, EO, E->Req.Run);
  } catch (const std::exception &Ex) {
    TC.Ok = false;
    TC.Error = std::string("internal error: ") + Ex.what();
  } catch (...) {
    TC.Ok = false;
    TC.Error = "internal error";
  }
  int64_t CompileNs = nowNs() - CompileStartNs;
  histRecord("server.compile_us", CompileNs > 0 ? CompileNs / 1000 : 0);

  // Close the entry: joins from here on start a fresh compile (usually a
  // cache hit). Snapshot the waiters under the same lock so a join racing
  // the erase lands wholly in this fan-out or wholly in a new entry.
  std::vector<PendingPtr> Waiters;
  {
    std::lock_guard<std::mutex> Lock(MergeMu);
    Waiters = std::move(E->Waiters);
    InflightTable.erase(E->Key);
  }

  CompileResponse Base;
  const char *CounterName;
  const char *LogStatus;
  if (!TC.Ok) {
    Base.Status = FrameType::Error;
    Base.Message = TC.Error;
    Base.ErrLine = TC.ErrLine;
    Base.ErrCol = TC.ErrCol;
    Base.ErrToken = TC.ErrToken;
    // Verifier rejections are a distinct failure class from client-side
    // parse mistakes: they mean the *allocator* produced code the
    // validator could not prove correct.
    CounterName = TC.Error.rfind("allocation verify:", 0) == 0
                      ? "server.verify_rejects"
                      : "server.parse_errors";
    LogStatus = "error";
  } else {
    Base.Status = FrameType::CompileOk;
    Base.Allocator = E->Req.Allocator;
    Base.Candidates = TC.Stats.RegCandidates;
    Base.Spilled = TC.Stats.SpilledTemps;
    Base.StaticSpills = TC.Stats.staticSpillInstrs();
    Base.Coalesced = TC.Stats.MovesCoalesced;
    Base.Splits = TC.Stats.LifetimeSplits;
    Base.AllocSeconds = TC.Stats.AllocSeconds;
    Base.Cached = TC.CacheHit;
    Base.Tier = E->Promotion ? 1 : TC.Tier;
    if (TC.CacheHit)
      bumpCounter("server.cache_hits");
    if (TC.Ran && TC.Run.Ok) {
      Base.HasRun = true;
      Base.DynInstrs = TC.Run.Stats.Total;
      Base.Cycles = TC.Run.Stats.Cycles;
      Base.DynSpills = TC.Run.Stats.spillInstrs();
      Base.ReturnValue = TC.Run.ReturnValue;
    }
    Base.IRText = TC.AllocatedText;
    CounterName = "server.completed";
    LogStatus = "ok";
  }

  bool Cached = TC.Ok && TC.CacheHit;
  for (const PendingPtr &W : Waiters) {
    if (W->Answered.exchange(true, std::memory_order_acq_rel))
      continue; // expired while we compiled; the timer answered it
    bumpCounter(CounterName);
    answerWaiter(W, Base, LogStatus, Cached, TaskStartNs);
  }

  if (E->Promotion) {
    // The cache refresh (or its failure) is the whole outcome. Promotions
    // never bump server.completed — that counter, with the error classes,
    // must keep summing to server.requests — they get their own tally.
    if (TC.Ok)
      bumpCounter("server.promoted");
    if (E->LeaderRT)
      E->LeaderRT->emitToTracer();
    return;
  }
  if (TC.Ok && TC.Tier == 0) {
    bumpCounter("server.tier0");
    if (E->Tier == TierPolicy::Tier0Promote && !E->Req.NoCache && Cache &&
        !Stopping.load(std::memory_order_acquire))
      schedulePromotion(E);
  }
}

void Server::schedulePromotion(const InflightPtr &E) {
  auto P = std::make_shared<Inflight>();
  P->Key = E->Key;
  P->Req = E->Req;
  P->Kind = E->Kind;
  P->TD = E->TD;
  P->Tier = E->Tier;
  P->Promotion = true;
  if (E->LeaderRT) {
    // The original request was sampled; trace its requalification too so
    // the promote lane shows up in the same tooling.
    auto RT = std::make_shared<obs::RequestTrace>();
    RT->RequestId = E->LeaderRT->RequestId;
    RT->ArrivalNs = nowNs();
    RT->addPhase("promote", RT->ArrivalNs, 0);
    P->LeaderRT = std::move(RT);
  }
  {
    // Registered under the original merge key: a duplicate request arriving
    // mid-requalification piggybacks on the promotion and is answered with
    // the full-allocator result. If an identical request already re-entered
    // and holds the key, skip — that entry will requalify itself.
    std::lock_guard<std::mutex> Lock(MergeMu);
    if (!InflightTable.emplace(P->Key, P).second)
      return;
  }
  Promoters->submit([this, P] { compileEntry(P); });
}

void Server::answerWaiter(const PendingPtr &W, const CompileResponse &Base,
                          const char *LogStatus, bool Cached,
                          int64_t TaskStartNs) {
  // Per-waiter response: identical compile payload, per-request queue wait
  // and merge marker. A merged waiter that arrived after dispatch waited
  // zero queue time by definition.
  CompileResponse R = Base;
  R.Merged = W->Merged;
  uint64_t QueueUs = clampedUs(TaskStartNs - W->ArrivalNs);
  R.QueueUs = QueueUs;
  int64_t Now = nowNs();
  if (W->RT) {
    if (W->Merged)
      W->RT->addPhase("merged", W->ArrivalNs,
                      Now - W->ArrivalNs > 0 ? Now - W->ArrivalNs : 0);
    W->RT->addPhase("reply", Now, 0);
  }
  histRecord("server.queue_wait_us", QueueUs);
  finishRequest(W, LogStatus, Cached, QueueUs, Now);
  std::string Payload = encodeCompileResponse(R);
  FrameType Type = R.Status;
  uint64_t ConnId = W->ConnId;
  uint32_t FrameId = W->FrameId;
  uint64_t TimerId = W->TimerId;
  Loop.post([this, ConnId, FrameId, Type, TimerId,
             Payload = std::move(Payload)] {
    if (TimerId)
      Loop.cancelTimer(TimerId);
    sendToConn(ConnId, FrameId, Type, Payload);
  });
}

void Server::finishRequest(const PendingPtr &W, const char *Status,
                           bool Cached, uint64_t QueueUs, int64_t AnsweredNs) {
  int64_t TotalNs = AnsweredNs - W->ArrivalNs;
  histRecord("server.latency_us", clampedUs(TotalNs));
  gaugeAdd("server.inflight", -1);
  if (!W->RT)
    return;
  W->RT->emitToTracer();
  obs::RequestLog::global().write(*W->RT, Status, Cached, QueueUs,
                                  clampedUs(TotalNs));
}

std::string Server::renderStats(const std::string &Format) {
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  // Pull-updated gauges: refreshed at scrape time, not on a timer.
  CR.gauge("proc.rss_bytes").set(static_cast<int64_t>(currentRssBytes()));
  if (Cache) {
    cache::CacheStats CS = Cache->stats();
    CR.gauge("cache.bytes").set(static_cast<int64_t>(CS.Bytes));
    CR.gauge("cache.entries").set(static_cast<int64_t>(CS.Entries));
  }
  if (L2) {
    cache::L2Stats LS = L2->stats();
    CR.gauge("cache.l2.bytes").set(static_cast<int64_t>(LS.Bytes));
    CR.gauge("cache.l2.entries").set(static_cast<int64_t>(LS.Entries));
    CR.gauge("cache.l2.capacity_bytes")
        .set(static_cast<int64_t>(LS.CapacityBytes));
  }
  obs::MetricsSnapshot S = CR.metricsSnapshot();
  if (Format == "prom")
    return S.toPrometheus();
  if (Format == "text")
    return S.toText();
  return S.toJson();
}

void Server::shutdown() {
  if (!Running.exchange(false, std::memory_order_acq_rel))
    return;
  // 1. Refuse new requests; stop accepting; flush any half-built batch so
  // everything admitted is in the queue. Synchronized through the loop so
  // no admission races the close.
  Stopping.store(true, std::memory_order_release);
  {
    std::promise<void> Done;
    std::future<void> F = Done.get_future();
    Loop.post([this, &Done] {
      flushBatch();
      Loop.del(L.fd());
      Done.set_value();
    });
    F.wait();
  }
  // 2. Drain: answer everything already admitted, then retire workers.
  Queue.close();
  if (Workers) {
    Workers->wait();
    Workers.reset();
  }
  // Workers are quiet, so no new promotions can be scheduled; drain the
  // lane so every pending requalification lands in the cache before exit.
  if (Promoters) {
    Promoters->wait();
    Promoters.reset();
  }
  // Workers are quiet, so nothing enqueues L2 publishes any more; land
  // what is queued so another process (or our next life) can hit it.
  if (L2)
    L2->drainPublishes();
  // 3. Workers are done, so every response is either on the wire or in the
  // loop's posted queue (FIFO: posted before this sentinel, runs before
  // it). Flush each connection's write queue, then stop the loop; a peer
  // that won't read gets cut at the drain deadline in afterPoll().
  Loop.post([this] {
    DrainFinal = true;
    DrainDeadlineNs = nowNs() + DrainFlushTimeoutNs;
    if (Conns.empty()) {
      Loop.stop();
      return;
    }
    for (auto &KV : Conns)
      KV.second->closeAfterFlush("server drained");
  });
  if (LoopThread.joinable())
    LoopThread.join();
  Conns.clear();
  Batch.clear();
  {
    std::lock_guard<std::mutex> Lock(MergeMu);
    InflightTable.clear();
  }
  L.close();
  if (OpenedRequestLog) {
    obs::RequestLog::global().close();
    OpenedRequestLog = false;
  }
  LSRA_LOG(1, "server: drained, %llu responses served",
           static_cast<unsigned long long>(Served.load()));
}
