//===- server/Socket.cpp --------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace lsra;
using namespace lsra::server;

namespace {

std::string errnoString(const char *What) {
  return std::string(What) + ": " + std::strerror(errno);
}

/// Write all of [Buf, Buf+N); retries on EINTR, suppresses SIGPIPE, and
/// waits for writability on EAGAIN so the same path is correct for
/// sockets in non-blocking mode or with a tiny SO_SNDBUF: a short write
/// resumes exactly where it stopped instead of tearing the frame.
bool writeAll(int Fd, const char *Buf, size_t N, std::string &Err) {
  while (N > 0) {
    ssize_t W = ::send(Fd, Buf, N, MSG_NOSIGNAL);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        struct pollfd P = {Fd, POLLOUT, 0};
        int Rc = ::poll(&P, 1, -1);
        if (Rc < 0 && errno != EINTR) {
          Err = errnoString("poll(out)");
          return false;
        }
        if (Rc > 0 && (P.revents & (POLLERR | POLLNVAL))) {
          Err = "socket error while waiting to write";
          return false;
        }
        continue;
      }
      Err = errnoString("send");
      return false;
    }
    Buf += W;
    N -= static_cast<size_t>(W);
  }
  return true;
}

/// Read exactly N bytes; false on EOF or error.
bool readAll(int Fd, char *Buf, size_t N, std::string &Err) {
  while (N > 0) {
    ssize_t R = ::recv(Fd, Buf, N, 0);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      Err = errnoString("recv");
      return false;
    }
    if (R == 0) {
      Err = "connection closed mid-frame";
      return false;
    }
    Buf += R;
    N -= static_cast<size_t>(R);
  }
  return true;
}

/// Wait for readability. Returns 1 ready, 0 timeout, -1 error/hangup-with-
/// nothing-to-read (POLLHUP with pending data still reports POLLIN).
int pollIn(int Fd, int TimeoutMs) {
  struct pollfd P = {Fd, POLLIN, 0};
  while (true) {
    int Rc = ::poll(&P, 1, TimeoutMs);
    if (Rc < 0) {
      if (errno == EINTR)
        continue;
      return -1;
    }
    if (Rc == 0)
      return 0;
    return (P.revents & (POLLIN | POLLHUP)) ? 1 : -1;
  }
}

} // namespace

void lsra::server::raiseFdLimit() {
  struct rlimit RL;
  if (::getrlimit(RLIMIT_NOFILE, &RL) != 0)
    return;
  if (RL.rlim_cur >= RL.rlim_max)
    return;
  RL.rlim_cur = RL.rlim_max;
  ::setrlimit(RLIMIT_NOFILE, &RL);
}

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

void Socket::shutdownBoth() {
  if (Fd >= 0)
    ::shutdown(Fd, SHUT_RDWR);
}

bool Socket::setNonBlocking(bool On, std::string &Err) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0) {
    Err = errnoString("fcntl(F_GETFL)");
    return false;
  }
  int NewFlags = On ? (Flags | O_NONBLOCK) : (Flags & ~O_NONBLOCK);
  if (::fcntl(Fd, F_SETFL, NewFlags) != 0) {
    Err = errnoString("fcntl(F_SETFL)");
    return false;
  }
  return true;
}

bool Socket::setSendBufferBytes(int Bytes) {
  return ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Bytes, sizeof(Bytes)) == 0;
}

Socket Socket::connectUnix(const std::string &Path, std::string &Err) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return Socket();
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    Err = "unix socket path too long: " + Path;
    return Socket();
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Err = errnoString("connect") + " (" + Path + ")";
    ::close(Fd);
    return Socket();
  }
  return Socket(Fd);
}

Socket Socket::connectTcp(const std::string &Host, uint16_t Port,
                          std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return Socket();
  }
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    Err = "bad IPv4 address: " + Host;
    return Socket();
  }
  if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                sizeof(Addr)) != 0) {
    Err = errnoString("connect") + " (" + Host + ":" + std::to_string(Port) +
          ")";
    ::close(Fd);
    return Socket();
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Socket(Fd);
}

bool Socket::sendFrame(uint32_t RequestId, FrameType Type,
                       const std::string &Payload, std::string &Err) {
  if (Fd < 0) {
    Err = "socket not connected";
    return false;
  }
  if (Payload.size() > MaxFramePayload) {
    Err = "frame payload too large";
    return false;
  }
  std::string Header = encodeFrameHeader(
      static_cast<uint32_t>(Payload.size()), RequestId, Type);
  // One gathered write keeps a frame contiguous on the wire without
  // requiring atomicity from the peer.
  std::string Wire;
  Wire.reserve(Header.size() + Payload.size());
  Wire += Header;
  Wire += Payload;
  return writeAll(Fd, Wire.data(), Wire.size(), Err);
}

Socket::RecvStatus Socket::recvFrame(uint32_t &RequestId, FrameType &Type,
                                     std::string &Payload, int TimeoutMs,
                                     std::string &Err) {
  if (Fd < 0) {
    Err = "socket not connected";
    return RecvStatus::Error;
  }
  int Ready = pollIn(Fd, TimeoutMs);
  if (Ready == 0)
    return RecvStatus::Timeout;
  if (Ready < 0) {
    Err = "poll failed or connection reset";
    return RecvStatus::Error;
  }
  unsigned char Header[FrameHeaderBytes];
  // Peek the first byte to distinguish orderly EOF from a torn frame.
  ssize_t R = ::recv(Fd, Header, 1, 0);
  if (R == 0)
    return RecvStatus::Closed;
  if (R < 0) {
    Err = errnoString("recv");
    return RecvStatus::Error;
  }
  if (!readAll(Fd, reinterpret_cast<char *>(Header) + 1,
               FrameHeaderBytes - 1, Err))
    return RecvStatus::Error;
  uint32_t Len = 0;
  if (!decodeFrameHeader(Header, Len, RequestId, Type, Err))
    return RecvStatus::Error;
  Payload.resize(Len);
  if (Len && !readAll(Fd, Payload.data(), Len, Err))
    return RecvStatus::Error;
  return RecvStatus::Ok;
}

Listener::Listener(Listener &&O) noexcept
    : Fd(O.Fd), Port(O.Port), Path(std::move(O.Path)) {
  O.Fd = -1;
  O.Path.clear();
}

Listener &Listener::operator=(Listener &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Port = O.Port;
    Path = std::move(O.Path);
    O.Fd = -1;
    O.Path.clear();
  }
  return *this;
}

void Listener::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  if (!Path.empty()) {
    ::unlink(Path.c_str());
    Path.clear();
  }
}

Listener Listener::listenUnix(const std::string &Path, std::string &Err) {
  Listener L;
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return L;
  }
  struct sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    ::close(Fd);
    Err = "unix socket path too long: " + Path;
    return L;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  ::unlink(Path.c_str()); // replace a stale socket from a dead server
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr)) !=
          0 ||
      ::listen(Fd, SOMAXCONN) != 0) {
    Err = errnoString("bind/listen") + " (" + Path + ")";
    ::close(Fd);
    return L;
  }
  L.Fd = Fd;
  L.Path = Path;
  return L;
}

Listener Listener::listenTcp(uint16_t Port, std::string &Err) {
  Listener L;
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = errnoString("socket");
    return L;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr)) !=
          0 ||
      ::listen(Fd, SOMAXCONN) != 0) {
    Err = errnoString("bind/listen") + " (port " + std::to_string(Port) + ")";
    ::close(Fd);
    return L;
  }
  socklen_t AddrLen = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                    &AddrLen) == 0)
    L.Port = ntohs(Addr.sin_port);
  L.Fd = Fd;
  return L;
}

Socket Listener::accept(int TimeoutMs) {
  if (Fd < 0)
    return Socket();
  if (pollIn(Fd, TimeoutMs) != 1)
    return Socket();
  int CFd = ::accept(Fd, nullptr, nullptr);
  if (CFd < 0)
    return Socket();
  return Socket(CFd);
}

Socket Listener::acceptNow() {
  if (Fd < 0)
    return Socket();
  int CFd = ::accept4(Fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (CFd < 0)
    return Socket();
  return Socket(CFd);
}

bool Listener::setNonBlocking(std::string &Err) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags < 0 || ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) != 0) {
    Err = errnoString("fcntl(listener O_NONBLOCK)");
    return false;
  }
  return true;
}
