//===- server/Client.cpp --------------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

using namespace lsra;
using namespace lsra::server;

Client Client::connectUnix(const std::string &Path, std::string &Err) {
  Client C;
  C.Sock = Socket::connectUnix(Path, Err);
  return C;
}

Client Client::connectTcp(const std::string &Host, uint16_t Port,
                          std::string &Err) {
  Client C;
  C.Sock = Socket::connectTcp(Host, Port, Err);
  return C;
}

bool Client::compile(const CompileRequest &Req, CompileResponse &Out,
                     std::string &Err, int TimeoutMs) {
  uint32_t Id = NextId++;
  std::string Payload = encodeCompileRequest(Req);
  if (!Sock.sendFrame(Id, FrameType::CompileRequest, Payload, Err))
    return false;
  BytesSent += FrameHeaderBytes + Payload.size();

  while (true) {
    uint32_t GotId = 0;
    FrameType Type;
    std::string Resp;
    Socket::RecvStatus St = Sock.recvFrame(GotId, Type, Resp, TimeoutMs, Err);
    if (St == Socket::RecvStatus::Timeout) {
      Err = "timed out waiting for response";
      return false;
    }
    if (St == Socket::RecvStatus::Closed) {
      Err = "server closed the connection";
      return false;
    }
    if (St == Socket::RecvStatus::Error)
      return false;
    BytesReceived += FrameHeaderBytes + Resp.size();
    if (GotId != Id)
      continue; // stale response from an abandoned request; skip
    return decodeCompileResponse(Type, Resp, Out, Err);
  }
}

bool Client::stats(const std::string &Format, std::string &Out,
                   std::string &Err, int TimeoutMs) {
  uint32_t Id = NextId++;
  StatsRequest Req;
  Req.Format = Format;
  std::string Payload = encodeStatsRequest(Req);
  if (!Sock.sendFrame(Id, FrameType::StatsRequest, Payload, Err))
    return false;
  BytesSent += FrameHeaderBytes + Payload.size();
  while (true) {
    uint32_t GotId = 0;
    FrameType Type;
    std::string Resp;
    Socket::RecvStatus St = Sock.recvFrame(GotId, Type, Resp, TimeoutMs, Err);
    if (St == Socket::RecvStatus::Timeout) {
      Err = "timed out waiting for stats reply";
      return false;
    }
    if (St == Socket::RecvStatus::Closed) {
      Err = "server closed the connection";
      return false;
    }
    if (St == Socket::RecvStatus::Error)
      return false;
    BytesReceived += FrameHeaderBytes + Resp.size();
    if (GotId != Id)
      continue;
    if (Type != FrameType::StatsReply) {
      Err = std::string("unexpected ") + frameTypeName(Type) +
            " reply to stats request: " + Resp;
      return false;
    }
    Out = std::move(Resp);
    return true;
  }
}

bool Client::ping(std::string &Err, int TimeoutMs) {
  uint32_t Id = NextId++;
  if (!Sock.sendFrame(Id, FrameType::Ping, "", Err))
    return false;
  BytesSent += FrameHeaderBytes;
  uint32_t GotId = 0;
  FrameType Type;
  std::string Resp;
  Socket::RecvStatus St = Sock.recvFrame(GotId, Type, Resp, TimeoutMs, Err);
  if (St != Socket::RecvStatus::Ok) {
    if (Err.empty())
      Err = "no pong";
    return false;
  }
  BytesReceived += FrameHeaderBytes + Resp.size();
  return Type == FrameType::Pong && GotId == Id;
}
