//===- server/RequestQueue.cpp --------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/RequestQueue.h"

using namespace lsra::server;

bool RequestQueue::tryPush(std::function<void()> Task) {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Closed || Tasks.size() >= Cap)
      return false;
    Tasks.push_back(std::move(Task));
  }
  HasWork.notify_one();
  return true;
}

bool RequestQueue::pop(std::function<void()> &Task) {
  std::unique_lock<std::mutex> Lock(Mu);
  HasWork.wait(Lock, [this] { return Closed || !Tasks.empty(); });
  if (Tasks.empty())
    return false; // closed and fully drained
  Task = std::move(Tasks.front());
  Tasks.pop_front();
  return true;
}

void RequestQueue::close() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Closed = true;
  }
  HasWork.notify_all();
}

bool RequestQueue::closed() const {
  std::unique_lock<std::mutex> Lock(Mu);
  return Closed;
}

unsigned RequestQueue::depth() const {
  std::unique_lock<std::mutex> Lock(Mu);
  return static_cast<unsigned>(Tasks.size());
}
