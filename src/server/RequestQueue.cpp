//===- server/RequestQueue.cpp --------------------------------------------===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//

#include "server/RequestQueue.h"

#include "obs/Counters.h"
#include "obs/Metrics.h"

using namespace lsra::server;

namespace {

/// Publish the post-transition depth (in requests). The gauge tracks every
/// enqueue and dequeue (not just dispatch-time samples), so a scrape
/// between dispatches sees the true depth; the windowed histogram records
/// the depth each admission observed. The enqueued/dequeued counters move
/// by the task's weight so they stay request-denominated under batching.
void noteQueueTransition(unsigned Depth, unsigned Weight, bool Enqueued) {
  lsra::obs::CounterRegistry &CR = lsra::obs::CounterRegistry::global();
  if (!CR.enabled())
    return;
  CR.counter(Enqueued ? "server.enqueued" : "server.dequeued").add(Weight);
  CR.gauge("server.queue_depth").set(Depth);
  if (Enqueued)
    CR.histogram("server.queue_depth.dist").record(Depth);
}

} // namespace

bool RequestQueue::tryPush(std::function<void()> Task, unsigned Weight) {
  if (Weight == 0)
    Weight = 1;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    if (Closed || WeightSum >= Cap)
      return false;
    WeightSum += Weight;
    Tasks.emplace_back(std::move(Task), Weight);
    // Published under the queue lock so the gauge transitions in the same
    // order as the depth it reports.
    noteQueueTransition(WeightSum, Weight, /*Enqueued=*/true);
  }
  HasWork.notify_one();
  return true;
}

bool RequestQueue::pop(std::function<void()> &Task) {
  std::unique_lock<std::mutex> Lock(Mu);
  HasWork.wait(Lock, [this] { return Closed || !Tasks.empty(); });
  if (Tasks.empty())
    return false; // closed and fully drained
  Task = std::move(Tasks.front().first);
  unsigned Weight = Tasks.front().second;
  Tasks.pop_front();
  WeightSum -= Weight;
  noteQueueTransition(WeightSum, Weight, /*Enqueued=*/false);
  return true;
}

void RequestQueue::close() {
  {
    std::unique_lock<std::mutex> Lock(Mu);
    Closed = true;
  }
  HasWork.notify_all();
}

bool RequestQueue::closed() const {
  std::unique_lock<std::mutex> Lock(Mu);
  return Closed;
}

unsigned RequestQueue::depth() const {
  std::unique_lock<std::mutex> Lock(Mu);
  return WeightSum;
}
