//===- server/Socket.h - Frame transport over unix/TCP sockets -*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII layer over POSIX stream sockets plus whole-frame send/recv in
/// the server/Protocol.h framing. Two transports: unix-domain sockets (the
/// default — no port allocation, filesystem permissions) and loopback/LAN
/// TCP. Receives poll() with a timeout before the first header byte so
/// server threads can interleave blocking reads with shutdown checks; once
/// a frame has started arriving it is read to completion.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_SOCKET_H
#define LSRA_SERVER_SOCKET_H

#include "server/Protocol.h"

#include <cstdint>
#include <string>

namespace lsra {
namespace server {

/// Lift RLIMIT_NOFILE's soft limit to the hard limit, best-effort: both
/// ends of a 10k-connection load test need more fds than the usual
/// `ulimit -n 1024` default allows. Failure just leaves the old limit.
void raiseFdLimit();

/// Move-only owner of one connected stream-socket fd.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  static Socket connectUnix(const std::string &Path, std::string &Err);
  static Socket connectTcp(const std::string &Host, uint16_t Port,
                           std::string &Err);

  /// Write one complete frame (header + payload). False on any I/O error
  /// (including a peer that hung up); SIGPIPE is suppressed.
  bool sendFrame(uint32_t RequestId, FrameType Type,
                 const std::string &Payload, std::string &Err);

  enum class RecvStatus {
    Ok,      ///< one frame delivered
    Timeout, ///< nothing arrived within the timeout
    Closed,  ///< orderly EOF before a new frame began
    Error,   ///< protocol or I/O error (Err set)
  };

  /// Read one complete frame. \p TimeoutMs bounds the wait for the first
  /// header byte only (< 0 = wait forever).
  RecvStatus recvFrame(uint32_t &RequestId, FrameType &Type,
                       std::string &Payload, int TimeoutMs, std::string &Err);

  /// Force-wake any thread blocked on this socket (shutdown(2) RDWR).
  void shutdownBoth();

  /// Switch O_NONBLOCK on or off (event-loop connections run non-blocking;
  /// the synchronous Client keeps the default blocking mode).
  bool setNonBlocking(bool On, std::string &Err);

  /// Shrink/grow the kernel send buffer (SO_SNDBUF). Used by tests to
  /// force partial writes; the kernel doubles and clamps the value, so
  /// treat it as a hint. Returns false if setsockopt failed.
  bool setSendBufferBytes(int Bytes);

  /// Detach and return the fd without closing it (ownership transfer to
  /// an event-loop connection).
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }

  void close();

private:
  int Fd = -1;
};

/// Listening socket bound to a unix path or a TCP port.
class Listener {
public:
  Listener() = default;
  ~Listener() { close(); }
  Listener(Listener &&O) noexcept;
  Listener &operator=(Listener &&O) noexcept;
  Listener(const Listener &) = delete;
  Listener &operator=(const Listener &) = delete;

  /// Bind + listen on \p Path, replacing a stale socket file if present.
  static Listener listenUnix(const std::string &Path, std::string &Err);

  /// Bind + listen on 127.0.0.1:\p Port (0 = ephemeral; see port()).
  static Listener listenTcp(uint16_t Port, std::string &Err);

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }
  uint16_t port() const { return Port; }
  const std::string &unixPath() const { return Path; }

  /// Accept one connection, waiting at most \p TimeoutMs (< 0 = forever).
  /// Returns an invalid Socket on timeout or close().
  Socket accept(int TimeoutMs);

  /// Non-blocking accept for event-loop use: returns an invalid Socket
  /// immediately when no connection is pending (the loop's readiness
  /// notification replaces the poll). The accepted fd is already in
  /// non-blocking close-on-exec mode.
  Socket acceptNow();

  /// Put the listening fd itself into non-blocking mode (required before
  /// registering it with an event loop and using acceptNow()).
  bool setNonBlocking(std::string &Err);

  /// Close the listening fd and unlink the unix socket file.
  void close();

private:
  int Fd = -1;
  uint16_t Port = 0;
  std::string Path;
};

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_SOCKET_H
