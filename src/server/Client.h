//===- server/Client.h - Synchronous compile-service client ----*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client for the compile server: connect once, then issue
/// compile() / ping() calls. One outstanding request per Client at a time
/// (the load generator runs one Client per connection-thread); the
/// response is matched to the request by the echoed request id.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_CLIENT_H
#define LSRA_SERVER_CLIENT_H

#include "server/Protocol.h"
#include "server/Socket.h"

#include <cstdint>
#include <string>

namespace lsra {
namespace server {

class Client {
public:
  Client() = default;

  static Client connectUnix(const std::string &Path, std::string &Err);
  static Client connectTcp(const std::string &Host, uint16_t Port,
                           std::string &Err);

  bool valid() const { return Sock.valid(); }

  /// Send \p Req and block for its response. False (with \p Err) on
  /// transport failure or timeout; a typed error *response* (Rejected,
  /// DeadlineExceeded, ...) is a successful call with Out.Status set.
  /// \p TimeoutMs bounds the wait for the response (< 0 = forever).
  bool compile(const CompileRequest &Req, CompileResponse &Out,
               std::string &Err, int TimeoutMs = -1);

  /// Liveness probe; false on transport failure or timeout.
  bool ping(std::string &Err, int TimeoutMs = -1);

  /// Fetch a telemetry snapshot rendered as \p Format ("json", "prom", or
  /// "text"); the reply payload lands verbatim in \p Out.
  bool stats(const std::string &Format, std::string &Out, std::string &Err,
             int TimeoutMs = -1);

  /// Seed the request-id sequence. The load generator gives each
  /// connection a disjoint id range so per-request records from different
  /// connections can be joined against the server's request log.
  void setNextId(uint32_t Id) { NextId = Id; }

  /// Bytes moved over this connection (headers included).
  uint64_t bytesSent() const { return BytesSent; }
  uint64_t bytesReceived() const { return BytesReceived; }

  void close() { Sock.close(); }

private:
  Socket Sock;
  uint32_t NextId = 1;
  uint64_t BytesSent = 0;
  uint64_t BytesReceived = 0;
};

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_CLIENT_H
