//===- server/RequestQueue.h - Bounded admission queue ---------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's admission control: a bounded MPMC queue of request tasks
/// between the event loop (producer) and compile workers (consumers).
/// The bound is the load-shedding mechanism — tryPush() fails immediately
/// when the queue is full, and the admission path answers with a typed
/// Rejected frame instead of letting latency grow without limit (the
/// 503 analogue).
///
/// Tasks carry a weight, in requests: the event loop batches several small
/// requests into one worker dispatch, so capacity, depth, and the
/// enqueued/dequeued counters are all denominated in requests (weight
/// units), not tasks — a batch of 5 consumes 5 slots and the depth gauge
/// reports request counts regardless of how they were grouped.
///
/// close() starts a graceful drain: producers are refused from then on,
/// consumers keep draining what was already admitted, and pop() returns
/// false only once the queue is both closed and empty. That gives the
/// shutdown ordering the server wants for free: every admitted request is
/// answered, every unadmitted one is refused.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_REQUESTQUEUE_H
#define LSRA_SERVER_REQUESTQUEUE_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace lsra {
namespace server {

class RequestQueue {
public:
  explicit RequestQueue(unsigned Capacity)
      : Cap(Capacity ? Capacity : 1) {}

  /// Admit \p Task carrying \p Weight requests. False when the weighted
  /// depth would exceed capacity or the queue is closed — the caller owes
  /// each carried request a Rejected/ShuttingDown response.
  bool tryPush(std::function<void()> Task, unsigned Weight = 1);

  /// Block until a task is available or the drain completes. False means
  /// closed-and-empty: the consumer should exit.
  bool pop(std::function<void()> &Task);

  /// Refuse new work; wake consumers so they can drain and exit.
  void close();

  bool closed() const;
  /// Queued requests (sum of task weights), not task count.
  unsigned depth() const;
  unsigned capacity() const { return Cap; }

private:
  const unsigned Cap;
  mutable std::mutex Mu;
  std::condition_variable HasWork;
  std::deque<std::pair<std::function<void()>, unsigned>> Tasks;
  unsigned WeightSum = 0;
  bool Closed = false;
};

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_REQUESTQUEUE_H
