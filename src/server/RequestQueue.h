//===- server/RequestQueue.h - Bounded admission queue ---------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The server's admission control: a bounded MPMC queue of request tasks
/// between connection readers (producers) and compile workers (consumers).
/// The bound is the load-shedding mechanism — tryPush() fails immediately
/// when the queue is full, and the reader answers with a typed Rejected
/// frame instead of letting latency grow without limit (the 503 analogue).
///
/// close() starts a graceful drain: producers are refused from then on,
/// consumers keep draining what was already admitted, and pop() returns
/// false only once the queue is both closed and empty. That gives the
/// shutdown ordering the server wants for free: every admitted request is
/// answered, every unadmitted one is refused.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_REQUESTQUEUE_H
#define LSRA_SERVER_REQUESTQUEUE_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>

namespace lsra {
namespace server {

class RequestQueue {
public:
  explicit RequestQueue(unsigned Capacity)
      : Cap(Capacity ? Capacity : 1) {}

  /// Admit \p Task. False when the queue is at capacity or closed — the
  /// caller owes the client a Rejected/ShuttingDown response.
  bool tryPush(std::function<void()> Task);

  /// Block until a task is available or the drain completes. False means
  /// closed-and-empty: the consumer should exit.
  bool pop(std::function<void()> &Task);

  /// Refuse new work; wake consumers so they can drain and exit.
  void close();

  bool closed() const;
  unsigned depth() const;
  unsigned capacity() const { return Cap; }

private:
  const unsigned Cap;
  mutable std::mutex Mu;
  std::condition_variable HasWork;
  std::deque<std::function<void()>> Tasks;
  bool Closed = false;
};

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_REQUESTQUEUE_H
