//===- server/Server.h - Event-driven compile server -----------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation-as-a-service: a socket server that compiles textual-IR
/// modules through the standard pipeline (driver/Pipeline.h) and returns
/// the allocated module plus statistics. The paper's compile-time focus
/// (Table 3) is what makes this viable — linear-scan allocation is fast
/// enough to sit on a request path, which is precisely the contrast the
/// combinatorial-allocation literature draws against solver-based
/// allocators.
///
/// Threading model (event-driven, since the epoll rewrite):
///   - ONE loop thread (net/EventLoop) owns the listener and every
///     connection: accepts, incremental frame decode, admission control,
///     deadline timers, and all socket writes. Workers never touch an fd;
///     they post completion closures back to the loop. One thread
///     multiplexing every socket is what lifts the connection ceiling
///     from "a few hundred reader threads" to tens of thousands of
///     non-blocking fds;
///   - a fixed support/ThreadPool of compile workers draining the bounded
///     server/RequestQueue (unchanged from the thread-per-connection era:
///     compiles are where the cores go).
///
/// Connections are pipelined: a client may keep any number of requests in
/// flight; responses are written in completion order behind a
/// per-connection write queue and matched by request id.
///
/// Identical in-flight requests merge: admission keys every compile by the
/// cache's 128-bit content x options x target hash, and a request whose
/// key is already in flight joins that entry as a waiter instead of
/// queueing a duplicate compile. The one compile fans its reply out to
/// every waiter (byte-identical payloads; per-waiter queue_us and a
/// merged=1 marker). A waiter whose connection dies mid-merge is simply
/// skipped at fan-out — the compile and the other waiters are unaffected.
/// Small requests admitted in the same poll iteration batch into a single
/// worker dispatch (the queue is request-weighted, so admission math is
/// unchanged).
///
/// Overload and lifecycle policy, in order of evaluation per request:
///   - drain in progress        → ShuttingDown frame, no admission;
///   - payload fails to decode / unknown allocator → Error frame at
///                                admission (nothing is queued);
///   - admission queue full     → Rejected frame (load shed, 503-style);
///   - deadline expires while queued or merged → DeadlineExceeded frame
///                                from the loop's timer wheel (the compile
///                                is skipped when every waiter expired);
///   - parse/verify failure in the worker → Error frame with the parser's
///                                line/column/token diagnostics;
///   - otherwise                → CompileOk with allocated IR + stats.
///
/// Telemetry is always on: start() enables the counter registry, so the
/// server.* counters (accepted, completed, rejected, deadline_exceeded,
/// parse_errors, merged, batches, bytes_in, bytes_out, ...), the
/// rolling-window histograms (server.latency_us, server.queue_wait_us,
/// server.compile_us, server.queue_depth.dist, server.batch.requests) and
/// the gauges (server.queue_depth, server.inflight,
/// server.open_connections, proc.rss_bytes, cache.bytes) are live for the
/// whole serve. Any connected client can fetch them mid-load with a
/// StatsRequest frame (`lsra stats` / `lsra top`), and the same data
/// lands in the usual --stats-json JSONL snapshot at exit.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_SERVER_H
#define LSRA_SERVER_SERVER_H

#include "cache/CompileCache.h"
#include "net/Connection.h"
#include "net/EventLoop.h"
#include "regalloc/Allocator.h"
#include "server/RequestQueue.h"
#include "server/Socket.h"
#include "support/ThreadPool.h"
#include "target/Target.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace lsra {

namespace obs {
struct RequestTrace;
} // namespace obs

namespace server {

struct ServerOptions {
  /// Unix-domain socket path; when empty, a loopback TCP listener on
  /// TcpPort is used instead.
  std::string UnixPath;
  uint16_t TcpPort = 0; ///< 0 = ephemeral (read back via Server::port())

  unsigned Workers = 0;       ///< compile workers (0 = hardware threads)
  unsigned QueueCapacity = 64; ///< admission bound, in requests (shed above)

  /// Deadline applied to requests that carry none (0 = unlimited).
  uint32_t DefaultDeadlineMs = 0;

  /// Threads used *inside* one request's compileModule. Per-request
  /// parallelism rarely pays once the server itself is saturated, so the
  /// default is sequential per request, parallel across requests.
  unsigned ThreadsPerRequest = 1;

  /// Run the allocation verifier (check/Verifier) on every compile and
  /// reject unprovable allocations with a typed "allocation verify:" error
  /// response instead of returning wrong code.
  bool VerifyAlloc = false;

  /// Default tiered-serving policy (requests may override with the v4
  /// `tier` wire field). Under Tier0Only/Tier0Promote a cold compile is
  /// answered by the EBB tier-0 backend (response tier=0); Tier0Promote
  /// additionally enqueues a background requalification on a dedicated
  /// low-priority lane that recompiles with the request's full allocator
  /// and refreshes L1/L2, so warm traffic converges to full-quality code
  /// (server.tier0 / server.promoted counters, `promote` trace phase).
  TierPolicy Tier = TierPolicy::Off;

  /// Budget of the server's content-addressed compile cache, in bytes
  /// (0 = caching off). Requests can opt out individually with the wire
  /// field no_cache=1.
  size_t CacheBytes = 64u << 20;

  /// Shared-memory L2 cache segment shared with other server processes
  /// (empty = no L2). Requires CacheBytes > 0: the L2 fills through L1.
  std::string L2Path;
  size_t L2Bytes = 256u << 20; ///< segment budget when creating L2Path

  /// Request-trace sampling: every Nth admitted compile request gets a
  /// full recv→admit→queue-wait→cache-probe→parse→alloc→emit→reply span
  /// chain (merged waiters get recv→admit→merged→reply; 0 = tracing off,
  /// 1 = every request). Sampled traces go to the Chrome tracer (when
  /// enabled) and the request log (when open).
  unsigned SampleEvery = 0;

  /// When non-empty, start() opens obs::RequestLog on this path and every
  /// sampled request appends one JSONL timing record; shutdown() closes it.
  std::string RequestLogPath;
};

class Server {
public:
  explicit Server(const ServerOptions &Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Bind, listen, and spawn the loop thread + worker pool. False (with
  /// \p Err set) if the socket cannot be bound.
  bool start(std::string &Err);

  /// Graceful drain, idempotent: stop accepting connections and requests,
  /// answer every admitted request, refuse the rest with typed frames,
  /// flush every connection's write queue, then join every thread.
  /// Blocks until the drain completes.
  void shutdown();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// Resolved TCP port (after start(), TCP mode only).
  uint16_t port() const { return L.port(); }
  const std::string &unixPath() const { return Opts.UnixPath; }

  /// Requests answered since start(), any status. (Monotonic; readable
  /// while serving.)
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

  /// The server's compile cache (null when Opts.CacheBytes == 0).
  cache::CompileCache *compileCache() { return Cache.get(); }

  /// The shared L2 tier (null when Opts.L2Path is empty or L1 is off).
  cache::SharedCache *sharedCache() { return L2.get(); }

private:
  /// One admitted client request: the unit merging and deadlines operate
  /// on. Answered is the once-only latch raced between the loop's
  /// deadline timer and the worker's fan-out — whoever flips it owns the
  /// response and the terminal telemetry for this request.
  struct Pending {
    uint64_t ConnId = 0;
    uint32_t FrameId = 0;
    int64_t ArrivalNs = 0;
    int64_t DeadlineNs = 0; ///< 0 = none
    uint64_t TimerId = 0;   ///< deadline timer (loop thread only)
    bool Merged = false;    ///< joined an already-in-flight compile
    std::shared_ptr<obs::RequestTrace> RT;
    std::atomic<bool> Answered{false};
  };
  using PendingPtr = std::shared_ptr<Pending>;

  /// One in-flight compile: the leader's decoded request plus every
  /// waiter merged onto it. Lives in InflightTable (guarded by MergeMu)
  /// from admission until the worker removes it at completion, so
  /// identical requests can keep joining mid-queue and mid-compile.
  struct Inflight {
    cache::CacheKey Key;
    CompileRequest Req;
    AllocatorKind Kind{};
    TargetDesc TD;
    TierPolicy Tier = TierPolicy::Off; ///< effective policy (request wins)
    /// Background requalification job: compiles with the full allocator
    /// (tier forced off) to refresh the cache. Registered in the merge
    /// table under the original request's key so concurrent duplicates
    /// piggyback on the promotion instead of compiling again; it starts
    /// with no waiters and never answers as a request outcome itself.
    bool Promotion = false;
    PendingPtr Leader; ///< the admission that created this entry
    std::shared_ptr<obs::RequestTrace> LeaderRT;
    std::vector<PendingPtr> Waiters; ///< guarded by Server::MergeMu
  };
  using InflightPtr = std::shared_ptr<Inflight>;

  // --- loop-thread handlers -------------------------------------------------
  void onAcceptable();
  void onFrame(uint64_t ConnId, FrameDecoder::Frame &F);
  void onConnClosed(uint64_t ConnId);
  void admitCompile(uint64_t ConnId, uint32_t Id, const std::string &Payload);
  void armDeadline(const PendingPtr &P);
  void onDeadline(const PendingPtr &P);
  void flushBatch();
  void afterPoll();
  /// Write one frame to a connection by id; counts Served/bytes_out, and
  /// counts a send error if the connection is already gone.
  void sendToConn(uint64_t ConnId, uint32_t Id, FrameType Type,
                  const std::string &Payload);

  // --- worker-side ----------------------------------------------------------
  void compileEntry(const InflightPtr &E);
  /// Enqueue the tier-0 → full-allocator requalification for \p E on the
  /// promotion lane, re-registering the key in the merge table (no-op when
  /// an identical compile re-entered the table first).
  void schedulePromotion(const InflightPtr &E);
  void answerWaiter(const PendingPtr &W, const CompileResponse &Base,
                    const char *LogStatus, bool Cached, int64_t TaskStartNs);

  /// Terminal per-request telemetry: latency/queue-wait histograms,
  /// in-flight gauge, trace flush, request-log line. Called exactly once
  /// per answered request (guarded by Pending::Answered).
  void finishRequest(const PendingPtr &W, const char *Status, bool Cached,
                     uint64_t QueueUs, int64_t AnsweredNs);

  /// Refresh the process/cache gauges and render the registry's
  /// MetricsSnapshot as \p Format ("json", "prom", or "text").
  std::string renderStats(const std::string &Format);
  int64_t nowNs() const;

  ServerOptions Opts;
  Listener L;
  RequestQueue Queue;
  /// Declared before Cache: the L1 detaches its invalidation sink in its
  /// destructor, so the L2 (and its agent thread) must still be alive
  /// when the Cache member is destroyed.
  std::unique_ptr<cache::SharedCache> L2;
  std::unique_ptr<cache::CompileCache> Cache;
  std::unique_ptr<ThreadPool> Workers;
  /// Dedicated single-thread lane for tier-0 promotions: requalification
  /// is deliberately starved relative to the request workers so background
  /// quality never competes with foreground latency.
  std::unique_ptr<ThreadPool> Promoters;

  net::EventLoop Loop;
  std::thread LoopThread;

  // Loop-thread-only state.
  std::unordered_map<uint64_t, std::unique_ptr<net::Connection>> Conns;
  uint64_t NextConnId = 1;
  std::vector<InflightPtr> Batch; ///< admitted, not yet dispatched
  bool DrainFinal = false;        ///< final flush phase of shutdown()
  int64_t DrainDeadlineNs = 0;

  // The in-flight merge table: loop thread inserts/joins, workers remove
  // at completion.
  std::mutex MergeMu;
  std::unordered_map<cache::CacheKey, InflightPtr, cache::CacheKeyHash>
      InflightTable;

  std::atomic<bool> Stopping{false};
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Served{0};
  uint64_t ReqSeq = 0; ///< admitted-request sequence (sampling; loop only)
  bool OpenedRequestLog = false;

  /// Requests admitted into one worker dispatch at most (batch bound).
  static constexpr unsigned BatchMax = 8;
  /// Requests at or above this payload size never batch (they dominate a
  /// worker long enough that grouping only adds head-of-line blocking).
  static constexpr size_t SmallRequestBytes = 16 * 1024;
  /// Shutdown flushes write queues for at most this long before forcing
  /// connections closed.
  static constexpr int64_t DrainFlushTimeoutNs = 5'000'000'000;
};

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_SERVER_H
