//===- server/Server.h - Concurrent compile server -------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation-as-a-service: a socket server that compiles textual-IR
/// modules through the standard pipeline (driver/Pipeline.h) and returns
/// the allocated module plus statistics. The paper's compile-time focus
/// (Table 3) is what makes this viable — linear-scan allocation is fast
/// enough to sit on a request path, which is precisely the contrast the
/// combinatorial-allocation literature draws against solver-based
/// allocators.
///
/// Threading model:
///   - one accept thread (poll + timeout, so shutdown needs no tricks);
///   - one reader thread per connection decoding frames and running
///     admission control;
///   - a fixed support/ThreadPool of compile workers draining the bounded
///     server/RequestQueue.
///
/// Overload and lifecycle policy, in order of evaluation per request:
///   - drain in progress        → ShuttingDown frame, no admission;
///   - admission queue full     → Rejected frame (load shed, 503-style);
///   - deadline already passed when a worker dequeues the request
///                              → DeadlineExceeded frame (the request is
///                                never compiled; deadlines are checked at
///                                dispatch, not preemptively mid-compile);
///   - payload fails to decode/parse/verify → Error frame with the parser's
///                                line/column/token diagnostics;
///   - otherwise                → CompileOk with allocated IR + stats.
///
/// Telemetry is always on: start() enables the counter registry, so the
/// server.* counters (accepted, completed, rejected, deadline_exceeded,
/// parse_errors, bytes_in, bytes_out, ...), the rolling-window histograms
/// (server.latency_us, server.queue_wait_us, server.compile_us,
/// server.queue_depth.dist) and the gauges (server.queue_depth,
/// server.inflight, proc.rss_bytes, cache.bytes) are live for the whole
/// serve. Any connected client can fetch them mid-load with a
/// StatsRequest frame (`lsra stats` / `lsra top`), and the same data
/// lands in the usual --stats-json JSONL snapshot at exit.
///
//===----------------------------------------------------------------------===//

#ifndef LSRA_SERVER_SERVER_H
#define LSRA_SERVER_SERVER_H

#include "cache/CompileCache.h"
#include "server/RequestQueue.h"
#include "server/Socket.h"
#include "support/ThreadPool.h"
#include "target/Target.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace lsra {

namespace obs {
struct RequestTrace;
} // namespace obs

namespace server {

struct ServerOptions {
  /// Unix-domain socket path; when empty, a loopback TCP listener on
  /// TcpPort is used instead.
  std::string UnixPath;
  uint16_t TcpPort = 0; ///< 0 = ephemeral (read back via Server::port())

  unsigned Workers = 0;       ///< compile workers (0 = hardware threads)
  unsigned QueueCapacity = 64; ///< admission queue bound (load shed above)

  /// Deadline applied to requests that carry none (0 = unlimited).
  uint32_t DefaultDeadlineMs = 0;

  /// Threads used *inside* one request's compileModule. Per-request
  /// parallelism rarely pays once the server itself is saturated, so the
  /// default is sequential per request, parallel across requests.
  unsigned ThreadsPerRequest = 1;

  /// Run the allocation verifier (check/Verifier) on every compile and
  /// reject unprovable allocations with a typed "allocation verify:" error
  /// response instead of returning wrong code.
  bool VerifyAlloc = false;

  /// Budget of the server's content-addressed compile cache, in bytes
  /// (0 = caching off). Requests can opt out individually with the wire
  /// field no_cache=1.
  size_t CacheBytes = 64u << 20;

  /// Request-trace sampling: every Nth admitted compile request gets a
  /// full recv→admit→queue-wait→cache-probe→parse→alloc→emit→reply span
  /// chain (0 = tracing off, 1 = every request). Sampled traces go to the
  /// Chrome tracer (when enabled) and the request log (when open).
  unsigned SampleEvery = 0;

  /// When non-empty, start() opens obs::RequestLog on this path and every
  /// sampled request appends one JSONL timing record; shutdown() closes it.
  std::string RequestLogPath;
};

class Server {
public:
  explicit Server(const ServerOptions &Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Bind, listen, and spawn the accept thread + worker pool. False (with
  /// \p Err set) if the socket cannot be bound.
  bool start(std::string &Err);

  /// Graceful drain, idempotent: stop accepting connections and requests,
  /// answer every admitted request, refuse the rest with typed frames,
  /// then join every thread. Blocks until the drain completes.
  void shutdown();

  bool running() const { return Running.load(std::memory_order_acquire); }

  /// Resolved TCP port (after start(), TCP mode only).
  uint16_t port() const { return L.port(); }
  const std::string &unixPath() const { return Opts.UnixPath; }

  /// Requests answered since start(), any status. (Monotonic; readable
  /// while serving.)
  uint64_t requestsServed() const {
    return Served.load(std::memory_order_relaxed);
  }

  /// The server's compile cache (null when Opts.CacheBytes == 0).
  cache::CompileCache *compileCache() { return Cache.get(); }

private:
  /// One live client connection. Workers for pipelined requests respond
  /// concurrently, so writes are serialized by WriteMu; the struct is
  /// kept alive by shared_ptr until the last queued response is sent.
  struct Conn {
    Socket Sock;
    std::mutex WriteMu;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  void acceptLoop();
  void readerLoop(ConnPtr C);
  void handleCompile(const ConnPtr &C, uint32_t Id, std::string Payload,
                     int64_t ArrivalNs, int64_t DeadlineNs,
                     std::shared_ptr<obs::RequestTrace> RT);
  void respond(const ConnPtr &C, uint32_t Id, FrameType Type,
               const std::string &Payload);
  /// Refresh the process/cache gauges and render the registry's
  /// MetricsSnapshot as \p Format ("json", "prom", or "text").
  std::string renderStats(const std::string &Format);
  int64_t nowNs() const;

  ServerOptions Opts;
  Listener L;
  RequestQueue Queue;
  std::unique_ptr<cache::CompileCache> Cache;
  std::unique_ptr<ThreadPool> Workers;
  std::thread AcceptThread;
  std::mutex ReadersMu;
  std::vector<std::thread> Readers;
  /// Live connections, so shutdown() can unblock readers (and fail fast
  /// any client that keeps sending) once the drain has answered all
  /// admitted work. shutdown(2), not close: the fd stays owned by Conn.
  std::vector<std::weak_ptr<Conn>> Conns;
  std::atomic<bool> Stopping{false};
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Served{0};
  std::atomic<uint64_t> ReqSeq{0}; ///< admitted-request sequence (sampling)
  bool OpenedRequestLog = false;
};

} // namespace server
} // namespace lsra

#endif // LSRA_SERVER_SERVER_H
