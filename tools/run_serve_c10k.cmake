# Test driver: high-concurrency serving smoke test. Starts `lsra serve`,
# then drives CONNS pipelined connections from one `lsra loadgen` event
# loop — the c10k shape at CI scale. Every response is byte-compared
# against an offline compile (--verify), and any protocol error fails the
# loadgen exit code. Invoked by ctest as
#   cmake -DLSRA_TOOL=... -DCONNS=N -DOUT_DIR=... -P this
set(SOCK "${OUT_DIR}/serve_c10k.sock")
if(NOT CONNS)
  set(CONNS 1000)
endif()
# Keep the total pipelined in-flight volume proportional to the
# connection count but bounded: 4 deep at 1k connections is 4000 requests
# outstanding against the admission queue.
math(EXPR REQUESTS "${CONNS} * 8")

execute_process(
  COMMAND sh -ec "
    rm -f '${SOCK}'
    '${LSRA_TOOL}' serve --socket='${SOCK}' --workers=4 --queue=512 &
    pid=\$!
    trap 'kill \$pid 2>/dev/null' EXIT
    i=0
    while [ ! -S '${SOCK}' ]; do
      i=\$((i+1))
      [ \$i -gt 300 ] && { echo 'server never bound socket' >&2; exit 1; }
      sleep 0.1
    done
    '${LSRA_TOOL}' loadgen --socket='${SOCK}' --connections=${CONNS} \
        --pipeline=4 --requests=${REQUESTS} --unique=8 --mix-seed=3 --verify
    rc=\$?
    kill -TERM \$pid
    wait \$pid
    srv=\$?
    trap - EXIT
    [ \$rc -eq 0 ] || { echo \"c10k loadgen failed (rc=\$rc)\" >&2; exit 1; }
    [ \$srv -eq 0 ] || { echo \"server exit rc=\$srv\" >&2; exit 1; }
  "
  RESULT_VARIABLE RUN_RC
  OUTPUT_VARIABLE RUN_OUT
  ERROR_VARIABLE RUN_ERR)
message(STATUS "${RUN_OUT}")
if(NOT RUN_RC EQUAL 0)
  message(FATAL_ERROR
          "c10k smoke failed (rc=${RUN_RC}):\n${RUN_OUT}${RUN_ERR}")
endif()
