# Test driver: cross-process shared-L2 smoke test. Two `lsra serve`
# processes attach to one shared-memory cache segment; the first serves a
# cold workload mix (publishing every module-level result to the L2), then
# the second serves the SAME mix with --verify (every response
# byte-compared against an offline compile) — its compiles must be served
# from the shared segment, asserted as cache.l2.hits > 0 in its exit
# stats snapshot via check_trace.py --cache-stats --expect-l2-hits.
# Invoked by ctest as
#   cmake -DLSRA_TOOL=... -DPYTHON=... -DCHECKER=... -DOUT_DIR=... -P this
set(SOCK_A "${OUT_DIR}/check_l2_a.sock")
set(SOCK_B "${OUT_DIR}/check_l2_b.sock")
set(SEG "${OUT_DIR}/check_l2.seg")
set(STATS_A "${OUT_DIR}/check_l2_a.stats.jsonl")
set(STATS_B "${OUT_DIR}/check_l2_b.stats.jsonl")

execute_process(
  COMMAND sh -ec "
    rm -f '${SOCK_A}' '${SOCK_B}' '${SEG}' '${STATS_A}' '${STATS_B}'
    '${LSRA_TOOL}' serve --socket='${SOCK_A}' --workers=2 \
        --l2-path='${SEG}' --l2-mb=64 --stats-json='${STATS_A}' &
    pid_a=\$!
    '${LSRA_TOOL}' serve --socket='${SOCK_B}' --workers=2 \
        --l2-path='${SEG}' --l2-mb=64 --stats-json='${STATS_B}' &
    pid_b=\$!
    trap 'kill \$pid_a \$pid_b 2>/dev/null' EXIT
    i=0
    while [ ! -S '${SOCK_A}' ] || [ ! -S '${SOCK_B}' ]; do
      i=\$((i+1))
      [ \$i -gt 300 ] && { echo 'servers never bound sockets' >&2; exit 1; }
      sleep 0.1
    done
    # Cold pass on server A: every workload compiled once, published to
    # the shared segment by A's publish agent.
    '${LSRA_TOOL}' loadgen --socket='${SOCK_A}' --concurrency=2 \
        --requests=8 --workloads=eqntott,espresso,sort,wc --verify
    rc=\$?
    [ \$rc -eq 0 ] || { echo \"cold loadgen failed (rc=\$rc)\" >&2; exit 1; }
    # A moment for A's async publications to land in the segment.
    sleep 0.5
    # Warm pass on server B: a fresh process-local L1, so any cache hit
    # here can only come from the shared segment. --verify keeps every
    # response byte-compared against an offline compile.
    out=\$('${LSRA_TOOL}' loadgen --socket='${SOCK_B}' --concurrency=2 \
        --requests=8 --workloads=eqntott,espresso,sort,wc --verify)
    wrc=\$?
    echo \"\$out\"
    [ \$wrc -eq 0 ] || { echo \"warm loadgen failed (rc=\$wrc)\" >&2; exit 1; }
    cached=\$(printf '%s' \"\$out\" | grep -o 'cached [0-9]*' | cut -d' ' -f2)
    [ \"\${cached:-0}\" -gt 0 ] || {
      echo \"second server saw no cached responses: \$cached\" >&2; exit 1; }
    kill -TERM \$pid_b; wait \$pid_b
    brc=\$?
    kill -TERM \$pid_a; wait \$pid_a
    arc=\$?
    trap - EXIT
    [ \$brc -eq 0 ] || { echo \"server B exit rc=\$brc\" >&2; exit 1; }
    [ \$arc -eq 0 ] || { echo \"server A exit rc=\$arc\" >&2; exit 1; }
  "
  RESULT_VARIABLE RUN_RC
  OUTPUT_VARIABLE RUN_OUT
  ERROR_VARIABLE RUN_ERR)
message(STATUS "${RUN_OUT}")
if(NOT RUN_RC EQUAL 0)
  message(FATAL_ERROR
          "shared-L2 smoke failed (rc=${RUN_RC}):\n${RUN_OUT}${RUN_ERR}")
endif()

# Server B's snapshot: the tier contract must hold AND the warm pass must
# show actual cross-process hits. Server A's snapshot only needs the tier
# contract (it was the cold side).
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "--cache-stats" "${STATS_B}"
          "--expect-l2-hits"
  RESULT_VARIABLE CHECK_RC
  OUTPUT_VARIABLE CHECK_OUT
  ERROR_VARIABLE CHECK_ERR)
message(STATUS "${CHECK_OUT}")
if(NOT CHECK_RC EQUAL 0)
  message(FATAL_ERROR
          "check_trace.py --expect-l2-hits failed on server B "
          "(rc=${CHECK_RC}):\n${CHECK_ERR}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "--cache-stats" "${STATS_A}"
  RESULT_VARIABLE ACHECK_RC
  OUTPUT_VARIABLE ACHECK_OUT
  ERROR_VARIABLE ACHECK_ERR)
message(STATUS "${ACHECK_OUT}")
if(NOT ACHECK_RC EQUAL 0)
  message(FATAL_ERROR
          "check_trace.py --cache-stats failed on server A "
          "(rc=${ACHECK_RC}):\n${ACHECK_ERR}")
endif()
