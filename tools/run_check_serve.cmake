# Test driver: end-to-end serving smoke test. Starts `lsra serve` on a
# unix socket, replays part of the workloads corpus against it with
# `lsra loadgen` (4 concurrent clients), stops the server with SIGTERM to
# exercise the graceful drain, and validates the emitted server.* counter
# snapshot with check_trace.py --server-stats. Invoked by ctest as
#   cmake -DLSRA_TOOL=... -DPYTHON=... -DCHECKER=... -DOUT_DIR=... -P this
set(SOCK "${OUT_DIR}/check_serve.sock")
set(STATS "${OUT_DIR}/check_serve.stats.jsonl")

# Backgrounding and signal delivery need a shell; everything is kept in
# one script so the server is reliably torn down on any failure.
execute_process(
  COMMAND sh -ec "
    rm -f '${SOCK}' '${STATS}'
    '${LSRA_TOOL}' serve --socket='${SOCK}' --workers=4 \
        --stats-json='${STATS}' &
    pid=\$!
    trap 'kill \$pid 2>/dev/null' EXIT
    # Wait for the listener (TSan builds start slowly).
    i=0
    while [ ! -S '${SOCK}' ]; do
      i=\$((i+1))
      [ \$i -gt 300 ] && { echo 'server never bound socket' >&2; exit 1; }
      sleep 0.1
    done
    '${LSRA_TOOL}' loadgen --socket='${SOCK}' --concurrency=4 \
        --requests=32 --workloads=eqntott,espresso,sort,wc --run
    rc=\$?
    # Repeated-mix leg: 4 unique programs cycled over 32 requests should be
    # served mostly from the compile cache (28 hits minus first-wave races).
    out=\$('${LSRA_TOOL}' loadgen --socket='${SOCK}' --concurrency=4 \
        --requests=32 --unique=4 --mix-seed=7)
    mixrc=\$?
    echo \"\$out\"
    cached=\$(printf '%s' \"\$out\" | grep -o 'cached [0-9]*' | cut -d' ' -f2)
    [ \$mixrc -eq 0 ] || { echo \"mix loadgen failed (rc=\$mixrc)\" >&2; exit 1; }
    [ \"\${cached:-0}\" -ge 20 ] || {
      echo \"repeated-mix hit rate too low: \$cached/32 cached\" >&2; exit 1; }
    # Pipelined leg: event-loop client, 64 connections x 8 deep, duplicate-
    # heavy corpus, every CompileOk byte-compared against an offline
    # compile. The first in-flight wave is all duplicates, so the server's
    # request merging must be visible in the responses.
    pout=\$('${LSRA_TOOL}' loadgen --socket='${SOCK}' --connections=64 \
        --pipeline=8 --requests=512 --unique=4 --mix-seed=11 --verify)
    prc=\$?
    echo \"\$pout\"
    [ \$prc -eq 0 ] || { echo \"pipelined loadgen failed (rc=\$prc)\" >&2; exit 1; }
    merged=\$(printf '%s' \"\$pout\" | grep -o 'merged [0-9]*' | cut -d' ' -f2)
    [ \"\${merged:-0}\" -gt 0 ] || {
      echo \"duplicate-heavy pipelined mix produced no merges\" >&2; exit 1; }
    # Tiered leg: promote policy per request, fresh programs (distinct
    # mix seed) so the first compile of each is a cold tier-0 answer,
    # every CompileOk byte-compared against the offline compile of the
    # tier that answered it. The requalification lane then refreshes the
    # cache in the background; --server-stats below checks the
    # tier0/promoted counter contract.
    tout=\$('${LSRA_TOOL}' loadgen --socket='${SOCK}' --connections=8 \
        --pipeline=4 --requests=64 --unique=4 --mix-seed=23 --verify \
        --tier=promote)
    trc=\$?
    echo \"\$tout\"
    [ \$trc -eq 0 ] || { echo \"tiered loadgen failed (rc=\$trc)\" >&2; exit 1; }
    tier0=\$(printf '%s' \"\$tout\" | grep -o 'tier0 [0-9]*' | cut -d' ' -f2)
    [ \"\${tier0:-0}\" -gt 0 ] || {
      echo \"tiered mix produced no tier-0 answers\" >&2; exit 1; }
    kill -TERM \$pid
    wait \$pid
    srv=\$?
    trap - EXIT
    [ \$rc -eq 0 ] || { echo \"loadgen failed (rc=\$rc)\" >&2; exit 1; }
    [ \$srv -eq 0 ] || { echo \"server exit rc=\$srv\" >&2; exit 1; }
  "
  RESULT_VARIABLE RUN_RC
  OUTPUT_VARIABLE RUN_OUT
  ERROR_VARIABLE RUN_ERR)
message(STATUS "${RUN_OUT}")
if(NOT RUN_RC EQUAL 0)
  message(FATAL_ERROR "serve smoke failed (rc=${RUN_RC}):\n${RUN_OUT}${RUN_ERR}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "--server-stats" "${STATS}"
          "--cache-stats" "${STATS}"
  RESULT_VARIABLE CHECK_RC
  OUTPUT_VARIABLE CHECK_OUT
  ERROR_VARIABLE CHECK_ERR)
message(STATUS "${CHECK_OUT}")
if(NOT CHECK_RC EQUAL 0)
  message(FATAL_ERROR
          "check_trace.py --server-stats failed (rc=${CHECK_RC}):\n${CHECK_ERR}")
endif()

# --- telemetry leg ----------------------------------------------------------
# A fresh server with full request tracing: one loadgen run with client-side
# records, two live StatsRequest fetches (json for the validators, prom and
# text for rendering smoke), then the graceful drain. The lifetime
# histograms cover exactly this run, so the server p99 can be compared
# against the loadgen's exact percentile.
set(TSOCK "${OUT_DIR}/check_serve_telemetry.sock")
set(REQLOG "${OUT_DIR}/check_serve.request_log.jsonl")
set(RECORDS "${OUT_DIR}/check_serve.records.jsonl")
set(LGJSON "${OUT_DIR}/check_serve.loadgen.json")
set(SNAP1 "${OUT_DIR}/check_serve.metrics1.json")
set(SNAP2 "${OUT_DIR}/check_serve.metrics2.json")
set(TTRACE "${OUT_DIR}/check_serve.trace.json")

execute_process(
  COMMAND sh -ec "
    rm -f '${TSOCK}' '${REQLOG}' '${RECORDS}' '${LGJSON}' \
        '${SNAP1}' '${SNAP2}' '${TTRACE}'
    '${LSRA_TOOL}' serve --socket='${TSOCK}' --workers=4 \
        --request-log='${REQLOG}' --trace-out='${TTRACE}' &
    pid=\$!
    trap 'kill \$pid 2>/dev/null' EXIT
    i=0
    while [ ! -S '${TSOCK}' ]; do
      i=\$((i+1))
      [ \$i -gt 300 ] && { echo 'server never bound socket' >&2; exit 1; }
      sleep 0.1
    done
    '${LSRA_TOOL}' loadgen --socket='${TSOCK}' --concurrency=4 \
        --requests=64 --workloads=eqntott,espresso,sort,wc --tier=promote \
        --record-out='${RECORDS}' --json='${LGJSON}'
    rc=\$?
    [ \$rc -eq 0 ] || { echo \"telemetry loadgen failed (rc=\$rc)\" >&2; exit 1; }
    '${LSRA_TOOL}' stats --socket='${TSOCK}' > '${SNAP1}'
    '${LSRA_TOOL}' stats --socket='${TSOCK}' --prom | \
        grep -q '^lsra_server_completed ' || {
      echo 'prom rendering missing lsra_server_completed' >&2; exit 1; }
    '${LSRA_TOOL}' top --socket='${TSOCK}' --count=1 --interval-ms=10 | \
        grep -q 'lsra telemetry snapshot' || {
      echo 'top rendering missing snapshot header' >&2; exit 1; }
    '${LSRA_TOOL}' stats --socket='${TSOCK}' > '${SNAP2}'
    kill -TERM \$pid
    wait \$pid
    srv=\$?
    trap - EXIT
    [ \$srv -eq 0 ] || { echo \"telemetry server exit rc=\$srv\" >&2; exit 1; }
  "
  RESULT_VARIABLE TRUN_RC
  OUTPUT_VARIABLE TRUN_OUT
  ERROR_VARIABLE TRUN_ERR)
message(STATUS "${TRUN_OUT}")
if(NOT TRUN_RC EQUAL 0)
  message(FATAL_ERROR
          "telemetry leg failed (rc=${TRUN_RC}):\n${TRUN_OUT}${TRUN_ERR}")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}"
          "--metrics" "${SNAP1}" "--metrics" "${SNAP2}"
          "--records" "${RECORDS}"
          "--join" "${RECORDS}:${REQLOG}"
          "--p99" "${SNAP1}:${RECORDS}"
          "--trace" "${TTRACE}"
  RESULT_VARIABLE TCHECK_RC
  OUTPUT_VARIABLE TCHECK_OUT
  ERROR_VARIABLE TCHECK_ERR)
message(STATUS "${TCHECK_OUT}")
if(NOT TCHECK_RC EQUAL 0)
  message(FATAL_ERROR
          "telemetry validation failed (rc=${TCHECK_RC}):\n${TCHECK_ERR}")
endif()
