# Test driver: run the CLI with every observability sink enabled, then
# validate the emitted artifacts with check_trace.py. Invoked by ctest as
#   cmake -DLSRA_TOOL=... -DPYTHON=... -DCHECKER=... -DOUT_DIR=... -P this
set(TRACE "${OUT_DIR}/check_trace.trace.json")
set(STATS "${OUT_DIR}/check_trace.stats.jsonl")
set(DECISIONS "${OUT_DIR}/check_trace.decisions.jsonl")

execute_process(
  COMMAND "${LSRA_TOOL}" run espresso --allocator=binpack --regs=8
          "--trace-out=${TRACE}" "--stats-json=${STATS}"
          "--explain=${DECISIONS}"
  RESULT_VARIABLE RUN_RC
  OUTPUT_VARIABLE RUN_OUT
  ERROR_VARIABLE RUN_ERR)
if(NOT RUN_RC EQUAL 0)
  message(FATAL_ERROR "lsra run failed (rc=${RUN_RC}):\n${RUN_OUT}${RUN_ERR}")
endif()

# The run above compiles through the default-on compile cache, so the same
# stats snapshot must also satisfy the cache.* counter contract, and the
# CLI exports the heap-allocation profile, so the alloc.count/alloc.bytes
# contract must hold too.
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "--trace" "${TRACE}" "--stats" "${STATS}"
          "--decisions" "${DECISIONS}" "--cache-stats" "${STATS}"
          "--alloc-stats" "${STATS}"
  RESULT_VARIABLE CHECK_RC
  OUTPUT_VARIABLE CHECK_OUT
  ERROR_VARIABLE CHECK_ERR)
message(STATUS "${CHECK_OUT}")
if(NOT CHECK_RC EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${CHECK_RC}):\n${CHECK_ERR}")
endif()
