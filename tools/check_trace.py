#!/usr/bin/env python3
"""Validate the observability outputs of `lsra run`.

Checks any of the three artifacts, failing (exit 1) on the first schema
violation:

  --trace t.json       Chrome trace_event document: a JSON object with a
                       traceEvents array of complete ("ph": "X") events
                       carrying name/cat/pid/tid and numeric ts/dur, with
                       spans properly nested per tid.
  --stats s.jsonl      Counter snapshot: one JSON object per line; an
                       optional leading {"kind": "meta"} line, then
                       counter/dist lines sorted by name.
  --decisions d.jsonl  Decision log: {"kind": "decision"} lines with a
                       known event name and a 0/1 split flag.
  --server-stats s.jsonl
                       Stats snapshot written by `lsra serve`: the --stats
                       schema plus the server.* counter set (connections,
                       requests, accepted, completed, bytes_in, bytes_out)
                       and the server.queue_depth / server.latency_ms
                       distributions, with the cross-counter invariants
                       (completed <= accepted <= requests, every answered
                       request accounted by exactly one outcome counter).
  --cache-stats s.jsonl
                       Stats snapshot from a cache-enabled run: the --stats
                       schema plus the cache.* counters (hits, misses,
                       insertions, evictions) and the cache.bytes
                       distribution, with the lifetime invariants
                       evictions <= insertions <= misses.
  --alloc-stats s.jsonl
                       Stats snapshot including the heap-allocation profile:
                       the --stats schema plus the alloc.count / alloc.bytes
                       counters (positive, with alloc.bytes >= alloc.count:
                       every allocation requests at least one byte).

Usage: check_trace.py [--trace FILE] [--stats FILE] [--decisions FILE]
                      [--server-stats FILE] [--cache-stats FILE]
                      [--alloc-stats FILE]
"""

import argparse
import json
import sys

DECISION_EVENTS = {
    "evict-store",
    "evict-convention",
    "evict-move",
    "evict-drop",
    "second-chance-load",
    "second-chance-def",
    "coalesce-move",
    "spill-whole",
    "cache-hit",
}

errors = []


def fail(msg):
    errors.append(msg)


def check_trace(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
            return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents array")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
        return
    per_tid = {}
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
            continue
        if e.get("ph") != "X":
            fail(f"{where}: ph must be 'X', got {e.get('ph')!r}")
        for key in ("name", "cat"):
            if not isinstance(e.get(key), str) or not e[key]:
                fail(f"{where}: missing or empty '{key}'")
        for key in ("ts", "dur"):
            if not isinstance(e.get(key), (int, float)):
                fail(f"{where}: '{key}' must be a number")
            elif e[key] < 0:
                fail(f"{where}: '{key}' must be non-negative")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"{where}: '{key}' must be an integer")
        if isinstance(e.get("tid"), int):
            per_tid.setdefault(e["tid"], []).append(e)

    # Per-tid nesting: spans on one thread must form a stack (the format
    # renders them as stacked slices; overlap without containment is a bug).
    for tid, spans in per_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for e in spans:
            end = e["ts"] + e["dur"]
            while stack and e["ts"] >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                fail(
                    f"{path}: tid {tid}: span '{e['name']}' "
                    f"[{e['ts']}, {end}) overlaps an enclosing span "
                    f"without nesting inside it"
                )
                continue
            stack.append(end)
    print(f"{path}: {len(events)} events on {len(per_tid)} thread(s): OK"
          if not errors else f"{path}: checked")


def check_jsonl_lines(path):
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not valid JSON: {e}")
                continue
            if not isinstance(obj, dict):
                fail(f"{path}:{lineno}: not a JSON object")
                continue
            yield lineno, obj


def check_stats(path):
    prev_name = None
    n = 0
    for lineno, obj in check_jsonl_lines(path):
        where = f"{path}:{lineno}"
        kind = obj.get("kind")
        if kind == "meta":
            if lineno != 1:
                fail(f"{where}: meta line must come first")
            continue
        if kind not in ("counter", "dist"):
            fail(f"{where}: kind must be meta/counter/dist, got {kind!r}")
            continue
        name = obj.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing 'name'")
            continue
        if prev_name is not None and name < prev_name:
            fail(f"{where}: names not sorted ({name!r} after {prev_name!r})")
        prev_name = name
        if kind == "counter":
            if not isinstance(obj.get("value"), int):
                fail(f"{where}: counter 'value' must be an integer")
        else:
            for key in ("count", "sum", "min", "max", "mean"):
                if not isinstance(obj.get(key), (int, float)):
                    fail(f"{where}: dist '{key}' must be a number")
        n += 1
    if n == 0:
        fail(f"{path}: no counter/dist lines")
    else:
        print(f"{path}: {n} counter/dist lines: OK")


def check_decisions(path):
    n = 0
    for lineno, obj in check_jsonl_lines(path):
        where = f"{path}:{lineno}"
        if obj.get("kind") != "decision":
            fail(f"{where}: kind must be 'decision'")
            continue
        if not isinstance(obj.get("fn"), str) or not obj["fn"]:
            fail(f"{where}: missing 'fn'")
        event = obj.get("event")
        if event not in DECISION_EVENTS:
            fail(f"{where}: unknown event {event!r}")
        if obj.get("split") not in (0, 1):
            fail(f"{where}: 'split' must be 0 or 1")
        if not isinstance(obj.get("why"), str) or not obj["why"]:
            fail(f"{where}: missing 'why'")
        n += 1
    print(f"{path}: {n} decision lines: OK")


SERVER_COUNTERS = (
    "server.connections",
    "server.requests",
    "server.accepted",
    "server.completed",
    "server.bytes_in",
    "server.bytes_out",
)
SERVER_DISTS = ("server.queue_depth", "server.latency_ms")


def check_server_stats(path):
    """The --stats schema plus the server.* counter contract."""
    check_stats(path)
    counters = {}
    dists = {}
    for _lineno, obj in check_jsonl_lines(path):
        if obj.get("kind") == "counter":
            counters[obj.get("name")] = obj.get("value")
        elif obj.get("kind") == "dist":
            dists[obj.get("name")] = obj
    for name in SERVER_COUNTERS:
        if name not in counters:
            fail(f"{path}: missing required counter {name!r}")
    for name in SERVER_DISTS:
        if name not in dists:
            fail(f"{path}: missing required distribution {name!r}")
    if any(n not in counters for n in SERVER_COUNTERS):
        return

    requests = counters["server.requests"]
    accepted = counters["server.accepted"]
    completed = counters["server.completed"]
    if not (completed <= accepted <= requests):
        fail(
            f"{path}: expected completed <= accepted <= requests, got "
            f"{completed} / {accepted} / {requests}"
        )
    # Every request is answered by exactly one typed outcome: CompileOk,
    # Error, Rejected, DeadlineExceeded, or ShuttingDown.
    outcomes = completed + sum(
        counters.get(f"server.{n}", 0)
        for n in ("parse_errors", "rejected", "deadline_exceeded",
                  "shutdown_rejected")
    )
    if outcomes != requests:
        fail(
            f"{path}: outcome counters sum to {outcomes}, "
            f"but server.requests is {requests}"
        )
    if requests and counters["server.bytes_in"] <= 0:
        fail(f"{path}: server.bytes_in must be positive when requests > 0")
    if requests and counters["server.bytes_out"] <= 0:
        fail(f"{path}: server.bytes_out must be positive when requests > 0")
    lat = dists.get("server.latency_ms")
    if lat is not None and lat.get("count") != completed:
        fail(
            f"{path}: server.latency_ms count {lat.get('count')} != "
            f"server.completed {completed}"
        )
    if not errors:
        print(f"{path}: server.* counter contract: OK")


CACHE_COUNTERS = (
    "cache.hits",
    "cache.misses",
    "cache.insertions",
    "cache.evictions",
)


def check_cache_stats(path):
    """The --stats schema plus the cache.* counter contract."""
    check_stats(path)
    counters = {}
    dists = {}
    for _lineno, obj in check_jsonl_lines(path):
        if obj.get("kind") == "counter":
            counters[obj.get("name")] = obj.get("value")
        elif obj.get("kind") == "dist":
            dists[obj.get("name")] = obj
    # Counters register on their first bump, so a cold run has only
    # cache.misses; hits/insertions/evictions appear once one happened.
    if "cache.misses" not in counters:
        fail(f"{path}: missing required counter 'cache.misses'")
        return
    hits = counters.get("cache.hits", 0)
    misses = counters["cache.misses"]
    insertions = counters.get("cache.insertions", 0)
    evictions = counters.get("cache.evictions", 0)
    if hits + misses <= 0:
        fail(f"{path}: cache was never consulted (hits + misses == 0)")
    # Lifetime invariants: every insertion follows a miss, every eviction
    # follows an insertion.
    if not (evictions <= insertions <= misses):
        fail(
            f"{path}: expected evictions <= insertions <= misses, got "
            f"{evictions} / {insertions} / {misses}"
        )
    if insertions and "cache.bytes" not in dists:
        fail(f"{path}: missing cache.bytes distribution despite insertions")
    if not errors:
        print(f"{path}: cache.* counter contract: OK")


def check_alloc_stats(path):
    """The --stats schema plus the alloc.count / alloc.bytes profile."""
    check_stats(path)
    counters = {}
    for _lineno, obj in check_jsonl_lines(path):
        if obj.get("kind") == "counter":
            counters[obj.get("name")] = obj.get("value")
    for name in ("alloc.count", "alloc.bytes"):
        if name not in counters:
            fail(f"{path}: missing required counter {name!r}")
    if any(n not in counters for n in ("alloc.count", "alloc.bytes")):
        return
    count = counters["alloc.count"]
    nbytes = counters["alloc.bytes"]
    if count == 0 and nbytes == 0:
        # Sanitizer builds disable the operator new/delete interposer; the
        # counters are present but empty. Nothing further to validate.
        print(f"{path}: alloc.* profile disabled (sanitizer build): skipped")
        return
    if count <= 0:
        fail(f"{path}: alloc.count must be positive, got {count}")
    if nbytes <= 0:
        fail(f"{path}: alloc.bytes must be positive, got {nbytes}")
    if nbytes < count:
        fail(
            f"{path}: alloc.bytes ({nbytes}) < alloc.count ({count}); "
            f"every allocation requests at least one byte"
        )
    if not errors:
        print(f"{path}: alloc.* profile counters: OK")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace")
    ap.add_argument("--stats")
    ap.add_argument("--decisions")
    ap.add_argument("--server-stats")
    ap.add_argument("--cache-stats")
    ap.add_argument("--alloc-stats")
    args = ap.parse_args()
    if not (args.trace or args.stats or args.decisions or args.server_stats
            or args.cache_stats or args.alloc_stats):
        ap.error(
            "nothing to check: pass --trace/--stats/--decisions/"
            "--server-stats/--cache-stats/--alloc-stats"
        )
    if args.trace:
        check_trace(args.trace)
    if args.stats:
        check_stats(args.stats)
    if args.decisions:
        check_decisions(args.decisions)
    if args.server_stats:
        check_server_stats(args.server_stats)
    if args.cache_stats:
        check_cache_stats(args.cache_stats)
    if args.alloc_stats:
        check_alloc_stats(args.alloc_stats)
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
