#!/usr/bin/env python3
"""Validate the observability outputs of `lsra run`.

Checks any of the three artifacts, failing (exit 1) on the first schema
violation:

  --trace t.json       Chrome trace_event document: a JSON object with a
                       traceEvents array of complete ("ph": "X") events
                       carrying name/cat/pid/tid and numeric ts/dur, with
                       spans properly nested per tid.
  --stats s.jsonl      Counter snapshot: one JSON object per line; an
                       optional leading {"kind": "meta"} line, then
                       counter/dist/hist/gauge lines sorted by name.
  --decisions d.jsonl  Decision log: {"kind": "decision"} lines with a
                       known event name and a 0/1 split flag.
  --server-stats s.jsonl
                       Stats snapshot written by `lsra serve`: the --stats
                       schema plus the server.* counter set (connections,
                       requests, accepted, completed, bytes_in, bytes_out),
                       the queue/latency histograms (server.queue_wait_us,
                       server.latency_us, server.compile_us,
                       server.queue_depth.dist) and the server.queue_depth /
                       server.inflight gauges, with the cross-counter
                       invariants (completed <= accepted <= requests, every
                       answered request accounted by exactly one outcome
                       counter, enqueued == dequeued and both gauges back to
                       zero after a graceful drain).
  --metrics m.json     StatsReply document fetched live via `lsra stats`:
                       versioned schema, count == sum-of-buckets for every
                       histogram, every rolling window <= lifetime, and
                       p50 <= p90 <= p95 <= p99 within [min, max]. Pass the
                       flag twice (earlier snapshot first) to also check
                       that counters and lifetime histogram counts are
                       monotone across snapshots.
  --records r.jsonl    Per-request records written by `lsra loadgen
                       --record-out`: unique ids, send_ns <= recv_ns,
                       non-negative queue_us / latency_ms.
  --join r.jsonl:l.jsonl
                       Join loadgen --record-out records against the server
                       --request-log by request id: every server-side record
                       must match a client record, arrive inside the
                       client's [send, recv] window, and agree on queue_us.
  --p99 m.json:r.jsonl
                       Compare the server-side latency histogram p99
                       (server.latency_us, lifetime) against the exact
                       client-side p99 over the loadgen records; they must
                       agree within max(40%, 3 ms) — histogram bucketing
                       contributes at most 2.5%, the rest is the
                       client-vs-server measurement span.
  --cache-stats s.jsonl
                       Stats snapshot from a cache-enabled run: the --stats
                       schema plus the cache.* counters (hits, misses,
                       insertions, evictions) and the cache.bytes /
                       cache.entries gauges, with the lifetime invariants
                       evictions <= insertions <= misses. When any
                       cache.l2.* metric is present the tier contract is
                       checked too: l2.hits + l2.misses <= cache.misses,
                       l2.fills <= cache.misses, and L2 occupancy within
                       cache.l2.capacity_bytes. --expect-l2-hits
                       additionally requires cache.l2.hits > 0 (the
                       cross-process warm-start assertion).
  --alloc-stats s.jsonl
                       Stats snapshot including the heap-allocation profile:
                       the --stats schema plus the alloc.count / alloc.bytes
                       counters (positive, with alloc.bytes >= alloc.count:
                       every allocation requests at least one byte).

Usage: check_trace.py [--trace FILE] [--stats FILE] [--decisions FILE]
                      [--server-stats FILE] [--cache-stats FILE]
                      [--alloc-stats FILE] [--metrics FILE ...]
                      [--records FILE] [--join REC:LOG] [--p99 METRICS:REC]
"""

import argparse
import json
import sys

DECISION_EVENTS = {
    "evict-store",
    "evict-convention",
    "evict-move",
    "evict-drop",
    "second-chance-load",
    "second-chance-def",
    "coalesce-move",
    "spill-whole",
    "cache-hit",
}

errors = []


def fail(msg):
    errors.append(msg)


def check_trace(path):
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
            return
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: top level must be an object with a traceEvents array")
        return
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
        return
    per_tid = {}
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where}: not an object")
            continue
        if e.get("ph") != "X":
            fail(f"{where}: ph must be 'X', got {e.get('ph')!r}")
        for key in ("name", "cat"):
            if not isinstance(e.get(key), str) or not e[key]:
                fail(f"{where}: missing or empty '{key}'")
        for key in ("ts", "dur"):
            if not isinstance(e.get(key), (int, float)):
                fail(f"{where}: '{key}' must be a number")
            elif e[key] < 0:
                fail(f"{where}: '{key}' must be non-negative")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"{where}: '{key}' must be an integer")
        # Request-scoped spans (cat "request") are logical per-request
        # tracks flushed through whichever worker finished the request;
        # they are exempt from the per-thread stack discipline.
        if isinstance(e.get("tid"), int) and e.get("cat") != "request":
            per_tid.setdefault(e["tid"], []).append(e)

    # Per-tid nesting: spans on one thread must form a stack (the format
    # renders them as stacked slices; overlap without containment is a bug).
    for tid, spans in per_tid.items():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for e in spans:
            end = e["ts"] + e["dur"]
            while stack and e["ts"] >= stack[-1]:
                stack.pop()
            if stack and end > stack[-1]:
                fail(
                    f"{path}: tid {tid}: span '{e['name']}' "
                    f"[{e['ts']}, {end}) overlaps an enclosing span "
                    f"without nesting inside it"
                )
                continue
            stack.append(end)
    print(f"{path}: {len(events)} events on {len(per_tid)} thread(s): OK"
          if not errors else f"{path}: checked")


def check_jsonl_lines(path):
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{lineno}: not valid JSON: {e}")
                continue
            if not isinstance(obj, dict):
                fail(f"{path}:{lineno}: not a JSON object")
                continue
            yield lineno, obj


def check_stats(path):
    prev_name = None
    n = 0
    for lineno, obj in check_jsonl_lines(path):
        where = f"{path}:{lineno}"
        kind = obj.get("kind")
        if kind == "meta":
            if lineno != 1:
                fail(f"{where}: meta line must come first")
            continue
        if kind not in ("counter", "dist", "hist", "gauge"):
            fail(f"{where}: kind must be meta/counter/dist/hist/gauge, "
                 f"got {kind!r}")
            continue
        name = obj.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing 'name'")
            continue
        if prev_name is not None and name < prev_name:
            fail(f"{where}: names not sorted ({name!r} after {prev_name!r})")
        prev_name = name
        if kind == "counter":
            if not isinstance(obj.get("value"), int):
                fail(f"{where}: counter 'value' must be an integer")
        elif kind == "gauge":
            if not isinstance(obj.get("value"), int):
                fail(f"{where}: gauge 'value' must be an integer")
        elif kind == "hist":
            for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
                if not isinstance(obj.get(key), (int, float)):
                    fail(f"{where}: hist '{key}' must be a number")
        else:
            for key in ("count", "sum", "min", "max", "mean"):
                if not isinstance(obj.get(key), (int, float)):
                    fail(f"{where}: dist '{key}' must be a number")
        n += 1
    if n == 0:
        fail(f"{path}: no counter/dist/hist/gauge lines")
    else:
        print(f"{path}: {n} counter/dist/hist/gauge lines: OK")


def check_decisions(path):
    n = 0
    for lineno, obj in check_jsonl_lines(path):
        where = f"{path}:{lineno}"
        if obj.get("kind") != "decision":
            fail(f"{where}: kind must be 'decision'")
            continue
        if not isinstance(obj.get("fn"), str) or not obj["fn"]:
            fail(f"{where}: missing 'fn'")
        event = obj.get("event")
        if event not in DECISION_EVENTS:
            fail(f"{where}: unknown event {event!r}")
        if obj.get("split") not in (0, 1):
            fail(f"{where}: 'split' must be 0 or 1")
        if not isinstance(obj.get("why"), str) or not obj["why"]:
            fail(f"{where}: missing 'why'")
        n += 1
    print(f"{path}: {n} decision lines: OK")


SERVER_COUNTERS = (
    "server.connections",
    "server.requests",
    "server.accepted",
    "server.completed",
    "server.bytes_in",
    "server.bytes_out",
)
SERVER_HISTS = (
    "server.queue_depth.dist",
    "server.queue_wait_us",
    "server.compile_us",
    "server.latency_us",
)
SERVER_GAUGES = ("server.queue_depth", "server.inflight")


def check_server_stats(path):
    """The --stats schema plus the server.* counter contract."""
    check_stats(path)
    counters = {}
    hists = {}
    gauges = {}
    for _lineno, obj in check_jsonl_lines(path):
        if obj.get("kind") == "counter":
            counters[obj.get("name")] = obj.get("value")
        elif obj.get("kind") == "hist":
            hists[obj.get("name")] = obj
        elif obj.get("kind") == "gauge":
            gauges[obj.get("name")] = obj.get("value")
    for name in SERVER_COUNTERS:
        if name not in counters:
            fail(f"{path}: missing required counter {name!r}")
    for name in SERVER_HISTS:
        if name not in hists:
            fail(f"{path}: missing required histogram {name!r}")
    for name in SERVER_GAUGES:
        if name not in gauges:
            fail(f"{path}: missing required gauge {name!r}")
    if any(n not in counters for n in SERVER_COUNTERS):
        return

    requests = counters["server.requests"]
    accepted = counters["server.accepted"]
    completed = counters["server.completed"]
    if not (completed <= accepted <= requests):
        fail(
            f"{path}: expected completed <= accepted <= requests, got "
            f"{completed} / {accepted} / {requests}"
        )
    # Every request is answered by exactly one typed outcome: CompileOk,
    # Error, Rejected, DeadlineExceeded, or ShuttingDown.
    outcomes = completed + sum(
        counters.get(f"server.{n}", 0)
        for n in ("parse_errors", "rejected", "deadline_exceeded",
                  "shutdown_rejected")
    )
    if outcomes != requests:
        fail(
            f"{path}: outcome counters sum to {outcomes}, "
            f"but server.requests is {requests}"
        )
    # Tiered serving: a requalification only ever follows a tier-0 answer,
    # so the promotion tally can never outrun the tier-0 tally; and a
    # promotion is background work, never a request outcome (the outcome
    # sum above already enforces that by not including it).
    tier0 = counters.get("server.tier0", 0)
    promoted = counters.get("server.promoted", 0)
    if promoted > tier0:
        fail(
            f"{path}: server.promoted {promoted} exceeds server.tier0 "
            f"{tier0}"
        )
    if requests and counters["server.bytes_in"] <= 0:
        fail(f"{path}: server.bytes_in must be positive when requests > 0")
    if requests and counters["server.bytes_out"] <= 0:
        fail(f"{path}: server.bytes_out must be positive when requests > 0")

    # Queue accounting: after a graceful drain every admitted request has
    # been dequeued and handled, and the live gauges have returned to zero.
    enq = counters.get("server.enqueued")
    deq = counters.get("server.dequeued")
    if enq is not None and deq is not None and enq != deq:
        fail(f"{path}: server.enqueued {enq} != server.dequeued {deq} "
             f"after drain")
    for name in SERVER_GAUGES:
        if gauges.get(name) not in (None, 0):
            fail(f"{path}: gauge {name} must be 0 after drain, "
                 f"got {gauges[name]}")
    # Every answered admitted request records exactly one queue wait and
    # one total latency. Admitted requests are the dequeued ones plus the
    # merged waiters, which piggyback on an in-flight compile and never
    # occupy a queue slot.
    lat = hists.get("server.latency_us")
    qwait = hists.get("server.queue_wait_us")
    merged = counters.get("server.merged", 0)
    if lat is not None and qwait is not None:
        if lat.get("count") != qwait.get("count"):
            fail(
                f"{path}: server.latency_us count {lat.get('count')} != "
                f"server.queue_wait_us count {qwait.get('count')}"
            )
        if deq is not None and lat.get("count") != deq + merged:
            fail(
                f"{path}: server.latency_us count {lat.get('count')} != "
                f"server.dequeued {deq} + server.merged {merged}"
            )
        if lat.get("count", 0) < completed:
            fail(
                f"{path}: server.latency_us count {lat.get('count')} < "
                f"server.completed {completed}"
            )
    if not errors:
        print(f"{path}: server.* counter contract: OK")


CACHE_COUNTERS = (
    "cache.hits",
    "cache.misses",
    "cache.insertions",
    "cache.evictions",
)


def check_cache_stats(path, expect_l2_hits=False):
    """The --stats schema plus the cache.* (and cache.l2.*) contracts."""
    check_stats(path)
    counters = {}
    gauges = {}
    for _lineno, obj in check_jsonl_lines(path):
        if obj.get("kind") == "counter":
            counters[obj.get("name")] = obj.get("value")
        elif obj.get("kind") == "gauge":
            gauges[obj.get("name")] = obj.get("value")
    # Counters register on their first bump, so a cold run has only
    # cache.misses; hits/insertions/evictions appear once one happened.
    if "cache.misses" not in counters:
        fail(f"{path}: missing required counter 'cache.misses'")
        return
    hits = counters.get("cache.hits", 0)
    misses = counters["cache.misses"]
    insertions = counters.get("cache.insertions", 0)
    evictions = counters.get("cache.evictions", 0)
    if hits + misses <= 0:
        fail(f"{path}: cache was never consulted (hits + misses == 0)")
    # Lifetime invariants: every insertion follows a miss, every eviction
    # follows an insertion.
    if not (evictions <= insertions <= misses):
        fail(
            f"{path}: expected evictions <= insertions <= misses, got "
            f"{evictions} / {insertions} / {misses}"
        )
    if insertions and "cache.bytes" not in gauges:
        fail(f"{path}: missing cache.bytes gauge despite insertions")
    if insertions and not evictions and gauges.get("cache.bytes", 0) <= 0:
        fail(f"{path}: cache.bytes gauge must be positive with live entries")
    # L2 tier contract, active once any cache.l2.* metric is present.
    l2_hits = counters.get("cache.l2.hits", 0)
    l2_misses = counters.get("cache.l2.misses", 0)
    l2_fills = counters.get("cache.l2.fills", 0)
    has_l2 = (any(n.startswith("cache.l2.") for n in counters)
              or any(n.startswith("cache.l2.") for n in gauges))
    if expect_l2_hits and not has_l2:
        fail(f"{path}: --expect-l2-hits but no cache.l2.* metrics present")
    if has_l2:
        # Every L2 probe (hit or miss) follows an L1 miss, and an entry is
        # only published after a compile that itself followed an L1 miss.
        if l2_hits + l2_misses > misses:
            fail(
                f"{path}: L2 probes ({l2_hits} + {l2_misses}) exceed L1 "
                f"misses ({misses}); the L2 is only probed after an L1 miss"
            )
        if l2_fills > misses:
            fail(
                f"{path}: cache.l2.fills ({l2_fills}) > cache.misses "
                f"({misses}); publishes follow compiles, compiles follow "
                f"L1 misses"
            )
        cap = gauges.get("cache.l2.capacity_bytes", 0)
        occ = gauges.get("cache.l2.bytes", 0)
        if cap <= 0:
            fail(f"{path}: cache.l2.capacity_bytes must be positive")
        if occ > cap:
            fail(
                f"{path}: L2 occupancy {occ} exceeds its capacity {cap}"
            )
        if l2_fills and gauges.get("cache.l2.entries", 0) <= 0 \
                and not counters.get("cache.l2.invalidations", 0):
            fail(
                f"{path}: cache.l2.entries is zero despite {l2_fills} "
                f"fills and no invalidations"
            )
        if expect_l2_hits and l2_hits <= 0:
            fail(f"{path}: expected cache.l2.hits > 0, got {l2_hits}")
    if not errors:
        tier = " + cache.l2.*" if has_l2 else ""
        print(f"{path}: cache.*{tier} counter contract: OK")


def check_alloc_stats(path):
    """The --stats schema plus the alloc.count / alloc.bytes profile."""
    check_stats(path)
    counters = {}
    for _lineno, obj in check_jsonl_lines(path):
        if obj.get("kind") == "counter":
            counters[obj.get("name")] = obj.get("value")
    for name in ("alloc.count", "alloc.bytes"):
        if name not in counters:
            fail(f"{path}: missing required counter {name!r}")
    if any(n not in counters for n in ("alloc.count", "alloc.bytes")):
        return
    count = counters["alloc.count"]
    nbytes = counters["alloc.bytes"]
    if count == 0 and nbytes == 0:
        # Sanitizer builds disable the operator new/delete interposer; the
        # counters are present but empty. Nothing further to validate.
        print(f"{path}: alloc.* profile disabled (sanitizer build): skipped")
        return
    if count <= 0:
        fail(f"{path}: alloc.count must be positive, got {count}")
    if nbytes <= 0:
        fail(f"{path}: alloc.bytes must be positive, got {nbytes}")
    if nbytes < count:
        fail(
            f"{path}: alloc.bytes ({nbytes}) < alloc.count ({count}); "
            f"every allocation requests at least one byte"
        )
    if not errors:
        print(f"{path}: alloc.* profile counters: OK")


HIST_VIEWS = ("life", "w1", "w10", "w60")


def load_metrics_doc(path):
    """Parse one StatsReply JSON document, or None after a fail()."""
    with open(path) as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
            return None
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
        return None
    return doc


def check_hist_view(where, view):
    """One rendered histogram view: field types, count == sum of buckets,
    percentile ordering inside [min, max]."""
    for key in ("count", "sum", "min", "max", "mean",
                "p50", "p90", "p95", "p99"):
        if not isinstance(view.get(key), (int, float)):
            fail(f"{where}: '{key}' must be a number")
            return
    buckets = view.get("buckets")
    if not isinstance(buckets, list):
        fail(f"{where}: 'buckets' must be an array")
        return
    total = 0
    prev_low = -1
    for b in buckets:
        if (not isinstance(b, list) or len(b) != 2
                or not all(isinstance(x, int) for x in b)):
            fail(f"{where}: bucket entries must be [low, count] int pairs")
            return
        low, count = b
        if low <= prev_low:
            fail(f"{where}: bucket lows must be strictly increasing")
        if count <= 0:
            fail(f"{where}: bucket counts must be positive (sparse form)")
        prev_low = low
        total += count
    if total != view["count"]:
        fail(f"{where}: count {view['count']} != sum of buckets {total}")
    if view["count"]:
        lo, hi = view["min"], view["max"]
        ps = [view["p50"], view["p90"], view["p95"], view["p99"]]
        if any(q < lo or q > hi for q in ps):
            fail(f"{where}: percentiles must lie within [min, max]")
        if any(a > b for a, b in zip(ps, ps[1:])):
            fail(f"{where}: p50 <= p90 <= p95 <= p99 violated: {ps}")
        if view["min"] > view["max"]:
            fail(f"{where}: min {lo} > max {hi}")


def check_metrics(paths):
    """Live StatsReply documents: schema, per-histogram invariants, and
    (when two snapshots are given) cross-snapshot monotonicity."""
    docs = []
    for path in paths:
        doc = load_metrics_doc(path)
        if doc is None:
            continue
        if doc.get("schema") != 1:
            fail(f"{path}: schema must be 1, got {doc.get('schema')!r}")
        if not isinstance(doc.get("unix_ms"), int) or doc["unix_ms"] <= 0:
            fail(f"{path}: unix_ms must be a positive integer")
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(doc.get(section), dict):
                fail(f"{path}: missing '{section}' object")
        if errors:
            continue
        for name, v in doc["counters"].items():
            if not isinstance(v, int) or v < 0:
                fail(f"{path}: counter {name!r} must be a non-negative int")
        for name, v in doc["gauges"].items():
            if not isinstance(v, int):
                fail(f"{path}: gauge {name!r} must be an int")
        for name, h in doc["histograms"].items():
            if not isinstance(h, dict):
                fail(f"{path}: histogram {name!r} must be an object")
                continue
            for view_name in HIST_VIEWS:
                view = h.get(view_name)
                if not isinstance(view, dict):
                    fail(f"{path}: histogram {name!r} missing {view_name!r}")
                    continue
                check_hist_view(f"{path}: {name}.{view_name}", view)
            life = h.get("life", {})
            for w in ("w1", "w10", "w60"):
                win = h.get(w, {})
                if (isinstance(win.get("count"), int)
                        and isinstance(life.get("count"), int)
                        and win["count"] > life["count"]):
                    fail(
                        f"{path}: {name}.{w} count {win['count']} > "
                        f"lifetime count {life['count']}"
                    )
        docs.append((path, doc))
        print(f"{path}: {len(doc['counters'])} counters, "
              f"{len(doc['gauges'])} gauges, "
              f"{len(doc['histograms'])} histograms: OK")

    # Counters and lifetime histogram counts only ever grow; a later
    # snapshot going backwards means a counter was reset mid-run.
    for (p1, d1), (p2, d2) in zip(docs, docs[1:]):
        for name, v1 in d1["counters"].items():
            v2 = d2["counters"].get(name)
            if isinstance(v2, int) and v2 < v1:
                fail(f"{p2}: counter {name!r} went backwards "
                     f"({v1} -> {v2} vs {p1})")
        for name, h1 in d1["histograms"].items():
            c1 = h1.get("life", {}).get("count")
            c2 = d2["histograms"].get(name, {}).get("life", {}).get("count")
            if isinstance(c1, int) and isinstance(c2, int) and c2 < c1:
                fail(f"{p2}: histogram {name!r} lifetime count went "
                     f"backwards ({c1} -> {c2} vs {p1})")


def load_records(path):
    """Validated loadgen --record-out lines, keyed by request id."""
    records = {}
    for lineno, obj in check_jsonl_lines(path):
        where = f"{path}:{lineno}"
        if obj.get("kind") != "client-request":
            fail(f"{where}: kind must be 'client-request'")
            continue
        rid = obj.get("id")
        if not isinstance(rid, int) or rid <= 0:
            fail(f"{where}: 'id' must be a positive integer")
            continue
        if rid in records:
            fail(f"{where}: duplicate request id {rid}")
            continue
        ok = True
        for key in ("conn", "send_ns", "recv_ns", "queue_us"):
            if not isinstance(obj.get(key), int) or obj[key] < 0:
                fail(f"{where}: '{key}' must be a non-negative integer")
                ok = False
        if not isinstance(obj.get("status"), str) or not obj["status"]:
            fail(f"{where}: missing 'status'")
            ok = False
        if obj.get("cached") not in (0, 1):
            fail(f"{where}: 'cached' must be 0 or 1")
            ok = False
        if not isinstance(obj.get("latency_ms"), (int, float)):
            fail(f"{where}: 'latency_ms' must be a number")
            ok = False
        if ok and obj["recv_ns"] < obj["send_ns"]:
            fail(f"{where}: recv_ns precedes send_ns")
            ok = False
        if ok:
            records[rid] = obj
    return records


def check_records(path):
    records = load_records(path)
    if not records:
        fail(f"{path}: no client-request records")
    else:
        print(f"{path}: {len(records)} client-request records: OK")


REQUEST_PHASES = {
    "recv", "admit", "queue-wait", "merged", "cache-probe", "l2-probe",
    "parse",
    "alloc", "alloc:lower", "alloc:dce", "alloc:regalloc",
    "tier0-alloc", "promote",
    "emit", "reply",
}


def check_join(spec):
    """records.jsonl:request_log.jsonl — join by request id."""
    try:
        rec_path, log_path = spec.split(":", 1)
    except ValueError:
        fail(f"--join wants RECORDS:REQUEST_LOG, got {spec!r}")
        return
    records = load_records(rec_path)
    joined = 0
    for lineno, obj in check_jsonl_lines(log_path):
        where = f"{log_path}:{lineno}"
        if obj.get("kind") != "request":
            fail(f"{where}: kind must be 'request'")
            continue
        rid = obj.get("id")
        if not isinstance(rid, int):
            fail(f"{where}: 'id' must be an integer")
            continue
        for key in ("arrival_ns", "queue_us", "total_us"):
            if not isinstance(obj.get(key), int) or obj[key] < 0:
                fail(f"{where}: '{key}' must be a non-negative integer")
        phases = obj.get("phases")
        if not isinstance(phases, list) or not phases:
            fail(f"{where}: missing 'phases'")
        else:
            for ph in phases:
                if not isinstance(ph, dict) or ph.get("name") not in \
                        REQUEST_PHASES:
                    fail(f"{where}: unknown phase "
                         f"{ph.get('name') if isinstance(ph, dict) else ph!r}")
                elif (not isinstance(ph.get("rel_us"), int)
                      or not isinstance(ph.get("dur_us"), int)
                      or ph["rel_us"] < 0 or ph["dur_us"] < 0):
                    fail(f"{where}: phase {ph.get('name')!r} needs "
                         f"non-negative rel_us/dur_us")
        rec = records.get(rid)
        if rec is None:
            fail(f"{where}: request id {rid} has no client record")
            continue
        joined += 1
        # Same steady clock on both sides: the request reached the server
        # inside the client's [send, recv] window.
        if not (rec["send_ns"] <= obj.get("arrival_ns", 0) <=
                rec["recv_ns"]):
            fail(
                f"{where}: arrival_ns {obj.get('arrival_ns')} outside the "
                f"client window [{rec['send_ns']}, {rec['recv_ns']}]"
            )
        # Both queue_us fields are the same server-side measurement, one
        # reported in the response and one logged locally.
        if obj.get("queue_us") != rec["queue_us"]:
            fail(
                f"{where}: server queue_us {obj.get('queue_us')} != "
                f"client-reported queue_us {rec['queue_us']}"
            )
    if joined == 0:
        fail(f"{log_path}: no server records joined against {rec_path}")
    elif not errors:
        print(f"{log_path}: {joined} records joined against client view: OK")


def check_p99(spec):
    """metrics.json:records.jsonl — histogram p99 vs exact client p99."""
    try:
        metrics_path, rec_path = spec.split(":", 1)
    except ValueError:
        fail(f"--p99 wants METRICS:RECORDS, got {spec!r}")
        return
    doc = load_metrics_doc(metrics_path)
    records = load_records(rec_path)
    if doc is None or not records:
        return
    hist = doc.get("histograms", {}).get("server.latency_us", {}).get("life")
    if not isinstance(hist, dict) or not isinstance(
            hist.get("p99"), (int, float)):
        fail(f"{metrics_path}: missing server.latency_us lifetime p99")
        return
    hist_p99_ms = hist["p99"] / 1000.0
    lats = sorted(r["latency_ms"] for r in records.values())
    rank = 0.99 * (len(lats) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(lats) - 1)
    exact_p99 = lats[lo] + (rank - lo) * (lats[hi] - lats[lo])
    # The histogram contributes <= 2.5% relative error; the rest of the
    # budget covers the client-vs-server measurement span (transport and
    # scheduling outside the server's arrival-to-reply window).
    tol = max(0.40 * max(exact_p99, hist_p99_ms), 3.0)
    if abs(hist_p99_ms - exact_p99) > tol:
        fail(
            f"{metrics_path}: histogram p99 {hist_p99_ms:.3f} ms vs exact "
            f"client p99 {exact_p99:.3f} ms differ beyond max(40%, 3 ms)"
        )
    else:
        print(
            f"{metrics_path}: histogram p99 {hist_p99_ms:.3f} ms agrees "
            f"with exact client p99 {exact_p99:.3f} ms: OK"
        )


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace")
    ap.add_argument("--stats")
    ap.add_argument("--decisions")
    ap.add_argument("--server-stats")
    ap.add_argument("--cache-stats")
    ap.add_argument("--expect-l2-hits", action="store_true")
    ap.add_argument("--alloc-stats")
    ap.add_argument("--metrics", action="append", default=[])
    ap.add_argument("--records")
    ap.add_argument("--join")
    ap.add_argument("--p99")
    args = ap.parse_args()
    if not (args.trace or args.stats or args.decisions or args.server_stats
            or args.cache_stats or args.alloc_stats or args.metrics
            or args.records or args.join or args.p99):
        ap.error(
            "nothing to check: pass --trace/--stats/--decisions/"
            "--server-stats/--cache-stats/--alloc-stats/--metrics/"
            "--records/--join/--p99"
        )
    if args.trace:
        check_trace(args.trace)
    if args.stats:
        check_stats(args.stats)
    if args.decisions:
        check_decisions(args.decisions)
    if args.server_stats:
        check_server_stats(args.server_stats)
    if args.cache_stats:
        check_cache_stats(args.cache_stats, expect_l2_hits=args.expect_l2_hits)
    if args.alloc_stats:
        check_alloc_stats(args.alloc_stats)
    if args.metrics:
        check_metrics(args.metrics)
    if args.records:
        check_records(args.records)
    if args.join:
        check_join(args.join)
    if args.p99:
        check_p99(args.p99)
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
