# Test driver: the bench regression gate itself. Runs bench_diff.py's
# --selftest (direction-aware tolerances, exact correctness counts, lost
# coverage, per-metric overrides), then self-compares every committed
# BENCH_*.json baseline — identity must always pass — and finally checks
# that an injected latency regression is caught. Invoked by ctest as
#   cmake -DPYTHON=... -DDIFFER=... -DREPO_DIR=... -DOUT_DIR=... -P this

execute_process(
  COMMAND "${PYTHON}" "${DIFFER}" "--selftest"
  RESULT_VARIABLE SELF_RC
  OUTPUT_VARIABLE SELF_OUT
  ERROR_VARIABLE SELF_ERR)
message(STATUS "${SELF_OUT}")
if(NOT SELF_RC EQUAL 0)
  message(FATAL_ERROR
          "bench_diff.py --selftest failed (rc=${SELF_RC}):\n${SELF_ERR}")
endif()

foreach(BENCH BENCH_serve.json BENCH_cache.json BENCH_compile_time.json)
  set(BASE "${REPO_DIR}/${BENCH}")
  if(NOT EXISTS "${BASE}")
    message(FATAL_ERROR "committed baseline ${BASE} is missing")
  endif()
  execute_process(
    COMMAND "${PYTHON}" "${DIFFER}" "${BASE}" "${BASE}"
    RESULT_VARIABLE DIFF_RC
    OUTPUT_VARIABLE DIFF_OUT
    ERROR_VARIABLE DIFF_ERR)
  message(STATUS "${BENCH} self-compare: ${DIFF_OUT}")
  if(NOT DIFF_RC EQUAL 0)
    message(FATAL_ERROR
            "${BENCH} does not self-compare clean (rc=${DIFF_RC}):\n"
            "${DIFF_OUT}${DIFF_ERR}")
  endif()
endforeach()

# Gate sensitivity: a candidate with a 10x p99 regression must fail.
set(REGRESSED "${OUT_DIR}/bench_diff_regressed.json")
file(READ "${REPO_DIR}/BENCH_serve.json" SERVE_JSON)
string(REGEX REPLACE "\"latency_p99_ms\": [0-9.]+"
       "\"latency_p99_ms\": 99999.0" SERVE_JSON "${SERVE_JSON}")
file(WRITE "${REGRESSED}" "${SERVE_JSON}")
execute_process(
  COMMAND "${PYTHON}" "${DIFFER}" "${REPO_DIR}/BENCH_serve.json"
          "${REGRESSED}"
  RESULT_VARIABLE BAD_RC
  OUTPUT_VARIABLE BAD_OUT
  ERROR_VARIABLE BAD_ERR)
if(BAD_RC EQUAL 0)
  message(FATAL_ERROR
          "bench_diff.py passed a 10x latency regression:\n${BAD_OUT}")
endif()
message(STATUS "injected regression correctly rejected")
