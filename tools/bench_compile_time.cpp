//===- tools/bench_compile_time.cpp - Table 3 JSON runner -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Machine-readable companion to bench/table3_compiletime: runs the Table 3
// workloads through every allocator at several thread counts and writes
// BENCH_compile_time.json (per record: workload, allocator, threads,
// wall-clock seconds, aggregate CPU seconds, and the allocation statistics).
//
// Usage: bench-compile-time [output.json]   (default BENCH_compile_time.json)
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRVerifier.h"
#include "regalloc/Registry.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "support/AllocProfile.h"
#include "support/MemStats.h"
#include "workloads/SyntheticModule.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifdef __GLIBC__
#include <malloc.h>
#endif

using namespace lsra;

namespace {

struct Workload {
  const char *Name;
  ScaledModuleOptions Opts;
};

struct Record {
  std::string Workload;
  const char *Allocator;
  unsigned Threads;
  double WallSeconds;
  double AllocCpuSeconds;
  AllocStats Stats;
  uint64_t Instrs = 0;        ///< input instructions (pre-allocation)
  uint64_t AllocCount = 0;    ///< heap allocations during the timed compile
  uint64_t AllocBytes = 0;    ///< requested bytes during the timed compile
  uint64_t PeakRssBytes = 0;  ///< sampled peak RSS over build + compile
  /// RSS immediately before the measured rep (after malloc_trim). Peak -
  /// base is the configuration's own footprint; the absolute peak also
  /// carries whatever heap residue earlier configurations left behind.
  uint64_t BaseRssBytes = 0;
  /// Per-phase span totals over the reps (pass/phase spans only; the
  /// per-function spans would bloat the record without adding a phase view).
  std::vector<obs::SpanSummary> Phases;
};

uint64_t moduleInstrs(const Module &M) {
  uint64_t N = 0;
  for (const auto &F : M.functions())
    N += F->numInstrs();
  return N;
}

/// Return freed arena memory to the OS so peak-RSS samples reflect the
/// measured configuration, not an earlier one's high-water mark.
void trimHeap() {
#ifdef __GLIBC__
  malloc_trim(0);
#endif
}

Record measure(const Workload &W, AllocatorKind K, unsigned Threads,
               const TargetDesc &TD) {
  Record R;
  R.Workload = W.Name;
  R.Allocator = allocatorName(K);
  R.Threads = Threads;
  R.WallSeconds = 1e9;
  R.AllocCpuSeconds = 1e9;
  obs::Tracer &Tracer = obs::Tracer::global();
  Tracer.reset();
  Tracer.enable();
  for (int Rep = 0; Rep < 5; ++Rep) { // best of five, as in the paper
    auto M = buildScaledModule(W.Opts);
    if (Rep == 0)
      R.Instrs = moduleInstrs(*M);
    ExecOptions EO;
    EO.Threads = Threads;
    AllocSnapshot A0 = allocSnapshot();
    AllocStats S = compileModule(*M, TD, K, {}, EO);
    AllocSnapshot DA = allocSnapshot() - A0;
    if (S.WallSeconds < R.WallSeconds) {
      R.AllocCount = DA.Count;
      R.AllocBytes = DA.Bytes;
    }
    R.WallSeconds = std::min(R.WallSeconds, S.WallSeconds);
    R.AllocCpuSeconds = std::min(R.AllocCpuSeconds, S.AllocSeconds);
    R.Stats = S;
  }
  Tracer.disable();
  for (const obs::SpanSummary &S : Tracer.summarize())
    if (std::string(S.Cat) != "function")
      R.Phases.push_back(S);
  Tracer.reset();
  return R;
}

/// One big-module configuration: build the whole module in memory, then
/// compile it. Two reps (the module alone takes seconds to build); peak RSS
/// is sampled across build + compile, which is the point — the resident
/// pipeline's footprint includes the whole module.
Record measureBigResident(const char *Name, const BigModuleOptions &Opts,
                          AllocatorKind K, unsigned Threads,
                          const TargetDesc &TD) {
  Record R;
  R.Workload = Name;
  R.Allocator = allocatorName(K);
  R.Threads = Threads;
  R.WallSeconds = 1e9;
  R.AllocCpuSeconds = 1e9;
  for (int Rep = 0; Rep < 2; ++Rep) {
    trimHeap();
    uint64_t Base = currentRssBytes();
    PeakRssSampler Rss;
    Rss.start();
    auto M = buildBigModule(Opts);
    if (Rep == 0)
      R.Instrs = moduleInstrs(*M);
    ExecOptions EO;
    EO.Threads = Threads;
    AllocSnapshot A0 = allocSnapshot();
    AllocStats S = compileModule(*M, TD, K, {}, EO);
    AllocSnapshot DA = allocSnapshot() - A0;
    uint64_t Peak = Rss.stop();
    if (S.WallSeconds < R.WallSeconds) {
      R.AllocCount = DA.Count;
      R.AllocBytes = DA.Bytes;
      R.PeakRssBytes = Peak;
      R.BaseRssBytes = Base;
    }
    R.WallSeconds = std::min(R.WallSeconds, S.WallSeconds);
    R.AllocCpuSeconds = std::min(R.AllocCpuSeconds, S.AllocSeconds);
    R.Stats = S;
  }
  return R;
}

/// The same big-module configuration through the streaming pipeline:
/// only the shell is resident; each body is generated, compiled, emitted
/// (instruction-counted here), and released. Peak RSS is the headline
/// number — it must stay bounded by the in-flight window, not grow with
/// the module.
Record measureBigStreaming(const char *Name, const BigModuleOptions &Opts,
                           AllocatorKind K, unsigned Threads,
                           const TargetDesc &TD) {
  Record R;
  R.Workload = Name;
  R.Allocator = allocatorName(K);
  R.Threads = Threads;
  R.WallSeconds = 1e9;
  R.AllocCpuSeconds = 1e9;
  BigModuleGenerator Gen(Opts);
  for (int Rep = 0; Rep < 2; ++Rep) {
    trimHeap();
    uint64_t Base = currentRssBytes();
    PeakRssSampler Rss;
    Rss.start();
    auto M = Gen.buildShell();
    std::atomic<uint64_t> InInstrs{0};
    std::atomic<uint64_t> OutInstrs{0};
    ExecOptions EO;
    EO.Threads = Threads;
    AllocSnapshot A0 = allocSnapshot();
    AllocStats S = compileModuleStreaming(
        *M, TD, K,
        [&](Module &Mod, unsigned I) {
          Gen.buildBody(Mod, I);
          InInstrs.fetch_add(Mod.function(I).numInstrs(),
                             std::memory_order_relaxed);
        },
        [&](unsigned, const Function &F) {
          OutInstrs.fetch_add(F.numInstrs(), std::memory_order_relaxed);
        },
        {}, EO);
    AllocSnapshot DA = allocSnapshot() - A0;
    uint64_t Peak = Rss.stop();
    if (OutInstrs.load() < InInstrs.load()) {
      std::fprintf(stderr, "error: streaming emitted fewer instructions "
                           "than it consumed\n");
      std::exit(1);
    }
    if (Rep == 0)
      R.Instrs = InInstrs.load();
    if (S.WallSeconds < R.WallSeconds) {
      R.AllocCount = DA.Count;
      R.AllocBytes = DA.Bytes;
      R.PeakRssBytes = Peak;
      R.BaseRssBytes = Base;
    }
    R.WallSeconds = std::min(R.WallSeconds, S.WallSeconds);
    R.AllocCpuSeconds = std::min(R.AllocCpuSeconds, S.AllocSeconds);
    R.Stats = S;
  }
  return R;
}

void emit(std::ostream &OS, const Record &R, bool Last) {
  const AllocStats &S = R.Stats;
  obs::JsonObject Phases;
  for (const obs::SpanSummary &P : R.Phases)
    Phases.field(P.Name.c_str(), P.TotalNs / 1e9);
  obs::JsonObject O;
  O.field("workload", R.Workload.c_str())
      .field("allocator", R.Allocator)
      .field("threads", R.Threads)
      .field("wall_s", R.WallSeconds)
      .field("alloc_cpu_s", R.AllocCpuSeconds)
      .field("instrs", R.Instrs)
      .field("alloc_count", R.AllocCount)
      .field("alloc_bytes", R.AllocBytes)
      .field("peak_rss_bytes", R.PeakRssBytes)
      .field("base_rss_bytes", R.BaseRssBytes)
      .field("reg_candidates", S.RegCandidates)
      .field("spilled_temps", S.SpilledTemps)
      .field("lifetime_splits", S.LifetimeSplits)
      .field("dataflow_iterations", S.DataflowIterations)
      .field("coloring_iterations", S.ColoringIterations)
      .field("interference_edges", S.InterferenceEdges)
      .field("evict_loads", S.EvictLoads)
      .field("evict_stores", S.EvictStores)
      .field("resolve_moves", S.ResolveMoves)
      .fieldRaw("phases_total_s", Phases.str());
  OS << "  " << O.str() << (Last ? "" : ",") << "\n";
}

/// CI smoke (--smoke): ~50k generated instructions through the streaming
/// pipeline, every allocated function structurally verified at emit time.
/// Small enough for the sanitizer configurations.
int runSmoke(const TargetDesc &TD) {
  BigModuleOptions Opts;
  Opts.NumFuncs = 30;
  Opts.InstrsPerFunc = 1700;
  Opts.LiveWindow = 24;
  Opts.BlocksPerFunc = 8;
  Opts.Seed = 5;
  BigModuleGenerator Gen(Opts);
  auto M = Gen.buildShell();
  ExecOptions EO;
  EO.Threads = 4;
  VerifyOptions VO;
  VO.RequireAllocated = true;
  VO.RequireLoweredCalls = true;
  std::atomic<uint64_t> InInstrs{0}, OutInstrs{0};
  std::atomic<unsigned> Bad{0};
  compileModuleStreaming(
      *M, TD, AllocatorKind::SecondChanceBinpack,
      [&](Module &Mod, unsigned I) {
        Gen.buildBody(Mod, I);
        InInstrs.fetch_add(Mod.function(I).numInstrs(),
                           std::memory_order_relaxed);
      },
      [&](unsigned I, const Function &F) {
        std::string Diag = verifyFunction(F, *M, VO);
        if (!Diag.empty()) {
          std::fprintf(stderr, "smoke: function %u failed verify: %s\n", I,
                       Diag.c_str());
          Bad.fetch_add(1);
        }
        OutInstrs.fetch_add(F.numInstrs(), std::memory_order_relaxed);
      },
      {}, EO);
  if (Bad.load())
    return 1;
  std::printf("smoke: %u functions, %llu -> %llu instructions, verified\n",
              Gen.numFunctions(),
              static_cast<unsigned long long>(InInstrs.load()),
              static_cast<unsigned long long>(OutInstrs.load()));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_compile_time.json";
  bool SkipBig = false, BigOnly = false, Smoke = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--skip-big")
      SkipBig = true;
    else if (A == "--big-only")
      BigOnly = true;
    else if (A == "--smoke")
      Smoke = true;
    else
      OutPath = A;
  }
  TargetDesc TD = TargetDesc::alphaLike();
  if (Smoke)
    return runSmoke(TD);

  Workload Workloads[] = {
      {"cvrin-like", {4, 245, 8, 6, 11}},
      {"twldrv-like", {1, 6218, 48, 10, 22}},
      {"fpppp-like", {2, 3348, 56, 8, 33}},
      {"many-proc", {16, 500, 24, 6, 44}},
  };
  // Every registered backend, EBB tier-0 included, so a new allocator
  // lands in the benchmark the moment it registers.
  std::vector<AllocatorKind> Kinds = AllocatorRegistry::global().kinds();
  unsigned ThreadCounts[] = {1, 2, 4};

  std::vector<Record> Records;
  if (!BigOnly)
    for (const Workload &W : Workloads)
      for (AllocatorKind K : Kinds)
        for (unsigned T : ThreadCounts) {
          Records.push_back(measure(W, K, T, TD));
          std::printf("%-12s %-22s T=%u  wall %.4fs  cpu %.4fs\n", W.Name,
                      allocatorName(K), T, Records.back().WallSeconds,
                      Records.back().AllocCpuSeconds);
        }

  if (!SkipBig) {
    // The million-instruction scaling runs (EXPERIMENTS.md): ~1M
    // instructions across 600 skewed-size procedures. Graph coloring is
    // excluded here — its interference-edge blowup makes it minutes-slow at
    // this scale and Table 3 already characterises it.
    BigModuleOptions Big;
    Big.NumFuncs = 600;
    Big.InstrsPerFunc = 1700;
    Big.LiveWindow = 24;
    Big.BlocksPerFunc = 8;
    Big.Seed = 99;
    struct BigConfig {
      AllocatorKind K;
      unsigned Threads;
    } BigConfigs[] = {
        {AllocatorKind::SecondChanceBinpack, 1},
        {AllocatorKind::SecondChanceBinpack, 2},
        {AllocatorKind::SecondChanceBinpack, 4},
        {AllocatorKind::SecondChanceBinpack, 8},
        {AllocatorKind::TwoPassBinpack, 4},
        {AllocatorKind::PolettoScan, 4},
        {AllocatorKind::EbbScan, 4},
    };
    auto Report = [](const Record &R) {
      std::printf("%-14s %-22s T=%u  wall %.4fs  rss %.0fMB  allocs/instr "
                  "%.2f\n",
                  R.Workload.c_str(), R.Allocator, R.Threads, R.WallSeconds,
                  R.PeakRssBytes / 1048576.0,
                  R.Instrs ? static_cast<double>(R.AllocCount) / R.Instrs
                           : 0.0);
    };
    // Streaming rows first: they must observe a heap that was never
    // stretched by a resident whole-module build, or the RSS samples would
    // measure the allocator's high-water mark instead of the pipeline's.
    for (const BigConfig &C : BigConfigs) {
      Records.push_back(
          measureBigStreaming("big-1m-stream", Big, C.K, C.Threads, TD));
      Report(Records.back());
    }
    for (const BigConfig &C : BigConfigs) {
      Records.push_back(
          measureBigResident("big-1m", Big, C.K, C.Threads, TD));
      Report(Records.back());
    }
  }

  std::ofstream OS(OutPath);
  if (!OS) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 OutPath.c_str());
    return 1;
  }
  OS << "[\n";
  for (size_t I = 0; I < Records.size(); ++I)
    emit(OS, Records[I], I + 1 == Records.size());
  OS << "]\n";
  std::printf("wrote %zu records to %s\n", Records.size(), OutPath.c_str());
  return 0;
}
