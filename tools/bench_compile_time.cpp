//===- tools/bench_compile_time.cpp - Table 3 JSON runner -------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Machine-readable companion to bench/table3_compiletime: runs the Table 3
// workloads through every allocator at several thread counts and writes
// BENCH_compile_time.json (per record: workload, allocator, threads,
// wall-clock seconds, aggregate CPU seconds, and the allocation statistics).
//
// Usage: bench-compile-time [output.json]   (default BENCH_compile_time.json)
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "workloads/SyntheticModule.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace lsra;

namespace {

struct Workload {
  const char *Name;
  ScaledModuleOptions Opts;
};

struct Record {
  const char *Workload;
  const char *Allocator;
  unsigned Threads;
  double WallSeconds;
  double AllocCpuSeconds;
  AllocStats Stats;
  /// Per-phase span totals over the five reps (pass/phase spans only; the
  /// per-function spans would bloat the record without adding a phase view).
  std::vector<obs::SpanSummary> Phases;
};

Record measure(const Workload &W, AllocatorKind K, unsigned Threads,
               const TargetDesc &TD) {
  Record R;
  R.Workload = W.Name;
  R.Allocator = allocatorName(K);
  R.Threads = Threads;
  R.WallSeconds = 1e9;
  R.AllocCpuSeconds = 1e9;
  obs::Tracer &Tracer = obs::Tracer::global();
  Tracer.reset();
  Tracer.enable();
  for (int Rep = 0; Rep < 5; ++Rep) { // best of five, as in the paper
    auto M = buildScaledModule(W.Opts);
    ExecOptions EO;
    EO.Threads = Threads;
    AllocStats S = compileModule(*M, TD, K, {}, EO);
    R.WallSeconds = std::min(R.WallSeconds, S.WallSeconds);
    R.AllocCpuSeconds = std::min(R.AllocCpuSeconds, S.AllocSeconds);
    R.Stats = S;
  }
  Tracer.disable();
  for (const obs::SpanSummary &S : Tracer.summarize())
    if (std::string(S.Cat) != "function")
      R.Phases.push_back(S);
  Tracer.reset();
  return R;
}

void emit(std::ostream &OS, const Record &R, bool Last) {
  const AllocStats &S = R.Stats;
  obs::JsonObject Phases;
  for (const obs::SpanSummary &P : R.Phases)
    Phases.field(P.Name.c_str(), P.TotalNs / 1e9);
  obs::JsonObject O;
  O.field("workload", R.Workload)
      .field("allocator", R.Allocator)
      .field("threads", R.Threads)
      .field("wall_s", R.WallSeconds)
      .field("alloc_cpu_s", R.AllocCpuSeconds)
      .field("reg_candidates", S.RegCandidates)
      .field("spilled_temps", S.SpilledTemps)
      .field("lifetime_splits", S.LifetimeSplits)
      .field("dataflow_iterations", S.DataflowIterations)
      .field("coloring_iterations", S.ColoringIterations)
      .field("interference_edges", S.InterferenceEdges)
      .field("evict_loads", S.EvictLoads)
      .field("evict_stores", S.EvictStores)
      .field("resolve_moves", S.ResolveMoves)
      .fieldRaw("phases_total_s", Phases.str());
  OS << "  " << O.str() << (Last ? "" : ",") << "\n";
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_compile_time.json";
  TargetDesc TD = TargetDesc::alphaLike();

  Workload Workloads[] = {
      {"cvrin-like", {4, 245, 8, 6, 11}},
      {"twldrv-like", {1, 6218, 48, 10, 22}},
      {"fpppp-like", {2, 3348, 56, 8, 33}},
      {"many-proc", {16, 500, 24, 6, 44}},
  };
  AllocatorKind Kinds[] = {
      AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
      AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan};
  unsigned ThreadCounts[] = {1, 2, 4};

  std::vector<Record> Records;
  for (const Workload &W : Workloads)
    for (AllocatorKind K : Kinds)
      for (unsigned T : ThreadCounts) {
        Records.push_back(measure(W, K, T, TD));
        std::printf("%-12s %-22s T=%u  wall %.4fs  cpu %.4fs\n", W.Name,
                    allocatorName(K), T, Records.back().WallSeconds,
                    Records.back().AllocCpuSeconds);
      }

  std::ofstream OS(OutPath);
  if (!OS) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 OutPath.c_str());
    return 1;
  }
  OS << "[\n";
  for (size_t I = 0; I < Records.size(); ++I)
    emit(OS, Records[I], I + 1 == Records.size());
  OS << "]\n";
  std::printf("wrote %zu records to %s\n", Records.size(), OutPath.c_str());
  return 0;
}
