#!/usr/bin/env python3
"""Regression gate: compare two BENCH_*.json files metric by metric.

Both files hold a JSON array of row objects (the format written by
bench-serve / bench-cache / bench-compile-time and `lsra loadgen --json`).
Rows are matched across files by their *configuration*: every string-valued
field plus the workload-shape integers (workers, threads, concurrency,
requests, qps, deadline_ms, unique_programs, regs, no_cache). The remaining
numeric fields are metrics, classified by name:

  lower-is-better   *_s, *_ms, *latency*, *wall*, *_bytes, *_count, *rss*
                    fail when candidate > baseline * (1 + tol) + abs-slack
  higher-is-better  *throughput*, *speedup*, *hit* (rates)
                    fail when candidate < baseline * (1 - tol)
  exact             identical, ok, sent, errors, transport_errors --
                    correctness counts that must not change at all
  informational     everything else: reported in the verdict, never fails

Default tolerance is 0.60 for timing metrics (benchmarks on shared CI are
noisy) and 0.40 for rates; override per metric with --tol NAME=REL and
--abs NAME=VALUE (absolute slack, added on top of the relative band).

The last stdout line is a machine-readable verdict:

  {"kind": "bench-diff", "verdict": "pass"|"fail", "rows": N,
   "compared": M, "regressions": [...], "missing": [...], "new": K}

Exit status: 0 pass, 1 regression or lost coverage, 2 usage/parse error.

Usage: bench_diff.py BASELINE CANDIDATE [--tol NAME=REL] [--abs NAME=V]
       bench_diff.py --selftest
"""

import argparse
import json
import sys

# Integer fields that shape the workload rather than measure it: part of
# the row key, never compared as metrics.
CONFIG_INT_FIELDS = {
    "workers", "threads", "concurrency", "requests", "qps", "deadline_ms",
    "unique_programs", "regs", "no_cache", "connections", "pipeline",
}

EXACT_METRICS = {"identical", "ok", "sent", "errors", "transport_errors",
                 "protocol_errors", "verify_mismatches"}

HIGHER_IS_BETTER = ("throughput", "speedup", "hit")
LOWER_IS_BETTER = ("_s", "_ms", "latency", "wall", "_bytes", "_count", "rss")

DEFAULT_TIME_TOL = 0.60
DEFAULT_RATE_TOL = 0.40
# Absolute slack floors: a 0.1 ms p99 doubling to 0.2 ms is noise, not a
# regression worth gating on.
DEFAULT_ABS = {"_ms": 2.0, "_s": 0.05}


def classify(name):
    """-> 'exact' | 'higher' | 'lower' | 'info'."""
    if name in EXACT_METRICS:
        return "exact"
    if any(tag in name for tag in HIGHER_IS_BETTER):
        return "higher"
    if any(name.endswith(tag) or tag.strip("_") in name
           for tag in LOWER_IS_BETTER):
        return "lower"
    return "info"


def default_abs(name):
    for suffix, slack in DEFAULT_ABS.items():
        if name.endswith(suffix):
            return slack
    return 0.0


def row_key(row):
    """Hashable configuration key: sorted string fields + config ints."""
    parts = []
    for k in sorted(row):
        v = row[k]
        if isinstance(v, str) or (k in CONFIG_INT_FIELDS
                                  and isinstance(v, (int, float))):
            parts.append((k, v))
    return tuple(parts)


def metric_fields(row):
    return {
        k: v for k, v in row.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
        and k not in CONFIG_INT_FIELDS
    }


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    rows = {}
    for i, row in enumerate(doc):
        if not isinstance(row, dict):
            raise ValueError(f"{path}: row {i} is not an object")
        key = row_key(row)
        # Repeated configurations (rare: re-run appends) keep the last row,
        # matching "latest result wins".
        rows[key] = row
    return rows


def compare_metric(name, base, cand, rel_tol, abs_slack):
    """-> (regressed: bool, detail: dict) for one matched metric."""
    kind = classify(name)
    detail = {"metric": name, "base": base, "cand": cand, "class": kind}
    if kind == "exact":
        return cand != base, detail
    if kind == "higher":
        tol = DEFAULT_RATE_TOL if rel_tol is None else rel_tol
        floor = base * (1.0 - tol) - (abs_slack or 0.0)
        detail["floor"] = floor
        return cand < floor, detail
    if kind == "lower":
        tol = DEFAULT_TIME_TOL if rel_tol is None else rel_tol
        slack = default_abs(name) if abs_slack is None else abs_slack
        ceiling = base * (1.0 + tol) + slack
        detail["ceiling"] = ceiling
        return cand > ceiling, detail
    return False, detail


def diff(base_rows, cand_rows, tols, abss):
    """-> verdict dict; 'regressions' lists every gated failure."""
    regressions = []
    missing = []
    compared = 0
    for key, base in base_rows.items():
        cand = cand_rows.get(key)
        if cand is None:
            missing.append(dict(key))
            continue
        base_metrics = metric_fields(base)
        cand_metrics = metric_fields(cand)
        for name, bval in sorted(base_metrics.items()):
            cval = cand_metrics.get(name)
            if cval is None:
                continue  # metric dropped: schema change, not a regression
            compared += 1
            bad, detail = compare_metric(name, bval, cval, tols.get(name),
                                         abss.get(name))
            if bad:
                detail["row"] = dict(key)
                regressions.append(detail)
    new = sum(1 for key in cand_rows if key not in base_rows)
    verdict = "pass" if not regressions and not missing else "fail"
    return {
        "kind": "bench-diff",
        "verdict": verdict,
        "rows": len(base_rows),
        "compared": compared,
        "regressions": regressions,
        "missing": missing,
        "new": new,
    }


def parse_overrides(pairs, what):
    out = {}
    for pair in pairs or []:
        name, _, value = pair.partition("=")
        if not name or not value:
            raise ValueError(f"--{what} wants NAME=VALUE, got {pair!r}")
        out[name] = float(value)
    return out


def selftest():
    def rows(latency, thr, ok=64, errors=0, wall=1.0):
        return {
            row_key(r): r for r in [
                {"kind": "loadgen", "allocator": "binpack", "requests": 64,
                 "latency_p99_ms": latency, "throughput_rps": thr,
                 "wall_s": wall, "ok": ok, "errors": errors},
            ]
        }

    b = rows(10.0, 500.0)
    checks = [
        # Identity compares clean.
        ("identity", rows(10.0, 500.0), "pass"),
        # Inside the band: 30% slower latency, 20% lower throughput.
        ("within-tolerance", rows(13.0, 400.0), "pass"),
        # Beyond the band: latency blows past 60% + 2 ms slack.
        ("latency-regression", rows(20.0, 500.0), "fail"),
        # Direction-aware: throughput halving fails ...
        ("throughput-regression", rows(10.0, 200.0), "fail"),
        # ... but a large *improvement* on every axis passes.
        ("improvement", rows(1.0, 5000.0), "pass"),
        # Correctness counts are exact: one lost response fails.
        ("exact-count", rows(10.0, 500.0, ok=63), "fail"),
    ]
    failures = []
    for name, cand, want in checks:
        got = diff(b, cand, {}, {})["verdict"]
        status = "ok" if got == want else "MISMATCH"
        print(f"selftest {name}: want {want}, got {got}: {status}")
        if got != want:
            failures.append(name)
    # Lost coverage: a baseline row with no candidate match fails.
    gone = diff(b, {}, {}, {})
    print(f"selftest missing-row: want fail, got {gone['verdict']}: "
          f"{'ok' if gone['verdict'] == 'fail' else 'MISMATCH'}")
    if gone["verdict"] != "fail":
        failures.append("missing-row")
    # Per-metric override: widening the latency band to 2x passes.
    wide = diff(b, rows(20.0, 500.0), {"latency_p99_ms": 1.5}, {})
    print(f"selftest tol-override: want pass, got {wide['verdict']}: "
          f"{'ok' if wide['verdict'] == 'pass' else 'MISMATCH'}")
    if wide["verdict"] != "pass":
        failures.append("tol-override")
    print(json.dumps({"kind": "bench-diff-selftest",
                      "verdict": "pass" if not failures else "fail",
                      "failures": failures}))
    return 0 if not failures else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", nargs="?")
    ap.add_argument("candidate", nargs="?")
    ap.add_argument("--tol", action="append", metavar="NAME=REL",
                    help="relative tolerance override for one metric")
    ap.add_argument("--abs", action="append", metavar="NAME=VALUE",
                    help="absolute slack override for one metric")
    ap.add_argument("--selftest", action="store_true")
    args = ap.parse_args()
    if args.selftest:
        return selftest()
    if not args.baseline or not args.candidate:
        ap.error("need BASELINE and CANDIDATE (or --selftest)")
    try:
        tols = parse_overrides(args.tol, "tol")
        abss = parse_overrides(args.abs, "abs")
        base_rows = load_rows(args.baseline)
        cand_rows = load_rows(args.candidate)
    except (ValueError, OSError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    verdict = diff(base_rows, cand_rows, tols, abss)
    for r in verdict["regressions"]:
        bound = r.get("ceiling", r.get("floor"))
        bound_txt = f" (bound {bound:.6g})" if bound is not None else ""
        print(f"regression: {r['metric']} {r['base']:.6g} -> "
              f"{r['cand']:.6g}{bound_txt} in {r['row']}", file=sys.stderr)
    for m in verdict["missing"]:
        print(f"missing row in candidate: {m}", file=sys.stderr)
    print(json.dumps(verdict))
    return 0 if verdict["verdict"] == "pass" else 1


if __name__ == "__main__":
    sys.exit(main())
