//===- tools/lsra.cpp - Command-line driver --------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the library:
//
//   lsra list
//       List the built-in workloads.
//   lsra print <input>
//       Dump a program in the textual IR form (parse it back with any
//       other subcommand).
//   lsra dot <input> [function]
//       Emit a Graphviz CFG.
//   lsra run <input> [--allocator=K] [--regs=N] [--no-alloc] [--cleanup]
//       Compile with the chosen allocator (default second-chance
//       binpacking) and execute on the VM; prints outputs and statistics.
//   lsra compare <input> [--regs=N]
//       Run the reference and every registered allocator; print a
//       comparison.
//
// <input> is either a built-in workload name (see `lsra list`) or a path
// to a textual IR file.
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"
#include "cache/SharedCache.h"
#include "check/Clone.h"
#include "check/Fuzz.h"
#include "check/Reduce.h"
#include "check/Verifier.h"
#include "regalloc/Registry.h"
#include "driver/Options.h"
#include "driver/Pipeline.h"
#include "ir/IRVerifier.h"
#include "passes/DCE.h"
#include "target/LowerCalls.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "obs/Counters.h"
#include "obs/DecisionLog.h"
#include "obs/Json.h"
#include "obs/Log.h"
#include "obs/Trace.h"
#include "server/Client.h"
#include "server/LoadGen.h"
#include "server/Server.h"
#include "workloads/Workloads.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

using namespace lsra;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lsra <command> [args]\n"
               "  list                          list built-in workloads\n"
               "  print <input>                 dump textual IR\n"
               "  dot <input> [function]        emit a Graphviz CFG\n"
               "  run <input> [options]         compile and execute\n"
               "  compare <input> [--regs=N]    compare all allocators\n"
               "  serve [options]               compile server (framed IR "
               "over a socket)\n"
               "  loadgen [options]             replay workloads against a "
               "server\n"
               "  stats <addr> [--prom|--text]  fetch a live metrics "
               "snapshot\n"
               "  top <addr> [options]          live-refresh server "
               "telemetry\n"
               "  fuzz [options]                differential allocator "
               "fuzzing\n"
               "  reduce <file> [options]       minimize a failing program "
               "(ddmin)\n"
               "options for serve:\n"
               "  --socket=PATH  unix-domain socket path (default "
               "/tmp/lsra.sock)\n"
               "  --port=N       loopback TCP instead of unix (0 = "
               "ephemeral)\n"
               "  --workers=N    compile workers (0 = hardware threads)\n"
               "  --queue=N      admission-queue bound (reject above; "
               "default 64)\n"
               "  --deadline-ms=N default per-request deadline (0 = none)\n"
               "  --stats-json=F write server.* counters as JSONL on exit\n"
               "  --sample=N     trace every Nth request (0 = off)\n"
               "  --request-log=F per-request JSONL timing records (implies "
               "--sample=1)\n"
               "  --trace-out=F  Chrome trace of sampled requests, written "
               "on exit\n"
               "  --l2-path=F    shared-memory L2 compile cache segment\n"
               "  --l2-mb=N      L2 segment budget in MiB (default 256)\n"
               "  --no-l2        disable the shared L2\n"
               "  --tier=P       default tier policy: off|tier0|promote\n"
               "                 (requests may override with the v4 tier "
               "field)\n"
               "options for loadgen:\n"
               "  --socket=PATH | --port=N      server address\n"
               "  --workloads=a,b,c  corpus to replay (default all)\n"
               "  --concurrency=N    client connections (default 4)\n"
               "  --requests=N       total requests (default 64)\n"
               "  --qps=R            open-loop arrival rate (0 = closed "
               "loop)\n"
               "  --connections=N    pipelined engine: drive N connections\n"
               "                     from one event loop (0 = thread fleet)\n"
               "  --pipeline=D       max in-flight requests per connection\n"
               "                     (pipelined engine; default 8)\n"
               "  --verify           byte-compare responses against offline\n"
               "                     compiles of the same corpus\n"
               "  --allocator=K --regs=N --run --deadline-ms=N  per-request\n"
               "  --tier=P           per-request tier policy override\n"
               "  --json=F           append the report as one JSON line\n"
               "  --record-out=F     per-request JSONL records (joins the\n"
               "                     server --request-log by request id)\n"
               "options for stats / top:\n"
               "  <addr>         --socket=PATH | --port=N (same as loadgen)\n"
               "  --prom | --text    rendering (stats; default json)\n"
               "  --interval-ms=N    refresh period for top (default 1000)\n"
               "  --count=N          stop top after N refreshes (0 = until "
               "interrupted)\n"
               "shared compile flags (run, serve, loadgen, reduce):\n"
               "%s"
               "options for run:\n"
               "  --no-alloc     execute with virtual registers (reference)\n"
               "  --emit-ir      print the final IR after allocation\n"
               "options for loadgen (repeated-mix):\n"
               "  --unique=K     cycle K seeded random programs instead of\n"
               "                 the workload corpus (cache hit-rate tests)\n"
               "  --mix-seed=N   base seed for --unique programs\n"
               "  --no-cache     ask the server to bypass its cache\n"
               "options for fuzz:\n"
               "  --seed=N --count=N            seed range (default 1..100)\n"
               "  --regs=a,b,c   register limits to stress (default 0,8,4)\n"
               "  --allocator=K  restrict to one allocator (default: every\n"
               "                 backend in the allocator registry)\n"
               "  --no-cleanup   skip the spill-cleanup configurations\n"
               "  --no-cache-diff  skip the cold/warm compile-cache oracle\n"
               "  --no-reduce    keep findings unminimized\n"
               "  --corpus=DIR   write minimized reproducers here\n"
               "  --max-findings=N  stop after N findings (default 8)\n"
               "  --statements=N    program size knob (default 60)\n"
               "options for reduce:\n"
               "  --allocator=K --regs=N --cleanup   failing configuration\n"
               "  -o FILE        write the minimized program here\n"
               "observability options for run:\n"
               "  --trace-out=F  write a Chrome trace_event JSON span trace\n"
               "  --stats-json=F write a JSONL counter/metrics snapshot\n"
               "  --explain[=F]  dump the allocation-decision log (stdout,\n"
               "                 or to F; JSONL when F ends in .jsonl)\n"
               "  --log-level=N  diagnostic verbosity on stderr (default 0)\n",
               compileFlagsHelp());
  return 2;
}

std::unique_ptr<Module> loadInput(const std::string &Input,
                                  std::string &Error) {
  std::ifstream File(Input);
  if (File.good()) {
    std::ostringstream SS;
    SS << File.rdbuf();
    ParseResult R = parseModule(SS.str());
    if (!R.ok()) {
      Error = Input + ": " + R.Error;
      return nullptr;
    }
    std::string Diag = verifyModule(*R.M);
    if (!Diag.empty()) {
      Error = Input + ": " + Diag;
      return nullptr;
    }
    return std::move(R.M);
  }
  for (const WorkloadSpec &W : allWorkloads())
    if (Input == W.Name)
      return W.Build();
  Error = "no such file or workload: '" + Input + "' (try `lsra list`)";
  return nullptr;
}

void printRun(const RunResult &Run) {
  if (!Run.Ok) {
    std::printf("execution FAILED: %s\n", Run.Error.c_str());
    return;
  }
  std::printf("return value: %lld\n", (long long)Run.ReturnValue);
  std::printf("output trace (%zu values):", Run.Output.size());
  for (unsigned I = 0; I < Run.Output.size() && I < 16; ++I)
    std::printf(" %llu", (unsigned long long)Run.Output[I]);
  if (Run.Output.size() > 16)
    std::printf(" ...");
  std::printf("\ndynamic instructions: %llu (cycles %llu)\n",
              (unsigned long long)Run.Stats.Total,
              (unsigned long long)Run.Stats.Cycles);
  std::printf("spill instructions:   %llu (%.3f%%)\n",
              (unsigned long long)Run.Stats.spillInstrs(),
              Run.Stats.spillPercent());
}

int cmdList() {
  for (const WorkloadSpec &W : allWorkloads())
    std::printf("%-10s %s\n", W.Name, W.Description);
  return 0;
}

int cmdPrint(const std::string &Input) {
  std::string Error;
  auto M = loadInput(Input, Error);
  if (!M) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  printModule(std::cout, *M);
  return 0;
}

int cmdDot(const std::string &Input, const char *FuncName) {
  std::string Error;
  auto M = loadInput(Input, Error);
  if (!M) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  const Function *F = FuncName ? M->findFunction(FuncName)
                               : M->findFunction("main");
  if (!F && M->numFunctions() > 0)
    F = &M->function(0);
  if (!F) {
    std::fprintf(stderr, "lsra: no function to plot\n");
    return 1;
  }
  printDotCFG(std::cout, *F, M.get());
  return 0;
}

/// Dump the decision log to stdout, or to \p Path (JSONL when the name
/// ends in ".jsonl", text otherwise).
bool dumpExplain(const std::string &Path) {
  obs::DecisionLog &DL = obs::DecisionLog::global();
  if (Path.empty()) {
    DL.writeText(std::cout);
    return true;
  }
  std::ofstream OS(Path);
  if (!OS.good()) {
    std::fprintf(stderr, "lsra: cannot write '%s'\n", Path.c_str());
    return false;
  }
  bool Jsonl = Path.size() >= 6 &&
               Path.compare(Path.size() - 6, 6, ".jsonl") == 0;
  if (Jsonl)
    DL.writeJsonl(OS);
  else
    DL.writeText(OS);
  return OS.good();
}

int cmdRun(const std::string &Input, int Argc, char **Argv) {
  CompileFlags F;
  bool NoAlloc = false, EmitIR = false;
  bool Explain = false;
  std::string TraceOut, StatsJson, ExplainOut;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    std::string FlagErr;
    if (parseCompileFlag(A, F, FlagErr)) {
      if (!FlagErr.empty()) {
        std::fprintf(stderr, "lsra: %s\n", FlagErr.c_str());
        return 2;
      }
    } else if (A == "--no-alloc") {
      NoAlloc = true;
    } else if (A == "--emit-ir") {
      EmitIR = true;
    } else if (A.rfind("--trace-out=", 0) == 0) {
      TraceOut = A.substr(12);
    } else if (A.rfind("--stats-json=", 0) == 0) {
      StatsJson = A.substr(13);
    } else if (A == "--explain") {
      Explain = true;
    } else if (A.rfind("--explain=", 0) == 0) {
      Explain = true;
      ExplainOut = A.substr(10);
    } else if (A.rfind("--log-level=", 0) == 0) {
      obs::setLogLevel(
          static_cast<unsigned>(std::strtoul(A.c_str() + 12, nullptr, 10)));
    } else {
      return usage();
    }
  }

  std::string Error;
  auto M = loadInput(Input, Error);
  if (!M) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  TargetDesc TD = targetForFlags(F);

  obs::Tracer &Tracer = obs::Tracer::global();
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  obs::DecisionLog &DL = obs::DecisionLog::global();
  if (!TraceOut.empty())
    Tracer.enable();
  if (!StatsJson.empty())
    CR.enable();
  if (Explain)
    DL.enable();

  if (NoAlloc) {
    RunResult Run = runReference(*M, TD);
    printRun(Run);
    if (!TraceOut.empty() && !Tracer.writeChromeJson(TraceOut)) {
      std::fprintf(stderr, "lsra: cannot write '%s'\n", TraceOut.c_str());
      return 1;
    }
    return Run.Ok ? 0 : 1;
  }

  // --verify-alloc: snapshot the allocator's exact input (lowering and DCE
  // are idempotent, so compileModule repeats them as no-ops) and prove the
  // allocated module equivalent to it afterwards.
  std::unique_ptr<Module> Snapshot;
  if (F.Exec.VerifyAlloc) {
    lowerCalls(*M);
    eliminateDeadCode(*M, TD);
    Snapshot = cloneModule(*M);
  }
  std::string L2Err;
  std::unique_ptr<cache::SharedCache> L2 = makeSharedCache(F, L2Err);
  if (!L2Err.empty()) {
    std::fprintf(stderr, "lsra: %s\n", L2Err.c_str());
    return 1;
  }
  std::unique_ptr<cache::CompileCache> Cache = makeCompileCache(F);
  if (Cache && L2)
    Cache->attachL2(L2.get());
  F.Exec.Cache = Cache.get();
  AllocStats Stats;
  if (Cache || F.Exec.Tier != TierPolicy::Off) {
    // With a cache attached, compile the way the server does: the whole
    // module as text through compileTextModule, so module-level entries
    // (the only kind the shared L2 carries) are probed and published and
    // a second `lsra run` against the same --l2-path warms from the
    // segment. The allocated text is parsed back for the VM run below;
    // print→parse is a fixed point, so the executed module is the same
    // either way. Tiered compiles take this path too — the tier-0
    // backend swap lives in compileTextModule.
    std::ostringstream SS;
    printModule(SS, *M);
    TextCompileResult R =
        compileTextModule(SS.str(), TD, F.Kind, F.Alloc, F.Exec);
    if (!R.Ok) {
      std::fprintf(stderr, "lsra: %s\n", R.Error.c_str());
      return 1;
    }
    ParseResult P = parseModule(R.AllocatedText);
    if (!P.ok()) {
      std::fprintf(stderr, "lsra: allocated module did not re-parse: %s\n",
                   P.Error.c_str());
      return 1;
    }
    M = std::move(P.M);
    Stats = R.Stats;
    if (R.CacheHit)
      std::printf("cache: hit (%s)\n", R.CacheL2 ? "shared l2" : "l1");
    if (R.Tier >= 0)
      std::printf("tier: %d (%s)\n", R.Tier,
                  R.Tier == 0 ? "ebb-scan fast path" : "full allocator");
  } else {
    Stats = compileModule(*M, TD, F.Kind, F.Alloc, F.Exec);
  }
  std::string Diag = checkAllocated(*M);
  if (!Diag.empty()) {
    std::fprintf(stderr, "lsra: post-allocation verification failed:\n%s\n",
                 Diag.c_str());
    return 1;
  }
  if (Snapshot) {
    check::VerifyAllocResult VR = check::verifyAllocation(*Snapshot, *M, TD);
    if (!VR.ok()) {
      std::fprintf(stderr, "lsra: allocation verification failed:\n%s",
                   VR.str().c_str());
      return 1;
    }
    std::printf("allocation verified (%u functions)\n", M->numFunctions());
  }
  std::printf("allocator: %s\n", allocatorName(F.Kind));
  std::printf("candidates=%u spilled=%u static-spill=%u coalesced=%u "
              "splits=%u alloc-time=%.4fs\n",
              Stats.RegCandidates, Stats.SpilledTemps,
              Stats.staticSpillInstrs(), Stats.MovesCoalesced,
              Stats.LifetimeSplits, Stats.AllocSeconds);
  if (EmitIR)
    printModule(std::cout, *M);
  if (Explain && !dumpExplain(ExplainOut))
    return 1;
  RunResult Run = runAllocated(*M, TD);
  printRun(Run);

  if (!StatsJson.empty()) {
    CR.recordAllocStats(Stats);
    CR.recordAllocProfile();
    std::ofstream OS(StatsJson);
    if (!OS.good()) {
      std::fprintf(stderr, "lsra: cannot write '%s'\n", StatsJson.c_str());
      return 1;
    }
    obs::JsonObject Meta;
    Meta.field("kind", "meta");
    Meta.field("input", Input);
    Meta.field("allocator", allocatorName(F.Kind));
    Meta.field("threads", F.Exec.Threads);
    Meta.field("regs", F.Regs);
    OS << Meta.str() << "\n";
    CR.writeJsonl(OS);
    if (!OS.good()) {
      std::fprintf(stderr, "lsra: cannot write '%s'\n", StatsJson.c_str());
      return 1;
    }
  }
  // The trace covers everything including the VM run: write it last.
  if (!TraceOut.empty() && !Tracer.writeChromeJson(TraceOut)) {
    std::fprintf(stderr, "lsra: cannot write '%s'\n", TraceOut.c_str());
    return 1;
  }
  return Run.Ok ? 0 : 1;
}

int cmdCompare(const std::string &Input, int Argc, char **Argv) {
  unsigned Regs = 0;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--regs=", 0) == 0)
      Regs = static_cast<unsigned>(std::strtoul(A.c_str() + 7, nullptr, 10));
    else
      return usage();
  }
  TargetDesc TD = TargetDesc::alphaLike();
  if (Regs)
    TD = TD.withRegLimit(Regs, Regs);

  std::string Error;
  auto Ref = loadInput(Input, Error);
  if (!Ref) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  // Keep the text around so each allocator starts from a fresh module.
  std::ostringstream SS;
  printModule(SS, *Ref);
  std::string Text = SS.str();

  RunResult RefRun = runReference(*Ref, TD);
  if (!RefRun.Ok) {
    std::fprintf(stderr, "lsra: reference failed: %s\n", RefRun.Error.c_str());
    return 1;
  }
  std::printf("%-24s %14s %10s %10s %10s\n", "allocator", "dyn instrs",
              "ratio", "spill %", "alloc s");
  std::printf("%-24s %14llu %10s %10s %10s\n", "(reference)",
              (unsigned long long)RefRun.Stats.Total, "1.000", "-", "-");
  for (AllocatorKind K : AllocatorRegistry::global().kinds()) {
    ParseResult P = parseModule(Text);
    if (!P.ok()) {
      std::fprintf(stderr, "lsra: internal round-trip failure: %s\n",
                   P.Error.c_str());
      return 1;
    }
    AllocStats Stats = compileModule(*P.M, TD, K);
    RunResult Run = runAllocated(*P.M, TD);
    bool Same = Run.Ok && Run.Output == RefRun.Output &&
                Run.ReturnValue == RefRun.ReturnValue;
    std::printf("%-24s %14llu %10.3f %9.2f%% %10.4f %s\n", allocatorName(K),
                (unsigned long long)Run.Stats.Total,
                static_cast<double>(Run.Stats.Total) /
                    static_cast<double>(RefRun.Stats.Total),
                Run.Stats.spillPercent(), Stats.AllocSeconds,
                Same ? "" : "OUTPUT MISMATCH!");
    if (!Same)
      return 1;
  }
  return 0;
}

// --- serve / loadgen -------------------------------------------------------

std::atomic<bool> GStopRequested{false};

void onStopSignal(int) { GStopRequested.store(true); }

int cmdServe(int Argc, char **Argv) {
  server::ServerOptions SO;
  SO.UnixPath = "/tmp/lsra.sock";
  bool UseTcp = false;
  bool SampleSet = false;
  bool NoL2 = false;
  std::string StatsJson, TraceOut;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--socket=", 0) == 0) {
      SO.UnixPath = A.substr(9);
      UseTcp = false;
    } else if (A.rfind("--port=", 0) == 0) {
      SO.TcpPort =
          static_cast<uint16_t>(std::strtoul(A.c_str() + 7, nullptr, 10));
      UseTcp = true;
    } else if (A.rfind("--workers=", 0) == 0) {
      SO.Workers =
          static_cast<unsigned>(std::strtoul(A.c_str() + 10, nullptr, 10));
    } else if (A.rfind("--queue=", 0) == 0) {
      SO.QueueCapacity =
          static_cast<unsigned>(std::strtoul(A.c_str() + 8, nullptr, 10));
    } else if (A.rfind("--deadline-ms=", 0) == 0) {
      SO.DefaultDeadlineMs =
          static_cast<uint32_t>(std::strtoul(A.c_str() + 14, nullptr, 10));
    } else if (A.rfind("--stats-json=", 0) == 0) {
      StatsJson = A.substr(13);
    } else if (A.rfind("--sample=", 0) == 0) {
      SO.SampleEvery =
          static_cast<unsigned>(std::strtoul(A.c_str() + 9, nullptr, 10));
      SampleSet = true;
    } else if (A.rfind("--request-log=", 0) == 0) {
      SO.RequestLogPath = A.substr(14);
    } else if (A.rfind("--trace-out=", 0) == 0) {
      TraceOut = A.substr(12);
    } else if (A == "--verify-alloc") {
      SO.VerifyAlloc = true;
    } else if (A.rfind("--cache-mb=", 0) == 0) {
      SO.CacheBytes =
          static_cast<size_t>(std::strtoul(A.c_str() + 11, nullptr, 10))
          << 20;
    } else if (A == "--no-cache") {
      SO.CacheBytes = 0;
    } else if (A.rfind("--l2-path=", 0) == 0) {
      SO.L2Path = A.substr(10);
    } else if (A.rfind("--l2-mb=", 0) == 0) {
      SO.L2Bytes =
          static_cast<size_t>(std::strtoul(A.c_str() + 8, nullptr, 10)) << 20;
    } else if (A == "--no-l2") {
      NoL2 = true;
    } else if (A.rfind("--tier=", 0) == 0) {
      if (!parseTierPolicy(A.substr(7), SO.Tier)) {
        std::fprintf(stderr, "lsra serve: unknown tier policy '%s'\n",
                     A.c_str() + 7);
        return 2;
      }
    } else if (A.rfind("--log-level=", 0) == 0) {
      obs::setLogLevel(
          static_cast<unsigned>(std::strtoul(A.c_str() + 12, nullptr, 10)));
    } else {
      return usage();
    }
  }
  if (UseTcp)
    SO.UnixPath.clear();
  if (NoL2)
    SO.L2Path.clear();
  // A request-log or trace sink without an explicit sampling rate means
  // "trace everything": sampling is what feeds both sinks.
  if (!SampleSet && (!SO.RequestLogPath.empty() || !TraceOut.empty()))
    SO.SampleEvery = 1;

  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  if (!StatsJson.empty())
    CR.enable();
  if (!TraceOut.empty())
    obs::Tracer::global().enable();

  server::Server S(SO);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "lsra serve: %s\n", Err.c_str());
    return 1;
  }
  if (UseTcp)
    std::printf("lsra serve: listening on 127.0.0.1:%u\n", S.port());
  else
    std::printf("lsra serve: listening on %s\n", SO.UnixPath.c_str());
  std::fflush(stdout);

  // Graceful drain on SIGINT/SIGTERM: the handler only sets a flag; the
  // drain itself runs on this thread, outside signal context.
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  while (!GStopRequested.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::printf("lsra serve: draining...\n");
  S.shutdown();
  std::printf("lsra serve: drained after %llu responses\n",
              (unsigned long long)S.requestsServed());

  if (!TraceOut.empty()) {
    obs::Tracer &TR = obs::Tracer::global();
    TR.disable();
    if (!TR.writeChromeJson(TraceOut)) {
      std::fprintf(stderr, "lsra serve: cannot write '%s'\n",
                   TraceOut.c_str());
      return 1;
    }
  }

  if (!StatsJson.empty()) {
    std::ofstream OS(StatsJson);
    if (!OS.good()) {
      std::fprintf(stderr, "lsra serve: cannot write '%s'\n",
                   StatsJson.c_str());
      return 1;
    }
    obs::JsonObject Meta;
    Meta.field("kind", "meta");
    Meta.field("mode", "serve");
    Meta.field("workers", SO.Workers);
    Meta.field("queue", SO.QueueCapacity);
    OS << Meta.str() << "\n";
    CR.writeJsonl(OS);
    if (!OS.good()) {
      std::fprintf(stderr, "lsra serve: cannot write '%s'\n",
                   StatsJson.c_str());
      return 1;
    }
  }
  return 0;
}

int cmdLoadgen(int Argc, char **Argv) {
  server::LoadGenOptions LO;
  std::string JsonOut;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--socket=", 0) == 0) {
      LO.UnixPath = A.substr(9);
    } else if (A.rfind("--port=", 0) == 0) {
      LO.Port =
          static_cast<uint16_t>(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A.rfind("--workloads=", 0) == 0) {
      std::istringstream SS(A.substr(12));
      std::string W;
      while (std::getline(SS, W, ','))
        if (!W.empty())
          LO.Workloads.push_back(W);
    } else if (A.rfind("--concurrency=", 0) == 0) {
      LO.Concurrency =
          static_cast<unsigned>(std::strtoul(A.c_str() + 14, nullptr, 10));
    } else if (A.rfind("--requests=", 0) == 0) {
      LO.Requests =
          static_cast<unsigned>(std::strtoul(A.c_str() + 11, nullptr, 10));
    } else if (A.rfind("--qps=", 0) == 0) {
      LO.Qps = std::strtod(A.c_str() + 6, nullptr);
    } else if (A.rfind("--allocator=", 0) == 0) {
      LO.Allocator = A.substr(12);
    } else if (A.rfind("--regs=", 0) == 0) {
      LO.Regs = static_cast<unsigned>(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A == "--run") {
      LO.Run = true;
    } else if (A.rfind("--deadline-ms=", 0) == 0) {
      LO.DeadlineMs =
          static_cast<uint32_t>(std::strtoul(A.c_str() + 14, nullptr, 10));
    } else if (A.rfind("--unique=", 0) == 0) {
      LO.UniquePrograms =
          static_cast<unsigned>(std::strtoul(A.c_str() + 9, nullptr, 10));
    } else if (A.rfind("--mix-seed=", 0) == 0) {
      LO.MixSeed = std::strtoull(A.c_str() + 11, nullptr, 10);
    } else if (A == "--no-cache") {
      LO.NoCache = true;
    } else if (A.rfind("--connections=", 0) == 0) {
      LO.Connections =
          static_cast<unsigned>(std::strtoul(A.c_str() + 14, nullptr, 10));
    } else if (A.rfind("--pipeline=", 0) == 0) {
      LO.Pipeline =
          static_cast<unsigned>(std::strtoul(A.c_str() + 11, nullptr, 10));
    } else if (A == "--verify") {
      LO.Verify = true;
    } else if (A.rfind("--tier=", 0) == 0) {
      TierPolicy T;
      if (!parseTierPolicy(A.substr(7), T)) {
        std::fprintf(stderr, "lsra loadgen: unknown tier policy '%s'\n",
                     A.c_str() + 7);
        return 2;
      }
      LO.Tier = A.substr(7);
    } else if (A.rfind("--json=", 0) == 0) {
      JsonOut = A.substr(7);
    } else if (A.rfind("--record-out=", 0) == 0) {
      LO.RecordOut = A.substr(13);
    } else {
      return usage();
    }
  }
  if (LO.UnixPath.empty() && LO.Port == 0) {
    std::fprintf(stderr, "lsra loadgen: need --socket=PATH or --port=N\n");
    return 2;
  }
  if (LO.Workloads.empty())
    for (const WorkloadSpec &W : allWorkloads())
      LO.Workloads.push_back(W.Name);

  server::LoadGenReport R;
  std::string Err;
  if (!server::runLoadGen(LO, R, Err)) {
    std::fprintf(stderr, "lsra loadgen: %s\n", Err.c_str());
    return 1;
  }
  std::printf("sent %llu: ok %llu (cached %llu, merged %llu, tier0 %llu), "
              "rejected %llu, "
              "deadline %llu, error %llu, transport %llu, protocol %llu\n",
              (unsigned long long)R.Sent, (unsigned long long)R.Ok,
              (unsigned long long)R.CachedResponses,
              (unsigned long long)R.MergedResponses,
              (unsigned long long)R.Tier0Responses,
              (unsigned long long)R.Rejected,
              (unsigned long long)R.DeadlineExceeded,
              (unsigned long long)R.Errors,
              (unsigned long long)R.TransportErrors,
              (unsigned long long)R.ProtocolErrors);
  if (LO.Verify)
    std::printf("verify: %llu mismatches\n",
                (unsigned long long)R.VerifyMismatches);
  std::printf("wall %.3fs, throughput %.1f req/s\n", R.WallSeconds,
              R.Throughput);
  std::printf("latency ms: mean %.2f p50 %.2f p95 %.2f p99 %.2f max %.2f\n",
              R.MeanMs, R.P50Ms, R.P95Ms, R.P99Ms, R.MaxMs);
  std::printf("bytes: sent %llu received %llu\n",
              (unsigned long long)R.BytesSent,
              (unsigned long long)R.BytesReceived);
  if (!JsonOut.empty()) {
    std::ofstream OS(JsonOut, std::ios::app);
    if (!OS.good()) {
      std::fprintf(stderr, "lsra loadgen: cannot write '%s'\n",
                   JsonOut.c_str());
      return 1;
    }
    OS << server::loadGenReportJson(LO, R) << "\n";
  }
  // Protocol desync or a verify mismatch is always a failure; otherwise any
  // successful responses at all count as success and only a fully failed
  // run (server down mid-test) fails the command.
  if (R.ProtocolErrors > 0 || R.VerifyMismatches > 0)
    return 1;
  return R.Ok > 0 || R.Rejected > 0 || R.DeadlineExceeded > 0 ? 0 : 1;
}

// --- stats / top -----------------------------------------------------------

/// Shared address parsing for the stats/top clients. Accepts --socket=PATH
/// and --port=N like loadgen, plus one bare positional: all-digits is a
/// port, anything else a unix socket path.
bool parseStatsAddr(const std::string &A, std::string &UnixPath,
                    uint16_t &Port) {
  if (A.rfind("--socket=", 0) == 0) {
    UnixPath = A.substr(9);
    return true;
  }
  if (A.rfind("--port=", 0) == 0) {
    Port = static_cast<uint16_t>(std::strtoul(A.c_str() + 7, nullptr, 10));
    return true;
  }
  if (!A.empty() && A[0] != '-') {
    if (A.find_first_not_of("0123456789") == std::string::npos)
      Port = static_cast<uint16_t>(std::strtoul(A.c_str(), nullptr, 10));
    else
      UnixPath = A;
    return true;
  }
  return false;
}

server::Client connectStats(const std::string &UnixPath, uint16_t Port,
                            std::string &Err) {
  return UnixPath.empty() ? server::Client::connectTcp("127.0.0.1", Port, Err)
                          : server::Client::connectUnix(UnixPath, Err);
}

int cmdStats(int Argc, char **Argv) {
  std::string UnixPath;
  uint16_t Port = 0;
  std::string Format = "json";
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--prom")
      Format = "prom";
    else if (A == "--text")
      Format = "text";
    else if (A == "--json")
      Format = "json";
    else if (!parseStatsAddr(A, UnixPath, Port))
      return usage();
  }
  if (UnixPath.empty() && Port == 0) {
    std::fprintf(stderr, "lsra stats: need --socket=PATH or --port=N\n");
    return 2;
  }
  std::string Err;
  server::Client C = connectStats(UnixPath, Port, Err);
  if (!C.valid()) {
    std::fprintf(stderr, "lsra stats: %s\n", Err.c_str());
    return 1;
  }
  std::string Doc;
  if (!C.stats(Format, Doc, Err, 5000)) {
    std::fprintf(stderr, "lsra stats: %s\n", Err.c_str());
    return 1;
  }
  std::fputs(Doc.c_str(), stdout);
  if (!Doc.empty() && Doc.back() != '\n')
    std::fputc('\n', stdout);
  return 0;
}

int cmdTop(int Argc, char **Argv) {
  std::string UnixPath;
  uint16_t Port = 0;
  unsigned IntervalMs = 1000, Count = 0;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--interval-ms=", 0) == 0)
      IntervalMs = static_cast<unsigned>(
          std::strtoul(A.c_str() + 14, nullptr, 10));
    else if (A.rfind("--count=", 0) == 0)
      Count = static_cast<unsigned>(std::strtoul(A.c_str() + 8, nullptr, 10));
    else if (!parseStatsAddr(A, UnixPath, Port))
      return usage();
  }
  if (UnixPath.empty() && Port == 0) {
    std::fprintf(stderr, "lsra top: need --socket=PATH or --port=N\n");
    return 2;
  }
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);
  std::string Err;
  server::Client C = connectStats(UnixPath, Port, Err);
  if (!C.valid()) {
    std::fprintf(stderr, "lsra top: %s\n", Err.c_str());
    return 1;
  }
  for (unsigned Iter = 0; !GStopRequested.load(); ++Iter) {
    std::string Doc;
    if (!C.stats("text", Doc, Err, 5000)) {
      // One reconnect attempt: the server may have restarted between
      // refreshes; a second failure ends the loop.
      C = connectStats(UnixPath, Port, Err);
      if (!C.valid() || !C.stats("text", Doc, Err, 5000)) {
        std::fprintf(stderr, "lsra top: %s\n", Err.c_str());
        return 1;
      }
    }
    // Home the cursor and clear below, rather than a full clear, so the
    // refresh does not flicker.
    std::fputs("\x1b[H\x1b[J", stdout);
    std::fputs(Doc.c_str(), stdout);
    std::fflush(stdout);
    if (Count && Iter + 1 >= Count)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
  return 0;
}

// --- fuzz / reduce ---------------------------------------------------------

int cmdFuzz(int Argc, char **Argv) {
  check::FuzzOptions FO;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--seed=", 0) == 0) {
      FO.SeedStart = std::strtoull(A.c_str() + 7, nullptr, 10);
    } else if (A.rfind("--count=", 0) == 0) {
      FO.Count =
          static_cast<unsigned>(std::strtoul(A.c_str() + 8, nullptr, 10));
    } else if (A.rfind("--regs=", 0) == 0) {
      FO.RegLimits.clear();
      std::istringstream SS(A.substr(7));
      std::string R;
      while (std::getline(SS, R, ','))
        if (!R.empty())
          FO.RegLimits.push_back(
              static_cast<unsigned>(std::strtoul(R.c_str(), nullptr, 10)));
    } else if (A.rfind("--allocator=", 0) == 0) {
      AllocatorKind K;
      if (!parseAllocatorName(A.substr(12), K)) {
        std::fprintf(stderr, "lsra: unknown allocator '%s'\n",
                     A.c_str() + 12);
        return 2;
      }
      FO.Allocators = {K};
    } else if (A == "--no-cleanup") {
      FO.WithSpillCleanup = false;
    } else if (A == "--no-cache-diff") {
      FO.WithCache = false;
    } else if (A == "--no-reduce") {
      FO.Reduce = false;
    } else if (A.rfind("--corpus=", 0) == 0) {
      FO.CorpusDir = A.substr(9);
    } else if (A.rfind("--max-findings=", 0) == 0) {
      FO.MaxFindings =
          static_cast<unsigned>(std::strtoul(A.c_str() + 15, nullptr, 10));
    } else if (A.rfind("--statements=", 0) == 0) {
      FO.Program.Statements =
          static_cast<unsigned>(std::strtoul(A.c_str() + 13, nullptr, 10));
    } else {
      return usage();
    }
  }
  if (FO.RegLimits.empty())
    FO.RegLimits = {0};

  check::FuzzReport Report = check::runDifferentialFuzz(FO, &std::cout);
  std::printf("fuzz: %u programs, %u differential runs, %zu findings\n",
              Report.Programs, Report.Runs, Report.Findings.size());
  for (const check::FuzzFinding &F : Report.Findings) {
    std::printf("  seed=%llu allocator=%s regs=%u%s %s: %s\n",
                (unsigned long long)F.Seed, allocatorName(F.K), F.Regs,
                F.SpillCleanup ? " cleanup" : "", F.Kind.c_str(),
                F.Detail.c_str());
    if (!F.CorpusFile.empty())
      std::printf("    reproducer: %s\n", F.CorpusFile.c_str());
  }
  return Report.clean() ? 0 : 1;
}

int cmdReduce(const std::string &Input, int Argc, char **Argv) {
  AllocatorKind Kind = AllocatorKind::SecondChanceBinpack;
  unsigned Regs = 0;
  bool Cleanup = false;
  std::string OutFile;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--allocator=", 0) == 0) {
      if (!parseAllocatorName(A.substr(12), Kind)) {
        std::fprintf(stderr, "lsra: unknown allocator '%s'\n",
                     A.c_str() + 12);
        return 2;
      }
    } else if (A.rfind("--regs=", 0) == 0) {
      Regs = static_cast<unsigned>(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A == "--cleanup") {
      Cleanup = true;
    } else if (A == "-o" && I + 1 < Argc) {
      OutFile = Argv[++I];
    } else {
      return usage();
    }
  }
  std::ifstream File(Input);
  if (!File.good()) {
    std::fprintf(stderr, "lsra: cannot read '%s'\n", Input.c_str());
    return 1;
  }
  std::ostringstream SS;
  SS << File.rdbuf();
  std::string Text = SS.str();

  check::OracleResult O = check::runOracle(Text, Kind, Regs, Cleanup);
  if (!O.fail()) {
    std::fprintf(stderr,
                 "lsra reduce: oracle does not fail on this input "
                 "(allocator=%s regs=%u%s); nothing to minimize\n",
                 allocatorName(Kind), Regs, Cleanup ? " cleanup" : "");
    return 1;
  }
  std::fprintf(stderr, "lsra reduce: failing as %s: %s\n", O.Kind.c_str(),
               O.Detail.c_str());
  check::ReduceResult RR = check::reduceProgram(Text, Kind, Regs, Cleanup);
  std::fprintf(stderr, "lsra reduce: %u -> %u instructions in %u rounds\n",
               RR.OriginalInstrs, RR.FinalInstrs, RR.Rounds);
  if (OutFile.empty()) {
    std::fputs(RR.Text.c_str(), stdout);
    return 0;
  }
  std::ofstream Out(OutFile);
  Out << RR.Text;
  if (!Out.good()) {
    std::fprintf(stderr, "lsra: cannot write '%s'\n", OutFile.c_str());
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  if (Cmd == "list")
    return cmdList();
  if (Cmd == "serve")
    return cmdServe(argc - 2, argv + 2);
  if (Cmd == "loadgen")
    return cmdLoadgen(argc - 2, argv + 2);
  if (Cmd == "stats")
    return cmdStats(argc - 2, argv + 2);
  if (Cmd == "top")
    return cmdTop(argc - 2, argv + 2);
  if (Cmd == "fuzz")
    return cmdFuzz(argc - 2, argv + 2);
  if (argc < 3)
    return usage();
  std::string Input = argv[2];
  if (Cmd == "print")
    return cmdPrint(Input);
  if (Cmd == "dot")
    return cmdDot(Input, argc > 3 ? argv[3] : nullptr);
  if (Cmd == "run")
    return cmdRun(Input, argc - 3, argv + 3);
  if (Cmd == "compare")
    return cmdCompare(Input, argc - 3, argv + 3);
  if (Cmd == "reduce")
    return cmdReduce(Input, argc - 3, argv + 3);
  return usage();
}
