//===- tools/lsra.cpp - Command-line driver --------------------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The command-line face of the library:
//
//   lsra list
//       List the built-in workloads.
//   lsra print <input>
//       Dump a program in the textual IR form (parse it back with any
//       other subcommand).
//   lsra dot <input> [function]
//       Emit a Graphviz CFG.
//   lsra run <input> [--allocator=K] [--regs=N] [--no-alloc] [--cleanup]
//       Compile with the chosen allocator (default second-chance
//       binpacking) and execute on the VM; prints outputs and statistics.
//   lsra compare <input> [--regs=N]
//       Run the reference and all four allocators; print a comparison.
//
// <input> is either a built-in workload name (see `lsra list`) or a path
// to a textual IR file.
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "ir/IRVerifier.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "obs/Counters.h"
#include "obs/DecisionLog.h"
#include "obs/Json.h"
#include "obs/Log.h"
#include "obs/Trace.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace lsra;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: lsra <command> [args]\n"
               "  list                          list built-in workloads\n"
               "  print <input>                 dump textual IR\n"
               "  dot <input> [function]        emit a Graphviz CFG\n"
               "  run <input> [options]         compile and execute\n"
               "  compare <input> [--regs=N]    compare all allocators\n"
               "options for run:\n"
               "  --allocator=binpack|coloring|twopass|poletto\n"
               "  --regs=N       restrict the allocatable file to N per class\n"
               "  --threads=N    allocate functions on N workers (0 = auto)\n"
               "  --no-alloc     execute with virtual registers (reference)\n"
               "  --cleanup      enable the spill-cleanup pass\n"
               "  --emit-ir      print the final IR after allocation\n"
               "observability options for run:\n"
               "  --trace-out=F  write a Chrome trace_event JSON span trace\n"
               "  --stats-json=F write a JSONL counter/metrics snapshot\n"
               "  --explain[=F]  dump the allocation-decision log (stdout,\n"
               "                 or to F; JSONL when F ends in .jsonl)\n"
               "  --log-level=N  diagnostic verbosity on stderr (default 0)\n");
  return 2;
}

std::unique_ptr<Module> loadInput(const std::string &Input,
                                  std::string &Error) {
  std::ifstream File(Input);
  if (File.good()) {
    std::ostringstream SS;
    SS << File.rdbuf();
    ParseResult R = parseModule(SS.str());
    if (!R.ok()) {
      Error = Input + ": " + R.Error;
      return nullptr;
    }
    std::string Diag = verifyModule(*R.M);
    if (!Diag.empty()) {
      Error = Input + ": " + Diag;
      return nullptr;
    }
    return std::move(R.M);
  }
  for (const WorkloadSpec &W : allWorkloads())
    if (Input == W.Name)
      return W.Build();
  Error = "no such file or workload: '" + Input + "' (try `lsra list`)";
  return nullptr;
}

bool parseAllocator(const std::string &Name, AllocatorKind &Out) {
  if (Name == "binpack" || Name == "second-chance-binpack")
    Out = AllocatorKind::SecondChanceBinpack;
  else if (Name == "coloring" || Name == "graph-coloring")
    Out = AllocatorKind::GraphColoring;
  else if (Name == "twopass" || Name == "two-pass-binpack")
    Out = AllocatorKind::TwoPassBinpack;
  else if (Name == "poletto" || Name == "poletto-scan")
    Out = AllocatorKind::PolettoScan;
  else
    return false;
  return true;
}

void printRun(const RunResult &Run) {
  if (!Run.Ok) {
    std::printf("execution FAILED: %s\n", Run.Error.c_str());
    return;
  }
  std::printf("return value: %lld\n", (long long)Run.ReturnValue);
  std::printf("output trace (%zu values):", Run.Output.size());
  for (unsigned I = 0; I < Run.Output.size() && I < 16; ++I)
    std::printf(" %llu", (unsigned long long)Run.Output[I]);
  if (Run.Output.size() > 16)
    std::printf(" ...");
  std::printf("\ndynamic instructions: %llu (cycles %llu)\n",
              (unsigned long long)Run.Stats.Total,
              (unsigned long long)Run.Stats.Cycles);
  std::printf("spill instructions:   %llu (%.3f%%)\n",
              (unsigned long long)Run.Stats.spillInstrs(),
              Run.Stats.spillPercent());
}

int cmdList() {
  for (const WorkloadSpec &W : allWorkloads())
    std::printf("%-10s %s\n", W.Name, W.Description);
  return 0;
}

int cmdPrint(const std::string &Input) {
  std::string Error;
  auto M = loadInput(Input, Error);
  if (!M) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  printModule(std::cout, *M);
  return 0;
}

int cmdDot(const std::string &Input, const char *FuncName) {
  std::string Error;
  auto M = loadInput(Input, Error);
  if (!M) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  const Function *F = FuncName ? M->findFunction(FuncName)
                               : M->findFunction("main");
  if (!F && M->numFunctions() > 0)
    F = &M->function(0);
  if (!F) {
    std::fprintf(stderr, "lsra: no function to plot\n");
    return 1;
  }
  printDotCFG(std::cout, *F, M.get());
  return 0;
}

/// Dump the decision log to stdout, or to \p Path (JSONL when the name
/// ends in ".jsonl", text otherwise).
bool dumpExplain(const std::string &Path) {
  obs::DecisionLog &DL = obs::DecisionLog::global();
  if (Path.empty()) {
    DL.writeText(std::cout);
    return true;
  }
  std::ofstream OS(Path);
  if (!OS.good()) {
    std::fprintf(stderr, "lsra: cannot write '%s'\n", Path.c_str());
    return false;
  }
  bool Jsonl = Path.size() >= 6 &&
               Path.compare(Path.size() - 6, 6, ".jsonl") == 0;
  if (Jsonl)
    DL.writeJsonl(OS);
  else
    DL.writeText(OS);
  return OS.good();
}

int cmdRun(const std::string &Input, int Argc, char **Argv) {
  AllocatorKind Kind = AllocatorKind::SecondChanceBinpack;
  unsigned Regs = 0;
  bool NoAlloc = false, EmitIR = false;
  bool Explain = false;
  std::string TraceOut, StatsJson, ExplainOut;
  AllocOptions Opts;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--allocator=", 0) == 0) {
      if (!parseAllocator(A.substr(12), Kind)) {
        std::fprintf(stderr, "lsra: unknown allocator '%s'\n",
                     A.c_str() + 12);
        return 2;
      }
    } else if (A.rfind("--regs=", 0) == 0) {
      Regs = static_cast<unsigned>(std::strtoul(A.c_str() + 7, nullptr, 10));
    } else if (A.rfind("--threads=", 0) == 0) {
      Opts.Threads =
          static_cast<unsigned>(std::strtoul(A.c_str() + 10, nullptr, 10));
    } else if (A == "--no-alloc") {
      NoAlloc = true;
    } else if (A == "--cleanup") {
      Opts.SpillCleanup = true;
    } else if (A == "--emit-ir") {
      EmitIR = true;
    } else if (A.rfind("--trace-out=", 0) == 0) {
      TraceOut = A.substr(12);
    } else if (A.rfind("--stats-json=", 0) == 0) {
      StatsJson = A.substr(13);
    } else if (A == "--explain") {
      Explain = true;
    } else if (A.rfind("--explain=", 0) == 0) {
      Explain = true;
      ExplainOut = A.substr(10);
    } else if (A.rfind("--log-level=", 0) == 0) {
      obs::setLogLevel(
          static_cast<unsigned>(std::strtoul(A.c_str() + 12, nullptr, 10)));
    } else {
      return usage();
    }
  }

  std::string Error;
  auto M = loadInput(Input, Error);
  if (!M) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  TargetDesc TD = TargetDesc::alphaLike();
  if (Regs)
    TD = TD.withRegLimit(Regs, Regs);

  obs::Tracer &Tracer = obs::Tracer::global();
  obs::CounterRegistry &CR = obs::CounterRegistry::global();
  obs::DecisionLog &DL = obs::DecisionLog::global();
  if (!TraceOut.empty())
    Tracer.enable();
  if (!StatsJson.empty())
    CR.enable();
  if (Explain)
    DL.enable();

  if (NoAlloc) {
    RunResult Run = runReference(*M, TD);
    printRun(Run);
    if (!TraceOut.empty() && !Tracer.writeChromeJson(TraceOut)) {
      std::fprintf(stderr, "lsra: cannot write '%s'\n", TraceOut.c_str());
      return 1;
    }
    return Run.Ok ? 0 : 1;
  }

  AllocStats Stats = compileModule(*M, TD, Kind, Opts);
  std::string Diag = checkAllocated(*M);
  if (!Diag.empty()) {
    std::fprintf(stderr, "lsra: post-allocation verification failed:\n%s\n",
                 Diag.c_str());
    return 1;
  }
  std::printf("allocator: %s\n", allocatorName(Kind));
  std::printf("candidates=%u spilled=%u static-spill=%u coalesced=%u "
              "splits=%u alloc-time=%.4fs\n",
              Stats.RegCandidates, Stats.SpilledTemps,
              Stats.staticSpillInstrs(), Stats.MovesCoalesced,
              Stats.LifetimeSplits, Stats.AllocSeconds);
  if (EmitIR)
    printModule(std::cout, *M);
  if (Explain && !dumpExplain(ExplainOut))
    return 1;
  RunResult Run = runAllocated(*M, TD);
  printRun(Run);

  if (!StatsJson.empty()) {
    CR.recordAllocStats(Stats);
    std::ofstream OS(StatsJson);
    if (!OS.good()) {
      std::fprintf(stderr, "lsra: cannot write '%s'\n", StatsJson.c_str());
      return 1;
    }
    obs::JsonObject Meta;
    Meta.field("kind", "meta");
    Meta.field("input", Input);
    Meta.field("allocator", allocatorName(Kind));
    Meta.field("threads", Opts.Threads);
    Meta.field("regs", Regs);
    OS << Meta.str() << "\n";
    CR.writeJsonl(OS);
    if (!OS.good()) {
      std::fprintf(stderr, "lsra: cannot write '%s'\n", StatsJson.c_str());
      return 1;
    }
  }
  // The trace covers everything including the VM run: write it last.
  if (!TraceOut.empty() && !Tracer.writeChromeJson(TraceOut)) {
    std::fprintf(stderr, "lsra: cannot write '%s'\n", TraceOut.c_str());
    return 1;
  }
  return Run.Ok ? 0 : 1;
}

int cmdCompare(const std::string &Input, int Argc, char **Argv) {
  unsigned Regs = 0;
  for (int I = 0; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A.rfind("--regs=", 0) == 0)
      Regs = static_cast<unsigned>(std::strtoul(A.c_str() + 7, nullptr, 10));
    else
      return usage();
  }
  TargetDesc TD = TargetDesc::alphaLike();
  if (Regs)
    TD = TD.withRegLimit(Regs, Regs);

  std::string Error;
  auto Ref = loadInput(Input, Error);
  if (!Ref) {
    std::fprintf(stderr, "lsra: %s\n", Error.c_str());
    return 1;
  }
  // Keep the text around so each allocator starts from a fresh module.
  std::ostringstream SS;
  printModule(SS, *Ref);
  std::string Text = SS.str();

  RunResult RefRun = runReference(*Ref, TD);
  if (!RefRun.Ok) {
    std::fprintf(stderr, "lsra: reference failed: %s\n", RefRun.Error.c_str());
    return 1;
  }
  std::printf("%-24s %14s %10s %10s %10s\n", "allocator", "dyn instrs",
              "ratio", "spill %", "alloc s");
  std::printf("%-24s %14llu %10s %10s %10s\n", "(reference)",
              (unsigned long long)RefRun.Stats.Total, "1.000", "-", "-");
  for (AllocatorKind K :
       {AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
        AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan}) {
    ParseResult P = parseModule(Text);
    if (!P.ok()) {
      std::fprintf(stderr, "lsra: internal round-trip failure: %s\n",
                   P.Error.c_str());
      return 1;
    }
    AllocStats Stats = compileModule(*P.M, TD, K);
    RunResult Run = runAllocated(*P.M, TD);
    bool Same = Run.Ok && Run.Output == RefRun.Output &&
                Run.ReturnValue == RefRun.ReturnValue;
    std::printf("%-24s %14llu %10.3f %9.2f%% %10.4f %s\n", allocatorName(K),
                (unsigned long long)Run.Stats.Total,
                static_cast<double>(Run.Stats.Total) /
                    static_cast<double>(RefRun.Stats.Total),
                Run.Stats.spillPercent(), Stats.AllocSeconds,
                Same ? "" : "OUTPUT MISMATCH!");
    if (!Same)
      return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2)
    return usage();
  std::string Cmd = argv[1];
  if (Cmd == "list")
    return cmdList();
  if (argc < 3)
    return usage();
  std::string Input = argv[2];
  if (Cmd == "print")
    return cmdPrint(Input);
  if (Cmd == "dot")
    return cmdDot(Input, argc > 3 ? argv[3] : nullptr);
  if (Cmd == "run")
    return cmdRun(Input, argc - 3, argv + 3);
  if (Cmd == "compare")
    return cmdCompare(Input, argc - 3, argv + 3);
  return usage();
}
