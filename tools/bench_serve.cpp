//===- tools/bench_serve.cpp - Serving latency/throughput bench -*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// The serving companion to bench-compile-time: starts an in-process compile
// server on a unix socket and drives it with the load generator across a
// grid of (workload, server workers, open-loop QPS) points, writing
// BENCH_serve.json (per record: the full loadgen report — throughput and
// p50/p95/p99 latency). QPS 0 means closed-loop, measuring capacity; the
// non-zero points measure latency under a fixed offered load, including
// queueing delay (latency is charged from the scheduled send time).
//
// Usage: bench-serve [output.json] [--quick]   (default BENCH_serve.json)
//
//===----------------------------------------------------------------------===//

#include "server/LoadGen.h"
#include "server/Server.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace lsra;

int main(int argc, char **argv) {
  std::string OutPath = "BENCH_serve.json";
  bool Quick = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else
      OutPath = argv[I];
  }

  const std::string SockPath =
      "/tmp/lsra-bench-serve." + std::to_string(::getpid()) + ".sock";

  // Workload mixes: a light module, a spill-heavy one, and the full corpus.
  struct Mix {
    const char *Name;
    std::vector<std::string> Workloads;
  };
  std::vector<Mix> Mixes = {
      {"eqntott", {"eqntott"}},
      {"fpppp", {"fpppp"}},
      {"corpus",
       {"alvinn", "doduc", "eqntott", "espresso", "fpppp", "li", "tomcatv",
        "compress", "m88ksim", "sort", "wc"}},
  };
  std::vector<unsigned> WorkerCounts = {1, ThreadPool::defaultThreadCount()};
  if (WorkerCounts[1] == WorkerCounts[0])
    WorkerCounts.pop_back();
  std::vector<double> QpsPoints = {0, 200, 1000};
  unsigned Requests = Quick ? 32 : 128;

  std::ofstream OS(OutPath);
  if (!OS.good()) {
    std::fprintf(stderr, "bench-serve: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  OS << "[\n";
  bool First = true;

  for (unsigned Workers : WorkerCounts) {
    server::ServerOptions SO;
    SO.UnixPath = SockPath;
    SO.Workers = Workers;
    SO.QueueCapacity = 256;
    server::Server S(SO);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "bench-serve: %s\n", Err.c_str());
      return 1;
    }
    for (const Mix &M : Mixes) {
      for (double Qps : QpsPoints) {
        server::LoadGenOptions LO;
        LO.UnixPath = SockPath;
        LO.Workloads = M.Workloads;
        LO.Concurrency = 4;
        LO.Requests = Requests;
        LO.Qps = Qps;
        server::LoadGenReport R;
        if (!server::runLoadGen(LO, R, Err)) {
          std::fprintf(stderr, "bench-serve: %s/%g: %s\n", M.Name, Qps,
                       Err.c_str());
          return 1;
        }
        std::string Line = server::loadGenReportJson(LO, R);
        // Tag the record with the grid point's server configuration.
        Line.insert(1, "\"mix\": \"" + std::string(M.Name) +
                           "\", \"workers\": " + std::to_string(Workers) +
                           ", ");
        OS << (First ? "" : ",\n") << "  " << Line;
        First = false;
        std::printf("%-8s workers=%u qps=%-6g  %.1f req/s  p50 %.2fms  "
                    "p95 %.2fms  p99 %.2fms\n",
                    M.Name, Workers, Qps, R.Throughput, R.P50Ms, R.P95Ms,
                    R.P99Ms);
        std::fflush(stdout);
      }
    }

    // High-concurrency pipelined points: one loadgen event loop holding
    // hundreds of connections with deep pipelines against this server —
    // the regime the thread-fleet client cannot reach. Duplicate-heavy
    // corpus, so the rows also witness cache hits and request merging.
    for (unsigned Conns : {64u, Quick ? 128u : 512u}) {
      server::LoadGenOptions LO;
      LO.UnixPath = SockPath;
      LO.Connections = Conns;
      LO.Pipeline = 4;
      LO.Requests = Conns * (Quick ? 4 : 8);
      LO.UniquePrograms = 8;
      LO.MixSeed = 5;
      server::LoadGenReport R;
      if (!server::runLoadGen(LO, R, Err)) {
        std::fprintf(stderr, "bench-serve: pipelined/%u: %s\n", Conns,
                     Err.c_str());
        return 1;
      }
      std::string Line = server::loadGenReportJson(LO, R);
      Line.insert(1, "\"mix\": \"pipelined\", \"workers\": " +
                         std::to_string(Workers) + ", ");
      OS << (First ? "" : ",\n") << "  " << Line;
      First = false;
      std::printf("pipelined workers=%u conns=%-5u %.1f req/s  p50 %.2fms  "
                  "p95 %.2fms  p99 %.2fms  merged %llu\n",
                  Workers, Conns, R.Throughput, R.P50Ms, R.P95Ms, R.P99Ms,
                  (unsigned long long)R.MergedResponses);
      std::fflush(stdout);
    }
    S.shutdown();
  }

  // Tiered serving: the same cold corpus under each tier policy, a fresh
  // server per policy so every request is a first compile (the regime tier
  // 0 exists for). The tier0/promote rows' first-compile latency win over
  // "off" is the serving-side analogue of Table 3's compile-time claim;
  // the promote row additionally exercises the background requalification
  // lane under load.
  for (const char *Tier : {"off", "tier0", "promote"}) {
    server::ServerOptions SO;
    SO.UnixPath = SockPath;
    SO.Workers = ThreadPool::defaultThreadCount();
    SO.QueueCapacity = 256;
    server::Server S(SO);
    std::string Err;
    if (!S.start(Err)) {
      std::fprintf(stderr, "bench-serve: %s\n", Err.c_str());
      return 1;
    }
    server::LoadGenOptions LO;
    LO.UnixPath = SockPath;
    LO.Connections = 16;
    LO.Pipeline = 2;
    LO.Requests = Quick ? 48 : 96;
    LO.UniquePrograms = LO.Requests; // no repeats: all cold compiles
    LO.MixSeed = 77;
    LO.Tier = Tier;
    server::LoadGenReport R;
    if (!server::runLoadGen(LO, R, Err)) {
      std::fprintf(stderr, "bench-serve: tiered/%s: %s\n", Tier, Err.c_str());
      return 1;
    }
    std::string Line = server::loadGenReportJson(LO, R);
    Line.insert(1, "\"mix\": \"tiered-cold\", \"workers\": " +
                       std::to_string(SO.Workers) + ", ");
    OS << (First ? "" : ",\n") << "  " << Line;
    First = false;
    std::printf("tiered   tier=%-8s %.1f req/s  p50 %.2fms  p95 %.2fms  "
                "p99 %.2fms  tier0 %llu\n",
                Tier, R.Throughput, R.P50Ms, R.P95Ms, R.P99Ms,
                (unsigned long long)R.Tier0Responses);
    std::fflush(stdout);
    S.shutdown();
  }
  OS << "\n]\n";
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
