//===- tools/bench_cache.cpp - Compile-cache benchmark --------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Measures what the content-addressed compile cache buys on the serving
// path: for every built-in workload and allocator, the cold end-to-end
// compileTextModule time (parse + lower + DCE + allocate + print) against
// the warm cache-hit time for the identical request, asserting along the
// way that the warm result is byte-identical to both the cold result and
// an uncached compile. A second, cross-process section forks a child that
// compiles every workload into a shared-memory L2 segment and then times
// the parent's first compile of the same modules through a fresh L1 — the
// cross-process warm-start path (L2 probe + fill + promotion) against the
// cold pipeline. Writes BENCH_cache.json (per record: workload, allocator,
// cold/warm best-of-N seconds, speedup, identical flag; xproc rows carry
// kind="xproc" with cold_s/l2_warm_s/l2_speedup) plus a trailing summary
// record with the aggregate cache statistics.
//
// Usage: bench-cache [output.json]   (default BENCH_cache.json)
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"
#include "cache/SharedCache.h"
#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "obs/Json.h"
#include "regalloc/Registry.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace lsra;

namespace {

struct Record {
  std::string Workload;
  const char *Allocator;
  double ColdSeconds;
  double WarmSeconds;
  bool Identical;

  double speedup() const {
    return WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0;
  }
};

std::vector<AllocatorKind> allKinds() {
  return AllocatorRegistry::global().kinds();
}

Record measure(const WorkloadSpec &W, AllocatorKind K,
               cache::CompileCache &Cache) {
  Record R;
  R.Workload = W.Name;
  R.Allocator = allocatorName(K);
  TargetDesc TD = TargetDesc::alphaLike();
  std::ostringstream OS;
  printModule(OS, *W.Build());
  std::string Text = OS.str();

  // Uncached reference, and cold best-of-five (each rep does the full
  // pipeline; the cache is only consulted afterwards).
  TextCompileResult Ref = compileTextModule(Text, TD, K);
  R.ColdSeconds = 1e9;
  ExecOptions Cacheless;
  for (int Rep = 0; Rep < 5; ++Rep) {
    Timer T;
    T.start();
    TextCompileResult C = compileTextModule(Text, TD, K, {}, Cacheless);
    T.stop();
    R.ColdSeconds = std::min(R.ColdSeconds, T.seconds());
    if (!C.Ok || C.AllocatedText != Ref.AllocatedText)
      R.Identical = false;
  }

  // Populate, then warm best-of-twenty.
  ExecOptions EO;
  EO.Cache = &Cache;
  TextCompileResult Fill = compileTextModule(Text, TD, K, {}, EO);
  R.Identical = Fill.Ok && !Fill.CacheHit &&
                Fill.AllocatedText == Ref.AllocatedText;
  R.WarmSeconds = 1e9;
  for (int Rep = 0; Rep < 20; ++Rep) {
    Timer T;
    T.start();
    TextCompileResult Hit = compileTextModule(Text, TD, K, {}, EO);
    T.stop();
    R.WarmSeconds = std::min(R.WarmSeconds, T.seconds());
    R.Identical = R.Identical && Hit.Ok && Hit.CacheHit &&
                  Hit.AllocatedText == Ref.AllocatedText;
  }
  return R;
}

struct XprocRecord {
  std::string Workload;
  const char *Allocator;
  double ColdSeconds;
  double L2WarmSeconds;
  bool Identical;

  double speedup() const {
    return L2WarmSeconds > 0 ? ColdSeconds / L2WarmSeconds : 0;
  }
};

/// Cross-process warm start: a forked child cold-compiles every workload
/// with an L1+L2 stack (publishing each module result into the shared
/// segment), then the parent times its own first compile of the same
/// modules through a FRESH L1 per rep — so every timed run pays the real
/// L2 path (probe + validate + copy + L1 promotion), never an L1 hit.
std::vector<XprocRecord> measureCrossProcess() {
  std::vector<XprocRecord> Out;
  AllocatorKind K = AllocatorKind::SecondChanceBinpack;
  TargetDesc TD = TargetDesc::alphaLike();
  std::string SegPath =
      "/tmp/bench-cache-l2." + std::to_string(::getpid()) + ".seg";
  ::unlink(SegPath.c_str());
  cache::SharedCacheConfig SC;
  SC.Path = SegPath;
  SC.MaxBytes = 64u << 20;
  SC.StartAgent = false; // deterministic: publishes land synchronously

  std::vector<std::string> Texts;
  std::vector<std::string> Refs;
  std::vector<const char *> Names;
  for (const WorkloadSpec &W : allWorkloads()) {
    std::ostringstream OS;
    printModule(OS, *W.Build());
    Texts.push_back(OS.str());
    Refs.push_back(compileTextModule(Texts.back(), TD, K).AllocatedText);
    Names.push_back(W.Name);
  }

  // The child owns the segment's cold fill. Forked before this process
  // maps the segment, so the parent's first probe is a true cross-process
  // read of memory it never wrote.
  pid_t Child = ::fork();
  if (Child == 0) {
    std::string Err;
    auto L2 = cache::SharedCache::open(SC, Err);
    if (!L2)
      ::_exit(2);
    cache::CompileCache L1;
    L1.attachL2(L2.get());
    ExecOptions EO;
    EO.Cache = &L1;
    for (const std::string &Text : Texts) {
      TextCompileResult R = compileTextModule(Text, TD, K, {}, EO);
      if (!R.Ok || R.CacheHit)
        ::_exit(3);
    }
    ::_exit(0);
  }
  int Status = 0;
  if (Child < 0 || ::waitpid(Child, &Status, 0) != Child ||
      !WIFEXITED(Status) || WEXITSTATUS(Status) != 0) {
    std::fprintf(stderr, "bench-cache: xproc child failed (status %d)\n",
                 Status);
    ::unlink(SegPath.c_str());
    return Out;
  }

  std::string Err;
  auto L2 = cache::SharedCache::open(SC, Err);
  if (!L2) {
    std::fprintf(stderr, "bench-cache: xproc reopen: %s\n", Err.c_str());
    return Out;
  }
  for (size_t I = 0; I < Texts.size(); ++I) {
    XprocRecord R;
    R.Workload = Names[I];
    R.Allocator = allocatorName(K);
    R.Identical = true;

    R.ColdSeconds = 1e9;
    for (int Rep = 0; Rep < 3; ++Rep) {
      Timer T;
      T.start();
      TextCompileResult C = compileTextModule(Texts[I], TD, K);
      T.stop();
      R.ColdSeconds = std::min(R.ColdSeconds, T.seconds());
      R.Identical = R.Identical && C.Ok && C.AllocatedText == Refs[I];
    }

    R.L2WarmSeconds = 1e9;
    for (int Rep = 0; Rep < 5; ++Rep) {
      cache::CompileCache L1; // fresh per rep: no L1 shortcut
      L1.attachL2(L2.get());
      ExecOptions EO;
      EO.Cache = &L1;
      Timer T;
      T.start();
      TextCompileResult Warm = compileTextModule(Texts[I], TD, K, {}, EO);
      T.stop();
      R.L2WarmSeconds = std::min(R.L2WarmSeconds, T.seconds());
      R.Identical = R.Identical && Warm.Ok && Warm.CacheHit && Warm.CacheL2 &&
                    Warm.AllocatedText == Refs[I];
      L1.attachL2(nullptr);
    }
    std::printf("xproc %-10s %-22s cold %8.5fs l2-warm %9.6fs speedup "
                "%6.1fx %s\n",
                R.Workload.c_str(), R.Allocator, R.ColdSeconds,
                R.L2WarmSeconds, R.speedup(),
                R.Identical ? "" : "OUTPUT MISMATCH!");
    Out.push_back(std::move(R));
  }
  L2.reset();
  ::unlink(SegPath.c_str());
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_cache.json";
  cache::CompileCache Cache; // one cache across the whole run, like a server

  std::vector<Record> Records;
  bool AllIdentical = true;
  double MinSpeedup = 1e9;
  for (const WorkloadSpec &W : allWorkloads())
    for (AllocatorKind K : allKinds()) {
      Record R = measure(W, K, Cache);
      AllIdentical = AllIdentical && R.Identical;
      MinSpeedup = std::min(MinSpeedup, R.speedup());
      std::printf("%-10s %-22s cold %8.5fs warm %9.6fs speedup %8.1fx %s\n",
                  R.Workload.c_str(), R.Allocator, R.ColdSeconds,
                  R.WarmSeconds, R.speedup(),
                  R.Identical ? "" : "OUTPUT MISMATCH!");
      Records.push_back(std::move(R));
    }

  std::vector<XprocRecord> Xproc = measureCrossProcess();
  for (const XprocRecord &R : Xproc) {
    AllIdentical = AllIdentical && R.Identical;
    MinSpeedup = std::min(MinSpeedup, R.speedup());
  }

  cache::CacheStats CS = Cache.stats();
  std::ofstream OS(OutPath);
  if (!OS.good()) {
    std::fprintf(stderr, "bench-cache: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  OS << "[\n";
  for (const Record &R : Records) {
    obs::JsonObject O;
    O.field("workload", R.Workload)
        .field("allocator", R.Allocator)
        .field("cold_s", R.ColdSeconds)
        .field("warm_s", R.WarmSeconds)
        .field("speedup", R.speedup())
        .field("identical", R.Identical ? 1 : 0);
    OS << "  " << O.str() << ",\n";
  }
  for (const XprocRecord &R : Xproc) {
    obs::JsonObject O;
    O.field("kind", "xproc")
        .field("workload", R.Workload)
        .field("allocator", R.Allocator)
        .field("cold_s", R.ColdSeconds)
        .field("l2_warm_s", R.L2WarmSeconds)
        .field("l2_speedup", R.speedup())
        .field("identical", R.Identical ? 1 : 0);
    OS << "  " << O.str() << ",\n";
  }
  obs::JsonObject Sum;
  Sum.field("kind", "summary")
      .field("min_speedup", MinSpeedup)
      .field("all_identical", AllIdentical ? 1 : 0)
      .field("cache_hits", CS.Hits)
      .field("cache_misses", CS.Misses)
      .field("cache_insertions", CS.Insertions)
      .field("cache_evictions", CS.Evictions)
      .field("cache_bytes", static_cast<uint64_t>(CS.Bytes))
      .field("cache_entries", static_cast<uint64_t>(CS.Entries));
  OS << "  " << Sum.str() << "\n]\n";
  std::printf("bench-cache: min speedup %.1fx, %s; wrote %s\n", MinSpeedup,
              AllIdentical ? "all outputs identical" : "OUTPUT MISMATCHES",
              OutPath.c_str());
  return AllIdentical ? 0 : 1;
}
