//===- tools/bench_cache.cpp - Compile-cache benchmark --------*- C++ -*-===//
//
// Part of the lsra project (PLDI 1998 linear-scan reproduction).
//
//===----------------------------------------------------------------------===//
//
// Measures what the content-addressed compile cache buys on the serving
// path: for every built-in workload and allocator, the cold end-to-end
// compileTextModule time (parse + lower + DCE + allocate + print) against
// the warm cache-hit time for the identical request, asserting along the
// way that the warm result is byte-identical to both the cold result and
// an uncached compile. Writes BENCH_cache.json (per record: workload,
// allocator, cold/warm best-of-N seconds, speedup, identical flag) plus a
// trailing summary record with the aggregate cache statistics.
//
// Usage: bench-cache [output.json]   (default BENCH_cache.json)
//
//===----------------------------------------------------------------------===//

#include "cache/CompileCache.h"
#include "driver/Pipeline.h"
#include "ir/Printer.h"
#include "obs/Json.h"
#include "support/Timer.h"
#include "workloads/Workloads.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace lsra;

namespace {

struct Record {
  std::string Workload;
  const char *Allocator;
  double ColdSeconds;
  double WarmSeconds;
  bool Identical;

  double speedup() const {
    return WarmSeconds > 0 ? ColdSeconds / WarmSeconds : 0;
  }
};

constexpr AllocatorKind Kinds[] = {
    AllocatorKind::SecondChanceBinpack, AllocatorKind::GraphColoring,
    AllocatorKind::TwoPassBinpack, AllocatorKind::PolettoScan};

Record measure(const WorkloadSpec &W, AllocatorKind K,
               cache::CompileCache &Cache) {
  Record R;
  R.Workload = W.Name;
  R.Allocator = allocatorName(K);
  TargetDesc TD = TargetDesc::alphaLike();
  std::ostringstream OS;
  printModule(OS, *W.Build());
  std::string Text = OS.str();

  // Uncached reference, and cold best-of-five (each rep does the full
  // pipeline; the cache is only consulted afterwards).
  TextCompileResult Ref = compileTextModule(Text, TD, K);
  R.ColdSeconds = 1e9;
  ExecOptions Cacheless;
  for (int Rep = 0; Rep < 5; ++Rep) {
    Timer T;
    T.start();
    TextCompileResult C = compileTextModule(Text, TD, K, {}, Cacheless);
    T.stop();
    R.ColdSeconds = std::min(R.ColdSeconds, T.seconds());
    if (!C.Ok || C.AllocatedText != Ref.AllocatedText)
      R.Identical = false;
  }

  // Populate, then warm best-of-twenty.
  ExecOptions EO;
  EO.Cache = &Cache;
  TextCompileResult Fill = compileTextModule(Text, TD, K, {}, EO);
  R.Identical = Fill.Ok && !Fill.CacheHit &&
                Fill.AllocatedText == Ref.AllocatedText;
  R.WarmSeconds = 1e9;
  for (int Rep = 0; Rep < 20; ++Rep) {
    Timer T;
    T.start();
    TextCompileResult Hit = compileTextModule(Text, TD, K, {}, EO);
    T.stop();
    R.WarmSeconds = std::min(R.WarmSeconds, T.seconds());
    R.Identical = R.Identical && Hit.Ok && Hit.CacheHit &&
                  Hit.AllocatedText == Ref.AllocatedText;
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath = argc > 1 ? argv[1] : "BENCH_cache.json";
  cache::CompileCache Cache; // one cache across the whole run, like a server

  std::vector<Record> Records;
  bool AllIdentical = true;
  double MinSpeedup = 1e9;
  for (const WorkloadSpec &W : allWorkloads())
    for (AllocatorKind K : Kinds) {
      Record R = measure(W, K, Cache);
      AllIdentical = AllIdentical && R.Identical;
      MinSpeedup = std::min(MinSpeedup, R.speedup());
      std::printf("%-10s %-22s cold %8.5fs warm %9.6fs speedup %8.1fx %s\n",
                  R.Workload.c_str(), R.Allocator, R.ColdSeconds,
                  R.WarmSeconds, R.speedup(),
                  R.Identical ? "" : "OUTPUT MISMATCH!");
      Records.push_back(std::move(R));
    }

  cache::CacheStats CS = Cache.stats();
  std::ofstream OS(OutPath);
  if (!OS.good()) {
    std::fprintf(stderr, "bench-cache: cannot write '%s'\n", OutPath.c_str());
    return 1;
  }
  OS << "[\n";
  for (const Record &R : Records) {
    obs::JsonObject O;
    O.field("workload", R.Workload)
        .field("allocator", R.Allocator)
        .field("cold_s", R.ColdSeconds)
        .field("warm_s", R.WarmSeconds)
        .field("speedup", R.speedup())
        .field("identical", R.Identical ? 1 : 0);
    OS << "  " << O.str() << ",\n";
  }
  obs::JsonObject Sum;
  Sum.field("kind", "summary")
      .field("min_speedup", MinSpeedup)
      .field("all_identical", AllIdentical ? 1 : 0)
      .field("cache_hits", CS.Hits)
      .field("cache_misses", CS.Misses)
      .field("cache_insertions", CS.Insertions)
      .field("cache_evictions", CS.Evictions)
      .field("cache_bytes", static_cast<uint64_t>(CS.Bytes))
      .field("cache_entries", static_cast<uint64_t>(CS.Entries));
  OS << "  " << Sum.str() << "\n]\n";
  std::printf("bench-cache: min speedup %.1fx, %s; wrote %s\n", MinSpeedup,
              AllIdentical ? "all outputs identical" : "OUTPUT MISMATCHES",
              OutPath.c_str());
  return AllIdentical ? 0 : 1;
}
