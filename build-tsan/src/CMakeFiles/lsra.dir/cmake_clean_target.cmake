file(REMOVE_RECURSE
  "liblsra.a"
)
