
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AnalysisCache.cpp" "src/CMakeFiles/lsra.dir/analysis/AnalysisCache.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/analysis/AnalysisCache.cpp.o.d"
  "/root/repo/src/analysis/Dominators.cpp" "src/CMakeFiles/lsra.dir/analysis/Dominators.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/analysis/Dominators.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/CMakeFiles/lsra.dir/analysis/Liveness.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/analysis/Liveness.cpp.o.d"
  "/root/repo/src/analysis/Loops.cpp" "src/CMakeFiles/lsra.dir/analysis/Loops.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/analysis/Loops.cpp.o.d"
  "/root/repo/src/analysis/Order.cpp" "src/CMakeFiles/lsra.dir/analysis/Order.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/analysis/Order.cpp.o.d"
  "/root/repo/src/driver/Pipeline.cpp" "src/CMakeFiles/lsra.dir/driver/Pipeline.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/driver/Pipeline.cpp.o.d"
  "/root/repo/src/ir/Block.cpp" "src/CMakeFiles/lsra.dir/ir/Block.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/Block.cpp.o.d"
  "/root/repo/src/ir/Builder.cpp" "src/CMakeFiles/lsra.dir/ir/Builder.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/Builder.cpp.o.d"
  "/root/repo/src/ir/Function.cpp" "src/CMakeFiles/lsra.dir/ir/Function.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/Function.cpp.o.d"
  "/root/repo/src/ir/IRVerifier.cpp" "src/CMakeFiles/lsra.dir/ir/IRVerifier.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/IRVerifier.cpp.o.d"
  "/root/repo/src/ir/Instr.cpp" "src/CMakeFiles/lsra.dir/ir/Instr.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/Instr.cpp.o.d"
  "/root/repo/src/ir/Module.cpp" "src/CMakeFiles/lsra.dir/ir/Module.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/Module.cpp.o.d"
  "/root/repo/src/ir/Parser.cpp" "src/CMakeFiles/lsra.dir/ir/Parser.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/Parser.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/CMakeFiles/lsra.dir/ir/Printer.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/ir/Printer.cpp.o.d"
  "/root/repo/src/passes/DCE.cpp" "src/CMakeFiles/lsra.dir/passes/DCE.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/passes/DCE.cpp.o.d"
  "/root/repo/src/passes/Peephole.cpp" "src/CMakeFiles/lsra.dir/passes/Peephole.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/passes/Peephole.cpp.o.d"
  "/root/repo/src/passes/SpillCleanup.cpp" "src/CMakeFiles/lsra.dir/passes/SpillCleanup.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/passes/SpillCleanup.cpp.o.d"
  "/root/repo/src/regalloc/Allocator.cpp" "src/CMakeFiles/lsra.dir/regalloc/Allocator.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/Allocator.cpp.o.d"
  "/root/repo/src/regalloc/Binpack.cpp" "src/CMakeFiles/lsra.dir/regalloc/Binpack.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/Binpack.cpp.o.d"
  "/root/repo/src/regalloc/Coloring.cpp" "src/CMakeFiles/lsra.dir/regalloc/Coloring.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/Coloring.cpp.o.d"
  "/root/repo/src/regalloc/Consistency.cpp" "src/CMakeFiles/lsra.dir/regalloc/Consistency.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/Consistency.cpp.o.d"
  "/root/repo/src/regalloc/Lifetime.cpp" "src/CMakeFiles/lsra.dir/regalloc/Lifetime.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/Lifetime.cpp.o.d"
  "/root/repo/src/regalloc/ParallelCopy.cpp" "src/CMakeFiles/lsra.dir/regalloc/ParallelCopy.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/ParallelCopy.cpp.o.d"
  "/root/repo/src/regalloc/Poletto.cpp" "src/CMakeFiles/lsra.dir/regalloc/Poletto.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/Poletto.cpp.o.d"
  "/root/repo/src/regalloc/Resolver.cpp" "src/CMakeFiles/lsra.dir/regalloc/Resolver.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/Resolver.cpp.o.d"
  "/root/repo/src/regalloc/SpillSlots.cpp" "src/CMakeFiles/lsra.dir/regalloc/SpillSlots.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/SpillSlots.cpp.o.d"
  "/root/repo/src/regalloc/TwoPass.cpp" "src/CMakeFiles/lsra.dir/regalloc/TwoPass.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/regalloc/TwoPass.cpp.o.d"
  "/root/repo/src/support/BitVector.cpp" "src/CMakeFiles/lsra.dir/support/BitVector.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/support/BitVector.cpp.o.d"
  "/root/repo/src/support/ThreadPool.cpp" "src/CMakeFiles/lsra.dir/support/ThreadPool.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/support/ThreadPool.cpp.o.d"
  "/root/repo/src/support/Timer.cpp" "src/CMakeFiles/lsra.dir/support/Timer.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/support/Timer.cpp.o.d"
  "/root/repo/src/target/CalleeSave.cpp" "src/CMakeFiles/lsra.dir/target/CalleeSave.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/target/CalleeSave.cpp.o.d"
  "/root/repo/src/target/LowerCalls.cpp" "src/CMakeFiles/lsra.dir/target/LowerCalls.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/target/LowerCalls.cpp.o.d"
  "/root/repo/src/target/Target.cpp" "src/CMakeFiles/lsra.dir/target/Target.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/target/Target.cpp.o.d"
  "/root/repo/src/vm/VM.cpp" "src/CMakeFiles/lsra.dir/vm/VM.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/vm/VM.cpp.o.d"
  "/root/repo/src/workloads/RandomProgram.cpp" "src/CMakeFiles/lsra.dir/workloads/RandomProgram.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/workloads/RandomProgram.cpp.o.d"
  "/root/repo/src/workloads/SyntheticModule.cpp" "src/CMakeFiles/lsra.dir/workloads/SyntheticModule.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/workloads/SyntheticModule.cpp.o.d"
  "/root/repo/src/workloads/Workloads.cpp" "src/CMakeFiles/lsra.dir/workloads/Workloads.cpp.o" "gcc" "src/CMakeFiles/lsra.dir/workloads/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
