# Empty compiler generated dependencies file for lsra.
# This may be replaced when dependencies are built.
