# Empty dependencies file for bench-compile-time.
# This may be replaced when dependencies are built.
