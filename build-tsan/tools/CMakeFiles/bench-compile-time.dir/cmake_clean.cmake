file(REMOVE_RECURSE
  "CMakeFiles/bench-compile-time.dir/bench_compile_time.cpp.o"
  "CMakeFiles/bench-compile-time.dir/bench_compile_time.cpp.o.d"
  "bench-compile-time"
  "bench-compile-time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench-compile-time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
