# Empty dependencies file for lsra-tool.
# This may be replaced when dependencies are built.
