file(REMOVE_RECURSE
  "CMakeFiles/lsra-tool.dir/lsra.cpp.o"
  "CMakeFiles/lsra-tool.dir/lsra.cpp.o.d"
  "lsra"
  "lsra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsra-tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
