# Empty dependencies file for target_test.
# This may be replaced when dependencies are built.
