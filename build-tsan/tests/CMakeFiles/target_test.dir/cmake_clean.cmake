file(REMOVE_RECURSE
  "CMakeFiles/target_test.dir/target_test.cpp.o"
  "CMakeFiles/target_test.dir/target_test.cpp.o.d"
  "target_test"
  "target_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/target_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
