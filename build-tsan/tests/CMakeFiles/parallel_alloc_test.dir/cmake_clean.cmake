file(REMOVE_RECURSE
  "CMakeFiles/parallel_alloc_test.dir/parallel_alloc_test.cpp.o"
  "CMakeFiles/parallel_alloc_test.dir/parallel_alloc_test.cpp.o.d"
  "parallel_alloc_test"
  "parallel_alloc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
