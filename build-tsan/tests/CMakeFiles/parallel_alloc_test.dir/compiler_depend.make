# Empty compiler generated dependencies file for parallel_alloc_test.
# This may be replaced when dependencies are built.
