# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for binpack_test.
