# Empty compiler generated dependencies file for binpack_test.
# This may be replaced when dependencies are built.
