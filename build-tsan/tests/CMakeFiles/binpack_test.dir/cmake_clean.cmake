file(REMOVE_RECURSE
  "CMakeFiles/binpack_test.dir/binpack_test.cpp.o"
  "CMakeFiles/binpack_test.dir/binpack_test.cpp.o.d"
  "binpack_test"
  "binpack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
