# Empty compiler generated dependencies file for spillcleanup_test.
# This may be replaced when dependencies are built.
