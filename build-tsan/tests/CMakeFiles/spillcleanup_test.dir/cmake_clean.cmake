file(REMOVE_RECURSE
  "CMakeFiles/spillcleanup_test.dir/spillcleanup_test.cpp.o"
  "CMakeFiles/spillcleanup_test.dir/spillcleanup_test.cpp.o.d"
  "spillcleanup_test"
  "spillcleanup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spillcleanup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
