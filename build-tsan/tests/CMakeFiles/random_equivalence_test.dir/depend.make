# Empty dependencies file for random_equivalence_test.
# This may be replaced when dependencies are built.
