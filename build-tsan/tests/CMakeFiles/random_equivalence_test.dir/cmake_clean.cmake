file(REMOVE_RECURSE
  "CMakeFiles/random_equivalence_test.dir/random_equivalence_test.cpp.o"
  "CMakeFiles/random_equivalence_test.dir/random_equivalence_test.cpp.o.d"
  "random_equivalence_test"
  "random_equivalence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
