file(REMOVE_RECURSE
  "CMakeFiles/parallelcopy_test.dir/parallelcopy_test.cpp.o"
  "CMakeFiles/parallelcopy_test.dir/parallelcopy_test.cpp.o.d"
  "parallelcopy_test"
  "parallelcopy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelcopy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
