# Empty dependencies file for parallelcopy_test.
# This may be replaced when dependencies are built.
