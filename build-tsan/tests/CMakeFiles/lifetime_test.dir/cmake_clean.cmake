file(REMOVE_RECURSE
  "CMakeFiles/lifetime_test.dir/lifetime_test.cpp.o"
  "CMakeFiles/lifetime_test.dir/lifetime_test.cpp.o.d"
  "lifetime_test"
  "lifetime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
