file(REMOVE_RECURSE
  "CMakeFiles/dynamic_codegen.dir/dynamic_codegen.cpp.o"
  "CMakeFiles/dynamic_codegen.dir/dynamic_codegen.cpp.o.d"
  "dynamic_codegen"
  "dynamic_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
