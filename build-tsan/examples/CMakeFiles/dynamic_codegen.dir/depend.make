# Empty dependencies file for dynamic_codegen.
# This may be replaced when dependencies are built.
