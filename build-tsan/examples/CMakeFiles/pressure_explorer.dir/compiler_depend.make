# Empty compiler generated dependencies file for pressure_explorer.
# This may be replaced when dependencies are built.
