file(REMOVE_RECURSE
  "CMakeFiles/pressure_explorer.dir/pressure_explorer.cpp.o"
  "CMakeFiles/pressure_explorer.dir/pressure_explorer.cpp.o.d"
  "pressure_explorer"
  "pressure_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressure_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
